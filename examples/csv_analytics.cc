// CSV + datalog workflow: load relations from CSV files, parse the query
// from its datalog string, explain the decomposition, count, and find the
// most sensitive tuple. This is the "bring your own data" path a downstream
// user of the library would follow.
//
// The data models a tiny course enrollment system (the Students ⋈
// Enrollment ⋈ Courses ⋈ TaughtBy ⋈ Instructors chain the paper's §4 gives
// as a natural path-join example).

#include <cstdio>

#include "query/enumerate.h"
#include "query/eval.h"
#include "query/explain.h"
#include "query/parser.h"
#include "sensitivity/tsens.h"
#include "storage/csv.h"

int main() {
  using namespace lsens;
  Database db;

  // Normally these come from LoadCsv(db, name, path); inline text keeps the
  // example self-contained.
  Status s = LoadCsvText(db, "Students",
                         "student,major\n"
                         "ada,cs\nbob,cs\ncarol,math\n");
  s.ok() ? void() : void(std::printf("%s\n", s.ToString().c_str()));
  LoadCsvText(db, "Enrollment",
              "student,course\n"
              "ada,db\nada,os\nbob,db\ncarol,db\ncarol,algebra\n");
  LoadCsvText(db, "Courses",
              "course,slot\n"
              "db,mon\nos,tue\nalgebra,mon\n");
  LoadCsvText(db, "TaughtBy",
              "course,instructor\n"
              "db,prof_x\nos,prof_y\nalgebra,prof_z\n");

  auto query = ParseQuery(
      ":- Students(student, major), Enrollment(student, course), "
      "Courses(course, slot), TaughtBy(course, instructor)",
      db);
  if (!query.ok()) {
    std::printf("parse error: %s\n", query.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n", ExplainQuery(*query, db.attrs()).c_str());

  auto count = CountQuery(*query, db);
  std::printf("|Q(D)| = %s enrollment facts\n", count->ToString().c_str());

  // Full output, Yannakakis-style (never larger than the result).
  auto output = EnumerateQuery(*query, db);
  std::printf("materialized output: %zu rows over %zu attributes\n",
              output->NumRows(), output->arity());

  auto sens = ComputeLocalSensitivity(*query, db);
  std::printf("LS = %s; most sensitive: %s\n",
              sens->local_sensitivity.ToString().c_str(),
              sens->DescribeMostSensitive(db.attrs(), &db.dict()).c_str());

  // A selection (§5.4): only monday courses.
  auto monday = ParseQuery(
      ":- Students(student, major), Enrollment(student, course), "
      "Courses(course, slot), TaughtBy(course, instructor), slot = " +
          std::to_string(db.dict().Lookup("mon")),
      db);
  auto monday_sens = ComputeLocalSensitivity(*monday, db);
  std::printf("with slot=mon selection: |Q| = %s, LS = %s\n",
              CountQuery(*monday, db)->ToString().c_str(),
              monday_sens->local_sensitivity.ToString().c_str());
  return 0;
}
