// Flight search: the paper's introduction scenario. An airline wants to
// know, for a three-leg trip NYC -> ? -> ? -> SYD, how many connecting
// itineraries exist — and which *new flight* would create the most new
// itineraries (the most sensitive tuple of the path join).
//
//   Itineraries(src, h1, h2, dst) :-
//       Leg1(src, h1), Leg2(h1, h2), Leg3(h2, dst)
//
// with Leg1 = flights departing NYC, Leg3 = flights arriving SYD (selection
// predicates on a shared flight table are modeled by materialized leg
// tables, the natural-join form the paper uses).

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "query/eval.h"
#include "sensitivity/tsens.h"

int main() {
  using namespace lsens;
  Database db;
  Dictionary& d = db.dict();
  auto city = [&](const char* s) { return d.Intern(s); };

  const std::vector<const char*> hubs1 = {"LHR", "CDG", "FRA", "DXB"};
  const std::vector<const char*> hubs2 = {"DXB", "SIN", "HKG", "DEL"};

  // Leg 1: NYC -> first hop. Multiple daily flights = duplicate rows (bag
  // semantics: each flight is its own tuple).
  Relation* leg1 = db.AddRelation("Leg1", {"src", "h1"});
  Rng rng(7);
  for (const char* h : hubs1) {
    uint64_t daily = 1 + rng.NextBounded(4);
    for (uint64_t i = 0; i < daily; ++i) {
      leg1->AppendRow({city("NYC"), city(h)});
    }
  }
  // Leg 2: first hop -> second hop.
  Relation* leg2 = db.AddRelation("Leg2", {"h1", "h2"});
  for (const char* a : hubs1) {
    for (const char* b : hubs2) {
      if (rng.NextDouble() < 0.4) leg2->AppendRow({city(a), city(b)});
    }
  }
  // Leg 3: second hop -> SYD.
  Relation* leg3 = db.AddRelation("Leg3", {"h2", "dst"});
  for (const char* h : hubs2) {
    uint64_t daily = rng.NextBounded(3);
    for (uint64_t i = 0; i < daily; ++i) {
      leg3->AppendRow({city(h), city("SYD")});
    }
  }

  ConjunctiveQuery q;
  q.AddAtom(db, "Leg1", {"src", "h1"});
  q.AddAtom(db, "Leg2", {"h1", "h2"});
  q.AddAtom(db, "Leg3", {"h2", "dst"});
  std::printf("query: %s\n", q.ToString(db.attrs()).c_str());
  std::printf("flights: %zu + %zu + %zu\n", leg1->NumRows(), leg2->NumRows(),
              leg3->NumRows());

  auto count = CountQuery(q, db);
  std::printf("connecting itineraries today: %s\n",
              count->ToString().c_str());

  // Which single flight addition/cancellation moves that number the most?
  // This is a path join query, so TSens dispatches to Algorithm 1
  // (O(n log n), independent of the number of itineraries).
  auto result = ComputeLocalSensitivity(q, db);
  if (!result.ok()) {
    std::printf("TSens failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("most impactful flight: %s\n",
              result->DescribeMostSensitive(db.attrs(), &db.dict()).c_str());
  std::printf("(adding or canceling it changes the itinerary count by %s)\n",
              result->local_sensitivity.ToString().c_str());

  for (const AtomSensitivity& atom : result->atoms) {
    std::printf("  best possible %-5s flight changes the count by %s\n",
                atom.relation.c_str(),
                atom.max_sensitivity.ToString().c_str());
  }
  return 0;
}
