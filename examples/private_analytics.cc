// Private analytics: §6 end to end. Answer the TPC-H join-counting query
//   q1(D) = |Region ⋈ Nation ⋈ Customer ⋈ Orders ⋈ Lineitem|
// under ε-differential privacy with Customer as the primary private
// relation, using the TSensDP truncation mechanism:
//
//   1. TSens computes δ(t) for every customer;
//   2. SVT privately finds a truncation threshold τ near the local
//      sensitivity;
//   3. customers with δ(t) > τ are truncated and the query is answered
//      with Laplace noise scaled to τ (instead of the huge static bound a
//      frequency-based system would use).

#include <cstdio>

#include "dp/tsens_dp.h"
#include "sensitivity/elastic.h"
#include "workload/queries.h"
#include "workload/tpch.h"

int main() {
  using namespace lsens;
  TpchOptions topts;
  topts.scale = 0.01;
  Database db = MakeTpchDatabase(topts);
  WorkloadQuery q1 = MakeTpchQ1(db);
  std::printf("TPC-H scale %.2f: %zu total rows\n", topts.scale,
              db.TotalRows());
  std::printf("query: %s\n", q1.query.ToString(db.attrs()).c_str());
  std::printf("primary private relation: %s\n",
              q1.query.atom(q1.private_atom).relation.c_str());

  // What a static analysis would have to assume:
  auto elastic = ElasticSensitivity(q1.query, db);
  std::printf("static (Elastic) sensitivity bound for this instance: %s\n",
              elastic->local_sensitivity_bound.ToString().c_str());

  const double epsilon = 1.0;
  for (uint64_t seed : {1, 2, 3}) {
    TSensDpOptions opts;
    opts.epsilon = epsilon;
    opts.ell = q1.ell;
    opts.seed = seed;
    auto run = RunTSensDp(q1.query, db, q1.private_atom, opts);
    if (!run.ok()) {
      std::printf("run failed: %s\n", run.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "eps=%.1f seed=%llu: true=%.0f released=%.0f (rel.err %.2f%%), "
        "learned tau=%llu, bias %.2f%%\n",
        epsilon, static_cast<unsigned long long>(seed), run->true_answer,
        run->noisy_answer, 100 * run->error() / run->true_answer,
        static_cast<unsigned long long>(run->learned_threshold),
        100 * run->bias() / run->true_answer);
  }
  std::printf(
      "\nNoise scales with the learned tau (~max tuple sensitivity), not\n"
      "with the static bound — that gap is the accuracy win of §6.\n");
  return 0;
}
