// Social triangles: sensitivity analysis on a social graph. Counts the
// triangles spanning three edge tables of the synthetic ego-network
// (a cyclic query — TSens runs through the generalized hypertree
// decomposition {R1,R2} - {R3}), finds the most "load-bearing" friendship,
// and compares the exact local sensitivity against the Elastic bound and
// the naive re-evaluation oracle.

#include <cstdio>

#include "common/timer.h"
#include "query/eval.h"
#include "sensitivity/elastic.h"
#include "sensitivity/naive.h"
#include "sensitivity/tsens.h"
#include "workload/queries.h"
#include "workload/social.h"

int main() {
  using namespace lsens;
  // A small ego-network so the naive oracle stays feasible.
  SocialOptions opts;
  opts.num_nodes = 60;
  opts.num_circles = 90;
  opts.target_directed_edges = 700;
  Database db = MakeSocialDatabase(opts);
  WorkloadQuery tri = MakeFacebookTriangle(db);

  std::printf("graph: R1=%zu R2=%zu R3=%zu directed edges\n",
              db.Find("R1")->NumRows(), db.Find("R2")->NumRows(),
              db.Find("R3")->NumRows());
  auto count = CountQuery(tri.query, db, {}, tri.ghd_ptr());
  std::printf("triangles across (R1, R2, R3): %s\n",
              count->ToString().c_str());

  TSensComputeOptions topts;
  topts.ghd = tri.ghd_ptr();
  WallTimer t1;
  auto tsens = ComputeLocalSensitivity(tri.query, db, topts);
  double tsens_s = t1.ElapsedSeconds();
  if (!tsens.ok()) {
    std::printf("TSens failed: %s\n", tsens.status().ToString().c_str());
    return 1;
  }
  std::printf("TSens (%.3fs): LS = %s, witness %s\n", tsens_s,
              tsens->local_sensitivity.ToString().c_str(),
              tsens->DescribeMostSensitive(db.attrs()).c_str());

  auto elastic = ElasticSensitivity(tri.query, db, tri.ghd_ptr());
  std::printf("Elastic bound: %s (no witness tuple available)\n",
              elastic->local_sensitivity_bound.ToString().c_str());

  WallTimer t2;
  NaiveOptions nopts;
  nopts.ghd = tri.ghd_ptr();
  auto naive = NaiveLocalSensitivity(tri.query, db, nopts);
  double naive_s = t2.ElapsedSeconds();
  if (naive.ok()) {
    std::printf(
        "naive oracle (%.3fs, %zu re-evaluations): LS = %s — %s TSens\n",
        naive_s, naive->candidates_evaluated,
        naive->local_sensitivity.ToString().c_str(),
        naive->local_sensitivity == tsens->local_sensitivity ? "matches"
                                                             : "DISAGREES");
    std::printf("speedup of TSens over naive: %.0fx\n",
                tsens_s > 0 ? naive_s / tsens_s : 0.0);
  }
  return 0;
}
