// Quickstart: the paper's running example (Figure 1 / Example 2.1).
//
// Builds the four-relation database, runs the counting query
//   Q(A,B,C,D,E,F) :- R1(A,B,C), R2(A,B,D), R3(A,E), R4(B,F)
// and computes its local sensitivity with TSens: how much can |Q| change
// if one tuple is added to or removed from any relation, and which tuple
// achieves that change.
//
// Expected output: |Q(D)| = 1, LS = 4, most sensitive tuple R1(a2, b2, *).

#include <cstdio>

#include "query/eval.h"
#include "sensitivity/tsens.h"
#include "sensitivity/tsens_engine.h"
#include "storage/database.h"

int main() {
  using namespace lsens;

  // 1. Build the Figure 1 instance. String values are interned through the
  //    database dictionary; every relation is a flat bag of rows.
  Database db;
  Dictionary& d = db.dict();
  auto v = [&](const char* s) { return d.Intern(s); };
  Relation* r1 = db.AddRelation("R1", {"A", "B", "C"});
  r1->AppendRow({v("a1"), v("b1"), v("c1")});
  r1->AppendRow({v("a1"), v("b2"), v("c1")});
  r1->AppendRow({v("a2"), v("b1"), v("c1")});
  Relation* r2 = db.AddRelation("R2", {"A", "B", "D"});
  r2->AppendRow({v("a1"), v("b1"), v("d1")});
  r2->AppendRow({v("a2"), v("b2"), v("d2")});
  Relation* r3 = db.AddRelation("R3", {"A", "E"});
  r3->AppendRow({v("a1"), v("e1")});
  r3->AppendRow({v("a2"), v("e1")});
  r3->AppendRow({v("a2"), v("e2")});
  Relation* r4 = db.AddRelation("R4", {"B", "F"});
  r4->AppendRow({v("b1"), v("f1")});
  r4->AppendRow({v("b2"), v("f1")});
  r4->AppendRow({v("b2"), v("f2")});

  // 2. The full conjunctive query: atoms bind relation columns to logical
  //    variables positionally; shared variables mean natural join.
  ConjunctiveQuery q;
  q.AddAtom(db, "R1", {"A", "B", "C"});
  q.AddAtom(db, "R2", {"A", "B", "D"});
  q.AddAtom(db, "R3", {"A", "E"});
  q.AddAtom(db, "R4", {"B", "F"});
  std::printf("query: %s\n", q.ToString(db.attrs()).c_str());

  // 3. Count the join output (bag semantics).
  auto count = CountQuery(q, db);
  if (!count.ok()) {
    std::printf("count failed: %s\n", count.status().ToString().c_str());
    return 1;
  }
  std::printf("|Q(D)| = %s\n", count->ToString().c_str());

  // 4. Local sensitivity + most sensitive tuple (Definition 2.3).
  auto result = ComputeLocalSensitivity(q, db);
  if (!result.ok()) {
    std::printf("TSens failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("LS(Q, D) = %s\n", result->local_sensitivity.ToString().c_str());
  std::printf("most sensitive tuple: %s\n",
              result->DescribeMostSensitive(db.attrs(), &db.dict()).c_str());

  // 5. Per-relation detail: the maximum sensitivity any tuple of each
  //    relation could have (over the representative domain).
  for (const AtomSensitivity& atom : result->atoms) {
    std::printf("  max tuple sensitivity in %-3s = %s\n",
                atom.relation.c_str(),
                atom.max_sensitivity.ToString().c_str());
  }

  // 6. Verify the claim: insert the witness tuple and recount.
  auto witness = MaterializeMostSensitiveTuple(*result, q);
  if (witness.ok()) {
    Relation* rel = db.Find(q.atom(witness->first).relation);
    rel->AppendRow(witness->second);
    auto after = CountQuery(q, db);
    std::printf("after inserting the witness: |Q(D')| = %s (was %s)\n",
                after->ToString().c_str(), count->ToString().c_str());
  }
  return 0;
}
