// MUST-FIRE fixture for rule allow-reason: an allow with no justification
// (the audit is worthless if entries don't say *why*), and an allow naming
// a rule that is not allowlistable.
#include <string>
#include <unordered_map>

namespace fixture {

int SumAllowedButUnjustified(const std::unordered_map<std::string, int>& m) {
  int sum = 0;
  // lsens-lint: allow(unordered-iter)
  for (const auto& [k, v] : m) sum += v;
  return sum;
}

// lsens-lint: allow(layering) layering is never allowlistable
void Nothing();

}  // namespace fixture
