// MUST-FIRE fixture for rule hash-fold: three distinct competing-fold
// shapes — a mix magic constant, a direct Mix64 reference, and a
// redefinition of a canonical fold name — all outside storage/value.h.
#ifndef FIXTURE_COMPETING_FOLD_H_
#define FIXTURE_COMPETING_FOLD_H_

#include <cstdint>

namespace fixture {

// A private murmur3-style finalizer: exactly the drift the rule exists to
// stop (this fold would disagree with the shard router's).
inline uint64_t LocalFmix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  return x;
}

// Referencing the rng finalizer directly instead of HashValues.
inline uint64_t FoldDirect(uint64_t x) { return Mix64(x ^ 17u); }

// Redefining the shared fold name locally.
inline uint64_t HashValueFold(uint64_t h, int64_t v) {
  return h ^ static_cast<uint64_t>(v);
}

}  // namespace fixture

#endif  // FIXTURE_COMPETING_FOLD_H_
