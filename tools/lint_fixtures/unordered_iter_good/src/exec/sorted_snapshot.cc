// MUST-PASS fixture for rule unordered-iter, covering all three sanctioned
// shapes: find()-only probes (never flagged), a loop justified by a
// line-site allow, and a lookup-only table whose declaration-site allow
// covers every loop over it. Both allows must appear in the audit.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

// lsens-lint: allow(unordered-iter) lookup-only side table; results always
// come from the sorted keys_ snapshot next to it.
std::unordered_map<std::string, int> g_side_table;

int Probe(const std::string& key) {
  auto it = g_side_table.find(key);
  return it == g_side_table.end() ? 0 : it->second;
}

int DeclSiteAllowCoversThisLoop() {
  int sum = 0;
  for (const auto& [k, v] : g_side_table) sum += v;
  return sum;
}

std::vector<std::string> SortedKeys(
    const std::unordered_map<std::string, int>& m) {
  std::vector<std::string> keys;
  keys.reserve(m.size());
  // lsens-lint: allow(unordered-iter) snapshot collection only — the keys
  // are sorted before anyone observes them.
  for (const auto& [k, v] : m) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace fixture
