// MUST-FIRE fixture for rule unordered-iter: a range-for and an iterator
// loop over unordered containers with no allow annotation. A stats sum
// accumulated in hash order is exactly how nondeterminism leaks.
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

int SumInHashOrder(const std::unordered_map<std::string, int>& totals) {
  int sum = 0;
  for (const auto& [name, n] : totals) sum += n;
  return sum;
}

int CountViaIterators(const std::unordered_set<int>& seen) {
  int n = 0;
  for (auto it = seen.begin(); it != seen.end(); ++it) ++n;
  return n;
}

}  // namespace fixture
