// MUST-PASS fixture for rule entropy: common/rng.cc is one of the two
// entropy homes — hardware seeding belongs here and only here. The
// seeded-PRNG consumer below it never touches an entropy source itself.
#include <random>

namespace fixture {

unsigned HardwareSeed() {
  std::random_device rd;  // exempt: this file is the entropy home
  return rd();
}

}  // namespace fixture
