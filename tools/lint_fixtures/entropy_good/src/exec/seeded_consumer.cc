// The consumer half of the entropy must-pass fixture: explicit seeds and
// mt19937 draws are fine anywhere — they replay bit-for-bit.
#include <random>

namespace fixture {

int Draw(unsigned seed) {
  std::mt19937 gen(seed);
  return static_cast<int>(gen());
}

}  // namespace fixture
