// MUST-PASS fixture for rule hash-fold: *calling* the shared helpers (and
// chaining the fold over a column subset) is exactly what callers are
// supposed to do — only redefinition is banned.
#ifndef FIXTURE_USES_SHARED_FOLD_H_
#define FIXTURE_USES_SHARED_FOLD_H_

#include <cstdint>
#include <span>

#include "storage/value.h"

namespace fixture {

inline uint64_t HashSubset(std::span<const int64_t> row,
                           std::span<const int> cols) {
  uint64_t h = lsens::kValueHashSeed;
  for (int c : cols) h = lsens::HashValueFold(h, row[static_cast<size_t>(c)]);
  return h;
}

inline uint64_t HashWholeRow(std::span<const int64_t> row) {
  return lsens::HashValues(row);
}

}  // namespace fixture

#endif  // FIXTURE_USES_SHARED_FOLD_H_
