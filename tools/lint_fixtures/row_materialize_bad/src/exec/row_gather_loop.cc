// MUST-FIRE fixture for rule row-materialize: Relation::Row() called
// inside loop bodies in an exec-layer file, with no allow annotation.
// Each call gathers a fresh vector — a per-row allocation the columnar
// Column() spans exist to avoid. One range-for receiver and one indexed
// receiver, both Relation-typed; the CountedRelation call must NOT fire
// (its Row() returns a span).
#include <cstddef>
#include <vector>

namespace fixture {

using Value = long long;

struct Relation {
  std::vector<Value> Row(size_t i) const;
  size_t NumRows() const;
};

struct CountedRelation {
  const Value* Row(size_t i) const;
  size_t NumRows() const;
};

Value SumFirstColumn(const Relation& rel) {
  Value sum = 0;
  for (size_t i = 0; i < rel.NumRows(); ++i) {
    sum += rel.Row(i)[0];
  }
  return sum;
}

Value SumViaPointer(const Relation* rel) {
  Value sum = 0;
  size_t i = 0;
  while (i < rel->NumRows()) {
    std::vector<Value> row = rel->Row(i++);
    sum += row[0];
  }
  return sum;
}

Value CountedRowsAreFine(const CountedRelation& counted) {
  Value sum = 0;
  for (size_t i = 0; i < counted.NumRows(); ++i) {
    sum += counted.Row(i)[0];
  }
  return sum;
}

}  // namespace fixture
