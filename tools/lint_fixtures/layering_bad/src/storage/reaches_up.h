// MUST-FIRE fixture for rule layering: storage reaching up into exec and
// query. Both edges invert the DAG common <- storage <- exec <- query.
#ifndef FIXTURE_REACHES_UP_H_
#define FIXTURE_REACHES_UP_H_

#include "exec/counted_relation.h"
#include "query/conjunctive_query.h"
#include "storage/relation.h"

#endif  // FIXTURE_REACHES_UP_H_
