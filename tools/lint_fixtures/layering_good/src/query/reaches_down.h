// MUST-PASS fixture for rule layering: query may include exec, storage,
// common, and itself — every edge here points down the DAG.
#ifndef FIXTURE_REACHES_DOWN_H_
#define FIXTURE_REACHES_DOWN_H_

#include "common/status.h"
#include "exec/counted_relation.h"
#include "query/conjunctive_query.h"
#include "storage/relation.h"

#endif  // FIXTURE_REACHES_DOWN_H_
