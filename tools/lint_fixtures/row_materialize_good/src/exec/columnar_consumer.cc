// MUST-PASS fixture for rule row-materialize, covering the sanctioned
// shapes: Column() spans and a reused RowInto() buffer in hot loops, a
// Row() call outside any loop (one-shot gathers are fine), and a cold
// setup loop justified by a line-site allow. The allow must appear in the
// audit.
#include <cstddef>
#include <span>
#include <vector>

namespace fixture {

using Value = long long;

struct Relation {
  std::vector<Value> Row(size_t i) const;
  void RowInto(size_t i, std::vector<Value>* out) const;
  std::span<const Value> Column(size_t c) const;
  size_t NumRows() const;
};

Value SumFirstColumn(const Relation& rel) {
  Value sum = 0;
  for (Value v : rel.Column(0)) sum += v;
  return sum;
}

Value SumViaReusedBuffer(const Relation& rel) {
  Value sum = 0;
  std::vector<Value> row;
  for (size_t i = 0; i < rel.NumRows(); ++i) {
    rel.RowInto(i, &row);
    sum += row[0];
  }
  return sum;
}

std::vector<Value> OneShotGather(const Relation& rel) {
  return rel.Row(0);
}

std::vector<std::vector<Value>> SnapshotForTests(const Relation& rel) {
  std::vector<std::vector<Value>> rows;
  for (size_t i = 0; i < rel.NumRows(); ++i) {
    // lsens-lint: allow(row-materialize) cold snapshot path — runs once
    // per test, clarity wins over the per-row vector.
    rows.push_back(rel.Row(i));
  }
  return rows;
}

}  // namespace fixture
