// MUST-FIRE fixture for rule entropy: libc rand(), std::random_device,
// and a wall-clock read, all outside common/rng and common/timer. Any one
// of these makes a sensitivity run unreplayable.
#include <chrono>
#include <cstdlib>
#include <random>

namespace fixture {

int NoisySeed() {
  std::random_device rd;
  return static_cast<int>(rd()) + rand();
}

long NowNanos() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
