#!/usr/bin/env bash
# Run the repo's clang-tidy profile (.clang-tidy at the root) over every
# first-party translation unit in the compile database. One command,
# locally and in CI:
#
#   tools/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# The build dir must have been configured with CMAKE_EXPORT_COMPILE_COMMANDS
# (every preset in CMakePresets.json sets it), e.g.:
#
#   cmake --preset release && tools/run_clang_tidy.sh build/release
#
# Exits non-zero on any finding (WarningsAsErrors: '*' in the profile).
set -euo pipefail

BUILD_DIR="${1:-build/release}"
shift $(( $# > 0 ? 1 : 0 )) || true
if [[ "${1:-}" == "--" ]]; then shift; fi

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
DB="${BUILD_DIR}/compile_commands.json"

if [[ ! -f "${DB}" ]]; then
  echo "error: ${DB} not found — configure first, e.g. 'cmake --preset release'" >&2
  exit 2
fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${TIDY}" >/dev/null 2>&1; then
  echo "error: ${TIDY} not found (set CLANG_TIDY=/path/to/clang-tidy)" >&2
  exit 2
fi

RUNNER="$(command -v run-clang-tidy || true)"
JOBS="$(nproc 2>/dev/null || echo 4)"

# First-party TUs only: generated/fetched sources (gtest, benchmark) are
# not held to the profile. Filter by path prefix against the database.
FILTER="^${ROOT}/(src|tools|tests|bench|examples)/.*\.cc$"

if [[ -n "${RUNNER}" ]]; then
  # run-clang-tidy ships with LLVM and parallelizes over the database.
  "${RUNNER}" -clang-tidy-binary "${TIDY}" -p "${BUILD_DIR}" -quiet \
    -j "${JOBS}" "${FILTER}" "$@"
else
  # Fallback: serial loop over the database (python3 is always present in
  # the CI image; jq is not).
  mapfile -t FILES < <(python3 - "$DB" "$FILTER" <<'EOF'
import json, re, sys
db, pat = sys.argv[1], re.compile(sys.argv[2])
seen = set()
for entry in json.load(open(db)):
    f = entry["file"]
    if pat.match(f) and f not in seen:
        seen.add(f)
        print(f)
EOF
)
  status=0
  for f in "${FILES[@]}"; do
    "${TIDY}" -p "${BUILD_DIR}" --quiet "$@" "$f" || status=1
  done
  exit "${status}"
fi
