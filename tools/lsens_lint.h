#ifndef LSENS_TOOLS_LSENS_LINT_H_
#define LSENS_TOOLS_LSENS_LINT_H_

#include <filesystem>
#include <string>
#include <vector>

// lsens-lint: a token/line-level checker for the project-specific
// determinism invariants clang-tidy cannot express. It deliberately does
// NOT parse C++ — it scans comment-stripped source text with a handful of
// heuristics whose exact behavior is pinned by the fixture corpus under
// tools/lint_fixtures/ (tests/lint_test.cc). Five rules, all scoped to
// files under <root>/src:
//
//   hash-fold    The value-hash seed/fold definitions (kValueHashSeed,
//                HashValueFold, HashValues) live only in storage/value.h,
//                and the Mix64/SplitMix64 finalizers only in common/rng.
//                No other file may define a competing fold: the well-known
//                mix magic constants and the finalizer names are banned
//                elsewhere. Calls to the shared helpers are fine anywhere —
//                it is redefinition that splits shard routing from table
//                hashing. Not allowlistable.
//
//   unordered-iter
//                No range-for or iterator loop (.begin/.cbegin/.rbegin)
//                over a std::unordered_map / std::unordered_set, unless
//                covered by `// lsens-lint: allow(unordered-iter) <reason>`
//                on the same or the directly preceding line, or on the
//                container's declaration (which covers every loop over that
//                name — use it for lookup-only tables). Every allow is
//                printed in the audit section so the list stays reviewable.
//                A .cc file shares declarations with its same-stem .h.
//
//   layering     `#include "<layer>/..."` edges must respect the DAG
//                common ← storage ← exec ← query ← sensitivity ←
//                {server, dp, workload}. Not allowlistable.
//
//   entropy      rand()/srand(), std::random_device, wall-clock and cpu-
//                clock reads (system_clock, steady_clock, time(), clock(),
//                ...) are banned outside common/rng and common/timer:
//                everything random or timed flows through explicitly
//                seeded Rng instances and WallTimer so runs replay
//                bit-for-bit.
//
//   row-materialize
//                Advisory, scoped to src/exec/: calling Relation::Row()
//                inside a loop body. The columnar Relation gathers a fresh
//                vector per Row() call, so a loop doing it is a per-row
//                allocation the flat Column() spans (or a RowInto() buffer)
//                avoid. CountedRelation::Row() returns a span and is not
//                matched. Allowlistable with
//                `// lsens-lint: allow(row-materialize) <reason>` for cold
//                or setup loops where clarity wins.
//
// An allow annotation with an empty reason is itself a finding
// (allow-reason): the audit is only useful if every entry says *why*
// ordering or entropy cannot leak.

namespace lsens_lint {

struct Finding {
  std::string rule;     // "hash-fold", "unordered-iter", "layering",
                        // "entropy", "row-materialize", "allow-reason"
  std::string file;     // path relative to the lint root
  int line = 0;         // 1-based
  std::string message;
};

struct Allow {
  std::string rule;
  std::string file;
  int line = 0;
  std::string reason;
};

struct Report {
  std::vector<Finding> findings;  // sorted by (file, line, rule)
  std::vector<Allow> allows;      // sorted by (file, line)
  int files_scanned = 0;
};

// Lints every *.h / *.cc under `root`/src. `root` is the repository root
// (the directory containing src/). File order, and therefore the report,
// is deterministic: paths are scanned sorted.
Report RunLint(const std::filesystem::path& root);

// Human-readable report: findings first, then the allow audit. This is
// what the CLI prints; tests pin that it is byte-identical across runs.
std::string FormatReport(const Report& report);

}  // namespace lsens_lint

#endif  // LSENS_TOOLS_LSENS_LINT_H_
