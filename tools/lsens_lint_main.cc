// CLI for lsens-lint (see lsens_lint.h for the rules). Usage:
//
//   lsens-lint [repo-root]
//
// Scans <repo-root>/src (default: the current directory), prints findings
// plus the allow audit, and exits non-zero if any rule fired. Run as a
// blocking CTest entry (`ctest -R lsens_lint`) and CI job.

#include <cstdio>

#include "lsens_lint.h"

int main(int argc, char** argv) {
  const std::filesystem::path root = argc > 1 ? argv[1] : ".";
  if (!std::filesystem::exists(root / "src")) {
    std::fprintf(stderr, "lsens-lint: no src/ under '%s'\n",
                 root.string().c_str());
    return 2;
  }
  const lsens_lint::Report report = lsens_lint::RunLint(root);
  std::fputs(lsens_lint::FormatReport(report).c_str(), stdout);
  return report.findings.empty() ? 0 : 1;
}
