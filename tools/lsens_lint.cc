#include "lsens_lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string_view>

namespace lsens_lint {
namespace {

namespace fs = std::filesystem;

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ---------------------------------------------------------------------------
// Source text model: per line, the raw text, the code text (comments and
// string/char literal *contents* blanked out — quotes stay so structure is
// preserved), and the comment text (everything else blanked). Annotations
// are parsed from comment text; every rule except layering runs over code
// text. Layering reads raw `#include` lines because the path it needs is a
// string literal.
// ---------------------------------------------------------------------------
struct FileText {
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::string> comment;
};

FileText SplitSource(const std::string& content) {
  FileText out;
  enum class State { kCode, kString, kChar, kLine, kBlock };
  State state = State::kCode;
  std::string code_line;
  std::string comment_line;
  std::string raw_line;
  auto flush = [&] {
    if (!raw_line.empty() && raw_line.back() == '\r') raw_line.pop_back();
    out.raw.push_back(raw_line);
    out.code.push_back(code_line);
    out.comment.push_back(comment_line);
    raw_line.clear();
    code_line.clear();
    comment_line.clear();
  };
  const size_t n = content.size();
  for (size_t i = 0; i < n; ++i) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLine) state = State::kCode;
      flush();
      continue;
    }
    raw_line.push_back(c);
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          code_line.push_back(' ');
          comment_line.push_back(' ');
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          code_line.push_back(' ');
          comment_line.push_back(' ');
          raw_line.push_back(next);
          code_line.push_back(' ');
          comment_line.push_back(' ');
          ++i;
        } else if (c == '"') {
          state = State::kString;
          code_line.push_back('"');
          comment_line.push_back(' ');
        } else if (c == '\'') {
          state = State::kChar;
          code_line.push_back('\'');
          comment_line.push_back(' ');
        } else {
          code_line.push_back(c);
          comment_line.push_back(' ');
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && next != '\0') {
          code_line.push_back(' ');
          comment_line.push_back(' ');
          raw_line.push_back(next);
          code_line.push_back(' ');
          comment_line.push_back(' ');
          ++i;
        } else if (c == quote) {
          state = State::kCode;
          code_line.push_back(quote);
          comment_line.push_back(' ');
        } else {
          code_line.push_back(' ');
          comment_line.push_back(' ');
        }
        break;
      }
      case State::kLine:
        code_line.push_back(' ');
        comment_line.push_back(c);
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line.push_back(' ');
          comment_line.push_back(' ');
          raw_line.push_back(next);
          code_line.push_back(' ');
          comment_line.push_back(' ');
          ++i;
        } else {
          code_line.push_back(' ');
          comment_line.push_back(c);
        }
        break;
    }
  }
  flush();
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

bool LineIsBlankCode(const std::string& code) {
  return Trim(code).empty();
}

// Whole-word search: `what` at a position where neither neighbor is an
// identifier character.
std::vector<size_t> FindWord(const std::string& text, std::string_view what) {
  std::vector<size_t> hits;
  size_t pos = 0;
  while ((pos = text.find(what, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const size_t end = pos + what.size();
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

std::vector<std::string> Identifiers(const std::string& text) {
  std::vector<std::string> ids;
  size_t i = 0;
  while (i < text.size()) {
    if (IsIdentChar(text[i]) &&
        std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
      size_t j = i;
      while (j < text.size() && IsIdentChar(text[j])) ++j;
      ids.push_back(text.substr(i, j - i));
      i = j;
    } else if (IsIdentChar(text[i])) {
      // Skip a token that starts with a digit (numeric literal tail).
      while (i < text.size() && IsIdentChar(text[i])) ++i;
    } else {
      ++i;
    }
  }
  return ids;
}

// ---------------------------------------------------------------------------
// Annotations. `// lsens-lint: allow(<rule>) <reason>` covers the same
// line, or — when the annotation line carries no code — the next line with
// code on it. A declaration-site allow (the covered line declares an
// unordered container) covers every loop over that container's name.
// ---------------------------------------------------------------------------
struct ParsedAllow {
  std::string rule;
  std::string reason;
  int line = 0;           // 0-based annotation line
  int covered_line = -1;  // 0-based code line it covers
};

constexpr std::string_view kAllowMarker = "lsens-lint: allow(";

std::vector<ParsedAllow> ParseAllows(const FileText& text) {
  std::vector<ParsedAllow> allows;
  for (size_t i = 0; i < text.comment.size(); ++i) {
    const std::string& c = text.comment[i];
    const size_t pos = c.find(kAllowMarker);
    if (pos == std::string::npos) continue;
    ParsedAllow allow;
    allow.line = static_cast<int>(i);
    const size_t rule_begin = pos + kAllowMarker.size();
    const size_t rule_end = c.find(')', rule_begin);
    if (rule_end == std::string::npos) continue;
    allow.rule = Trim(c.substr(rule_begin, rule_end - rule_begin));
    allow.reason = Trim(c.substr(rule_end + 1));
    allow.covered_line = static_cast<int>(i);
    if (LineIsBlankCode(text.code[i])) {
      for (size_t j = i + 1; j < text.code.size(); ++j) {
        if (!LineIsBlankCode(text.code[j])) {
          allow.covered_line = static_cast<int>(j);
          break;
        }
        // The reason may continue over the rest of the comment block; the
        // audit should carry the whole justification, not its first line.
        std::string cont = Trim(text.comment[j]);
        while (!cont.empty() && (cont.front() == '/' || cont.front() == '*')) {
          cont.erase(cont.begin());
        }
        cont = Trim(cont);
        if (!cont.empty()) {
          if (!allow.reason.empty()) allow.reason += ' ';
          allow.reason += cont;
        }
      }
    }
    allows.push_back(allow);
  }
  return allows;
}

// ---------------------------------------------------------------------------
// Unordered-container declarations: `unordered_map<...> name` /
// `unordered_set<...> name` (members, locals, parameters). Heuristic and
// proudly so — the fixture corpus pins exactly what is recognized.
// ---------------------------------------------------------------------------
struct UnorderedDecl {
  std::string name;
  int line = 0;  // 0-based
  bool allowed = false;
};

struct JoinedCode {
  std::string text;
  std::vector<size_t> line_starts;  // offset of each line in `text`

  int LineOf(size_t offset) const {
    auto it = std::upper_bound(line_starts.begin(), line_starts.end(), offset);
    return static_cast<int>(it - line_starts.begin()) - 1;
  }
};

JoinedCode JoinCode(const FileText& text) {
  JoinedCode out;
  for (const std::string& line : text.code) {
    out.line_starts.push_back(out.text.size());
    out.text += line;
    out.text += '\n';
  }
  return out;
}

std::vector<UnorderedDecl> FindUnorderedDecls(const JoinedCode& code) {
  std::vector<UnorderedDecl> decls;
  for (std::string_view word : {"unordered_map", "unordered_set"}) {
    for (size_t pos : FindWord(code.text, word)) {
      size_t i = pos + word.size();
      const std::string& t = code.text;
      while (i < t.size() && std::isspace(static_cast<unsigned char>(t[i])))
        ++i;
      if (i >= t.size() || t[i] != '<') continue;
      int depth = 0;
      while (i < t.size()) {
        if (t[i] == '<') ++depth;
        if (t[i] == '>') {
          --depth;
          if (depth == 0) break;
        }
        ++i;
      }
      if (depth != 0) continue;
      ++i;  // past the closing '>'
      // Skip qualifiers between the type and the declared name.
      for (;;) {
        while (i < t.size() && std::isspace(static_cast<unsigned char>(t[i])))
          ++i;
        if (i < t.size() && (t[i] == '&' || t[i] == '*')) {
          ++i;
        } else if (t.compare(i, 5, "const") == 0 &&
                   (i + 5 >= t.size() || !IsIdentChar(t[i + 5]))) {
          i += 5;
        } else {
          break;
        }
      }
      size_t name_begin = i;
      while (i < t.size() && IsIdentChar(t[i])) ++i;
      if (i == name_begin) continue;  // no declared name (e.g. ::iterator)
      std::string name = t.substr(name_begin, i - name_begin);
      while (i < t.size() && std::isspace(static_cast<unsigned char>(t[i])))
        ++i;
      const char after = i < t.size() ? t[i] : '\0';
      if (after != ';' && after != '=' && after != '{' && after != ',' &&
          after != ')') {
        continue;  // not a declaration (function return type, cast, ...)
      }
      decls.push_back({std::move(name), code.LineOf(pos), false});
    }
  }
  return decls;
}

// ---------------------------------------------------------------------------
// Iteration sites over unordered containers.
// ---------------------------------------------------------------------------
struct IterationSite {
  int line = 0;  // 0-based
  std::string name;
  std::string what;  // "range-for" or "begin()"
};

std::vector<IterationSite> FindIterations(
    const JoinedCode& code, const std::set<std::string>& names) {
  std::vector<IterationSite> sites;
  const std::string& t = code.text;

  // Range-for: `for ( ... : <expr> )` with a top-level ':' (never `::`).
  for (size_t pos : FindWord(t, "for")) {
    size_t i = pos + 3;
    while (i < t.size() && std::isspace(static_cast<unsigned char>(t[i]))) ++i;
    if (i >= t.size() || t[i] != '(') continue;
    const size_t open = i;
    int depth = 0;
    size_t close = std::string::npos;
    for (size_t j = open; j < t.size(); ++j) {
      if (t[j] == '(') ++depth;
      if (t[j] == ')') {
        --depth;
        if (depth == 0) {
          close = j;
          break;
        }
      }
    }
    if (close == std::string::npos) continue;
    const std::string header = t.substr(open + 1, close - open - 1);
    size_t colon = std::string::npos;
    int nest = 0;
    for (size_t j = 0; j < header.size(); ++j) {
      const char c = header[j];
      if (c == ':' && j + 1 < header.size() && header[j + 1] == ':') {
        ++j;
        continue;
      }
      if (c == '(' || c == '[' || c == '{' || c == '<') ++nest;
      if (c == ')' || c == ']' || c == '}' || c == '>') --nest;
      if (c == ':' && nest == 0) {
        colon = j;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    const std::string range = header.substr(colon + 1);
    bool hit = range.find("unordered_map") != std::string::npos ||
               range.find("unordered_set") != std::string::npos;
    std::string hit_name = hit ? "<inline unordered container>" : "";
    if (!hit) {
      for (const std::string& id : Identifiers(range)) {
        if (names.count(id) != 0) {
          hit = true;
          hit_name = id;
          break;
        }
      }
    }
    if (hit) sites.push_back({code.LineOf(pos), hit_name, "range-for"});
  }

  // Iterator loops and order-sensitive traversals: `<name>.begin()` /
  // `<name>->rbegin()` etc. A bare `.end()` (the find() idiom) is fine.
  for (std::string_view method : {"begin", "cbegin", "rbegin"}) {
    for (size_t pos : FindWord(t, method)) {
      if (pos + method.size() >= t.size() || t[pos + method.size()] != '(')
        continue;
      size_t r = pos;
      if (r >= 1 && t[r - 1] == '.') {
        r -= 1;
      } else if (r >= 2 && t[r - 2] == '-' && t[r - 1] == '>') {
        r -= 2;
      } else {
        continue;
      }
      size_t name_end = r;
      size_t name_begin = name_end;
      while (name_begin > 0 && IsIdentChar(t[name_begin - 1])) --name_begin;
      const std::string receiver = t.substr(name_begin, name_end - name_begin);
      if (names.count(receiver) != 0) {
        sites.push_back({code.LineOf(pos), receiver, "begin()"});
      }
    }
  }
  return sites;
}

// ---------------------------------------------------------------------------
// row-materialize: Relation-typed variables whose .Row() is called inside a
// loop body in exec-layer files. Relation::Row() gathers a fresh vector per
// call; hot loops should read Column() spans or reuse a buffer via
// RowInto(). Word-boundary matching means `CountedRelation` (whose Row()
// returns a span) never matches.
// ---------------------------------------------------------------------------
std::set<std::string> FindRelationDeclNames(const JoinedCode& code) {
  std::set<std::string> names;
  const std::string& t = code.text;
  for (size_t pos : FindWord(t, "Relation")) {
    size_t i = pos + 8;  // past "Relation"
    // Skip qualifiers between the type and the declared name.
    for (;;) {
      while (i < t.size() && std::isspace(static_cast<unsigned char>(t[i])))
        ++i;
      if (i < t.size() && (t[i] == '&' || t[i] == '*')) {
        ++i;
      } else if (t.compare(i, 5, "const") == 0 &&
                 (i + 5 >= t.size() || !IsIdentChar(t[i + 5]))) {
        i += 5;
      } else {
        break;
      }
    }
    size_t name_begin = i;
    while (i < t.size() && IsIdentChar(t[i])) ++i;
    if (i == name_begin) continue;  // constructor call, forward decl, ...
    std::string name = t.substr(name_begin, i - name_begin);
    while (i < t.size() && std::isspace(static_cast<unsigned char>(t[i])))
      ++i;
    const char after = i < t.size() ? t[i] : '\0';
    if (after != ';' && after != '=' && after != ',' && after != ')' &&
        after != '{') {
      continue;  // not a variable declaration (function return type, ...)
    }
    names.insert(std::move(name));
  }
  return names;
}

struct CharRange {
  size_t begin = 0;
  size_t end = 0;
};

// Body ranges of for/while/do loops (brace-delimited or single-statement).
// Nested loops produce nested ranges; containment in any range counts.
std::vector<CharRange> FindLoopBodies(const std::string& t) {
  std::vector<CharRange> bodies;
  auto brace_or_statement = [&](size_t i) -> CharRange {
    while (i < t.size() && std::isspace(static_cast<unsigned char>(t[i])))
      ++i;
    if (i < t.size() && t[i] == '{') {
      int depth = 0;
      for (size_t j = i; j < t.size(); ++j) {
        if (t[j] == '{') ++depth;
        if (t[j] == '}') {
          --depth;
          if (depth == 0) return {i, j + 1};
        }
      }
      return {i, t.size()};
    }
    // Single statement: up to the next ';' at paren depth 0.
    int depth = 0;
    for (size_t j = i; j < t.size(); ++j) {
      if (t[j] == '(') ++depth;
      if (t[j] == ')') --depth;
      if (t[j] == ';' && depth == 0) return {i, j + 1};
    }
    return {i, t.size()};
  };
  for (std::string_view kw : {"for", "while"}) {
    for (size_t pos : FindWord(t, kw)) {
      size_t i = pos + kw.size();
      while (i < t.size() && std::isspace(static_cast<unsigned char>(t[i])))
        ++i;
      if (i >= t.size() || t[i] != '(') continue;
      int depth = 0;
      size_t close = std::string::npos;
      for (size_t j = i; j < t.size(); ++j) {
        if (t[j] == '(') ++depth;
        if (t[j] == ')') {
          --depth;
          if (depth == 0) {
            close = j;
            break;
          }
        }
      }
      if (close == std::string::npos) continue;
      bodies.push_back(brace_or_statement(close + 1));
    }
  }
  for (size_t pos : FindWord(t, "do")) {
    size_t i = pos + 2;
    while (i < t.size() && std::isspace(static_cast<unsigned char>(t[i])))
      ++i;
    if (i < t.size() && t[i] == '{') bodies.push_back(brace_or_statement(i));
  }
  return bodies;
}

std::vector<IterationSite> FindRowMaterializeSites(
    const JoinedCode& code, const std::set<std::string>& names) {
  std::vector<IterationSite> sites;
  if (names.empty()) return sites;
  const std::string& t = code.text;
  const std::vector<CharRange> bodies = FindLoopBodies(t);
  auto in_loop = [&](size_t offset) {
    for (const CharRange& r : bodies) {
      if (offset >= r.begin && offset < r.end) return true;
    }
    return false;
  };
  for (size_t pos : FindWord(t, "Row")) {
    if (pos + 3 >= t.size() || t[pos + 3] != '(') continue;
    size_t r = pos;
    if (r >= 1 && t[r - 1] == '.') {
      r -= 1;
    } else if (r >= 2 && t[r - 2] == '-' && t[r - 1] == '>') {
      r -= 2;
    } else {
      continue;
    }
    size_t name_end = r;
    size_t name_begin = name_end;
    while (name_begin > 0 && IsIdentChar(t[name_begin - 1])) --name_begin;
    const std::string receiver = t.substr(name_begin, name_end - name_begin);
    if (names.count(receiver) == 0) continue;
    if (!in_loop(pos)) continue;
    sites.push_back({code.LineOf(pos), receiver, "Row()"});
  }
  return sites;
}

// ---------------------------------------------------------------------------
// Per-rule scanners.
// ---------------------------------------------------------------------------
const std::map<std::string, std::set<std::string>>& LayerDag() {
  static const std::map<std::string, std::set<std::string>> kDag = {
      {"common", {"common"}},
      {"storage", {"storage", "common"}},
      {"exec", {"exec", "storage", "common"}},
      {"query", {"query", "exec", "storage", "common"}},
      {"sensitivity",
       {"sensitivity", "query", "exec", "storage", "common"}},
      {"server",
       {"server", "sensitivity", "query", "exec", "storage", "common"}},
      {"dp", {"dp", "sensitivity", "query", "exec", "storage", "common"}},
      {"workload",
       {"workload", "sensitivity", "query", "exec", "storage", "common"}},
  };
  return kDag;
}

// Files allowed to define the shared hash fold (rule hash-fold) and to
// read entropy/clocks (rule entropy).
bool IsHashFoldHome(const std::string& rel) {
  return rel == "src/storage/value.h" || rel == "src/common/rng.h" ||
         rel == "src/common/rng.cc";
}

bool IsEntropyHome(const std::string& rel) {
  return rel == "src/common/rng.h" || rel == "src/common/rng.cc" ||
         rel == "src/common/timer.h" || rel == "src/common/timer.cc";
}

// The well-known 64-bit mix magic constants (splitmix64 / murmur3
// fmix64 / golden ratio / xoshiro). A hex literal equal to one of these
// outside the hash-fold home files is a competing fold in the making.
const std::set<std::string>& MixMagic() {
  static const std::set<std::string> kMagic = {
      "9e3779b97f4a7c15", "9e3779b9",         "bf58476d1ce4e5b9",
      "94d049bb133111eb", "ff51afd7ed558ccd", "c4ceb9fe1a85ec53",
      "2545f4914f6cdd1d", "d1342543de82ef95",
  };
  return kMagic;
}

void ScanHashFold(const std::string& rel, const FileText& text,
                  std::vector<Finding>* findings) {
  if (IsHashFoldHome(rel)) return;
  for (size_t i = 0; i < text.code.size(); ++i) {
    const std::string& code = text.code[i];
    const int line = static_cast<int>(i) + 1;
    for (std::string_view fold : {"Mix64", "SplitMix64"}) {
      if (!FindWord(code, fold).empty()) {
        findings->push_back(
            {"hash-fold", rel, line,
             std::string(fold) +
                 " may only be referenced in common/rng and storage/value.h; "
                 "hash through HashValues/HashValueFold instead"});
      }
    }
    // Hex literals matching a known mix constant.
    size_t pos = 0;
    while ((pos = code.find("0x", pos)) != std::string::npos) {
      size_t j = pos + 2;
      std::string digits;
      while (j < code.size() &&
             std::isxdigit(static_cast<unsigned char>(code[j])) != 0) {
        digits.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(code[j]))));
        ++j;
      }
      if (MixMagic().count(digits) != 0) {
        findings->push_back(
            {"hash-fold", rel, line,
             "mix-fold magic constant 0x" + digits +
                 " outside storage/value.h — a competing hash fold would "
                 "break shard-routing/table-hash agreement"});
      }
      pos = j;
    }
    // Redefinition of the shared seed/fold names: the canonical name
    // directly preceded by a type keyword (or in a #define) is a
    // definition; a call or a use on the right of `=` is not.
    for (std::string_view name :
         {"kValueHashSeed", "HashValueFold", "HashValues"}) {
      for (size_t hit : FindWord(code, name)) {
        bool definition = false;
        if (Trim(code).rfind("#define", 0) == 0) {
          definition = true;
        } else {
          size_t k = hit;
          while (k > 0 &&
                 std::isspace(static_cast<unsigned char>(code[k - 1])) != 0) {
            --k;
          }
          size_t tok_end = k;
          while (k > 0 && IsIdentChar(code[k - 1])) --k;
          const std::string prev = code.substr(k, tok_end - k);
          definition = prev == "uint64_t" || prev == "size_t" ||
                       prev == "auto" || prev == "constexpr";
        }
        if (definition) {
          findings->push_back(
              {"hash-fold", rel, line,
               "redefinition of " + std::string(name) +
                   " outside storage/value.h — there is exactly one value-"
                   "hash fold"});
        }
      }
    }
  }
}

void ScanLayering(const std::string& rel, const FileText& text,
                  std::vector<Finding>* findings) {
  // rel is "src/<layer>/...".
  const std::string inner = rel.substr(4);
  const size_t slash = inner.find('/');
  if (slash == std::string::npos) return;
  const std::string layer = inner.substr(0, slash);
  const auto it = LayerDag().find(layer);
  if (it == LayerDag().end()) return;
  for (size_t i = 0; i < text.raw.size(); ++i) {
    const std::string trimmed = Trim(text.raw[i]);
    if (trimmed.rfind("#include \"", 0) != 0) continue;
    const size_t path_begin = 10;
    const size_t path_end = trimmed.find('"', path_begin);
    if (path_end == std::string::npos) continue;
    const std::string path = trimmed.substr(path_begin, path_end - path_begin);
    const size_t dir_end = path.find('/');
    if (dir_end == std::string::npos) continue;
    const std::string target = path.substr(0, dir_end);
    if (LayerDag().count(target) == 0) continue;
    if (it->second.count(target) == 0) {
      findings->push_back(
          {"layering", rel, static_cast<int>(i) + 1,
           "layer '" + layer + "' must not include '" + path +
               "': the DAG is common <- storage <- exec <- query <- "
               "sensitivity <- {server, dp, workload}"});
    }
  }
}

struct EntropyPattern {
  std::string_view ident;
  bool needs_call;  // only flag when directly followed by '('
};

void ScanEntropy(const std::string& rel, const FileText& text,
                 const std::set<int>& allowed_lines,
                 std::vector<Finding>* findings) {
  if (IsEntropyHome(rel)) return;
  static constexpr std::array<EntropyPattern, 13> kPatterns = {{
      {"rand", true},
      {"srand", true},
      {"time", true},
      {"clock", true},
      {"random_device", false},
      {"system_clock", false},
      {"steady_clock", false},
      {"high_resolution_clock", false},
      {"gettimeofday", false},
      {"clock_gettime", false},
      {"localtime", false},
      {"gmtime", false},
      {"mktime", false},
  }};
  for (size_t i = 0; i < text.code.size(); ++i) {
    const std::string& code = text.code[i];
    const int line = static_cast<int>(i) + 1;
    if (allowed_lines.count(static_cast<int>(i)) != 0) continue;
    for (const EntropyPattern& p : kPatterns) {
      for (size_t hit : FindWord(code, p.ident)) {
        if (p.needs_call) {
          size_t j = hit + p.ident.size();
          while (j < code.size() &&
                 std::isspace(static_cast<unsigned char>(code[j])) != 0) {
            ++j;
          }
          if (j >= code.size() || code[j] != '(') continue;
        }
        findings->push_back(
            {"entropy", rel, line,
             "'" + std::string(p.ident) +
                 "' outside common/rng and common/timer — all randomness "
                 "and timing must flow through seeded Rng / WallTimer so "
                 "runs replay bit-for-bit"});
      }
    }
  }
}

std::string ReadFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string RelPath(const fs::path& root, const fs::path& p) {
  std::string rel = fs::relative(p, root).generic_string();
  return rel;
}

}  // namespace

Report RunLint(const fs::path& root) {
  Report report;
  const fs::path src = root / "src";
  std::vector<fs::path> files;
  if (fs::exists(src)) {
    for (const auto& entry : fs::recursive_directory_iterator(src)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  // First pass: parse every file once; collect unordered declarations per
  // file so a .cc can see its same-stem header's members.
  std::map<std::string, FileText> texts;
  std::map<std::string, std::vector<ParsedAllow>> allows;
  std::map<std::string, std::vector<UnorderedDecl>> decls;
  for (const fs::path& p : files) {
    const std::string rel = RelPath(root, p);
    FileText text = SplitSource(ReadFile(p));
    allows[rel] = ParseAllows(text);
    const JoinedCode joined = JoinCode(text);
    decls[rel] = FindUnorderedDecls(joined);
    texts[rel] = std::move(text);
  }

  for (const fs::path& p : files) {
    const std::string rel = RelPath(root, p);
    const FileText& text = texts[rel];
    ++report.files_scanned;

    // Allow bookkeeping: audit entries, empty reasons, unknown rules, and
    // per-rule covered lines (0-based).
    std::map<std::string, std::set<int>> covered;
    for (const ParsedAllow& a : allows[rel]) {
      if (a.rule != "unordered-iter" && a.rule != "entropy" &&
          a.rule != "row-materialize") {
        report.findings.push_back(
            {"allow-reason", rel, a.line + 1,
             "rule '" + a.rule +
                 "' is not allowlistable (only unordered-iter, entropy, and "
                 "row-materialize are)"});
        continue;
      }
      if (a.reason.empty()) {
        report.findings.push_back(
            {"allow-reason", rel, a.line + 1,
             "allow(" + a.rule +
                 ") needs a reason: say why ordering/entropy/row cost cannot "
                 "leak into results or stats"});
        continue;
      }
      report.allows.push_back({a.rule, rel, a.line + 1, a.reason});
      covered[a.rule].insert(a.line);
      covered[a.rule].insert(a.covered_line);
    }

    ScanHashFold(rel, text, &report.findings);
    ScanLayering(rel, text, &report.findings);
    ScanEntropy(rel, text, covered["entropy"], &report.findings);

    // unordered-iter: declarations from this file plus, for a .cc, its
    // same-stem header (members iterated in the implementation file).
    std::vector<UnorderedDecl> scope_decls = decls[rel];
    auto mark_allowed = [](std::vector<UnorderedDecl>& ds,
                           const std::set<int>& cov) {
      for (UnorderedDecl& d : ds) {
        if (cov.count(d.line) != 0) d.allowed = true;
      }
    };
    mark_allowed(scope_decls, covered["unordered-iter"]);
    if (p.extension() == ".cc") {
      fs::path header = p;
      header.replace_extension(".h");
      const std::string hrel = RelPath(root, header);
      auto it = decls.find(hrel);
      if (it != decls.end()) {
        std::vector<UnorderedDecl> hdecls = it->second;
        std::set<int> hcov;
        for (const ParsedAllow& a : allows[hrel]) {
          if (a.rule == "unordered-iter" && !a.reason.empty()) {
            hcov.insert(a.line);
            hcov.insert(a.covered_line);
          }
        }
        mark_allowed(hdecls, hcov);
        scope_decls.insert(scope_decls.end(), hdecls.begin(), hdecls.end());
      }
    }
    std::set<std::string> names;
    std::set<std::string> allowed_names;
    for (const UnorderedDecl& d : scope_decls) {
      names.insert(d.name);
      if (d.allowed) allowed_names.insert(d.name);
    }
    const JoinedCode joined = JoinCode(text);
    for (const IterationSite& site : FindIterations(joined, names)) {
      if (allowed_names.count(site.name) != 0) continue;
      if (covered["unordered-iter"].count(site.line) != 0) continue;
      report.findings.push_back(
          {"unordered-iter", rel, site.line + 1,
           site.what + " over unordered container '" + site.name +
               "': iteration order is hash order — convert to a sorted "
               "snapshot or annotate `// lsens-lint: allow(unordered-iter) "
               "<reason>`"});
    }

    // row-materialize (advisory, exec layer only): Relation::Row() gathers
    // a fresh vector per call — inside a loop that is a per-row allocation
    // the columnar layout exists to avoid.
    if (rel.rfind("src/exec/", 0) == 0) {
      const std::set<std::string> rel_names = FindRelationDeclNames(joined);
      for (const IterationSite& site :
           FindRowMaterializeSites(joined, rel_names)) {
        if (covered["row-materialize"].count(site.line) != 0) continue;
        report.findings.push_back(
            {"row-materialize", rel, site.line + 1,
             "Relation::Row() on '" + site.name +
                 "' inside a loop materializes a row vector per iteration — "
                 "read Column() spans or reuse a buffer via RowInto(), or "
                 "annotate `// lsens-lint: allow(row-materialize) <reason>`"});
      }
    }
  }

  auto finding_key = [](const Finding& f) {
    return std::tie(f.file, f.line, f.rule, f.message);
  };
  std::sort(report.findings.begin(), report.findings.end(),
            [&](const Finding& a, const Finding& b) {
              return finding_key(a) < finding_key(b);
            });
  std::sort(report.allows.begin(), report.allows.end(),
            [](const Allow& a, const Allow& b) {
              return std::tie(a.file, a.line) < std::tie(b.file, b.line);
            });
  return report;
}

std::string FormatReport(const Report& report) {
  std::ostringstream out;
  out << "lsens-lint: scanned " << report.files_scanned << " file(s)\n";
  if (report.findings.empty()) {
    out << "lsens-lint: no violations\n";
  } else {
    out << "lsens-lint: " << report.findings.size() << " violation(s)\n";
    for (const Finding& f : report.findings) {
      out << "  " << f.file << ":" << f.line << ": [" << f.rule << "] "
          << f.message << "\n";
    }
  }
  out << "lsens-lint: allow audit (" << report.allows.size()
      << " annotation(s))\n";
  for (const Allow& a : report.allows) {
    out << "  " << a.file << ":" << a.line << ": allow(" << a.rule << ") "
        << a.reason << "\n";
  }
  return out.str();
}

}  // namespace lsens_lint
