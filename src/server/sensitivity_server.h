#ifndef LSENS_SERVER_SENSITIVITY_SERVER_H_
#define LSENS_SERVER_SENSITIVITY_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "sensitivity/incremental.h"
#include "sensitivity/tsens.h"
#include "storage/database.h"

namespace lsens {

class SensitivityServer;
class ServerSession;

namespace internal {
struct Epoch;
}  // namespace internal

// Serving knobs. The same TSensComputeOptions drive every compute the
// server runs (writer warm passes and reader cold computes alike), so the
// cache fingerprint — and therefore the warm-map key — is identical on both
// sides; only the execution knobs (threads, ctx) differ, and those are
// excluded from the fingerprint by construction.
struct ServingConfig {
  SensitivityCacheConfig cache;

  // Result-affecting compute options shared by all sessions. join.ctx and
  // capture are owned by the server and overridden per call.
  TSensComputeOptions options;

  // Thread count for the writer's repair/warm pass (sharded delta repair).
  int writer_threads = 0;

  // Thread count for reader-side cold computes. Keep 0 when reader
  // sessions run on global-pool workers — parallel regions never nest, so
  // a nonzero value would silently serialize there anyway.
  int reader_threads = 0;

  // Admission cap: queued DatabaseDelta batches coalesced into one writer
  // turn (one repair pass, one published epoch).
  size_t max_turn_deltas = 64;

  // true: deterministic stepped mode — no writer thread is spawned and the
  // owner drives TurnEpoch() explicitly, so a scripted interleaving of
  // submits, turns, and session queries replays bit-identically. false:
  // the constructor spawns the free-running writer loop.
  bool manual_turns = false;
};

// Aggregate server counters (a consistent snapshot is returned by copy).
struct ServingStats {
  uint64_t epochs_published = 0;  // includes the constructor's epoch 1
  uint64_t turns = 0;             // writer turns that published an epoch
  uint64_t empty_turns = 0;       // turns that applied nothing: no publish
  uint64_t deltas_applied = 0;    // DatabaseDelta batches applied
  uint64_t deltas_rejected = 0;   // poisoned batches refused atomically
  uint64_t max_turn_deltas = 0;   // largest coalesced batch so far
  uint64_t queries_served = 0;
  uint64_t warm_hits = 0;      // answered from the epoch's warm result map
  uint64_t cold_hits = 0;      // answered from the epoch's cold memo
  uint64_t cold_computes = 0;  // computed by the reader from the snapshot
  uint64_t sessions_opened = 0;
  uint64_t epochs_reclaimed = 0;  // retired snapshots actually freed
  uint64_t epochs_live = 0;       // gauge: current + still-pinned retired
  uint64_t epoch_bytes = 0;       // gauge: bytes held by live snapshots
};

// A pinned, immutable epoch view. While a pin is alive the snapshot it
// references cannot be reclaimed, however many writer turns pass; the last
// pin on a retired epoch frees it on release. Move-only; released on
// destruction. Pins must not outlive the server.
class EpochPin {
 public:
  EpochPin() = default;
  EpochPin(EpochPin&& other) noexcept;
  EpochPin& operator=(EpochPin&& other) noexcept;
  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;
  ~EpochPin();

  bool valid() const { return epoch_ != nullptr; }
  uint64_t epoch() const;
  // The immutable snapshot — safe for arbitrary concurrent const reads
  // (oracle recomputes read it directly).
  const Database& db() const;
  const std::vector<std::pair<std::string, uint64_t>>& versions() const;

  // Early unpin; the pin becomes invalid.
  void Release();

 private:
  friend class SensitivityServer;
  EpochPin(SensitivityServer* server, std::shared_ptr<internal::Epoch> epoch);

  SensitivityServer* server_ = nullptr;
  std::shared_ptr<internal::Epoch> epoch_;
};

// One client's handle onto the server. A session is single-threaded state
// (it owns the per-session ExecContext): one thread at a time, though
// different sessions run fully concurrently. Render ctx() with
// RenderExecStats to see the per-session profile — "serve.*" pseudo-ops
// next to the join kernels of this session's cold computes.
class ServerSession {
 public:
  ServerSession(const ServerSession&) = delete;
  ServerSession& operator=(const ServerSession&) = delete;

  const std::string& name() const { return name_; }

  // Pins the current epoch so several queries see one consistent view.
  EpochPin Pin();

  // One-shot query: pins the current epoch, answers against it, releases.
  StatusOr<SensitivityResult> Query(const ConjunctiveQuery& q);

  // Answers against an explicitly pinned epoch (the snapshot-consistent
  // path: results are bit-identical to a from-scratch compute on pin.db()).
  StatusOr<SensitivityResult> QueryAt(const EpochPin& pin,
                                      const ConjunctiveQuery& q);

  ExecContext& ctx() { return ctx_; }

 private:
  friend class SensitivityServer;
  ServerSession(SensitivityServer* server, std::string name);

  SensitivityServer* server_;
  std::string name_;
  ExecContext ctx_;
};

// A long-lived, in-process concurrent sensitivity server over one Database
// and one shared SensitivityCache, following the PrivSQL serving model:
//
//   - N reader sessions answer queries against immutable epoch snapshots.
//     A reader pins the epoch it starts on (refcount); every answer is
//     bit-identical to a from-scratch compute against that snapshot.
//   - One writer (the spawned loop, or the owner via TurnEpoch in manual
//     mode) coalesces queued DatabaseDelta batches into one turn: applies
//     them to the master database (each batch all-or-nothing — a poisoned
//     batch is rejected and the published epoch is untouched), runs ONE
//     shared-cache repair pass to warm every registered query's result,
//     then publishes the next epoch atomically (RCU-style pointer swap).
//   - Retired epochs are reclaimed when their last pin drops; a publish
//     with no pinned readers reclaims the previous epoch immediately.
//
// Reads never block on the writer and never see a half-applied delta: a
// pinned snapshot is immutable by construction. Queries on an epoch are
// answered from the epoch's warm map (written by the writer's repair pass,
// read-only afterwards), else from its cold memo, else computed from the
// snapshot on the reader's thread and memoized for later readers.
//
// Lifetime: sessions and pins must be released before the server is
// destroyed (the destructor checks). After Shutdown() the queue is drained
// and further queries are programming errors (LSENS_CHECK); SubmitDelta
// returns a Status instead, so producers can race shutdown gracefully.
class SensitivityServer {
 public:
  // Takes ownership of the database and publishes epoch 1 from it. In
  // free-running mode the writer thread starts here.
  explicit SensitivityServer(Database db, ServingConfig config = {});
  ~SensitivityServer();
  SensitivityServer(const SensitivityServer&) = delete;
  SensitivityServer& operator=(const SensitivityServer&) = delete;

  // Registers a query for per-turn warming: from the next turn on, the
  // writer's repair pass keeps its result hot in every published epoch
  // (one SyncStore pass repairs the shared nodes of all registered queries
  // exactly once per turn). Unregistered queries are still answerable —
  // they just compute cold on first touch per epoch. Callable any time.
  void RegisterQuery(const ConjunctiveQuery& q);

  // Queues one atomic batch for the writer's next turn. Unsupported after
  // Shutdown() (the queue no longer drains).
  Status SubmitDelta(DatabaseDelta delta);

  // Interns `s` in the master database's value dictionary and returns its
  // code — the door through which delta producers mint codes for string
  // values before submitting them. Safe from any thread: interning is
  // append-only (codes are stable), and the same lock spans the snapshot
  // clone inside a turn, so an epoch never copies a half-built dictionary.
  // Epochs published before this call simply do not contain the new code:
  // their ContainsValue range check answers false (no mis-decode), and the
  // next published epoch renders it.
  Value InternValue(std::string_view s);

  // Manual mode only: coalesces the queued batches (up to the admission
  // cap) and publishes the next epoch. Returns true when an epoch was
  // published; false when nothing applied (current epoch untouched).
  bool TurnEpoch();

  std::unique_ptr<ServerSession> OpenSession(std::string name);

  // Stops the writer after draining the queue, then rejects further work.
  // Idempotent; safe to call from any one thread at a time.
  void Shutdown();

  uint64_t current_epoch() const;
  ServingStats stats() const;

  // The writer's execution profile (repair passes record "cache.*" ops
  // here). Read only while no writer turn can run (manual mode between
  // turns, or after Shutdown).
  const ExecContext& writer_ctx() const { return writer_ctx_; }

 private:
  friend class EpochPin;
  friend class ServerSession;

  struct RegisteredQuery {
    std::string key;  // cache fingerprint under config_.options
    ConjunctiveQuery query;
  };

  void WriterLoop();
  // One writer turn; returns true when an epoch was published.
  bool DoTurn();
  EpochPin PinCurrent();
  void Unpin(internal::Epoch* epoch);
  // Drops retired epochs with zero pins and refreshes the gauges.
  void ReclaimLocked();
  StatusOr<SensitivityResult> ServeQuery(const EpochPin& pin,
                                         const ConjunctiveQuery& q,
                                         ExecContext& ctx);
  void CheckServing() const;

  ServingConfig config_;

  // Writer-owned state: the master database, the shared cache repaired
  // against it, and the writer's stats context. Only the writer thread (or
  // the owner, in manual mode / the constructor) touches these — except
  // the master's dictionary, which InternValue may append to from any
  // thread under dict_mu_; the snapshot clone in a turn holds the same
  // lock so no epoch copies a dictionary mid-append.
  Database master_;
  SensitivityCache cache_;
  ExecContext writer_ctx_;
  std::mutex dict_mu_;

  // Admission queue; guards the registered-query list too.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<DatabaseDelta> queue_;
  std::vector<RegisteredQuery> registered_;
  bool stop_ = false;  // set once by Shutdown; writer drains then exits

  // Epoch list, current pointer, pin counts, and stats.
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<internal::Epoch>> live_;
  std::shared_ptr<internal::Epoch> current_;
  uint64_t epoch_counter_ = 0;
  ServingStats stats_;

  std::mutex shutdown_mu_;            // serializes Shutdown calls
  std::atomic<bool> shutdown_{false};  // queries after this are fatal
  std::thread writer_;
};

}  // namespace lsens

#endif  // LSENS_SERVER_SENSITIVITY_SERVER_H_
