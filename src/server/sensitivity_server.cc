#include "server/sensitivity_server.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "common/timer.h"

namespace lsens {

namespace internal {

// One published epoch: an immutable snapshot plus its result maps. `warm`
// is written by the writer before the epoch is published and read-only
// afterwards (publication happens under the server's mu_, which readers
// acquire to pin, so the handoff is ordered). `cold` memoizes reader-side
// computes and is the only mutable field; `pins` is guarded by the
// server's mu_.
struct Epoch {
  uint64_t id = 0;
  Database db;
  std::vector<std::pair<std::string, uint64_t>> versions;
  size_t bytes = 0;
  // lsens-lint: allow(unordered-iter) lookup-only result maps keyed by the
  // canonical query fingerprint; serving probes with find(), never walks —
  // per-query answers cannot depend on map order.
  std::unordered_map<std::string, SensitivityResult> warm;
  std::mutex cold_mu;
  std::unordered_map<std::string, SensitivityResult> cold;
  uint64_t pins = 0;
};

}  // namespace internal

// --- EpochPin ---------------------------------------------------------------

EpochPin::EpochPin(SensitivityServer* server,
                   std::shared_ptr<internal::Epoch> epoch)
    : server_(server), epoch_(std::move(epoch)) {}

EpochPin::EpochPin(EpochPin&& other) noexcept
    : server_(other.server_), epoch_(std::move(other.epoch_)) {
  other.server_ = nullptr;
  other.epoch_ = nullptr;
}

EpochPin& EpochPin::operator=(EpochPin&& other) noexcept {
  if (this != &other) {
    Release();
    server_ = other.server_;
    epoch_ = std::move(other.epoch_);
    other.server_ = nullptr;
    other.epoch_ = nullptr;
  }
  return *this;
}

EpochPin::~EpochPin() { Release(); }

void EpochPin::Release() {
  if (epoch_ != nullptr) {
    server_->Unpin(epoch_.get());
    epoch_.reset();
    server_ = nullptr;
  }
}

uint64_t EpochPin::epoch() const {
  LSENS_CHECK(valid());
  return epoch_->id;
}

const Database& EpochPin::db() const {
  LSENS_CHECK(valid());
  return epoch_->db;
}

const std::vector<std::pair<std::string, uint64_t>>& EpochPin::versions()
    const {
  LSENS_CHECK(valid());
  return epoch_->versions;
}

// --- ServerSession ----------------------------------------------------------

ServerSession::ServerSession(SensitivityServer* server, std::string name)
    : server_(server), name_(std::move(name)) {}

EpochPin ServerSession::Pin() {
  ctx_.Record("serve.pin", 0, 0, 0, 0.0);
  return server_->PinCurrent();
}

StatusOr<SensitivityResult> ServerSession::Query(const ConjunctiveQuery& q) {
  EpochPin pin = server_->PinCurrent();
  return server_->ServeQuery(pin, q, ctx_);
}

StatusOr<SensitivityResult> ServerSession::QueryAt(const EpochPin& pin,
                                                   const ConjunctiveQuery& q) {
  return server_->ServeQuery(pin, q, ctx_);
}

// --- SensitivityServer ------------------------------------------------------

SensitivityServer::SensitivityServer(Database db, ServingConfig config)
    : config_(std::move(config)),
      master_(std::move(db)),
      cache_(config_.cache) {
  auto first = std::make_shared<internal::Epoch>();
  first->id = ++epoch_counter_;
  {
    std::lock_guard<std::mutex> lock(dict_mu_);
    first->db = master_.CloneSnapshot();
  }
  first->versions = first->db.VersionVector();
  first->bytes = first->db.MemoryBytes();
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_.push_back(first);
    current_ = std::move(first);
    ++stats_.epochs_published;
    ReclaimLocked();
  }
  if (!config_.manual_turns) {
    writer_ = std::thread([this] { WriterLoop(); });
  }
}

SensitivityServer::~SensitivityServer() {
  Shutdown();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& epoch : live_) {
    LSENS_CHECK_MSG(epoch->pins == 0,
                    "EpochPin outlives its SensitivityServer");
  }
}

void SensitivityServer::CheckServing() const {
  LSENS_CHECK_MSG(!shutdown_.load(std::memory_order_acquire),
                  "query on a shut-down SensitivityServer");
}

void SensitivityServer::RegisterQuery(const ConjunctiveQuery& q) {
  RegisteredQuery reg;
  reg.key = SensitivityCache::Fingerprint(q, config_.options);
  reg.query = q;
  std::lock_guard<std::mutex> lock(queue_mu_);
  for (const RegisteredQuery& existing : registered_) {
    if (existing.key == reg.key) return;  // already warmed
  }
  registered_.push_back(std::move(reg));
}

Status SensitivityServer::SubmitDelta(DatabaseDelta delta) {
  std::lock_guard<std::mutex> lock(queue_mu_);
  if (stop_) {
    return Status::Unsupported("SubmitDelta after Shutdown(): queue no "
                               "longer drains");
  }
  queue_.push_back(std::move(delta));
  queue_cv_.notify_one();
  return Status::OK();
}

Value SensitivityServer::InternValue(std::string_view s) {
  std::lock_guard<std::mutex> lock(dict_mu_);
  return master_.dict().Intern(s);
}

std::unique_ptr<ServerSession> SensitivityServer::OpenSession(
    std::string name) {
  CheckServing();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.sessions_opened;
  }
  return std::unique_ptr<ServerSession>(
      new ServerSession(this, std::move(name)));
}

bool SensitivityServer::TurnEpoch() {
  LSENS_CHECK_MSG(config_.manual_turns,
                  "TurnEpoch() is the manual-mode driver; the free-running "
                  "writer owns turns otherwise");
  CheckServing();
  return DoTurn();
}

void SensitivityServer::WriterLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
    }
    DoTurn();
  }
}

bool SensitivityServer::DoTurn() {
  // Admission: coalesce queued batches (up to the cap) into this turn, and
  // snapshot the registered-query list the warm pass will serve.
  std::vector<DatabaseDelta> batch;
  std::vector<RegisteredQuery> regs;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    while (!queue_.empty() && batch.size() < config_.max_turn_deltas) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    regs = registered_;
  }

  // Each batch applies all-or-nothing (Database::ApplyDelta): a poisoned
  // batch bumps nothing and the epoch published below — or left in place
  // when nothing applied — never reflects it.
  uint64_t applied = 0;
  uint64_t rejected = 0;
  for (const DatabaseDelta& delta : batch) {
    if (master_.ApplyDelta(delta).ok()) {
      ++applied;
    } else {
      ++rejected;
    }
  }
  if (applied == 0) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.empty_turns;
    stats_.deltas_rejected += rejected;
    return false;
  }

  // One repair pass per turn: the first Compute's SyncStore repairs every
  // shared node once; the remaining registered queries reassemble.
  auto next = std::make_shared<internal::Epoch>();
  for (const RegisteredQuery& reg : regs) {
    TSensComputeOptions opts = config_.options;
    opts.join.ctx = &writer_ctx_;
    opts.join.threads = config_.writer_threads;
    StatusOr<SensitivityResult> result =
        cache_.Compute(reg.query, master_, opts);
    // A query the engines cannot answer stays unwarmed; readers see the
    // same error from their own cold compute.
    if (result.ok()) next->warm.emplace(reg.key, *std::move(result));
  }
  {
    std::lock_guard<std::mutex> lock(dict_mu_);
    next->db = master_.CloneSnapshot();
  }
  next->versions = next->db.VersionVector();
  next->bytes = next->db.MemoryBytes();

  // Publish: atomic swap of the current pointer, then reclaim whatever
  // retirement freed (with no pinned readers that is the previous epoch,
  // immediately).
  {
    std::lock_guard<std::mutex> lock(mu_);
    next->id = ++epoch_counter_;
    live_.push_back(next);
    current_ = std::move(next);
    ++stats_.epochs_published;
    ++stats_.turns;
    stats_.deltas_applied += applied;
    stats_.deltas_rejected += rejected;
    stats_.max_turn_deltas =
        std::max(stats_.max_turn_deltas, static_cast<uint64_t>(batch.size()));
    ReclaimLocked();
  }
  return true;
}

EpochPin SensitivityServer::PinCurrent() {
  CheckServing();
  std::lock_guard<std::mutex> lock(mu_);
  ++current_->pins;
  return EpochPin(this, current_);
}

void SensitivityServer::Unpin(internal::Epoch* epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  LSENS_CHECK(epoch->pins > 0);
  --epoch->pins;
  if (epoch->pins == 0 && epoch != current_.get()) ReclaimLocked();
}

void SensitivityServer::ReclaimLocked() {
  const size_t before = live_.size();
  std::erase_if(live_, [&](const std::shared_ptr<internal::Epoch>& e) {
    return e != current_ && e->pins == 0;
  });
  stats_.epochs_reclaimed += before - live_.size();
  stats_.epochs_live = live_.size();
  uint64_t bytes = 0;
  for (const auto& e : live_) bytes += e->bytes;
  stats_.epoch_bytes = bytes;
}

StatusOr<SensitivityResult> SensitivityServer::ServeQuery(
    const EpochPin& pin, const ConjunctiveQuery& q, ExecContext& ctx) {
  CheckServing();
  LSENS_CHECK_MSG(pin.valid(), "QueryAt with a released EpochPin");
  WallTimer timer;
  internal::Epoch& epoch = *pin.epoch_;
  TSensComputeOptions opts = config_.options;
  opts.join.ctx = &ctx;
  opts.join.threads = config_.reader_threads;
  const std::string key = SensitivityCache::Fingerprint(q, opts);

  // Warm map: filled by the writer before publish, immutable since.
  if (auto it = epoch.warm.find(key); it != epoch.warm.end()) {
    ctx.Record("serve.warm_hit", 0, 1, 0, timer.ElapsedSeconds());
    ctx.Record("serve.query", 0, 1, 0, timer.ElapsedSeconds());
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries_served;
    ++stats_.warm_hits;
    return it->second;
  }

  // Cold memo: results earlier readers computed on this epoch.
  {
    std::lock_guard<std::mutex> lock(epoch.cold_mu);
    if (auto it = epoch.cold.find(key); it != epoch.cold.end()) {
      SensitivityResult result = it->second;
      ctx.Record("serve.cold_hit", 0, 1, 0, timer.ElapsedSeconds());
      ctx.Record("serve.query", 0, 1, 0, timer.ElapsedSeconds());
      std::lock_guard<std::mutex> stats_lock(mu_);
      ++stats_.queries_served;
      ++stats_.cold_hits;
      return result;
    }
  }

  // Compute from the pinned snapshot on this reader's thread. Concurrent
  // readers racing on the same (epoch, query) both compute — results are
  // deterministic, so first-in wins the memo slot and they agree anyway.
  StatusOr<SensitivityResult> result =
      ComputeLocalSensitivity(q, epoch.db, opts);
  if (!result.ok()) {
    ctx.Record("serve.error", 0, 0, 0, timer.ElapsedSeconds());
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries_served;
    return result;
  }
  {
    std::lock_guard<std::mutex> lock(epoch.cold_mu);
    epoch.cold.emplace(key, *result);
  }
  ctx.Record("serve.cold_compute", 0, 1, 0, timer.ElapsedSeconds());
  ctx.Record("serve.query", 0, 1, 0, timer.ElapsedSeconds());
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.queries_served;
  ++stats_.cold_computes;
  return result;
}

void SensitivityServer::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
    queue_cv_.notify_all();
  }
  if (writer_.joinable()) writer_.join();  // the loop drains, then exits
  if (config_.manual_turns) {
    // Manual mode drains here: every queued batch still lands in a final
    // published epoch before the server refuses new work.
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (queue_.empty()) break;
      }
      DoTurn();
    }
  }
  shutdown_.store(true, std::memory_order_release);
}

uint64_t SensitivityServer::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->id;
}

ServingStats SensitivityServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace lsens
