#include "dp/svt.h"

#include "common/macros.h"
#include "dp/laplace.h"

namespace lsens {

SparseVector::SparseVector(Rng& rng, double epsilon, double threshold,
                           double query_sensitivity)
    : rng_(rng), epsilon_(epsilon), query_sensitivity_(query_sensitivity) {
  LSENS_CHECK(epsilon > 0.0);
  noisy_threshold_ =
      threshold + SampleLaplace(rng_, 2.0 * query_sensitivity_ / epsilon_);
}

bool SparseVector::Check(double query_value) {
  LSENS_CHECK_MSG(!exhausted_, "SVT already reported; budget is spent");
  double noisy =
      query_value + SampleLaplace(rng_, 4.0 * query_sensitivity_ / epsilon_);
  if (noisy >= noisy_threshold_) {
    exhausted_ = true;
    return true;
  }
  return false;
}

}  // namespace lsens
