#include "dp/privsql.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/timer.h"
#include "dp/laplace.h"
#include "dp/svt.h"
#include "dp/truncation.h"
#include "query/eval.h"
#include "query/join_tree.h"
#include "sensitivity/elastic.h"

namespace lsens {

namespace {

// Maps a rule's key variables onto the relation's columns via the atom's
// positional binding.
StatusOr<std::vector<int>> KeyColumns(const Atom& atom,
                                      const AttributeSet& key_vars) {
  std::vector<int> cols;
  for (AttrId var : key_vars) {
    auto it = std::find(atom.vars.begin(), atom.vars.end(), var);
    if (it == atom.vars.end()) {
      return Status::InvalidArgument(
          "rule key variable not bound by the atom");
    }
    cols.push_back(static_cast<int>(it - atom.vars.begin()));
  }
  return cols;
}

}  // namespace

StatusOr<DpRunResult> RunPrivSql(const ConjunctiveQuery& q, const Database& db,
                                 const PrivSqlPolicy& policy,
                                 const PrivSqlOptions& options) {
  if (options.epsilon <= 0.0 || options.threshold_fraction <= 0.0 ||
      options.threshold_fraction >= 1.0) {
    return Status::InvalidArgument("need 0 < threshold_fraction < 1, eps > 0");
  }
  if (policy.private_atom < 0 || policy.private_atom >= q.num_atoms()) {
    return Status::InvalidArgument("policy needs a private atom");
  }
  WallTimer timer;
  Rng rng(options.seed);

  auto full = CountQuery(q, db, options.join, options.ghd);
  if (!full.ok()) return full.status();
  const double q_full = full->ToDouble();

  // 1. Learn per-relation frequency caps by SVT, cascade order. The noise
  //    of rule r scales with the policy sensitivity σ_r = Π of upstream
  //    caps (removing one private tuple can touch that many keys).
  Database work = db.Clone();
  const double eps_learn = options.epsilon * options.threshold_fraction;
  const double eps_per_rule =
      policy.rules.empty() ? 0.0
                           : eps_learn / static_cast<double>(
                                             policy.rules.size());
  std::map<int, ClampedMaxFreqProvider::Cap> caps;
  double sigma = 1.0;
  uint64_t last_cap = 0;
  for (const PrivSqlRule& rule : policy.rules) {
    const Atom& atom = q.atom(rule.atom);
    auto cols = KeyColumns(atom, rule.key_vars);
    if (!cols.ok()) return cols.status();
    auto histogram =
        KeysAboveFrequency(work, atom.relation, *cols, rule.max_threshold);
    if (!histogram.ok()) return histogram.status();

    // Stop at the first frequency cap where (noisily) no keys would be
    // dropped: query = -#keys_above(f), threshold 0, sensitivity σ
    // (deleting one private tuple cascades into at most σ keys here).
    SparseVector svt(rng, eps_per_rule, /*threshold=*/0.0,
                     /*query_sensitivity=*/sigma);
    uint64_t cap = rule.max_threshold;
    for (uint64_t f = 1; f < rule.max_threshold; ++f) {
      if (svt.Check(-static_cast<double>((*histogram)[f]))) {
        cap = f;
        break;
      }
    }
    auto removed = TruncateByFrequency(work, atom.relation, *cols, cap);
    if (!removed.ok()) return removed.status();
    caps[rule.atom] = {rule.key_vars, Count(cap)};
    sigma *= static_cast<double>(cap);
    last_cap = cap;
  }

  // 2. Static global sensitivity: elastic analysis with the learned caps.
  std::vector<int> order;
  if (options.ghd != nullptr) {
    order = PlanOrderFromGhd(*options.ghd);
  } else {
    auto forest = BuildJoinForestGYO(q);
    if (!forest.ok()) return forest.status();
    order = PlanOrderFromForest(*forest);
  }
  DataMaxFreqProvider data_mf(q, db);
  ClampedMaxFreqProvider mf(data_mf, caps);
  // PrivateSQL's static view-sensitivity analysis composes one-sided
  // frequency bounds exactly like the original Flex rules, so the faithful
  // mode is the right model here (the tightened mode is our improvement,
  // benchmarked separately).
  auto elastic =
      ElasticSensitivity(q, order, mf, ElasticMode::kFlexFaithful);
  if (!elastic.ok()) return elastic.status();
  const double gs =
      elastic->per_atom_bound[static_cast<size_t>(policy.private_atom)]
          .ToDouble();

  // 3. Answer on the truncated database.
  auto truncated = CountQuery(q, work, options.join, options.ghd);
  if (!truncated.ok()) return truncated.status();

  DpRunResult out;
  out.true_answer = q_full;
  out.truncated_answer = truncated->ToDouble();
  out.learned_threshold = last_cap;
  out.global_sensitivity = gs;
  const double eps_answer = options.epsilon - eps_learn;
  out.noisy_answer =
      std::max(0.0, LaplaceMechanism(rng, out.truncated_answer, gs,
                                     eps_answer));
  out.seconds = timer.ElapsedSeconds();
  return out;
}

PrivSqlBudget::PrivSqlBudget(double epsilon_total) : total_(epsilon_total) {
  LSENS_CHECK_MSG(epsilon_total >= 0.0, "epsilon budget must be >= 0");
}

double PrivSqlBudget::spent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spent_;
}

double PrivSqlBudget::remaining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - spent_;
}

bool PrivSqlBudget::TryCharge(double epsilon) {
  if (epsilon <= 0.0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (spent_ + epsilon > total_ + 1e-12) return false;
  spent_ += epsilon;
  return true;
}

void PrivSqlBudget::Refund(double epsilon) {
  std::lock_guard<std::mutex> lock(mu_);
  spent_ = std::max(0.0, spent_ - epsilon);
}

StatusOr<DpRunResult> ServePrivSql(const ConjunctiveQuery& q,
                                   const Database& db,
                                   const PrivSqlPolicy& policy,
                                   const PrivSqlOptions& options,
                                   PrivSqlBudget& budget) {
  if (!budget.TryCharge(options.epsilon)) {
    return Status::Unsupported(
        "privsql budget exhausted: epsilon " +
        std::to_string(options.epsilon) + " does not fit remaining " +
        std::to_string(budget.remaining()));
  }
  StatusOr<DpRunResult> result = RunPrivSql(q, db, policy, options);
  if (!result.ok()) budget.Refund(options.epsilon);
  return result;
}

}  // namespace lsens
