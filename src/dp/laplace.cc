#include "dp/laplace.h"

#include <cmath>

#include "common/macros.h"

namespace lsens {

double SampleLaplace(Rng& rng, double scale) {
  LSENS_CHECK(scale >= 0.0);
  // u uniform in (-1/2, 1/2); inverse CDF: -scale * sgn(u) * ln(1 - 2|u|).
  double u = rng.NextDoubleOpen() - 0.5;
  double sign = (u < 0.0) ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

double LaplaceMechanism(Rng& rng, double value, double sensitivity,
                        double epsilon) {
  LSENS_CHECK(epsilon > 0.0);
  return value + SampleLaplace(rng, sensitivity / epsilon);
}

}  // namespace lsens
