#ifndef LSENS_DP_SVT_H_
#define LSENS_DP_SVT_H_

#include "common/rng.h"

namespace lsens {

// Sparse Vector Technique (AboveThreshold; [34] Lyu-Su-Li, Alg. 1): given a
// stream of queries each with sensitivity `query_sensitivity`, reports the
// first query whose noisy value crosses the noisy threshold. Consumes
// `epsilon` in total for one report: half on the threshold noise, half on
// the per-query noise.
class SparseVector {
 public:
  SparseVector(Rng& rng, double epsilon, double threshold,
               double query_sensitivity = 1.0);

  // Feeds the next query value; true = above threshold (stop: the budget
  // is spent). Must not be called again after it returns true.
  bool Check(double query_value);

  bool exhausted() const { return exhausted_; }

 private:
  Rng& rng_;
  double epsilon_;
  double query_sensitivity_;
  double noisy_threshold_;
  bool exhausted_ = false;
};

}  // namespace lsens

#endif  // LSENS_DP_SVT_H_
