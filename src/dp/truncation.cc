#include "dp/truncation.h"

#include <algorithm>
#include <map>
#include <span>
#include <vector>

#include "common/macros.h"
#include "exec/exec_context.h"

namespace lsens {

namespace {

// Key-frequency map over the chosen columns, read as column spans.
std::map<std::vector<Value>, size_t> KeyFrequencies(
    const Relation& rel, const std::vector<int>& key_cols) {
  std::map<std::vector<Value>, size_t> freq;
  std::vector<std::span<const Value>> cols(key_cols.size());
  for (size_t j = 0; j < key_cols.size(); ++j) {
    cols[j] = rel.Column(static_cast<size_t>(key_cols[j]));
  }
  std::vector<Value> key(key_cols.size());
  for (size_t r = 0; r < rel.NumRows(); ++r) {
    for (size_t j = 0; j < key_cols.size(); ++j) key[j] = cols[j][r];
    ++freq[key];
  }
  return freq;
}

}  // namespace

StatusOr<size_t> TruncateBySensitivity(Database& db,
                                       const std::string& relation,
                                       const std::vector<Count>& sensitivities,
                                       Count threshold, ExecContext* ctx) {
  Relation* rel = db.Find(relation);
  if (rel == nullptr) return Status::NotFound("relation " + relation);
  if (sensitivities.size() != rel->NumRows()) {
    return Status::InvalidArgument(
        "sensitivity vector does not match relation row count");
  }
  OpTimer op(ResolveExecContext(ctx), "dp.truncate_by_sensitivity",
             rel->NumRows());
  // Rebuild without the over-sensitive rows (cheaper and order-stable
  // compared to repeated swap-removes, which would desynchronize indices):
  // collect the surviving indices, then gather-append them column by
  // column.
  std::vector<uint32_t> kept_rows;
  kept_rows.reserve(rel->NumRows());
  for (size_t r = 0; r < rel->NumRows(); ++r) {
    if (!(sensitivities[r] > threshold)) {
      kept_rows.push_back(static_cast<uint32_t>(r));
    }
  }
  const size_t removed = rel->NumRows() - kept_rows.size();
  Relation kept(rel->name(), rel->column_names());
  kept.AppendRowsFrom(*rel, kept_rows);
  *rel = std::move(kept);
  op.set_rows_out(rel->NumRows());
  return removed;
}

StatusOr<size_t> TruncateByFrequency(Database& db, const std::string& relation,
                                     const std::vector<int>& key_cols,
                                     uint64_t threshold, ExecContext* ctx) {
  Relation* rel = db.Find(relation);
  if (rel == nullptr) return Status::NotFound("relation " + relation);
  for (int c : key_cols) {
    if (c < 0 || static_cast<size_t>(c) >= rel->arity()) {
      return Status::InvalidArgument("key column out of range");
    }
  }
  OpTimer op(ResolveExecContext(ctx), "dp.truncate_by_frequency",
             rel->NumRows());
  auto freq = KeyFrequencies(*rel, key_cols);
  std::vector<std::span<const Value>> cols(key_cols.size());
  for (size_t j = 0; j < key_cols.size(); ++j) {
    cols[j] = rel->Column(static_cast<size_t>(key_cols[j]));
  }
  std::vector<uint32_t> kept_rows;
  kept_rows.reserve(rel->NumRows());
  std::vector<Value> key(key_cols.size());
  for (size_t r = 0; r < rel->NumRows(); ++r) {
    for (size_t j = 0; j < key_cols.size(); ++j) key[j] = cols[j][r];
    if (freq[key] <= threshold) {
      kept_rows.push_back(static_cast<uint32_t>(r));
    }
  }
  const size_t removed = rel->NumRows() - kept_rows.size();
  Relation kept(rel->name(), rel->column_names());
  kept.AppendRowsFrom(*rel, kept_rows);
  *rel = std::move(kept);
  op.set_rows_out(rel->NumRows());
  return removed;
}

StatusOr<std::vector<size_t>> RowsAboveFrequency(
    const Database& db, const std::string& relation,
    const std::vector<int>& key_cols, uint64_t max_f) {
  const Relation* rel = db.Find(relation);
  if (rel == nullptr) return Status::NotFound("relation " + relation);
  auto freq = KeyFrequencies(*rel, key_cols);
  std::vector<size_t> rows_above(max_f + 1, 0);
  for (const auto& [key, f] : freq) {
    // A key with frequency f contributes f rows to every bucket with
    // threshold < f.
    size_t upto = std::min<uint64_t>(f == 0 ? 0 : f - 1, max_f);
    for (size_t i = 0; i <= upto && f > i; ++i) rows_above[i] += f;
  }
  return rows_above;
}

StatusOr<std::vector<size_t>> KeysAboveFrequency(
    const Database& db, const std::string& relation,
    const std::vector<int>& key_cols, uint64_t max_f) {
  const Relation* rel = db.Find(relation);
  if (rel == nullptr) return Status::NotFound("relation " + relation);
  auto freq = KeyFrequencies(*rel, key_cols);
  std::vector<size_t> keys_above(max_f + 1, 0);
  for (const auto& [key, f] : freq) {
    size_t upto = std::min<uint64_t>(f == 0 ? 0 : f - 1, max_f);
    for (size_t i = 0; i <= upto && f > i; ++i) ++keys_above[i];
  }
  return keys_above;
}

}  // namespace lsens
