#ifndef LSENS_DP_TRUNCATION_H_
#define LSENS_DP_TRUNCATION_H_

#include <string>
#include <vector>

#include "common/count.h"
#include "common/status.h"
#include "storage/database.h"

namespace lsens {

class ExecContext;

// TSens truncation (Definition 6.4): removes every row of `relation` whose
// tuple sensitivity exceeds `threshold`. `sensitivities` is aligned with
// the relation's current row order (as from TupleSensitivities). Returns
// the number of rows removed.
StatusOr<size_t> TruncateBySensitivity(Database& db,
                                       const std::string& relation,
                                       const std::vector<Count>& sensitivities,
                                       Count threshold,
                                       ExecContext* ctx = nullptr);

// PrivSQL-style truncation: removes every row of `relation` whose value
// combination on `key_cols` occurs more than `threshold` times (all rows of
// an over-frequent key are dropped, matching PrivateSQL's semantics).
// Returns the number of rows removed.
StatusOr<size_t> TruncateByFrequency(Database& db, const std::string& relation,
                                     const std::vector<int>& key_cols,
                                     uint64_t threshold,
                                     ExecContext* ctx = nullptr);

// Histogram helpers for frequency-threshold learning, for f in [0, max_f]:
//   RowsAboveFrequency[f] = number of rows whose key frequency exceeds f;
//   KeysAboveFrequency[f] = number of distinct keys with frequency > f.
// The keys variant is what the PrivSQL-style learner queries: deleting one
// upstream private tuple cascades into at most (product of upstream caps)
// keys, which is the SVT noise scale the paper calls out.
StatusOr<std::vector<size_t>> RowsAboveFrequency(
    const Database& db, const std::string& relation,
    const std::vector<int>& key_cols, uint64_t max_f);
StatusOr<std::vector<size_t>> KeysAboveFrequency(
    const Database& db, const std::string& relation,
    const std::vector<int>& key_cols, uint64_t max_f);

}  // namespace lsens

#endif  // LSENS_DP_TRUNCATION_H_
