#ifndef LSENS_DP_LAPLACE_H_
#define LSENS_DP_LAPLACE_H_

#include "common/rng.h"

namespace lsens {

// One draw from Laplace(0, scale) via inverse CDF.
double SampleLaplace(Rng& rng, double scale);

// The Laplace mechanism (Definition 6.3): value + Lap(sensitivity/epsilon).
// Satisfies epsilon-DP for a query with the given global sensitivity.
double LaplaceMechanism(Rng& rng, double value, double sensitivity,
                        double epsilon);

}  // namespace lsens

#endif  // LSENS_DP_LAPLACE_H_
