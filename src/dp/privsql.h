#ifndef LSENS_DP_PRIVSQL_H_
#define LSENS_DP_PRIVSQL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "dp/tsens_dp.h"
#include "query/conjunctive_query.h"
#include "query/ghd.h"
#include "storage/attribute_set.h"
#include "storage/database.h"

namespace lsens {

// PrivSQL-style baseline (§7.3): truncation by join-key *frequency* on the
// relations the FK policy makes sensitive, thresholds learned by SVT, and a
// static (elastic-with-caps) global sensitivity bound. Synopsis generation
// is disabled — the query is answered directly with the Laplace mechanism,
// exactly as the paper configures PrivSQL.
//
// Faithful weaknesses this reimplementation preserves:
//  * truncation thresholds bound frequencies, not tuple sensitivities, so
//    heavy keys that never join with the sensitive tuples get dropped too;
//  * the SVT noise for learning a relation's threshold scales with that
//    relation's *policy sensitivity* (the product of upstream caps), while
//    TSensDP's SVT queries have sensitivity 1 (the paper calls this out);
//  * the released global sensitivity comes from static frequency analysis
//    and can exceed the local sensitivity by orders of magnitude.
struct PrivSqlRule {
  int atom = -1;           // relation to truncate
  AttributeSet key_vars;   // join key whose frequency is bounded
  uint64_t max_threshold = 128;  // SVT search range for the cap
};

struct PrivSqlPolicy {
  int private_atom = -1;
  // Rules in cascade (FK) order from the private relation outward.
  std::vector<PrivSqlRule> rules;
};

struct PrivSqlOptions {
  double epsilon = 1.0;
  double threshold_fraction = 0.5;  // budget share for threshold learning
  uint64_t seed = 1;
  JoinOptions join;
  const Ghd* ghd = nullptr;  // evaluation plan for cyclic queries
};

StatusOr<DpRunResult> RunPrivSql(const ConjunctiveQuery& q, const Database& db,
                                 const PrivSqlPolicy& policy,
                                 const PrivSqlOptions& options);

}  // namespace lsens

#endif  // LSENS_DP_PRIVSQL_H_
