#ifndef LSENS_DP_PRIVSQL_H_
#define LSENS_DP_PRIVSQL_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "dp/tsens_dp.h"
#include "query/conjunctive_query.h"
#include "query/ghd.h"
#include "storage/attribute_set.h"
#include "storage/database.h"

namespace lsens {

// PrivSQL-style baseline (§7.3): truncation by join-key *frequency* on the
// relations the FK policy makes sensitive, thresholds learned by SVT, and a
// static (elastic-with-caps) global sensitivity bound. Synopsis generation
// is disabled — the query is answered directly with the Laplace mechanism,
// exactly as the paper configures PrivSQL.
//
// Faithful weaknesses this reimplementation preserves:
//  * truncation thresholds bound frequencies, not tuple sensitivities, so
//    heavy keys that never join with the sensitive tuples get dropped too;
//  * the SVT noise for learning a relation's threshold scales with that
//    relation's *policy sensitivity* (the product of upstream caps), while
//    TSensDP's SVT queries have sensitivity 1 (the paper calls this out);
//  * the released global sensitivity comes from static frequency analysis
//    and can exceed the local sensitivity by orders of magnitude.
struct PrivSqlRule {
  int atom = -1;           // relation to truncate
  AttributeSet key_vars;   // join key whose frequency is bounded
  uint64_t max_threshold = 128;  // SVT search range for the cap
};

struct PrivSqlPolicy {
  int private_atom = -1;
  // Rules in cascade (FK) order from the private relation outward.
  std::vector<PrivSqlRule> rules;
};

struct PrivSqlOptions {
  double epsilon = 1.0;
  double threshold_fraction = 0.5;  // budget share for threshold learning
  uint64_t seed = 1;
  JoinOptions join;
  const Ghd* ghd = nullptr;  // evaluation plan for cyclic queries
};

StatusOr<DpRunResult> RunPrivSql(const ConjunctiveQuery& q, const Database& db,
                                 const PrivSqlPolicy& policy,
                                 const PrivSqlOptions& options);

// --- Serving-layer budget accounting ---------------------------------------

// A deployment-wide epsilon budget shared by concurrent serving sessions.
// Sequential composition: every released answer debits its epsilon; once
// the budget cannot cover a request, the request is refused rather than
// partially charged. All methods are thread-safe; TryCharge debits the full
// amount atomically or not at all.
class PrivSqlBudget {
 public:
  explicit PrivSqlBudget(double epsilon_total);

  double total() const { return total_; }
  double spent() const;
  double remaining() const;

  // Debits `epsilon` if it fits in the remaining budget (within a 1e-12
  // slack for accumulated float error); false leaves the budget untouched.
  // Non-positive epsilon is never chargeable.
  bool TryCharge(double epsilon);

  // Returns a charge whose run failed before releasing anything (never
  // refund a released answer). Clamped so spent() stays >= 0.
  void Refund(double epsilon);

 private:
  const double total_;
  mutable std::mutex mu_;
  double spent_ = 0.0;  // guarded by mu_
};

// Budget-tracked serving entry point: charges options.epsilon against
// `budget` before running (Unsupported "privsql budget exhausted" without
// touching the data when it does not fit), answers via RunPrivSql, and
// refunds the charge if the run fails — a failed run released nothing.
// Readers serving from an epoch snapshot pass the pinned epoch's database.
StatusOr<DpRunResult> ServePrivSql(const ConjunctiveQuery& q,
                                   const Database& db,
                                   const PrivSqlPolicy& policy,
                                   const PrivSqlOptions& options,
                                   PrivSqlBudget& budget);

}  // namespace lsens

#endif  // LSENS_DP_PRIVSQL_H_
