#include "dp/tsens_dp.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "dp/laplace.h"
#include "dp/svt.h"
#include "query/eval.h"
#include "query/join_tree.h"
#include "sensitivity/tsens_engine.h"

namespace lsens {

StatusOr<DpRunResult> RunTSensDp(const ConjunctiveQuery& q, const Database& db,
                                 int private_atom,
                                 const TSensDpOptions& options) {
  if (options.epsilon <= 0.0 || options.threshold_fraction <= 0.0 ||
      options.threshold_fraction >= 1.0) {
    return Status::InvalidArgument("need 0 < threshold_fraction < 1, eps > 0");
  }
  if (options.ell == 0) return Status::InvalidArgument("ell must be >= 1");
  WallTimer timer;
  Rng rng(options.seed);

  // Decomposition (provided GHD for cyclic queries, GYO otherwise).
  Ghd ghd;
  if (options.ghd != nullptr) {
    ghd = *options.ghd;
  } else {
    auto forest = BuildJoinForestGYO(q);
    if (!forest.ok()) return forest.status();
    ghd = MakeTrivialGhd(q, *forest);
  }

  // Tuple sensitivities of the primary private relation.
  TSensOptions topts;
  topts.join = options.join;
  topts.keep_tables = true;
  for (int a : options.skip_atoms) {
    if (a != private_atom) topts.skip_atoms.push_back(a);
  }
  auto tsens = TSensOverGhd(q, ghd, db, topts);
  if (!tsens.ok()) return tsens.status();
  auto sens = TupleSensitivities(*tsens, q, db, private_atom, topts);
  if (!sens.ok()) return sens.status();

  auto full = CountGhd(q, ghd, db, options.join);
  if (!full.ok()) return full.status();
  const double q_full = full->ToDouble();

  // Self-join-freeness makes PR deletions additive:
  //   Q(T(D, i)) = Q(D) - Σ_{t in PR : δ(t) > i} δ(t).
  // Precompute suffix sums over the descending-sorted sensitivities.
  std::vector<double> deltas;
  deltas.reserve(sens->size());
  for (Count c : *sens) {
    if (!c.IsZero()) deltas.push_back(c.ToDouble());
  }
  std::sort(deltas.begin(), deltas.end(), std::greater<double>());
  std::vector<double> prefix(deltas.size() + 1, 0.0);
  for (size_t i = 0; i < deltas.size(); ++i) {
    prefix[i + 1] = prefix[i] + deltas[i];
  }
  auto q_truncated = [&](uint64_t threshold) {
    // Rows with δ > threshold form a prefix of the sorted deltas.
    double t = static_cast<double>(threshold);
    size_t idx = static_cast<size_t>(
        std::upper_bound(deltas.begin(), deltas.end(), t,
                         [](double a, double b) { return a > b; }) -
        deltas.begin());
    return q_full - prefix[idx];
  };

  // Budget: ε_tsens = threshold_fraction · ε, split between the Q̂ release
  // and the SVT scan; the rest answers the query. The scan asks hundreds of
  // queries whose false-fire probabilities accumulate, while Q̂'s noise
  // barely moves the SVT crossing point (Q(T(D,i)) rises steeply there), so
  // SVT gets 3/4 of ε_tsens and the Q̂ release 1/4.
  const double eps_tsens = options.epsilon * options.threshold_fraction;
  const double eps_release = eps_tsens / 4.0;
  const double eps_svt = eps_tsens - eps_release;
  const double eps_answer = options.epsilon - eps_tsens;

  // Counts are nonnegative, so clamping the noisy release at zero is free
  // postprocessing; it avoids pathological negative Q̂ when ℓ is large
  // relative to |Q| (§7.3 studies exactly this regime).
  const double q_hat = std::max(
      0.0, LaplaceMechanism(rng, q_truncated(options.ell),
                            static_cast<double>(options.ell), eps_release));

  // SVT over q_i = (Q(T(D,i)) - Q̂) / i, sensitivity 1 each, threshold 0.
  // Two scan details matter in practice:
  //  * the scan continues past ℓ — each q_i keeps sensitivity 1 whatever i
  //    is (ℓ only fixes Q̂'s noise scale), and the paper's learned
  //    thresholds exceed ℓ on three of its seven queries;
  //  * thresholds advance geometrically (5% steps). A unit-step scan asks
  //    dozens of queries inside the truncation ramp whose false-fire
  //    probabilities accumulate, biasing τ low; the geometric grid costs at
  //    most 5% slack in τ and fires where the signal really crosses zero.
  // max(8ℓ, 256) caps the scan as a runaway guard (fallback τ = the cap);
  // the floor matters for tiny ℓ — the paper's ℓ=1 run on q⋆ still learns
  // τ = 11.
  const uint64_t scan_limit = std::max<uint64_t>(options.ell * 8, 256);
  uint64_t tau = scan_limit;
  SparseVector svt(rng, eps_svt, /*threshold=*/0.0, /*query_sensitivity=*/1.0);
  for (uint64_t i = 1; i < scan_limit;
       i = std::max(i + 1, i + i / 20)) {
    double qi = (q_truncated(i) - q_hat) / static_cast<double>(i);
    if (svt.Check(qi)) {
      tau = i;
      break;
    }
  }

  DpRunResult out;
  out.true_answer = q_full;
  out.truncated_answer = q_truncated(tau);
  out.learned_threshold = tau;
  out.global_sensitivity = static_cast<double>(tau);
  out.noisy_answer =
      std::max(0.0, LaplaceMechanism(rng, out.truncated_answer,
                                     out.global_sensitivity, eps_answer));
  out.seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace lsens
