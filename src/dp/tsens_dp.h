#ifndef LSENS_DP_TSENS_DP_H_
#define LSENS_DP_TSENS_DP_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "exec/join.h"
#include "query/conjunctive_query.h"
#include "query/ghd.h"
#include "storage/database.h"

namespace lsens {

// Common result shape for the DP mechanisms (TSensDP and the PrivSQL-style
// baseline): everything Table 2 reports for one run.
struct DpRunResult {
  double true_answer = 0.0;       // |Q(D)|
  double truncated_answer = 0.0;  // |Q(T(D, τ))|
  double noisy_answer = 0.0;      // released value (clamped at 0)
  uint64_t learned_threshold = 0;  // τ (TSensDP) / last frequency cap
  double global_sensitivity = 0.0;  // of the released query
  double bias() const {
    return true_answer > truncated_answer ? true_answer - truncated_answer
                                          : truncated_answer - true_answer;
  }
  double error() const {
    return true_answer > noisy_answer ? true_answer - noisy_answer
                                      : noisy_answer - true_answer;
  }
  double seconds = 0.0;
};

// §6.2: the TSensDP mechanism. Budget split: `threshold_fraction` of
// epsilon learns the truncation threshold (half of it releases the ℓ-
// truncated count Q̂, half runs SVT over q_i = (Q(T(D,i)) − Q̂)/i, each of
// sensitivity 1); the remainder releases Q(T(D,τ)) + Lap(τ/ε₂).
//
// Implementation note: because the query is self-join-free, every output
// tuple contains exactly one PR tuple, so PR deletions are additive and
// Q(T(D,i)) = Q(D) − Σ_{δ(t)>i} δ(t) — evaluated in O(1) per threshold
// from the sorted tuple sensitivities (unit-tested against real
// re-evaluation).
struct TSensDpOptions {
  double epsilon = 1.0;
  double threshold_fraction = 0.5;  // ε_tsens / ε
  uint64_t ell = 100;               // assumed max tuple sensitivity ℓ
  uint64_t seed = 1;
  JoinOptions join;
  const Ghd* ghd = nullptr;           // for cyclic queries
  std::vector<int> skip_atoms;        // forwarded to TSens
};

StatusOr<DpRunResult> RunTSensDp(const ConjunctiveQuery& q, const Database& db,
                                 int private_atom,
                                 const TSensDpOptions& options);

}  // namespace lsens

#endif  // LSENS_DP_TSENS_DP_H_
