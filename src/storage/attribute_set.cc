#include "storage/attribute_set.h"

#include <algorithm>

namespace lsens {

AttributeSet MakeAttributeSet(std::vector<AttrId> attrs) {
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  return attrs;
}

bool IsValidAttributeSet(const AttributeSet& set) {
  for (size_t i = 1; i < set.size(); ++i) {
    if (set[i - 1] >= set[i]) return false;
  }
  return true;
}

AttributeSet Union(const AttributeSet& a, const AttributeSet& b) {
  AttributeSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

AttributeSet Intersect(const AttributeSet& a, const AttributeSet& b) {
  AttributeSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

AttributeSet Difference(const AttributeSet& a, const AttributeSet& b) {
  AttributeSet out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

bool Contains(const AttributeSet& set, AttrId attr) {
  return std::binary_search(set.begin(), set.end(), attr);
}

bool IsSubset(const AttributeSet& sub, const AttributeSet& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

bool Intersects(const AttributeSet& a, const AttributeSet& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return true;
    if (*ia < *ib) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return false;
}

}  // namespace lsens
