#include "storage/relation.h"

#include <algorithm>
#include <utility>

namespace lsens {

Relation::Relation(std::string name, std::vector<std::string> column_names)
    : name_(std::move(name)), column_names_(std::move(column_names)) {
  LSENS_CHECK_MSG(!column_names_.empty(), "relation needs >= 1 column");
  cols_.resize(column_names_.size());
  dict_cols_.assign(column_names_.size(), 0);
}

std::vector<Value> Relation::Row(size_t i) const {
  std::vector<Value> row(arity());
  for (size_t c = 0; c < cols_.size(); ++c) row[c] = cols_[c][i];
  return row;
}

void Relation::RowInto(size_t i, std::vector<Value>* out) const {
  out->resize(arity());
  for (size_t c = 0; c < cols_.size(); ++c) (*out)[c] = cols_[c][i];
}

bool Relation::RowEquals(size_t i, std::span<const Value> row) const {
  LSENS_CHECK(row.size() == arity());
  for (size_t c = 0; c < cols_.size(); ++c) {
    if (cols_[c][i] != row[c]) return false;
  }
  return true;
}

void Relation::Set(size_t row, size_t col, Value v) {
  LSENS_CHECK(row < NumRows() && col < arity());
  if (log_enabled_) {
    std::vector<Value> old = Row(row);
    std::vector<Value> updated = old;
    updated[col] = v;
    LogChange(/*insert=*/false, old);
    LogChange(/*insert=*/true, updated);
    // Two log entries, but one observable mutation: keep version() in sync
    // with the entry count so CollectChangesSince offsets line up.
    ++version_;
  }
  cols_[col][row] = v;
  ++version_;
}

void Relation::Clear() {
  for (auto& col : cols_) col.clear();
  ++version_;
  // The delta "everything erased" is exactly what the log exists to avoid
  // materializing; disable instead, so readers fall back to recompute.
  log_enabled_ = false;
  log_.clear();
}

void Relation::SwapRemoveRow(size_t i) {
  size_t n = NumRows();
  LSENS_CHECK(i < n);
  if (log_enabled_) LogChange(/*insert=*/false, Row(i));
  for (auto& col : cols_) {
    col[i] = col[n - 1];
    col.pop_back();
  }
  ++version_;
}

void Relation::AppendRows(std::span<const Value> rows_flat) {
  const size_t k = arity();
  LSENS_CHECK(rows_flat.size() % k == 0);
  const size_t rows = rows_flat.size() / k;
  if (rows == 0) return;
  if (log_enabled_) {
    for (size_t i = 0; i < rows; ++i) {
      LogChange(/*insert=*/true, rows_flat.subspan(i * k, k));
    }
  }
  for (size_t c = 0; c < k; ++c) {
    auto& col = cols_[c];
    col.reserve(col.size() + rows);
    for (size_t i = 0; i < rows; ++i) col.push_back(rows_flat[i * k + c]);
  }
  version_ += rows;
}

void Relation::AppendColumns(std::span<const std::vector<Value>> columns) {
  const size_t k = arity();
  LSENS_CHECK(columns.size() == k);
  const size_t rows = columns[0].size();
  for (const auto& col : columns) LSENS_CHECK(col.size() == rows);
  if (rows == 0) return;
  if (log_enabled_) {
    std::vector<Value> row(k);
    for (size_t i = 0; i < rows; ++i) {
      for (size_t c = 0; c < k; ++c) row[c] = columns[c][i];
      LogChange(/*insert=*/true, row);
    }
  }
  for (size_t c = 0; c < k; ++c) {
    cols_[c].insert(cols_[c].end(), columns[c].begin(), columns[c].end());
  }
  version_ += rows;
}

void Relation::AppendRowsFrom(const Relation& src,
                              std::span<const uint32_t> rows) {
  LSENS_CHECK(src.arity() == arity());
  if (rows.empty()) return;
  if (log_enabled_) {
    std::vector<Value> row;
    for (uint32_t r : rows) {
      src.RowInto(r, &row);
      LogChange(/*insert=*/true, row);
    }
  }
  for (size_t c = 0; c < arity(); ++c) {
    auto& dst = cols_[c];
    const auto& from = src.cols_[c];
    dst.reserve(dst.size() + rows.size());
    for (uint32_t r : rows) dst.push_back(from[r]);
  }
  version_ += rows.size();
}

Status Relation::ValidateDelta(std::span<const std::vector<Value>> inserts,
                               std::span<const size_t> delete_rows,
                               size_t num_rows) const {
  for (const auto& row : inserts) {
    if (row.size() != arity()) {
      return Status::InvalidArgument(
          "insert row arity " + std::to_string(row.size()) + " != " +
          std::to_string(arity()) + " in relation '" + name_ + "'");
    }
  }
  std::vector<size_t> sorted(delete_rows.begin(), delete_rows.end());
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] >= num_rows) {
      return Status::InvalidArgument(
          "delete index " + std::to_string(sorted[i]) +
          " out of range in relation '" + name_ + "' (" +
          std::to_string(num_rows) + " rows)");
    }
    if (i > 0 && sorted[i] == sorted[i - 1]) {
      return Status::InvalidArgument("duplicate delete index " +
                                     std::to_string(sorted[i]));
    }
  }
  return Status::OK();
}

Status Relation::ApplyDelta(std::span<const std::vector<Value>> inserts,
                            std::vector<size_t> delete_rows) {
  LSENS_RETURN_IF_ERROR(ValidateDelta(inserts, delete_rows, NumRows()));
  std::sort(delete_rows.begin(), delete_rows.end());
  // Descending order keeps every pending index valid: a swap-remove only
  // relocates the last row, whose index is larger than any remaining one.
  for (size_t i = delete_rows.size(); i-- > 0;) {
    SwapRemoveRow(delete_rows[i]);
  }
  for (const auto& row : inserts) AppendRow(row);
  return Status::OK();
}

void Relation::EnableChangeLog(size_t capacity) {
  LSENS_CHECK_MSG(capacity > 0, "change log capacity must be positive");
  log_enabled_ = true;
  log_capacity_ = capacity;
  log_.clear();
  log_base_version_ = version_;
}

void Relation::DisableChangeLog() {
  log_enabled_ = false;
  log_.clear();
  log_.shrink_to_fit();
  log_capacity_ = 0;
  log_base_version_ = version_;
}

size_t Relation::MemoryBytes() const {
  size_t bytes = dict_cols_.capacity() * sizeof(uint8_t);
  for (const auto& col : cols_) bytes += col.capacity() * sizeof(Value);
  for (const RowChange& change : log_) {
    bytes += sizeof(RowChange) + change.row.capacity() * sizeof(Value);
  }
  return bytes;
}

void Relation::LogChange(bool insert, std::span<const Value> row) {
  if (log_.size() == log_capacity_) {
    log_.pop_front();
    ++log_base_version_;
  }
  log_.push_back(RowChange{insert, {row.begin(), row.end()}});
}

bool Relation::CollectChangesSince(uint64_t since,
                                   std::vector<RowChange>* out) const {
  if (!log_enabled_ || since < log_base_version_ || since > version_) {
    return false;
  }
  // All entries between log_base_version_ and version_ are retained, so the
  // suffix starting at `since` is exactly the requested delta.
  LSENS_CHECK(version_ - log_base_version_ == log_.size());
  for (size_t i = static_cast<size_t>(since - log_base_version_);
       i < log_.size(); ++i) {
    out->push_back(log_[i]);
  }
  return true;
}

bool Relation::CollectChangesShardedSince(
    uint64_t since, std::span<const size_t> key_cols, size_t num_shards,
    std::vector<std::vector<RowChange>>* shards) const {
  LSENS_CHECK(num_shards > 0 && shards->size() >= num_shards);
  if (!log_enabled_ || since < log_base_version_ || since > version_) {
    return false;
  }
  LSENS_CHECK(version_ - log_base_version_ == log_.size());
  for (size_t i = static_cast<size_t>(since - log_base_version_);
       i < log_.size(); ++i) {
    const RowChange& change = log_[i];
    uint64_t h = kValueHashSeed;
    for (size_t col : key_cols) h = HashValueFold(h, change.row[col]);
    (*shards)[static_cast<size_t>(h % num_shards)].push_back(change);
  }
  return true;
}

bool Relation::CollectProjectedChangesShardedSince(
    uint64_t since, std::span<const size_t> key_cols, size_t num_shards,
    const std::function<bool(const RowChange&)>& filter,
    std::vector<std::vector<ProjectedRowChange>>* shards,
    size_t* num_changes) const {
  LSENS_CHECK(num_shards > 0 && shards->size() >= num_shards);
  if (!log_enabled_ || since < log_base_version_ || since > version_) {
    return false;
  }
  LSENS_CHECK(version_ - log_base_version_ == log_.size());
  const size_t begin = static_cast<size_t>(since - log_base_version_);
  if (num_changes != nullptr) *num_changes = log_.size() - begin;
  for (size_t i = begin; i < log_.size(); ++i) {
    const RowChange& change = log_[i];
    if (filter && !filter(change)) continue;
    ProjectedRowChange pc;
    pc.insert = change.insert;
    pc.key.reserve(key_cols.size());
    uint64_t h = kValueHashSeed;
    for (size_t col : key_cols) {
      const Value v = change.row[col];
      pc.key.push_back(v);
      h = HashValueFold(h, v);
    }
    (*shards)[static_cast<size_t>(h % num_shards)].push_back(std::move(pc));
  }
  return true;
}

size_t Relation::NumChangesSince(uint64_t since) const {
  if (!log_enabled_ || since < log_base_version_ || since > version_) {
    return SIZE_MAX;
  }
  return static_cast<size_t>(version_ - since);
}

int Relation::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == column_name) return static_cast<int>(i);
  }
  return -1;
}

bool Relation::IdenticalTo(const Relation& other) const {
  return name_ == other.name_ && column_names_ == other.column_names_ &&
         cols_ == other.cols_;
}

}  // namespace lsens
