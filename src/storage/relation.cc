#include "storage/relation.h"

#include <algorithm>
#include <utility>

namespace lsens {

Relation::Relation(std::string name, std::vector<std::string> column_names)
    : name_(std::move(name)), column_names_(std::move(column_names)) {
  LSENS_CHECK_MSG(!column_names_.empty(), "relation needs >= 1 column");
}

void Relation::Set(size_t row, size_t col, Value v) {
  LSENS_CHECK(row < NumRows() && col < arity());
  if (log_enabled_) {
    std::vector<Value> old(Row(row).begin(), Row(row).end());
    std::vector<Value> updated = old;
    updated[col] = v;
    LogChange(/*insert=*/false, old);
    LogChange(/*insert=*/true, updated);
    // Two log entries, but one observable mutation: keep version() in sync
    // with the entry count so CollectChangesSince offsets line up.
    ++version_;
  }
  data_[row * arity() + col] = v;
  ++version_;
}

void Relation::Clear() {
  data_.clear();
  ++version_;
  // The delta "everything erased" is exactly what the log exists to avoid
  // materializing; disable instead, so readers fall back to recompute.
  log_enabled_ = false;
  log_.clear();
}

void Relation::SwapRemoveRow(size_t i) {
  size_t n = NumRows();
  LSENS_CHECK(i < n);
  size_t k = arity();
  if (log_enabled_) LogChange(/*insert=*/false, Row(i));
  if (i != n - 1) {
    std::copy_n(data_.begin() + (n - 1) * k, k, data_.begin() + i * k);
  }
  data_.resize((n - 1) * k);
  ++version_;
}

void Relation::AppendRows(std::span<const Value> rows_flat) {
  const size_t k = arity();
  LSENS_CHECK(rows_flat.size() % k == 0);
  const size_t rows = rows_flat.size() / k;
  if (rows == 0) return;
  data_.reserve(data_.size() + rows_flat.size());
  if (log_enabled_) {
    for (size_t i = 0; i < rows; ++i) {
      LogChange(/*insert=*/true, rows_flat.subspan(i * k, k));
    }
  }
  data_.insert(data_.end(), rows_flat.begin(), rows_flat.end());
  version_ += rows;
}

Status Relation::ValidateDelta(std::span<const std::vector<Value>> inserts,
                               std::span<const size_t> delete_rows,
                               size_t num_rows) const {
  for (const auto& row : inserts) {
    if (row.size() != arity()) {
      return Status::InvalidArgument(
          "insert row arity " + std::to_string(row.size()) + " != " +
          std::to_string(arity()) + " in relation '" + name_ + "'");
    }
  }
  std::vector<size_t> sorted(delete_rows.begin(), delete_rows.end());
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] >= num_rows) {
      return Status::InvalidArgument(
          "delete index " + std::to_string(sorted[i]) +
          " out of range in relation '" + name_ + "' (" +
          std::to_string(num_rows) + " rows)");
    }
    if (i > 0 && sorted[i] == sorted[i - 1]) {
      return Status::InvalidArgument("duplicate delete index " +
                                     std::to_string(sorted[i]));
    }
  }
  return Status::OK();
}

Status Relation::ApplyDelta(std::span<const std::vector<Value>> inserts,
                            std::vector<size_t> delete_rows) {
  LSENS_RETURN_IF_ERROR(ValidateDelta(inserts, delete_rows, NumRows()));
  std::sort(delete_rows.begin(), delete_rows.end());
  // Descending order keeps every pending index valid: a swap-remove only
  // relocates the last row, whose index is larger than any remaining one.
  for (size_t i = delete_rows.size(); i-- > 0;) {
    SwapRemoveRow(delete_rows[i]);
  }
  for (const auto& row : inserts) AppendRow(row);
  return Status::OK();
}

void Relation::EnableChangeLog(size_t capacity) {
  LSENS_CHECK_MSG(capacity > 0, "change log capacity must be positive");
  log_enabled_ = true;
  log_capacity_ = capacity;
  log_.clear();
  log_base_version_ = version_;
}

void Relation::DisableChangeLog() {
  log_enabled_ = false;
  log_.clear();
  log_.shrink_to_fit();
  log_capacity_ = 0;
  log_base_version_ = version_;
}

size_t Relation::MemoryBytes() const {
  size_t bytes = data_.capacity() * sizeof(Value);
  for (const RowChange& change : log_) {
    bytes += sizeof(RowChange) + change.row.capacity() * sizeof(Value);
  }
  return bytes;
}

void Relation::LogChange(bool insert, std::span<const Value> row) {
  if (log_.size() == log_capacity_) {
    log_.pop_front();
    ++log_base_version_;
  }
  log_.push_back(RowChange{insert, {row.begin(), row.end()}});
}

bool Relation::CollectChangesSince(uint64_t since,
                                   std::vector<RowChange>* out) const {
  if (!log_enabled_ || since < log_base_version_ || since > version_) {
    return false;
  }
  // All entries between log_base_version_ and version_ are retained, so the
  // suffix starting at `since` is exactly the requested delta.
  LSENS_CHECK(version_ - log_base_version_ == log_.size());
  for (size_t i = static_cast<size_t>(since - log_base_version_);
       i < log_.size(); ++i) {
    out->push_back(log_[i]);
  }
  return true;
}

bool Relation::CollectChangesShardedSince(
    uint64_t since, std::span<const size_t> key_cols, size_t num_shards,
    std::vector<std::vector<RowChange>>* shards) const {
  LSENS_CHECK(num_shards > 0 && shards->size() >= num_shards);
  if (!log_enabled_ || since < log_base_version_ || since > version_) {
    return false;
  }
  LSENS_CHECK(version_ - log_base_version_ == log_.size());
  for (size_t i = static_cast<size_t>(since - log_base_version_);
       i < log_.size(); ++i) {
    const RowChange& change = log_[i];
    uint64_t h = kValueHashSeed;
    for (size_t col : key_cols) h = HashValueFold(h, change.row[col]);
    (*shards)[static_cast<size_t>(h % num_shards)].push_back(change);
  }
  return true;
}

size_t Relation::NumChangesSince(uint64_t since) const {
  if (!log_enabled_ || since < log_base_version_ || since > version_) {
    return SIZE_MAX;
  }
  return static_cast<size_t>(version_ - since);
}

int Relation::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == column_name) return static_cast<int>(i);
  }
  return -1;
}

bool Relation::IdenticalTo(const Relation& other) const {
  return name_ == other.name_ && column_names_ == other.column_names_ &&
         data_ == other.data_;
}

}  // namespace lsens
