#include "storage/relation.h"

#include <algorithm>
#include <utility>

namespace lsens {

Relation::Relation(std::string name, std::vector<std::string> column_names)
    : name_(std::move(name)), column_names_(std::move(column_names)) {
  LSENS_CHECK_MSG(!column_names_.empty(), "relation needs >= 1 column");
}

void Relation::SwapRemoveRow(size_t i) {
  size_t n = NumRows();
  LSENS_CHECK(i < n);
  size_t k = arity();
  if (i != n - 1) {
    std::copy_n(data_.begin() + (n - 1) * k, k, data_.begin() + i * k);
  }
  data_.resize((n - 1) * k);
}

int Relation::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == column_name) return static_cast<int>(i);
  }
  return -1;
}

bool Relation::IdenticalTo(const Relation& other) const {
  return name_ == other.name_ && column_names_ == other.column_names_ &&
         data_ == other.data_;
}

}  // namespace lsens
