#include "storage/database.h"

#include <utility>

#include "common/macros.h"

namespace lsens {

Database Database::Clone() const {
  Database out;
  out.attrs_ = attrs_;
  out.dict_ = dict_;
  out.names_ = names_;
  for (const auto& name : names_) {
    auto it = relations_.find(name);
    LSENS_CHECK(it != relations_.end());
    out.relations_.emplace(name, std::make_unique<Relation>(*it->second));
  }
  return out;
}

Database Database::CloneSnapshot() const {
  Database out = Clone();
  for (const auto& name : out.names_) {
    out.relations_.find(name)->second->DisableChangeLog();
  }
  return out;
}

Relation* Database::AddRelation(std::string name,
                                std::vector<std::string> column_names) {
  LSENS_CHECK_MSG(relations_.find(name) == relations_.end(),
                  "duplicate relation name");
  auto rel = std::make_unique<Relation>(name, std::move(column_names));
  Relation* ptr = rel.get();
  names_.push_back(name);
  relations_.emplace(std::move(name), std::move(rel));
  return ptr;
}

Relation* Database::Find(const std::string& name) {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

const Relation* Database::Find(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

StatusOr<const Relation*> Database::Get(const std::string& name) const {
  const Relation* r = Find(name);
  if (r == nullptr) {
    return Status::NotFound("relation '" + name + "' not in database");
  }
  return r;
}

Status Database::ApplyDelta(const DatabaseDelta& delta) {
  // Pass 1: validate everything against simulated row counts (a relation
  // may appear in several RelationDeltas; later ones see the size the
  // earlier ones will leave behind) so a poisoned batch rejects before any
  // relation is touched — no version bumps, no changelog entries.
  std::unordered_map<std::string, size_t> simulated_rows;
  for (const RelationDelta& rd : delta) {
    const Relation* rel = Find(rd.relation);
    if (rel == nullptr) {
      return Status::NotFound("relation '" + rd.relation +
                              "' not in database");
    }
    auto [it, inserted] = simulated_rows.emplace(rd.relation, rel->NumRows());
    LSENS_RETURN_IF_ERROR(
        rel->ValidateDelta(rd.inserts, rd.delete_rows, it->second));
    it->second = it->second - rd.delete_rows.size() + rd.inserts.size();
  }
  // Pass 2: all valid — apply. Re-validation inside Relation::ApplyDelta
  // cannot fail here.
  for (const RelationDelta& rd : delta) {
    Relation* rel = Find(rd.relation);
    Status applied = rel->ApplyDelta(rd.inserts, rd.delete_rows);
    LSENS_CHECK_MSG(applied.ok(), "validated delta failed to apply");
  }
  return Status::OK();
}

StatusOr<uint64_t> Database::VersionOf(const std::string& relation) const {
  const Relation* rel = Find(relation);
  if (rel == nullptr) {
    return Status::NotFound("relation '" + relation + "' not in database");
  }
  return rel->version();
}

size_t Database::TotalRows() const {
  // Walk names_ (insertion order), not relations_: the sums are commutative
  // either way, but routing every full-database walk through the ordered
  // view keeps iteration order out of the picture entirely (and out of the
  // lsens-lint unordered-iter audit).
  size_t total = 0;
  for (const auto& name : names_) {
    total += relations_.find(name)->second->NumRows();
  }
  return total;
}

size_t Database::MemoryBytes() const {
  size_t total = dict_.MemoryBytes();
  for (const auto& name : names_) {
    total += relations_.find(name)->second->MemoryBytes();
  }
  return total;
}

std::vector<std::pair<std::string, uint64_t>> Database::VersionVector() const {
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(names_.size());
  for (const auto& name : names_) {
    out.emplace_back(name, relations_.find(name)->second->version());
  }
  return out;
}

}  // namespace lsens
