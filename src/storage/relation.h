#ifndef LSENS_STORAGE_RELATION_H_
#define LSENS_STORAGE_RELATION_H_

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "storage/value.h"

namespace lsens {

// A base relation: named columns (by position; attribute binding happens in
// the query's atoms) and flat row-major storage. Bag semantics: duplicate
// rows are allowed and meaningful.
//
// Storage is a single contiguous std::vector<Value>; row i occupies
// [i*arity, (i+1)*arity). This keeps a 6M-row Lineitem at scale 1 within a
// few hundred MB and makes index-sorts cache-friendly.
class Relation {
 public:
  Relation(std::string name, std::vector<std::string> column_names);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  size_t arity() const { return column_names_.size(); }
  size_t NumRows() const { return arity() == 0 ? 0 : data_.size() / arity(); }

  std::span<const Value> Row(size_t i) const {
    return {data_.data() + i * arity(), arity()};
  }
  Value At(size_t row, size_t col) const { return data_[row * arity() + col]; }
  void Set(size_t row, size_t col, Value v) { data_[row * arity() + col] = v; }

  void AppendRow(std::span<const Value> row) {
    LSENS_CHECK(row.size() == arity());
    data_.insert(data_.end(), row.begin(), row.end());
  }
  void AppendRow(std::initializer_list<Value> row) {
    AppendRow(std::span<const Value>(row.begin(), row.size()));
  }

  void Reserve(size_t rows) { data_.reserve(rows * arity()); }
  void Clear() { data_.clear(); }

  // Removes row i by swapping with the last row (order is not meaningful
  // under bag semantics).
  void SwapRemoveRow(size_t i);

  // Column index for `column_name`, or -1.
  int ColumnIndex(const std::string& column_name) const;

  // Deep equality including row order (use for exact snapshots in tests).
  bool IdenticalTo(const Relation& other) const;

 private:
  std::string name_;
  std::vector<std::string> column_names_;
  std::vector<Value> data_;
};

}  // namespace lsens

#endif  // LSENS_STORAGE_RELATION_H_
