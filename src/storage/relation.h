#ifndef LSENS_STORAGE_RELATION_H_
#define LSENS_STORAGE_RELATION_H_

#include <cstdint>
#include <deque>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "storage/value.h"

namespace lsens {

// One logged mutation of a relation: a row inserted into or erased from the
// bag. Swap-remove reordering is not logged — consumers (the incremental
// sensitivity subsystem) only care about the multiset delta.
struct RowChange {
  bool insert = true;
  std::vector<Value> row;
};

// A base relation: named columns (by position; attribute binding happens in
// the query's atoms) and flat row-major storage. Bag semantics: duplicate
// rows are allowed and meaningful.
//
// Storage is a single contiguous std::vector<Value>; row i occupies
// [i*arity, (i+1)*arity). This keeps a 6M-row Lineitem at scale 1 within a
// few hundred MB and makes index-sorts cache-friendly.
//
// Every mutation bumps a monotone version counter, and an opt-in bounded
// changelog records the row-level delta between versions so caches keyed on
// (relation, version) can repair instead of recompute. The log is off by
// default — bulk loads pay only the counter increment.
class Relation {
 public:
  Relation(std::string name, std::vector<std::string> column_names);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  size_t arity() const { return column_names_.size(); }
  size_t NumRows() const { return arity() == 0 ? 0 : data_.size() / arity(); }

  std::span<const Value> Row(size_t i) const {
    return {data_.data() + i * arity(), arity()};
  }
  Value At(size_t row, size_t col) const { return data_[row * arity() + col]; }
  // Point overwrite. Bumps the version; the changelog (which speaks in
  // whole-row inserts/erases) records erase(old row) + insert(new row).
  void Set(size_t row, size_t col, Value v);

  void AppendRow(std::span<const Value> row) {
    LSENS_CHECK(row.size() == arity());
    if (log_enabled_) LogChange(/*insert=*/true, row);
    data_.insert(data_.end(), row.begin(), row.end());
    ++version_;
  }
  void AppendRow(std::initializer_list<Value> row) {
    AppendRow(std::span<const Value>(row.begin(), row.size()));
  }

  // Bulk append of `rows_flat.size() / arity()` rows stored row-major
  // (rows_flat.size() must be a multiple of the arity). One reserve and
  // one contiguous copy; versioning and the changelog observe the same
  // per-row granularity as the equivalent AppendRow loop.
  void AppendRows(std::span<const Value> rows_flat);

  void Reserve(size_t rows) { data_.reserve(rows * arity()); }
  // Drops every row. Bumps the version and disables the changelog (the
  // delta would be the whole relation); re-enable to resume logging.
  void Clear();

  // Removes row i by swapping with the last row (order is not meaningful
  // under bag semantics).
  void SwapRemoveRow(size_t i);

  // Checks a batched update without mutating anything: insert rows must
  // match the arity, delete indices must be distinct and < num_rows (the
  // relation size the delta will apply against — pass NumRows() for an
  // immediate apply, or a simulated size when validating a multi-relation
  // batch up front, as Database::ApplyDelta does).
  Status ValidateDelta(std::span<const std::vector<Value>> inserts,
                       std::span<const size_t> delete_rows,
                       size_t num_rows) const;

  // Batched update: removes the rows at `delete_rows` (indices into the
  // pre-delta relation, all distinct), then appends `inserts`. Runs
  // ValidateDelta first and rejects without mutating — a failed batch
  // bumps neither version() nor the changelog. One version bump and one
  // changelog entry per affected row, exactly as the equivalent
  // SwapRemoveRow/AppendRow sequence would produce.
  Status ApplyDelta(std::span<const std::vector<Value>> inserts,
                    std::vector<size_t> delete_rows);

  // --- Versioning and the change log -------------------------------------
  // Monotone mutation counter: every AppendRow / SwapRemoveRow / Set /
  // Clear (and each row of an ApplyDelta) bumps it by one.
  uint64_t version() const { return version_; }

  // Starts (or restarts) row-level change logging. The log keeps at most
  // `capacity` entries: older entries are discarded, which moves the
  // oldest version CollectChangesSince can answer for forward. Restarting
  // clears any previous log; changes before this call are not recoverable.
  void EnableChangeLog(size_t capacity);
  bool change_log_enabled() const { return log_enabled_; }

  // Stops logging and drops the retained entries (version() is preserved).
  // Immutable snapshot clones use this: a snapshot never mutates, so its
  // copied log would only pin memory.
  void DisableChangeLog();

  // Bytes held by row storage plus the retained change-log entries, for
  // epoch/eviction accounting (same spirit as DynTable::MemoryBytes).
  size_t MemoryBytes() const;

  // Appends the changes that lead from version `since` to version() onto
  // `out`. Returns false when the log cannot answer — logging disabled, a
  // non-loggable mutation (Clear) intervened, or `since` predates the
  // retained window — in which case `out` is untouched.
  bool CollectChangesSince(uint64_t since, std::vector<RowChange>* out) const;
  // The number of entries CollectChangesSince would append, or SIZE_MAX
  // when it would return false.
  size_t NumChangesSince(uint64_t since) const;

  // Like CollectChangesSince, but routes each change to shard
  // Mix64-hash(row projected onto `key_cols`) mod num_shards, appending to
  // shards[s]. Every change to one key lands in one shard in log order, so
  // shards are disjoint per-key work — the sharded delta repair in
  // sensitivity/incremental.cc hands one shard to each worker. `shards`
  // must hold at least num_shards vectors. Returns false exactly when
  // CollectChangesSince would (nothing appended).
  bool CollectChangesShardedSince(uint64_t since,
                                  std::span<const size_t> key_cols,
                                  size_t num_shards,
                                  std::vector<std::vector<RowChange>>* shards)
      const;

  // Column index for `column_name`, or -1.
  int ColumnIndex(const std::string& column_name) const;

  // Deep equality including row order (use for exact snapshots in tests).
  // Versions and change logs are bookkeeping, not contents: they are
  // ignored here.
  bool IdenticalTo(const Relation& other) const;

 private:
  void LogChange(bool insert, std::span<const Value> row);

  std::string name_;
  std::vector<std::string> column_names_;
  std::vector<Value> data_;

  uint64_t version_ = 0;
  bool log_enabled_ = false;
  size_t log_capacity_ = 0;
  uint64_t log_base_version_ = 0;  // version before the first retained entry
  std::deque<RowChange> log_;
};

}  // namespace lsens

#endif  // LSENS_STORAGE_RELATION_H_
