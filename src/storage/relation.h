#ifndef LSENS_STORAGE_RELATION_H_
#define LSENS_STORAGE_RELATION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "storage/value.h"

namespace lsens {

// One logged mutation of a relation: a row inserted into or erased from the
// bag. Swap-remove reordering is not logged — consumers (the incremental
// sensitivity subsystem) only care about the multiset delta.
struct RowChange {
  bool insert = true;
  std::vector<Value> row;
};

// A logged mutation projected onto a key-column subset: what the delta
// repair in sensitivity/incremental.cc actually consumes. Produced by
// CollectProjectedChangesShardedSince, which copies only the key columns of
// each passing change instead of slicing whole rows.
struct ProjectedRowChange {
  bool insert = true;
  std::vector<Value> key;
};

// A base relation: named columns (by position; attribute binding happens in
// the query's atoms) and columnar storage. Bag semantics: duplicate rows
// are allowed and meaningful.
//
// Storage is one contiguous std::vector<Value> per column; row i is the
// i-th element of every column vector. Scans, hash builds, and change-log
// projection read whole columns sequentially instead of striding across
// row tuples, which is what the exec-layer kernels want; the row-level API
// (Row/At/AppendRow/Set/SwapRemoveRow/ApplyDelta) is preserved on top and
// pins the semantics. Row() gathers into a fresh vector — hot loops should
// read Column() spans, reuse a buffer via RowInto(), or compare in place
// with RowEquals() instead (the lsens-lint `row-materialize` rule audits
// exec-layer loops for this).
//
// Every mutation bumps a monotone version counter, and an opt-in bounded
// changelog records the row-level delta between versions so caches keyed on
// (relation, version) can repair instead of recompute. The log is off by
// default — bulk loads pay only the counter increment.
class Relation {
 public:
  Relation(std::string name, std::vector<std::string> column_names);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  size_t arity() const { return column_names_.size(); }
  size_t NumRows() const { return cols_[0].size(); }

  // The full column: the unit of access every columnar kernel consumes.
  std::span<const Value> Column(size_t c) const { return cols_[c]; }

  // Row i gathered across columns into a fresh vector. Convenience for
  // tests and cold paths; hot loops use Column()/RowInto()/RowEquals().
  std::vector<Value> Row(size_t i) const;
  // Gather row i into `*out` (resized to arity()), reusing its capacity.
  void RowInto(size_t i, std::vector<Value>* out) const;
  // True iff row i equals `row` (arity-checked once per call).
  bool RowEquals(size_t i, std::span<const Value> row) const;

  Value At(size_t row, size_t col) const { return cols_[col][row]; }
  // Point overwrite. Bumps the version; the changelog (which speaks in
  // whole-row inserts/erases) records erase(old row) + insert(new row).
  void Set(size_t row, size_t col, Value v);

  void AppendRow(std::span<const Value> row) {
    LSENS_CHECK(row.size() == arity());
    if (log_enabled_) LogChange(/*insert=*/true, row);
    for (size_t c = 0; c < row.size(); ++c) cols_[c].push_back(row[c]);
    ++version_;
  }
  void AppendRow(std::initializer_list<Value> row) {
    AppendRow(std::span<const Value>(row.begin(), row.size()));
  }

  // Bulk append of `rows_flat.size() / arity()` rows stored row-major
  // (rows_flat.size() must be a multiple of the arity). One reserve and
  // one strided scatter per column; versioning and the changelog observe
  // the same per-row granularity as the equivalent AppendRow loop.
  void AppendRows(std::span<const Value> rows_flat);

  // Bulk append of pre-split columns: columns[c] holds the new values of
  // column c, all the same length. The columnar twin of AppendRows — one
  // contiguous copy per column, no row-major staging. The CSV loader
  // parses straight into such buffers.
  void AppendColumns(std::span<const std::vector<Value>> columns);

  // Gather-append of `rows` (indices into `src`, which must have the same
  // arity) — one strided gather per column. Used by the truncation
  // mechanisms to rebuild a filtered relation without materializing rows.
  void AppendRowsFrom(const Relation& src, std::span<const uint32_t> rows);

  void Reserve(size_t rows) {
    for (auto& col : cols_) col.reserve(rows);
  }
  // Drops every row. Bumps the version and disables the changelog (the
  // delta would be the whole relation); re-enable to resume logging.
  void Clear();

  // Removes row i by swapping with the last row (order is not meaningful
  // under bag semantics).
  void SwapRemoveRow(size_t i);

  // Checks a batched update without mutating anything: insert rows must
  // match the arity, delete indices must be distinct and < num_rows (the
  // relation size the delta will apply against — pass NumRows() for an
  // immediate apply, or a simulated size when validating a multi-relation
  // batch up front, as Database::ApplyDelta does).
  Status ValidateDelta(std::span<const std::vector<Value>> inserts,
                       std::span<const size_t> delete_rows,
                       size_t num_rows) const;

  // Batched update: removes the rows at `delete_rows` (indices into the
  // pre-delta relation, all distinct), then appends `inserts`. Runs
  // ValidateDelta first and rejects without mutating — a failed batch
  // bumps neither version() nor the changelog. One version bump and one
  // changelog entry per affected row, exactly as the equivalent
  // SwapRemoveRow/AppendRow sequence would produce.
  Status ApplyDelta(std::span<const std::vector<Value>> inserts,
                    std::vector<size_t> delete_rows);

  // --- Per-column dictionary handles --------------------------------------
  // Marks column c as dictionary-encoded: its values are codes interned in
  // the owning database's Dictionary (storage/dictionary.h). Purely
  // catalog metadata — the column stores flat int64 codes like any other —
  // but loaders and writers use it to decide which columns render back
  // through the dictionary. Survives Clone/CloneSnapshot with the rest of
  // the schema.
  bool column_dictionary(size_t c) const { return dict_cols_[c] != 0; }
  void set_column_dictionary(size_t c, bool on) {
    dict_cols_[c] = on ? 1 : 0;
  }

  // --- Versioning and the change log -------------------------------------
  // Monotone mutation counter: every AppendRow / SwapRemoveRow / Set /
  // Clear (and each row of an ApplyDelta) bumps it by one.
  uint64_t version() const { return version_; }

  // Starts (or restarts) row-level change logging. The log keeps at most
  // `capacity` entries: older entries are discarded, which moves the
  // oldest version CollectChangesSince can answer for forward. Restarting
  // clears any previous log; changes before this call are not recoverable.
  void EnableChangeLog(size_t capacity);
  bool change_log_enabled() const { return log_enabled_; }

  // Stops logging and drops the retained entries (version() is preserved).
  // Immutable snapshot clones use this: a snapshot never mutates, so its
  // copied log would only pin memory.
  void DisableChangeLog();

  // Bytes held by column storage plus the retained change-log entries, for
  // epoch/eviction accounting (same spirit as DynTable::MemoryBytes).
  size_t MemoryBytes() const;

  // Appends the changes that lead from version `since` to version() onto
  // `out`. Returns false when the log cannot answer — logging disabled, a
  // non-loggable mutation (Clear) intervened, or `since` predates the
  // retained window — in which case `out` is untouched.
  bool CollectChangesSince(uint64_t since, std::vector<RowChange>* out) const;
  // The number of entries CollectChangesSince would append, or SIZE_MAX
  // when it would return false.
  size_t NumChangesSince(uint64_t since) const;

  // Like CollectChangesSince, but routes each change to shard
  // Mix64-hash(row projected onto `key_cols`) mod num_shards, appending to
  // shards[s]. Every change to one key lands in one shard in log order, so
  // shards are disjoint per-key work. `shards` must hold at least
  // num_shards vectors. Returns false exactly when CollectChangesSince
  // would (nothing appended).
  bool CollectChangesShardedSince(uint64_t since,
                                  std::span<const size_t> key_cols,
                                  size_t num_shards,
                                  std::vector<std::vector<RowChange>>* shards)
      const;

  // The projected form the delta repair consumes: one log walk that drops
  // changes failing `filter` (pass nullptr to keep everything), copies
  // only the `key_cols` projection of each survivor, and routes it to
  // shard Mix64-hash(key) mod num_shards — the same routing as
  // CollectChangesShardedSince, so per-key order within a shard is
  // preserved. `*num_changes` (optional) receives the total number of log
  // entries walked, pre-filter — the repair's delta_rows accounting.
  // Returns false exactly when CollectChangesSince would.
  bool CollectProjectedChangesShardedSince(
      uint64_t since, std::span<const size_t> key_cols, size_t num_shards,
      const std::function<bool(const RowChange&)>& filter,
      std::vector<std::vector<ProjectedRowChange>>* shards,
      size_t* num_changes) const;

  // Column index for `column_name`, or -1.
  int ColumnIndex(const std::string& column_name) const;

  // Deep equality including row order (use for exact snapshots in tests).
  // Versions and change logs are bookkeeping, not contents: they are
  // ignored here.
  bool IdenticalTo(const Relation& other) const;

 private:
  void LogChange(bool insert, std::span<const Value> row);

  std::string name_;
  std::vector<std::string> column_names_;
  std::vector<std::vector<Value>> cols_;  // one vector per column
  std::vector<uint8_t> dict_cols_;        // per-column dictionary flags

  uint64_t version_ = 0;
  bool log_enabled_ = false;
  size_t log_capacity_ = 0;
  uint64_t log_base_version_ = 0;  // version before the first retained entry
  std::deque<RowChange> log_;
};

}  // namespace lsens

#endif  // LSENS_STORAGE_RELATION_H_
