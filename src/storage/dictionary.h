#ifndef LSENS_STORAGE_DICTIONARY_H_
#define LSENS_STORAGE_DICTIONARY_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/value.h"

namespace lsens {

// Interns string attribute values as Values so relations stay flat int64
// rows. Used by examples and workloads with symbolic domains (e.g. the
// Figure 1 database: a1, b2, ...).
//
// Codes start at kBase (10^12) so they never collide with ordinary integer
// data in the same column — ContainsValue() can then reliably distinguish
// interned strings from raw numbers (the CSV layer depends on this when
// rendering mixed columns).
//
// Codes are append-only and stable: interning never renumbers, so a deep
// copy (Database::Clone/CloneSnapshot) stays coherent with its source — a
// code interned *before* the copy decodes to the same string in both,
// while a code interned afterwards is simply absent from the copy
// (ContainsValue range-checks against the copy's own size and returns
// false rather than mis-decoding). The serving layer relies on exactly
// this: epoch snapshots render the codes their epoch knew, and a
// post-publish intern becomes renderable with the next epoch.
class Dictionary {
 public:
  static constexpr Value kBase = 1'000'000'000'000;

  Dictionary() = default;

  // Returns the Value encoding `s`, interning on first use.
  Value Intern(std::string_view s);

  // Returns the encoding or -1 if absent.
  Value Lookup(std::string_view s) const;

  // String for a previously interned value; CHECK-fails otherwise.
  const std::string& String(Value v) const;

  bool ContainsValue(Value v) const {
    return v >= kBase &&
           static_cast<size_t>(v - kBase) < strings_.size();
  }

  size_t size() const { return strings_.size(); }

  // Bytes held by the interned strings and both index structures, for the
  // same epoch/footprint accounting as Relation::MemoryBytes.
  size_t MemoryBytes() const;

 private:
  // Heterogeneous hash/eq so Intern/Lookup probe with the string_view
  // directly instead of allocating a temporary std::string per call.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct StringEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::vector<std::string> strings_;
  // lsens-lint: allow(unordered-iter) lookup-only interning table; the
  // ordered view is strings_ (code order) — iterate that instead.
  std::unordered_map<std::string, Value, StringHash, StringEq> values_;
};

}  // namespace lsens

#endif  // LSENS_STORAGE_DICTIONARY_H_
