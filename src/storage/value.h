#ifndef LSENS_STORAGE_VALUE_H_
#define LSENS_STORAGE_VALUE_H_

#include <cstdint>
#include <span>

#include "common/rng.h"

namespace lsens {

// All attribute values are 64-bit integers. String-valued attributes are
// interned through Dictionary (storage/dictionary.h); keys in the synthetic
// workloads are integers already. This keeps rows flat and joins cheap.
using Value = int64_t;

// Attribute identifier, assigned by AttributeCatalog.
using AttrId = int32_t;

inline constexpr AttrId kInvalidAttr = -1;

// The 64-bit key-hash fold every hash structure in the library shares:
// FlatGroupTable's buckets (HashRowKey), DynTable's flat indexes, and the
// change-log / repair shard routing — the last two MUST agree pairwise so
// one join key always lands in one shard. One definition pins that
// coupling; column-subset callers chain HashValueFold themselves.
inline constexpr uint64_t kValueHashSeed = 0x9e3779b97f4a7c15ULL;

inline uint64_t HashValueFold(uint64_t h, Value v) {
  return Mix64(h ^ static_cast<uint64_t>(v));
}

// Hash of a packed key row (equals folding the same values column-wise).
inline uint64_t HashValues(std::span<const Value> values) {
  uint64_t h = kValueHashSeed;
  for (Value v : values) h = HashValueFold(h, v);
  return h;
}

// Column-batch form of the same fold, for columnar storage: seed a batch of
// per-row hashes, then fold each key column in order. After seeding and
// folding columns c0..ck, hashes[i] == HashValues({col_c0[i], ...,
// col_ck[i]}) — the batch and scalar forms are pinned equal by
// storage_test, so flat hash tables and change-log shard routing agree no
// matter which form produced the hash.
inline void HashValuesBatchSeed(std::span<uint64_t> hashes) {
  for (uint64_t& h : hashes) h = kValueHashSeed;
}

inline void HashValuesBatchFold(std::span<const Value> column,
                                std::span<uint64_t> hashes) {
  for (size_t i = 0; i < hashes.size(); ++i) {
    hashes[i] = HashValueFold(hashes[i], column[i]);
  }
}

}  // namespace lsens

#endif  // LSENS_STORAGE_VALUE_H_
