#ifndef LSENS_STORAGE_VALUE_H_
#define LSENS_STORAGE_VALUE_H_

#include <cstdint>

namespace lsens {

// All attribute values are 64-bit integers. String-valued attributes are
// interned through Dictionary (storage/dictionary.h); keys in the synthetic
// workloads are integers already. This keeps rows flat and joins cheap.
using Value = int64_t;

// Attribute identifier, assigned by AttributeCatalog.
using AttrId = int32_t;

inline constexpr AttrId kInvalidAttr = -1;

}  // namespace lsens

#endif  // LSENS_STORAGE_VALUE_H_
