#ifndef LSENS_STORAGE_DATABASE_H_
#define LSENS_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/catalog.h"
#include "storage/dictionary.h"
#include "storage/relation.h"

namespace lsens {

// A batched update to one relation: rows to append plus indices (into the
// pre-delta relation) of rows to remove. See Relation::ApplyDelta.
struct RelationDelta {
  std::string relation;
  std::vector<std::vector<Value>> inserts;
  std::vector<size_t> delete_rows;
};

// A batched update across relations, applied in order.
using DatabaseDelta = std::vector<RelationDelta>;

// A database instance: a set of named relations plus the shared attribute
// catalog (query variables) and an optional value dictionary for symbolic
// domains. Relations are stored by unique name; self-joins are expressed by
// materializing a second copy under a different name (the paper's model).
class Database {
 public:
  Database() = default;

  // Movable, not copyable (relations can be large); use Clone() when a
  // deep copy is genuinely needed (e.g. truncation mechanisms).
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Database Clone() const;

  // Deep copy for an immutable epoch snapshot: contents and version
  // counters are preserved (so the snapshot's VersionVector still names the
  // epoch it was taken at), but change logs are dropped — a snapshot never
  // mutates, and the copied log would only pin memory per epoch.
  Database CloneSnapshot() const;

  // Adds an empty relation; CHECK-fails if the name already exists.
  Relation* AddRelation(std::string name,
                        std::vector<std::string> column_names);

  // Lookup; nullptr if absent.
  Relation* Find(const std::string& name);
  const Relation* Find(const std::string& name) const;

  // Lookup; Status if absent.
  StatusOr<const Relation*> Get(const std::string& name) const;

  const std::vector<std::string>& relation_names() const { return names_; }

  // Applies every RelationDelta in order, all-or-nothing for the whole
  // batch: the full list is validated first (against the row counts each
  // relation will have when its turn comes, so one relation may appear in
  // several deltas), and only a fully valid batch mutates anything. A
  // rejected batch leaves every relation untouched — no version bumps, no
  // changelog entries.
  Status ApplyDelta(const DatabaseDelta& delta);

  // The named relation's monotone version counter (see Relation::version);
  // Status if the relation is absent. Caches key their entries on these.
  StatusOr<uint64_t> VersionOf(const std::string& relation) const;

  size_t TotalRows() const;

  // Bytes held by every relation's columns and change logs (see
  // Relation::MemoryBytes) plus the value dictionary; the serving layer's
  // epoch accounting.
  size_t MemoryBytes() const;

  // Every relation's (name, version) in insertion order — the identity of
  // the database state an epoch snapshot captures. Two databases with equal
  // names whose version vectors match have seen the same mutation counts.
  std::vector<std::pair<std::string, uint64_t>> VersionVector() const;

  AttributeCatalog& attrs() { return attrs_; }
  const AttributeCatalog& attrs() const { return attrs_; }
  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

 private:
  std::vector<std::string> names_;  // insertion order, for stable iteration
  // lsens-lint: allow(unordered-iter) lookup-only by name; every walk over
  // the database routes through names_ so iteration order is insertion
  // order, never hash order.
  std::unordered_map<std::string, std::unique_ptr<Relation>> relations_;
  AttributeCatalog attrs_;
  Dictionary dict_;
};

}  // namespace lsens

#endif  // LSENS_STORAGE_DATABASE_H_
