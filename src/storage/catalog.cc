#include "storage/catalog.h"

#include "common/macros.h"

namespace lsens {

AttrId AttributeCatalog::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  AttrId id = static_cast<AttrId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

AttrId AttributeCatalog::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return kInvalidAttr;
  return it->second;
}

const std::string& AttributeCatalog::Name(AttrId id) const {
  LSENS_CHECK(id >= 0 && static_cast<size_t>(id) < names_.size());
  return names_[id];
}

}  // namespace lsens
