#include "storage/csv.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

namespace lsens {

namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  size_t pos = 0;
  while (true) {
    size_t comma = line.find(',', pos);
    if (comma == std::string::npos) {
      cells.push_back(line.substr(pos));
      break;
    }
    cells.push_back(line.substr(pos, comma - pos));
    pos = comma + 1;
  }
  // Trim surrounding whitespace per cell.
  for (auto& cell : cells) {
    size_t begin = cell.find_first_not_of(" \t\r");
    size_t end = cell.find_last_not_of(" \t\r");
    cell = (begin == std::string::npos)
               ? std::string()
               : cell.substr(begin, end - begin + 1);
  }
  return cells;
}

bool IsInteger(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

}  // namespace

Status LoadCsvText(Database& db, const std::string& relation,
                   const std::string& text) {
  if (db.Find(relation) != nullptr) {
    return Status::InvalidArgument("relation '" + relation +
                                   "' already exists");
  }
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV: missing header");
  }
  std::vector<std::string> header = SplitLine(line);
  for (const auto& col : header) {
    if (col.empty()) return Status::InvalidArgument("empty column name");
  }
  Relation* rel = db.AddRelation(relation, header);

  std::vector<Value> row(header.size());
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> cells = SplitLine(line);
    if (cells.size() != header.size()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(header.size()) + " cells, got " +
          std::to_string(cells.size()));
    }
    for (size_t c = 0; c < cells.size(); ++c) {
      row[c] = IsInteger(cells[c]) ? static_cast<Value>(std::stoll(cells[c]))
                                   : db.dict().Intern(cells[c]);
    }
    rel->AppendRow(row);
  }
  return Status::OK();
}

StatusOr<std::string> SaveCsvText(const Database& db,
                                  const std::string& relation,
                                  bool render_dictionary) {
  const Relation* rel = db.Find(relation);
  if (rel == nullptr) return Status::NotFound("relation " + relation);
  std::ostringstream out;
  for (size_t c = 0; c < rel->column_names().size(); ++c) {
    const std::string& name = rel->column_names()[c];
    if (name.find(',') != std::string::npos ||
        name.find('\n') != std::string::npos) {
      return Status::InvalidArgument("column name needs quoting: " + name);
    }
    out << (c > 0 ? "," : "") << name;
  }
  out << '\n';
  for (size_t r = 0; r < rel->NumRows(); ++r) {
    for (size_t c = 0; c < rel->arity(); ++c) {
      Value v = rel->At(r, c);
      if (c > 0) out << ',';
      if (render_dictionary && db.dict().ContainsValue(v)) {
        const std::string& s = db.dict().String(v);
        if (s.find(',') != std::string::npos ||
            s.find('\n') != std::string::npos) {
          return Status::InvalidArgument("cell value needs quoting: " + s);
        }
        out << s;
      } else {
        out << v;
      }
    }
    out << '\n';
  }
  return out.str();
}

Status LoadCsv(Database& db, const std::string& relation,
               const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadCsvText(db, relation, buffer.str());
}

Status SaveCsv(const Database& db, const std::string& relation,
               const std::string& path, bool render_dictionary) {
  auto text = SaveCsvText(db, relation, render_dictionary);
  if (!text.ok()) return text.status();
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  out << *text;
  return out ? Status::OK() : Status::Internal("write failed: " + path);
}

}  // namespace lsens
