#include "storage/csv.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

namespace lsens {

namespace {

std::string Trim(const std::string& cell) {
  size_t begin = cell.find_first_not_of(" \t\r");
  size_t end = cell.find_last_not_of(" \t\r");
  return (begin == std::string::npos) ? std::string()
                                      : cell.substr(begin, end - begin + 1);
}

// RFC 4180 field splitting: cells are comma-separated; a cell may be
// double-quoted, in which case commas are literal and "" encodes one quote.
// Unquoted cells are whitespace-trimmed (legacy behavior); quoted cells are
// kept verbatim. Quoted cells may not continue past their closing quote,
// and an unterminated quote is an error (it is also what an RFC 4180
// embedded line break looks like to this line-based reader, so the message
// mentions both).
Status SplitLine(const std::string& line, size_t line_no,
                 std::vector<std::string>* cells) {
  cells->clear();
  size_t pos = 0;
  while (true) {
    // One cell starting at `pos`.
    size_t scan = line.find_first_not_of(" \t", pos);
    if (scan != std::string::npos && line[scan] == '"') {
      std::string cell;
      size_t i = scan + 1;
      bool closed = false;
      while (i < line.size()) {
        if (line[i] == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            cell += '"';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        cell += line[i++];
      }
      if (!closed) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) +
            ": unterminated quoted cell (embedded line breaks are not"
            " supported)");
      }
      size_t rest = line.find_first_not_of(" \t\r", i);
      if (rest != std::string::npos && line[rest] != ',') {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) +
            ": unexpected character after closing quote");
      }
      cells->push_back(std::move(cell));
      if (rest == std::string::npos) return Status::OK();
      pos = rest + 1;
      continue;
    }
    size_t comma = line.find(',', pos);
    if (comma == std::string::npos) {
      cells->push_back(Trim(line.substr(pos)));
      return Status::OK();
    }
    cells->push_back(Trim(line.substr(pos, comma - pos)));
    pos = comma + 1;
  }
}

bool IsInteger(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

// Exact int64 parse for a cell IsInteger accepted. Unlike std::stoll, an
// out-of-range literal reports failure instead of throwing through the
// Status API.
bool ParseInt64(const std::string& s, int64_t* out) {
  // std::from_chars accepts '-' but not '+'.
  const char* begin = s.data() + (s[0] == '+' ? 1 : 0);
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

Status LoadCsvText(Database& db, const std::string& relation,
                   const std::string& text) {
  if (db.Find(relation) != nullptr) {
    return Status::InvalidArgument("relation '" + relation +
                                   "' already exists");
  }
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV: missing header");
  }
  std::vector<std::string> header;
  LSENS_RETURN_IF_ERROR(SplitLine(line, 1, &header));
  for (const auto& col : header) {
    if (col.empty()) return Status::InvalidArgument("empty column name");
  }
  Relation* rel = db.AddRelation(relation, header);

  // Cells parse straight into per-column buffers — the same shape as the
  // relation's columnar storage — and the whole file lands with one
  // AppendColumns call (one contiguous copy per column). String cells
  // intern through the database dictionary; any column that interned at
  // least one cell is marked dictionary-encoded in the catalog.
  std::vector<std::vector<Value>> columns(header.size());
  std::vector<bool> interned(header.size(), false);
  std::vector<std::string> cells;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    LSENS_RETURN_IF_ERROR(SplitLine(line, line_no, &cells));
    if (cells.size() != header.size()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(header.size()) + " cells, got " +
          std::to_string(cells.size()));
    }
    for (size_t c = 0; c < cells.size(); ++c) {
      if (IsInteger(cells[c])) {
        int64_t parsed = 0;
        if (!ParseInt64(cells[c], &parsed)) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_no) + ", column " +
              std::to_string(c) + " ('" + header[c] + "'): integer literal '" +
              cells[c] + "' out of int64 range");
        }
        columns[c].push_back(static_cast<Value>(parsed));
      } else {
        columns[c].push_back(db.dict().Intern(cells[c]));
        interned[c] = true;
      }
    }
  }
  rel->AppendColumns(columns);
  for (size_t c = 0; c < header.size(); ++c) {
    if (interned[c]) rel->set_column_dictionary(c, true);
  }
  return Status::OK();
}

StatusOr<std::string> SaveCsvText(const Database& db,
                                  const std::string& relation,
                                  bool render_dictionary) {
  const Relation* rel = db.Find(relation);
  if (rel == nullptr) return Status::NotFound("relation " + relation);
  std::ostringstream out;
  for (size_t c = 0; c < rel->column_names().size(); ++c) {
    const std::string& name = rel->column_names()[c];
    if (name.find(',') != std::string::npos ||
        name.find('\n') != std::string::npos) {
      return Status::InvalidArgument("column name needs quoting: " + name);
    }
    out << (c > 0 ? "," : "") << name;
  }
  out << '\n';
  for (size_t r = 0; r < rel->NumRows(); ++r) {
    for (size_t c = 0; c < rel->arity(); ++c) {
      Value v = rel->At(r, c);
      if (c > 0) out << ',';
      if (render_dictionary && db.dict().ContainsValue(v)) {
        const std::string& s = db.dict().String(v);
        if (s.find(',') != std::string::npos ||
            s.find('\n') != std::string::npos) {
          return Status::InvalidArgument("cell value needs quoting: " + s);
        }
        out << s;
      } else {
        out << v;
      }
    }
    out << '\n';
  }
  return out.str();
}

Status LoadCsv(Database& db, const std::string& relation,
               const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadCsvText(db, relation, buffer.str());
}

Status SaveCsv(const Database& db, const std::string& relation,
               const std::string& path, bool render_dictionary) {
  auto text = SaveCsvText(db, relation, render_dictionary);
  if (!text.ok()) return text.status();
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  out << *text;
  return out ? Status::OK() : Status::Internal("write failed: " + path);
}

}  // namespace lsens
