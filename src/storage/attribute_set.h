#ifndef LSENS_STORAGE_ATTRIBUTE_SET_H_
#define LSENS_STORAGE_ATTRIBUTE_SET_H_

#include <vector>

#include "storage/value.h"

namespace lsens {

// An AttributeSet is a strictly sorted vector of attribute ids. All query
// processing (join keys, group-by keys, hypergraph vertices) works on these.
using AttributeSet = std::vector<AttrId>;

// Returns `attrs` sorted with duplicates removed.
AttributeSet MakeAttributeSet(std::vector<AttrId> attrs);

// True if `set` is strictly sorted (a valid AttributeSet).
bool IsValidAttributeSet(const AttributeSet& set);

AttributeSet Union(const AttributeSet& a, const AttributeSet& b);
AttributeSet Intersect(const AttributeSet& a, const AttributeSet& b);
AttributeSet Difference(const AttributeSet& a, const AttributeSet& b);
bool Contains(const AttributeSet& set, AttrId attr);
bool IsSubset(const AttributeSet& sub, const AttributeSet& super);
bool Intersects(const AttributeSet& a, const AttributeSet& b);

}  // namespace lsens

#endif  // LSENS_STORAGE_ATTRIBUTE_SET_H_
