#include "storage/dictionary.h"

#include "common/macros.h"

namespace lsens {

Value Dictionary::Intern(std::string_view s) {
  auto it = values_.find(s);
  if (it != values_.end()) return it->second;
  Value v = kBase + static_cast<Value>(strings_.size());
  strings_.emplace_back(s);
  values_.emplace(strings_.back(), v);
  return v;
}

Value Dictionary::Lookup(std::string_view s) const {
  auto it = values_.find(s);
  if (it == values_.end()) return -1;
  return it->second;
}

const std::string& Dictionary::String(Value v) const {
  LSENS_CHECK(ContainsValue(v));
  return strings_[static_cast<size_t>(v - kBase)];
}

size_t Dictionary::MemoryBytes() const {
  // strings_ and values_ hold the same entries 1:1 (every string is stored
  // twice — code order and reverse-index key), so the walk stays on the
  // ordered view and only the bucket array is charged from the map itself.
  size_t bytes = strings_.capacity() * sizeof(std::string);
  bytes += values_.bucket_count() * sizeof(void*);
  for (const std::string& s : strings_) {
    bytes += 2 * s.capacity() + sizeof(std::string) + sizeof(Value) +
             2 * sizeof(void*);
  }
  return bytes;
}

}  // namespace lsens
