#include "storage/dictionary.h"

#include "common/macros.h"

namespace lsens {

Value Dictionary::Intern(std::string_view s) {
  auto it = values_.find(s);
  if (it != values_.end()) return it->second;
  Value v = kBase + static_cast<Value>(strings_.size());
  strings_.emplace_back(s);
  values_.emplace(strings_.back(), v);
  return v;
}

Value Dictionary::Lookup(std::string_view s) const {
  auto it = values_.find(s);
  if (it == values_.end()) return -1;
  return it->second;
}

const std::string& Dictionary::String(Value v) const {
  LSENS_CHECK(ContainsValue(v));
  return strings_[static_cast<size_t>(v - kBase)];
}

}  // namespace lsens
