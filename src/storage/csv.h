#ifndef LSENS_STORAGE_CSV_H_
#define LSENS_STORAGE_CSV_H_

#include <string>

#include "common/macros.h"
#include "common/status.h"
#include "storage/database.h"

namespace lsens {

// Plain-CSV interchange for relations. Cells are either integers (stored
// verbatim; literals outside int64 are rejected with the line number and
// the offending column index/name) or arbitrary strings (interned through
// the database dictionary so joins still run over flat int64 columns; the
// touched columns are marked dictionary-encoded in the relation's
// catalog). The loader parses straight into per-column buffers and lands
// the file with one bulk columnar append. Reading accepts RFC 4180
// double-quoted cells ("" escapes a quote, commas inside quotes are
// literal; embedded line breaks are not supported and read as an
// unterminated quote error). Writing still refuses values that would need
// quoting.

// Loads `path` into a new relation named `relation`. The first line is the
// header (column names). Fails if the relation already exists.
Status LoadCsv(Database& db, const std::string& relation,
               const std::string& path);

// Writes the relation to `path`, rendering dictionary-interned values back
// to their strings when `render_dictionary` is set (integers that happen to
// collide with dictionary codes stay numeric when it is not).
Status SaveCsv(const Database& db, const std::string& relation,
               const std::string& path, bool render_dictionary = false);

// In-memory variants (used by tests and by the file functions).
Status LoadCsvText(Database& db, const std::string& relation,
                   const std::string& text);
StatusOr<std::string> SaveCsvText(const Database& db,
                                  const std::string& relation,
                                  bool render_dictionary = false);

}  // namespace lsens

#endif  // LSENS_STORAGE_CSV_H_
