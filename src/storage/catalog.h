#ifndef LSENS_STORAGE_CATALOG_H_
#define LSENS_STORAGE_CATALOG_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/value.h"

namespace lsens {

// Maps attribute names (the query's logical variables, e.g. "NK", "custkey")
// to dense AttrIds. Owned by Database; queries and relations share one
// catalog so attribute identity is global.
class AttributeCatalog {
 public:
  AttributeCatalog() = default;

  // Returns the id for `name`, interning it on first use.
  AttrId Intern(std::string_view name);

  // Returns the id for `name` or kInvalidAttr if never interned.
  AttrId Lookup(std::string_view name) const;

  // Name for an id; CHECK-fails on invalid ids.
  const std::string& Name(AttrId id) const;

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  // lsens-lint: allow(unordered-iter) lookup-only interning table; the
  // ordered view is names_ (AttrId order) — iterate that instead.
  std::unordered_map<std::string, AttrId> ids_;
};

}  // namespace lsens

#endif  // LSENS_STORAGE_CATALOG_H_
