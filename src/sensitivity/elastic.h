#ifndef LSENS_SENSITIVITY_ELASTIC_H_
#define LSENS_SENSITIVITY_ELASTIC_H_

#include <map>
#include <memory>
#include <vector>

#include "common/count.h"
#include "common/status.h"
#include "query/conjunctive_query.h"
#include "query/ghd.h"
#include "storage/database.h"

namespace lsens {

// Source of max-frequency metadata for the Elastic analysis. The paper lets
// Elastic "pre-process the database to obtain the max frequency"; that is
// DataMaxFreqProvider. DP baselines substitute clamped providers.
class MaxFreqProvider {
 public:
  virtual ~MaxFreqProvider() = default;

  // Upper bound on the multiplicity of any single combination of values of
  // `vars` in atom `atom_index`'s relation. vars = ∅ means the row count.
  // Selection predicates are ignored — Elastic is a static analysis (§8:
  // "the elastic sensitivity algorithm will output the same value as for a
  // query without the selection operators").
  virtual Count MaxFreq(int atom_index, const AttributeSet& vars) const = 0;
};

// Computes exact max frequencies from the database instance, cached per
// (atom, vars) pair.
class DataMaxFreqProvider : public MaxFreqProvider {
 public:
  DataMaxFreqProvider(const ConjunctiveQuery& q, const Database& db);
  Count MaxFreq(int atom_index, const AttributeSet& vars) const override;

 private:
  const ConjunctiveQuery& q_;
  const Database& db_;
  mutable std::map<std::pair<int, AttributeSet>, Count> cache_;
};

// Wraps another provider and applies PrivSQL-style frequency caps: after
// truncating a relation so no `key` value occurs more than `cap` times,
// `cap` soundly bounds the frequency of any keyset that contains the key
// (frequencies of other keysets only shrink under truncation, so the inner
// bound remains valid for them).
class ClampedMaxFreqProvider : public MaxFreqProvider {
 public:
  struct Cap {
    AttributeSet key;
    Count cap;
  };

  ClampedMaxFreqProvider(const MaxFreqProvider& inner, std::map<int, Cap> caps)
      : inner_(inner), caps_(std::move(caps)) {}
  Count MaxFreq(int atom_index, const AttributeSet& vars) const override;

 private:
  const MaxFreqProvider& inner_;
  std::map<int, Cap> caps_;
};

// Result of the Elastic (Flex) static analysis at distance 0: an upper
// bound on the local sensitivity per private relation, and the max. Unlike
// TSens it cannot produce a most sensitive tuple.
struct ElasticResult {
  Count local_sensitivity_bound;
  std::vector<Count> per_atom_bound;  // atom as the sole private relation
};

// How join-output max frequencies compose up the plan.
//  * kFlexFaithful — the original Flex rule: mf of an attribute on the left
//    side multiplies the right side's join-key frequency (one derivation,
//    chosen by which side holds the queried attributes). Bounds compound
//    multiplicatively along deep plans — this is the variant whose q3
//    bounds reach 1e8 in the paper's Figure 6b.
//  * kTightened — takes the minimum of both symmetric derivations at every
//    join (each is individually sound). Often orders of magnitude tighter;
//    our default.
enum class ElasticMode { kTightened, kFlexFaithful };

// Left-deep binary join plan order: the atoms joined in sequence
// (the paper: "extend Elastic ... to take the join plan as input"; plans
// come from PlanOrderFromForest/Ghd, a post-order traversal).
StatusOr<ElasticResult> ElasticSensitivity(
    const ConjunctiveQuery& q, const std::vector<int>& join_order,
    const MaxFreqProvider& mf, ElasticMode mode = ElasticMode::kTightened);

// Convenience: derives the plan order and uses data max-frequencies.
StatusOr<ElasticResult> ElasticSensitivity(
    const ConjunctiveQuery& q, const Database& db, const Ghd* ghd = nullptr,
    ElasticMode mode = ElasticMode::kTightened);

// Post-order atom sequences ("we define the join order as a post-traversal
// of the join plan").
std::vector<int> PlanOrderFromForest(const JoinForest& forest);
std::vector<int> PlanOrderFromGhd(const Ghd& ghd);

// ---- Distance-k / smooth elastic sensitivity (the full Flex mechanism) --
//
// Elastic sensitivity at distance k bounds the local sensitivity of any
// database within k tuple insertions/deletions of D; Flex models it by
// inflating every max frequency (and row count) by k.
class DistanceShiftedMaxFreqProvider : public MaxFreqProvider {
 public:
  DistanceShiftedMaxFreqProvider(const MaxFreqProvider& inner, uint64_t k)
      : inner_(inner), k_(k) {}
  Count MaxFreq(int atom_index, const AttributeSet& vars) const override {
    return inner_.MaxFreq(atom_index, vars) + Count(k_);
  }

 private:
  const MaxFreqProvider& inner_;
  uint64_t k_;
};

StatusOr<ElasticResult> ElasticSensitivityAtDistance(
    const ConjunctiveQuery& q, const std::vector<int>& join_order,
    const MaxFreqProvider& mf, uint64_t distance,
    ElasticMode mode = ElasticMode::kTightened);

// β-smooth upper bound on the local sensitivity of the private atom:
//   S*(D) = max_{k >= 0} e^{-βk} · S^(k)(D),
// the quantity Flex feeds into the smooth-sensitivity noise calibration
// (Nissim et al. [37]). S^(k) grows polynomially in k while e^{-βk} decays,
// so the scan over k terminates; max_distance is a hard cap.
struct SmoothElasticResult {
  double smooth_bound = 0.0;
  uint64_t argmax_distance = 0;
};
StatusOr<SmoothElasticResult> SmoothElasticSensitivity(
    const ConjunctiveQuery& q, const std::vector<int>& join_order,
    const MaxFreqProvider& mf, double beta, int private_atom,
    ElasticMode mode = ElasticMode::kTightened, uint64_t max_distance = 10000);

}  // namespace lsens

#endif  // LSENS_SENSITIVITY_ELASTIC_H_
