#include "sensitivity/result.h"

namespace lsens {

const AtomSensitivity* SensitivityResult::MostSensitive() const {
  if (argmax_atom < 0 || argmax_atom >= static_cast<int>(atoms.size())) {
    return nullptr;
  }
  return &atoms[static_cast<size_t>(argmax_atom)];
}

std::string SensitivityResult::DescribeMostSensitive(
    const AttributeCatalog& attrs, const Dictionary* dict) const {
  const AtomSensitivity* best = MostSensitive();
  if (best == nullptr) return "(no sensitive tuple: LS = 0)";
  std::string out = best->relation + "(";
  bool first = true;
  auto append_value = [&](AttrId var, const std::string& value) {
    if (!first) out += ", ";
    first = false;
    out += attrs.Name(var) + "=" + value;
  };
  for (size_t i = 0; i < best->table_attrs.size(); ++i) {
    std::string value = "?";
    if (i < best->argmax.size()) {
      Value v = best->argmax[i];
      value = (dict != nullptr && dict->ContainsValue(v)) ? dict->String(v)
                                                          : std::to_string(v);
    }
    append_value(best->table_attrs[i], value);
  }
  for (AttrId var : best->free_vars) append_value(var, "*");
  out += ") with sensitivity " + local_sensitivity.ToString();
  if (best->approximate) out += " (upper bound)";
  return out;
}

}  // namespace lsens
