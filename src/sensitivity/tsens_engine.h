#ifndef LSENS_SENSITIVITY_TSENS_ENGINE_H_
#define LSENS_SENSITIVITY_TSENS_ENGINE_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "exec/fold_join.h"
#include "query/ghd.h"
#include "sensitivity/result.h"
#include "storage/database.h"

namespace lsens {

// Internal engine state exported for the incremental sensitivity subsystem
// (sensitivity/incremental.h) when TSensOptions::capture is set: the
// per-atom projections and the untruncated fold tables the result was
// derived from, so a cache can repair them under updates instead of
// rebuilding. Indexing follows the producing engine: TSensOverGhd fills
// `s` per atom and `bot`/`top` per bag; TSensPath fills all three per
// chain position (bot[i] = botjoin[i], top[i] = topjoin[i], positions
// 1..m-1; index 0 stays disengaged).
//
// TSensOverGhd additionally exports the intermediate fold tables the
// grouped results were derived from, exactly where a repairing cache needs
// to materialize them as its own maintained state: per-bag pre-group-by
// joins (multi-atom bags have no single relation covering the fold, so the
// join itself must be kept to route deltas through), per-tree root folds
// and totals (§5.4 disconnected scale factors), and per-atom
// multiplicity-table components. TSensPath leaves these empty.
struct TSensCapture {
  std::vector<CountedRelation> s;

  // Canonical subtree tag per s[i] (query/conjunctive_query.h:
  // CanonicalSourceSignature over the producing atom and its keep set),
  // filled by both engines alongside `s`. The cross-query plan cache keys
  // shared S_a tables by these; BuildState cross-checks them against its
  // own derivation so engine and cache can never disagree silently about
  // what a captured table is.
  std::vector<std::string> s_sig;
  std::vector<std::optional<CountedRelation>> bot;
  std::vector<std::optional<CountedRelation>> top;

  // Per bag: the fold behind bot[v] / top[v] before the group-by onto the
  // parent link. bot_join[v] is filled when bag v holds >= 2 atoms;
  // top_join[v] when v's *parent* bag does (otherwise the fold is covered
  // by a single S table and needs no separate state).
  std::vector<std::optional<CountedRelation>> bot_join;
  std::vector<std::optional<CountedRelation>> top_join;

  // Per tree of the decomposition forest: the root bag's full fold (whose
  // TotalCount is the tree's join size) and that total. root_join is only
  // filled for forests with >= 2 trees — connected queries never consume
  // the cross-tree scale factors.
  std::vector<std::optional<CountedRelation>> root_join;
  std::vector<Count> tree_total;

  // Per atom, per attribute-connectivity component of its multiplicity
  // table (engine component order): `join` is the fold over the
  // component's pieces (filled when the component has >= 2 pieces), and
  // `table` the grouped — but not yet predicate-filtered — component table
  // (filled when grouping actually projected the fold, i.e. the group
  // attributes are a proper subset of the fold's). Skipped atoms keep an
  // empty component list.
  struct AtomComponent {
    std::optional<CountedRelation> join;
    std::optional<CountedRelation> table;
  };
  std::vector<std::vector<AtomComponent>> atom_components;
};

// Options shared by all TSens algorithm variants.
struct TSensOptions {
  // Join kernel selection, stats context, and parallelism: join.threads > 1
  // lets the engine fan its independent subproblems (per-atom multiplicity
  // tables, the path algorithm's two fold chains, per-tuple lookups) and
  // large hash-join probes out over the process-wide thread pool. Results
  // are bit-identical to serial at any thread count.
  JoinOptions join;

  // §5.4 "Efficient approximations": when > 0, botjoins and topjoins keep
  // only the top_k highest-count rows plus the k-th largest count as a
  // default for the remaining active values. All reported sensitivities
  // become upper bounds (AtomSensitivity::approximate is set when a table
  // was affected).
  size_t top_k = 0;

  // Store the full multiplicity tables T_i in the result (needed by the DP
  // truncation mechanism to look up per-tuple sensitivities).
  bool keep_tables = false;

  // Atoms whose multiplicity table should not be computed, e.g. relations
  // whose query variables contain a superkey so δ <= 1 by construction (the
  // paper skips Lineitem in q3 this way). Skipped atoms report
  // max_sensitivity 0 and do not participate in the argmax.
  std::vector<int> skip_atoms;

  // When non-null, the engine additionally exports its internal tables
  // here (copies made after the run; the result is unaffected). Used by
  // SensitivityCache to seed its repairable state from the exact tables
  // the from-scratch answer was computed from.
  TSensCapture* capture = nullptr;
};

// TSens over a generalized hypertree decomposition (Algorithm 2 and its
// §5.4 GHD extension; acyclic queries use the trivial width-1 GHD).
//
// Per tree of the decomposition forest:
//   ⊥(v) = γ_{vars(v) ∩ vars(parent)} r⋈( {S_a : a ∈ v}, {⊥(c) : c child} )
//   ⊤(v) = γ_{vars(v) ∩ vars(parent)} r⋈( {S_a : a ∈ parent}, ⊤(parent),
//                                          {⊥(s) : s sibling} )
//   T_a  = γ_{shared(a)}             r⋈( ⊤(bag(a)), {⊥(c) : c child},
//                                          {S_b : b ∈ bag(a), b ≠ a} )
// where S_a is atom a's relation projected onto its shared variables with
// multiplicity counts (exclusive attributes contribute their multiplicity
// and are reported as free values of the most sensitive tuple).
//
// Disconnected queries (§5.4): T_a counts are scaled by the product of the
// other components' total join sizes.
//
// The T_a expression can factor into attribute-disjoint groups (always the
// case for path queries: ⊤ and ⊥ share nothing). The engine exploits
// γ_{X∪Y}(A × B) = γ_X(A) × γ_Y(B) to avoid materializing such cross
// products unless keep_tables requires the full table.
StatusOr<SensitivityResult> TSensOverGhd(const ConjunctiveQuery& q,
                                         const Ghd& ghd, const Database& db,
                                         const TSensOptions& options = {});

// δ(t) for every row of the relation bound by `atom_index`, in row order.
// Requires `result` computed with keep_tables = true over the same query
// and database. Rows failing the atom's predicates have sensitivity 0.
// `options.join` supplies the stats context and the thread count: with
// threads > 1 the per-row lookups are chunked over the global pool (each
// row writes its own slot, so the vector is bit-identical to serial).
StatusOr<std::vector<Count>> TupleSensitivities(const SensitivityResult& result,
                                                const ConjunctiveQuery& q,
                                                const Database& db,
                                                int atom_index,
                                                const TSensOptions& options =
                                                    {});

}  // namespace lsens

#endif  // LSENS_SENSITIVITY_TSENS_ENGINE_H_
