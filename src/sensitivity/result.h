#ifndef LSENS_SENSITIVITY_RESULT_H_
#define LSENS_SENSITIVITY_RESULT_H_

#include <optional>
#include <string>
#include <vector>

#include "common/count.h"
#include "exec/counted_relation.h"
#include "storage/attribute_set.h"
#include "storage/catalog.h"
#include "storage/dictionary.h"

namespace lsens {

// Sensitivity summary for one atom (relation) of the query.
struct AtomSensitivity {
  int atom_index = -1;
  std::string relation;

  // Attributes of the multiplicity table T_i — the atom's shared variables.
  // A most-sensitive tuple binds these; `free_vars` (variables exclusive to
  // this atom) may take any value satisfying the atom's predicates (§5.4
  // "extrapolate a value").
  AttributeSet table_attrs;
  AttributeSet free_vars;

  // max_t δ(t, Q, D) over the representative domain of this relation.
  Count max_sensitivity;

  // Values for table_attrs attaining max_sensitivity; empty when
  // max_sensitivity is zero or attained only by a top-k default bound.
  std::vector<Value> argmax;

  // True if the caller excluded this atom (TSensOptions::skip_atoms).
  bool skipped = false;

  // True when max_sensitivity is an upper bound rather than exact
  // (top-k approximation touched this table).
  bool approximate = false;

  // The full multiplicity table (row -> tuple sensitivity over the
  // representative domain), populated when TSensOptions::keep_tables.
  std::optional<CountedRelation> table;
};

// Output of the local sensitivity problem (Definition 2.3): LS(Q, D) plus a
// most sensitive tuple, and per-relation detail.
struct SensitivityResult {
  Count local_sensitivity;
  int argmax_atom = -1;                 // index into `atoms`
  std::vector<AtomSensitivity> atoms;   // one per query atom

  const AtomSensitivity* MostSensitive() const;

  // Human-readable description of the most sensitive tuple, e.g.
  // "R1(A=a2, B=b2, C=c1) with sensitivity 4". Uses `dict` to render
  // interned string values when provided.
  std::string DescribeMostSensitive(const AttributeCatalog& attrs,
                                    const Dictionary* dict = nullptr) const;
};

}  // namespace lsens

#endif  // LSENS_SENSITIVITY_RESULT_H_
