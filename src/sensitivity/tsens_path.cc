#include "sensitivity/tsens_path.h"

#include <algorithm>
#include <utility>

#include "exec/exec_context.h"
#include "exec/fold_join.h"

namespace lsens {

StatusOr<SensitivityResult> TSensPath(const ConjunctiveQuery& q,
                                      const std::vector<int>& order,
                                      const Database& db,
                                      const TSensOptions& options) {
  LSENS_RETURN_IF_ERROR(q.ValidateForSensitivity(db));
  if (options.keep_tables) {
    return Status::Unsupported(
        "TSensPath never materializes multiplicity tables; use TSensOverGhd");
  }
  const size_t m = order.size();
  if (m != static_cast<size_t>(q.num_atoms()) || m < 2) {
    return Status::InvalidArgument("order must list all >= 2 atoms");
  }

  // Link attribute between chain positions i and i+1.
  std::vector<AttrId> link(m - 1, kInvalidAttr);
  for (size_t i = 0; i + 1 < m; ++i) {
    AttributeSet common =
        Intersect(q.atom(order[i]).VarSet(), q.atom(order[i + 1]).VarSet());
    if (common.size() != 1) {
      return Status::InvalidArgument(
          "not a single-attribute-link path query at position " +
          std::to_string(i));
    }
    link[i] = common[0];
  }

  // S_i: counted projections onto the link attributes (predicates applied).
  std::vector<CountedRelation> s;
  s.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    const Atom& atom = q.atom(order[i]);
    auto rel = db.Get(atom.relation);
    if (!rel.ok()) return rel.status();
    AttributeSet keep;
    if (i > 0) keep.push_back(link[i - 1]);
    if (i + 1 < m) keep.push_back(link[i]);
    keep = MakeAttributeSet(std::move(keep));
    if (!IsSubset(keep, atom.VarSet())) {
      return Status::InvalidArgument("order is not a chain over the atoms");
    }
    s.push_back(CountedRelation::FromAtom(**rel, atom, keep));
  }

  ExecContext& ctx = ResolveExecContext(options.join.ctx);
  bool truncation_applied = false;
  auto maybe_truncate = [&](CountedRelation* r) {
    if (options.top_k > 0 && r->NumRows() > options.top_k) {
      r->TruncateTopK(options.top_k, &ctx);
      truncation_applied = true;
    }
  };

  // Topjoins: J[i] = γ_{link[i-1]} r⋈(J[i-1], S_{i-1}); J[1] = γ(S_0).
  // (0-based: J[i] defined for i in [1, m-1].)
  std::vector<CountedRelation> topjoin;
  topjoin.reserve(m);
  topjoin.emplace_back(AttributeSet{});  // J[0] placeholder, unused
  for (size_t i = 1; i < m; ++i) {
    AttributeSet group{link[i - 1]};
    CountedRelation j =
        (i == 1) ? GroupBySum(s[0], group, &ctx)
                 : GroupBySum(NaturalJoin(s[i - 1], topjoin[i - 1],
                                          options.join),
                              group, &ctx);
    maybe_truncate(&j);
    topjoin.push_back(std::move(j));
  }

  // Botjoins: K[i] = γ_{link[i-1]} r⋈(K[i+1], S_i); K[m-1] = γ(S_{m-1}).
  // (K[i] defined for i in [1, m-1], keyed on link[i-1].)
  std::vector<CountedRelation> botjoin(m, CountedRelation(AttributeSet{}));
  for (size_t i = m; i-- > 1;) {
    AttributeSet group{link[i - 1]};
    CountedRelation k =
        (i == m - 1)
            ? GroupBySum(s[m - 1], group, &ctx)
            : GroupBySum(NaturalJoin(s[i], botjoin[i + 1], options.join),
                         group, &ctx);
    maybe_truncate(&k);
    botjoin[i] = std::move(k);
  }

  SensitivityResult result;
  result.local_sensitivity = Count::Zero();
  result.atoms.resize(static_cast<size_t>(q.num_atoms()));
  for (size_t i = 0; i < m; ++i) {
    const int atom_index = order[i];
    AtomSensitivity& out = result.atoms[static_cast<size_t>(atom_index)];
    out.atom_index = atom_index;
    out.relation = q.atom(atom_index).relation;
    out.table_attrs = q.SharedVarsOf(atom_index);
    out.free_vars = q.ExclusiveVarsOf(atom_index);
    out.approximate = truncation_applied;
    if (std::find(options.skip_atoms.begin(), options.skip_atoms.end(),
                  atom_index) != options.skip_atoms.end()) {
      out.skipped = true;
      continue;
    }

    // δ_i = max ⊤ · max ⊥, with predicate filtering on the link values:
    // an inserted tuple must itself satisfy the atom's predicates.
    CountedRelation top_part =
        (i == 0) ? CountedRelation::Unit() : topjoin[i];
    CountedRelation bot_part =
        (i + 1 == m) ? CountedRelation::Unit() : botjoin[i + 1];
    {
      const Atom& atom = q.atom(atom_index);
      for (CountedRelation* part : {&top_part, &bot_part}) {
        std::vector<std::pair<int, Predicate>> checks;
        for (const Predicate& p : atom.predicates) {
          int col = part->ColumnOf(p.var);
          if (col >= 0) checks.emplace_back(col, p);
        }
        if (checks.empty()) continue;
        part->Filter([&](std::span<const Value> row) {
          for (const auto& [col, pred] : checks) {
            if (!pred.Eval(row[static_cast<size_t>(col)])) return false;
          }
          return true;
        });
      }
    }

    Count top_max = top_part.MaxCount();
    Count bot_max = bot_part.MaxCount();
    out.max_sensitivity = top_max * bot_max;
    if (!out.max_sensitivity.IsZero()) {
      size_t rt = top_part.ArgMaxRow();
      size_t rb = bot_part.ArgMaxRow();
      bool known = (top_part.arity() == 0 || rt != SIZE_MAX) &&
                   (bot_part.arity() == 0 || rb != SIZE_MAX);
      if (known) {
        std::vector<Value> argmax(out.table_attrs.size(), 0);
        auto place = [&](const CountedRelation& part, size_t r) {
          if (part.arity() == 0) return;
          std::span<const Value> row = part.Row(r);
          for (size_t j = 0; j < part.attrs().size(); ++j) {
            auto it = std::lower_bound(out.table_attrs.begin(),
                                       out.table_attrs.end(),
                                       part.attrs()[j]);
            LSENS_CHECK(it != out.table_attrs.end() &&
                        *it == part.attrs()[j]);
            argmax[static_cast<size_t>(it - out.table_attrs.begin())] = row[j];
          }
        };
        place(top_part, rt);
        place(bot_part, rb);
        out.argmax = std::move(argmax);
      }
    }

    if (out.max_sensitivity > result.local_sensitivity ||
        (result.argmax_atom == -1 && !out.max_sensitivity.IsZero())) {
      result.local_sensitivity = out.max_sensitivity;
      result.argmax_atom = atom_index;
    }
  }
  return result;
}

}  // namespace lsens
