#include "sensitivity/tsens_path.h"

#include <algorithm>
#include <utility>

#include "exec/exec_context.h"
#include "exec/fold_join.h"
#include "query/atom_scan.h"

namespace lsens {

StatusOr<SensitivityResult> TSensPath(const ConjunctiveQuery& q,
                                      const std::vector<int>& order,
                                      const Database& db,
                                      const TSensOptions& options) {
  LSENS_RETURN_IF_ERROR(q.ValidateForSensitivity(db));
  if (options.keep_tables) {
    return Status::Unsupported(
        "TSensPath never materializes multiplicity tables; use TSensOverGhd");
  }
  const size_t m = order.size();
  if (m != static_cast<size_t>(q.num_atoms()) || m < 2) {
    return Status::InvalidArgument("order must list all >= 2 atoms");
  }

  // Link attribute between chain positions i and i+1.
  std::vector<AttrId> link(m - 1, kInvalidAttr);
  for (size_t i = 0; i + 1 < m; ++i) {
    AttributeSet common =
        Intersect(q.atom(order[i]).VarSet(), q.atom(order[i + 1]).VarSet());
    if (common.size() != 1) {
      return Status::InvalidArgument(
          "not a single-attribute-link path query at position " +
          std::to_string(i));
    }
    link[i] = common[0];
  }

  // S_i: counted projections onto the link attributes (predicates
  // applied). Relation lookups and chain validation stay serial (Status
  // propagation); the projections fan out per position.
  std::vector<const Relation*> chain_rels(m);
  std::vector<AttributeSet> keeps(m);
  for (size_t i = 0; i < m; ++i) {
    const Atom& atom = q.atom(order[i]);
    auto rel = db.Get(atom.relation);
    if (!rel.ok()) return rel.status();
    chain_rels[i] = *rel;
    AttributeSet keep;
    if (i > 0) keep.push_back(link[i - 1]);
    if (i + 1 < m) keep.push_back(link[i]);
    keep = MakeAttributeSet(std::move(keep));
    if (!IsSubset(keep, atom.VarSet())) {
      return Status::InvalidArgument("order is not a chain over the atoms");
    }
    keeps[i] = std::move(keep);
  }
  ExecContext& ctx = ResolveExecContext(options.join.ctx);
  const int threads = options.join.threads;
  std::vector<CountedRelation> s;
  s.reserve(m);
  for (size_t i = 0; i < m; ++i) s.emplace_back(AttributeSet{});
  ParallelApply(ctx, threads, m, [&](size_t i, ExecContext& wctx) {
    s[i] = ScanAtom(*chain_rels[i], q.atom(order[i]),
                                     keeps[i], &wctx);
  });

  // The ⊤ and ⊥ recursions are each a sequential chain (J[i] needs
  // J[i-1]), but the two chains share nothing except the read-only S_i —
  // they run as two concurrent tasks. Truncation flags are per-chain so
  // the tasks never write shared state.
  bool chain_truncated[2] = {false, false};
  auto maybe_truncate = [&](CountedRelation* r, ExecContext& cctx,
                            size_t chain) {
    if (options.top_k > 0 && r->NumRows() > options.top_k) {
      r->TruncateTopK(options.top_k, &cctx);
      chain_truncated[chain] = true;
    }
  };

  // Topjoins: J[i] = γ_{link[i-1]} r⋈(J[i-1], S_{i-1}); J[1] = γ(S_0).
  // (0-based: J[i] defined for i in [1, m-1].)
  std::vector<CountedRelation> topjoin;
  topjoin.reserve(m);
  topjoin.emplace_back(AttributeSet{});  // J[0] placeholder, unused
  for (size_t i = 1; i < m; ++i) topjoin.emplace_back(AttributeSet{});
  auto run_topjoins = [&](ExecContext& cctx, const JoinOptions& jopts) {
    for (size_t i = 1; i < m; ++i) {
      AttributeSet group{link[i - 1]};
      CountedRelation j =
          (i == 1) ? GroupBySum(s[0], group, &cctx)
                   : GroupBySum(NaturalJoin(s[i - 1], topjoin[i - 1], jopts),
                                group, &cctx);
      maybe_truncate(&j, cctx, 0);
      topjoin[i] = std::move(j);
    }
  };

  // Botjoins: K[i] = γ_{link[i-1]} r⋈(K[i+1], S_i); K[m-1] = γ(S_{m-1}).
  // (K[i] defined for i in [1, m-1], keyed on link[i-1].)
  std::vector<CountedRelation> botjoin(m, CountedRelation(AttributeSet{}));
  auto run_botjoins = [&](ExecContext& cctx, const JoinOptions& jopts) {
    for (size_t i = m; i-- > 1;) {
      AttributeSet group{link[i - 1]};
      CountedRelation k =
          (i == m - 1)
              ? GroupBySum(s[m - 1], group, &cctx)
              : GroupBySum(NaturalJoin(s[i], botjoin[i + 1], jopts), group,
                           &cctx);
      maybe_truncate(&k, cctx, 1);
      botjoin[i] = std::move(k);
    }
  };
  if (ShouldRunParallel(threads, 2)) {
    ParallelApply(ctx, threads, 2, [&](size_t chain, ExecContext& wctx) {
      const JoinOptions jopts = WorkerJoinOptions(options.join, wctx);
      if (chain == 0) {
        run_topjoins(wctx, jopts);
      } else {
        run_botjoins(wctx, jopts);
      }
    });
  } else {
    run_topjoins(ctx, options.join);
    run_botjoins(ctx, options.join);
  }
  const bool truncation_applied = chain_truncated[0] || chain_truncated[1];

  // Per-distance δ_i computations: every position reads only the shared
  // ⊤/⊥ chains (filtering its own copies) and writes its own atom slot, so
  // they fan out one task per position; the winner reduction afterwards
  // walks positions in chain order, matching the serial tie-breaking.
  SensitivityResult result;
  result.local_sensitivity = Count::Zero();
  result.atoms.resize(static_cast<size_t>(q.num_atoms()));
  auto compute_position = [&](size_t i) {
    const int atom_index = order[i];
    AtomSensitivity& out = result.atoms[static_cast<size_t>(atom_index)];
    out.atom_index = atom_index;
    out.relation = q.atom(atom_index).relation;
    out.table_attrs = q.SharedVarsOf(atom_index);
    out.free_vars = q.ExclusiveVarsOf(atom_index);
    out.approximate = truncation_applied;
    if (std::find(options.skip_atoms.begin(), options.skip_atoms.end(),
                  atom_index) != options.skip_atoms.end()) {
      out.skipped = true;
      return;
    }

    // δ_i = max ⊤ · max ⊥, with predicate filtering on the link values:
    // an inserted tuple must itself satisfy the atom's predicates.
    CountedRelation top_part =
        (i == 0) ? CountedRelation::Unit() : topjoin[i];
    CountedRelation bot_part =
        (i + 1 == m) ? CountedRelation::Unit() : botjoin[i + 1];
    {
      const Atom& atom = q.atom(atom_index);
      for (CountedRelation* part : {&top_part, &bot_part}) {
        std::vector<std::pair<int, Predicate>> checks;
        for (const Predicate& p : atom.predicates) {
          int col = part->ColumnOf(p.var);
          if (col >= 0) checks.emplace_back(col, p);
        }
        if (checks.empty()) continue;
        part->Filter([&](std::span<const Value> row) {
          for (const auto& [col, pred] : checks) {
            if (!pred.Eval(row[static_cast<size_t>(col)])) return false;
          }
          return true;
        });
      }
    }

    Count top_max = top_part.MaxCount();
    Count bot_max = bot_part.MaxCount();
    out.max_sensitivity = top_max * bot_max;
    if (!out.max_sensitivity.IsZero()) {
      size_t rt = top_part.ArgMaxRow();
      size_t rb = bot_part.ArgMaxRow();
      bool known = (top_part.arity() == 0 || rt != SIZE_MAX) &&
                   (bot_part.arity() == 0 || rb != SIZE_MAX);
      if (known) {
        std::vector<Value> argmax(out.table_attrs.size(), 0);
        auto place = [&](const CountedRelation& part, size_t r) {
          if (part.arity() == 0) return;
          std::span<const Value> row = part.Row(r);
          for (size_t j = 0; j < part.attrs().size(); ++j) {
            auto it = std::lower_bound(out.table_attrs.begin(),
                                       out.table_attrs.end(),
                                       part.attrs()[j]);
            LSENS_CHECK(it != out.table_attrs.end() &&
                        *it == part.attrs()[j]);
            argmax[static_cast<size_t>(it - out.table_attrs.begin())] = row[j];
          }
        };
        place(top_part, rt);
        place(bot_part, rb);
        out.argmax = std::move(argmax);
      }
    }
  };

  ParallelApply(ctx, threads, m,
                [&](size_t i, ExecContext&) { compute_position(i); });

  for (size_t i = 0; i < m; ++i) {
    const int atom_index = order[i];
    const AtomSensitivity& out = result.atoms[static_cast<size_t>(atom_index)];
    if (out.skipped) continue;
    if (out.max_sensitivity > result.local_sensitivity ||
        (result.argmax_atom == -1 && !out.max_sensitivity.IsZero())) {
      result.local_sensitivity = out.max_sensitivity;
      result.argmax_atom = atom_index;
    }
  }
  if (options.capture != nullptr) {
    options.capture->s_sig.clear();
    options.capture->s_sig.reserve(m);
    for (size_t i = 0; i < m; ++i) {
      options.capture->s_sig.push_back(
          CanonicalSourceSignature(q.atom(order[i]), keeps[i]));
    }
    options.capture->s = std::move(s);
    options.capture->top.clear();
    options.capture->bot.clear();
    options.capture->top.resize(m);
    options.capture->bot.resize(m);
    for (size_t i = 1; i < m; ++i) {
      options.capture->top[i] = std::move(topjoin[i]);
      options.capture->bot[i] = std::move(botjoin[i]);
    }
  }
  return result;
}

}  // namespace lsens
