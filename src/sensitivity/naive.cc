#include "sensitivity/naive.h"

#include <algorithm>
#include <set>
#include <utility>

#include "exec/exec_context.h"
#include "query/eval.h"

namespace lsens {

namespace {

StatusOr<Count> Eval(const ConjunctiveQuery& q, const Database& db,
                     const NaiveOptions& options) {
  return CountQuery(q, db, options.join, options.ghd);
}

// Count difference |a - b| (bag-semantics symmetric difference of a
// monotone query's outputs equals the count difference).
Count AbsDiff(Count a, Count b) {
  return a > b ? a.SaturatingSub(b) : b.SaturatingSub(a);
}

// Representative domain of one variable of one atom (Definition 3.1):
// intersection of the variable's active domains in all *other* atoms that
// bind it; if the variable is exclusive, a single arbitrary value — chosen
// to satisfy the atom's predicates on it so that selections (§5.4) do not
// artificially zero the upward sensitivity.
std::vector<Value> RepresentativeDomain(const ConjunctiveQuery& q,
                                        const Database& db, int atom_index,
                                        size_t column) {
  const Atom& atom = q.atom(atom_index);
  AttrId var = atom.vars[column];

  bool shared = false;
  std::vector<Value> domain;
  bool first = true;
  for (int j = 0; j < q.num_atoms(); ++j) {
    if (j == atom_index) continue;
    const Atom& other = q.atom(j);
    auto it = std::find(other.vars.begin(), other.vars.end(), var);
    if (it == other.vars.end()) continue;
    shared = true;
    size_t col = static_cast<size_t>(it - other.vars.begin());
    const Relation* rel = db.Find(other.relation);
    LSENS_CHECK(rel != nullptr);
    std::set<Value> active;
    for (Value v : rel->Column(col)) active.insert(v);
    if (first) {
      domain.assign(active.begin(), active.end());
      first = false;
    } else {
      std::vector<Value> merged;
      std::set_intersection(domain.begin(), domain.end(), active.begin(),
                            active.end(), std::back_inserter(merged));
      domain = std::move(merged);
    }
  }
  if (shared) return domain;

  // Exclusive variable: one arbitrary value, but it must satisfy the atom's
  // predicates on this variable (the full domain always contains one).
  Value v = 0;
  for (const Predicate& p : atom.predicates) {
    if (p.var == var) v = p.SatisfyingValue();
  }
  return {v};
}

}  // namespace

StatusOr<NaiveResult> NaiveLocalSensitivity(const ConjunctiveQuery& q,
                                            Database& db,
                                            const NaiveOptions& options) {
  LSENS_RETURN_IF_ERROR(q.ValidateForSensitivity(db));
  // rows_out doubles as the number of neighboring databases evaluated.
  OpTimer op(ResolveExecContext(options.join.ctx), "naive.local_sensitivity",
             db.TotalRows());
  auto base_or = Eval(q, db, options);
  if (!base_or.ok()) return base_or.status();
  const Count base = *base_or;

  NaiveResult result;
  result.local_sensitivity = Count::Zero();

  auto consider = [&](Count delta, int atom, std::span<const Value> tuple,
                      bool insertion) {
    if (delta > result.local_sensitivity || result.argmax_atom == -1) {
      result.local_sensitivity = delta;
      result.argmax_atom = atom;
      result.argmax_tuple.assign(tuple.begin(), tuple.end());
      result.argmax_is_insertion = insertion;
    }
  };

  for (int i = 0; i < q.num_atoms(); ++i) {
    Relation* rel = db.Find(q.atom(i).relation);
    LSENS_CHECK(rel != nullptr);

    // Downward: delete one copy of each distinct existing tuple.
    std::set<std::vector<Value>> distinct;
    for (size_t r = 0; r < rel->NumRows(); ++r) {
      distinct.insert(rel->Row(r));
    }
    for (const auto& tuple : distinct) {
      // Find one occurrence, remove it, evaluate, restore. RowEquals
      // compares in place against the column vectors — the position scan
      // materializes no rows.
      size_t pos = SIZE_MAX;
      for (size_t r = 0; r < rel->NumRows(); ++r) {
        if (rel->RowEquals(r, tuple)) {
          pos = r;
          break;
        }
      }
      LSENS_CHECK(pos != SIZE_MAX);
      rel->SwapRemoveRow(pos);
      auto count_or = Eval(q, db, options);
      rel->AppendRow(tuple);
      if (!count_or.ok()) return count_or.status();
      ++result.candidates_evaluated;
      consider(AbsDiff(base, *count_or), i, tuple, /*insertion=*/false);
    }

    // Upward: insert each tuple of the representative domain.
    std::vector<std::vector<Value>> domains;
    size_t num_candidates = 1;
    bool empty_domain = false;
    for (size_t c = 0; c < rel->arity(); ++c) {
      domains.push_back(RepresentativeDomain(q, db, i, c));
      if (domains.back().empty()) empty_domain = true;
      num_candidates *= std::max<size_t>(domains.back().size(), 1);
      if (num_candidates > options.max_insert_candidates) {
        return Status::Unsupported(
            "representative domain too large for the naive baseline");
      }
    }
    if (empty_domain) continue;  // no insertion can join

    std::vector<size_t> idx(rel->arity(), 0);
    std::vector<Value> candidate(rel->arity());
    for (;;) {
      for (size_t c = 0; c < rel->arity(); ++c) {
        candidate[c] = domains[c][idx[c]];
      }
      rel->AppendRow(candidate);
      auto count_or = Eval(q, db, options);
      rel->SwapRemoveRow(rel->NumRows() - 1);
      if (!count_or.ok()) return count_or.status();
      ++result.candidates_evaluated;
      consider(AbsDiff(base, *count_or), i, candidate, /*insertion=*/true);

      // Advance the mixed-radix counter.
      size_t c = 0;
      while (c < rel->arity() && ++idx[c] == domains[c].size()) {
        idx[c] = 0;
        ++c;
      }
      if (c == rel->arity()) break;
    }
  }
  op.set_rows_out(result.candidates_evaluated);
  return result;
}

StatusOr<Count> NaiveTupleSensitivity(const ConjunctiveQuery& q, Database& db,
                                      int atom_index,
                                      std::span<const Value> tuple,
                                      const NaiveOptions& options) {
  LSENS_RETURN_IF_ERROR(q.Validate(db));
  if (atom_index < 0 || atom_index >= q.num_atoms()) {
    return Status::InvalidArgument("atom index out of range");
  }
  Relation* rel = db.Find(q.atom(atom_index).relation);
  LSENS_CHECK(rel != nullptr);
  if (tuple.size() != rel->arity()) {
    return Status::InvalidArgument("tuple arity mismatch");
  }
  auto base_or = Eval(q, db, options);
  if (!base_or.ok()) return base_or.status();

  // Upward.
  rel->AppendRow(tuple);
  auto up_or = Eval(q, db, options);
  rel->SwapRemoveRow(rel->NumRows() - 1);
  if (!up_or.ok()) return up_or.status();
  Count delta = AbsDiff(*base_or, *up_or);

  // Downward (only if present). RowEquals compares the tuple against the
  // column vectors in place — no row materialization in the scan.
  for (size_t r = 0; r < rel->NumRows(); ++r) {
    if (rel->RowEquals(r, tuple)) {
      std::vector<Value> saved(tuple.begin(), tuple.end());
      rel->SwapRemoveRow(r);
      auto down_or = Eval(q, db, options);
      rel->AppendRow(saved);
      if (!down_or.ok()) return down_or.status();
      delta = std::max(delta, AbsDiff(*base_or, *down_or));
      break;
    }
  }
  return delta;
}

}  // namespace lsens
