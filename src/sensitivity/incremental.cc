#include "sensitivity/incremental.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "common/rng.h"
#include "common/timer.h"
#include "exec/dyn_table.h"
#include "exec/exec_context.h"
#include "query/ghd.h"
#include "query/join_tree.h"

namespace lsens {

// Internal machinery. The repairable state mirrors the two engines' data
// flow as a DAG of group tables:
//
//   sources  S_a = γ_keep(σ_pred(R_a))           one per atom / position
//   nodes    out = γ_group(driver ⋈ inputs...)   the ⊥/⊤ fold tables
//
// where every node's inputs are keyed on column subsets of its driver
// (running intersection guarantees this for join trees), so a node's group
// `g` re-aggregates as
//
//   out[g] = Σ_{driver rows r, r.group = g} cnt(r) · Π_i inputs[i][r.key_i]
//
// — the exact multiset of saturating products the from-scratch FoldJoin +
// GroupBySum pipeline sums, which is why repaired tables are bit-identical
// (saturating + and · are order-independent over a fixed multiset). A
// repair pass applies the relations' row deltas to the sources, then walks
// the nodes in evaluation order re-aggregating only groups reachable from
// a changed key. Per-piece max/argmax trackers maintain the engines'
// predicate-filtered MaxCount/ArgMaxRow (first — i.e. lexicographically
// smallest — row attaining the max), falling back to a table rescan only
// when the tracked argmax group itself decays.
namespace incremental_detail {

namespace {

int ColOf(const AttributeSet& attrs, AttrId attr) {
  auto it = std::lower_bound(attrs.begin(), attrs.end(), attr);
  LSENS_CHECK(it != attrs.end() && *it == attr);
  return static_cast<int>(it - attrs.begin());
}

std::vector<int> ColsOf(const AttributeSet& attrs, const AttributeSet& sub) {
  std::vector<int> cols;
  cols.reserve(sub.size());
  for (AttrId a : sub) cols.push_back(ColOf(attrs, a));
  return cols;
}

bool LexLess(std::span<const Value> a, std::span<const Value> b) {
  return CompareRows(a, b) < 0;
}

}  // namespace

// One max/argmax view of a node's table (or of the unit relation when
// node < 0), filtered by an atom's predicates — the incremental stand-in
// for the engines' `ApplyPredicates + MaxCount + ArgMaxRow` on one
// multiplicity-table piece.
struct Tracker {
  int node = -1;
  std::vector<std::pair<int, Predicate>> checks;  // (column, predicate)
  Count max = Count::Zero();
  std::vector<Value> argmax;  // lexmin row attaining max; empty when none
  bool dirty = false;

  bool Passes(std::span<const Value> key) const {
    for (const auto& [col, pred] : checks) {
      if (!pred.Eval(key[static_cast<size_t>(col)])) return false;
    }
    return true;
  }
};

// Incrementally maintained S_a: the atom's relation filtered by its
// predicates and projected (with multiplicities) onto `keep`.
struct SourceState {
  int atom_index = -1;
  std::string relation;
  AttributeSet keep;
  std::vector<size_t> keep_cols;  // relation column per keep attr
  std::vector<size_t> pred_cols;  // relation column per atom predicate
  DynTable table;
  uint64_t version = 0;
};

// Incrementally maintained fold table (one botjoin/topjoin level).
struct NodeState {
  struct Input {
    int node = -1;                 // producer (already repaired this pass)
    std::vector<int> driver_cols;  // driver columns forming its key
    int driver_index = -1;         // secondary index on the driver for them
  };

  int source = -1;                // driver S table
  std::vector<int> group_cols;    // driver columns forming the out key
  int driver_group_index = -1;    // secondary index on the driver for them
  std::vector<Input> inputs;
  DynTable out;
};

struct RepairState {
  enum class Mode { kConstant, kPath, kTree };

  Mode mode = Mode::kConstant;
  std::vector<SourceState> sources;
  std::vector<NodeState> nodes;  // in evaluation order
  // Result assembly: unit u covers atom assembly_atoms[u] with the pieces
  // trackers[u] (engine piece order). Path mode assembles per chain
  // position, tree mode per atom.
  std::vector<int> assembly_atoms;
  std::vector<std::vector<Tracker>> trackers;
  // node -> (unit, piece) refs, for O(1) tracker updates during repair.
  std::vector<std::vector<std::pair<size_t, size_t>>> node_trackers;
};

// The execution plan the facade would pick, from the cache's perspective.
struct Plan {
  RepairState::Mode mode = RepairState::Mode::kConstant;
  bool supported = false;
  std::string reason;            // when !supported
  std::vector<int> order;        // kPath
  std::optional<JoinTree> tree;  // kTree
};

namespace {

Plan MakePlan(const ConjunctiveQuery& q, const TSensComputeOptions& options) {
  Plan plan;
  auto unsupported = [&](std::string reason) {
    plan.supported = false;
    plan.reason = std::move(reason);
    return plan;
  };
  if (options.ghd != nullptr) return unsupported("explicit GHD supplied");
  if (options.top_k > 0) return unsupported("top-k approximation");
  if (options.keep_tables) return unsupported("keep_tables requested");
  auto forest = BuildJoinForestGYO(q);
  if (!forest.ok()) return unsupported("cyclic query (GHD search)");
  if (options.prefer_path_algorithm) {
    std::vector<int> order = PathOrder(q);
    if (order.size() >= 2) {
      plan.mode = RepairState::Mode::kPath;
      plan.order = std::move(order);
      plan.supported = true;
      return plan;
    }
  }
  if (q.num_atoms() == 1) {
    // A single-atom query's sensitivity is data-independent (inserting one
    // matching tuple always changes the count by exactly 1).
    plan.mode = RepairState::Mode::kConstant;
    plan.supported = true;
    return plan;
  }
  if (forest->trees.size() != 1) {
    return unsupported("disconnected query (cross-tree scale factors)");
  }
  const JoinTree& tree = forest->trees[0];
  if (tree.size() != static_cast<size_t>(q.num_atoms())) {
    return unsupported("join tree does not cover the query");
  }
  auto link_of = [&](int atom) {
    return Intersect(q.atom(atom).VarSet(),
                     q.atom(tree.Parent(atom)).VarSet());
  };
  for (int a : tree.members()) {
    if (tree.Parent(a) != -1 && link_of(a).empty()) {
      return unsupported("empty join-tree link");
    }
  }
  // Every atom's multiplicity-table pieces (⊤(a) and the children's ⊥)
  // must be pairwise attribute-disjoint, so T_a stays a cross product of
  // maintained tables and its max factorizes over the per-piece trackers.
  for (int a : tree.members()) {
    std::vector<AttributeSet> piece_attrs;
    if (tree.Parent(a) != -1) piece_attrs.push_back(link_of(a));
    for (int c : tree.Children(a)) piece_attrs.push_back(link_of(c));
    for (size_t i = 0; i < piece_attrs.size(); ++i) {
      for (size_t j = i + 1; j < piece_attrs.size(); ++j) {
        if (Intersects(piece_attrs[i], piece_attrs[j])) {
          return unsupported("atom pieces share attributes (T_a would not"
                             " factorize)");
        }
      }
    }
  }
  plan.mode = RepairState::Mode::kTree;
  plan.tree = tree;
  plan.supported = true;
  return plan;
}

SourceState MakeSource(const ConjunctiveQuery& q, int atom_index,
                       AttributeSet keep) {
  const Atom& atom = q.atom(atom_index);
  SourceState src{atom_index, atom.relation, keep, {}, {}, DynTable(keep), 0};
  src.keep_cols.reserve(keep.size());
  for (AttrId a : keep) {
    size_t col = 0;
    while (atom.vars[col] != a) ++col;
    src.keep_cols.push_back(col);
  }
  src.pred_cols.reserve(atom.predicates.size());
  for (const Predicate& p : atom.predicates) {
    size_t col = 0;
    while (atom.vars[col] != p.var) ++col;
    src.pred_cols.push_back(col);
  }
  return src;
}

Tracker MakeTracker(const ConjunctiveQuery& q, int atom_index, int node,
                    const RepairState& state) {
  Tracker t;
  t.node = node;
  if (node >= 0) {
    const AttributeSet& attrs =
        state.nodes[static_cast<size_t>(node)].out.attrs();
    for (const Predicate& p : q.atom(atom_index).predicates) {
      auto it = std::lower_bound(attrs.begin(), attrs.end(), p.var);
      if (it != attrs.end() && *it == p.var) {
        t.checks.emplace_back(static_cast<int>(it - attrs.begin()), p);
      }
    }
  } else {
    t.max = Count::One();  // the unit relation: one empty row, count 1
    t.dirty = false;
  }
  return t;
}

// Full recomputation of a tracker from its table (also the initial fill).
void RescanTracker(Tracker& t, const RepairState& state,
                   uint64_t* rows_touched) {
  if (t.node < 0) return;
  const DynTable& table = state.nodes[static_cast<size_t>(t.node)].out;
  t.max = Count::Zero();
  t.argmax.clear();
  table.ForEachRow([&](uint32_t r) {
    ++*rows_touched;
    std::span<const Value> key = table.RowValues(r);
    if (!t.Passes(key)) return;
    Count c = table.RowCount(r);
    if (c > t.max) {
      t.max = c;
      t.argmax.assign(key.begin(), key.end());
    } else if (c == t.max && !c.IsZero() && LexLess(key, t.argmax)) {
      t.argmax.assign(key.begin(), key.end());
    }
  });
  t.dirty = false;
}

// O(1) maintenance under one group change; marks dirty when only a rescan
// can re-establish the engines' first-attaining-row tie-break.
void UpdateTracker(Tracker& t, std::span<const Value> key, Count value) {
  if (t.dirty || t.node < 0 || !t.Passes(key)) return;
  if (value > t.max) {
    t.max = value;
    t.argmax.assign(key.begin(), key.end());
    return;
  }
  if (!value.IsZero() && value == t.max) {
    if (t.argmax.empty() || LexLess(key, t.argmax)) {
      t.argmax.assign(key.begin(), key.end());
    }
    return;
  }
  // The tracked argmax group decreased below the recorded max: other
  // attaining groups (if any) are unknown without a rescan.
  if (!t.argmax.empty() && value < t.max &&
      CompareRows(key, t.argmax) == 0) {
    t.dirty = true;
  }
}

void Project(std::span<const Value> row, const std::vector<int>& cols,
             std::vector<Value>* out) {
  out->clear();
  for (int c : cols) out->push_back(row[static_cast<size_t>(c)]);
}

// Shard routing for the parallel repair stages: the shared key-hash fold
// (storage/value.h), so Relation::CollectChangesShardedSince and this
// always route one key to one shard.
size_t KeyShard(std::span<const Value> key, size_t num_shards) {
  return static_cast<size_t>(HashValues(key) % num_shards);
}

void SortUnique(std::vector<std::vector<Value>>* keys) {
  std::sort(keys->begin(), keys->end());
  keys->erase(std::unique(keys->begin(), keys->end()), keys->end());
}

}  // namespace

}  // namespace incremental_detail

using incremental_detail::KeyShard;
using incremental_detail::MakePlan;
using incremental_detail::MakeSource;
using incremental_detail::MakeTracker;
using incremental_detail::NodeState;
using incremental_detail::Plan;
using incremental_detail::Project;
using incremental_detail::RepairState;
using incremental_detail::RescanTracker;
using incremental_detail::SortUnique;
using incremental_detail::SourceState;
using incremental_detail::Tracker;
using incremental_detail::UpdateTracker;

struct SensitivityCache::Entry {
  std::string key;
  std::vector<std::string> relations;  // atom order (unique: no self-joins)
  std::vector<uint64_t> versions;      // parallel to `relations`
  SensitivityResult result;
  std::unique_ptr<RepairState> state;  // null: memoize-only entry
  std::string unsupported_reason;      // when state is null
  size_t state_bytes = 0;  // StateMemoryBytes(*state) as last accounted
  bool spilled = false;    // state dropped by the byte budget
  uint64_t last_used = 0;
};

SensitivityCache::SensitivityCache(SensitivityCacheConfig config)
    : config_(config) {
  // At least the entry being inserted must survive an eviction sweep.
  config_.max_entries = std::max<size_t>(1, config_.max_entries);
  LSENS_CHECK(config_.changelog_capacity > 0);
}

SensitivityCache::~SensitivityCache() = default;

void SensitivityCache::Clear() {
  entries_.clear();
  stats_.state_bytes = 0;
}

// Spills repair state, least-recently-used first, until the held DynTable
// bytes fit the budget. Results stay memoized (unchanged versions still
// hit); a spilled entry recomputes and re-captures on the next change.
// Whole entries are never evicted here — max_entries owns that.
void SensitivityCache::EnforceStateBudget(ExecContext& ctx) {
  if (config_.max_state_bytes == 0) return;
  while (stats_.state_bytes > config_.max_state_bytes) {
    Entry* victim = nullptr;
    for (const auto& e : entries_) {
      if (e->state == nullptr || e->state_bytes == 0) continue;
      if (victim == nullptr || e->last_used < victim->last_used) {
        victim = e.get();
      }
    }
    if (victim == nullptr) return;  // nothing left to spill
    stats_.state_bytes -= victim->state_bytes;
    ++stats_.spills;
    ctx.Record("cache.spill", victim->state_bytes, 0, 0, 0.0);
    victim->state_bytes = 0;
    victim->state.reset();
    victim->spilled = true;
  }
}

std::string SensitivityCache::Fingerprint(const ConjunctiveQuery& q,
                                          const TSensComputeOptions& options) {
  std::ostringstream out;
  for (const Atom& atom : q.atoms()) {
    out << atom.relation << '(';
    for (AttrId v : atom.vars) out << v << ',';
    out << ')';
    for (const Predicate& p : atom.predicates) {
      out << '[' << p.var << ' ' << static_cast<int>(p.op) << ' ' << p.rhs
          << ']';
    }
    out << ';';
  }
  out << "|top_k=" << options.top_k << "|keep=" << options.keep_tables
      << "|path=" << options.prefer_path_algorithm;
  std::vector<int> skips = options.skip_atoms;
  std::sort(skips.begin(), skips.end());
  skips.erase(std::unique(skips.begin(), skips.end()), skips.end());
  out << "|skip=";
  for (int a : skips) out << a << ',';
  out << "|ghd=";
  if (options.ghd != nullptr) {
    for (const GhdBag& bag : options.ghd->bags) {
      out << '{';
      for (int a : bag.atom_indices) out << a << ',';
      out << '}';
    }
  }
  return out.str();
}

bool SensitivityCache::RepairSupported(const ConjunctiveQuery& q,
                                       const TSensComputeOptions& options,
                                       std::string* reason) {
  Plan plan = MakePlan(q, options);
  if (!plan.supported && reason != nullptr) *reason = plan.reason;
  return plan.supported;
}

namespace {

// Builds the repairable state for a supported plan from the engine capture
// (the exact tables the from-scratch answer was computed from).
std::unique_ptr<RepairState> BuildState(const ConjunctiveQuery& q,
                                        const Plan& plan,
                                        TSensCapture capture) {
  auto state = std::make_unique<RepairState>();
  state->mode = plan.mode;
  if (plan.mode == RepairState::Mode::kConstant) return state;

  if (plan.mode == RepairState::Mode::kPath) {
    const std::vector<int>& order = plan.order;
    const size_t m = order.size();
    std::vector<AttrId> link(m - 1, kInvalidAttr);
    for (size_t i = 0; i + 1 < m; ++i) {
      AttributeSet common = Intersect(q.atom(order[i]).VarSet(),
                                      q.atom(order[i + 1]).VarSet());
      LSENS_CHECK(common.size() == 1);
      link[i] = common[0];
    }
    for (size_t i = 0; i < m; ++i) {
      AttributeSet keep;
      if (i > 0) keep.push_back(link[i - 1]);
      if (i + 1 < m) keep.push_back(link[i]);
      keep = MakeAttributeSet(std::move(keep));
      state->sources.push_back(MakeSource(q, order[i], std::move(keep)));
      LSENS_CHECK(capture.s[i].attrs() == state->sources[i].keep);
      state->sources[i].table.Load(capture.s[i]);
    }
    // Nodes: the two chains, each in its dependency order. topjoin[i] is
    // driven by S_{i-1} (grouped on link[i-1]); botjoin[i] by S_i.
    std::vector<int> top_node(m, -1);
    std::vector<int> bot_node(m, -1);
    auto add_node = [&](int source, AttrId group_attr,
                        std::optional<NodeState::Input> input,
                        const CountedRelation& snapshot) {
      SourceState& driver = state->sources[static_cast<size_t>(source)];
      NodeState node{source,
                     incremental_detail::ColsOf(driver.keep, {group_attr}),
                     -1,
                     {},
                     DynTable(AttributeSet{group_attr})};
      node.driver_group_index = driver.table.AddIndex(node.group_cols);
      if (input.has_value()) {
        input->driver_index = driver.table.AddIndex(input->driver_cols);
        node.inputs.push_back(std::move(*input));
      }
      LSENS_CHECK(snapshot.attrs() == node.out.attrs());
      node.out.Load(snapshot);
      state->nodes.push_back(std::move(node));
      return static_cast<int>(state->nodes.size() - 1);
    };
    for (size_t i = 1; i < m; ++i) {
      std::optional<NodeState::Input> input;
      if (i >= 2) {
        input = NodeState::Input{
            top_node[i - 1],
            incremental_detail::ColsOf(state->sources[i - 1].keep,
                                       {link[i - 2]}),
            -1};
      }
      top_node[i] = add_node(static_cast<int>(i - 1), link[i - 1],
                             std::move(input), *capture.top[i]);
    }
    for (size_t i = m - 1; i >= 1; --i) {
      std::optional<NodeState::Input> input;
      if (i + 1 < m) {
        input = NodeState::Input{
            bot_node[i + 1],
            incremental_detail::ColsOf(state->sources[i].keep, {link[i]}),
            -1};
      }
      bot_node[i] = add_node(static_cast<int>(i), link[i - 1],
                             std::move(input), *capture.bot[i]);
    }
    // Assembly: position i multiplies the filtered maxima of ⊤_i (topjoin
    // at i; unit at the left end) and ⊥_{i+1} (botjoin; unit at the right).
    state->assembly_atoms = order;
    state->trackers.resize(m);
    for (size_t i = 0; i < m; ++i) {
      state->trackers[i].push_back(MakeTracker(
          q, order[i], i == 0 ? -1 : top_node[i], *state));
      state->trackers[i].push_back(MakeTracker(
          q, order[i], i + 1 == m ? -1 : bot_node[i + 1], *state));
    }
  } else {
    const JoinTree& tree = *plan.tree;
    const int num_atoms = q.num_atoms();
    auto link_of = [&](int atom) {
      return Intersect(q.atom(atom).VarSet(),
                       q.atom(tree.Parent(atom)).VarSet());
    };
    for (int a = 0; a < num_atoms; ++a) {
      state->sources.push_back(MakeSource(q, a, q.SharedVarsOf(a)));
      LSENS_CHECK(capture.s[static_cast<size_t>(a)].attrs() ==
                  state->sources[static_cast<size_t>(a)].keep);
      state->sources[static_cast<size_t>(a)].table.Load(
          capture.s[static_cast<size_t>(a)]);
    }
    std::vector<int> bot_node(static_cast<size_t>(num_atoms), -1);
    std::vector<int> top_node(static_cast<size_t>(num_atoms), -1);
    auto add_node = [&](int source, const AttributeSet& group,
                        std::vector<NodeState::Input> inputs,
                        const CountedRelation& snapshot) {
      SourceState& driver = state->sources[static_cast<size_t>(source)];
      NodeState node{source, incremental_detail::ColsOf(driver.keep, group),
                     -1, std::move(inputs), DynTable(group)};
      node.driver_group_index = driver.table.AddIndex(node.group_cols);
      for (NodeState::Input& input : node.inputs) {
        input.driver_index = driver.table.AddIndex(input.driver_cols);
      }
      LSENS_CHECK(snapshot.attrs() == node.out.attrs());
      node.out.Load(snapshot);
      state->nodes.push_back(std::move(node));
      return static_cast<int>(state->nodes.size() - 1);
    };
    // ⊥ in post-order: ⊥(v) = γ_link(v)(S_v ⋈ {⊥(c)}), driven by S_v.
    for (int v : tree.PostOrder()) {
      if (tree.Parent(v) == -1) continue;
      const AttributeSet& driver_keep =
          state->sources[static_cast<size_t>(v)].keep;
      std::vector<NodeState::Input> inputs;
      for (int c : tree.Children(v)) {
        inputs.push_back(NodeState::Input{
            bot_node[static_cast<size_t>(c)],
            incremental_detail::ColsOf(driver_keep, link_of(c)), -1});
      }
      bot_node[static_cast<size_t>(v)] =
          add_node(v, link_of(v), std::move(inputs),
                   *capture.bot[static_cast<size_t>(v)]);
    }
    // ⊤ in pre-order: ⊤(v) = γ_link(v)(S_p ⋈ ⊤(p)? ⋈ {⊥(sib)}), driven by
    // the parent's S.
    for (int v : tree.PreOrder()) {
      int p = tree.Parent(v);
      if (p == -1) continue;
      const AttributeSet& driver_keep =
          state->sources[static_cast<size_t>(p)].keep;
      std::vector<NodeState::Input> inputs;
      if (tree.Parent(p) != -1) {
        inputs.push_back(NodeState::Input{
            top_node[static_cast<size_t>(p)],
            incremental_detail::ColsOf(driver_keep, link_of(p)), -1});
      }
      for (int sib : tree.Neighbors(v)) {
        inputs.push_back(NodeState::Input{
            bot_node[static_cast<size_t>(sib)],
            incremental_detail::ColsOf(driver_keep, link_of(sib)), -1});
      }
      top_node[static_cast<size_t>(v)] =
          add_node(p, link_of(v), std::move(inputs),
                   *capture.top[static_cast<size_t>(v)]);
    }
    // Assembly: atom a's pieces are ⊤(a) (when non-root) then its
    // children's ⊥, exactly the engine's piece order.
    state->assembly_atoms.resize(static_cast<size_t>(num_atoms));
    state->trackers.resize(static_cast<size_t>(num_atoms));
    for (int a = 0; a < num_atoms; ++a) {
      state->assembly_atoms[static_cast<size_t>(a)] = a;
      if (tree.Parent(a) != -1) {
        state->trackers[static_cast<size_t>(a)].push_back(
            MakeTracker(q, a, top_node[static_cast<size_t>(a)], *state));
      }
      for (int c : tree.Children(a)) {
        state->trackers[static_cast<size_t>(a)].push_back(
            MakeTracker(q, a, bot_node[static_cast<size_t>(c)], *state));
      }
    }
  }

  // Initial tracker fill: one pass per piece over its (freshly loaded)
  // table, so the first repair starts from clean trackers.
  uint64_t ignored = 0;
  state->node_trackers.resize(state->nodes.size());
  for (size_t u = 0; u < state->trackers.size(); ++u) {
    for (size_t p = 0; p < state->trackers[u].size(); ++p) {
      Tracker& t = state->trackers[u][p];
      if (t.node >= 0) {
        state->node_trackers[static_cast<size_t>(t.node)].emplace_back(u, p);
        RescanTracker(t, *state, &ignored);
      }
    }
  }
  return state;
}

bool ContainsAtom(const std::vector<int>& skip_atoms, int atom) {
  return std::find(skip_atoms.begin(), skip_atoms.end(), atom) !=
         skip_atoms.end();
}

// Rebuilds the SensitivityResult from the maintained trackers, replicating
// each engine's assembly and winner tie-breaking exactly.
SensitivityResult Assemble(RepairState& state, const ConjunctiveQuery& q,
                           const TSensComputeOptions& options,
                           uint64_t* rows_touched) {
  SensitivityResult result;
  result.local_sensitivity = Count::Zero();
  result.atoms.resize(static_cast<size_t>(q.num_atoms()));
  for (size_t u = 0; u < state.assembly_atoms.size(); ++u) {
    const int a = state.assembly_atoms[u];
    AtomSensitivity& out = result.atoms[static_cast<size_t>(a)];
    out.atom_index = a;
    out.relation = q.atom(a).relation;
    out.table_attrs = q.SharedVarsOf(a);
    out.free_vars = q.ExclusiveVarsOf(a);
    out.max_sensitivity = Count::Zero();
    if (ContainsAtom(options.skip_atoms, a)) {
      out.skipped = true;
      continue;
    }
    Count product = Count::One();
    for (Tracker& t : state.trackers[u]) {
      if (t.dirty) RescanTracker(t, state, rows_touched);
      product *= t.max;
    }
    out.max_sensitivity = product;
    if (!product.IsZero()) {
      std::vector<Value> argmax(out.table_attrs.size(), 0);
      for (const Tracker& t : state.trackers[u]) {
        if (t.node < 0) continue;  // unit piece carries no values
        const AttributeSet& attrs =
            state.nodes[static_cast<size_t>(t.node)].out.attrs();
        LSENS_CHECK(t.argmax.size() == attrs.size());
        for (size_t j = 0; j < attrs.size(); ++j) {
          auto it = std::lower_bound(out.table_attrs.begin(),
                                     out.table_attrs.end(), attrs[j]);
          LSENS_CHECK(it != out.table_attrs.end() && *it == attrs[j]);
          argmax[static_cast<size_t>(it - out.table_attrs.begin())] =
              t.argmax[j];
        }
      }
      out.argmax = std::move(argmax);
    }
  }
  // Winner reduction. The path engine walks chain positions and skips
  // skipped atoms explicitly; the tree engine walks atoms and relies on
  // their zero maxima. Both are replicated verbatim.
  if (state.mode == RepairState::Mode::kPath) {
    for (int a : state.assembly_atoms) {
      const AtomSensitivity& out = result.atoms[static_cast<size_t>(a)];
      if (out.skipped) continue;
      if (out.max_sensitivity > result.local_sensitivity ||
          (result.argmax_atom == -1 && !out.max_sensitivity.IsZero())) {
        result.local_sensitivity = out.max_sensitivity;
        result.argmax_atom = a;
      }
    }
  } else {
    for (int a = 0; a < q.num_atoms(); ++a) {
      const AtomSensitivity& out = result.atoms[static_cast<size_t>(a)];
      if (out.max_sensitivity > result.local_sensitivity ||
          (result.argmax_atom == -1 && !out.max_sensitivity.IsZero())) {
        result.local_sensitivity = out.max_sensitivity;
        result.argmax_atom = a;
      }
    }
  }
  return result;
}

// Applies the pending change-log deltas to `state`. Returns false when the
// state became unrepairable mid-flight (saturation / inconsistent log) —
// the caller must discard and rebuild. On success `delta_rows` and
// `rows_touched` receive the work accounting.
//
// `threads` > 1 shards the repair over the global thread pool (via
// ParallelApply on `ctx`): change-log entries and affected join-key
// groups are hash-partitioned into per-worker shards, the pure read-only
// work (predicate filtering, key projection, group re-aggregation) fans
// out, and every table mutation and tracker update applies serially in a
// scheduling-independent order. Deltas below the kShardMinWork gate stay
// on the serial loops — a single-row update never pays a pool
// round-trip. Repaired state, results, and all
// counters are bit-identical to the serial repair at every thread count:
// per-key adjustment sequences are preserved by the key-hash routing, the
// re-aggregated sums land in per-group slots applied in sorted order, and
// rows_touched is a sum of per-group counts, which commutes.
bool RepairInPlace(RepairState& state, const ConjunctiveQuery& q,
                   const Database& db, int threads, ExecContext& ctx,
                   uint64_t* delta_rows, uint64_t* rows_touched) {
  // 0. A poisoned table (a saturated count was stored or an adjustment
  // was inexact) makes repair arithmetic untrustworthy: rebuild instead.
  for (const SourceState& src : state.sources) {
    if (src.table.saturated()) return false;
  }
  for (const NodeState& node : state.nodes) {
    if (node.out.saturated()) return false;
  }

  // One shard per requested thread; 1 collapses every stage to the plain
  // serial loops (ShouldRunParallel also refuses nested regions).
  const size_t num_shards =
      ShouldRunParallel(threads, static_cast<size_t>(threads) + 1)
          ? static_cast<size_t>(threads)
          : 1;
  // Sharding pays a pool round-trip per source and per node; below this
  // many work items (pending changes / affected groups) the serial loop
  // wins — the typical single-row update never leaves it. The gate reads
  // only the data, so either outcome yields identical results.
  constexpr size_t kShardMinWork = 32;

  // 1. Sources: apply the row-level deltas, collecting the touched keys.
  // Sharded path: the change log is partitioned by projected-key hash
  // (per-key order preserved inside a shard), predicate filtering and key
  // projection run per shard on the pool, and the Adjust calls apply
  // serially shard by shard — per-key adjustment sequences (and thus the
  // final table and any underflow poisoning) match the serial path.
  struct ProjectedChange {
    std::vector<Value> key;
    bool insert = true;
  };
  std::vector<std::vector<std::vector<Value>>> source_changed(
      state.sources.size());
  std::vector<RowChange> changes;
  std::vector<Value> key;
  std::vector<std::vector<RowChange>> shard_changes;
  std::vector<std::vector<ProjectedChange>> shard_keys;
  for (size_t si = 0; si < state.sources.size(); ++si) {
    SourceState& src = state.sources[si];
    const Relation* rel = db.Find(src.relation);
    if (rel == nullptr) return false;
    const std::vector<Predicate>& preds = q.atom(src.atom_index).predicates;
    auto filter_project = [&](const RowChange& ch,
                              std::vector<ProjectedChange>* out) {
      bool pass = true;
      for (size_t p = 0; p < preds.size() && pass; ++p) {
        pass = preds[p].Eval(ch.row[src.pred_cols[p]]);
      }
      if (!pass) return;
      ProjectedChange pc;
      pc.insert = ch.insert;
      pc.key.reserve(src.keep_cols.size());
      for (size_t col : src.keep_cols) pc.key.push_back(ch.row[col]);
      out->push_back(std::move(pc));
    };
    auto apply_shard = [&](std::vector<ProjectedChange>& shard) {
      for (ProjectedChange& pc : shard) {
        if (!src.table.Adjust(pc.key, Count::One(), pc.insert)) return false;
        source_changed[si].push_back(std::move(pc.key));
      }
      return true;
    };
    if (num_shards > 1 &&
        rel->NumChangesSince(src.version) > kShardMinWork) {
      // (An unanswerable log reports SIZE_MAX pending changes and takes
      // this branch only for CollectChangesShardedSince to fail — the
      // same false the serial path returns.)
      shard_changes.assign(num_shards, {});
      shard_keys.assign(num_shards, {});
      if (!rel->CollectChangesShardedSince(src.version, src.keep_cols,
                                           num_shards, &shard_changes)) {
        return false;
      }
      ParallelApply(ctx, threads, num_shards, [&](size_t s, ExecContext&) {
        for (const RowChange& ch : shard_changes[s]) {
          filter_project(ch, &shard_keys[s]);
        }
      });
      for (size_t s = 0; s < num_shards; ++s) {
        *delta_rows += shard_changes[s].size();
        if (!apply_shard(shard_keys[s])) return false;
      }
    } else {
      changes.clear();
      if (!rel->CollectChangesSince(src.version, &changes)) return false;
      *delta_rows += changes.size();
      std::vector<ProjectedChange> projected;
      for (const RowChange& ch : changes) filter_project(ch, &projected);
      if (!apply_shard(projected)) return false;
    }
    src.version = rel->version();
    SortUnique(&source_changed[si]);
  }

  // 2. Nodes, in evaluation order: collect the affected output groups
  // (directly from driver changes, and via driver-index lookups from
  // changed input keys), then re-aggregate each from the current inputs.
  // Re-aggregation reads only the driver and the already-repaired input
  // tables, so the affected groups — disjoint work — fan out over
  // key-hash shards; the sums land in per-group slots and are applied
  // (with tracker maintenance) serially in sorted group order.
  std::vector<std::vector<std::vector<Value>>> node_changed(
      state.nodes.size());
  std::vector<uint32_t> rows;
  for (size_t ni = 0; ni < state.nodes.size(); ++ni) {
    NodeState& node = state.nodes[ni];
    const DynTable& driver =
        state.sources[static_cast<size_t>(node.source)].table;
    std::vector<std::vector<Value>> affected;
    for (const std::vector<Value>& changed :
         source_changed[static_cast<size_t>(node.source)]) {
      Project(changed, node.group_cols, &key);
      affected.push_back(key);
    }
    for (const NodeState::Input& input : node.inputs) {
      for (const std::vector<Value>& changed :
           node_changed[static_cast<size_t>(input.node)]) {
        rows.clear();
        driver.LookupIndex(input.driver_index, changed, &rows);
        *rows_touched += rows.size();
        for (uint32_t r : rows) {
          Project(driver.RowValues(r), node.group_cols, &key);
          affected.push_back(key);
        }
      }
    }
    SortUnique(&affected);
    const size_t node_shards =
        num_shards > 1 && affected.size() > kShardMinWork ? num_shards : 1;
    std::vector<size_t> shard_of;
    if (node_shards > 1) {
      shard_of.resize(affected.size());
      for (size_t g = 0; g < affected.size(); ++g) {
        shard_of[g] = KeyShard(affected[g], node_shards);
      }
    }
    std::vector<Count> sums(affected.size());
    std::vector<uint64_t> shard_touched(node_shards, 0);
    ParallelApply(ctx, threads, node_shards, [&](size_t s, ExecContext&) {
      std::vector<uint32_t> group_rows;
      std::vector<Value> lookup_key;
      uint64_t touched = 0;
      for (size_t g = 0; g < affected.size(); ++g) {
        if (node_shards > 1 && shard_of[g] != s) continue;
        group_rows.clear();
        driver.LookupIndex(node.driver_group_index, affected[g],
                           &group_rows);
        touched += group_rows.size() + 1;
        Count sum = Count::Zero();
        for (uint32_t r : group_rows) {
          std::span<const Value> row = driver.RowValues(r);
          Count term = driver.RowCount(r);
          for (const NodeState::Input& input : node.inputs) {
            Project(row, input.driver_cols, &lookup_key);
            term *= state.nodes[static_cast<size_t>(input.node)].out.Get(
                lookup_key);
            if (term.IsZero()) break;
          }
          sum += term;
        }
        sums[g] = sum;
      }
      shard_touched[s] += touched;
    });
    for (size_t s = 0; s < node_shards; ++s) {
      *rows_touched += shard_touched[s];
    }
    for (size_t g = 0; g < affected.size(); ++g) {
      Count old = node.out.Set(affected[g], sums[g]);
      if (old != sums[g]) {
        node_changed[ni].push_back(affected[g]);
        for (const auto& [u, p] : state.node_trackers[ni]) {
          UpdateTracker(state.trackers[u][p], affected[g], sums[g]);
        }
      }
    }
  }
  return true;
}

// Heap footprint of an entry's repairable state: the DynTables (row
// storage + flat indexes) dominate; tracker argmax rows and bookkeeping
// vectors are noise and not counted. Feeds the byte-budget spill policy.
size_t StateMemoryBytes(const RepairState& state) {
  size_t bytes = 0;
  for (const SourceState& src : state.sources) {
    bytes += src.table.MemoryBytes();
  }
  for (const NodeState& node : state.nodes) bytes += node.out.MemoryBytes();
  return bytes;
}

}  // namespace

StatusOr<SensitivityResult> SensitivityCache::Compute(
    const ConjunctiveQuery& q, Database& db,
    const TSensComputeOptions& options_in) {
  // The capture hook belongs to the cache here: a hit or repair never runs
  // an engine, so a caller-supplied capture could not be honored
  // consistently. Strip it up front instead of filling it sometimes.
  TSensComputeOptions options = options_in;
  options.capture = nullptr;
  ExecContext& ctx = ResolveExecContext(options.join.ctx);
  WallTimer timer;
  const std::string key = Fingerprint(q, options);

  Entry* entry = nullptr;
  for (const auto& e : entries_) {
    if (e->key == key) {
      entry = e.get();
      break;
    }
  }

  auto current_versions =
      [&](const std::vector<std::string>& relations)
      -> std::optional<std::vector<uint64_t>> {
    std::vector<uint64_t> versions;
    versions.reserve(relations.size());
    for (const std::string& name : relations) {
      const Relation* rel = db.Find(name);
      if (rel == nullptr) return std::nullopt;
      versions.push_back(rel->version());
    }
    return versions;
  };

  if (entry != nullptr) {
    entry->last_used = ++tick_;
    std::optional<std::vector<uint64_t>> versions =
        current_versions(entry->relations);
    // A constant-mode result is data-independent: any version is a hit.
    const bool constant =
        entry->state != nullptr &&
        entry->state->mode == RepairState::Mode::kConstant;
    if (versions.has_value() && (constant || *versions == entry->versions)) {
      ++stats_.hits;
      ctx.Record("cache.hit", 0, 0, 0, timer.ElapsedSeconds());
      return entry->result;
    }
    if (versions.has_value() && entry->state != nullptr) {
      // Delta-size / staleness precheck before touching any state.
      size_t total_changes = 0;
      size_t total_rows = 0;
      bool stale = false;
      for (const SourceState& src : entry->state->sources) {
        const Relation* rel = db.Find(src.relation);
        LSENS_CHECK(rel != nullptr);  // current_versions found it
        size_t n = rel->NumChangesSince(src.version);
        if (n == SIZE_MAX) {
          stale = true;
          break;
        }
        total_changes += n;
        total_rows += rel->NumRows();
      }
      if (stale) {
        ++stats_.fallback_stale;
      } else if (total_changes >
                 std::max<size_t>(1, static_cast<size_t>(
                                         config_.max_delta_fraction *
                                         static_cast<double>(total_rows)))) {
        ++stats_.fallback_large_delta;
      } else {
        uint64_t delta_rows = 0;
        uint64_t rows_touched = 0;
        if (RepairInPlace(*entry->state, q, db, options.join.threads, ctx,
                          &delta_rows, &rows_touched)) {
          entry->result =
              Assemble(*entry->state, q, options, &rows_touched);
          entry->versions = *std::move(versions);
          ++stats_.repairs;
          stats_.delta_rows += delta_rows;
          stats_.repair_rows += rows_touched;
          // Repair grows/shrinks the tables: refresh the byte accounting.
          stats_.state_bytes -= entry->state_bytes;
          entry->state_bytes = StateMemoryBytes(*entry->state);
          stats_.state_bytes += entry->state_bytes;
          ctx.Record("cache.repair", delta_rows, rows_touched, 0,
                     timer.ElapsedSeconds());
          EnforceStateBudget(ctx);
          return entry->result;
        }
        // State poisoned mid-repair (saturation / inconsistent log):
        // discard and rebuild below.
        stats_.state_bytes -= entry->state_bytes;
        entry->state_bytes = 0;
        entry->state.reset();
        ++stats_.fallback_stale;
      }
    } else if (versions.has_value()) {
      ++(entry->spilled ? stats_.fallback_spilled
                        : stats_.fallback_unsupported);
    }
  }

  // Full compute (first sight, or fallback), capturing repairable state
  // when the plan supports it.
  Plan plan = MakePlan(q, options);
  std::unique_ptr<RepairState> state;
  auto run_full = [&]() -> StatusOr<SensitivityResult> {
    if (!plan.supported || plan.mode == RepairState::Mode::kConstant) {
      auto r = ComputeLocalSensitivity(q, db, options);
      if (r.ok() && plan.supported) {
        state = std::make_unique<RepairState>();  // kConstant
      }
      return r;
    }
    TSensCapture capture;
    TSensComputeOptions run = options;
    run.capture = &capture;
    StatusOr<SensitivityResult> r =
        plan.mode == RepairState::Mode::kPath
            ? TSensPath(q, plan.order, db, run)
            : TSensOverGhd(q, MakeTrivialGhd(q, JoinForest{{*plan.tree}}),
                           db, run);
    if (r.ok()) {
      state = BuildState(q, plan, std::move(capture));
      // Seed the source versions and install change logs so the next call
      // can pull deltas.
      for (SourceState& src : state->sources) {
        Relation* rel = db.Find(src.relation);
        LSENS_CHECK(rel != nullptr);
        if (!rel->change_log_enabled()) {
          rel->EnableChangeLog(config_.changelog_capacity);
        }
        src.version = rel->version();
      }
    }
    return r;
  };
  StatusOr<SensitivityResult> computed = run_full();
  if (!computed.ok()) return computed.status();

  std::vector<std::string> relations;
  relations.reserve(static_cast<size_t>(q.num_atoms()));
  for (const Atom& atom : q.atoms()) relations.push_back(atom.relation);
  std::optional<std::vector<uint64_t>> versions = current_versions(relations);
  LSENS_CHECK(versions.has_value());  // the engine just read them

  if (entry == nullptr) {
    ++stats_.misses;
    entries_.push_back(std::make_unique<Entry>());
    entry = entries_.back().get();
    entry->key = key;
    entry->last_used = ++tick_;
    if (entries_.size() > config_.max_entries) {
      size_t evict = 0;
      for (size_t i = 1; i + 1 < entries_.size(); ++i) {
        if (entries_[i]->last_used < entries_[evict]->last_used) evict = i;
      }
      stats_.state_bytes -= entries_[evict]->state_bytes;
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(evict));
      entry = entries_.back().get();
    }
    ctx.Record("cache.miss", 0, 0, 0, timer.ElapsedSeconds());
  } else {
    ctx.Record("cache.fallback", 0, 0, 0, timer.ElapsedSeconds());
  }
  entry->relations = std::move(relations);
  entry->versions = *std::move(versions);
  entry->result = *std::move(computed);
  stats_.state_bytes -= entry->state_bytes;  // large-delta path kept state
  entry->state = std::move(state);
  entry->spilled = false;
  entry->state_bytes =
      entry->state == nullptr ? 0 : StateMemoryBytes(*entry->state);
  stats_.state_bytes += entry->state_bytes;
  entry->unsupported_reason = plan.supported ? "" : plan.reason;

  // Cross-check at capture time: the assembled-from-trackers result must
  // equal the engine's, so every later repair starts from verified state.
  if (entry->state != nullptr &&
      entry->state->mode != RepairState::Mode::kConstant) {
    uint64_t ignored = 0;
    SensitivityResult assembled =
        Assemble(*entry->state, q, options, &ignored);
    LSENS_CHECK(assembled.local_sensitivity ==
                entry->result.local_sensitivity);
    LSENS_CHECK(assembled.argmax_atom == entry->result.argmax_atom);
    for (size_t a = 0; a < assembled.atoms.size(); ++a) {
      LSENS_CHECK(assembled.atoms[a].max_sensitivity ==
                  entry->result.atoms[a].max_sensitivity);
      LSENS_CHECK(assembled.atoms[a].argmax == entry->result.atoms[a].argmax);
    }
  }
  EnforceStateBudget(ctx);
  return entry->result;
}

}  // namespace lsens
