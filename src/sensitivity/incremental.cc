#include "sensitivity/incremental.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "common/rng.h"
#include "common/timer.h"
#include "exec/dyn_table.h"
#include "exec/exec_context.h"
#include "query/ghd.h"
#include "query/join_tree.h"

namespace lsens {

// Internal machinery. The repairable state mirrors the engines' data flow
// as a DAG of maintained tables:
//
//   sources      S_a = γ_keep(σ_pred(R_a))           one per atom / position
//   group nodes  out = γ_group(driver ⋈ inputs...)   the ⊥/⊤ fold tables
//   join nodes   out[t] = Π_i pieces[i][proj_i(t)]   materialized r⋈
//
// A group node's inputs are keyed on column subsets of its driver (running
// intersection guarantees this for join trees), so a node's group `g`
// re-aggregates as
//
//   out[g] = Σ_{driver rows r, r.group = g} cnt(r) · Π_i inputs[i][r.key_i]
//
// — the exact multiset of saturating products the from-scratch FoldJoin +
// GroupBySum pipeline sums, which is why repaired tables are bit-identical
// (saturating + and · are order-independent over a fixed multiset). Where
// no single relation covers a fold — multi-atom GHD bags, multiplicity-
// table components whose pieces share attributes, the per-tree root folds
// behind the §5.4 cross-tree totals — a join node materializes the fold
// itself: pieces are normalized, so every output row combines exactly one
// row per piece and its count is a pure product, recomputable per row from
// point lookups. A repair pass applies the relations' row deltas to the
// sources, then walks the nodes in evaluation order re-aggregating only
// groups (or join rows) reachable from a changed key; newly joinable rows
// of a join node are enumerated by extending each changed piece key
// through the other pieces' secondary indexes. Per-piece max/argmax
// trackers maintain the engines' predicate-filtered MaxCount/ArgMaxRow
// (first — i.e. lexicographically smallest — row attaining the max),
// falling back to a table rescan only when the tracked argmax group
// itself decays. Disconnected forests additionally keep one running join
// total per tree (exact subtract-old/add-new per changed root-fold row),
// re-multiplied into every atom's scale factor at assembly.
namespace incremental_detail {

namespace {

int ColOf(const AttributeSet& attrs, AttrId attr) {
  auto it = std::lower_bound(attrs.begin(), attrs.end(), attr);
  LSENS_CHECK(it != attrs.end() && *it == attr);
  return static_cast<int>(it - attrs.begin());
}

std::vector<int> ColsOf(const AttributeSet& attrs, const AttributeSet& sub) {
  std::vector<int> cols;
  cols.reserve(sub.size());
  for (AttrId a : sub) cols.push_back(ColOf(attrs, a));
  return cols;
}

bool LexLess(std::span<const Value> a, std::span<const Value> b) {
  return CompareRows(a, b) < 0;
}

}  // namespace

// One max/argmax view of a maintained table — a node's output, a source's
// S table, or the unit relation when neither index is set — filtered by an
// atom's predicates: the incremental stand-in for the engines'
// `ApplyPredicates + MaxCount + ArgMaxRow` on one multiplicity-table
// piece. At most one of node/source is >= 0.
struct Tracker {
  int node = -1;
  int source = -1;
  std::vector<std::pair<int, Predicate>> checks;  // (column, predicate)
  Count max = Count::Zero();
  std::vector<Value> argmax;  // lexmin row attaining max; empty when none
  bool dirty = false;

  bool Passes(std::span<const Value> key) const {
    for (const auto& [col, pred] : checks) {
      if (!pred.Eval(key[static_cast<size_t>(col)])) return false;
    }
    return true;
  }
};

// Incrementally maintained S_a: the atom's relation filtered by its
// predicates and projected (with multiplicities) onto `keep`.
struct SourceState {
  int atom_index = -1;
  std::string relation;
  AttributeSet keep;
  std::vector<size_t> keep_cols;  // relation column per keep attr
  std::vector<size_t> pred_cols;  // relation column per atom predicate
  DynTable table;
  uint64_t version = 0;
};

// A reference to one maintained table of the DAG: a source's S table or an
// earlier node's output. Exactly one of the two indexes is set (or neither,
// for the unit relation in tracker targets).
struct TableRef {
  int source = -1;
  int node = -1;
};

// One incrementally maintained fold table. Two kinds:
//
//   kGroup — out = γ_group(driver ⋈ inputs...): the legacy ⊥/⊤ form. The
//   driver is a source (inputs keyed on driver columns), or a join node's
//   output (a γ over a materialized fold; inputs stay empty — the join
//   already folded everything in).
//
//   kJoin — out = r⋈(pieces...): the materialized fold of pieces no single
//   relation covers (multi-atom bags, attribute-sharing multiplicity-table
//   components, per-tree root folds). Pieces are normalized, so every
//   output row combines exactly one row per piece and carries their
//   saturating count product over scope = ∪ piece attrs.
struct NodeState {
  enum class Kind { kGroup, kJoin };

  struct Input {
    int node = -1;                 // producer (already repaired this pass)
    std::vector<int> driver_cols;  // driver columns forming its key
    int driver_index = -1;         // secondary index on the driver for them
  };

  // One expansion step for a changed key of an origin piece: probe this
  // piece's table on the columns it shares with the scope attributes bound
  // so far and extend each partial scope row with the matches.
  struct Expand {
    size_t piece = 0;                   // index into `pieces`
    int index = -1;                     // secondary index on its table
    std::vector<int> probe_scope_cols;  // scope columns carrying the key
  };

  struct Piece {
    TableRef ref;
    std::vector<int> scope_cols;  // scope column per piece-table column
    int out_index = -1;           // index on `out` over scope_cols
    std::vector<Expand> expands;  // the other pieces, in piece order
  };

  explicit NodeState(DynTable out_table) : out(std::move(out_table)) {}

  Kind kind = Kind::kGroup;

  // kGroup
  TableRef driver;
  std::vector<int> group_cols;  // driver columns forming the out key
  int driver_group_index = -1;  // secondary index on the driver for them
  std::vector<Input> inputs;

  // kJoin
  std::vector<Piece> pieces;

  DynTable out;
};

struct RepairState {
  enum class Mode { kConstant, kPath, kGhd };

  Mode mode = Mode::kConstant;
  std::vector<SourceState> sources;
  std::vector<NodeState> nodes;  // in evaluation order
  // Result assembly: unit u covers atom assembly_atoms[u] with the pieces
  // trackers[u] (engine piece order). Path mode assembles per chain
  // position, GHD mode per atom.
  std::vector<int> assembly_atoms;
  std::vector<std::vector<Tracker>> trackers;
  // table -> (unit, piece) refs, for O(1) tracker updates during repair.
  std::vector<std::vector<std::pair<size_t, size_t>>> node_trackers;
  std::vector<std::vector<std::pair<size_t, size_t>>> source_trackers;
  // §5.4 disconnected forests: the running join total per decomposition
  // tree, the node materializing each tree's root fold, and the tree each
  // assembly unit's atom lives in. All empty for single-tree forests —
  // the scale factor is then an empty product.
  std::vector<Count> tree_totals;
  std::vector<int> total_nodes;    // node index per tree
  std::vector<int> assembly_tree;  // tree per assembly unit
};

const DynTable& TrackedTable(const RepairState& state, const Tracker& t) {
  return t.source >= 0 ? state.sources[static_cast<size_t>(t.source)].table
                       : state.nodes[static_cast<size_t>(t.node)].out;
}

// The execution plan the facade would pick, from the cache's perspective.
struct Plan {
  RepairState::Mode mode = RepairState::Mode::kConstant;
  bool supported = false;
  std::string reason;      // when !supported
  std::vector<int> order;  // kPath
  std::optional<Ghd> ghd;  // kGhd
};

namespace {

// Mirrors the facade dispatch in tsens.cc ComputeLocalSensitivity exactly,
// so the capture run below executes the same engine over the same
// decomposition the facade would pick and BuildState consumes matching
// tables. Only top_k and keep_tables remain unsupported: both change what
// the engines compute (truncated tables / retained T_a's) in ways the
// maintained state deliberately does not model, so they stay
// version-memoized fallbacks.
Plan MakePlan(const ConjunctiveQuery& q, const TSensComputeOptions& options) {
  Plan plan;
  auto unsupported = [&](std::string reason) {
    plan.supported = false;
    plan.reason = std::move(reason);
    return plan;
  };
  if (options.top_k > 0) return unsupported("top-k approximation");
  if (options.keep_tables) return unsupported("keep_tables requested");
  if (options.ghd != nullptr) {
    plan.mode = RepairState::Mode::kGhd;
    plan.ghd = *options.ghd;
    plan.supported = true;
    return plan;
  }
  auto forest = BuildJoinForestGYO(q);
  if (forest.ok()) {
    if (options.prefer_path_algorithm) {
      std::vector<int> order = PathOrder(q);
      if (order.size() >= 2) {
        plan.mode = RepairState::Mode::kPath;
        plan.order = std::move(order);
        plan.supported = true;
        return plan;
      }
    }
    if (q.num_atoms() == 1) {
      // A single-atom query's sensitivity is data-independent (inserting
      // one matching tuple always changes the count by exactly 1).
      plan.mode = RepairState::Mode::kConstant;
      plan.supported = true;
      return plan;
    }
    plan.mode = RepairState::Mode::kGhd;
    plan.ghd = MakeTrivialGhd(q, *forest);
    plan.supported = true;
    return plan;
  }
  // Cyclic: the facade searches a GHD once per call; the cache searches it
  // once per fingerprint and pins the result in the plan.
  auto searched = SearchGhd(q, q.num_atoms());
  if (!searched.ok()) return unsupported("cyclic query (GHD search failed)");
  plan.mode = RepairState::Mode::kGhd;
  plan.ghd = *std::move(searched);
  plan.supported = true;
  return plan;
}

SourceState MakeSource(const ConjunctiveQuery& q, int atom_index,
                       AttributeSet keep) {
  const Atom& atom = q.atom(atom_index);
  SourceState src{atom_index, atom.relation, keep, {}, {}, DynTable(keep), 0};
  src.keep_cols.reserve(keep.size());
  for (AttrId a : keep) {
    size_t col = 0;
    while (atom.vars[col] != a) ++col;
    src.keep_cols.push_back(col);
  }
  src.pred_cols.reserve(atom.predicates.size());
  for (const Predicate& p : atom.predicates) {
    size_t col = 0;
    while (atom.vars[col] != p.var) ++col;
    src.pred_cols.push_back(col);
  }
  return src;
}

Tracker MakeTracker(const ConjunctiveQuery& q, int atom_index, TableRef ref,
                    const RepairState& state) {
  Tracker t;
  t.node = ref.node;
  t.source = ref.source;
  if (ref.node >= 0 || ref.source >= 0) {
    const AttributeSet& attrs = TrackedTable(state, t).attrs();
    for (const Predicate& p : q.atom(atom_index).predicates) {
      auto it = std::lower_bound(attrs.begin(), attrs.end(), p.var);
      if (it != attrs.end() && *it == p.var) {
        t.checks.emplace_back(static_cast<int>(it - attrs.begin()), p);
      }
    }
  } else {
    t.max = Count::One();  // the unit relation: one empty row, count 1
    t.dirty = false;
  }
  return t;
}

// Full recomputation of a tracker from its table (also the initial fill).
void RescanTracker(Tracker& t, const RepairState& state,
                   uint64_t* rows_touched) {
  if (t.node < 0 && t.source < 0) return;
  const DynTable& table = TrackedTable(state, t);
  t.max = Count::Zero();
  t.argmax.clear();
  table.ForEachRow([&](uint32_t r) {
    ++*rows_touched;
    std::span<const Value> key = table.RowValues(r);
    if (!t.Passes(key)) return;
    Count c = table.RowCount(r);
    if (c > t.max) {
      t.max = c;
      t.argmax.assign(key.begin(), key.end());
    } else if (c == t.max && !c.IsZero() && LexLess(key, t.argmax)) {
      t.argmax.assign(key.begin(), key.end());
    }
  });
  t.dirty = false;
}

// O(1) maintenance under one group change; marks dirty when only a rescan
// can re-establish the engines' first-attaining-row tie-break.
void UpdateTracker(Tracker& t, std::span<const Value> key, Count value) {
  if (t.dirty || (t.node < 0 && t.source < 0) || !t.Passes(key)) return;
  if (value > t.max) {
    t.max = value;
    t.argmax.assign(key.begin(), key.end());
    return;
  }
  if (!value.IsZero() && value == t.max) {
    if (t.argmax.empty() || LexLess(key, t.argmax)) {
      t.argmax.assign(key.begin(), key.end());
    }
    return;
  }
  // The tracked argmax group decreased below the recorded max: other
  // attaining groups (if any) are unknown without a rescan.
  if (!t.argmax.empty() && value < t.max &&
      CompareRows(key, t.argmax) == 0) {
    t.dirty = true;
  }
}

void Project(std::span<const Value> row, const std::vector<int>& cols,
             std::vector<Value>* out) {
  out->clear();
  for (int c : cols) out->push_back(row[static_cast<size_t>(c)]);
}

// Shard routing for the parallel repair stages: the shared key-hash fold
// (storage/value.h), so Relation::CollectChangesShardedSince and this
// always route one key to one shard.
size_t KeyShard(std::span<const Value> key, size_t num_shards) {
  return static_cast<size_t>(HashValues(key) % num_shards);
}

void SortUnique(std::vector<std::vector<Value>>* keys) {
  std::sort(keys->begin(), keys->end());
  keys->erase(std::unique(keys->begin(), keys->end()), keys->end());
}

}  // namespace

}  // namespace incremental_detail

using incremental_detail::KeyShard;
using incremental_detail::MakePlan;
using incremental_detail::MakeSource;
using incremental_detail::MakeTracker;
using incremental_detail::NodeState;
using incremental_detail::Plan;
using incremental_detail::Project;
using incremental_detail::RepairState;
using incremental_detail::RescanTracker;
using incremental_detail::SortUnique;
using incremental_detail::SourceState;
using incremental_detail::TableRef;
using incremental_detail::TrackedTable;
using incremental_detail::Tracker;
using incremental_detail::UpdateTracker;

struct SensitivityCache::Entry {
  std::string key;
  std::vector<std::string> relations;  // atom order (unique: no self-joins)
  std::vector<uint64_t> versions;      // parallel to `relations`
  SensitivityResult result;
  std::unique_ptr<RepairState> state;  // null: memoize-only entry
  std::string unsupported_reason;      // when state is null
  size_t state_bytes = 0;  // StateMemoryBytes(*state) as last accounted
  bool spilled = false;    // state dropped by the byte budget
  uint64_t last_used = 0;
};

SensitivityCache::SensitivityCache(SensitivityCacheConfig config)
    : config_(config) {
  // At least the entry being inserted must survive an eviction sweep.
  config_.max_entries = std::max<size_t>(1, config_.max_entries);
  // The delta gate compares change counts against fraction * (rows +
  // changes); outside [0, 1] the fraction either always or never rejects
  // in surprising ways, so clamp to the meaningful range.
  config_.max_delta_fraction =
      std::clamp(config_.max_delta_fraction, 0.0, 1.0);
  LSENS_CHECK(config_.changelog_capacity > 0);
}

SensitivityCache::~SensitivityCache() = default;

void SensitivityCache::Clear() {
  entries_.clear();
  stats_.state_bytes = 0;
}

// Spills repair state, least-recently-used first, until the held DynTable
// bytes fit the budget. Results stay memoized (unchanged versions still
// hit); a spilled entry recomputes and re-captures on the next change.
// Whole entries are never evicted here — max_entries owns that.
void SensitivityCache::EnforceStateBudget(ExecContext& ctx) {
  if (config_.max_state_bytes == 0) return;
  while (stats_.state_bytes > config_.max_state_bytes) {
    Entry* victim = nullptr;
    for (const auto& e : entries_) {
      if (e->state == nullptr || e->state_bytes == 0) continue;
      if (victim == nullptr || e->last_used < victim->last_used) {
        victim = e.get();
      }
    }
    if (victim == nullptr) return;  // nothing left to spill
    stats_.state_bytes -= victim->state_bytes;
    ++stats_.spills;
    ctx.Record("cache.spill", victim->state_bytes, 0, 0, 0.0);
    victim->state_bytes = 0;
    victim->state.reset();
    victim->spilled = true;
  }
}

std::string SensitivityCache::Fingerprint(const ConjunctiveQuery& q,
                                          const TSensComputeOptions& options) {
  std::ostringstream out;
  for (const Atom& atom : q.atoms()) {
    out << atom.relation << '(';
    for (AttrId v : atom.vars) out << v << ',';
    out << ')';
    for (const Predicate& p : atom.predicates) {
      out << '[' << p.var << ' ' << static_cast<int>(p.op) << ' ' << p.rhs
          << ']';
    }
    out << ';';
  }
  out << "|top_k=" << options.top_k << "|keep=" << options.keep_tables
      << "|path=" << options.prefer_path_algorithm;
  std::vector<int> skips = options.skip_atoms;
  std::sort(skips.begin(), skips.end());
  skips.erase(std::unique(skips.begin(), skips.end()), skips.end());
  out << "|skip=";
  for (int a : skips) out << a << ',';
  out << "|ghd=";
  if (options.ghd != nullptr) {
    for (const GhdBag& bag : options.ghd->bags) {
      out << '{';
      for (int a : bag.atom_indices) out << a << ',';
      out << '}';
    }
    // Two GHDs over identical bags can differ in forest shape, and the
    // repair state is wired to one shape — distinguish them.
    out << "|forest=";
    for (const JoinTree& tree : options.ghd->forest.trees) {
      out << '(';
      for (int b : tree.members()) out << b << ':' << tree.Parent(b) << ',';
      out << ')';
    }
  }
  return out.str();
}

bool SensitivityCache::RepairSupported(const ConjunctiveQuery& q,
                                       const TSensComputeOptions& options,
                                       std::string* reason) {
  Plan plan = MakePlan(q, options);
  if (!plan.supported && reason != nullptr) *reason = plan.reason;
  return plan.supported;
}

namespace {

bool ContainsAtom(const std::vector<int>& skip_atoms, int atom) {
  return std::find(skip_atoms.begin(), skip_atoms.end(), atom) !=
         skip_atoms.end();
}

// Builds the repairable state for a supported plan from the engine capture
// (the exact tables the from-scratch answer was computed from).
std::unique_ptr<RepairState> BuildState(const ConjunctiveQuery& q,
                                        const Plan& plan,
                                        TSensCapture capture,
                                        const std::vector<int>& skip_atoms) {
  auto state = std::make_unique<RepairState>();
  state->mode = plan.mode;
  if (plan.mode == RepairState::Mode::kConstant) return state;

  if (plan.mode == RepairState::Mode::kPath) {
    const std::vector<int>& order = plan.order;
    const size_t m = order.size();
    std::vector<AttrId> link(m - 1, kInvalidAttr);
    for (size_t i = 0; i + 1 < m; ++i) {
      AttributeSet common = Intersect(q.atom(order[i]).VarSet(),
                                      q.atom(order[i + 1]).VarSet());
      LSENS_CHECK(common.size() == 1);
      link[i] = common[0];
    }
    for (size_t i = 0; i < m; ++i) {
      AttributeSet keep;
      if (i > 0) keep.push_back(link[i - 1]);
      if (i + 1 < m) keep.push_back(link[i]);
      keep = MakeAttributeSet(std::move(keep));
      state->sources.push_back(MakeSource(q, order[i], std::move(keep)));
      LSENS_CHECK(capture.s[i].attrs() == state->sources[i].keep);
      state->sources[i].table.Load(capture.s[i]);
    }
    // Nodes: the two chains, each in its dependency order. topjoin[i] is
    // driven by S_{i-1} (grouped on link[i-1]); botjoin[i] by S_i.
    std::vector<int> top_node(m, -1);
    std::vector<int> bot_node(m, -1);
    auto add_node = [&](int source, AttrId group_attr,
                        std::optional<NodeState::Input> input,
                        const CountedRelation& snapshot) {
      SourceState& driver = state->sources[static_cast<size_t>(source)];
      NodeState node{DynTable(AttributeSet{group_attr})};
      node.driver = TableRef{source, -1};
      node.group_cols = incremental_detail::ColsOf(driver.keep, {group_attr});
      node.driver_group_index = driver.table.AddIndex(node.group_cols);
      if (input.has_value()) {
        input->driver_index = driver.table.AddIndex(input->driver_cols);
        node.inputs.push_back(std::move(*input));
      }
      LSENS_CHECK(snapshot.attrs() == node.out.attrs());
      node.out.Load(snapshot);
      state->nodes.push_back(std::move(node));
      return static_cast<int>(state->nodes.size() - 1);
    };
    for (size_t i = 1; i < m; ++i) {
      std::optional<NodeState::Input> input;
      if (i >= 2) {
        input = NodeState::Input{
            top_node[i - 1],
            incremental_detail::ColsOf(state->sources[i - 1].keep,
                                       {link[i - 2]}),
            -1};
      }
      top_node[i] = add_node(static_cast<int>(i - 1), link[i - 1],
                             std::move(input), *capture.top[i]);
    }
    for (size_t i = m - 1; i >= 1; --i) {
      std::optional<NodeState::Input> input;
      if (i + 1 < m) {
        input = NodeState::Input{
            bot_node[i + 1],
            incremental_detail::ColsOf(state->sources[i].keep, {link[i]}),
            -1};
      }
      bot_node[i] = add_node(static_cast<int>(i), link[i - 1],
                             std::move(input), *capture.bot[i]);
    }
    // Assembly: position i multiplies the filtered maxima of ⊤_i (topjoin
    // at i; unit at the left end) and ⊥_{i+1} (botjoin; unit at the right).
    state->assembly_atoms = order;
    state->trackers.resize(m);
    for (size_t i = 0; i < m; ++i) {
      state->trackers[i].push_back(MakeTracker(
          q, order[i], TableRef{-1, i == 0 ? -1 : top_node[i]}, *state));
      state->trackers[i].push_back(MakeTracker(
          q, order[i], TableRef{-1, i + 1 == m ? -1 : bot_node[i + 1]},
          *state));
    }
  } else {
    const Ghd& ghd = *plan.ghd;
    const int num_atoms = q.num_atoms();
    const size_t num_bags = ghd.bags.size();
    const size_t num_trees = ghd.forest.trees.size();

    for (int a = 0; a < num_atoms; ++a) {
      state->sources.push_back(MakeSource(q, a, q.SharedVarsOf(a)));
      LSENS_CHECK(capture.s[static_cast<size_t>(a)].attrs() ==
                  state->sources[static_cast<size_t>(a)].keep);
      state->sources[static_cast<size_t>(a)].table.Load(
          capture.s[static_cast<size_t>(a)]);
    }

    auto table_of = [&](TableRef ref) -> DynTable& {
      return ref.source >= 0
                 ? state->sources[static_cast<size_t>(ref.source)].table
                 : state->nodes[static_cast<size_t>(ref.node)].out;
    };
    auto attrs_of = [&](TableRef ref) -> const AttributeSet& {
      return table_of(ref).attrs();
    };

    // γ_group over a driver: a source with its per-key inputs, or a
    // materialized join node's output (inputs empty — already folded in).
    auto add_group_node = [&](TableRef driver, const AttributeSet& group,
                              std::vector<NodeState::Input> inputs,
                              const CountedRelation& snapshot) {
      NodeState node{DynTable(group)};
      node.kind = NodeState::Kind::kGroup;
      node.driver = driver;
      node.group_cols = incremental_detail::ColsOf(attrs_of(driver), group);
      {
        DynTable& driver_table = table_of(driver);
        node.driver_group_index = driver_table.AddIndex(node.group_cols);
        node.inputs = std::move(inputs);
        for (NodeState::Input& input : node.inputs) {
          input.driver_index = driver_table.AddIndex(input.driver_cols);
        }
      }
      LSENS_CHECK(snapshot.attrs() == node.out.attrs());
      node.out.Load(snapshot);
      state->nodes.push_back(std::move(node));
      return static_cast<int>(state->nodes.size() - 1);
    };

    // Materialized r⋈ of `piece_refs` over scope = ∪ piece attrs, loaded
    // from the engine's fold snapshot. Expansion plans: a changed key of
    // piece i enumerates the newly joinable scope tuples by extending
    // through the other pieces in piece order, each probed on the columns
    // it shares with the scope attributes bound so far.
    auto add_join_node = [&](const std::vector<TableRef>& piece_refs,
                             const CountedRelation& snapshot) {
      AttributeSet scope;
      for (TableRef ref : piece_refs) scope = Union(scope, attrs_of(ref));
      NodeState node{DynTable(scope)};
      node.kind = NodeState::Kind::kJoin;
      LSENS_CHECK(snapshot.attrs() == scope);
      node.out.Load(snapshot);
      for (TableRef ref : piece_refs) {
        NodeState::Piece piece;
        piece.ref = ref;
        piece.scope_cols = incremental_detail::ColsOf(scope, attrs_of(ref));
        piece.out_index = node.out.AddIndex(piece.scope_cols);
        node.pieces.push_back(std::move(piece));
      }
      for (size_t i = 0; i < node.pieces.size(); ++i) {
        AttributeSet bound = attrs_of(piece_refs[i]);
        for (size_t j = 0; j < node.pieces.size(); ++j) {
          if (j == i) continue;
          const AttributeSet& pj = attrs_of(piece_refs[j]);
          NodeState::Expand e;
          e.piece = j;
          // An empty shared set degrades to the full-table chain (the
          // within-component cross-product case) — still correct, the
          // later probes filter.
          AttributeSet shared = Intersect(pj, bound);
          e.index = table_of(piece_refs[j])
                        .AddIndex(incremental_detail::ColsOf(pj, shared));
          e.probe_scope_cols = incremental_detail::ColsOf(scope, shared);
          node.pieces[i].expands.push_back(std::move(e));
          bound = Union(bound, pj);
        }
      }
      state->nodes.push_back(std::move(node));
      return static_cast<int>(state->nodes.size() - 1);
    };

    std::vector<int> bag_of(static_cast<size_t>(num_atoms), -1);
    for (size_t v = 0; v < num_bags; ++v) {
      for (int a : ghd.bags[v].atom_indices) {
        bag_of[static_cast<size_t>(a)] = static_cast<int>(v);
      }
    }

    std::vector<int> bot_node(num_bags, -1);
    std::vector<int> top_node(num_bags, -1);
    const bool track_totals = num_trees >= 2;
    if (track_totals) {
      LSENS_CHECK(capture.tree_total.size() == num_trees);
      state->tree_totals = capture.tree_total;
      state->total_nodes.assign(num_trees, -1);
    }

    for (size_t t = 0; t < num_trees; ++t) {
      const JoinTree& tree = ghd.forest.trees[t];
      // ⊥ in post-order: ⊥(v) = γ_link(v)(r⋈({S_a : a ∈ v}, {⊥(c)})).
      // Single-atom bags keep the legacy driver form (S_v drives, children
      // join in per key); multi-atom bags materialize the fold first.
      for (int bag : tree.PostOrder()) {
        const GhdBag& spec = ghd.bags[static_cast<size_t>(bag)];
        const int parent = tree.Parent(bag);
        std::vector<TableRef> piece_refs;
        for (int a : spec.atom_indices) piece_refs.push_back(TableRef{a, -1});
        for (int c : tree.Children(bag)) {
          piece_refs.push_back(TableRef{-1, bot_node[static_cast<size_t>(c)]});
        }
        auto child_inputs = [&](const AttributeSet& driver_attrs) {
          std::vector<NodeState::Input> inputs;
          for (int c : tree.Children(bag)) {
            const int cn = bot_node[static_cast<size_t>(c)];
            inputs.push_back(NodeState::Input{
                cn,
                incremental_detail::ColsOf(
                    driver_attrs, state->nodes[static_cast<size_t>(cn)]
                                      .out.attrs()),
                -1});
          }
          return inputs;
        };
        if (parent == -1) {
          // Root bag: the full fold is only materialized when the §5.4
          // cross-tree scale factors need its running total.
          if (!track_totals) continue;
          LSENS_CHECK(capture.root_join[t].has_value());
          int root;
          if (spec.atom_indices.size() == 1) {
            const TableRef drv{spec.atom_indices[0], -1};
            const AttributeSet keep = attrs_of(drv);
            root = add_group_node(drv, keep, child_inputs(keep),
                                  *capture.root_join[t]);
          } else {
            root = add_join_node(piece_refs, *capture.root_join[t]);
          }
          state->total_nodes[t] = root;
          continue;
        }
        const AttributeSet link = Intersect(
            spec.vars, ghd.bags[static_cast<size_t>(parent)].vars);
        if (spec.atom_indices.size() == 1) {
          const TableRef drv{spec.atom_indices[0], -1};
          bot_node[static_cast<size_t>(bag)] =
              add_group_node(drv, link, child_inputs(attrs_of(drv)),
                             *capture.bot[static_cast<size_t>(bag)]);
        } else {
          LSENS_CHECK(capture.bot_join[static_cast<size_t>(bag)].has_value());
          const int j = add_join_node(
              piece_refs, *capture.bot_join[static_cast<size_t>(bag)]);
          bot_node[static_cast<size_t>(bag)] =
              add_group_node(TableRef{-1, j}, link, {},
                             *capture.bot[static_cast<size_t>(bag)]);
        }
      }
      // ⊤ in pre-order: ⊤(v) = γ_link(v)(r⋈({S_a : a ∈ p}, ⊤(p)?,
      // {⊥(sib)})), driven by the parent bag.
      for (int bag : tree.PreOrder()) {
        const int p = tree.Parent(bag);
        if (p == -1) continue;
        const GhdBag& pspec = ghd.bags[static_cast<size_t>(p)];
        const AttributeSet link = Intersect(
            ghd.bags[static_cast<size_t>(bag)].vars, pspec.vars);
        std::vector<TableRef> upper_refs;  // ⊤(p)? then sibling ⊥s
        if (tree.Parent(p) != -1) {
          upper_refs.push_back(TableRef{-1, top_node[static_cast<size_t>(p)]});
        }
        for (int sib : tree.Neighbors(bag)) {
          upper_refs.push_back(
              TableRef{-1, bot_node[static_cast<size_t>(sib)]});
        }
        if (pspec.atom_indices.size() == 1) {
          const TableRef drv{pspec.atom_indices[0], -1};
          const AttributeSet& driver_attrs = attrs_of(drv);
          std::vector<NodeState::Input> inputs;
          for (TableRef ref : upper_refs) {
            inputs.push_back(NodeState::Input{
                ref.node,
                incremental_detail::ColsOf(driver_attrs, attrs_of(ref)), -1});
          }
          top_node[static_cast<size_t>(bag)] =
              add_group_node(drv, link, std::move(inputs),
                             *capture.top[static_cast<size_t>(bag)]);
        } else {
          std::vector<TableRef> piece_refs;
          for (int a : pspec.atom_indices) {
            piece_refs.push_back(TableRef{a, -1});
          }
          for (TableRef ref : upper_refs) piece_refs.push_back(ref);
          LSENS_CHECK(capture.top_join[static_cast<size_t>(bag)].has_value());
          const int j = add_join_node(
              piece_refs, *capture.top_join[static_cast<size_t>(bag)]);
          top_node[static_cast<size_t>(bag)] =
              add_group_node(TableRef{-1, j}, link, {},
                             *capture.top[static_cast<size_t>(bag)]);
        }
      }
    }

    // Per-atom multiplicity tables: T_a folds ⊤(bag), the children's ⊥ and
    // the co-atoms' S tables per attribute-connectivity component. The
    // component partition, order and per-component grouping replicate the
    // engine's compute_atom exactly, so the capture's atom_components line
    // up index for index.
    state->assembly_atoms.resize(static_cast<size_t>(num_atoms));
    state->trackers.resize(static_cast<size_t>(num_atoms));
    if (track_totals) {
      state->assembly_tree.assign(static_cast<size_t>(num_atoms), -1);
    }
    for (int a = 0; a < num_atoms; ++a) {
      state->assembly_atoms[static_cast<size_t>(a)] = a;
      const int v = bag_of[static_cast<size_t>(a)];
      const int t = ghd.forest.TreeOf(v);
      LSENS_CHECK(t >= 0);
      if (track_totals) {
        state->assembly_tree[static_cast<size_t>(a)] = t;
      }
      if (ContainsAtom(skip_atoms, a)) continue;  // engine skipped T_a
      const JoinTree& tree = ghd.forest.trees[static_cast<size_t>(t)];

      std::vector<TableRef> piece_refs;  // engine piece order
      if (tree.Parent(v) != -1) {
        piece_refs.push_back(TableRef{-1, top_node[static_cast<size_t>(v)]});
      }
      for (int c : tree.Children(v)) {
        piece_refs.push_back(TableRef{-1, bot_node[static_cast<size_t>(c)]});
      }
      for (int b : ghd.bags[static_cast<size_t>(v)].atom_indices) {
        if (b != a) piece_refs.push_back(TableRef{b, -1});
      }

      // Attribute-connectivity components, replicating the engine's
      // union-find (component order = first-piece order).
      const size_t n = piece_refs.size();
      std::vector<size_t> uf(n);
      for (size_t i = 0; i < n; ++i) uf[i] = i;
      auto find = [&](size_t x) {
        while (uf[x] != x) x = uf[x] = uf[uf[x]];
        return x;
      };
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          if (Intersects(attrs_of(piece_refs[i]), attrs_of(piece_refs[j]))) {
            uf[find(i)] = find(j);
          }
        }
      }
      std::vector<std::vector<size_t>> components;
      std::vector<int> comp_of(n, -1);
      for (size_t i = 0; i < n; ++i) {
        const size_t root = find(i);
        if (comp_of[root] == -1) {
          comp_of[root] = static_cast<int>(components.size());
          components.emplace_back();
        }
        components[static_cast<size_t>(comp_of[root])].push_back(i);
      }

      const AttributeSet table_attrs = q.SharedVarsOf(a);
      const auto& caps = capture.atom_components[static_cast<size_t>(a)];
      LSENS_CHECK(caps.size() == components.size());
      for (size_t ci = 0; ci < components.size(); ++ci) {
        const std::vector<size_t>& comp = components[ci];
        AttributeSet comp_attrs;
        for (size_t idx : comp) {
          comp_attrs = Union(comp_attrs, attrs_of(piece_refs[idx]));
        }
        const AttributeSet group = Intersect(table_attrs, comp_attrs);
        const bool group_is_full = group == comp_attrs;
        TableRef target;
        if (comp.size() == 1 && group_is_full) {
          // The piece itself is the component table: track it directly
          // (zero extra state — the common acyclic shape stays as cheap
          // as before).
          target = piece_refs[comp[0]];
        } else if (comp.size() == 1) {
          LSENS_CHECK(caps[ci].table.has_value());
          target = TableRef{
              -1, add_group_node(piece_refs[comp[0]], group, {},
                                 *caps[ci].table)};
        } else {
          LSENS_CHECK(caps[ci].join.has_value());
          std::vector<TableRef> comp_refs;
          for (size_t idx : comp) comp_refs.push_back(piece_refs[idx]);
          const int j = add_join_node(comp_refs, *caps[ci].join);
          if (group_is_full) {
            target = TableRef{-1, j};
          } else {
            LSENS_CHECK(caps[ci].table.has_value());
            target = TableRef{
                -1,
                add_group_node(TableRef{-1, j}, group, {}, *caps[ci].table)};
          }
        }
        state->trackers[static_cast<size_t>(a)].push_back(
            MakeTracker(q, a, target, *state));
      }
    }
  }

  // Initial tracker fill: one pass per piece over its (freshly loaded)
  // table, so the first repair starts from clean trackers.
  uint64_t ignored = 0;
  state->node_trackers.resize(state->nodes.size());
  state->source_trackers.resize(state->sources.size());
  for (size_t u = 0; u < state->trackers.size(); ++u) {
    for (size_t p = 0; p < state->trackers[u].size(); ++p) {
      Tracker& t = state->trackers[u][p];
      if (t.node >= 0) {
        state->node_trackers[static_cast<size_t>(t.node)].emplace_back(u, p);
      } else if (t.source >= 0) {
        state->source_trackers[static_cast<size_t>(t.source)].emplace_back(
            u, p);
      } else {
        continue;
      }
      RescanTracker(t, *state, &ignored);
    }
  }
  return state;
}

// Rebuilds the SensitivityResult from the maintained trackers, replicating
// each engine's assembly and winner tie-breaking exactly.
SensitivityResult Assemble(RepairState& state, const ConjunctiveQuery& q,
                           const TSensComputeOptions& options,
                           uint64_t* rows_touched) {
  SensitivityResult result;
  result.local_sensitivity = Count::Zero();
  result.atoms.resize(static_cast<size_t>(q.num_atoms()));
  for (size_t u = 0; u < state.assembly_atoms.size(); ++u) {
    const int a = state.assembly_atoms[u];
    AtomSensitivity& out = result.atoms[static_cast<size_t>(a)];
    out.atom_index = a;
    out.relation = q.atom(a).relation;
    out.table_attrs = q.SharedVarsOf(a);
    out.free_vars = q.ExclusiveVarsOf(a);
    out.max_sensitivity = Count::Zero();
    if (ContainsAtom(options.skip_atoms, a)) {
      out.skipped = true;
      continue;
    }
    // §5.4 scale factor: adding a tuple here combines with every full
    // result of the other decomposition trees.
    Count product = Count::One();
    if (!state.tree_totals.empty()) {
      const int tree = state.assembly_tree[u];
      for (size_t t2 = 0; t2 < state.tree_totals.size(); ++t2) {
        if (t2 != static_cast<size_t>(tree)) product *= state.tree_totals[t2];
      }
    }
    for (Tracker& t : state.trackers[u]) {
      if (t.dirty) RescanTracker(t, state, rows_touched);
      product *= t.max;
    }
    out.max_sensitivity = product;
    if (!product.IsZero()) {
      std::vector<Value> argmax(out.table_attrs.size(), 0);
      for (const Tracker& t : state.trackers[u]) {
        if (t.node < 0 && t.source < 0) continue;  // unit piece, no values
        const AttributeSet& attrs = TrackedTable(state, t).attrs();
        LSENS_CHECK(t.argmax.size() == attrs.size());
        for (size_t j = 0; j < attrs.size(); ++j) {
          auto it = std::lower_bound(out.table_attrs.begin(),
                                     out.table_attrs.end(), attrs[j]);
          LSENS_CHECK(it != out.table_attrs.end() && *it == attrs[j]);
          argmax[static_cast<size_t>(it - out.table_attrs.begin())] =
              t.argmax[j];
        }
      }
      out.argmax = std::move(argmax);
    }
  }
  // Winner reduction. The path engine walks chain positions and skips
  // skipped atoms explicitly; the GHD engine walks atoms and relies on
  // their zero maxima. Both are replicated verbatim.
  if (state.mode == RepairState::Mode::kPath) {
    for (int a : state.assembly_atoms) {
      const AtomSensitivity& out = result.atoms[static_cast<size_t>(a)];
      if (out.skipped) continue;
      if (out.max_sensitivity > result.local_sensitivity ||
          (result.argmax_atom == -1 && !out.max_sensitivity.IsZero())) {
        result.local_sensitivity = out.max_sensitivity;
        result.argmax_atom = a;
      }
    }
  } else {
    for (int a = 0; a < q.num_atoms(); ++a) {
      const AtomSensitivity& out = result.atoms[static_cast<size_t>(a)];
      if (out.max_sensitivity > result.local_sensitivity ||
          (result.argmax_atom == -1 && !out.max_sensitivity.IsZero())) {
        result.local_sensitivity = out.max_sensitivity;
        result.argmax_atom = a;
      }
    }
  }
  return result;
}

// Applies the pending change-log deltas to `state`. Returns false when the
// state became unrepairable mid-flight (saturation / inconsistent log) —
// the caller must discard and rebuild. On success `delta_rows` and
// `rows_touched` receive the work accounting.
//
// `threads` > 1 shards the repair over the global thread pool (via
// ParallelApply on `ctx`): change-log entries and affected join-key
// groups are hash-partitioned into per-worker shards, the pure read-only
// work (predicate filtering, key projection, group re-aggregation) fans
// out, and every table mutation and tracker update applies serially in a
// scheduling-independent order. Deltas below the kShardMinWork gate stay
// on the serial loops — a single-row update never pays a pool
// round-trip. Repaired state, results, and all
// counters are bit-identical to the serial repair at every thread count:
// per-key adjustment sequences are preserved by the key-hash routing, the
// re-aggregated sums land in per-group slots applied in sorted order, and
// rows_touched is a sum of per-group counts, which commutes.
bool RepairInPlace(RepairState& state, const ConjunctiveQuery& q,
                   const Database& db, int threads, ExecContext& ctx,
                   uint64_t* delta_rows, uint64_t* rows_touched) {
  // 0. A poisoned table (a saturated count was stored or an adjustment
  // was inexact) makes repair arithmetic untrustworthy: rebuild instead.
  for (const SourceState& src : state.sources) {
    if (src.table.saturated()) return false;
  }
  for (const NodeState& node : state.nodes) {
    if (node.out.saturated()) return false;
  }

  // One shard per requested thread; 1 collapses every stage to the plain
  // serial loops (ShouldRunParallel also refuses nested regions).
  const size_t num_shards =
      ShouldRunParallel(threads, static_cast<size_t>(threads) + 1)
          ? static_cast<size_t>(threads)
          : 1;
  // Sharding pays a pool round-trip per source and per node; below this
  // many work items (pending changes / affected groups) the serial loop
  // wins — the typical single-row update never leaves it. The gate reads
  // only the data, so either outcome yields identical results.
  constexpr size_t kShardMinWork = 32;

  // 1. Sources: apply the row-level deltas, collecting the touched keys.
  // Sharded path: the change log is partitioned by projected-key hash
  // (per-key order preserved inside a shard), predicate filtering and key
  // projection run per shard on the pool, and the Adjust calls apply
  // serially shard by shard — per-key adjustment sequences (and thus the
  // final table and any underflow poisoning) match the serial path.
  struct ProjectedChange {
    std::vector<Value> key;
    bool insert = true;
  };
  std::vector<std::vector<std::vector<Value>>> source_changed(
      state.sources.size());
  std::vector<RowChange> changes;
  std::vector<Value> key;
  std::vector<std::vector<RowChange>> shard_changes;
  std::vector<std::vector<ProjectedChange>> shard_keys;
  for (size_t si = 0; si < state.sources.size(); ++si) {
    SourceState& src = state.sources[si];
    const Relation* rel = db.Find(src.relation);
    if (rel == nullptr) return false;
    const std::vector<Predicate>& preds = q.atom(src.atom_index).predicates;
    auto filter_project = [&](const RowChange& ch,
                              std::vector<ProjectedChange>* out) {
      bool pass = true;
      for (size_t p = 0; p < preds.size() && pass; ++p) {
        pass = preds[p].Eval(ch.row[src.pred_cols[p]]);
      }
      if (!pass) return;
      ProjectedChange pc;
      pc.insert = ch.insert;
      pc.key.reserve(src.keep_cols.size());
      for (size_t col : src.keep_cols) pc.key.push_back(ch.row[col]);
      out->push_back(std::move(pc));
    };
    auto apply_shard = [&](std::vector<ProjectedChange>& shard) {
      for (ProjectedChange& pc : shard) {
        if (!src.table.Adjust(pc.key, Count::One(), pc.insert)) return false;
        source_changed[si].push_back(std::move(pc.key));
      }
      return true;
    };
    if (num_shards > 1 &&
        rel->NumChangesSince(src.version) > kShardMinWork) {
      // (An unanswerable log reports SIZE_MAX pending changes and takes
      // this branch only for CollectChangesShardedSince to fail — the
      // same false the serial path returns.)
      shard_changes.assign(num_shards, {});
      shard_keys.assign(num_shards, {});
      if (!rel->CollectChangesShardedSince(src.version, src.keep_cols,
                                           num_shards, &shard_changes)) {
        return false;
      }
      ParallelApply(ctx, threads, num_shards, [&](size_t s, ExecContext&) {
        for (const RowChange& ch : shard_changes[s]) {
          filter_project(ch, &shard_keys[s]);
        }
      });
      for (size_t s = 0; s < num_shards; ++s) {
        *delta_rows += shard_changes[s].size();
        if (!apply_shard(shard_keys[s])) return false;
      }
    } else {
      changes.clear();
      if (!rel->CollectChangesSince(src.version, &changes)) return false;
      *delta_rows += changes.size();
      std::vector<ProjectedChange> projected;
      for (const RowChange& ch : changes) filter_project(ch, &projected);
      if (!apply_shard(projected)) return false;
    }
    src.version = rel->version();
    SortUnique(&source_changed[si]);
    // Trackers sitting directly on this S table (single-piece multiplicity
    // components): fold in each changed key's final value.
    if (!state.source_trackers[si].empty()) {
      for (const std::vector<Value>& changed : source_changed[si]) {
        const Count value = src.table.Get(changed);
        for (const auto& [u, p] : state.source_trackers[si]) {
          UpdateTracker(state.trackers[u][p], changed, value);
        }
      }
    }
  }

  // 2. Nodes, in evaluation order: collect the affected output keys, then
  // recompute each from the current (already-repaired) upstream tables.
  //
  // Group nodes collect groups directly from driver changes and via
  // driver-index lookups from changed input keys, and re-aggregate each
  // group. Join nodes collect, per changed piece key, the existing output
  // rows matching it (the piece's out index) plus the newly joinable
  // scope tuples (expansion through the other pieces' indexes), and
  // recompute each row's count as the product of point lookups.
  //
  // Either way the recomputation reads only upstream state, so the
  // affected keys — disjoint work — fan out over key-hash shards; the
  // recomputed counts land in per-key slots and are applied (with tracker
  // and tree-total maintenance) serially in sorted key order.
  std::vector<std::vector<std::vector<Value>>> node_changed(
      state.nodes.size());
  std::vector<uint32_t> rows;
  auto table_of = [&](TableRef ref) -> const DynTable& {
    return ref.source >= 0
               ? state.sources[static_cast<size_t>(ref.source)].table
               : state.nodes[static_cast<size_t>(ref.node)].out;
  };
  auto changed_of =
      [&](TableRef ref) -> const std::vector<std::vector<Value>>& {
    return ref.source >= 0 ? source_changed[static_cast<size_t>(ref.source)]
                           : node_changed[static_cast<size_t>(ref.node)];
  };
  for (size_t ni = 0; ni < state.nodes.size(); ++ni) {
    NodeState& node = state.nodes[ni];
    std::vector<std::vector<Value>> affected;
    if (node.kind == NodeState::Kind::kGroup) {
      const DynTable& driver = table_of(node.driver);
      for (const std::vector<Value>& changed : changed_of(node.driver)) {
        Project(changed, node.group_cols, &key);
        affected.push_back(key);
      }
      for (const NodeState::Input& input : node.inputs) {
        for (const std::vector<Value>& changed :
             node_changed[static_cast<size_t>(input.node)]) {
          rows.clear();
          driver.LookupIndex(input.driver_index, changed, &rows);
          *rows_touched += rows.size();
          for (uint32_t r : rows) {
            Project(driver.RowValues(r), node.group_cols, &key);
            affected.push_back(key);
          }
        }
      }
    } else {
      std::vector<std::vector<Value>> frontier;
      std::vector<std::vector<Value>> next;
      for (size_t pi = 0; pi < node.pieces.size(); ++pi) {
        const NodeState::Piece& piece = node.pieces[pi];
        const DynTable& pt = table_of(piece.ref);
        for (const std::vector<Value>& changed : changed_of(piece.ref)) {
          // Existing output rows built from this piece key (count change
          // or removal).
          rows.clear();
          node.out.LookupIndex(piece.out_index, changed, &rows);
          *rows_touched += rows.size();
          for (uint32_t r : rows) {
            std::span<const Value> row = node.out.RowValues(r);
            affected.emplace_back(row.begin(), row.end());
          }
          // A key no longer present cannot create new join rows.
          if (pt.FindRow(changed) == DynTable::kNoRow) continue;
          std::vector<Value> seed(node.out.attrs().size(), 0);
          for (size_t c = 0; c < piece.scope_cols.size(); ++c) {
            seed[static_cast<size_t>(piece.scope_cols[c])] = changed[c];
          }
          frontier.clear();
          frontier.push_back(std::move(seed));
          for (const NodeState::Expand& e : piece.expands) {
            const NodeState::Piece& other = node.pieces[e.piece];
            const DynTable& ot = table_of(other.ref);
            next.clear();
            for (const std::vector<Value>& partial : frontier) {
              Project(partial, e.probe_scope_cols, &key);
              rows.clear();
              ot.LookupIndex(e.index, key, &rows);
              *rows_touched += rows.size();
              for (uint32_t r : rows) {
                std::span<const Value> prow = ot.RowValues(r);
                std::vector<Value> extended = partial;
                for (size_t c = 0; c < other.scope_cols.size(); ++c) {
                  extended[static_cast<size_t>(other.scope_cols[c])] =
                      prow[c];
                }
                next.push_back(std::move(extended));
              }
            }
            frontier.swap(next);
            if (frontier.empty()) break;
          }
          for (std::vector<Value>& tuple : frontier) {
            affected.push_back(std::move(tuple));
          }
        }
      }
    }
    SortUnique(&affected);
    const size_t node_shards =
        num_shards > 1 && affected.size() > kShardMinWork ? num_shards : 1;
    std::vector<size_t> shard_of;
    if (node_shards > 1) {
      shard_of.resize(affected.size());
      for (size_t g = 0; g < affected.size(); ++g) {
        shard_of[g] = KeyShard(affected[g], node_shards);
      }
    }
    std::vector<Count> sums(affected.size());
    std::vector<uint64_t> shard_touched(node_shards, 0);
    ParallelApply(ctx, threads, node_shards, [&](size_t s, ExecContext&) {
      std::vector<uint32_t> group_rows;
      std::vector<Value> lookup_key;
      uint64_t touched = 0;
      for (size_t g = 0; g < affected.size(); ++g) {
        if (node_shards > 1 && shard_of[g] != s) continue;
        if (node.kind == NodeState::Kind::kGroup) {
          const DynTable& driver = table_of(node.driver);
          group_rows.clear();
          driver.LookupIndex(node.driver_group_index, affected[g],
                             &group_rows);
          touched += group_rows.size() + 1;
          Count sum = Count::Zero();
          for (uint32_t r : group_rows) {
            std::span<const Value> row = driver.RowValues(r);
            Count term = driver.RowCount(r);
            for (const NodeState::Input& input : node.inputs) {
              Project(row, input.driver_cols, &lookup_key);
              term *= state.nodes[static_cast<size_t>(input.node)].out.Get(
                  lookup_key);
              if (term.IsZero()) break;
            }
            sum += term;
          }
          sums[g] = sum;
        } else {
          touched += 1;
          Count product = Count::One();
          for (const NodeState::Piece& piece : node.pieces) {
            Project(affected[g], piece.scope_cols, &lookup_key);
            product *= table_of(piece.ref).Get(lookup_key);
            if (product.IsZero()) break;
          }
          sums[g] = product;
        }
      }
      shard_touched[s] += touched;
    });
    for (size_t s = 0; s < node_shards; ++s) {
      *rows_touched += shard_touched[s];
    }
    // The tree whose running total this node's output feeds, if any.
    int total_tree = -1;
    for (size_t t = 0; t < state.total_nodes.size(); ++t) {
      if (state.total_nodes[t] == static_cast<int>(ni)) {
        total_tree = static_cast<int>(t);
        break;
      }
    }
    for (size_t g = 0; g < affected.size(); ++g) {
      Count old = node.out.Set(affected[g], sums[g]);
      if (old != sums[g]) {
        node_changed[ni].push_back(affected[g]);
        for (const auto& [u, p] : state.node_trackers[ni]) {
          UpdateTracker(state.trackers[u][p], affected[g], sums[g]);
        }
        if (total_tree >= 0) {
          // Exact subtract-old/add-new; any saturation en route makes the
          // running total untrustworthy — rebuild instead.
          Count& total = state.tree_totals[static_cast<size_t>(total_tree)];
          if (total.IsSaturated() || old.IsSaturated() ||
              sums[g].IsSaturated() || total < old) {
            return false;
          }
          total = total.SaturatingSub(old) + sums[g];
          if (total.IsSaturated()) return false;
        }
      }
    }
  }
  return true;
}

// Heap footprint of an entry's repairable state: the DynTables (row
// storage + flat indexes) dominate; tracker argmax rows and bookkeeping
// vectors are noise and not counted. Feeds the byte-budget spill policy.
size_t StateMemoryBytes(const RepairState& state) {
  size_t bytes = 0;
  for (const SourceState& src : state.sources) {
    bytes += src.table.MemoryBytes();
  }
  for (const NodeState& node : state.nodes) bytes += node.out.MemoryBytes();
  return bytes;
}

}  // namespace

StatusOr<SensitivityResult> SensitivityCache::Compute(
    const ConjunctiveQuery& q, Database& db,
    const TSensComputeOptions& options_in) {
  // The capture hook belongs to the cache here: a hit or repair never runs
  // an engine, so a caller-supplied capture could not be honored
  // consistently. Strip it up front instead of filling it sometimes.
  TSensComputeOptions options = options_in;
  options.capture = nullptr;
  ExecContext& ctx = ResolveExecContext(options.join.ctx);
  WallTimer timer;
  const std::string key = Fingerprint(q, options);

  Entry* entry = nullptr;
  for (const auto& e : entries_) {
    if (e->key == key) {
      entry = e.get();
      break;
    }
  }

  auto current_versions =
      [&](const std::vector<std::string>& relations)
      -> std::optional<std::vector<uint64_t>> {
    std::vector<uint64_t> versions;
    versions.reserve(relations.size());
    for (const std::string& name : relations) {
      const Relation* rel = db.Find(name);
      if (rel == nullptr) return std::nullopt;
      versions.push_back(rel->version());
    }
    return versions;
  };

  if (entry != nullptr) {
    entry->last_used = ++tick_;
    std::optional<std::vector<uint64_t>> versions =
        current_versions(entry->relations);
    // A constant-mode result is data-independent: any version is a hit.
    const bool constant =
        entry->state != nullptr &&
        entry->state->mode == RepairState::Mode::kConstant;
    if (versions.has_value() && (constant || *versions == entry->versions)) {
      ++stats_.hits;
      ctx.Record("cache.hit", 0, 0, 0, timer.ElapsedSeconds());
      return entry->result;
    }
    if (versions.has_value() && entry->state != nullptr) {
      // Delta-size / staleness precheck before touching any state.
      size_t total_changes = 0;
      size_t total_rows = 0;
      bool stale = false;
      for (const SourceState& src : entry->state->sources) {
        const Relation* rel = db.Find(src.relation);
        LSENS_CHECK(rel != nullptr);  // current_versions found it
        size_t n = rel->NumChangesSince(src.version);
        if (n == SIZE_MAX) {
          stale = true;
          break;
        }
        total_changes += n;
        total_rows += rel->NumRows();
      }
      // Delta-size gate. The baseline is the pre-delta size (current rows
      // net of the pending deltas is unknowable cheaply, but rows+changes
      // bounds it from above), so delete-heavy streams that shrink — or
      // empty — a relation still compare the delta against the work the
      // repair will actually do, instead of dividing by the shrunken (or
      // zero) current size. The floor of 1 keeps single-row updates
      // repairable at any fraction.
      const size_t delta_baseline = total_rows + total_changes;
      const size_t allowed_changes = std::max<size_t>(
          1, static_cast<size_t>(config_.max_delta_fraction *
                                 static_cast<double>(delta_baseline)));
      if (stale) {
        ++stats_.fallback_stale;
      } else if (total_changes > allowed_changes) {
        ++stats_.fallback_large_delta;
      } else {
        uint64_t delta_rows = 0;
        uint64_t rows_touched = 0;
        if (RepairInPlace(*entry->state, q, db, options.join.threads, ctx,
                          &delta_rows, &rows_touched)) {
          entry->result =
              Assemble(*entry->state, q, options, &rows_touched);
          entry->versions = *std::move(versions);
          ++stats_.repairs;
          stats_.delta_rows += delta_rows;
          stats_.repair_rows += rows_touched;
          // Repair grows/shrinks the tables: refresh the byte accounting.
          stats_.state_bytes -= entry->state_bytes;
          entry->state_bytes = StateMemoryBytes(*entry->state);
          stats_.state_bytes += entry->state_bytes;
          ctx.Record("cache.repair", delta_rows, rows_touched, 0,
                     timer.ElapsedSeconds());
          EnforceStateBudget(ctx);
          return entry->result;
        }
        // State poisoned mid-repair (saturation / inconsistent log):
        // discard and rebuild below.
        stats_.state_bytes -= entry->state_bytes;
        entry->state_bytes = 0;
        entry->state.reset();
        ++stats_.fallback_stale;
      }
    } else if (versions.has_value()) {
      ++(entry->spilled ? stats_.fallback_spilled
                        : stats_.fallback_unsupported);
    }
  }

  // Full compute (first sight, or fallback), capturing repairable state
  // when the plan supports it.
  Plan plan = MakePlan(q, options);
  std::unique_ptr<RepairState> state;
  auto run_full = [&]() -> StatusOr<SensitivityResult> {
    if (!plan.supported || plan.mode == RepairState::Mode::kConstant) {
      auto r = ComputeLocalSensitivity(q, db, options);
      if (r.ok() && plan.supported) {
        state = std::make_unique<RepairState>();  // kConstant
      }
      return r;
    }
    TSensCapture capture;
    TSensComputeOptions run = options;
    run.capture = &capture;
    StatusOr<SensitivityResult> r =
        plan.mode == RepairState::Mode::kPath
            ? TSensPath(q, plan.order, db, run)
            : TSensOverGhd(q, *plan.ghd, db, run);
    if (r.ok()) {
      state = BuildState(q, plan, std::move(capture), options.skip_atoms);
      // Seed the source versions and install change logs so the next call
      // can pull deltas.
      for (SourceState& src : state->sources) {
        Relation* rel = db.Find(src.relation);
        LSENS_CHECK(rel != nullptr);
        if (!rel->change_log_enabled()) {
          rel->EnableChangeLog(config_.changelog_capacity);
        }
        src.version = rel->version();
      }
    }
    return r;
  };
  StatusOr<SensitivityResult> computed = run_full();
  if (!computed.ok()) return computed.status();

  std::vector<std::string> relations;
  relations.reserve(static_cast<size_t>(q.num_atoms()));
  for (const Atom& atom : q.atoms()) relations.push_back(atom.relation);
  std::optional<std::vector<uint64_t>> versions = current_versions(relations);
  LSENS_CHECK(versions.has_value());  // the engine just read them

  if (entry == nullptr) {
    ++stats_.misses;
    entries_.push_back(std::make_unique<Entry>());
    entry = entries_.back().get();
    entry->key = key;
    entry->last_used = ++tick_;
    if (entries_.size() > config_.max_entries) {
      size_t evict = 0;
      for (size_t i = 1; i + 1 < entries_.size(); ++i) {
        if (entries_[i]->last_used < entries_[evict]->last_used) evict = i;
      }
      stats_.state_bytes -= entries_[evict]->state_bytes;
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(evict));
      entry = entries_.back().get();
    }
    ctx.Record("cache.miss", 0, 0, 0, timer.ElapsedSeconds());
  } else {
    ctx.Record("cache.fallback", 0, 0, 0, timer.ElapsedSeconds());
  }
  entry->relations = std::move(relations);
  entry->versions = *std::move(versions);
  entry->result = *std::move(computed);
  stats_.state_bytes -= entry->state_bytes;  // large-delta path kept state
  entry->state = std::move(state);
  entry->spilled = false;
  entry->state_bytes =
      entry->state == nullptr ? 0 : StateMemoryBytes(*entry->state);
  stats_.state_bytes += entry->state_bytes;
  entry->unsupported_reason = plan.supported ? "" : plan.reason;

  // Cross-check at capture time: the assembled-from-trackers result must
  // equal the engine's, so every later repair starts from verified state.
  if (entry->state != nullptr &&
      entry->state->mode != RepairState::Mode::kConstant) {
    uint64_t ignored = 0;
    SensitivityResult assembled =
        Assemble(*entry->state, q, options, &ignored);
    LSENS_CHECK(assembled.local_sensitivity ==
                entry->result.local_sensitivity);
    LSENS_CHECK(assembled.argmax_atom == entry->result.argmax_atom);
    for (size_t a = 0; a < assembled.atoms.size(); ++a) {
      LSENS_CHECK(assembled.atoms[a].max_sensitivity ==
                  entry->result.atoms[a].max_sensitivity);
      LSENS_CHECK(assembled.atoms[a].argmax == entry->result.atoms[a].argmax);
    }
  }
  EnforceStateBudget(ctx);
  return entry->result;
}

}  // namespace lsens
