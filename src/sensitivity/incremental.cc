#include "sensitivity/incremental.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/rng.h"
#include "common/timer.h"
#include "exec/dyn_table.h"
#include "exec/exec_context.h"
#include "query/ghd.h"
#include "query/join_tree.h"

namespace lsens {

// Internal machinery. The repairable state mirrors the engines' data flow
// as a DAG of maintained tables:
//
//   sources      S_a = γ_keep(σ_pred(R_a))           one per atom / position
//   group nodes  out = γ_group(driver ⋈ inputs...)   the ⊥/⊤ fold tables
//   join nodes   out[t] = Π_i pieces[i][proj_i(t)]   materialized r⋈
//
// A group node's inputs are keyed on column subsets of its driver (running
// intersection guarantees this for join trees), so a node's group `g`
// re-aggregates as
//
//   out[g] = Σ_{driver rows r, r.group = g} cnt(r) · Π_i inputs[i][r.key_i]
//
// — the exact multiset of saturating products the from-scratch FoldJoin +
// GroupBySum pipeline sums, which is why repaired tables are bit-identical
// (saturating + and · are order-independent over a fixed multiset). Where
// no single relation covers a fold — multi-atom GHD bags, multiplicity-
// table components whose pieces share attributes, the per-tree root folds
// behind the §5.4 cross-tree totals — a join node materializes the fold
// itself: pieces are normalized, so every output row combines exactly one
// row per piece and its count is a pure product, recomputable per row from
// point lookups.
//
// Cross-query sharing: nodes are not owned per cache entry. Every node is
// keyed by its canonical subtree signature (query/conjunctive_query.h) in
// one store; entries acquire nodes by signature and attach when the node
// already exists, so overlapping queries maintain each distinct subtree
// once. Node tables use canonical attribute ids {0..arity-1} — equal
// signatures guarantee equal column order by induction, so rows transfer
// positionally between queries with different AttrId vocabularies.
//
// One delta pass (SyncStore) repairs the whole store: it applies the
// relations' row deltas to the source nodes, then walks the fold nodes in
// creation order (children always precede parents) re-aggregating only
// groups (or join rows) reachable from a changed key; newly joinable rows
// of a join node are enumerated by extending each changed piece key
// through the other pieces' secondary indexes. Per-piece max/argmax
// trackers — registered on the node by every dependent entry — maintain
// the engines' predicate-filtered MaxCount/ArgMaxRow (first, i.e.
// lexicographically smallest, row attaining the max), falling back to a
// table rescan only when the tracked argmax group itself decays.
// Disconnected forests additionally keep one running join total per tree
// root node (exact subtract-old/add-new per changed root-fold row),
// re-multiplied into every atom's scale factor at assembly. Nodes the pass
// cannot repair (unanswerable log, over-budget delta, saturation, spill)
// are marked stale with a reason that cascades to their dependents;
// entries touching a stale node recompute from scratch, and the rebuild
// reloads the node from the fresh engine capture for everyone at once.
namespace incremental_detail {

namespace {

int ColOf(const AttributeSet& attrs, AttrId attr) {
  auto it = std::lower_bound(attrs.begin(), attrs.end(), attr);
  LSENS_CHECK(it != attrs.end() && *it == attr);
  return static_cast<int>(it - attrs.begin());
}

std::vector<int> ColsOf(const AttributeSet& attrs, const AttributeSet& sub) {
  std::vector<int> cols;
  cols.reserve(sub.size());
  for (AttrId a : sub) cols.push_back(ColOf(attrs, a));
  return cols;
}

bool LexLess(std::span<const Value> a, std::span<const Value> b) {
  return CompareRows(a, b) < 0;
}

AttributeSet CanonicalAttrs(size_t arity) {
  AttributeSet attrs;
  attrs.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs.push_back(static_cast<AttrId>(i));
  }
  return attrs;
}

}  // namespace

struct SharedNode;

// One max/argmax view of a maintained table — a shared node's output, or
// the unit relation when `target` is null — filtered by an atom's
// predicates: the incremental stand-in for the engines' `ApplyPredicates +
// MaxCount + ArgMaxRow` on one multiplicity-table piece. Owned by a cache
// entry (its RepairState); registered on the target node so the global
// delta pass updates every dependent entry's trackers in one sweep.
// `attrs` is the owning entry's attribute view of the target table (same
// order as the table columns — signature sharing guarantees it), used to
// build the checks and to map the argmax row back into result attributes.
struct Tracker {
  SharedNode* target = nullptr;
  AttributeSet attrs;
  std::vector<std::pair<int, Predicate>> checks;  // (column, predicate)
  Count max = Count::Zero();
  std::vector<Value> argmax;  // lexmin row attaining max; empty when none
  bool dirty = false;

  bool Passes(std::span<const Value> key) const {
    for (const auto& [col, pred] : checks) {
      if (!pred.Eval(key[static_cast<size_t>(col)])) return false;
    }
    return true;
  }
};

// One shared, canonically-keyed maintained table plus the recipe to repair
// it. Three kinds:
//
//   kSource — S_a = γ_keep(σ_pred(R_a)): repaired straight from the
//   relation's change log (keep_cols/preds address relation columns).
//
//   kGroup — out = γ_group(driver ⋈ inputs...). The driver is a source
//   (inputs keyed on driver columns), or a join node's output (a γ over a
//   materialized fold; inputs stay empty — the join already folded
//   everything in).
//
//   kJoin — out = r⋈(pieces...): the materialized fold of pieces no single
//   relation covers. Pieces are normalized, so every output row combines
//   exactly one row per piece and carries their saturating count product
//   over the scope = ∪ piece attrs.
//
// Children are held by shared_ptr (a node keeps its subtree alive);
// `parents` are raw back-pointers maintained by the destructor, used to
// cascade staleness upward. Entries keep shared_ptrs to every node they
// depend on, so the store can drop exactly the nodes no entry references.
struct SharedNode {
  enum class Kind { kSource, kGroup, kJoin };
  enum class StaleReason { kNone, kLog, kLargeDelta, kSaturated, kSpilled };

  struct Input {
    std::shared_ptr<SharedNode> node;
    std::vector<int> driver_cols;  // driver columns forming its key
    int driver_index = -1;         // secondary index on the driver for them
  };

  // One expansion step for a changed key of an origin piece: probe this
  // piece's table on the columns it shares with the scope attributes bound
  // so far and extend each partial scope row with the matches.
  struct Expand {
    size_t piece = 0;                   // index into `pieces`
    int index = -1;                     // secondary index on its table
    std::vector<int> probe_scope_cols;  // scope columns carrying the key
  };

  struct Piece {
    std::shared_ptr<SharedNode> ref;
    std::vector<int> scope_cols;  // scope column per piece-table column
    int out_index = -1;           // index on `table` over scope_cols
    std::vector<Expand> expands;  // the other pieces, in piece order
  };

  SharedNode(Kind k, size_t arity, std::string signature)
      : sig(std::move(signature)), kind(k), table(CanonicalAttrs(arity)) {}
  SharedNode(const SharedNode&) = delete;
  SharedNode& operator=(const SharedNode&) = delete;
  ~SharedNode() {
    auto drop = [&](const std::shared_ptr<SharedNode>& child) {
      if (child == nullptr) return;
      auto& v = child->parents;
      v.erase(std::remove(v.begin(), v.end(), this), v.end());
    };
    drop(driver);
    for (const Input& in : inputs) drop(in.node);
    for (const Piece& p : pieces) drop(p.ref);
  }

  std::string sig;
  uint64_t fp = 0;  // CanonicalFingerprint(sig); stats/display only
  Kind kind;
  DynTable table;  // canonical attrs {0..arity-1}

  // kSource
  std::string relation;
  std::vector<size_t> keep_cols;  // relation column per output column
  std::vector<std::pair<size_t, Predicate>> preds;  // (relation column, p)
  uint64_t version = 0;  // relation version the table reflects

  // kGroup
  std::shared_ptr<SharedNode> driver;
  std::vector<int> group_cols;  // driver columns forming the out key
  int driver_group_index = -1;  // secondary index on the driver for them
  std::vector<Input> inputs;

  // kJoin
  std::vector<Piece> pieces;

  // §5.4: this node is a tree's root fold and `total` is its running join
  // size (TotalCount), consumed as the other trees' scale factor.
  bool track_total = false;
  Count total = Count::Zero();

  StaleReason stale = StaleReason::kNone;
  bool released = false;  // table storage dropped by the byte budget

  std::vector<SharedNode*> parents;   // fold nodes consuming this one
  std::vector<Tracker*> trackers;     // attached entry trackers
  uint64_t seq = 0;        // creation order: children precede parents
  uint64_t last_used = 0;  // LRU tick for the spill policy
  size_t accounted_bytes = 0;  // last MemoryBytes charged to state_bytes

  // Per delta pass: output keys whose count changed, for the parents.
  std::vector<std::vector<Value>> changed;
};

// Marks a node unrepairable and cascades to every dependent fold node (a
// stale child makes the parent's re-aggregation read stale state). The
// first reason sticks; an already-stale node implies already-stale
// ancestors, so the walk stops there.
void MarkStale(SharedNode* node, SharedNode::StaleReason reason) {
  if (node->stale != SharedNode::StaleReason::kNone) return;
  node->stale = reason;
  for (SharedNode* p : node->parents) MarkStale(p, reason);
}

struct RepairState {
  enum class Mode { kConstant, kPath, kGhd };

  RepairState() = default;
  RepairState(const RepairState&) = delete;
  RepairState& operator=(const RepairState&) = delete;
  ~RepairState() {
    for (auto& unit : trackers) {
      for (Tracker& t : unit) {
        if (t.target == nullptr) continue;
        auto& v = t.target->trackers;
        v.erase(std::remove(v.begin(), v.end(), &t), v.end());
      }
    }
  }

  Mode mode = Mode::kConstant;
  std::vector<std::shared_ptr<SharedNode>> sources;  // per atom / position
  std::vector<std::shared_ptr<SharedNode>> nodes;    // acquire order
  // Result assembly: unit u covers atom assembly_atoms[u] with the pieces
  // trackers[u] (engine piece order). Path mode assembles per chain
  // position, GHD mode per atom. Tracker addresses must stay stable (the
  // target nodes point back at them): the vectors are sized once in
  // BuildState and never touched again.
  std::vector<int> assembly_atoms;
  std::vector<std::vector<Tracker>> trackers;
  // §5.4 disconnected forests: the root node carrying each tree's running
  // total and the tree each assembly unit's atom lives in. Empty for
  // single-tree forests — the scale factor is then an empty product.
  std::vector<std::shared_ptr<SharedNode>> total_nodes;
  std::vector<int> assembly_tree;  // tree per assembly unit
};

// The execution plan the facade would pick, from the cache's perspective.
struct Plan {
  RepairState::Mode mode = RepairState::Mode::kConstant;
  bool supported = false;
  std::string reason;      // when !supported
  std::vector<int> order;  // kPath
  std::optional<Ghd> ghd;  // kGhd
};

namespace {

// Mirrors the facade dispatch in tsens.cc ComputeLocalSensitivity exactly,
// so the capture run below executes the same engine over the same
// decomposition the facade would pick and BuildState consumes matching
// tables. Only top_k and keep_tables remain unsupported: both change what
// the engines compute (truncated tables / retained T_a's) in ways the
// maintained state deliberately does not model, so they stay
// version-memoized fallbacks.
Plan MakePlan(const ConjunctiveQuery& q, const TSensComputeOptions& options) {
  Plan plan;
  auto unsupported = [&](std::string reason) {
    plan.supported = false;
    plan.reason = std::move(reason);
    return plan;
  };
  if (options.top_k > 0) return unsupported("top-k approximation");
  if (options.keep_tables) return unsupported("keep_tables requested");
  if (options.ghd != nullptr) {
    plan.mode = RepairState::Mode::kGhd;
    plan.ghd = *options.ghd;
    plan.supported = true;
    return plan;
  }
  auto forest = BuildJoinForestGYO(q);
  if (forest.ok()) {
    if (options.prefer_path_algorithm) {
      std::vector<int> order = PathOrder(q);
      if (order.size() >= 2) {
        plan.mode = RepairState::Mode::kPath;
        plan.order = std::move(order);
        plan.supported = true;
        return plan;
      }
    }
    if (q.num_atoms() == 1) {
      // A single-atom query's sensitivity is data-independent (inserting
      // one matching tuple always changes the count by exactly 1).
      plan.mode = RepairState::Mode::kConstant;
      plan.supported = true;
      return plan;
    }
    plan.mode = RepairState::Mode::kGhd;
    plan.ghd = MakeTrivialGhd(q, *forest);
    plan.supported = true;
    return plan;
  }
  // Cyclic: the facade searches a GHD once per call; the cache searches it
  // once per fingerprint and pins the result in the plan.
  auto searched = SearchGhd(q, q.num_atoms());
  if (!searched.ok()) return unsupported("cyclic query (GHD search failed)");
  plan.mode = RepairState::Mode::kGhd;
  plan.ghd = *std::move(searched);
  plan.supported = true;
  return plan;
}

// Full recomputation of a tracker from its table (also the initial fill).
void RescanTracker(Tracker& t, uint64_t* rows_touched) {
  if (t.target == nullptr) return;
  const DynTable& table = t.target->table;
  t.max = Count::Zero();
  t.argmax.clear();
  table.ForEachRow([&](uint32_t r) {
    ++*rows_touched;
    std::span<const Value> key = table.RowValues(r);
    if (!t.Passes(key)) return;
    Count c = table.RowCount(r);
    if (c > t.max) {
      t.max = c;
      t.argmax.assign(key.begin(), key.end());
    } else if (c == t.max && !c.IsZero() && LexLess(key, t.argmax)) {
      t.argmax.assign(key.begin(), key.end());
    }
  });
  t.dirty = false;
}

// O(1) maintenance under one group change; marks dirty when only a rescan
// can re-establish the engines' first-attaining-row tie-break.
void UpdateTracker(Tracker& t, std::span<const Value> key, Count value) {
  if (t.dirty || t.target == nullptr || !t.Passes(key)) return;
  if (value > t.max) {
    t.max = value;
    t.argmax.assign(key.begin(), key.end());
    return;
  }
  if (!value.IsZero() && value == t.max) {
    if (t.argmax.empty() || LexLess(key, t.argmax)) {
      t.argmax.assign(key.begin(), key.end());
    }
    return;
  }
  // The tracked argmax group decreased below the recorded max: other
  // attaining groups (if any) are unknown without a rescan.
  if (!t.argmax.empty() && value < t.max &&
      CompareRows(key, t.argmax) == 0) {
    t.dirty = true;
  }
}

void Project(std::span<const Value> row, const std::vector<int>& cols,
             std::vector<Value>* out) {
  out->clear();
  for (int c : cols) out->push_back(row[static_cast<size_t>(c)]);
}

// Shard routing for the parallel repair stages: the shared key-hash fold
// (storage/value.h), so Relation::CollectChangesShardedSince and this
// always route one key to one shard.
size_t KeyShard(std::span<const Value> key, size_t num_shards) {
  return static_cast<size_t>(HashValues(key) % num_shards);
}

void SortUnique(std::vector<std::vector<Value>>* keys) {
  std::sort(keys->begin(), keys->end());
  keys->erase(std::unique(keys->begin(), keys->end()), keys->end());
}

}  // namespace

// The canonical-signature node store: one shared_ptr per live node. The
// map ref plus children refs plus entry refs make use_count() == 1 the
// exact "no entry depends on this anymore" test the sweep uses.
struct NodeStore {
  std::unordered_map<std::string, std::shared_ptr<SharedNode>> by_sig;
  uint64_t next_seq = 0;
};

}  // namespace incremental_detail

using incremental_detail::CanonicalAttrs;
using incremental_detail::ColsOf;
using incremental_detail::KeyShard;
using incremental_detail::MakePlan;
using incremental_detail::MarkStale;
using incremental_detail::NodeStore;
using incremental_detail::Plan;
using incremental_detail::Project;
using incremental_detail::RepairState;
using incremental_detail::RescanTracker;
using incremental_detail::SharedNode;
using incremental_detail::SortUnique;
using incremental_detail::Tracker;
using incremental_detail::UpdateTracker;

struct SensitivityCache::Store {
  NodeStore ns;
};

struct SensitivityCache::Entry {
  std::string key;
  std::vector<std::string> relations;  // atom order (unique: no self-joins)
  std::vector<uint64_t> versions;      // parallel to `relations`
  SensitivityResult result;
  std::unique_ptr<RepairState> state;  // null: memoize-only entry
  std::string unsupported_reason;      // when state is null
  uint64_t last_used = 0;
};

SensitivityCache::SensitivityCache(SensitivityCacheConfig config)
    : config_(config), store_(std::make_unique<Store>()) {
  // At least the entry being inserted must survive an eviction sweep.
  config_.max_entries = std::max<size_t>(1, config_.max_entries);
  // The delta gate compares change counts against fraction * (rows +
  // changes); outside [0, 1] the fraction either always or never rejects
  // in surprising ways, so clamp to the meaningful range.
  config_.max_delta_fraction =
      std::clamp(config_.max_delta_fraction, 0.0, 1.0);
  LSENS_CHECK(config_.changelog_capacity > 0);
}

SensitivityCache::~SensitivityCache() = default;

void SensitivityCache::Clear() {
  entries_.clear();
  SweepStore();
}

// Drops store nodes no entry references anymore. A node is held by the
// store map, by its parents' recipes, and by every dependent entry; once
// only the map holds it (use_count == 1) nothing can reach it. Erasing a
// parent releases its children, so iterate to the fixpoint.
void SensitivityCache::SweepStore() {
  auto& by_sig = store_->ns.by_sig;
  bool erased = true;
  while (erased) {
    erased = false;
    // lsens-lint: allow(unordered-iter) erase-to-fixpoint over a set: which
    // nodes die is determined by use_count alone and the byte gauge is a
    // commutative sum, so visit order cannot reach results or stats.
    for (auto it = by_sig.begin(); it != by_sig.end();) {
      if (it->second.use_count() == 1) {
        stats_.state_bytes -= it->second->accounted_bytes;
        it = by_sig.erase(it);
        erased = true;
      } else {
        ++it;
      }
    }
  }
  stats_.shared_nodes = by_sig.size();
}

namespace {

// Re-charges a node's DynTable footprint against the global gauge.
void RefreshNodeBytes(SharedNode& node, SensitivityCacheStats& stats) {
  stats.state_bytes -= node.accounted_bytes;
  node.accounted_bytes = node.released ? 0 : node.table.MemoryBytes();
  stats.state_bytes += node.accounted_bytes;
}

}  // namespace

// Spills shared-node tables, stale-first then least-recently-used, until
// the held DynTable bytes fit the budget. Results stay memoized (unchanged
// versions still hit) and the node recipes stay installed; a spilled node
// is stale, so the next dependent recompute reloads it from that entry's
// fresh capture — for every other dependent too.
void SensitivityCache::EnforceStateBudget(ExecContext& ctx) {
  if (config_.max_state_bytes == 0) return;
  while (stats_.state_bytes > config_.max_state_bytes) {
    SharedNode* victim = nullptr;
    // lsens-lint: allow(unordered-iter) argmin under a strict total order
    // (stale beats fresh, then oldest last_used, then smallest seq): the
    // winner — and therefore the spill sequence and stats — is the same
    // whatever order the map yields candidates in.
    for (const auto& [sig, node] : store_->ns.by_sig) {
      if (node->released || node->accounted_bytes == 0) continue;
      if (victim == nullptr) {
        victim = node.get();
        continue;
      }
      const bool v_stale = victim->stale != SharedNode::StaleReason::kNone;
      const bool n_stale = node->stale != SharedNode::StaleReason::kNone;
      bool better;
      if (n_stale != v_stale) {
        better = n_stale;
      } else if (node->last_used != victim->last_used) {
        better = node->last_used < victim->last_used;
      } else {
        better = node->seq < victim->seq;  // total order: ties cannot leak
      }
      if (better) victim = node.get();
    }
    if (victim == nullptr) return;  // nothing left to spill
    ++stats_.spills;
    ctx.Record("cache.spill", victim->accounted_bytes, 0, 0, 0.0);
    victim->table.Release();
    victim->released = true;
    MarkStale(victim, SharedNode::StaleReason::kSpilled);
    RefreshNodeBytes(*victim, stats_);
  }
}

std::string SensitivityCache::Fingerprint(const ConjunctiveQuery& q,
                                          const TSensComputeOptions& options) {
  std::ostringstream out;
  for (const Atom& atom : q.atoms()) {
    out << atom.relation << '(';
    for (AttrId v : atom.vars) out << v << ',';
    out << ')';
    for (const Predicate& p : atom.predicates) {
      out << '[' << p.var << ' ' << static_cast<int>(p.op) << ' ' << p.rhs
          << ']';
    }
    out << ';';
  }
  out << "|top_k=" << options.top_k << "|keep=" << options.keep_tables
      << "|path=" << options.prefer_path_algorithm;
  std::vector<int> skips = options.skip_atoms;
  std::sort(skips.begin(), skips.end());
  skips.erase(std::unique(skips.begin(), skips.end()), skips.end());
  out << "|skip=";
  for (int a : skips) out << a << ',';
  out << "|ghd=";
  if (options.ghd != nullptr) {
    for (const GhdBag& bag : options.ghd->bags) {
      out << '{';
      for (int a : bag.atom_indices) out << a << ',';
      out << '}';
    }
    // Two GHDs over identical bags can differ in forest shape, and the
    // repair state is wired to one shape — distinguish them.
    out << "|forest=";
    for (const JoinTree& tree : options.ghd->forest.trees) {
      out << '(';
      for (int b : tree.members()) out << b << ':' << tree.Parent(b) << ',';
      out << ')';
    }
  }
  return out.str();
}

bool SensitivityCache::RepairSupported(const ConjunctiveQuery& q,
                                       const TSensComputeOptions& options,
                                       std::string* reason) {
  Plan plan = MakePlan(q, options);
  if (!plan.supported && reason != nullptr) *reason = plan.reason;
  return plan.supported;
}

namespace {

bool ContainsAtom(const std::vector<int>& skip_atoms, int atom) {
  return std::find(skip_atoms.begin(), skip_atoms.end(), atom) !=
         skip_atoms.end();
}

// Entry-local handle on an acquired node: the index spaces mirror the old
// per-entry layout (sources by atom/position, fold nodes by acquire
// order). Exactly one of the two is set, or neither for the unit relation.
struct TableRef {
  int source = -1;
  int node = -1;
};

// Builds one entry's RepairState against the shared store: every table is
// acquired by canonical signature — attached when a structurally identical
// node already exists (reloading it from this entry's capture when stale
// or spilled, and rescanning every attached tracker so the non-stale ⇒
// valid-trackers invariant holds), created and loaded otherwise. Because
// SyncStore runs before the engine on every path that reaches here, an
// existing non-stale node is guaranteed current, which the acquire
// verifies against the capture snapshot.
struct StateBuilder {
  const ConjunctiveQuery& q;
  const Database& db;
  NodeStore& store;
  SensitivityCacheStats& stats;
  const uint64_t tick;
  RepairState& state;
  std::vector<AttributeSet> source_attrs;  // entry view, parallel to sources
  std::vector<AttributeSet> node_attrs;    // entry view, parallel to nodes
  uint64_t scan_rows = 0;                  // tracker rescans on reload

  const AttributeSet& attrs_of(TableRef ref) const {
    return ref.source >= 0 ? source_attrs[static_cast<size_t>(ref.source)]
                           : node_attrs[static_cast<size_t>(ref.node)];
  }
  const std::shared_ptr<SharedNode>& ptr_of(TableRef ref) const {
    return ref.source >= 0 ? state.sources[static_cast<size_t>(ref.source)]
                           : state.nodes[static_cast<size_t>(ref.node)];
  }

  template <typename BuildFn>
  std::shared_ptr<SharedNode> Acquire(const std::string& sig,
                                      SharedNode::Kind kind,
                                      const CountedRelation& snapshot,
                                      BuildFn&& build, bool* current) {
    auto it = store.by_sig.find(sig);
    if (it != store.by_sig.end()) {
      const std::shared_ptr<SharedNode>& node = it->second;
      LSENS_CHECK(node->kind == kind);
      node->last_used = tick;
      ++stats.shared_attaches;
      if (node->stale != SharedNode::StaleReason::kNone) {
        node->table.LoadRows(snapshot);
        node->released = false;
        node->stale = SharedNode::StaleReason::kNone;
        for (Tracker* t : node->trackers) RescanTracker(*t, &scan_rows);
        *current = false;
      } else {
        // SyncStore already advanced it to the data the engine just read.
        LSENS_CHECK(node->table.num_rows() == snapshot.NumRows());
        *current = true;
      }
      RefreshNodeBytes(*node, stats);
      return node;
    }
    std::shared_ptr<SharedNode> node = build();
    node->fp = CanonicalFingerprint(sig);
    node->seq = store.next_seq++;
    node->last_used = tick;
    node->table.LoadRows(snapshot);
    store.by_sig.emplace(sig, node);
    stats.shared_nodes = store.by_sig.size();
    RefreshNodeBytes(*node, stats);
    *current = false;
    return node;
  }

  // S_a = γ_keep(σ_pred(R_a)). `engine_sig` is the canonical signature the
  // engine derived for its captured table — it must agree with the cache's
  // own derivation, so engine and cache can never silently disagree about
  // what a shared table holds.
  TableRef AcquireSource(int atom_index, AttributeSet keep,
                         const CountedRelation& snapshot,
                         const std::string& engine_sig) {
    const Atom& atom = q.atom(atom_index);
    std::string sig = CanonicalSourceSignature(atom, keep);
    LSENS_CHECK(sig == engine_sig);
    bool current = false;
    std::shared_ptr<SharedNode> node = Acquire(
        sig, SharedNode::Kind::kSource, snapshot,
        [&] {
          auto n = std::make_shared<SharedNode>(SharedNode::Kind::kSource,
                                                keep.size(), sig);
          n->relation = atom.relation;
          n->keep_cols.reserve(keep.size());
          for (AttrId a : keep) {
            size_t col = 0;
            while (atom.vars[col] != a) ++col;
            n->keep_cols.push_back(col);
          }
          n->preds.reserve(atom.predicates.size());
          for (const Predicate& p : atom.predicates) {
            size_t col = 0;
            while (atom.vars[col] != p.var) ++col;
            n->preds.emplace_back(col, p);
          }
          return n;
        },
        &current);
    const Relation* rel = db.Find(atom.relation);
    LSENS_CHECK(rel != nullptr);  // the engine just read it
    if (current) {
      LSENS_CHECK(node->version == rel->version());
    } else {
      node->version = rel->version();
    }
    state.sources.push_back(std::move(node));
    source_attrs.push_back(std::move(keep));
    return TableRef{static_cast<int>(state.sources.size() - 1), -1};
  }

  // out = γ_group(driver ⋈ inputs...); inputs are (child, driver columns
  // carrying its key) in the engine's order.
  TableRef AddGroupNode(
      TableRef driver, const AttributeSet& group,
      const std::vector<std::pair<TableRef, std::vector<int>>>& inputs,
      const CountedRelation& snapshot) {
    std::vector<int> group_cols = ColsOf(attrs_of(driver), group);
    std::vector<CanonicalChild> canon_inputs;
    canon_inputs.reserve(inputs.size());
    for (const auto& [ref, driver_cols] : inputs) {
      canon_inputs.push_back(CanonicalChild{ptr_of(ref)->sig, driver_cols});
    }
    std::string sig = CanonicalGroupSignature(ptr_of(driver)->sig, group_cols,
                                              std::move(canon_inputs));
    bool current = false;
    std::shared_ptr<SharedNode> node = Acquire(
        sig, SharedNode::Kind::kGroup, snapshot,
        [&] {
          auto n = std::make_shared<SharedNode>(SharedNode::Kind::kGroup,
                                                group.size(), sig);
          n->driver = ptr_of(driver);
          n->group_cols = group_cols;
          n->driver_group_index = n->driver->table.AddIndex(group_cols);
          for (const auto& [ref, driver_cols] : inputs) {
            SharedNode::Input in;
            in.node = ptr_of(ref);
            in.driver_cols = driver_cols;
            in.driver_index = n->driver->table.AddIndex(driver_cols);
            n->inputs.push_back(std::move(in));
          }
          n->driver->parents.push_back(n.get());
          for (const SharedNode::Input& in : n->inputs) {
            in.node->parents.push_back(n.get());
          }
          return n;
        },
        &current);
    state.nodes.push_back(std::move(node));
    node_attrs.push_back(group);
    return TableRef{-1, static_cast<int>(state.nodes.size() - 1)};
  }

  // out = r⋈(piece_refs...) over scope = ∪ piece attrs, loaded from the
  // engine's fold snapshot. Expansion plans: a changed key of piece i
  // enumerates the newly joinable scope tuples by extending through the
  // other pieces in piece order, each probed on the columns it shares with
  // the scope attributes bound so far.
  TableRef AddJoinNode(const std::vector<TableRef>& piece_refs,
                       const CountedRelation& snapshot) {
    AttributeSet scope;
    for (TableRef ref : piece_refs) scope = Union(scope, attrs_of(ref));
    std::vector<CanonicalChild> canon_pieces;
    canon_pieces.reserve(piece_refs.size());
    for (TableRef ref : piece_refs) {
      canon_pieces.push_back(
          CanonicalChild{ptr_of(ref)->sig, ColsOf(scope, attrs_of(ref))});
    }
    std::string sig = CanonicalJoinSignature(std::move(canon_pieces));
    bool current = false;
    std::shared_ptr<SharedNode> node = Acquire(
        sig, SharedNode::Kind::kJoin, snapshot,
        [&] {
          auto n = std::make_shared<SharedNode>(SharedNode::Kind::kJoin,
                                                scope.size(), sig);
          for (TableRef ref : piece_refs) {
            SharedNode::Piece piece;
            piece.ref = ptr_of(ref);
            piece.scope_cols = ColsOf(scope, attrs_of(ref));
            piece.out_index = n->table.AddIndex(piece.scope_cols);
            n->pieces.push_back(std::move(piece));
          }
          for (size_t i = 0; i < n->pieces.size(); ++i) {
            AttributeSet bound = attrs_of(piece_refs[i]);
            for (size_t j = 0; j < n->pieces.size(); ++j) {
              if (j == i) continue;
              const AttributeSet& pj = attrs_of(piece_refs[j]);
              SharedNode::Expand e;
              e.piece = j;
              // An empty shared set degrades to the full-table chain (the
              // within-component cross-product case) — still correct, the
              // later probes filter.
              AttributeSet shared = Intersect(pj, bound);
              e.index =
                  n->pieces[j].ref->table.AddIndex(ColsOf(pj, shared));
              e.probe_scope_cols = ColsOf(scope, shared);
              n->pieces[i].expands.push_back(std::move(e));
              bound = Union(bound, pj);
            }
          }
          for (const SharedNode::Piece& piece : n->pieces) {
            piece.ref->parents.push_back(n.get());
          }
          return n;
        },
        &current);
    state.nodes.push_back(std::move(node));
    node_attrs.push_back(std::move(scope));
    return TableRef{-1, static_cast<int>(state.nodes.size() - 1)};
  }

  Tracker MakeTracker(int atom_index, TableRef ref) {
    Tracker t;
    if (ref.source >= 0 || ref.node >= 0) {
      t.target = ptr_of(ref).get();
      t.attrs = attrs_of(ref);
      for (const Predicate& p : q.atom(atom_index).predicates) {
        auto it = std::lower_bound(t.attrs.begin(), t.attrs.end(), p.var);
        if (it != t.attrs.end() && *it == p.var) {
          t.checks.emplace_back(static_cast<int>(it - t.attrs.begin()), p);
        }
      }
    } else {
      t.max = Count::One();  // the unit relation: one empty row, count 1
      t.dirty = false;
    }
    return t;
  }
};

// Builds the repairable state for a supported plan from the engine capture
// (the exact tables the from-scratch answer was computed from), acquiring
// every table through the shared store.
std::unique_ptr<RepairState> BuildState(
    const ConjunctiveQuery& q, const Plan& plan, TSensCapture capture,
    const std::vector<int>& skip_atoms, const Database& db, NodeStore& ns,
    SensitivityCacheStats& stats, uint64_t tick, uint64_t* rows_touched) {
  auto state = std::make_unique<RepairState>();
  state->mode = plan.mode;
  if (plan.mode == RepairState::Mode::kConstant) return state;

  StateBuilder b{q, db, ns, stats, tick, *state, {}, {}, 0};

  if (plan.mode == RepairState::Mode::kPath) {
    const std::vector<int>& order = plan.order;
    const size_t m = order.size();
    std::vector<AttrId> link(m - 1, kInvalidAttr);
    for (size_t i = 0; i + 1 < m; ++i) {
      AttributeSet common = Intersect(q.atom(order[i]).VarSet(),
                                      q.atom(order[i + 1]).VarSet());
      LSENS_CHECK(common.size() == 1);
      link[i] = common[0];
    }
    LSENS_CHECK(capture.s_sig.size() == m);
    std::vector<TableRef> sources(m);
    for (size_t i = 0; i < m; ++i) {
      AttributeSet keep;
      if (i > 0) keep.push_back(link[i - 1]);
      if (i + 1 < m) keep.push_back(link[i]);
      keep = MakeAttributeSet(std::move(keep));
      LSENS_CHECK(capture.s[i].attrs() == keep);
      sources[i] = b.AcquireSource(order[i], std::move(keep), capture.s[i],
                                   capture.s_sig[i]);
    }
    // Nodes: the two chains, each in its dependency order. topjoin[i] is
    // driven by S_{i-1} (grouped on link[i-1]); botjoin[i] by S_i.
    std::vector<TableRef> top_node(m);
    std::vector<TableRef> bot_node(m);
    for (size_t i = 1; i < m; ++i) {
      std::vector<std::pair<TableRef, std::vector<int>>> inputs;
      if (i >= 2) {
        inputs.emplace_back(
            top_node[i - 1],
            ColsOf(b.attrs_of(sources[i - 1]), {link[i - 2]}));
      }
      top_node[i] = b.AddGroupNode(sources[i - 1],
                                   AttributeSet{link[i - 1]}, inputs,
                                   *capture.top[i]);
    }
    for (size_t i = m - 1; i >= 1; --i) {
      std::vector<std::pair<TableRef, std::vector<int>>> inputs;
      if (i + 1 < m) {
        inputs.emplace_back(bot_node[i + 1],
                            ColsOf(b.attrs_of(sources[i]), {link[i]}));
      }
      bot_node[i] = b.AddGroupNode(sources[i], AttributeSet{link[i - 1]},
                                   inputs, *capture.bot[i]);
    }
    // Assembly: position i multiplies the filtered maxima of ⊤_i (topjoin
    // at i; unit at the left end) and ⊥_{i+1} (botjoin; unit at the right).
    state->assembly_atoms = order;
    state->trackers.resize(m);
    for (size_t i = 0; i < m; ++i) {
      state->trackers[i].push_back(
          b.MakeTracker(order[i], i == 0 ? TableRef{} : top_node[i]));
      state->trackers[i].push_back(
          b.MakeTracker(order[i], i + 1 == m ? TableRef{} : bot_node[i + 1]));
    }
  } else {
    const Ghd& ghd = *plan.ghd;
    const int num_atoms = q.num_atoms();
    const size_t num_bags = ghd.bags.size();
    const size_t num_trees = ghd.forest.trees.size();

    LSENS_CHECK(capture.s_sig.size() == static_cast<size_t>(num_atoms));
    std::vector<TableRef> sources(static_cast<size_t>(num_atoms));
    for (int a = 0; a < num_atoms; ++a) {
      AttributeSet keep = q.SharedVarsOf(a);
      LSENS_CHECK(capture.s[static_cast<size_t>(a)].attrs() == keep);
      sources[static_cast<size_t>(a)] =
          b.AcquireSource(a, std::move(keep), capture.s[static_cast<size_t>(a)],
                          capture.s_sig[static_cast<size_t>(a)]);
    }

    std::vector<int> bag_of(static_cast<size_t>(num_atoms), -1);
    for (size_t v = 0; v < num_bags; ++v) {
      for (int a : ghd.bags[v].atom_indices) {
        bag_of[static_cast<size_t>(a)] = static_cast<int>(v);
      }
    }

    std::vector<TableRef> bot_node(num_bags);
    std::vector<TableRef> top_node(num_bags);
    const bool track_totals = num_trees >= 2;
    if (track_totals) {
      LSENS_CHECK(capture.tree_total.size() == num_trees);
      state->total_nodes.resize(num_trees);
    }

    for (size_t t = 0; t < num_trees; ++t) {
      const JoinTree& tree = ghd.forest.trees[t];
      // ⊥ in post-order: ⊥(v) = γ_link(v)(r⋈({S_a : a ∈ v}, {⊥(c)})).
      // Single-atom bags keep the legacy driver form (S_v drives, children
      // join in per key); multi-atom bags materialize the fold first.
      for (int bag : tree.PostOrder()) {
        const GhdBag& spec = ghd.bags[static_cast<size_t>(bag)];
        const int parent = tree.Parent(bag);
        std::vector<TableRef> piece_refs;
        for (int a : spec.atom_indices) {
          piece_refs.push_back(sources[static_cast<size_t>(a)]);
        }
        for (int c : tree.Children(bag)) {
          piece_refs.push_back(bot_node[static_cast<size_t>(c)]);
        }
        auto child_inputs = [&](const AttributeSet& driver_attrs) {
          std::vector<std::pair<TableRef, std::vector<int>>> inputs;
          for (int c : tree.Children(bag)) {
            const TableRef cn = bot_node[static_cast<size_t>(c)];
            inputs.emplace_back(cn, ColsOf(driver_attrs, b.attrs_of(cn)));
          }
          return inputs;
        };
        if (parent == -1) {
          // Root bag: the full fold is only materialized when the §5.4
          // cross-tree scale factors need its running total.
          if (!track_totals) continue;
          LSENS_CHECK(capture.root_join[t].has_value());
          TableRef root;
          if (spec.atom_indices.size() == 1) {
            const TableRef drv = sources[static_cast<size_t>(
                spec.atom_indices[0])];
            const AttributeSet keep = b.attrs_of(drv);
            root = b.AddGroupNode(drv, keep, child_inputs(keep),
                                  *capture.root_join[t]);
          } else {
            root = b.AddJoinNode(piece_refs, *capture.root_join[t]);
          }
          // The engine's total reflects exactly the rows just loaded (or
          // verified current), so it is correct for every acquire outcome.
          const std::shared_ptr<SharedNode>& root_node = b.ptr_of(root);
          root_node->track_total = true;
          root_node->total = capture.tree_total[t];
          state->total_nodes[t] = root_node;
          continue;
        }
        const AttributeSet link = Intersect(
            spec.vars, ghd.bags[static_cast<size_t>(parent)].vars);
        if (spec.atom_indices.size() == 1) {
          const TableRef drv =
              sources[static_cast<size_t>(spec.atom_indices[0])];
          bot_node[static_cast<size_t>(bag)] =
              b.AddGroupNode(drv, link, child_inputs(b.attrs_of(drv)),
                             *capture.bot[static_cast<size_t>(bag)]);
        } else {
          LSENS_CHECK(capture.bot_join[static_cast<size_t>(bag)].has_value());
          const TableRef j = b.AddJoinNode(
              piece_refs, *capture.bot_join[static_cast<size_t>(bag)]);
          bot_node[static_cast<size_t>(bag)] =
              b.AddGroupNode(j, link, {},
                             *capture.bot[static_cast<size_t>(bag)]);
        }
      }
      // ⊤ in pre-order: ⊤(v) = γ_link(v)(r⋈({S_a : a ∈ p}, ⊤(p)?,
      // {⊥(sib)})), driven by the parent bag.
      for (int bag : tree.PreOrder()) {
        const int p = tree.Parent(bag);
        if (p == -1) continue;
        const GhdBag& pspec = ghd.bags[static_cast<size_t>(p)];
        const AttributeSet link = Intersect(
            ghd.bags[static_cast<size_t>(bag)].vars, pspec.vars);
        std::vector<TableRef> upper_refs;  // ⊤(p)? then sibling ⊥s
        if (tree.Parent(p) != -1) {
          upper_refs.push_back(top_node[static_cast<size_t>(p)]);
        }
        for (int sib : tree.Neighbors(bag)) {
          upper_refs.push_back(bot_node[static_cast<size_t>(sib)]);
        }
        if (pspec.atom_indices.size() == 1) {
          const TableRef drv =
              sources[static_cast<size_t>(pspec.atom_indices[0])];
          const AttributeSet& driver_attrs = b.attrs_of(drv);
          std::vector<std::pair<TableRef, std::vector<int>>> inputs;
          for (TableRef ref : upper_refs) {
            inputs.emplace_back(ref, ColsOf(driver_attrs, b.attrs_of(ref)));
          }
          top_node[static_cast<size_t>(bag)] =
              b.AddGroupNode(drv, link, inputs,
                             *capture.top[static_cast<size_t>(bag)]);
        } else {
          std::vector<TableRef> piece_refs;
          for (int a : pspec.atom_indices) {
            piece_refs.push_back(sources[static_cast<size_t>(a)]);
          }
          for (TableRef ref : upper_refs) piece_refs.push_back(ref);
          LSENS_CHECK(capture.top_join[static_cast<size_t>(bag)].has_value());
          const TableRef j = b.AddJoinNode(
              piece_refs, *capture.top_join[static_cast<size_t>(bag)]);
          top_node[static_cast<size_t>(bag)] =
              b.AddGroupNode(j, link, {},
                             *capture.top[static_cast<size_t>(bag)]);
        }
      }
    }

    // Per-atom multiplicity tables: T_a folds ⊤(bag), the children's ⊥ and
    // the co-atoms' S tables per attribute-connectivity component. The
    // component partition, order and per-component grouping replicate the
    // engine's compute_atom exactly, so the capture's atom_components line
    // up index for index.
    state->assembly_atoms.resize(static_cast<size_t>(num_atoms));
    state->trackers.resize(static_cast<size_t>(num_atoms));
    if (track_totals) {
      state->assembly_tree.assign(static_cast<size_t>(num_atoms), -1);
    }
    for (int a = 0; a < num_atoms; ++a) {
      state->assembly_atoms[static_cast<size_t>(a)] = a;
      const int v = bag_of[static_cast<size_t>(a)];
      const int t = ghd.forest.TreeOf(v);
      LSENS_CHECK(t >= 0);
      if (track_totals) {
        state->assembly_tree[static_cast<size_t>(a)] = t;
      }
      if (ContainsAtom(skip_atoms, a)) continue;  // engine skipped T_a
      const JoinTree& tree = ghd.forest.trees[static_cast<size_t>(t)];

      std::vector<TableRef> piece_refs;  // engine piece order
      if (tree.Parent(v) != -1) {
        piece_refs.push_back(top_node[static_cast<size_t>(v)]);
      }
      for (int c : tree.Children(v)) {
        piece_refs.push_back(bot_node[static_cast<size_t>(c)]);
      }
      for (int other : ghd.bags[static_cast<size_t>(v)].atom_indices) {
        if (other != a) {
          piece_refs.push_back(sources[static_cast<size_t>(other)]);
        }
      }

      // Attribute-connectivity components, replicating the engine's
      // union-find (component order = first-piece order).
      const size_t n = piece_refs.size();
      std::vector<size_t> uf(n);
      for (size_t i = 0; i < n; ++i) uf[i] = i;
      auto find = [&](size_t x) {
        while (uf[x] != x) x = uf[x] = uf[uf[x]];
        return x;
      };
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          if (Intersects(b.attrs_of(piece_refs[i]),
                         b.attrs_of(piece_refs[j]))) {
            uf[find(i)] = find(j);
          }
        }
      }
      std::vector<std::vector<size_t>> components;
      std::vector<int> comp_of(n, -1);
      for (size_t i = 0; i < n; ++i) {
        const size_t root = find(i);
        if (comp_of[root] == -1) {
          comp_of[root] = static_cast<int>(components.size());
          components.emplace_back();
        }
        components[static_cast<size_t>(comp_of[root])].push_back(i);
      }

      const AttributeSet table_attrs = q.SharedVarsOf(a);
      const auto& caps = capture.atom_components[static_cast<size_t>(a)];
      LSENS_CHECK(caps.size() == components.size());
      for (size_t ci = 0; ci < components.size(); ++ci) {
        const std::vector<size_t>& comp = components[ci];
        AttributeSet comp_attrs;
        for (size_t idx : comp) {
          comp_attrs = Union(comp_attrs, b.attrs_of(piece_refs[idx]));
        }
        const AttributeSet group = Intersect(table_attrs, comp_attrs);
        const bool group_is_full = group == comp_attrs;
        TableRef target;
        if (comp.size() == 1 && group_is_full) {
          // The piece itself is the component table: track it directly
          // (zero extra state — the common acyclic shape stays as cheap
          // as before).
          target = piece_refs[comp[0]];
        } else if (comp.size() == 1) {
          LSENS_CHECK(caps[ci].table.has_value());
          target = b.AddGroupNode(piece_refs[comp[0]], group, {},
                                  *caps[ci].table);
        } else {
          LSENS_CHECK(caps[ci].join.has_value());
          std::vector<TableRef> comp_refs;
          for (size_t idx : comp) comp_refs.push_back(piece_refs[idx]);
          const TableRef j = b.AddJoinNode(comp_refs, *caps[ci].join);
          if (group_is_full) {
            target = j;
          } else {
            LSENS_CHECK(caps[ci].table.has_value());
            target = b.AddGroupNode(j, group, {}, *caps[ci].table);
          }
        }
        state->trackers[static_cast<size_t>(a)].push_back(
            b.MakeTracker(a, target));
      }
    }
  }

  // Register and fill the trackers last: the tracker vectors never resize
  // again, so the addresses handed to the nodes stay valid until the
  // RepairState destructor detaches them.
  for (auto& unit : state->trackers) {
    for (Tracker& t : unit) {
      if (t.target == nullptr) continue;
      t.target->trackers.push_back(&t);
      RescanTracker(t, &b.scan_rows);
    }
  }
  *rows_touched += b.scan_rows;
  return state;
}

// Rebuilds the SensitivityResult from the maintained trackers, replicating
// each engine's assembly and winner tie-breaking exactly.
SensitivityResult Assemble(RepairState& state, const ConjunctiveQuery& q,
                           const TSensComputeOptions& options,
                           uint64_t* rows_touched) {
  SensitivityResult result;
  result.local_sensitivity = Count::Zero();
  result.atoms.resize(static_cast<size_t>(q.num_atoms()));
  for (size_t u = 0; u < state.assembly_atoms.size(); ++u) {
    const int a = state.assembly_atoms[u];
    AtomSensitivity& out = result.atoms[static_cast<size_t>(a)];
    out.atom_index = a;
    out.relation = q.atom(a).relation;
    out.table_attrs = q.SharedVarsOf(a);
    out.free_vars = q.ExclusiveVarsOf(a);
    out.max_sensitivity = Count::Zero();
    if (ContainsAtom(options.skip_atoms, a)) {
      out.skipped = true;
      continue;
    }
    // §5.4 scale factor: adding a tuple here combines with every full
    // result of the other decomposition trees.
    Count product = Count::One();
    if (!state.total_nodes.empty()) {
      const int tree = state.assembly_tree[u];
      for (size_t t2 = 0; t2 < state.total_nodes.size(); ++t2) {
        if (t2 != static_cast<size_t>(tree)) {
          product *= state.total_nodes[t2]->total;
        }
      }
    }
    for (Tracker& t : state.trackers[u]) {
      if (t.dirty) RescanTracker(t, rows_touched);
      product *= t.max;
    }
    out.max_sensitivity = product;
    if (!product.IsZero()) {
      std::vector<Value> argmax(out.table_attrs.size(), 0);
      for (const Tracker& t : state.trackers[u]) {
        if (t.target == nullptr) continue;  // unit piece, no values
        LSENS_CHECK(t.argmax.size() == t.attrs.size());
        for (size_t j = 0; j < t.attrs.size(); ++j) {
          auto it = std::lower_bound(out.table_attrs.begin(),
                                     out.table_attrs.end(), t.attrs[j]);
          LSENS_CHECK(it != out.table_attrs.end() && *it == t.attrs[j]);
          argmax[static_cast<size_t>(it - out.table_attrs.begin())] =
              t.argmax[j];
        }
      }
      out.argmax = std::move(argmax);
    }
  }
  // Winner reduction. The path engine walks chain positions and skips
  // skipped atoms explicitly; the GHD engine walks atoms and relies on
  // their zero maxima. Both are replicated verbatim.
  if (state.mode == RepairState::Mode::kPath) {
    for (int a : state.assembly_atoms) {
      const AtomSensitivity& out = result.atoms[static_cast<size_t>(a)];
      if (out.skipped) continue;
      if (out.max_sensitivity > result.local_sensitivity ||
          (result.argmax_atom == -1 && !out.max_sensitivity.IsZero())) {
        result.local_sensitivity = out.max_sensitivity;
        result.argmax_atom = a;
      }
    }
  } else {
    for (int a = 0; a < q.num_atoms(); ++a) {
      const AtomSensitivity& out = result.atoms[static_cast<size_t>(a)];
      if (out.max_sensitivity > result.local_sensitivity ||
          (result.argmax_atom == -1 && !out.max_sensitivity.IsZero())) {
        result.local_sensitivity = out.max_sensitivity;
        result.argmax_atom = a;
      }
    }
  }
  return result;
}

}  // namespace

// One global delta pass over the shared store: every live node is repaired
// exactly once, no matter how many entries depend on it — the point of
// canonical-subtree sharing. Stage 1 pulls each source node's pending
// change-log window and applies the row deltas; stage 2 walks the fold
// nodes in creation order (children precede parents by construction,
// across entries too) re-aggregating only keys reachable from a changed
// child key. Attached trackers and §5.4 running totals are maintained in
// the same sweep. Nodes that cannot be repaired — unanswerable log, a
// delta over the global gate, saturation — are marked stale (cascading to
// dependents) and skipped; the pass itself never aborts.
//
// `threads` > 1 shards the pass over the global thread pool (via
// ParallelApply on `ctx`): change-log entries and affected join-key groups
// are hash-partitioned into per-worker shards, the pure read-only work
// (predicate filtering, key projection, group re-aggregation) fans out,
// and every table mutation and tracker update applies serially in a
// scheduling-independent order, so repaired state, results, and all
// counters are bit-identical to the serial pass at any thread count.
// Deltas below the kShardMinWork gate stay on the serial loops — a
// single-row update never pays a pool round-trip.
void SensitivityCache::SyncStore(Database& db, int threads,
                                 ExecContext& ctx) {
  NodeStore& ns = store_->ns;
  if (ns.by_sig.empty()) return;
  WallTimer timer;

  // Live nodes in creation order — a valid dependency order of the DAG.
  std::vector<SharedNode*> nodes;
  nodes.reserve(ns.by_sig.size());
  // lsens-lint: allow(unordered-iter) snapshot collection only — the very
  // next statement sorts by seq, so map order never survives past this line.
  for (const auto& [sig, node] : ns.by_sig) nodes.push_back(node.get());
  std::sort(nodes.begin(), nodes.end(),
            [](const SharedNode* a, const SharedNode* b) {
              return a->seq < b->seq;
            });
  for (SharedNode* node : nodes) node->changed.clear();

  // Pre-pass: poison checks and the global delta gate. The gate compares
  // the total pending changes across all live sources against the total
  // pre-delta rows — with a single cached query this is exactly the old
  // per-entry gate; with many, it bounds the work of the whole pass.
  size_t total_changes = 0;
  size_t total_rows = 0;
  std::vector<SharedNode*> pending;
  for (SharedNode* node : nodes) {
    if (node->stale != SharedNode::StaleReason::kNone) continue;
    if (node->table.saturated()) {
      MarkStale(node, SharedNode::StaleReason::kSaturated);
      continue;
    }
    if (node->kind != SharedNode::Kind::kSource) continue;
    const Relation* rel = db.Find(node->relation);
    if (rel == nullptr) {
      MarkStale(node, SharedNode::StaleReason::kLog);
      continue;
    }
    const size_t n = rel->NumChangesSince(node->version);
    if (n == SIZE_MAX) {
      MarkStale(node, SharedNode::StaleReason::kLog);
      continue;
    }
    total_rows += rel->NumRows();
    total_changes += n;
    if (n > 0) pending.push_back(node);
  }
  if (pending.empty()) return;
  // The baseline is the pre-delta size (current rows net of the pending
  // deltas is unknowable cheaply, but rows+changes bounds it from above),
  // so delete-heavy streams that shrink — or empty — a relation still
  // compare the delta against the work the repair will actually do. The
  // floor of 1 keeps single-row updates repairable at any fraction.
  const size_t delta_baseline = total_rows + total_changes;
  const size_t allowed_changes = std::max<size_t>(
      1, static_cast<size_t>(config_.max_delta_fraction *
                             static_cast<double>(delta_baseline)));
  if (total_changes > allowed_changes) {
    for (SharedNode* node : pending) {
      MarkStale(node, SharedNode::StaleReason::kLargeDelta);
    }
    return;
  }

  // One shard per requested thread; 1 collapses every stage to the plain
  // serial loops (ShouldRunParallel also refuses nested regions).
  const size_t num_shards =
      ShouldRunParallel(threads, static_cast<size_t>(threads) + 1)
          ? static_cast<size_t>(threads)
          : 1;
  // Sharding pays a pool round-trip per source and per node; below this
  // many work items (pending changes / affected groups) the serial loop
  // wins — the typical single-row update never leaves it. The gate reads
  // only the data, so either outcome yields identical results.
  constexpr size_t kShardMinWork = 32;

  uint64_t delta_rows = 0;
  uint64_t rows_touched = 0;
  uint64_t nodes_patched = 0;

  // Stage 1 — sources: apply the row-level deltas, collecting the touched
  // keys. The change log is filtered, projected onto each source's key
  // columns, and partitioned by projected-key hash in one walk
  // (Relation::CollectProjectedChangesShardedSince) — only the key columns
  // of passing changes are copied, never whole rows. Per-key order is
  // preserved inside a shard and the Adjust calls apply serially shard by
  // shard, so per-key adjustment sequences (and thus the final table and
  // any underflow poisoning) match a serial single-shard walk exactly.
  std::vector<std::vector<ProjectedRowChange>> shard_keys;
  for (SharedNode* src : pending) {
    const Relation* rel = db.Find(src->relation);
    LSENS_CHECK(rel != nullptr);  // the pre-pass just found it
    auto filter = [&](const RowChange& ch) {
      for (const auto& [col, pred] : src->preds) {
        if (!pred.Eval(ch.row[col])) return false;
      }
      return true;
    };
    auto apply_shard = [&](std::vector<ProjectedRowChange>& shard) {
      for (ProjectedRowChange& pc : shard) {
        if (!src->table.Adjust(pc.key, Count::One(), pc.insert)) {
          return false;
        }
        src->changed.push_back(std::move(pc.key));
      }
      return true;
    };
    const size_t src_shards =
        (num_shards > 1 && rel->NumChangesSince(src->version) > kShardMinWork)
            ? num_shards
            : 1;
    shard_keys.assign(src_shards, {});
    size_t num_changes = 0;
    LSENS_CHECK(rel->CollectProjectedChangesShardedSince(
        src->version, src->keep_cols, src_shards, filter, &shard_keys,
        &num_changes));
    delta_rows += num_changes;
    bool ok = true;
    for (size_t s = 0; s < src_shards && ok; ++s) {
      ok = apply_shard(shard_keys[s]);
    }
    if (!ok) {
      // Inexact adjustment (saturation / stale log): the table is poisoned
      // and everything downstream with it. The rest of the pass continues.
      MarkStale(src, SharedNode::StaleReason::kSaturated);
      src->changed.clear();
      continue;
    }
    src->version = rel->version();
    SortUnique(&src->changed);
    // Trackers sitting directly on this S table (single-piece multiplicity
    // components): fold in each changed key's final value.
    for (const std::vector<Value>& changed : src->changed) {
      const Count value = src->table.Get(changed);
      for (Tracker* t : src->trackers) UpdateTracker(*t, changed, value);
    }
    if (!src->changed.empty()) ++nodes_patched;
  }

  // Stage 2 — fold nodes, in dependency order: collect the affected output
  // keys, then recompute each from the current (already-repaired) upstream
  // tables.
  //
  // Group nodes collect groups directly from driver changes and via
  // driver-index lookups from changed input keys, and re-aggregate each
  // group. Join nodes collect, per changed piece key, the existing output
  // rows matching it (the piece's out index) plus the newly joinable scope
  // tuples (expansion through the other pieces' indexes), and recompute
  // each row's count as the product of point lookups.
  //
  // Either way the recomputation reads only upstream state, so the
  // affected keys — disjoint work — fan out over key-hash shards; the
  // recomputed counts land in per-key slots and are applied (with tracker
  // and tree-total maintenance) serially in sorted key order.
  std::vector<uint32_t> rows;
  std::vector<Value> key;
  for (SharedNode* node : nodes) {
    if (node->kind == SharedNode::Kind::kSource) continue;
    if (node->stale != SharedNode::StaleReason::kNone) continue;
    std::vector<std::vector<Value>> affected;
    if (node->kind == SharedNode::Kind::kGroup) {
      const DynTable& driver = node->driver->table;
      for (const std::vector<Value>& changed : node->driver->changed) {
        Project(changed, node->group_cols, &key);
        affected.push_back(key);
      }
      for (const SharedNode::Input& input : node->inputs) {
        for (const std::vector<Value>& changed : input.node->changed) {
          rows.clear();
          driver.LookupIndex(input.driver_index, changed, &rows);
          rows_touched += rows.size();
          for (uint32_t r : rows) {
            Project(driver.RowValues(r), node->group_cols, &key);
            affected.push_back(key);
          }
        }
      }
    } else {
      std::vector<std::vector<Value>> frontier;
      std::vector<std::vector<Value>> next;
      for (size_t pi = 0; pi < node->pieces.size(); ++pi) {
        const SharedNode::Piece& piece = node->pieces[pi];
        const DynTable& pt = piece.ref->table;
        for (const std::vector<Value>& changed : piece.ref->changed) {
          // Existing output rows built from this piece key (count change
          // or removal).
          rows.clear();
          node->table.LookupIndex(piece.out_index, changed, &rows);
          rows_touched += rows.size();
          for (uint32_t r : rows) {
            std::span<const Value> row = node->table.RowValues(r);
            affected.emplace_back(row.begin(), row.end());
          }
          // A key no longer present cannot create new join rows.
          if (pt.FindRow(changed) == DynTable::kNoRow) continue;
          std::vector<Value> seed(node->table.attrs().size(), 0);
          for (size_t c = 0; c < piece.scope_cols.size(); ++c) {
            seed[static_cast<size_t>(piece.scope_cols[c])] = changed[c];
          }
          frontier.clear();
          frontier.push_back(std::move(seed));
          for (const SharedNode::Expand& e : piece.expands) {
            const SharedNode::Piece& other = node->pieces[e.piece];
            const DynTable& ot = other.ref->table;
            next.clear();
            for (const std::vector<Value>& partial : frontier) {
              Project(partial, e.probe_scope_cols, &key);
              rows.clear();
              ot.LookupIndex(e.index, key, &rows);
              rows_touched += rows.size();
              for (uint32_t r : rows) {
                std::span<const Value> prow = ot.RowValues(r);
                std::vector<Value> extended = partial;
                for (size_t c = 0; c < other.scope_cols.size(); ++c) {
                  extended[static_cast<size_t>(other.scope_cols[c])] =
                      prow[c];
                }
                next.push_back(std::move(extended));
              }
            }
            frontier.swap(next);
            if (frontier.empty()) break;
          }
          for (std::vector<Value>& tuple : frontier) {
            affected.push_back(std::move(tuple));
          }
        }
      }
    }
    SortUnique(&affected);
    if (affected.empty()) continue;
    const size_t node_shards =
        num_shards > 1 && affected.size() > kShardMinWork ? num_shards : 1;
    std::vector<size_t> shard_of;
    if (node_shards > 1) {
      shard_of.resize(affected.size());
      for (size_t g = 0; g < affected.size(); ++g) {
        shard_of[g] = KeyShard(affected[g], node_shards);
      }
    }
    std::vector<Count> sums(affected.size());
    std::vector<uint64_t> shard_touched(node_shards, 0);
    ParallelApply(ctx, threads, node_shards, [&](size_t s, ExecContext&) {
      std::vector<uint32_t> group_rows;
      std::vector<Value> lookup_key;
      uint64_t touched = 0;
      for (size_t g = 0; g < affected.size(); ++g) {
        if (node_shards > 1 && shard_of[g] != s) continue;
        if (node->kind == SharedNode::Kind::kGroup) {
          const DynTable& driver = node->driver->table;
          group_rows.clear();
          driver.LookupIndex(node->driver_group_index, affected[g],
                             &group_rows);
          touched += group_rows.size() + 1;
          Count sum = Count::Zero();
          for (uint32_t r : group_rows) {
            std::span<const Value> row = driver.RowValues(r);
            Count term = driver.RowCount(r);
            for (const SharedNode::Input& input : node->inputs) {
              Project(row, input.driver_cols, &lookup_key);
              term *= input.node->table.Get(lookup_key);
              if (term.IsZero()) break;
            }
            sum += term;
          }
          sums[g] = sum;
        } else {
          touched += 1;
          Count product = Count::One();
          for (const SharedNode::Piece& piece : node->pieces) {
            Project(affected[g], piece.scope_cols, &lookup_key);
            product *= piece.ref->table.Get(lookup_key);
            if (product.IsZero()) break;
          }
          sums[g] = product;
        }
      }
      shard_touched[s] += touched;
    });
    for (size_t s = 0; s < node_shards; ++s) {
      rows_touched += shard_touched[s];
    }
    bool ok = true;
    for (size_t g = 0; g < affected.size() && ok; ++g) {
      Count old = node->table.Set(affected[g], sums[g]);
      if (old == sums[g]) continue;
      node->changed.push_back(affected[g]);
      for (Tracker* t : node->trackers) {
        UpdateTracker(*t, affected[g], sums[g]);
      }
      if (node->track_total) {
        // Exact subtract-old/add-new; any saturation en route makes the
        // running total untrustworthy — mark stale and let a dependent
        // recompute reload the node with a fresh total.
        if (node->total.IsSaturated() || old.IsSaturated() ||
            sums[g].IsSaturated() || node->total < old) {
          ok = false;
          break;
        }
        node->total = node->total.SaturatingSub(old) + sums[g];
        if (node->total.IsSaturated()) ok = false;
      }
    }
    if (ok && node->table.saturated()) ok = false;
    if (!ok) {
      MarkStale(node, SharedNode::StaleReason::kSaturated);
      node->changed.clear();
      continue;
    }
    if (!node->changed.empty()) ++nodes_patched;
  }

  for (SharedNode* node : nodes) RefreshNodeBytes(*node, stats_);
  stats_.delta_rows += delta_rows;
  stats_.repair_rows += rows_touched;
  stats_.node_repairs += nodes_patched;
  ctx.Record("cache.node_repair", delta_rows, rows_touched, 0,
             timer.ElapsedSeconds());
}

bool SensitivityCache::Peek(const ConjunctiveQuery& q, const Database& db,
                            const TSensComputeOptions& options_in,
                            SensitivityResult* out) const {
  // Match Compute's keying: the capture hook never participates.
  TSensComputeOptions options = options_in;
  options.capture = nullptr;
  const std::string key = Fingerprint(q, options);
  for (const auto& e : entries_) {
    if (e->key != key) continue;
    const bool constant =
        e->state != nullptr && e->state->mode == RepairState::Mode::kConstant;
    if (!constant) {
      for (size_t i = 0; i < e->relations.size(); ++i) {
        const Relation* rel = db.Find(e->relations[i]);
        if (rel == nullptr || rel->version() != e->versions[i]) return false;
      }
    }
    if (out != nullptr) *out = e->result;
    return true;
  }
  return false;
}

StatusOr<SensitivityResult> SensitivityCache::Compute(
    const ConjunctiveQuery& q, Database& db,
    const TSensComputeOptions& options_in) {
  // The capture hook belongs to the cache here: a hit or repair never runs
  // an engine, so a caller-supplied capture could not be honored
  // consistently. Strip it up front instead of filling it sometimes.
  TSensComputeOptions options = options_in;
  options.capture = nullptr;
  ExecContext& ctx = ResolveExecContext(options.join.ctx);
  WallTimer timer;
  const std::string key = Fingerprint(q, options);

  Entry* entry = nullptr;
  for (const auto& e : entries_) {
    if (e->key == key) {
      entry = e.get();
      break;
    }
  }

  auto current_versions =
      [&](const std::vector<std::string>& relations)
      -> std::optional<std::vector<uint64_t>> {
    std::vector<uint64_t> versions;
    versions.reserve(relations.size());
    for (const std::string& name : relations) {
      const Relation* rel = db.Find(name);
      if (rel == nullptr) return std::nullopt;
      versions.push_back(rel->version());
    }
    return versions;
  };

  // The global delta pass runs at most once per Compute, and only on paths
  // that need current store state (never on a pure version hit).
  bool synced = false;
  auto sync = [&] {
    if (!synced) {
      SyncStore(db, options.join.threads, ctx);
      synced = true;
    }
  };

  if (entry != nullptr) {
    entry->last_used = ++tick_;
    std::optional<std::vector<uint64_t>> versions =
        current_versions(entry->relations);
    // A constant-mode result is data-independent: any version is a hit.
    const bool constant =
        entry->state != nullptr &&
        entry->state->mode == RepairState::Mode::kConstant;
    // Touch the entry's shared nodes so the spill LRU tracks use by any
    // dependent entry, hits included.
    if (entry->state != nullptr) {
      for (const auto& node : entry->state->sources) {
        node->last_used = entry->last_used;
      }
      for (const auto& node : entry->state->nodes) {
        node->last_used = entry->last_used;
      }
    }
    if (versions.has_value() && (constant || *versions == entry->versions)) {
      ++stats_.hits;
      ctx.Record("cache.hit", 0, 0, 0, timer.ElapsedSeconds());
      return entry->result;
    }
    if (versions.has_value() && entry->state != nullptr) {
      // This entry's own pending delta, measured before the pass: zero
      // means some earlier Compute's pass already repaired every node this
      // entry depends on, and only the per-entry assembly remains — the
      // cross-query sharing payoff.
      uint64_t entry_pending = 0;
      for (const auto& src : entry->state->sources) {
        if (src->stale != SharedNode::StaleReason::kNone) {
          entry_pending = 1;  // falls back below; exact count irrelevant
          continue;
        }
        const Relation* rel = db.Find(src->relation);
        if (rel == nullptr) continue;
        const size_t n = rel->NumChangesSince(src->version);
        if (n != SIZE_MAX) entry_pending += n;
      }
      sync();
      bool spilled = false;
      bool large = false;
      bool stale = false;
      auto scan = [&](const std::shared_ptr<SharedNode>& node) {
        switch (node->stale) {
          case SharedNode::StaleReason::kNone:
            break;
          case SharedNode::StaleReason::kSpilled:
            spilled = true;
            break;
          case SharedNode::StaleReason::kLargeDelta:
            large = true;
            break;
          default:
            stale = true;
        }
      };
      for (const auto& node : entry->state->sources) scan(node);
      for (const auto& node : entry->state->nodes) scan(node);
      if (!spilled && !large && !stale) {
        uint64_t rows_touched = 0;
        entry->result = Assemble(*entry->state, q, options, &rows_touched);
        stats_.repair_rows += rows_touched;
        entry->versions = *std::move(versions);
        if (entry_pending > 0) {
          ++stats_.repairs;
          ctx.Record("cache.repair", entry_pending, rows_touched, 0,
                     timer.ElapsedSeconds());
        } else {
          ++stats_.shared_assemblies;
          ctx.Record("cache.shared_assembly", 0, rows_touched, 0,
                     timer.ElapsedSeconds());
        }
        EnforceStateBudget(ctx);
        return entry->result;
      }
      // Something this entry depends on is stale: full recompute below,
      // classified by the most telling reason.
      if (spilled) {
        ++stats_.fallback_spilled;
      } else if (large) {
        ++stats_.fallback_large_delta;
      } else {
        ++stats_.fallback_stale;
      }
    } else if (versions.has_value()) {
      ++stats_.fallback_unsupported;
    }
  }

  // Full compute (first sight, or fallback), capturing repairable state
  // when the plan supports it. The store syncs *before* the engine runs,
  // so every non-stale shared node is current when BuildState attaches to
  // it against the fresh capture.
  Plan plan = MakePlan(q, options);
  std::unique_ptr<RepairState> state;
  uint64_t build_rows = 0;
  auto run_full = [&]() -> StatusOr<SensitivityResult> {
    if (!plan.supported || plan.mode == RepairState::Mode::kConstant) {
      auto r = ComputeLocalSensitivity(q, db, options);
      if (r.ok() && plan.supported) {
        state = std::make_unique<RepairState>();  // kConstant
      }
      return r;
    }
    sync();
    TSensCapture capture;
    TSensComputeOptions run = options;
    run.capture = &capture;
    StatusOr<SensitivityResult> r =
        plan.mode == RepairState::Mode::kPath
            ? TSensPath(q, plan.order, db, run)
            : TSensOverGhd(q, *plan.ghd, db, run);
    if (r.ok()) {
      // Install change logs first so the acquired sources start from a
      // loggable version.
      for (const Atom& atom : q.atoms()) {
        Relation* rel = db.Find(atom.relation);
        LSENS_CHECK(rel != nullptr);
        if (!rel->change_log_enabled()) {
          rel->EnableChangeLog(config_.changelog_capacity);
        }
      }
      state = BuildState(q, plan, std::move(capture), options.skip_atoms, db,
                         store_->ns, stats_, ++tick_, &build_rows);
    }
    return r;
  };
  StatusOr<SensitivityResult> computed = run_full();
  if (!computed.ok()) return computed.status();

  std::vector<std::string> relations;
  relations.reserve(static_cast<size_t>(q.num_atoms()));
  for (const Atom& atom : q.atoms()) relations.push_back(atom.relation);
  std::optional<std::vector<uint64_t>> versions = current_versions(relations);
  LSENS_CHECK(versions.has_value());  // the engine just read them

  if (entry == nullptr) {
    ++stats_.misses;
    entries_.push_back(std::make_unique<Entry>());
    entry = entries_.back().get();
    entry->key = key;
    entry->last_used = ++tick_;
    if (entries_.size() > config_.max_entries) {
      size_t evict = 0;
      for (size_t i = 1; i + 1 < entries_.size(); ++i) {
        if (entries_[i]->last_used < entries_[evict]->last_used) evict = i;
      }
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(evict));
      entry = entries_.back().get();
    }
    ctx.Record("cache.miss", 0, 0, 0, timer.ElapsedSeconds());
  } else {
    ctx.Record("cache.fallback", 0, 0, 0, timer.ElapsedSeconds());
  }
  entry->relations = std::move(relations);
  entry->versions = *std::move(versions);
  entry->result = *std::move(computed);
  entry->state = std::move(state);  // old state's nodes released below
  entry->unsupported_reason = plan.supported ? "" : plan.reason;
  stats_.repair_rows += build_rows;
  SweepStore();

  // Cross-check at capture time: the assembled-from-trackers result must
  // equal the engine's, so every later repair starts from verified state.
  if (entry->state != nullptr &&
      entry->state->mode != RepairState::Mode::kConstant) {
    uint64_t ignored = 0;
    SensitivityResult assembled =
        Assemble(*entry->state, q, options, &ignored);
    LSENS_CHECK(assembled.local_sensitivity ==
                entry->result.local_sensitivity);
    LSENS_CHECK(assembled.argmax_atom == entry->result.argmax_atom);
    for (size_t a = 0; a < assembled.atoms.size(); ++a) {
      LSENS_CHECK(assembled.atoms[a].max_sensitivity ==
                  entry->result.atoms[a].max_sensitivity);
      LSENS_CHECK(assembled.atoms[a].argmax == entry->result.atoms[a].argmax);
    }
  }
  EnforceStateBudget(ctx);
  return entry->result;
}

}  // namespace lsens
