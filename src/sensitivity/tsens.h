#ifndef LSENS_SENSITIVITY_TSENS_H_
#define LSENS_SENSITIVITY_TSENS_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "query/ghd.h"
#include "sensitivity/result.h"
#include "sensitivity/tsens_engine.h"
#include "sensitivity/tsens_path.h"
#include "storage/database.h"

namespace lsens {

// Facade options for ComputeLocalSensitivity.
struct TSensComputeOptions : TSensOptions {
  // Use Algorithm 1 when the query is a single-attribute-link path query
  // (ignored when keep_tables is set — Algorithm 1 does not build tables).
  bool prefer_path_algorithm = true;

  // Decomposition for cyclic queries. When null and the query is cyclic,
  // SearchGhd() finds a minimum-width atom-partition GHD (small queries
  // only). Acyclic queries ignore this and use their GYO join forest.
  const Ghd* ghd = nullptr;
};

// Entry point for the local sensitivity problem (Definition 2.3): computes
// LS(Q, D) and a most sensitive tuple. Dispatches between Algorithm 1
// (path queries), Algorithm 2 (acyclic queries via GYO join trees), and the
// §5.4 GHD extension (cyclic queries).
StatusOr<SensitivityResult> ComputeLocalSensitivity(
    const ConjunctiveQuery& q, const Database& db,
    const TSensComputeOptions& options = {});

// Turns the result's most sensitive tuple into a concrete row insertable
// into its relation: bound attributes take the argmax values; free
// (exclusive) attributes take any value satisfying the atom's predicates.
// Fails if LS = 0, the argmax row is unknown (top-k default), or no single
// value satisfies all predicates on a free attribute.
StatusOr<std::pair<int, std::vector<Value>>> MaterializeMostSensitiveTuple(
    const SensitivityResult& result, const ConjunctiveQuery& q);

// Downward-only local sensitivity: max_t δ⁻(t) over the tuples *present*
// in D — the deletion-propagation view the paper contrasts with (§8).
// The result's per-atom maxima/argmaxes and tables range over the active
// domain only; insertions are not considered. Incompatible with top_k
// (exact tables are required).
StatusOr<SensitivityResult> ComputeDownwardLocalSensitivity(
    const ConjunctiveQuery& q, const Database& db,
    const TSensComputeOptions& options = {});

}  // namespace lsens

#endif  // LSENS_SENSITIVITY_TSENS_H_
