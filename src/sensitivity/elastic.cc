#include "sensitivity/elastic.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "exec/counted_relation.h"
#include "query/atom_scan.h"

namespace lsens {

DataMaxFreqProvider::DataMaxFreqProvider(const ConjunctiveQuery& q,
                                         const Database& db)
    : q_(q), db_(db) {}

Count DataMaxFreqProvider::MaxFreq(int atom_index,
                                   const AttributeSet& vars) const {
  auto key = std::make_pair(atom_index, vars);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  const Atom& atom = q_.atom(atom_index);
  const Relation* rel = db_.Find(atom.relation);
  LSENS_CHECK(rel != nullptr);
  // Static analysis: strip predicates before counting frequencies.
  Atom stripped = atom;
  stripped.predicates.clear();
  CountedRelation grouped = ScanAtom(*rel, stripped, vars);
  Count result = grouped.MaxCount();
  cache_.emplace(key, result);
  return result;
}

Count ClampedMaxFreqProvider::MaxFreq(int atom_index,
                                      const AttributeSet& vars) const {
  Count mf = inner_.MaxFreq(atom_index, vars);
  auto it = caps_.find(atom_index);
  if (it == caps_.end()) return mf;
  if (!IsSubset(it->second.key, vars)) return mf;
  return std::min(mf, it->second.cap);
}

namespace {

// One node of the left-deep elastic plan.
struct ElasticNode {
  int atom = -1;  // >= 0 for leaves
  const ElasticNode* left = nullptr;
  const ElasticNode* right = nullptr;
  AttributeSet attrs;
  AttributeSet key;  // join key = left.attrs ∩ right.attrs (may be empty)
  mutable std::map<AttributeSet, Count> memo;
};

// Max frequency of a value combination of `vars` in the plan node's output.
//   leaf: from metadata.
//   join: derivation "via left"  = mf_L(vars∩L) · mf_R(key ∪ vars∩R)
//         derivation "via right" = mf_R(vars∩R) · mf_L(key ∪ vars∩L)
// Both are sound (mf over ∅ = row-count bound, covering the paper's
// cross-product extension). kFlexFaithful picks the derivation through the
// side holding the attributes (the original Flex rule); kTightened takes
// the min of both.
Count NodeMaxFreq(const ElasticNode& node, const AttributeSet& vars,
                  const MaxFreqProvider& mf, ElasticMode mode) {
  if (node.atom >= 0) return mf.MaxFreq(node.atom, vars);
  auto it = node.memo.find(vars);
  if (it != node.memo.end()) return it->second;

  AttributeSet vl = Intersect(vars, node.left->attrs);
  AttributeSet vr = Intersect(vars, node.right->attrs);
  Count via_left = NodeMaxFreq(*node.left, vl, mf, mode) *
                   NodeMaxFreq(*node.right, Union(node.key, vr), mf, mode);
  Count result;
  if (mode == ElasticMode::kFlexFaithful && !vl.empty() && vr.empty()) {
    result = via_left;
  } else {
    Count via_right =
        NodeMaxFreq(*node.right, vr, mf, mode) *
        NodeMaxFreq(*node.left, Union(node.key, vl), mf, mode);
    if (mode == ElasticMode::kFlexFaithful && vl.empty() && !vr.empty()) {
      result = via_right;
    } else {
      result = std::min(via_left, via_right);
    }
  }
  node.memo.emplace(vars, result);
  return result;
}

// Elastic stability of the plan output w.r.t. one private atom: adding or
// removing one tuple of `private_atom` changes the output by at most this
// many rows (distance-0 elastic sensitivity, self-join-free).
Count NodeStability(const ElasticNode& node, int private_atom,
                    const MaxFreqProvider& mf, ElasticMode mode) {
  if (node.atom >= 0) {
    return node.atom == private_atom ? Count::One() : Count::Zero();
  }
  bool in_left = false;
  {
    // Membership test via attrs is wrong (attrs overlap); walk leaves.
    std::vector<const ElasticNode*> stack{node.left};
    while (!stack.empty()) {
      const ElasticNode* n = stack.back();
      stack.pop_back();
      if (n->atom == private_atom) {
        in_left = true;
        break;
      }
      if (n->atom < 0) {
        stack.push_back(n->left);
        stack.push_back(n->right);
      }
    }
  }
  if (in_left) {
    return NodeStability(*node.left, private_atom, mf, mode) *
           NodeMaxFreq(*node.right, node.key, mf, mode);
  }
  return NodeStability(*node.right, private_atom, mf, mode) *
         NodeMaxFreq(*node.left, node.key, mf, mode);
}

}  // namespace

StatusOr<ElasticResult> ElasticSensitivity(const ConjunctiveQuery& q,
                                           const std::vector<int>& join_order,
                                           const MaxFreqProvider& mf,
                                           ElasticMode mode) {
  const size_t m = static_cast<size_t>(q.num_atoms());
  if (join_order.size() != m || m == 0) {
    return Status::InvalidArgument("join order must list every atom once");
  }

  // Build the left-deep plan. Nodes are owned by this vector; 2m-1 total.
  std::vector<std::unique_ptr<ElasticNode>> nodes;
  auto make_leaf = [&](int atom) {
    auto leaf = std::make_unique<ElasticNode>();
    leaf->atom = atom;
    leaf->attrs = q.atom(atom).VarSet();
    nodes.push_back(std::move(leaf));
    return nodes.back().get();
  };
  const ElasticNode* plan = make_leaf(join_order[0]);
  for (size_t i = 1; i < m; ++i) {
    const ElasticNode* rhs = make_leaf(join_order[i]);
    auto join = std::make_unique<ElasticNode>();
    join->left = plan;
    join->right = rhs;
    join->attrs = Union(plan->attrs, rhs->attrs);
    join->key = Intersect(plan->attrs, rhs->attrs);
    nodes.push_back(std::move(join));
    plan = nodes.back().get();
  }

  ElasticResult result;
  result.per_atom_bound.resize(m, Count::Zero());
  result.local_sensitivity_bound = Count::Zero();
  for (size_t a = 0; a < m; ++a) {
    Count bound = NodeStability(*plan, static_cast<int>(a), mf, mode);
    result.per_atom_bound[a] = bound;
    result.local_sensitivity_bound =
        std::max(result.local_sensitivity_bound, bound);
  }
  return result;
}

StatusOr<ElasticResult> ElasticSensitivity(const ConjunctiveQuery& q,
                                           const Database& db, const Ghd* ghd,
                                           ElasticMode mode) {
  LSENS_RETURN_IF_ERROR(q.Validate(db));
  std::vector<int> order;
  if (ghd != nullptr) {
    order = PlanOrderFromGhd(*ghd);
  } else {
    auto forest = BuildJoinForestGYO(q);
    if (forest.ok()) {
      order = PlanOrderFromForest(*forest);
    } else {
      auto searched = SearchGhd(q, q.num_atoms());
      if (!searched.ok()) return searched.status();
      order = PlanOrderFromGhd(*searched);
    }
  }
  DataMaxFreqProvider mf(q, db);
  return ElasticSensitivity(q, order, mf, mode);
}

std::vector<int> PlanOrderFromForest(const JoinForest& forest) {
  std::vector<int> order;
  for (const auto& tree : forest.trees) {
    std::vector<int> post = tree.PostOrder();
    order.insert(order.end(), post.begin(), post.end());
  }
  return order;
}

std::vector<int> PlanOrderFromGhd(const Ghd& ghd) {
  std::vector<int> order;
  for (const auto& tree : ghd.forest.trees) {
    for (int bag : tree.PostOrder()) {
      const auto& atoms = ghd.bags[static_cast<size_t>(bag)].atom_indices;
      order.insert(order.end(), atoms.begin(), atoms.end());
    }
  }
  return order;
}

StatusOr<ElasticResult> ElasticSensitivityAtDistance(
    const ConjunctiveQuery& q, const std::vector<int>& join_order,
    const MaxFreqProvider& mf, uint64_t distance, ElasticMode mode) {
  DistanceShiftedMaxFreqProvider shifted(mf, distance);
  return ElasticSensitivity(q, join_order, shifted, mode);
}

StatusOr<SmoothElasticResult> SmoothElasticSensitivity(
    const ConjunctiveQuery& q, const std::vector<int>& join_order,
    const MaxFreqProvider& mf, double beta, int private_atom,
    ElasticMode mode, uint64_t max_distance) {
  if (beta <= 0.0) return Status::InvalidArgument("beta must be positive");
  if (private_atom < 0 || private_atom >= q.num_atoms()) {
    return Status::InvalidArgument("private atom out of range");
  }
  // S^(k) is a polynomial in k of degree < the number of atoms; once
  // k exceeds degree/beta the damped sequence is provably decreasing, so
  // scanning a little past that point finds the max.
  const uint64_t degree = static_cast<uint64_t>(q.num_atoms());
  const uint64_t enough = static_cast<uint64_t>(
      static_cast<double>(degree) / beta + 1.0);
  const uint64_t limit = std::min(max_distance, enough + 8);

  SmoothElasticResult result;
  for (uint64_t k = 0; k <= limit; ++k) {
    auto at_k = ElasticSensitivityAtDistance(q, join_order, mf, k, mode);
    if (!at_k.ok()) return at_k.status();
    double damped =
        std::exp(-beta * static_cast<double>(k)) *
        at_k->per_atom_bound[static_cast<size_t>(private_atom)].ToDouble();
    if (damped > result.smooth_bound) {
      result.smooth_bound = damped;
      result.argmax_distance = k;
    }
  }
  return result;
}

}  // namespace lsens
