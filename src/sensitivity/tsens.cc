#include "sensitivity/tsens.h"

#include <algorithm>
#include <utility>

#include "exec/exec_context.h"
#include "query/join_tree.h"

namespace lsens {

StatusOr<SensitivityResult> ComputeLocalSensitivity(
    const ConjunctiveQuery& q, const Database& db,
    const TSensComputeOptions& options) {
  LSENS_RETURN_IF_ERROR(q.ValidateForSensitivity(db));
  // Times the facade end-to-end (dispatch included) so the stats report
  // shows total sensitivity wall time next to the per-operator rows.
  OpTimer op(ResolveExecContext(options.join.ctx), "tsens.compute",
             db.TotalRows());

  if (options.ghd != nullptr) {
    return TSensOverGhd(q, *options.ghd, db, options);
  }

  auto forest = BuildJoinForestGYO(q);
  if (forest.ok()) {
    if (options.prefer_path_algorithm && !options.keep_tables) {
      std::vector<int> order = PathOrder(q);
      if (order.size() >= 2) return TSensPath(q, order, db, options);
    }
    return TSensOverGhd(q, MakeTrivialGhd(q, *forest), db, options);
  }

  auto searched = SearchGhd(q, q.num_atoms());
  if (!searched.ok()) return searched.status();
  return TSensOverGhd(q, *searched, db, options);
}

StatusOr<SensitivityResult> ComputeDownwardLocalSensitivity(
    const ConjunctiveQuery& q, const Database& db,
    const TSensComputeOptions& options) {
  if (options.top_k > 0) {
    return Status::Unsupported(
        "downward sensitivity needs exact multiplicity tables (top_k = 0)");
  }
  TSensComputeOptions engine_options = options;
  engine_options.keep_tables = true;
  engine_options.prefer_path_algorithm = false;
  auto full = ComputeLocalSensitivity(q, db, engine_options);
  if (!full.ok()) return full.status();

  // Restrict every atom's view to its existing rows: the max over the
  // active domain replaces the representative-domain max, and the argmax
  // becomes a concrete present tuple's shared projection.
  SensitivityResult result = *std::move(full);
  result.local_sensitivity = Count::Zero();
  result.argmax_atom = -1;
  for (AtomSensitivity& atom : result.atoms) {
    if (atom.skipped) continue;
    auto per_tuple = TupleSensitivities(result, q, db, atom.atom_index,
                                        options);
    if (!per_tuple.ok()) return per_tuple.status();
    const Relation* rel = db.Find(atom.relation);
    LSENS_CHECK(rel != nullptr);

    Count best = Count::Zero();
    size_t best_row = SIZE_MAX;
    for (size_t r = 0; r < per_tuple->size(); ++r) {
      if ((*per_tuple)[r] > best) {
        best = (*per_tuple)[r];
        best_row = r;
      }
    }
    atom.max_sensitivity = best;
    atom.argmax.clear();
    if (best_row != SIZE_MAX) {
      // Project the winning row onto the table attributes.
      const Atom& spec = q.atom(atom.atom_index);
      for (AttrId var : atom.table_attrs) {
        size_t col = 0;
        while (spec.vars[col] != var) ++col;
        atom.argmax.push_back(rel->At(best_row, col));
      }
    }
    if (atom.max_sensitivity > result.local_sensitivity ||
        (result.argmax_atom == -1 && !atom.max_sensitivity.IsZero())) {
      result.local_sensitivity = atom.max_sensitivity;
      result.argmax_atom = atom.atom_index;
    }
  }
  return result;
}

StatusOr<std::pair<int, std::vector<Value>>> MaterializeMostSensitiveTuple(
    const SensitivityResult& result, const ConjunctiveQuery& q) {
  const AtomSensitivity* best = result.MostSensitive();
  if (best == nullptr || result.local_sensitivity.IsZero()) {
    return Status::NotFound("local sensitivity is zero: every tuple is a"
                            " most sensitive tuple (sensitivity 0)");
  }
  if (best->argmax.size() != best->table_attrs.size()) {
    return Status::Unsupported(
        "argmax row unavailable (top-k approximation bound)");
  }
  const Atom& atom = q.atom(best->atom_index);
  std::vector<Value> tuple(atom.vars.size(), 0);
  for (size_t c = 0; c < atom.vars.size(); ++c) {
    AttrId var = atom.vars[c];
    auto it = std::lower_bound(best->table_attrs.begin(),
                               best->table_attrs.end(), var);
    if (it != best->table_attrs.end() && *it == var) {
      tuple[c] = best->argmax[static_cast<size_t>(
          it - best->table_attrs.begin())];
      continue;
    }
    // Free attribute: pick a value satisfying all predicates on it.
    std::vector<const Predicate*> preds;
    for (const Predicate& p : atom.predicates) {
      if (p.var == var) preds.push_back(&p);
    }
    Value v = 0;
    bool ok = preds.empty();
    for (const Predicate* candidate_source : preds) {
      Value candidate = candidate_source->SatisfyingValue();
      bool all = true;
      for (const Predicate* p : preds) all = all && p->Eval(candidate);
      if (all) {
        v = candidate;
        ok = true;
        break;
      }
    }
    if (!ok) {
      return Status::NotFound(
          "no single value satisfies all predicates on a free attribute");
    }
    tuple[c] = v;
  }
  return std::make_pair(best->atom_index, std::move(tuple));
}

}  // namespace lsens
