#ifndef LSENS_SENSITIVITY_NAIVE_H_
#define LSENS_SENSITIVITY_NAIVE_H_

#include <vector>

#include "common/count.h"
#include "common/status.h"
#include "exec/join.h"
#include "query/conjunctive_query.h"
#include "query/ghd.h"
#include "storage/database.h"

namespace lsens {

// The Theorem 3.1 baseline: compute LS(Q, D) by re-evaluating |Q| once per
// candidate change — every single-copy deletion of an existing tuple, and
// every insertion from the representative domain (Definition 3.1). Runs in
// polynomial data complexity but O(m · n^k) in the worst case; it exists as
// the correctness oracle for TSens tests and for the §7.2 runtime
// comparison ("this approach will take ×10k+ the time of TSens").
struct NaiveOptions {
  JoinOptions join;
  // Evaluation plan for cyclic queries (else GYO / GHD search per call).
  const Ghd* ghd = nullptr;
  // Hard cap on insertion candidates per relation; exceeded -> Unsupported.
  size_t max_insert_candidates = 2'000'000;
};

struct NaiveResult {
  Count local_sensitivity;
  int argmax_atom = -1;
  // Full tuple (in the atom's column order) achieving the max.
  std::vector<Value> argmax_tuple;
  // Whether the max came from an insertion (upward) or deletion (downward).
  bool argmax_is_insertion = false;
  size_t candidates_evaluated = 0;
};

// `db` is mutated during the search (tuples are inserted/removed and always
// restored); it is taken by reference to avoid cloning per candidate.
StatusOr<NaiveResult> NaiveLocalSensitivity(const ConjunctiveQuery& q,
                                            Database& db,
                                            const NaiveOptions& options = {});

// δ(t, Q, D) for one explicit candidate tuple in the relation bound by
// `atom_index` (Definition 2.1): max of upward and downward sensitivity,
// each measured by one re-evaluation.
StatusOr<Count> NaiveTupleSensitivity(const ConjunctiveQuery& q, Database& db,
                                      int atom_index,
                                      std::span<const Value> tuple,
                                      const NaiveOptions& options = {});

}  // namespace lsens

#endif  // LSENS_SENSITIVITY_NAIVE_H_
