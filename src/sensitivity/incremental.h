#ifndef LSENS_SENSITIVITY_INCREMENTAL_H_
#define LSENS_SENSITIVITY_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "sensitivity/tsens.h"
#include "storage/database.h"

namespace lsens {

class ExecContext;

// Tuning knobs for SensitivityCache.
struct SensitivityCacheConfig {
  // Change-log capacity the cache installs on every relation a cached
  // query reads (only when the relation is not already logging). Deltas
  // larger than the retained window force a full recompute.
  size_t changelog_capacity = 8192;

  // Repair is only attempted when the pending change count is at most this
  // fraction of (current total rows + pending changes) across the live
  // source tables — the pre-delta size, so delete-heavy streams that
  // shrink or even empty a relation still measure the delta against the
  // work the repair will do rather than against the shrunken size. Past
  // the fraction, a from-scratch recompute is assumed cheaper than
  // group-by-group patching. Clamped to [0, 1] at construction; a floor of
  // one change keeps single-row updates repairable at any setting.
  double max_delta_fraction = 0.05;

  // Cached (query, options) entries kept; least-recently-used beyond this.
  size_t max_entries = 16;

  // Byte budget for the repairable DynTable state held in the shared node
  // store (0 = unlimited). When the total exceeds it, shared nodes are
  // *spilled* at node granularity — stale nodes first, then least-recently-
  // used — by releasing their table storage while the node's recipe (and
  // every entry's memoized result) stays, so unchanged data still hits. A
  // spilled node reloads from the engine capture on the next dependent
  // entry's recompute.
  size_t max_state_bytes = 0;
};

// Counter block exposed for tests and reporting. The same events are also
// recorded as pseudo-operators on the caller's ExecContext ("cache.hit",
// "cache.repair", "cache.shared_assembly", "cache.node_repair",
// "cache.miss", "cache.fallback", "cache.spill") so RenderExecStats shows
// cache behavior next to the join kernels.
struct SensitivityCacheStats {
  uint64_t hits = 0;     // versions matched: cached result returned as-is
  uint64_t repairs = 0;  // this entry's pending delta repaired and returned
  uint64_t misses = 0;   // first sight of this (query, options)
  uint64_t fallback_stale = 0;        // change log could not answer
  uint64_t fallback_large_delta = 0;  // delta over max_delta_fraction
  uint64_t fallback_unsupported = 0;  // shape not repairable, recomputed
  uint64_t fallback_spilled = 0;      // state spilled by the byte budget
  uint64_t delta_rows = 0;   // change-log entries consumed by repairs
  uint64_t repair_rows = 0;  // rows touched by repairs (incl. rescans)
  uint64_t spills = 0;       // shared-node tables dropped by the budget
  uint64_t state_bytes = 0;  // current DynTable state held, in bytes

  // Cross-query sharing. Every maintained table lives in a store keyed by
  // canonical subtree signature (query/conjunctive_query.h); entries whose
  // repair DAGs overlap attach to the same nodes instead of duplicating
  // them, and one delta pass repairs each node exactly once no matter how
  // many entries depend on it.
  uint64_t shared_nodes = 0;      // gauge: distinct canonical nodes held
  uint64_t shared_attaches = 0;   // entry acquisitions that reused a node
  uint64_t node_repairs = 0;      // store nodes patched by delta passes
  uint64_t shared_assemblies = 0;  // entries refreshed purely from nodes
                                   // another entry's pass already repaired
};

// Memoizes ComputeLocalSensitivity results keyed by (query fingerprint,
// per-relation versions) and keeps the engine's internal tables (per-atom
// projections S_a, the ⊥/⊤ fold tables per GHD bag, materialized bag and
// multiplicity-component joins, per-tree join totals) in incrementally
// repairable form. Every query shape the engines evaluate is repairable —
// acyclic trees and paths, attribute-sharing multiplicity components,
// disconnected forests (cross-tree scale factors re-multiplied from
// maintained per-tree totals), and cyclic queries via searched or
// explicitly supplied GHDs. When the underlying relations change between
// calls, the cache pulls the row-level delta from each relation's change
// log and re-aggregates only the affected join-key groups (or join rows)
// instead of rebuilding every table, falling back to a full recompute only
// when the delta is large, the log window was exceeded, or the options ask
// for what repair deliberately does not model: top-k approximation and
// keep_tables stay version-memoized fallbacks. Results are bit-identical
// to the from-scratch engines in every case.
//
// Cross-query plan sharing: maintained tables are not owned per entry but
// by a store keyed by canonical subtree signature — an order-normalized,
// attribute-id-free description of the subtree (relation + keep columns +
// predicates for sources; child signatures + glue columns for fold nodes)
// that embeds child signatures verbatim, so equal signatures imply
// identical contents and column order by induction. Entries whose queries
// overlap structurally (same relations through the same projections —
// e.g. a workload of queries sharing a join prefix) attach to the same
// nodes refcounted; a single delta pass (SyncStore) walks the store once
// in dependency order and repairs each node exactly once, updating every
// attached entry's max/argmax trackers as it goes, so repair work scales
// with the number of distinct subtrees rather than the number of cached
// queries. Queries that order their variables differently derive different
// signatures and simply do not share (never incorrectly shared). Nodes
// that cannot be repaired (unanswerable log, over-budget delta,
// saturation, byte-budget spill) are marked stale with a reason; entries
// touching a stale node fall back to a full recompute, which reloads the
// node from the fresh engine capture for every dependent entry at once.
//
// A cache instance serves one Database: relations are addressed by name
// and validated by version, so feeding relations of equal names/versions
// from a different database is undefined. Not thread-safe; use one cache
// per serving thread (results are deterministic, so caches never disagree).
class SensitivityCache {
 public:
  explicit SensitivityCache(SensitivityCacheConfig config = {});
  ~SensitivityCache();
  SensitivityCache(const SensitivityCache&) = delete;
  SensitivityCache& operator=(const SensitivityCache&) = delete;

  // Compute-or-reuse LS(Q, D). `db` is non-const only so the cache can
  // install change logs on the query's relations; contents are never
  // modified. `options.join` supplies the stats context and thread count
  // for full computes exactly as the facade does — and `options.join.
  // threads` also parallelizes delta repair itself: changed join keys are
  // hash-partitioned into per-worker shards and the affected groups
  // re-aggregated on the global thread pool, with results (and every
  // counter) bit-identical to the serial repair at any thread count.
  // `options.capture` is ignored (the hook belongs to the cache: hits and
  // repairs never run an engine, so it could not be filled consistently).
  StatusOr<SensitivityResult> Compute(const ConjunctiveQuery& q, Database& db,
                                      const TSensComputeOptions& options = {});

  // Epoch-style lookup: true iff a memoized result for (q, options) is
  // current at `db`'s relation versions, copied into *out (which may be
  // null to probe only). Touches nothing — no LRU tick, no change-log
  // install, no repair, no stats — so it is safe wherever concurrent const
  // reads are (the serving layer assembles warm per-epoch result maps from
  // it after the writer's repair pass). A version mismatch returns false
  // rather than repairing; Compute is the mutating path.
  bool Peek(const ConjunctiveQuery& q, const Database& db,
            const TSensComputeOptions& options,
            SensitivityResult* out = nullptr) const;

  const SensitivityCacheStats& stats() const { return stats_; }
  void ResetStats() {
    uint64_t nodes = stats_.shared_nodes;
    uint64_t bytes = stats_.state_bytes;
    stats_ = {};
    stats_.shared_nodes = nodes;  // gauges, not counters
    stats_.state_bytes = bytes;
  }

  // Drops every entry and every shared node (stats are kept; gauges reset).
  void Clear();

  // Canonical fingerprint of (query, result-affecting options); exposed
  // for tests. Execution knobs (threads, ctx) are excluded — results are
  // bit-identical across them.
  static std::string Fingerprint(const ConjunctiveQuery& q,
                                 const TSensComputeOptions& options);

  // True when Compute would maintain repairable state for this query
  // shape (exposed for tests; reason receives a short explanation when
  // false and may be null).
  static bool RepairSupported(const ConjunctiveQuery& q,
                              const TSensComputeOptions& options,
                              std::string* reason = nullptr);

 private:
  struct Entry;
  struct Store;  // canonical-signature -> shared node map (incremental.cc)

  // One global delta pass: pulls every live source node's pending change-
  // log window, applies it, and re-aggregates affected keys through the
  // store's fold nodes in dependency order — each node exactly once,
  // updating all attached trackers. Nodes it cannot repair are marked
  // stale (with a reason) instead of aborting the pass.
  void SyncStore(Database& db, int threads, ExecContext& ctx);

  // Spills shared-node tables — stale first, then LRU — until the DynTable
  // byte total fits config_.max_state_bytes (no-op when the budget is 0).
  void EnforceStateBudget(ExecContext& ctx);

  // Drops store nodes no entry references anymore (post eviction/clear).
  void SweepStore();

  SensitivityCacheConfig config_;
  SensitivityCacheStats stats_;
  std::vector<std::unique_ptr<Entry>> entries_;  // LRU by last_used tick
  std::unique_ptr<Store> store_;
  uint64_t tick_ = 0;
};

}  // namespace lsens

#endif  // LSENS_SENSITIVITY_INCREMENTAL_H_
