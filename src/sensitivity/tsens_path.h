#ifndef LSENS_SENSITIVITY_TSENS_PATH_H_
#define LSENS_SENSITIVITY_TSENS_PATH_H_

#include <vector>

#include "common/status.h"
#include "query/conjunctive_query.h"
#include "sensitivity/result.h"
#include "sensitivity/tsens_engine.h"
#include "storage/database.h"

namespace lsens {

// Algorithm 1: local sensitivity of a path join query in O(n log n),
// independent of the output size.
//
// `order` is the chain ordering of the atoms (from PathOrder()); the
// algorithm computes topjoins ⊤(R_i) as running prefix aggregations and
// botjoins ⊥(R_i) as suffix aggregations over the single link attributes,
// then takes δ_i = max ⊤(R_i) · max ⊥(R_{i+1}) per relation. The cross
// product J × K of the paper's step III is never materialized.
//
// keep_tables is not supported here (the tables are cross products the
// algorithm exists to avoid); use TSensOverGhd when tables are needed.
StatusOr<SensitivityResult> TSensPath(const ConjunctiveQuery& q,
                                      const std::vector<int>& order,
                                      const Database& db,
                                      const TSensOptions& options = {});

}  // namespace lsens

#endif  // LSENS_SENSITIVITY_TSENS_PATH_H_
