#include "sensitivity/tsens_engine.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "exec/exec_context.h"
#include "query/atom_scan.h"
#include "query/eval.h"

namespace lsens {

namespace {

// Relations smaller than this are never worth fanning TupleSensitivities
// out: a pool round trip costs more than the lookups themselves (same
// rationale as the join layer's kParallelProbeMinRows).
constexpr size_t kParallelTupleMinRows = 4096;

// Applies atom `a`'s predicates whose variable lies in rel.attrs().
void ApplyPredicates(const Atom& atom, CountedRelation* rel) {
  std::vector<std::pair<int, Predicate>> checks;
  for (const Predicate& p : atom.predicates) {
    int col = rel->ColumnOf(p.var);
    if (col >= 0) checks.emplace_back(col, p);
  }
  if (checks.empty()) return;
  rel->Filter([&](std::span<const Value> row) {
    for (const auto& [col, pred] : checks) {
      if (!pred.Eval(row[static_cast<size_t>(col)])) return false;
    }
    return true;
  });
}

// Partitions pieces into attribute-connectivity components (pieces sharing
// a variable transitively end up together; empty-attr pieces are singleton
// components acting as scalars).
std::vector<std::vector<size_t>> ConnectivityComponents(
    const std::vector<const CountedRelation*>& pieces) {
  const size_t n = pieces.size();
  std::vector<size_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (Intersects(pieces[i]->attrs(), pieces[j]->attrs())) {
        parent[find(i)] = find(j);
      }
    }
  }
  std::vector<std::vector<size_t>> components;
  std::vector<int> comp_of(n, -1);
  for (size_t i = 0; i < n; ++i) {
    size_t root = find(i);
    if (comp_of[root] == -1) {
      comp_of[root] = static_cast<int>(components.size());
      components.emplace_back();
    }
    components[static_cast<size_t>(comp_of[root])].push_back(i);
  }
  return components;
}

}  // namespace

StatusOr<SensitivityResult> TSensOverGhd(const ConjunctiveQuery& q,
                                         const Ghd& ghd, const Database& db,
                                         const TSensOptions& options) {
  LSENS_RETURN_IF_ERROR(q.ValidateForSensitivity(db));
  ExecContext& ctx = ResolveExecContext(options.join.ctx);
  const int num_atoms = q.num_atoms();
  const size_t num_bags = ghd.bags.size();
  const int threads = options.join.threads;

  // S_a: shared-variable projections with predicates applied. Relation
  // lookups stay serial (Status propagation stays simple); the per-atom
  // projection + normalize work fans out, each task on its own worker
  // context.
  std::vector<const Relation*> atom_rels(static_cast<size_t>(num_atoms));
  for (int a = 0; a < num_atoms; ++a) {
    auto rel = db.Get(q.atom(a).relation);
    if (!rel.ok()) return rel.status();
    atom_rels[static_cast<size_t>(a)] = *rel;
  }
  std::vector<CountedRelation> s;
  s.reserve(static_cast<size_t>(num_atoms));
  for (int a = 0; a < num_atoms; ++a) s.emplace_back(AttributeSet{});
  ParallelApply(ctx, threads, static_cast<size_t>(num_atoms),
                [&](size_t a, ExecContext& wctx) {
                  const int ai = static_cast<int>(a);
                  s[a] = ScanAtom(
                      *atom_rels[a], q.atom(ai), q.SharedVarsOf(ai), &wctx);
                });

  std::vector<int> bag_of(static_cast<size_t>(num_atoms), -1);
  for (size_t v = 0; v < num_bags; ++v) {
    for (int a : ghd.bags[v].atom_indices) bag_of[static_cast<size_t>(a)] =
        static_cast<int>(v);
  }
  for (int a = 0; a < num_atoms; ++a) {
    if (bag_of[static_cast<size_t>(a)] == -1) {
      return Status::InvalidArgument("GHD does not cover atom " +
                                     std::to_string(a));
    }
  }

  const size_t num_trees = ghd.forest.trees.size();
  // Capture slots are pre-sized here so the concurrent tree/atom tasks
  // below only ever write disjoint elements.
  if (options.capture != nullptr) {
    options.capture->bot_join.assign(num_bags, std::nullopt);
    options.capture->top_join.assign(num_bags, std::nullopt);
    options.capture->root_join.assign(num_trees, std::nullopt);
    options.capture->atom_components.assign(static_cast<size_t>(num_atoms),
                                            {});
  }
  std::vector<Count> tree_total(num_trees, Count::Zero());
  // ⊥ and ⊤ per bag; *_use are the (possibly top-k truncated) versions
  // consumed by the recursions, *_full the untruncated ones consumed by the
  // multiplicity-table step.
  std::vector<std::optional<CountedRelation>> bot_full(num_bags);
  std::vector<std::optional<CountedRelation>> bot_use(num_bags);
  std::vector<std::optional<CountedRelation>> top_full(num_bags);
  std::vector<std::optional<CountedRelation>> top_use(num_bags);
  // Per-tree so concurrent trees never share a flag; OR-reduced below.
  std::vector<uint8_t> tree_truncated(num_trees, 0);

  // The ⊥/⊤ recursions of one tree are order-dependent (post/pre order),
  // but distinct trees of the decomposition forest touch disjoint bags —
  // disconnected components run concurrently, each on its own context.
  // Within a tree the FoldJoins parallelize internally (partitioned probe)
  // whenever this pass runs on the main thread.
  auto run_tree = [&](size_t t, ExecContext& tctx, const JoinOptions& jopts) {
    const JoinTree& tree = ghd.forest.trees[t];
    auto maybe_truncate = [&](const CountedRelation& full) {
      CountedRelation trunc = full;
      if (options.top_k > 0 && trunc.NumRows() > options.top_k) {
        trunc.TruncateTopK(options.top_k, &tctx);
        tree_truncated[t] = 1;
      }
      return trunc;
    };
    // Botjoins, leaves to root (Eq. 7 generalized to bags).
    for (int bag : tree.PostOrder()) {
      const GhdBag& spec = ghd.bags[static_cast<size_t>(bag)];
      std::vector<const CountedRelation*> pieces;
      for (int a : spec.atom_indices) {
        pieces.push_back(&s[static_cast<size_t>(a)]);
      }
      for (int c : tree.Children(bag)) {
        pieces.push_back(&*bot_use[static_cast<size_t>(c)]);
      }
      CountedRelation folded = FoldJoin(std::move(pieces), jopts);
      int parent = tree.Parent(bag);
      if (parent == -1) {
        tree_total[t] = folded.TotalCount();
        if (options.capture != nullptr && num_trees >= 2) {
          options.capture->root_join[t] = std::move(folded);
        }
      } else {
        AttributeSet link = Intersect(
            spec.vars, ghd.bags[static_cast<size_t>(parent)].vars);
        bot_full[static_cast<size_t>(bag)] = GroupBySum(folded, link, &tctx);
        bot_use[static_cast<size_t>(bag)] =
            maybe_truncate(*bot_full[static_cast<size_t>(bag)]);
        if (options.capture != nullptr && spec.atom_indices.size() >= 2) {
          options.capture->bot_join[static_cast<size_t>(bag)] =
              std::move(folded);
        }
      }
    }
    // Topjoins, root to leaves (Eq. 8 generalized to bags).
    for (int bag : tree.PreOrder()) {
      int p = tree.Parent(bag);
      if (p == -1) continue;
      const GhdBag& spec = ghd.bags[static_cast<size_t>(bag)];
      const GhdBag& pspec = ghd.bags[static_cast<size_t>(p)];
      std::vector<const CountedRelation*> pieces;
      for (int a : pspec.atom_indices) {
        pieces.push_back(&s[static_cast<size_t>(a)]);
      }
      if (tree.Parent(p) != -1) {
        pieces.push_back(&*top_use[static_cast<size_t>(p)]);
      }
      for (int sibling : tree.Neighbors(bag)) {
        pieces.push_back(&*bot_use[static_cast<size_t>(sibling)]);
      }
      CountedRelation folded = FoldJoin(std::move(pieces), jopts);
      AttributeSet link = Intersect(spec.vars, pspec.vars);
      top_full[static_cast<size_t>(bag)] = GroupBySum(folded, link, &tctx);
      top_use[static_cast<size_t>(bag)] =
          maybe_truncate(*top_full[static_cast<size_t>(bag)]);
      if (options.capture != nullptr && pspec.atom_indices.size() >= 2) {
        options.capture->top_join[static_cast<size_t>(bag)] =
            std::move(folded);
      }
    }
  };
  if (ShouldRunParallel(threads, num_trees)) {
    ParallelApply(ctx, threads, num_trees, [&](size_t t, ExecContext& wctx) {
      run_tree(t, wctx, WorkerJoinOptions(options.join, wctx));
    });
  } else {
    for (size_t t = 0; t < num_trees; ++t) run_tree(t, ctx, options.join);
  }
  bool truncation_applied = false;
  for (uint8_t f : tree_truncated) truncation_applied = truncation_applied || f;

  // Multiplicity tables T_a (Eq. 6 generalized: within-bag co-atoms join
  // in). The per-atom subproblems only read shared state (s, the ⊥/⊤
  // tables, tree totals) and write disjoint result.atoms slots, so they
  // fan out one task per atom; the winner reduction runs afterwards in
  // atom order, exactly matching the serial tie-breaking.
  SensitivityResult result;
  result.local_sensitivity = Count::Zero();
  result.atoms.resize(static_cast<size_t>(num_atoms));
  auto compute_atom = [&](int a, ExecContext& actx, const JoinOptions& jopts) {
    AtomSensitivity& out = result.atoms[static_cast<size_t>(a)];
    out.atom_index = a;
    out.relation = q.atom(a).relation;
    out.table_attrs = q.SharedVarsOf(a);
    out.free_vars = q.ExclusiveVarsOf(a);
    out.max_sensitivity = Count::Zero();
    if (std::find(options.skip_atoms.begin(), options.skip_atoms.end(), a) !=
        options.skip_atoms.end()) {
      out.skipped = true;
      return;
    }

    const int v = bag_of[static_cast<size_t>(a)];
    const int t = ghd.forest.TreeOf(v);
    LSENS_CHECK(t >= 0);
    const JoinTree& tree = ghd.forest.trees[static_cast<size_t>(t)];

    std::vector<const CountedRelation*> pieces;
    if (tree.Parent(v) != -1) {
      pieces.push_back(&*top_full[static_cast<size_t>(v)]);
    }
    for (int c : tree.Children(v)) {
      pieces.push_back(&*bot_full[static_cast<size_t>(c)]);
    }
    for (int b : ghd.bags[static_cast<size_t>(v)].atom_indices) {
      if (b != a) pieces.push_back(&s[static_cast<size_t>(b)]);
    }

    // Scale factor from the other connected components (§5.4 disconnected
    // join trees): adding a tuple here combines with every full result of
    // the other components.
    Count scale = Count::One();
    for (size_t t2 = 0; t2 < num_trees; ++t2) {
      if (t2 != static_cast<size_t>(t)) scale *= tree_total[t2];
    }

    // Fold each attribute-connectivity component separately;
    // T_a = ⨯ components, and γ/max/argmax distribute over the product.
    std::vector<std::vector<size_t>> components =
        ConnectivityComponents(pieces);
    std::vector<CountedRelation> comp_tables;
    comp_tables.reserve(components.size());
    Count max_product = scale;
    for (const auto& comp : components) {
      std::vector<const CountedRelation*> comp_pieces;
      for (size_t idx : comp) comp_pieces.push_back(pieces[idx]);
      CountedRelation folded = FoldJoin(std::move(comp_pieces), jopts);
      AttributeSet group = Intersect(out.table_attrs, folded.attrs());
      const bool group_is_full = group == folded.attrs();
      TSensCapture::AtomComponent* cap = nullptr;
      if (options.capture != nullptr) {
        cap = &options.capture->atom_components[static_cast<size_t>(a)]
                   .emplace_back();
        // Multi-piece folds must be kept whole (no single piece covers
        // them); grouped tables only when grouping actually projected.
        if (comp.size() >= 2) cap->join = folded;
      }
      CountedRelation table = group_is_full
                                  ? std::move(folded)
                                  : GroupBySum(folded, group, &actx);
      if (cap != nullptr && !group_is_full) cap->table = table;
      ApplyPredicates(q.atom(a), &table);
      max_product *= table.MaxCount();
      comp_tables.push_back(std::move(table));
    }
    out.max_sensitivity = max_product;
    out.approximate = truncation_applied;

    // Stitch the argmax row from the per-component argmax rows.
    if (!out.max_sensitivity.IsZero()) {
      bool argmax_known = true;
      std::vector<Value> argmax(out.table_attrs.size(), 0);
      for (const CountedRelation& table : comp_tables) {
        size_t r = table.ArgMaxRow();
        if (table.arity() == 0) continue;  // scalar component, no values
        if (r == SIZE_MAX) {
          argmax_known = false;  // empty or attained by a top-k default
          break;
        }
        std::span<const Value> row = table.Row(r);
        for (size_t j = 0; j < table.attrs().size(); ++j) {
          auto it = std::lower_bound(out.table_attrs.begin(),
                                     out.table_attrs.end(), table.attrs()[j]);
          LSENS_CHECK(it != out.table_attrs.end() && *it == table.attrs()[j]);
          argmax[static_cast<size_t>(it - out.table_attrs.begin())] = row[j];
        }
      }
      if (argmax_known) out.argmax = std::move(argmax);
    }

    if (options.keep_tables) {
      // Materialize the cross product of the components (all pairwise
      // attribute-disjoint, so FoldJoin emits pure cross products).
      std::vector<const CountedRelation*> comp_ptrs;
      for (const auto& ct : comp_tables) comp_ptrs.push_back(&ct);
      CountedRelation table =
          comp_tables.empty() ? CountedRelation::Unit()
                              : FoldJoin(std::move(comp_ptrs), jopts);
      // FoldJoin rejects all-defaulted inputs; top-k combined with
      // keep_tables is not supported (exact tables are the point).
      table.ScaleCounts(scale, &actx);
      if (table.attrs() != out.table_attrs) {
        // Components may be scalars (empty attrs); regroup to be safe.
        table = GroupBySum(table, Intersect(out.table_attrs, table.attrs()),
                           &actx);
      }
      out.table = std::move(table);
    }
  };

  // Per-atom task parallelism pays off once two or more tables actually
  // get computed; otherwise stay serial so the single atom's joins keep
  // their partitioned-probe parallelism (regions never nest).
  size_t unskipped = 0;
  for (int a = 0; a < num_atoms; ++a) {
    if (std::find(options.skip_atoms.begin(), options.skip_atoms.end(), a) ==
        options.skip_atoms.end()) {
      ++unskipped;
    }
  }
  if (ShouldRunParallel(threads, unskipped)) {
    ParallelApply(ctx, threads, static_cast<size_t>(num_atoms),
                  [&](size_t a, ExecContext& wctx) {
                    compute_atom(static_cast<int>(a), wctx,
                                 WorkerJoinOptions(options.join, wctx));
                  });
  } else {
    for (int a = 0; a < num_atoms; ++a) compute_atom(a, ctx, options.join);
  }

  for (int a = 0; a < num_atoms; ++a) {
    const AtomSensitivity& out = result.atoms[static_cast<size_t>(a)];
    if (out.max_sensitivity > result.local_sensitivity ||
        (result.argmax_atom == -1 && !out.max_sensitivity.IsZero())) {
      result.local_sensitivity = out.max_sensitivity;
      result.argmax_atom = a;
    }
  }
  if (options.capture != nullptr) {
    options.capture->s_sig.clear();
    options.capture->s_sig.reserve(s.size());
    for (size_t a = 0; a < s.size(); ++a) {
      options.capture->s_sig.push_back(CanonicalSourceSignature(
          q.atom(static_cast<int>(a)), s[a].attrs()));
    }
    options.capture->s = std::move(s);
    options.capture->bot = std::move(bot_full);
    options.capture->top = std::move(top_full);
    options.capture->tree_total = tree_total;
  }
  return result;
}

StatusOr<std::vector<Count>> TupleSensitivities(const SensitivityResult& result,
                                                const ConjunctiveQuery& q,
                                                const Database& db,
                                                int atom_index,
                                                const TSensOptions& options) {
  if (atom_index < 0 || atom_index >= static_cast<int>(result.atoms.size())) {
    return Status::InvalidArgument("atom index out of range");
  }
  const AtomSensitivity& as = result.atoms[static_cast<size_t>(atom_index)];
  if (!as.table.has_value()) {
    return Status::InvalidArgument(
        "multiplicity table not stored; compute with keep_tables = true");
  }
  const Atom& atom = q.atom(atom_index);
  auto rel_or = db.Get(atom.relation);
  if (!rel_or.ok()) return rel_or.status();
  const Relation& rel = **rel_or;

  // Column routing: table attr j lives at relation column cols[j].
  std::vector<size_t> cols(as.table_attrs.size());
  for (size_t j = 0; j < as.table_attrs.size(); ++j) {
    size_t c = 0;
    while (atom.vars[c] != as.table_attrs[j]) ++c;
    cols[j] = c;
  }
  std::vector<size_t> pred_cols(atom.predicates.size());
  for (size_t p = 0; p < atom.predicates.size(); ++p) {
    size_t c = 0;
    while (atom.vars[c] != atom.predicates[p].var) ++c;
    pred_cols[p] = c;
  }

  // Per-tuple δ lookups are independent reads of the (normalized, hence
  // immutable) multiplicity table; each row writes only its own slot, so
  // the chunked fan-out below returns the exact serial vector. The scan
  // reads the relation's key and predicate columns directly — resolved to
  // column spans once here — instead of materializing row tuples.
  ExecContext& ctx = ResolveExecContext(options.join.ctx);
  OpTimer op(ctx, "tsens.tuple_sens", rel.NumRows());
  const size_t n = rel.NumRows();
  std::vector<std::span<const Value>> key_spans(cols.size());
  for (size_t j = 0; j < cols.size(); ++j) key_spans[j] = rel.Column(cols[j]);
  std::vector<std::span<const Value>> pred_spans(pred_cols.size());
  for (size_t p = 0; p < pred_cols.size(); ++p) {
    pred_spans[p] = rel.Column(pred_cols[p]);
  }
  std::vector<Count> out(n, Count::Zero());
  auto lookup_range = [&](size_t begin, size_t end) {
    std::vector<Value> key(cols.size());
    for (size_t i = begin; i < end; ++i) {
      bool pass = true;
      for (size_t p = 0; p < atom.predicates.size() && pass; ++p) {
        pass = atom.predicates[p].Eval(pred_spans[p][i]);
      }
      if (!pass) continue;
      for (size_t j = 0; j < cols.size(); ++j) key[j] = key_spans[j][i];
      out[i] = as.table->Lookup(key);
    }
  };
  const int threads = options.join.threads;
  if (ShouldRunParallel(threads, n) && n >= kParallelTupleMinRows) {
    const size_t parts = std::min(static_cast<size_t>(threads), n);
    ParallelApply(ctx, threads, parts, [&](size_t p, ExecContext&) {
      lookup_range(p * n / parts, (p + 1) * n / parts);
    });
  } else {
    lookup_range(0, n);
  }
  op.set_rows_out(n);
  return out;
}

}  // namespace lsens
