#include "exec/flat_row_index.h"

namespace lsens {

void FlatRowIndex::Clear() {
  for (Slot& slot : slots_) slot = Slot{};
  live_ = 0;
  tombstones_ = 0;
}

void FlatRowIndex::Reserve(size_t entries) {
  if (FlatProbeBucketCount(entries) > slots_.size()) Rehash(entries);
}

size_t FlatRowIndex::FindInsertSlot(uint64_t hash) {
  FlatProbeSeq seq(hash, slots_.size() - 1);
  uint64_t steps = 1;
  while (slots_[seq.idx].row != kEmpty &&
         slots_[seq.idx].row != kTombstone) {
    seq.Next();
    ++steps;
  }
  probe_steps_ += steps;
  return seq.idx;
}

void FlatRowIndex::Rehash(size_t entries) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(FlatProbeBucketCount(entries), Slot{});
  tombstones_ = 0;  // compaction: tombstones are not carried over
  ++rehashes_;
  for (const Slot& slot : old) {
    if (slot.row == kEmpty || slot.row == kTombstone) continue;
    slots_[FindInsertSlot(slot.hash)] = slot;
  }
}

void FlatRowIndex::InsertAt(Cursor cur, uint64_t hash, uint32_t row) {
  LSENS_CHECK(row < kTombstone);
  if (NeedsRehash()) {
    Rehash(live_ + 1);
    cur.slot = FindInsertSlot(hash);
  }
  Slot& slot = slots_[cur.slot];
  if (slot.row == kTombstone) --tombstones_;
  slot.hash = hash;
  slot.row = row;
  ++live_;
}

void FlatRowIndex::EraseAt(Cursor cur) {
  Slot& slot = slots_[cur.slot];
  LSENS_CHECK(slot.row == cur.row && cur.row < kTombstone);
  slot.row = kTombstone;
  --live_;
  ++tombstones_;
}

}  // namespace lsens
