#ifndef LSENS_EXEC_FLAT_ROW_INDEX_H_
#define LSENS_EXEC_FLAT_ROW_INDEX_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace lsens {

// The probing scheme every flat hash structure in exec/ shares: linear
// probing over a power-of-two bucket array at load factor <= 0.5, with
// collisions resolved by the caller verifying actual row values (a 64-bit
// mixed hash plus verification can never produce a wrong match).
// FlatGroupTable (the immutable batch-built join index) and FlatRowIndex
// (the mutable index under DynTable) both sit on these two primitives, so
// the layout is tested once and tuned once.

// Bucket count for `entries` live entries: next power of two >= 2*entries
// (and at least 8), i.e. load factor <= 0.5.
inline size_t FlatProbeBucketCount(size_t entries) {
  return std::bit_ceil(std::max<size_t>(2 * entries, 8));
}

// Linear probe cursor over a power-of-two bucket array.
struct FlatProbeSeq {
  size_t idx;
  size_t mask;

  FlatProbeSeq(uint64_t hash, size_t mask)
      : idx(static_cast<size_t>(hash) & mask), mask(mask) {}
  void Next() { idx = (idx + 1) & mask; }
};

// Open-addressing hash -> row-id index with tombstones: the mutable
// counterpart of FlatGroupTable's bucket array, built for DynTable's
// primary and secondary indexes. One probe sequence (Locate) resolves
// lookup, insert position, and erase at once; entries are unique per key —
// DynTable's secondary indexes keep one entry per distinct projected key
// and chain that key's rows through intrusive per-row links (duplicate
// hashes stored as separate slots would merge into one long probe cluster,
// the classic linear-probing failure mode for group indexes).
//
// Deletion writes a tombstone (probe chains stay intact); rehashing drops
// every tombstone (compaction) and resizes for the live count only, so a
// table that shrinks also releases probe-chain debris. Stats (probe steps,
// rehashes) are counted only on the mutating paths — const lookups run
// concurrently during sharded repair and must not write anything.
class FlatRowIndex {
 public:
  static constexpr uint32_t kNoRow = UINT32_MAX;

  FlatRowIndex() = default;

  size_t size() const { return live_; }
  size_t bucket_count() const { return slots_.size(); }
  uint64_t probe_steps() const { return probe_steps_; }
  uint64_t rehashes() const { return rehashes_; }
  size_t MemoryBytes() const { return slots_.capacity() * sizeof(Slot); }

  // Drops the contents but keeps the bucket array allocated.
  void Clear();

  // Grows the bucket array (compacting tombstones) so `entries` live
  // entries fit without a further rehash.
  void Reserve(size_t entries);

  // One probe answering every question at once: the row whose stored hash
  // is `hash` and whose row id passes `eq` (kNoRow when absent), plus the
  // slot an insert of this key would use (first tombstone on the probe
  // path, else the terminating empty slot). `eq(row)` must verify the
  // actual key values, exactly like FlatGroupTable's representative-row
  // check.
  struct Cursor {
    size_t slot = SIZE_MAX;
    uint32_t row = kNoRow;
  };
  template <typename Eq>
  Cursor Locate(uint64_t hash, Eq&& eq) const {
    if (slots_.empty()) return Cursor{};
    size_t insert_slot = SIZE_MAX;
    FlatProbeSeq seq(hash, slots_.size() - 1);
    for (;;) {
      const Slot& slot = slots_[seq.idx];
      if (slot.row == kEmpty) {
        return Cursor{insert_slot == SIZE_MAX ? seq.idx : insert_slot,
                      kNoRow};
      }
      if (slot.row == kTombstone) {
        if (insert_slot == SIZE_MAX) insert_slot = seq.idx;
      } else if (slot.hash == hash && eq(slot.row)) {
        return Cursor{seq.idx, slot.row};
      }
      seq.Next();
    }
  }

  // Inserts (hash, row) at the vacant cursor a Locate miss returned. May
  // rehash first (growth or tombstone pressure), in which case the slot is
  // re-derived internally — the caller never probes twice.
  void InsertAt(Cursor cur, uint64_t hash, uint32_t row);

  // Tombstones the occupied slot a Locate hit returned.
  void EraseAt(Cursor cur);

  // Rebinds the occupied slot a Locate hit returned to a new row id —
  // group-head rotation in DynTable's secondary indexes, without a second
  // probe.
  void SetRowAt(Cursor cur, uint32_t row) {
    LSENS_CHECK(slots_[cur.slot].row == cur.row && row < kTombstone);
    slots_[cur.slot].row = row;
  }

 private:
  // Row-id sentinels keep the slot at 16 bytes with no separate state
  // byte; DynTable row ids are dense uint32 indices and never reach them.
  static constexpr uint32_t kEmpty = UINT32_MAX;
  static constexpr uint32_t kTombstone = UINT32_MAX - 1;

  struct Slot {
    uint64_t hash = 0;
    uint32_t row = kEmpty;
  };

  // True when one more entry would push occupied slots (live + tombstones)
  // past the 0.5 load factor.
  bool NeedsRehash() const {
    return slots_.empty() ||
           2 * (live_ + tombstones_ + 1) > slots_.size();
  }
  // Rebuilds the bucket array sized for `entries` live entries, dropping
  // every tombstone.
  void Rehash(size_t entries);
  // The slot an insert of a known-absent key uses: first tombstone or
  // empty slot on the probe path.
  size_t FindInsertSlot(uint64_t hash);

  std::vector<Slot> slots_;
  size_t live_ = 0;
  size_t tombstones_ = 0;
  uint64_t probe_steps_ = 0;  // mutating paths only (see class comment)
  uint64_t rehashes_ = 0;
};

}  // namespace lsens

#endif  // LSENS_EXEC_FLAT_ROW_INDEX_H_
