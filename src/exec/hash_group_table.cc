#include "exec/hash_group_table.h"

#include "exec/flat_row_index.h"

namespace lsens {

uint64_t HashRowKey(std::span<const Value> row, std::span<const int> cols) {
  uint64_t h = kValueHashSeed;
  for (int c : cols) {
    h = HashValueFold(h, row[static_cast<size_t>(c)]);
  }
  return h;
}

void HashRowKeysBatch(const CountedRelation& rel, std::span<const int> cols,
                      std::vector<Value>& gather,
                      std::vector<uint64_t>& hashes) {
  const size_t n = rel.NumRows();
  hashes.resize(n);
  HashValuesBatchSeed(hashes);
  gather.resize(n);
  for (int c : cols) {
    rel.GatherColumn(c, gather);
    HashValuesBatchFold(gather, hashes);
  }
}

namespace {

bool KeysMatch(std::span<const Value> ra, std::span<const int> ca,
               std::span<const Value> rb, std::span<const int> cb) {
  for (size_t i = 0; i < ca.size(); ++i) {
    if (ra[static_cast<size_t>(ca[i])] != rb[static_cast<size_t>(cb[i])]) {
      return false;
    }
  }
  return true;
}

}  // namespace

void FlatGroupTable::Build(const CountedRelation& rel,
                           std::span<const int> key_cols) {
  const size_t n = rel.NumRows();
  LSENS_CHECK_MSG(n < UINT32_MAX, "FlatGroupTable is limited to 2^32-1 rows");
  rel_ = &rel;
  key_cols_.assign(key_cols.begin(), key_cols.end());

  // Shared flat-probe policy (exec/flat_row_index.h): power-of-two bucket
  // array at load factor <= 0.5, linear probing.
  const size_t cap = FlatProbeBucketCount(n);
  mask_ = cap - 1;
  slots_.assign(cap, Slot{});
  row_slot_.resize(n);
  rows_.resize(n);
  num_groups_ = 0;

  // Key hashes for the whole build side in one column-batch pass; the
  // insertion loop below then touches row data only to verify colliding
  // keys.
  HashRowKeysBatch(rel, key_cols_, gather_, hashes_);

  // Pass 1: count group sizes, linear-probing each row's key.
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = hashes_[i];
    FlatProbeSeq seq(h, mask_);
    for (;;) {
      Slot& slot = slots_[seq.idx];
      if (slot.size == 0) {
        slot.hash = h;
        slot.rep = static_cast<uint32_t>(i);
        slot.size = 1;
        ++num_groups_;
        break;
      }
      if (slot.hash == h &&
          KeysMatch(rel.Row(slot.rep), key_cols_, rel.Row(i), key_cols_)) {
        ++slot.size;
        break;
      }
      seq.Next();
    }
    row_slot_[i] = static_cast<uint32_t>(seq.idx);
  }

  // Assign each group a contiguous run in rows_, then scatter.
  uint32_t offset = 0;
  for (Slot& slot : slots_) {
    if (slot.size == 0) continue;
    slot.begin = offset;
    slot.cursor = offset;
    offset += slot.size;
  }
  for (size_t i = 0; i < n; ++i) {
    Slot& slot = slots_[row_slot_[i]];
    rows_[slot.cursor++] = static_cast<uint32_t>(i);
  }
}

std::span<const uint32_t> FlatGroupTable::Probe(
    std::span<const Value> row, std::span<const int> probe_cols) const {
  return Probe(row, probe_cols, HashRowKey(row, probe_cols));
}

std::span<const uint32_t> FlatGroupTable::Probe(std::span<const Value> row,
                                                std::span<const int> probe_cols,
                                                uint64_t hash) const {
  FlatProbeSeq seq(hash, mask_);
  for (;;) {
    const Slot& slot = slots_[seq.idx];
    if (slot.size == 0) return {};
    if (slot.hash == hash &&
        KeysMatch(rel_->Row(slot.rep), key_cols_, row, probe_cols)) {
      return {rows_.data() + slot.begin, slot.size};
    }
    seq.Next();
  }
}

}  // namespace lsens
