#ifndef LSENS_EXEC_FOLD_JOIN_H_
#define LSENS_EXEC_FOLD_JOIN_H_

#include <vector>

#include "exec/join.h"

namespace lsens {

// Joins a set of counted relations into one, choosing the join order
// greedily: the accumulator starts at the piece with the fewest rows (among
// non-defaulted pieces) and each step picks the remaining piece minimizing
// the *exact* result-row count (computed by EstimateJoinRows), preferring
// attribute-sharing pieces over cross products. Defaulted (top-k) pieces
// are only joined once the accumulator covers their attributes; if that
// never happens, their truncation is undone (sound — it only tightens the
// upper bound back to the exact value).
//
// This is the workhorse behind the paper's r⋈(X1, ..., Xp) expressions:
// botjoins/topjoins (Eq. 7–8), multiplicity tables (Eq. 6, including the
// potentially cyclic joins of §5.2's hard example), bag materialization for
// GHDs, and query-count evaluation.
//
// An empty `pieces` yields the unit relation.
CountedRelation FoldJoin(std::vector<const CountedRelation*> pieces,
                         const JoinOptions& options = {});

}  // namespace lsens

#endif  // LSENS_EXEC_FOLD_JOIN_H_
