#ifndef LSENS_EXEC_EXEC_CONTEXT_H_
#define LSENS_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/count.h"
#include "common/timer.h"
#include "exec/hash_group_table.h"
#include "exec/row_sort.h"
#include "storage/value.h"

namespace lsens {

class ExecContextPool;

// Aggregate counters for one operator kind ("join.hash", "normalize", ...).
// Wall times of nested operators overlap: a join's time includes the time
// of the Normalize it runs on its output, which is also reported under
// "normalize".
struct OperatorStats {
  std::string name;
  uint64_t calls = 0;
  uint64_t rows_in = 0;     // Σ explicit input rows over all calls
  uint64_t rows_out = 0;    // Σ output rows over all calls
  uint64_t build_rows = 0;  // Σ hash-build-side rows (join/semijoin only)
  double wall_seconds = 0.0;
};

// Execution state threaded through the exec and sensitivity layers: owns
// the reusable arenas (sort permutations, row/key scratch, the flat hash
// group table, normalize rebuild buffers) so hot operators allocate O(1)
// times per context instead of per invocation, collects per-operator stats,
// and carries execution knobs.
//
// Ownership rule under parallel execution:
//   - A context is single-threaded state: one owner thread at a time,
//     never shared across concurrently running threads.
//   - Callers pass a context through JoinOptions::ctx (and thus
//     TSensOptions::join.ctx). Operators that receive none fall back to a
//     thread-local default so arena reuse still happens — but ONLY on
//     non-pool threads. On a pooled worker the fallback is a hidden trap
//     (stats silently vanish into a per-thread context nobody merges, and
//     a future reuse of that worker for a different caller would mix
//     arenas), so DefaultExecContext() asserts (debug builds) that it is
//     never reached from a ThreadPool worker. Code that runs inside a
//     parallel region must use the worker context ParallelApply hands it.
//   - The primary context owns a lazily created ExecContextPool of worker
//     contexts (one per global-pool worker). ParallelApply hands task
//     blocks their worker's context and afterwards merges the workers'
//     stats back into the primary, deterministically, so a parallel run
//     reports the same per-operator calls/rows as the serial run.
class ExecContext {
 public:
  ExecContext() = default;
  ~ExecContext();
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  // --- Knobs -------------------------------------------------------------
  // When false, Record() is a no-op (arenas still reused).
  bool collect_stats = true;

  // --- Arenas ------------------------------------------------------------
  // Distinct slots so concurrently-live uses inside one operator never
  // alias (e.g. sort-merge join holds both side permutations while the
  // final Normalize uses its own).
  std::vector<uint32_t>& perm_a() { return perm_a_; }
  std::vector<uint32_t>& perm_b() { return perm_b_; }
  std::vector<uint32_t>& norm_perm() { return norm_perm_; }
  std::vector<Value>& value_buf() { return value_buf_; }
  std::vector<Count>& count_buf() { return count_buf_; }
  std::vector<Value>& row_buf() { return row_buf_; }
  std::vector<Value>& key_buf() { return key_buf_; }
  std::vector<int>& col_buf() { return col_buf_; }
  std::vector<SortKeyRef>& sort_keys() { return sort_keys_; }
  std::vector<SortKeyRef>& sort_keys_tmp() { return sort_keys_tmp_; }
  std::vector<SortKey64>& sort_keys64() { return sort_keys64_; }
  std::vector<SortKey64>& sort_keys64_tmp() { return sort_keys64_tmp_; }
  std::vector<uint32_t>& sel_buf() { return sel_buf_; }
  std::vector<uint64_t>& hash_buf() { return hash_buf_; }
  std::vector<Value>& gather_buf() { return gather_buf_; }
  FlatGroupTable& group_table() { return group_table_; }

  // --- Stats -------------------------------------------------------------
  void Record(std::string_view op, uint64_t rows_in, uint64_t rows_out,
              uint64_t build_rows, double wall_seconds);
  // Folds another context's totals for one operator into this context
  // (find-or-append by name, all fields summed).
  void MergeStats(const OperatorStats& other);
  const std::vector<OperatorStats>& stats() const { return stats_; }
  bool has_stats() const { return !stats_.empty(); }
  void ResetStats() { stats_.clear(); }
  // Stats for one operator, or nullptr if it never ran.
  const OperatorStats* FindStats(std::string_view op) const;

  // --- Parallel workers --------------------------------------------------
  // True for contexts created by an ExecContextPool (i.e. handed to tasks
  // running on pool worker threads).
  bool is_pool_worker() const { return is_pool_worker_; }
  // The lazily created pool of worker contexts parallel regions draw from.
  // Owned by this (primary) context so worker arenas are reused across
  // parallel regions exactly like the primary's arenas are across calls.
  ExecContextPool& worker_contexts();

 private:
  friend class ExecContextPool;

  std::vector<uint32_t> perm_a_;
  std::vector<uint32_t> perm_b_;
  std::vector<uint32_t> norm_perm_;
  std::vector<Value> value_buf_;
  std::vector<Count> count_buf_;
  std::vector<Value> row_buf_;
  std::vector<Value> key_buf_;
  std::vector<int> col_buf_;
  std::vector<SortKeyRef> sort_keys_;
  std::vector<SortKeyRef> sort_keys_tmp_;
  std::vector<SortKey64> sort_keys64_;
  std::vector<SortKey64> sort_keys64_tmp_;
  std::vector<uint32_t> sel_buf_;
  std::vector<uint64_t> hash_buf_;
  std::vector<Value> gather_buf_;
  FlatGroupTable group_table_;
  std::vector<OperatorStats> stats_;  // small: one entry per operator kind
  bool is_pool_worker_ = false;
  std::unique_ptr<ExecContextPool> workers_;
};

// A set of per-worker ExecContexts for one parallel region owner. Context i
// belongs exclusively to global-pool worker i while a region is running;
// between regions the owning (primary) context's thread may touch them
// (merging stats, tests). Contexts are never shared across workers — each
// holds its own arenas — and persist across regions for arena reuse.
class ExecContextPool {
 public:
  ExecContextPool() = default;
  ExecContextPool(const ExecContextPool&) = delete;
  ExecContextPool& operator=(const ExecContextPool&) = delete;

  // Grows the pool to at least `n` contexts (never shrinks), each marked
  // as a pool worker and carrying `collect_stats`.
  void Ensure(size_t n, bool collect_stats);

  size_t size() const { return contexts_.size(); }
  ExecContext& context(size_t i) { return *contexts_[i]; }

  // Folds every worker's stats into `into` and clears the workers'.
  // Deterministic: operator names are merged in sorted order, workers in
  // index order, so the integer fields of the merged profile are
  // bit-identical run to run (and equal to a serial run's — wall times,
  // being wall times, are not).
  void MergeStatsInto(ExecContext& into);

 private:
  std::vector<std::unique_ptr<ExecContext>> contexts_;
};

// The thread-local fallback context used when callers pass none. Asserts
// (debug builds) that it is not reached from a ThreadPool worker — see the
// ownership rule on ExecContext.
ExecContext& DefaultExecContext();

// `ctx` if non-null, the thread-local default otherwise.
inline ExecContext& ResolveExecContext(ExecContext* ctx) {
  return ctx != nullptr ? *ctx : DefaultExecContext();
}

// True when a parallel region of `threads`-way parallelism over `n` tasks
// is worth entering at all: threads > 1, more than one task, and the
// caller is not itself a pooled worker (regions never nest).
bool ShouldRunParallel(int threads, size_t n);

// Runs fn(task_index, worker_context) for every task in [0, n), fanning
// the tasks out over the global thread pool in min(threads, n) contiguous
// blocks. Falls back to running every task inline on `primary`, in order,
// when ShouldRunParallel(threads, n) is false — so the serial path is
// byte-for-byte today's behavior, stats included.
//
// Parallel determinism contract for callers: fn must write its results
// into per-task slots (never shared accumulators), because block-to-worker
// assignment is scheduling-dependent. Stats recorded on worker contexts
// are merged back into `primary` before this returns. Exceptions thrown by
// tasks propagate (first one wins).
void ParallelApply(ExecContext& primary, int threads, size_t n,
                   const std::function<void(size_t, ExecContext&)>& fn);

// RAII stats scope: times its lifetime and records one call on the
// resolved context at destruction.
class OpTimer {
 public:
  OpTimer(ExecContext& ctx, std::string_view op, uint64_t rows_in)
      : ctx_(ctx), op_(op), rows_in_(rows_in) {}
  OpTimer(const OpTimer&) = delete;
  OpTimer& operator=(const OpTimer&) = delete;
  ~OpTimer() {
    ctx_.Record(op_, rows_in_, rows_out_, build_rows_,
                timer_.ElapsedSeconds());
  }

  void set_rows_out(uint64_t n) { rows_out_ = n; }
  void set_build_rows(uint64_t n) { build_rows_ = n; }

 private:
  ExecContext& ctx_;
  std::string_view op_;
  uint64_t rows_in_;
  uint64_t rows_out_ = 0;
  uint64_t build_rows_ = 0;
  WallTimer timer_;
};

}  // namespace lsens

#endif  // LSENS_EXEC_EXEC_CONTEXT_H_
