#ifndef LSENS_EXEC_EXEC_CONTEXT_H_
#define LSENS_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/count.h"
#include "common/timer.h"
#include "exec/hash_group_table.h"
#include "exec/row_sort.h"
#include "storage/value.h"

namespace lsens {

// Aggregate counters for one operator kind ("join.hash", "normalize", ...).
// Wall times of nested operators overlap: a join's time includes the time
// of the Normalize it runs on its output, which is also reported under
// "normalize".
struct OperatorStats {
  std::string name;
  uint64_t calls = 0;
  uint64_t rows_in = 0;     // Σ explicit input rows over all calls
  uint64_t rows_out = 0;    // Σ output rows over all calls
  uint64_t build_rows = 0;  // Σ hash-build-side rows (join/semijoin only)
  double wall_seconds = 0.0;
};

// Execution state threaded through the exec and sensitivity layers: owns
// the reusable arenas (sort permutations, row/key scratch, the flat hash
// group table, normalize rebuild buffers) so hot operators allocate O(1)
// times per context instead of per invocation, collects per-operator stats,
// and carries execution knobs.
//
// Callers pass a context through JoinOptions::ctx (and thus TSensOptions::
// join.ctx); operators that receive none fall back to a thread-local
// default so arena reuse still happens. A context is single-threaded:
// share one per worker, never across threads.
class ExecContext {
 public:
  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  // --- Knobs -------------------------------------------------------------
  // When false, Record() is a no-op (arenas still reused).
  bool collect_stats = true;

  // --- Arenas ------------------------------------------------------------
  // Distinct slots so concurrently-live uses inside one operator never
  // alias (e.g. sort-merge join holds both side permutations while the
  // final Normalize uses its own).
  std::vector<uint32_t>& perm_a() { return perm_a_; }
  std::vector<uint32_t>& perm_b() { return perm_b_; }
  std::vector<uint32_t>& norm_perm() { return norm_perm_; }
  std::vector<Value>& value_buf() { return value_buf_; }
  std::vector<Count>& count_buf() { return count_buf_; }
  std::vector<Value>& row_buf() { return row_buf_; }
  std::vector<Value>& key_buf() { return key_buf_; }
  std::vector<int>& col_buf() { return col_buf_; }
  std::vector<SortKeyRef>& sort_keys() { return sort_keys_; }
  std::vector<SortKeyRef>& sort_keys_tmp() { return sort_keys_tmp_; }
  FlatGroupTable& group_table() { return group_table_; }

  // --- Stats -------------------------------------------------------------
  void Record(std::string_view op, uint64_t rows_in, uint64_t rows_out,
              uint64_t build_rows, double wall_seconds);
  const std::vector<OperatorStats>& stats() const { return stats_; }
  bool has_stats() const { return !stats_.empty(); }
  void ResetStats() { stats_.clear(); }
  // Stats for one operator, or nullptr if it never ran.
  const OperatorStats* FindStats(std::string_view op) const;

 private:
  std::vector<uint32_t> perm_a_;
  std::vector<uint32_t> perm_b_;
  std::vector<uint32_t> norm_perm_;
  std::vector<Value> value_buf_;
  std::vector<Count> count_buf_;
  std::vector<Value> row_buf_;
  std::vector<Value> key_buf_;
  std::vector<int> col_buf_;
  std::vector<SortKeyRef> sort_keys_;
  std::vector<SortKeyRef> sort_keys_tmp_;
  FlatGroupTable group_table_;
  std::vector<OperatorStats> stats_;  // small: one entry per operator kind
};

// The thread-local fallback context used when callers pass none.
ExecContext& DefaultExecContext();

// `ctx` if non-null, the thread-local default otherwise.
inline ExecContext& ResolveExecContext(ExecContext* ctx) {
  return ctx != nullptr ? *ctx : DefaultExecContext();
}

// RAII stats scope: times its lifetime and records one call on the
// resolved context at destruction.
class OpTimer {
 public:
  OpTimer(ExecContext& ctx, std::string_view op, uint64_t rows_in)
      : ctx_(ctx), op_(op), rows_in_(rows_in) {}
  OpTimer(const OpTimer&) = delete;
  OpTimer& operator=(const OpTimer&) = delete;
  ~OpTimer() {
    ctx_.Record(op_, rows_in_, rows_out_, build_rows_,
                timer_.ElapsedSeconds());
  }

  void set_rows_out(uint64_t n) { rows_out_ = n; }
  void set_build_rows(uint64_t n) { build_rows_ = n; }

 private:
  ExecContext& ctx_;
  std::string_view op_;
  uint64_t rows_in_;
  uint64_t rows_out_ = 0;
  uint64_t build_rows_ = 0;
  WallTimer timer_;
};

}  // namespace lsens

#endif  // LSENS_EXEC_EXEC_CONTEXT_H_
