#include "exec/counted_relation.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace lsens {

int CompareRows(std::span<const Value> a, std::span<const Value> b) {
  LSENS_CHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  return 0;
}

CountedRelation::CountedRelation(AttributeSet attrs)
    : attrs_(std::move(attrs)) {
  LSENS_CHECK_MSG(IsValidAttributeSet(attrs_),
                  "CountedRelation attrs must be sorted and unique");
}

CountedRelation CountedRelation::Unit() {
  CountedRelation unit{AttributeSet{}};
  unit.counts_.push_back(Count::One());
  return unit;
}

CountedRelation CountedRelation::FromAtom(const Relation& rel,
                                          const Atom& atom,
                                          const AttributeSet& keep) {
  LSENS_CHECK(atom.vars.size() == rel.arity());
  LSENS_CHECK_MSG(IsSubset(keep, atom.VarSet()),
                  "projection must keep a subset of the atom's variables");
  // Column positions: keep[j] lives at rel column keep_cols[j]; predicates
  // evaluate against pred_cols[p].
  std::vector<size_t> keep_cols(keep.size());
  for (size_t j = 0; j < keep.size(); ++j) {
    size_t col = 0;
    while (atom.vars[col] != keep[j]) ++col;
    keep_cols[j] = col;
  }
  std::vector<size_t> pred_cols(atom.predicates.size());
  for (size_t p = 0; p < atom.predicates.size(); ++p) {
    size_t col = 0;
    while (atom.vars[col] != atom.predicates[p].var) ++col;
    pred_cols[p] = col;
  }

  CountedRelation out(keep);
  out.Reserve(rel.NumRows());
  std::vector<Value> projected(keep.size());
  for (size_t i = 0; i < rel.NumRows(); ++i) {
    std::span<const Value> row = rel.Row(i);
    bool pass = true;
    for (size_t p = 0; p < atom.predicates.size() && pass; ++p) {
      pass = atom.predicates[p].Eval(row[pred_cols[p]]);
    }
    if (!pass) continue;
    for (size_t j = 0; j < keep.size(); ++j) projected[j] = row[keep_cols[j]];
    out.AppendRow(projected, Count::One());
  }
  out.Normalize();
  return out;
}

void CountedRelation::AppendRow(std::span<const Value> row, Count count) {
  LSENS_CHECK(row.size() == arity());
  data_.insert(data_.end(), row.begin(), row.end());
  counts_.push_back(count);
  normalized_ = false;
}

void CountedRelation::Normalize() {
  const size_t n = NumRows();
  const size_t k = arity();
  if (n == 0) {
    normalized_ = true;
    return;
  }
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return CompareRows(Row(a), Row(b)) < 0;
  });
  std::vector<Value> new_data;
  new_data.reserve(data_.size());
  std::vector<Count> new_counts;
  new_counts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::span<const Value> row = Row(perm[i]);
    if (!new_counts.empty() &&
        CompareRows({new_data.data() + (new_counts.size() - 1) * k, k}, row) ==
            0) {
      new_counts.back() += counts_[perm[i]];
    } else {
      new_data.insert(new_data.end(), row.begin(), row.end());
      new_counts.push_back(counts_[perm[i]]);
    }
  }
  // Drop zero-count rows (possible when callers append explicit zeros).
  std::vector<Value> final_data;
  final_data.reserve(new_data.size());
  std::vector<Count> final_counts;
  final_counts.reserve(new_counts.size());
  for (size_t i = 0; i < new_counts.size(); ++i) {
    if (new_counts[i].IsZero()) continue;
    final_data.insert(final_data.end(), new_data.begin() + i * k,
                      new_data.begin() + (i + 1) * k);
    final_counts.push_back(new_counts[i]);
  }
  data_ = std::move(final_data);
  counts_ = std::move(final_counts);
  normalized_ = true;
}

Count CountedRelation::TotalCount() const {
  LSENS_CHECK_MSG(!has_default(),
                  "TotalCount undefined for a defaulted (top-k) relation");
  Count total;
  for (Count c : counts_) total += c;
  return total;
}

Count CountedRelation::MaxCount() const {
  Count max = default_count_;
  for (Count c : counts_) max = std::max(max, c);
  return max;
}

size_t CountedRelation::ArgMaxRow() const {
  Count best = Count::Zero();
  size_t arg = SIZE_MAX;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > best) {
      best = counts_[i];
      arg = i;
    }
  }
  if (arg != SIZE_MAX && default_count_ > best) return SIZE_MAX;
  return arg;
}

Count CountedRelation::Lookup(std::span<const Value> row) const {
  LSENS_CHECK_MSG(normalized_, "Lookup requires a normalized relation");
  LSENS_CHECK(row.size() == arity());
  size_t lo = 0;
  size_t hi = NumRows();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    int cmp = CompareRows(Row(mid), row);
    if (cmp == 0) return counts_[mid];
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return default_count_;
}

void CountedRelation::TruncateTopK(size_t k) {
  LSENS_CHECK(k > 0);
  if (NumRows() <= k) return;
  // Order row indices by count descending (ties by row order for
  // determinism), keep the first k, remember the k-th count as default.
  std::vector<uint32_t> perm(NumRows());
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return counts_[b] < counts_[a];
  });
  Count kth = counts_[perm[k - 1]];
  std::vector<Value> new_data;
  new_data.reserve(k * arity());
  std::vector<Count> new_counts;
  new_counts.reserve(k);
  perm.resize(k);
  std::sort(perm.begin(), perm.end());  // preserve row order, then renorm
  for (uint32_t idx : perm) {
    std::span<const Value> row = Row(idx);
    new_data.insert(new_data.end(), row.begin(), row.end());
    new_counts.push_back(counts_[idx]);
  }
  data_ = std::move(new_data);
  counts_ = std::move(new_counts);
  default_count_ = std::max(default_count_, kth);
  // Rows stayed in sorted order if they were; Normalize() keeps invariants.
  if (!normalized_) Normalize();
}

void CountedRelation::Filter(
    const std::function<bool(std::span<const Value>)>& keep) {
  const size_t k = arity();
  std::vector<Value> new_data;
  std::vector<Count> new_counts;
  new_counts.reserve(counts_.size());
  for (size_t i = 0; i < NumRows(); ++i) {
    std::span<const Value> row = Row(i);
    if (!keep(row)) continue;
    new_data.insert(new_data.end(), row.begin(), row.end());
    new_counts.push_back(counts_[i]);
  }
  data_ = std::move(new_data);
  counts_ = std::move(new_counts);
  (void)k;
}

void CountedRelation::ScaleCounts(Count factor) {
  for (Count& c : counts_) c *= factor;
  default_count_ *= factor;
  // Scaling by zero can introduce zero-count rows; restore the invariant.
  if (factor.IsZero() && !counts_.empty()) Normalize();
}

int CountedRelation::ColumnOf(AttrId attr) const {
  auto it = std::lower_bound(attrs_.begin(), attrs_.end(), attr);
  if (it == attrs_.end() || *it != attr) return -1;
  return static_cast<int>(it - attrs_.begin());
}

CountedRelation GroupBySum(const CountedRelation& in,
                           const AttributeSet& group_attrs) {
  LSENS_CHECK_MSG(!in.has_default(),
                  "GroupBySum undefined for a defaulted (top-k) relation");
  LSENS_CHECK(IsSubset(group_attrs, in.attrs()));
  std::vector<int> cols;
  cols.reserve(group_attrs.size());
  for (AttrId a : group_attrs) cols.push_back(in.ColumnOf(a));

  CountedRelation out(group_attrs);
  out.Reserve(in.NumRows());
  std::vector<Value> key(group_attrs.size());
  for (size_t i = 0; i < in.NumRows(); ++i) {
    std::span<const Value> row = in.Row(i);
    for (size_t j = 0; j < cols.size(); ++j) {
      key[j] = row[static_cast<size_t>(cols[j])];
    }
    out.AppendRow(key, in.CountAt(i));
  }
  out.Normalize();
  return out;
}

}  // namespace lsens
