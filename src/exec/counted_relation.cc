#include "exec/counted_relation.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "exec/exec_context.h"
#include "exec/row_sort.h"

namespace lsens {

int CompareRows(std::span<const Value> a, std::span<const Value> b) {
  LSENS_CHECK(a.size() == b.size());
  return CompareRowsUnchecked(a, b);
}

CountedRelation::CountedRelation(AttributeSet attrs)
    : attrs_(std::move(attrs)) {
  LSENS_CHECK_MSG(IsValidAttributeSet(attrs_),
                  "CountedRelation attrs must be sorted and unique");
}

CountedRelation CountedRelation::Unit() {
  CountedRelation unit{AttributeSet{}};
  unit.counts_.push_back(Count::One());
  return unit;
}

void CountedRelation::AppendRow(std::span<const Value> row, Count count) {
  LSENS_CHECK(row.size() == arity());
  data_.insert(data_.end(), row.begin(), row.end());
  counts_.push_back(count);
  normalized_ = false;
}

std::span<Value> CountedRelation::AppendRowsRaw(size_t n, Count count) {
  const size_t old = data_.size();
  data_.resize(old + n * arity());
  counts_.resize(counts_.size() + n, count);
  normalized_ = false;
  return {data_.data() + old, n * arity()};
}

void CountedRelation::GatherColumn(int col, std::span<Value> out) const {
  LSENS_CHECK(out.size() == NumRows());
  const size_t k = arity();
  const Value* src = data_.data() + static_cast<size_t>(col);
  for (size_t i = 0; i < out.size(); ++i) out[i] = src[i * k];
}

void CountedRelation::AppendRows(const CountedRelation& other) {
  LSENS_CHECK_MSG(other.attrs_ == attrs_,
                  "AppendRows requires identical attribute sets");
  // A default is a statement about the *absent* rows; concatenation cannot
  // preserve either side's, so refuse rather than silently miscount.
  LSENS_CHECK_MSG(!has_default() && !other.has_default(),
                  "AppendRows cannot concatenate defaulted (top-k) relations");
  if (other.counts_.empty()) return;
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  counts_.insert(counts_.end(), other.counts_.begin(), other.counts_.end());
  normalized_ = false;
}

void CountedRelation::Normalize(ExecContext* ctx_in) {
  const size_t n = NumRows();
  const size_t k = arity();
  if (n == 0) {
    normalized_ = true;
    return;
  }
  ExecContext& ctx = ResolveExecContext(ctx_in);
  OpTimer op(ctx, "normalize", n);

  std::vector<int>& cols = ctx.col_buf();
  cols.resize(k);
  std::iota(cols.begin(), cols.end(), 0);

  std::vector<uint32_t>& perm = ctx.norm_perm();
  if (SortRowsBy(*this, cols, perm, ctx)) {
    // Already sorted: one verification pass; strictly increasing rows with
    // non-zero counts need no rebuild at all.
    bool clean = true;
    for (size_t i = 0; i < n && clean; ++i) {
      clean = !counts_[i].IsZero() &&
              (i == 0 || CompareRowsAt(Row(i - 1), Row(i), cols) != 0);
    }
    if (clean) {
      normalized_ = true;
      op.set_rows_out(n);
      return;
    }
  }

  // Rebuild into the arena buffers, then swap storage: the displaced
  // capacity returns to the arena for the next Normalize.
  std::vector<Value>& vbuf = ctx.value_buf();
  std::vector<Count>& cbuf = ctx.count_buf();
  vbuf.clear();
  cbuf.clear();
  vbuf.reserve(data_.size());
  cbuf.reserve(n);
  ForEachSortedGroup(*this, cols, perm, [&](size_t begin, size_t end) {
    Count total = Count::Zero();
    for (size_t i = begin; i < end; ++i) total += counts_[perm[i]];
    if (total.IsZero()) return;  // drop explicit zero-count rows
    std::span<const Value> row = Row(perm[begin]);
    vbuf.insert(vbuf.end(), row.begin(), row.end());
    cbuf.push_back(total);
  });
  data_.swap(vbuf);
  counts_.swap(cbuf);
  normalized_ = true;
  op.set_rows_out(NumRows());
}

Count CountedRelation::TotalCount() const {
  LSENS_CHECK_MSG(!has_default(),
                  "TotalCount undefined for a defaulted (top-k) relation");
  Count total;
  for (Count c : counts_) total += c;
  return total;
}

Count CountedRelation::MaxCount() const {
  Count max = default_count_;
  for (Count c : counts_) max = std::max(max, c);
  return max;
}

size_t CountedRelation::ArgMaxRow() const {
  Count best = Count::Zero();
  size_t arg = SIZE_MAX;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > best) {
      best = counts_[i];
      arg = i;
    }
  }
  if (arg != SIZE_MAX && default_count_ > best) return SIZE_MAX;
  return arg;
}

Count CountedRelation::Lookup(std::span<const Value> row) const {
  LSENS_CHECK_MSG(normalized_, "Lookup requires a normalized relation");
  LSENS_CHECK(row.size() == arity());
  // The arity check above covers every probe of the search: Row(mid) is
  // arity-sized by construction, so the loop compares unchecked instead of
  // re-asserting sizes O(log n) times — this is the hot path of the
  // per-tuple sensitivity scan.
  size_t lo = 0;
  size_t hi = NumRows();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    int cmp = CompareRowsUnchecked(Row(mid), row);
    if (cmp == 0) return counts_[mid];
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return default_count_;
}

void CountedRelation::TruncateTopK(size_t k, ExecContext* ctx_in) {
  LSENS_CHECK(k > 0);
  if (NumRows() <= k) return;
  ExecContext& ctx = ResolveExecContext(ctx_in);
  OpTimer op(ctx, "truncate.top_k", NumRows());
  // Order row indices by count descending (ties by row order for
  // determinism), keep the first k, remember the k-th count as default.
  std::vector<uint32_t> perm(NumRows());
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return counts_[b] < counts_[a];
  });
  Count kth = counts_[perm[k - 1]];
  std::vector<Value> new_data;
  new_data.reserve(k * arity());
  std::vector<Count> new_counts;
  new_counts.reserve(k);
  perm.resize(k);
  std::sort(perm.begin(), perm.end());  // preserve row order, then renorm
  for (uint32_t idx : perm) {
    std::span<const Value> row = Row(idx);
    new_data.insert(new_data.end(), row.begin(), row.end());
    new_counts.push_back(counts_[idx]);
  }
  data_ = std::move(new_data);
  counts_ = std::move(new_counts);
  default_count_ = std::max(default_count_, kth);
  // Rows stayed in sorted order if they were; Normalize() keeps invariants.
  if (!normalized_) Normalize(&ctx);
  op.set_rows_out(NumRows());
}

void CountedRelation::Filter(
    const std::function<bool(std::span<const Value>)>& keep) {
  const size_t k = arity();
  std::vector<Value> new_data;
  std::vector<Count> new_counts;
  new_counts.reserve(counts_.size());
  for (size_t i = 0; i < NumRows(); ++i) {
    std::span<const Value> row = Row(i);
    if (!keep(row)) continue;
    new_data.insert(new_data.end(), row.begin(), row.end());
    new_counts.push_back(counts_[i]);
  }
  data_ = std::move(new_data);
  counts_ = std::move(new_counts);
  (void)k;
}

void CountedRelation::ScaleCounts(Count factor, ExecContext* ctx) {
  for (Count& c : counts_) c *= factor;
  default_count_ *= factor;
  // Scaling by zero can introduce zero-count rows; restore the invariant.
  if (factor.IsZero() && !counts_.empty()) Normalize(ctx);
}

int CountedRelation::ColumnOf(AttrId attr) const {
  auto it = std::lower_bound(attrs_.begin(), attrs_.end(), attr);
  if (it == attrs_.end() || *it != attr) return -1;
  return static_cast<int>(it - attrs_.begin());
}

CountedRelation GroupBySum(const CountedRelation& in,
                           const AttributeSet& group_attrs,
                           ExecContext* ctx_in) {
  LSENS_CHECK_MSG(!in.has_default(),
                  "GroupBySum undefined for a defaulted (top-k) relation");
  LSENS_CHECK(IsSubset(group_attrs, in.attrs()));
  ExecContext& ctx = ResolveExecContext(ctx_in);
  OpTimer op(ctx, "group_by_sum", in.NumRows());

  CountedRelation out(group_attrs);
  if (in.NumRows() == 0) return out;
  if (group_attrs.empty()) {
    // γ over nothing: a single arity-0 row carrying the total (dropped when
    // zero, matching the normalized-relation invariant).
    const Count total = in.TotalCount();
    if (!total.IsZero()) out.counts_.push_back(total);
    op.set_rows_out(out.NumRows());
    return out;
  }

  std::vector<int> cols;
  cols.reserve(group_attrs.size());
  for (AttrId a : group_attrs) cols.push_back(in.ColumnOf(a));

  // One sorted permutation over the input (shared machinery with
  // Normalize; a sort is skipped when the group columns are a prefix of an
  // already-normalized relation), groups emitted pre-merged and in order —
  // the output is normalized by construction.
  std::vector<uint32_t>& perm = ctx.norm_perm();
  SortRowsBy(in, cols, perm, ctx);
  ForEachSortedGroup(in, cols, perm, [&](size_t begin, size_t end) {
    Count total = Count::Zero();
    for (size_t i = begin; i < end; ++i) total += in.counts_[perm[i]];
    if (total.IsZero()) return;
    std::span<const Value> row = in.Row(perm[begin]);
    for (int c : cols) out.data_.push_back(row[static_cast<size_t>(c)]);
    out.counts_.push_back(total);
  });
  out.normalized_ = true;
  op.set_rows_out(out.NumRows());
  return out;
}

}  // namespace lsens
