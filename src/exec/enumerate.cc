#include "exec/enumerate.h"

#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "exec/join.h"
#include "query/join_tree.h"

namespace lsens {

namespace {

uint64_t HashRowCols(std::span<const Value> row, const std::vector<int>& cols) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int c : cols) {
    h = Mix64(h ^ static_cast<uint64_t>(row[static_cast<size_t>(c)]));
  }
  return h;
}

}  // namespace

CountedRelation Semijoin(const CountedRelation& a, const CountedRelation& b) {
  AttributeSet key = Intersect(a.attrs(), b.attrs());
  if (key.empty()) {
    if (b.NumRows() > 0) return a;
    return CountedRelation(a.attrs());
  }
  std::vector<int> a_cols;
  std::vector<int> b_cols;
  for (AttrId attr : key) {
    a_cols.push_back(a.ColumnOf(attr));
    b_cols.push_back(b.ColumnOf(attr));
  }
  // Hash probe; 64-bit hashes are verified against real key equality via a
  // bucket of row indices (collisions must not drop/keep wrong rows).
  std::unordered_multimap<uint64_t, uint32_t> table;
  table.reserve(b.NumRows());
  for (size_t i = 0; i < b.NumRows(); ++i) {
    table.emplace(HashRowCols(b.Row(i), b_cols), static_cast<uint32_t>(i));
  }
  CountedRelation out(a.attrs());
  out.Reserve(a.NumRows());
  for (size_t i = 0; i < a.NumRows(); ++i) {
    std::span<const Value> row = a.Row(i);
    auto [lo, hi] = table.equal_range(HashRowCols(row, a_cols));
    bool match = false;
    for (auto it = lo; it != hi && !match; ++it) {
      std::span<const Value> brow = b.Row(it->second);
      match = true;
      for (size_t j = 0; j < key.size(); ++j) {
        if (row[static_cast<size_t>(a_cols[j])] !=
            brow[static_cast<size_t>(b_cols[j])]) {
          match = false;
          break;
        }
      }
    }
    if (match) out.AppendRow(row, a.CountAt(i));
  }
  out.Normalize();
  return out;
}

StatusOr<CountedRelation> EnumerateJoin(const ConjunctiveQuery& q,
                                        const Ghd& ghd, const Database& db,
                                        const JoinOptions& options,
                                        size_t max_rows) {
  LSENS_RETURN_IF_ERROR(q.Validate(db));

  // Materialize each bag over all of its variables (exclusive attributes
  // included — this is full-output enumeration).
  const size_t num_bags = ghd.bags.size();
  std::vector<CountedRelation> bag_rel;
  bag_rel.reserve(num_bags);
  for (const GhdBag& bag : ghd.bags) {
    std::vector<CountedRelation> atoms;
    for (int a : bag.atom_indices) {
      auto rel = db.Get(q.atom(a).relation);
      if (!rel.ok()) return rel.status();
      atoms.push_back(
          CountedRelation::FromAtom(**rel, q.atom(a), q.atom(a).VarSet()));
    }
    std::vector<const CountedRelation*> pieces;
    for (const auto& r : atoms) pieces.push_back(&r);
    bag_rel.push_back(FoldJoin(std::move(pieces), options));
    if (bag_rel.back().NumRows() > max_rows) {
      return Status::Unsupported("bag materialization exceeds max_rows");
    }
  }

  CountedRelation output = CountedRelation::Unit();
  for (const JoinTree& tree : ghd.forest.trees) {
    // Bottom-up semijoin reduction.
    for (int bag : tree.PostOrder()) {
      for (int child : tree.Children(bag)) {
        bag_rel[static_cast<size_t>(bag)] = Semijoin(
            bag_rel[static_cast<size_t>(bag)],
            bag_rel[static_cast<size_t>(child)]);
      }
    }
    // Top-down semijoin reduction.
    for (int bag : tree.PreOrder()) {
      int parent = tree.Parent(bag);
      if (parent == -1) continue;
      bag_rel[static_cast<size_t>(bag)] =
          Semijoin(bag_rel[static_cast<size_t>(bag)],
                   bag_rel[static_cast<size_t>(parent)]);
    }
    // Join reduced bags, children into parents; every intermediate is
    // bounded by the final output of this component.
    for (int bag : tree.PostOrder()) {
      for (int child : tree.Children(bag)) {
        bag_rel[static_cast<size_t>(bag)] =
            NaturalJoin(bag_rel[static_cast<size_t>(bag)],
                        bag_rel[static_cast<size_t>(child)], options);
        if (bag_rel[static_cast<size_t>(bag)].NumRows() > max_rows) {
          return Status::Unsupported("join output exceeds max_rows");
        }
      }
    }
    output = NaturalJoin(output, bag_rel[static_cast<size_t>(tree.root())],
                         options);
    if (output.NumRows() > max_rows) {
      return Status::Unsupported("join output exceeds max_rows");
    }
  }
  return output;
}

StatusOr<CountedRelation> EnumerateQuery(const ConjunctiveQuery& q,
                                         const Database& db,
                                         const JoinOptions& options,
                                         size_t max_rows) {
  auto forest = BuildJoinForestGYO(q);
  if (forest.ok()) {
    return EnumerateJoin(q, MakeTrivialGhd(q, *forest), db, options,
                         max_rows);
  }
  auto searched = SearchGhd(q, q.num_atoms());
  if (!searched.ok()) return searched.status();
  return EnumerateJoin(q, *searched, db, options, max_rows);
}

}  // namespace lsens
