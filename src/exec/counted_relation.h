#ifndef LSENS_EXEC_COUNTED_RELATION_H_
#define LSENS_EXEC_COUNTED_RELATION_H_

#include <functional>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/count.h"
#include "common/macros.h"
#include "storage/attribute_set.h"
#include "storage/value.h"

namespace lsens {

class ExecContext;

// A relation annotated with the paper's `cnt` multiplicity column: rows are
// tuples over a sorted AttributeSet, each carrying a Count. This is the
// representation all sensitivity machinery works on — the r⋈ operator
// multiplies counts, γ sums them.
//
// Invariants after Normalize(): rows are lexicographically sorted, unique,
// and have non-zero counts. Most operators produce normalized outputs.
//
// `default_count` implements the §5.4 top-k approximation: when non-zero it
// is the multiplicity assumed for any row *not* explicitly stored (an upper
// bound — the k-th largest frequency). Only join sites whose key covers all
// attributes of the defaulted side can consume a default; callers are
// responsible for that (NaturalJoin CHECKs it).
class CountedRelation {
 public:
  explicit CountedRelation(AttributeSet attrs);

  // The unit relation: zero attributes, one row, count 1. Neutral element
  // of r⋈ (used for empty joins / single-atom queries).
  static CountedRelation Unit();

  // Atom ingestion (predicate filter + projection over a stored Relation)
  // lives in the query layer: see ScanAtom in query/atom_scan.h. The exec
  // layer has no notion of query atoms.

  const AttributeSet& attrs() const { return attrs_; }
  size_t arity() const { return attrs_.size(); }
  size_t NumRows() const { return counts_.size(); }

  std::span<const Value> Row(size_t i) const {
    return {data_.data() + i * arity(), arity()};
  }
  Count CountAt(size_t i) const { return counts_[i]; }

  Count default_count() const { return default_count_; }
  void set_default_count(Count c) { default_count_ = c; }
  bool has_default() const { return !default_count_.IsZero(); }

  void AppendRow(std::span<const Value> row, Count count);
  void AppendRow(std::initializer_list<Value> row, Count count) {
    AppendRow(std::span<const Value>(row.begin(), row.size()), count);
  }
  // Bulk-appends every explicit row of `other` (same attrs required).
  // Used to concatenate the per-partition outputs of parallel joins before
  // the single Normalize; does not touch either default_count.
  void AppendRows(const CountedRelation& other);
  // Appends `n` zero-initialized rows, every one carrying `count`, and
  // returns the new rows' row-major storage for the caller to fill —
  // column-at-a-time producers (ScanAtom) write each source column with
  // one strided pass instead of materializing row tuples. The relation is
  // not normalized until the caller says so.
  std::span<Value> AppendRowsRaw(size_t n, Count count);
  // Copies column `col` of every row into `out` (sized to NumRows()): the
  // strided-gather bridge from row-major storage to the column-batch hash
  // fold (HashValuesBatchFold in storage/value.h).
  void GatherColumn(int col, std::span<Value> out) const;
  void Reserve(size_t rows) {
    data_.reserve(rows * arity());
    counts_.reserve(rows);
  }

  // Sorts rows, merges duplicates (summing counts), drops zero counts.
  // Already-sorted inputs are detected and rebuilt in one pass (or not at
  // all). Scratch comes from `ctx` (the thread-local default when null).
  void Normalize(ExecContext* ctx = nullptr);
  bool normalized() const { return normalized_; }

  // Σ over explicit rows (requires no default).
  Count TotalCount() const;

  // Max over explicit rows and the default; Zero for an empty relation.
  Count MaxCount() const;
  // Index of a row attaining MaxCount() among explicit rows; SIZE_MAX if no
  // explicit row attains it (empty relation, or default is the max).
  size_t ArgMaxRow() const;

  // Exact-match lookup (requires normalized). Returns the row's count, or
  // default_count() if absent.
  Count Lookup(std::span<const Value> row) const;

  // §5.4 top-k approximation: keeps the k highest-count rows and records the
  // k-th largest count as default_count. No-op if NumRows() <= k.
  void TruncateTopK(size_t k, ExecContext* ctx = nullptr);

  // Drops rows for which `keep` returns false. Preserves normalization.
  void Filter(const std::function<bool(std::span<const Value>)>& keep);

  // Multiplies every count (and the default) by `factor`, saturating.
  // A zero factor triggers a Normalize (zero-count rows must drop), whose
  // scratch comes from `ctx` — pass the worker context inside parallel
  // regions.
  void ScaleCounts(Count factor, ExecContext* ctx = nullptr);

  // Column position of `attr` within attrs(), or -1.
  int ColumnOf(AttrId attr) const;

 private:
  friend CountedRelation GroupBySum(const CountedRelation&,
                                    const AttributeSet&, ExecContext*);

  AttributeSet attrs_;
  std::vector<Value> data_;   // flat row-major, arity() stride
  std::vector<Count> counts_;
  Count default_count_ = Count::Zero();
  bool normalized_ = true;  // vacuously true while empty
};

// Lexicographic row comparison helpers shared by join/group-by.
// CompareRows asserts a.size() == b.size() on every call; the Unchecked
// variant is for call sites that have hoisted that invariant out of a hot
// loop (binary-search probes, oracle scans) — same-relation rows or a key
// already asserted against arity(). Hoist the check, don't drop it.
int CompareRows(std::span<const Value> a, std::span<const Value> b);

inline int CompareRowsUnchecked(std::span<const Value> a,
                                std::span<const Value> b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  return 0;
}

// γ_{group_attrs} with sum over cnt (the paper's group-by). `group_attrs`
// must be a subset of in.attrs(); input must not carry a default. Runs on
// the same sort/merge machinery as Normalize (row_sort.h): one sorted
// permutation over the input, groups emitted pre-normalized.
CountedRelation GroupBySum(const CountedRelation& in,
                           const AttributeSet& group_attrs,
                           ExecContext* ctx = nullptr);

}  // namespace lsens

#endif  // LSENS_EXEC_COUNTED_RELATION_H_
