#include "exec/dyn_table.h"

#include <algorithm>
#include <utility>

namespace lsens {

DynTable::DynTable(AttributeSet attrs) : attrs_(std::move(attrs)) {
  LSENS_CHECK_MSG(IsValidAttributeSet(attrs_),
                  "DynTable attrs must be sorted and unique");
}

uint64_t DynTable::HashCols(std::span<const Value> row,
                            std::span<const int> cols) const {
  uint64_t h = kValueHashSeed;
  for (int c : cols) {
    h = HashValueFold(h, row[static_cast<size_t>(c)]);
  }
  return h;
}

uint64_t DynTable::HashKey(std::span<const Value> key) const {
  return HashValues(key);
}

bool DynTable::KeyEquals(uint32_t row, std::span<const Value> key) const {
  std::span<const Value> stored = RowValues(row);
  for (size_t i = 0; i < key.size(); ++i) {
    if (stored[i] != key[i]) return false;
  }
  return true;
}

void DynTable::Load(const CountedRelation& rel) {
  LSENS_CHECK(rel.attrs() == attrs_);
  LoadRows(rel);
}

void DynTable::Release() {
  data_ = {};
  counts_ = {};
  alive_ = {};
  free_ = {};
  live_rows_ = 0;
  saturated_ = false;
  primary_ = FlatRowIndex();
  for (Index& index : secondary_) {
    index.heads = FlatRowIndex();
    index.next = {};
    index.prev = {};
  }
}

void DynTable::LoadRows(const CountedRelation& rel) {
  LSENS_CHECK(rel.attrs().size() == attrs_.size());
  LSENS_CHECK_MSG(!rel.has_default(),
                  "DynTable cannot represent a defaulted (top-k) relation");
  data_.clear();
  counts_.clear();
  alive_.clear();
  free_.clear();
  primary_.Clear();
  for (Index& index : secondary_) {
    index.heads.Clear();
    index.next.clear();
    index.prev.clear();
  }
  live_rows_ = 0;
  saturated_ = false;
  const size_t n = rel.NumRows();
  data_.reserve(n * arity());
  counts_.reserve(n);
  alive_.reserve(n);
  primary_.Reserve(n);
  for (Index& index : secondary_) {
    index.heads.Reserve(n);
    index.next.reserve(n);
    index.prev.reserve(n);
  }
  for (size_t i = 0; i < n; ++i) {
    if (rel.CountAt(i).IsSaturated()) saturated_ = true;
    std::span<const Value> key = rel.Row(i);
    const uint64_t h = HashKey(key);
    ++stats_.key_hashes;
    ++stats_.locates;
    // Normalized input: keys are distinct, so the locate is a guaranteed
    // miss that only finds the insert slot.
    FlatRowIndex::Cursor cur =
        primary_.Locate(h, [&](uint32_t r) { return KeyEquals(r, key); });
    LSENS_CHECK(cur.row == FlatRowIndex::kNoRow);
    InsertRow(cur, h, key, rel.CountAt(i));
  }
}

int DynTable::AddIndex(std::vector<int> cols) {
  for (int c : cols) {
    LSENS_CHECK(c >= 0 && static_cast<size_t>(c) < arity());
  }
  for (size_t i = 0; i < secondary_.size(); ++i) {
    if (secondary_[i].cols == cols) return static_cast<int>(i);
  }
  secondary_.push_back(Index{std::move(cols), {}, {}, {}});
  Index& index = secondary_.back();
  index.heads.Reserve(live_rows_);
  index.next.assign(counts_.size(), kNoRow);
  index.prev.assign(counts_.size(), kNoRow);
  ForEachRow([&](uint32_t r) { IndexInsert(index, r); });
  return static_cast<int>(secondary_.size() - 1);
}

uint32_t DynTable::FindRow(std::span<const Value> key) const {
  LSENS_CHECK(key.size() == arity());
  FlatRowIndex::Cursor cur = primary_.Locate(
      HashKey(key), [&](uint32_t r) { return KeyEquals(r, key); });
  return cur.row == FlatRowIndex::kNoRow ? kNoRow : cur.row;
}

Count DynTable::Get(std::span<const Value> key) const {
  uint32_t row = FindRow(key);
  return row == kNoRow ? Count::Zero() : counts_[row];
}

uint32_t DynTable::InsertRow(FlatRowIndex::Cursor cur, uint64_t hash,
                             std::span<const Value> key, Count c) {
  uint32_t row;
  if (!free_.empty()) {
    row = free_.back();
    free_.pop_back();
    std::copy(key.begin(), key.end(),
              data_.begin() + static_cast<size_t>(row) * arity());
    counts_[row] = c;
    alive_[row] = 1;
  } else {
    row = static_cast<uint32_t>(counts_.size());
    data_.insert(data_.end(), key.begin(), key.end());
    counts_.push_back(c);
    alive_.push_back(1);
  }
  ++live_rows_;
  primary_.InsertAt(cur, hash, row);
  for (Index& index : secondary_) {
    if (index.next.size() < counts_.size()) {
      index.next.resize(counts_.size(), kNoRow);
      index.prev.resize(counts_.size(), kNoRow);
    }
    IndexInsert(index, row);
  }
  return row;
}

void DynTable::EraseRow(FlatRowIndex::Cursor cur) {
  const uint32_t row = cur.row;
  for (Index& index : secondary_) IndexErase(index, row);
  primary_.EraseAt(cur);
  alive_[row] = 0;
  counts_[row] = Count::Zero();
  free_.push_back(row);
  --live_rows_;
}

void DynTable::IndexInsert(Index& index, uint32_t row) {
  std::span<const Value> key = RowValues(row);
  const uint64_t h = HashCols(key, index.cols);
  ++stats_.key_hashes;
  FlatRowIndex::Cursor cur = index.heads.Locate(h, [&](uint32_t head) {
    std::span<const Value> stored = RowValues(head);
    for (int c : index.cols) {
      if (stored[static_cast<size_t>(c)] != key[static_cast<size_t>(c)]) {
        return false;
      }
    }
    return true;
  });
  if (cur.row == FlatRowIndex::kNoRow) {
    index.heads.InsertAt(cur, h, row);
    index.next[row] = kNoRow;
    index.prev[row] = kNoRow;
    return;
  }
  // Splice in right after the head: O(1), and the head entry stays put.
  const uint32_t head = cur.row;
  index.next[row] = index.next[head];
  index.prev[row] = head;
  if (index.next[head] != kNoRow) index.prev[index.next[head]] = row;
  index.next[head] = row;
}

void DynTable::IndexErase(Index& index, uint32_t row) {
  const uint32_t p = index.prev[row];
  const uint32_t n = index.next[row];
  if (p != kNoRow) {
    // Mid-chain: pure link surgery, no hashing, no probing.
    index.next[p] = n;
    if (n != kNoRow) index.prev[n] = p;
    return;
  }
  // Head row: rebind the index entry to the next chain row (or drop it).
  ++stats_.key_hashes;
  FlatRowIndex::Cursor cur =
      index.heads.Locate(HashCols(RowValues(row), index.cols),
                         [&](uint32_t r) { return r == row; });
  LSENS_CHECK_MSG(cur.row == row, "DynTable secondary index lost a row");
  if (n == kNoRow) {
    index.heads.EraseAt(cur);
  } else {
    index.heads.SetRowAt(cur, n);
    index.prev[n] = kNoRow;
  }
}

Count DynTable::Set(std::span<const Value> key, Count c) {
  LSENS_CHECK(key.size() == arity());
  if (c.IsSaturated()) saturated_ = true;
  const uint64_t h = HashKey(key);
  ++stats_.key_hashes;
  ++stats_.locates;
  FlatRowIndex::Cursor cur =
      primary_.Locate(h, [&](uint32_t r) { return KeyEquals(r, key); });
  if (cur.row == FlatRowIndex::kNoRow) {
    if (!c.IsZero()) InsertRow(cur, h, key, c);
    return Count::Zero();
  }
  Count old = counts_[cur.row];
  if (c.IsZero()) {
    EraseRow(cur);
  } else {
    counts_[cur.row] = c;
  }
  return old;
}

bool DynTable::Adjust(std::span<const Value> key, Count c, bool add) {
  LSENS_CHECK(key.size() == arity());
  if (c.IsZero()) return true;  // no-op; also keeps zero == absent intact
  const uint64_t h = HashKey(key);
  ++stats_.key_hashes;
  ++stats_.locates;
  FlatRowIndex::Cursor cur =
      primary_.Locate(h, [&](uint32_t r) { return KeyEquals(r, key); });
  Count old =
      cur.row == FlatRowIndex::kNoRow ? Count::Zero() : counts_[cur.row];
  if (add) {
    Count updated = old + c;
    if (updated.IsSaturated()) {
      saturated_ = true;
      return false;
    }
    if (cur.row == FlatRowIndex::kNoRow) {
      InsertRow(cur, h, key, updated);
    } else {
      counts_[cur.row] = updated;
    }
    return true;
  }
  if (old < c) {
    saturated_ = true;  // removing more copies than present: poisoned
    return false;
  }
  Count updated = old.SaturatingSub(c);
  if (updated.IsZero()) {
    EraseRow(cur);
  } else {
    counts_[cur.row] = updated;
  }
  return true;
}

void DynTable::LookupIndex(int index_id, std::span<const Value> key,
                           std::vector<uint32_t>* out) const {
  const Index& index = secondary_[static_cast<size_t>(index_id)];
  LSENS_CHECK(key.size() == index.cols.size());
  // HashKey over the packed key equals HashCols over a row projected onto
  // index.cols — same values, same order, same mixing.
  FlatRowIndex::Cursor cur =
      index.heads.Locate(HashKey(key), [&](uint32_t head) {
        std::span<const Value> stored = RowValues(head);
        for (size_t i = 0; i < index.cols.size(); ++i) {
          if (stored[static_cast<size_t>(index.cols[i])] != key[i]) {
            return false;
          }
        }
        return true;
      });
  for (uint32_t r = cur.row; r != FlatRowIndex::kNoRow; r = index.next[r]) {
    out->push_back(r);
  }
}

size_t DynTable::MemoryBytes() const {
  size_t bytes = attrs_.capacity() * sizeof(AttrId) +
                 data_.capacity() * sizeof(Value) +
                 counts_.capacity() * sizeof(Count) +
                 alive_.capacity() * sizeof(uint8_t) +
                 free_.capacity() * sizeof(uint32_t) +
                 primary_.MemoryBytes() +
                 // The Index structs themselves (cols/next/prev vector
                 // headers and the embedded FlatRowIndex) live in
                 // secondary_'s heap block; the chains below only add the
                 // out-of-line arrays.
                 secondary_.capacity() * sizeof(Index);
  for (const Index& index : secondary_) {
    bytes += index.cols.capacity() * sizeof(int) +
             index.heads.MemoryBytes() +
             (index.next.capacity() + index.prev.capacity()) *
                 sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace lsens
