#include "exec/dyn_table.h"

#include <algorithm>
#include <utility>

#include "common/rng.h"

namespace lsens {

DynTable::DynTable(AttributeSet attrs) : attrs_(std::move(attrs)) {
  LSENS_CHECK_MSG(IsValidAttributeSet(attrs_),
                  "DynTable attrs must be sorted and unique");
}

uint64_t DynTable::HashCols(std::span<const Value> row,
                            std::span<const int> cols) const {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int c : cols) {
    h = Mix64(h ^ static_cast<uint64_t>(row[static_cast<size_t>(c)]));
  }
  return h;
}

uint64_t DynTable::HashKey(std::span<const Value> key) const {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (Value v : key) h = Mix64(h ^ static_cast<uint64_t>(v));
  return h;
}

bool DynTable::KeyEquals(uint32_t row, std::span<const Value> key) const {
  std::span<const Value> stored = RowValues(row);
  for (size_t i = 0; i < key.size(); ++i) {
    if (stored[i] != key[i]) return false;
  }
  return true;
}

void DynTable::Load(const CountedRelation& rel) {
  LSENS_CHECK(rel.attrs() == attrs_);
  LSENS_CHECK_MSG(!rel.has_default(),
                  "DynTable cannot represent a defaulted (top-k) relation");
  data_.clear();
  counts_.clear();
  alive_.clear();
  free_.clear();
  primary_.clear();
  for (Index& index : secondary_) index.map.clear();
  live_rows_ = 0;
  saturated_ = false;
  data_.reserve(rel.NumRows() * arity());
  counts_.reserve(rel.NumRows());
  alive_.reserve(rel.NumRows());
  primary_.reserve(rel.NumRows());
  for (Index& index : secondary_) index.map.reserve(rel.NumRows());
  for (size_t i = 0; i < rel.NumRows(); ++i) {
    if (rel.CountAt(i).IsSaturated()) saturated_ = true;
    InsertRow(rel.Row(i), rel.CountAt(i));
  }
}

int DynTable::AddIndex(std::vector<int> cols) {
  for (int c : cols) {
    LSENS_CHECK(c >= 0 && static_cast<size_t>(c) < arity());
  }
  for (size_t i = 0; i < secondary_.size(); ++i) {
    if (secondary_[i].cols == cols) return static_cast<int>(i);
  }
  secondary_.push_back(Index{std::move(cols), {}});
  Index& index = secondary_.back();
  ForEachRow([&](uint32_t r) { IndexInsert(index, r); });
  return static_cast<int>(secondary_.size() - 1);
}

uint32_t DynTable::FindRow(std::span<const Value> key) const {
  LSENS_CHECK(key.size() == arity());
  auto [begin, end] = primary_.equal_range(HashKey(key));
  for (auto it = begin; it != end; ++it) {
    if (KeyEquals(it->second, key)) return it->second;
  }
  return kNoRow;
}

Count DynTable::Get(std::span<const Value> key) const {
  uint32_t row = FindRow(key);
  return row == kNoRow ? Count::Zero() : counts_[row];
}

uint32_t DynTable::InsertRow(std::span<const Value> key, Count c) {
  uint32_t row;
  if (!free_.empty()) {
    row = free_.back();
    free_.pop_back();
    std::copy(key.begin(), key.end(),
              data_.begin() + static_cast<size_t>(row) * arity());
    counts_[row] = c;
    alive_[row] = 1;
  } else {
    row = static_cast<uint32_t>(counts_.size());
    data_.insert(data_.end(), key.begin(), key.end());
    counts_.push_back(c);
    alive_.push_back(1);
  }
  ++live_rows_;
  primary_.emplace(HashKey(key), row);
  for (Index& index : secondary_) IndexInsert(index, row);
  return row;
}

void DynTable::EraseRow(uint32_t row) {
  for (Index& index : secondary_) IndexErase(index, row);
  std::span<const Value> key = RowValues(row);
  auto [begin, end] = primary_.equal_range(HashKey(key));
  for (auto it = begin; it != end; ++it) {
    if (it->second == row) {
      primary_.erase(it);
      break;
    }
  }
  alive_[row] = 0;
  counts_[row] = Count::Zero();
  free_.push_back(row);
  --live_rows_;
}

Count DynTable::Set(std::span<const Value> key, Count c) {
  LSENS_CHECK(key.size() == arity());
  if (c.IsSaturated()) saturated_ = true;
  uint32_t row = FindRow(key);
  if (row == kNoRow) {
    if (!c.IsZero()) InsertRow(key, c);
    return Count::Zero();
  }
  Count old = counts_[row];
  if (c.IsZero()) {
    EraseRow(row);
  } else {
    counts_[row] = c;
  }
  return old;
}

bool DynTable::Adjust(std::span<const Value> key, Count c, bool add) {
  LSENS_CHECK(key.size() == arity());
  if (c.IsZero()) return true;  // no-op; also keeps zero == absent intact
  uint32_t row = FindRow(key);
  Count old = row == kNoRow ? Count::Zero() : counts_[row];
  if (add) {
    Count updated = old + c;
    if (updated.IsSaturated()) {
      saturated_ = true;
      return false;
    }
    if (row == kNoRow) {
      InsertRow(key, updated);
    } else {
      counts_[row] = updated;
    }
    return true;
  }
  if (old < c) {
    saturated_ = true;  // removing more copies than present: poisoned
    return false;
  }
  Count updated = old.SaturatingSub(c);
  if (updated.IsZero()) {
    EraseRow(row);
  } else {
    counts_[row] = updated;
  }
  return true;
}

void DynTable::LookupIndex(int index_id, std::span<const Value> key,
                           std::vector<uint32_t>* out) const {
  const Index& index = secondary_[static_cast<size_t>(index_id)];
  LSENS_CHECK(key.size() == index.cols.size());
  auto [begin, end] = index.map.equal_range(HashKey(key));
  for (auto it = begin; it != end; ++it) {
    uint32_t row = it->second;
    std::span<const Value> stored = RowValues(row);
    bool match = true;
    for (size_t i = 0; i < index.cols.size() && match; ++i) {
      match = stored[static_cast<size_t>(index.cols[i])] == key[i];
    }
    if (match) out->push_back(row);
  }
}

void DynTable::IndexInsert(Index& index, uint32_t row) {
  index.map.emplace(HashCols(RowValues(row), index.cols), row);
}

void DynTable::IndexErase(Index& index, uint32_t row) {
  auto [begin, end] =
      index.map.equal_range(HashCols(RowValues(row), index.cols));
  for (auto it = begin; it != end; ++it) {
    if (it->second == row) {
      index.map.erase(it);
      return;
    }
  }
  LSENS_CHECK_MSG(false, "DynTable secondary index lost a row");
}

}  // namespace lsens
