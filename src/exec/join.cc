#include "exec/join.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "exec/exec_context.h"
#include "exec/hash_group_table.h"
#include "exec/row_sort.h"

namespace lsens {

namespace {

// Join outputs at least this large are reserved incrementally (vector
// doubling) instead of up front, bounding a single pre-allocation.
constexpr size_t kMaxReserveRows = size_t{1} << 22;

// Probe sides smaller than this are never worth fanning out: the emit loop
// is a few ns per row, so below this the pool handoff dominates.
constexpr size_t kParallelProbeMinRows = 4096;

// Precomputed column routing for one join: where each output column comes
// from, and where the key columns live on each side.
struct JoinLayout {
  AttributeSet out_attrs;
  AttributeSet key;
  std::vector<int> a_key_cols;
  std::vector<int> b_key_cols;
  // For each output column: pair (side, column). side 0 = a, 1 = b.
  std::vector<std::pair<int, int>> out_src;
};

JoinLayout MakeLayout(const CountedRelation& a, const CountedRelation& b) {
  JoinLayout layout;
  layout.out_attrs = Union(a.attrs(), b.attrs());
  layout.key = Intersect(a.attrs(), b.attrs());
  for (AttrId attr : layout.key) {
    layout.a_key_cols.push_back(a.ColumnOf(attr));
    layout.b_key_cols.push_back(b.ColumnOf(attr));
  }
  for (AttrId attr : layout.out_attrs) {
    int ca = a.ColumnOf(attr);
    if (ca >= 0) {
      layout.out_src.emplace_back(0, ca);
    } else {
      layout.out_src.emplace_back(1, b.ColumnOf(attr));
    }
  }
  return layout;
}

// `scratch` must be pre-sized to layout.out_src.size().
void EmitRow(const JoinLayout& layout, std::span<const Value> ra,
             std::span<const Value> rb, Count count, CountedRelation* out,
             std::vector<Value>& scratch) {
  for (size_t i = 0; i < layout.out_src.size(); ++i) {
    const auto& [side, col] = layout.out_src[i];
    scratch[i] = (side == 0) ? ra[static_cast<size_t>(col)]
                             : rb[static_cast<size_t>(col)];
  }
  out->AppendRow(scratch, count);
}

// Join where `b` carries a default and b.attrs ⊆ a.attrs: every a-row
// survives, multiplied by its b-match count or b's default. The match
// lookup runs over a flat hash-group table on `b` instead of a per-row
// binary search.
CountedRelation JoinWithDefault(const CountedRelation& a,
                                const CountedRelation& b, ExecContext& ctx) {
  LSENS_CHECK(IsSubset(b.attrs(), a.attrs()));
  OpTimer op(ctx, "join.default", a.NumRows() + b.NumRows());
  op.set_build_rows(b.NumRows());
  JoinLayout layout = MakeLayout(a, b);  // out_attrs == a.attrs()

  FlatGroupTable& table = ctx.group_table();
  std::vector<int>& b_all_cols = ctx.col_buf();
  b_all_cols.resize(b.arity());
  for (size_t c = 0; c < b.arity(); ++c) b_all_cols[c] = static_cast<int>(c);
  table.Build(b, b_all_cols);
  // The probe side's key hashes in one column-batch pass, reused per row.
  std::vector<uint64_t>& probe_hashes = ctx.hash_buf();
  HashRowKeysBatch(a, layout.a_key_cols, ctx.gather_buf(), probe_hashes);

  CountedRelation out(layout.out_attrs);
  out.Reserve(a.NumRows());
  for (size_t i = 0; i < a.NumRows(); ++i) {
    std::span<const Value> row = a.Row(i);
    Count multiplier = Count::Zero();
    std::span<const uint32_t> run =
        table.Probe(row, layout.a_key_cols, probe_hashes[i]);
    if (run.empty()) {
      multiplier = b.default_count();
    } else {
      for (uint32_t r : run) multiplier += b.CountAt(r);
    }
    Count c = a.CountAt(i) * multiplier;
    if (!c.IsZero()) out.AppendRow(row, c);
  }
  out.Normalize(&ctx);
  op.set_rows_out(out.NumRows());
  return out;
}

CountedRelation CrossProduct(const CountedRelation& a,
                             const CountedRelation& b, ExecContext& ctx) {
  OpTimer op(ctx, "join.cross", a.NumRows() + b.NumRows());
  JoinLayout layout = MakeLayout(a, b);
  CountedRelation out(layout.out_attrs);
  const size_t na = a.NumRows();
  const size_t nb = b.NumRows();
  // na * nb can wrap size_t before Reserve ever sees it; a product that
  // large cannot be materialized anyway, so fail loudly instead.
  LSENS_CHECK_MSG(nb == 0 || na <= SIZE_MAX / nb,
                  "cross product row count overflows size_t");
  out.Reserve(std::min(na * nb, kMaxReserveRows));
  std::vector<Value>& scratch = ctx.row_buf();
  scratch.resize(layout.out_src.size());
  for (size_t i = 0; i < na; ++i) {
    for (size_t j = 0; j < nb; ++j) {
      EmitRow(layout, a.Row(i), b.Row(j), a.CountAt(i) * b.CountAt(j), &out,
              scratch);
    }
  }
  out.Normalize(&ctx);
  op.set_rows_out(out.NumRows());
  return out;
}

// Hash join over `table`, already built on the smaller side by the
// estimate pass in NaturalJoin (whose wall time is reported as
// "estimate_join_rows"; this timer covers probe/emit/normalize).
// `est_rows` is the exact pre-merge output size.
//
// With threads > 1 and a probe side past kParallelProbeMinRows the probe
// is partitioned into `threads` contiguous row ranges fanned out over the
// global pool: each partition probes the shared read-only table and emits
// into its own relation (scratch from its worker context), and the parts
// are concatenated in partition order before the single Normalize. The
// emitted multiset is exactly the serial one and Count addition is
// associative and commutative (saturating), so the normalized output — and
// the one recorded "join.hash" stats row — is bit-identical to serial.
//
// `probe_hashes` holds the probe side's precomputed key hashes (the
// estimate pass already batch-hashed them; workers read the shared array).
CountedRelation HashJoin(const CountedRelation& a, const CountedRelation& b,
                         const JoinLayout& layout, const FlatGroupTable& table,
                         bool build_a, size_t est_rows,
                         std::span<const uint64_t> probe_hashes,
                         ExecContext& ctx, int threads) {
  const CountedRelation& build = build_a ? a : b;
  const CountedRelation& probe = build_a ? b : a;
  const std::vector<int>& probe_cols =
      build_a ? layout.b_key_cols : layout.a_key_cols;

  OpTimer op(ctx, "join.hash", a.NumRows() + b.NumRows());
  op.set_build_rows(build.NumRows());
  const size_t n = probe.NumRows();

  auto probe_range = [&](size_t begin, size_t end, CountedRelation* out,
                         std::vector<Value>& scratch) {
    scratch.resize(layout.out_src.size());
    for (size_t j = begin; j < end; ++j) {
      std::span<const Value> pr = probe.Row(j);
      for (uint32_t i : table.Probe(pr, probe_cols, probe_hashes[j])) {
        std::span<const Value> br = build.Row(i);
        std::span<const Value> ra = build_a ? br : pr;
        std::span<const Value> rb = build_a ? pr : br;
        EmitRow(layout, ra, rb, build.CountAt(i) * probe.CountAt(j), out,
                scratch);
      }
    }
  };

  if (ShouldRunParallel(threads, n) && n >= kParallelProbeMinRows) {
    const size_t parts = static_cast<size_t>(threads);
    std::vector<CountedRelation> outputs;
    outputs.reserve(parts);
    for (size_t p = 0; p < parts; ++p) outputs.emplace_back(layout.out_attrs);
    ParallelApply(ctx, threads, parts, [&](size_t p, ExecContext& wctx) {
      const size_t begin = p * n / parts;
      const size_t end = (p + 1) * n / parts;
      outputs[p].Reserve(std::min(est_rows / parts + 1, kMaxReserveRows));
      probe_range(begin, end, &outputs[p], wctx.row_buf());
    });
    CountedRelation out = std::move(outputs[0]);
    // One growth to the exact pre-merge size up front, so the concat loop
    // never reallocates its way from est_rows/parts to est_rows.
    out.Reserve(std::min(est_rows, kMaxReserveRows));
    for (size_t p = 1; p < parts; ++p) out.AppendRows(outputs[p]);
    out.Normalize(&ctx);
    op.set_rows_out(out.NumRows());
    return out;
  }

  CountedRelation out(layout.out_attrs);
  out.Reserve(std::min(est_rows, kMaxReserveRows));
  probe_range(0, n, &out, ctx.row_buf());
  out.Normalize(&ctx);
  op.set_rows_out(out.NumRows());
  return out;
}

CountedRelation SortMergeJoin(const CountedRelation& a,
                              const CountedRelation& b,
                              const JoinLayout& layout, size_t est_rows,
                              ExecContext& ctx) {
  OpTimer op(ctx, "join.sort_merge", a.NumRows() + b.NumRows());
  std::vector<uint32_t>& pa = ctx.perm_a();
  std::vector<uint32_t>& pb = ctx.perm_b();
  SortRowsBy(a, layout.a_key_cols, pa, ctx);
  SortRowsBy(b, layout.b_key_cols, pb, ctx);

  auto key_cmp = [&](std::span<const Value> ra, std::span<const Value> rb) {
    for (size_t i = 0; i < layout.a_key_cols.size(); ++i) {
      Value va = ra[static_cast<size_t>(layout.a_key_cols[i])];
      Value vb = rb[static_cast<size_t>(layout.b_key_cols[i])];
      if (va < vb) return -1;
      if (va > vb) return 1;
    }
    return 0;
  };

  CountedRelation out(layout.out_attrs);
  if (est_rows != SIZE_MAX) out.Reserve(std::min(est_rows, kMaxReserveRows));
  std::vector<Value>& scratch = ctx.row_buf();
  scratch.resize(layout.out_src.size());
  size_t i = 0;
  size_t j = 0;
  while (i < pa.size() && j < pb.size()) {
    int cmp = key_cmp(a.Row(pa[i]), b.Row(pb[j]));
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      // Find the group extents on both sides.
      size_t i_end = i + 1;
      while (i_end < pa.size() && key_cmp(a.Row(pa[i_end]), b.Row(pb[j])) == 0)
        ++i_end;
      size_t j_end = j + 1;
      while (j_end < pb.size() && key_cmp(a.Row(pa[i]), b.Row(pb[j_end])) == 0)
        ++j_end;
      for (size_t x = i; x < i_end; ++x) {
        for (size_t y = j; y < j_end; ++y) {
          EmitRow(layout, a.Row(pa[x]), b.Row(pb[y]),
                  a.CountAt(pa[x]) * b.CountAt(pb[y]), &out, scratch);
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  out.Normalize(&ctx);
  op.set_rows_out(out.NumRows());
  return out;
}

// Sums the probe-side run sizes against `table` — the exact pre-merge join
// cardinality in O(|probe|). Large probes are chunk-summed on the pool;
// partial sums are added in chunk order, so the total is exact and
// deterministic either way.
size_t ProbeTotalRows(const FlatGroupTable& table, const CountedRelation& probe,
                      std::span<const int> probe_cols,
                      std::span<const uint64_t> probe_hashes, ExecContext& ctx,
                      int threads) {
  const size_t n = probe.NumRows();
  if (ShouldRunParallel(threads, n) && n >= kParallelProbeMinRows) {
    const size_t parts = static_cast<size_t>(threads);
    std::vector<size_t> partial(parts, 0);
    ParallelApply(ctx, threads, parts, [&](size_t p, ExecContext&) {
      const size_t begin = p * n / parts;
      const size_t end = (p + 1) * n / parts;
      size_t sum = 0;
      for (size_t j = begin; j < end; ++j) {
        sum += table.Probe(probe.Row(j), probe_cols, probe_hashes[j]).size();
      }
      partial[p] = sum;
    });
    size_t total = 0;
    for (size_t s : partial) total += s;
    return total;
  }
  size_t total = 0;
  for (size_t j = 0; j < n; ++j) {
    total += table.Probe(probe.Row(j), probe_cols, probe_hashes[j]).size();
  }
  return total;
}

// The kAuto cost model, in per-row-touch units. Hash pays a build on the
// smaller side and a hashed probe per larger-side row; sort-merge pays
// n·log n per side *unless* that side is already ordered on the key (then
// its scan is free), and emits from contiguous runs, which is slightly
// cheaper per output row than dereferencing scattered build rows.
JoinAlgorithm PickJoinAlgorithm(size_t na, size_t nb, size_t est_rows,
                                bool sorted_a, bool sorted_b) {
  constexpr double kHashBuild = 3.0;
  constexpr double kHashProbe = 1.5;
  constexpr double kMergeScan = 1.0;
  constexpr double kSortPerCmp = 1.25;
  constexpr double kEmitHash = 1.25;
  constexpr double kEmitMerge = 1.0;
  auto sort_cost = [](size_t n, bool sorted) {
    if (sorted || n < 2) return 0.0;
    const double nd = static_cast<double>(n);
    return kSortPerCmp * nd * std::log2(nd);
  };
  const double est = est_rows == SIZE_MAX ? 0.0 : static_cast<double>(est_rows);
  const double scan = static_cast<double>(na + nb);
  const double merge_cost = sort_cost(na, sorted_a) + sort_cost(nb, sorted_b) +
                            kMergeScan * scan + kEmitMerge * est;
  const double hash_cost = kHashBuild * static_cast<double>(std::min(na, nb)) +
                           kHashProbe * static_cast<double>(std::max(na, nb)) +
                           kEmitHash * est;
  return merge_cost < hash_cost ? JoinAlgorithm::kSortMerge
                                : JoinAlgorithm::kHash;
}

}  // namespace

CountedRelation NaturalJoin(const CountedRelation& a, const CountedRelation& b,
                            const JoinOptions& options) {
  ExecContext& ctx = ResolveExecContext(options.ctx);
  // Defaulted sides: route through the covering-join path.
  if (a.has_default() || b.has_default()) {
    LSENS_CHECK_MSG(!(a.has_default() && b.has_default()),
                    "at most one defaulted side per join");
    if (b.has_default()) {
      LSENS_CHECK_MSG(IsSubset(b.attrs(), a.attrs()),
                      "defaulted side must be attribute-covered by the other");
      return JoinWithDefault(a, b, ctx);
    }
    LSENS_CHECK_MSG(IsSubset(a.attrs(), b.attrs()),
                    "defaulted side must be attribute-covered by the other");
    return JoinWithDefault(b, a, ctx);
  }

  JoinLayout layout = MakeLayout(a, b);
  if (layout.key.empty()) return CrossProduct(a, b, ctx);
  const bool build_a = a.NumRows() < b.NumRows();
  if (options.algorithm == JoinAlgorithm::kSortMerge) {
    return SortMergeJoin(a, b, layout, /*est_rows=*/SIZE_MAX, ctx);
  }

  // kHash and kAuto share the estimate pass (recorded as
  // "estimate_join_rows", the same work the public estimator does): it
  // builds the flat group table the hash kernel then reuses, and its
  // exact output count sizes the Reserve — which beats the reallocation
  // doublings it replaces on expanding joins, measurably so in
  // bench_join_micro. kAuto additionally feeds it to the cost model; when
  // sort-merge wins, the table build is the price of the estimate.
  const CountedRelation& build = build_a ? a : b;
  const CountedRelation& probe = build_a ? b : a;
  const std::vector<int>& build_cols =
      build_a ? layout.a_key_cols : layout.b_key_cols;
  const std::vector<int>& probe_cols =
      build_a ? layout.b_key_cols : layout.a_key_cols;
  FlatGroupTable& table = ctx.group_table();
  // One column-batch pass hashes the probe side's keys; the estimate's
  // ProbeTotalRows and the hash kernel's emit loop both reuse them.
  std::vector<uint64_t>& probe_hashes = ctx.hash_buf();
  size_t est_rows = 0;
  {
    OpTimer op(ctx, "estimate_join_rows", a.NumRows() + b.NumRows());
    op.set_build_rows(build.NumRows());
    table.Build(build, build_cols);
    HashRowKeysBatch(probe, probe_cols, ctx.gather_buf(), probe_hashes);
    est_rows = ProbeTotalRows(table, probe, probe_cols, probe_hashes, ctx,
                              options.threads);
    op.set_rows_out(est_rows);
  }

  if (options.algorithm == JoinAlgorithm::kAuto) {
    const JoinAlgorithm picked = PickJoinAlgorithm(
        a.NumRows(), b.NumRows(), est_rows,
        RowsSortedBy(a, layout.a_key_cols), RowsSortedBy(b, layout.b_key_cols));
    if (picked == JoinAlgorithm::kSortMerge) {
      return SortMergeJoin(a, b, layout, est_rows, ctx);
    }
  }
  return HashJoin(a, b, layout, table, build_a, est_rows, probe_hashes, ctx,
                  options.threads);
}

JoinAlgorithm ChooseJoinAlgorithm(const CountedRelation& a,
                                  const CountedRelation& b, ExecContext* ctx) {
  if (a.has_default() || b.has_default()) return JoinAlgorithm::kHash;
  JoinLayout layout = MakeLayout(a, b);
  if (layout.key.empty()) return JoinAlgorithm::kHash;
  return PickJoinAlgorithm(a.NumRows(), b.NumRows(),
                           EstimateJoinRows(a, b, ctx),
                           RowsSortedBy(a, layout.a_key_cols),
                           RowsSortedBy(b, layout.b_key_cols));
}

size_t EstimateJoinRows(const CountedRelation& a, const CountedRelation& b,
                        ExecContext* ctx_in, int threads) {
  AttributeSet key = Intersect(a.attrs(), b.attrs());
  if (key.empty()) return a.NumRows() * b.NumRows();
  ExecContext& ctx = ResolveExecContext(ctx_in);
  OpTimer op(ctx, "estimate_join_rows", a.NumRows() + b.NumRows());
  std::vector<int> a_cols;
  std::vector<int> b_cols;
  for (AttrId attr : key) {
    a_cols.push_back(a.ColumnOf(attr));
    b_cols.push_back(b.ColumnOf(attr));
  }
  // Group the smaller side in the flat table, probe with the other. Runs
  // are key-verified, so the count is exact.
  const bool build_a = a.NumRows() < b.NumRows();
  const CountedRelation& build = build_a ? a : b;
  const CountedRelation& probe = build_a ? b : a;
  FlatGroupTable& table = ctx.group_table();
  op.set_build_rows(build.NumRows());
  table.Build(build, build_a ? a_cols : b_cols);
  std::vector<uint64_t>& probe_hashes = ctx.hash_buf();
  HashRowKeysBatch(probe, build_a ? b_cols : a_cols, ctx.gather_buf(),
                   probe_hashes);
  const size_t total = ProbeTotalRows(table, probe, build_a ? b_cols : a_cols,
                                      probe_hashes, ctx, threads);
  op.set_rows_out(total);
  return total;
}

}  // namespace lsens
