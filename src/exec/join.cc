#include "exec/join.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace lsens {

namespace {

// Precomputed column routing for one join: where each output column comes
// from, and where the key columns live on each side.
struct JoinLayout {
  AttributeSet out_attrs;
  AttributeSet key;
  std::vector<int> a_key_cols;
  std::vector<int> b_key_cols;
  // For each output column: pair (side, column). side 0 = a, 1 = b.
  std::vector<std::pair<int, int>> out_src;
};

JoinLayout MakeLayout(const CountedRelation& a, const CountedRelation& b) {
  JoinLayout layout;
  layout.out_attrs = Union(a.attrs(), b.attrs());
  layout.key = Intersect(a.attrs(), b.attrs());
  for (AttrId attr : layout.key) {
    layout.a_key_cols.push_back(a.ColumnOf(attr));
    layout.b_key_cols.push_back(b.ColumnOf(attr));
  }
  for (AttrId attr : layout.out_attrs) {
    int ca = a.ColumnOf(attr);
    if (ca >= 0) {
      layout.out_src.emplace_back(0, ca);
    } else {
      layout.out_src.emplace_back(1, b.ColumnOf(attr));
    }
  }
  return layout;
}

uint64_t HashKey(std::span<const Value> row, const std::vector<int>& cols) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int c : cols) {
    h = Mix64(h ^ static_cast<uint64_t>(row[static_cast<size_t>(c)]));
  }
  return h;
}

bool KeysEqual(std::span<const Value> ra, const std::vector<int>& ca,
               std::span<const Value> rb, const std::vector<int>& cb) {
  for (size_t i = 0; i < ca.size(); ++i) {
    if (ra[static_cast<size_t>(ca[i])] != rb[static_cast<size_t>(cb[i])]) {
      return false;
    }
  }
  return true;
}

void EmitRow(const JoinLayout& layout, std::span<const Value> ra,
             std::span<const Value> rb, Count count, CountedRelation* out,
             std::vector<Value>* scratch) {
  scratch->resize(layout.out_src.size());
  for (size_t i = 0; i < layout.out_src.size(); ++i) {
    const auto& [side, col] = layout.out_src[i];
    (*scratch)[i] = (side == 0) ? ra[static_cast<size_t>(col)]
                                : rb[static_cast<size_t>(col)];
  }
  out->AppendRow(*scratch, count);
}

// Join where `b` carries a default and b.attrs ⊆ a.attrs: every a-row
// survives, multiplied by its b-match count or b's default.
CountedRelation JoinWithDefault(const CountedRelation& a,
                                const CountedRelation& b) {
  LSENS_CHECK(IsSubset(b.attrs(), a.attrs()));
  JoinLayout layout = MakeLayout(a, b);  // out_attrs == a.attrs()
  CountedRelation out(layout.out_attrs);
  out.Reserve(a.NumRows());
  std::vector<Value> key(b.attrs().size());
  for (size_t i = 0; i < a.NumRows(); ++i) {
    std::span<const Value> row = a.Row(i);
    for (size_t j = 0; j < layout.a_key_cols.size(); ++j) {
      key[j] = row[static_cast<size_t>(layout.a_key_cols[j])];
    }
    Count multiplier = b.Lookup(key);  // falls back to b's default
    Count c = a.CountAt(i) * multiplier;
    if (!c.IsZero()) out.AppendRow(row, c);
  }
  out.Normalize();
  return out;
}

CountedRelation CrossProduct(const CountedRelation& a,
                             const CountedRelation& b) {
  JoinLayout layout = MakeLayout(a, b);
  CountedRelation out(layout.out_attrs);
  out.Reserve(a.NumRows() * b.NumRows());
  std::vector<Value> scratch;
  for (size_t i = 0; i < a.NumRows(); ++i) {
    for (size_t j = 0; j < b.NumRows(); ++j) {
      EmitRow(layout, a.Row(i), b.Row(j), a.CountAt(i) * b.CountAt(j), &out,
              &scratch);
    }
  }
  out.Normalize();
  return out;
}

CountedRelation HashJoin(const CountedRelation& a, const CountedRelation& b,
                         const JoinLayout& layout) {
  // Build on the smaller side.
  const bool build_a = a.NumRows() < b.NumRows();
  const CountedRelation& build = build_a ? a : b;
  const CountedRelation& probe = build_a ? b : a;
  const std::vector<int>& build_cols =
      build_a ? layout.a_key_cols : layout.b_key_cols;
  const std::vector<int>& probe_cols =
      build_a ? layout.b_key_cols : layout.a_key_cols;

  std::unordered_multimap<uint64_t, uint32_t> table;
  table.reserve(build.NumRows());
  for (size_t i = 0; i < build.NumRows(); ++i) {
    table.emplace(HashKey(build.Row(i), build_cols),
                  static_cast<uint32_t>(i));
  }

  CountedRelation out(layout.out_attrs);
  std::vector<Value> scratch;
  for (size_t j = 0; j < probe.NumRows(); ++j) {
    std::span<const Value> pr = probe.Row(j);
    uint64_t h = HashKey(pr, probe_cols);
    auto [lo, hi] = table.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      std::span<const Value> br = build.Row(it->second);
      if (!KeysEqual(br, build_cols, pr, probe_cols)) continue;
      std::span<const Value> ra = build_a ? br : pr;
      std::span<const Value> rb = build_a ? pr : br;
      EmitRow(layout, ra, rb,
              build.CountAt(it->second) * probe.CountAt(j), &out, &scratch);
    }
  }
  out.Normalize();
  return out;
}

CountedRelation SortMergeJoin(const CountedRelation& a,
                              const CountedRelation& b,
                              const JoinLayout& layout) {
  auto sorted_perm = [](const CountedRelation& r,
                        const std::vector<int>& cols) {
    std::vector<uint32_t> perm(r.NumRows());
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(), [&](uint32_t x, uint32_t y) {
      std::span<const Value> rx = r.Row(x);
      std::span<const Value> ry = r.Row(y);
      for (int c : cols) {
        Value vx = rx[static_cast<size_t>(c)];
        Value vy = ry[static_cast<size_t>(c)];
        if (vx != vy) return vx < vy;
      }
      return false;
    });
    return perm;
  };
  std::vector<uint32_t> pa = sorted_perm(a, layout.a_key_cols);
  std::vector<uint32_t> pb = sorted_perm(b, layout.b_key_cols);

  auto key_cmp = [&](std::span<const Value> ra, std::span<const Value> rb) {
    for (size_t i = 0; i < layout.a_key_cols.size(); ++i) {
      Value va = ra[static_cast<size_t>(layout.a_key_cols[i])];
      Value vb = rb[static_cast<size_t>(layout.b_key_cols[i])];
      if (va < vb) return -1;
      if (va > vb) return 1;
    }
    return 0;
  };

  CountedRelation out(layout.out_attrs);
  std::vector<Value> scratch;
  size_t i = 0;
  size_t j = 0;
  while (i < pa.size() && j < pb.size()) {
    int cmp = key_cmp(a.Row(pa[i]), b.Row(pb[j]));
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      // Find the group extents on both sides.
      size_t i_end = i + 1;
      while (i_end < pa.size() && key_cmp(a.Row(pa[i_end]), b.Row(pb[j])) == 0)
        ++i_end;
      size_t j_end = j + 1;
      while (j_end < pb.size() && key_cmp(a.Row(pa[i]), b.Row(pb[j_end])) == 0)
        ++j_end;
      for (size_t x = i; x < i_end; ++x) {
        for (size_t y = j; y < j_end; ++y) {
          EmitRow(layout, a.Row(pa[x]), b.Row(pb[y]),
                  a.CountAt(pa[x]) * b.CountAt(pb[y]), &out, &scratch);
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  out.Normalize();
  return out;
}

}  // namespace

CountedRelation NaturalJoin(const CountedRelation& a, const CountedRelation& b,
                            const JoinOptions& options) {
  // Defaulted sides: route through the covering-join path.
  if (a.has_default() || b.has_default()) {
    LSENS_CHECK_MSG(!(a.has_default() && b.has_default()),
                    "at most one defaulted side per join");
    if (b.has_default()) {
      LSENS_CHECK_MSG(IsSubset(b.attrs(), a.attrs()),
                      "defaulted side must be attribute-covered by the other");
      return JoinWithDefault(a, b);
    }
    LSENS_CHECK_MSG(IsSubset(a.attrs(), b.attrs()),
                    "defaulted side must be attribute-covered by the other");
    return JoinWithDefault(b, a);
  }

  JoinLayout layout = MakeLayout(a, b);
  if (layout.key.empty()) return CrossProduct(a, b);
  switch (options.algorithm) {
    case JoinAlgorithm::kSortMerge:
      return SortMergeJoin(a, b, layout);
    case JoinAlgorithm::kAuto:
    case JoinAlgorithm::kHash:
      return HashJoin(a, b, layout);
  }
  return HashJoin(a, b, layout);
}

size_t EstimateJoinRows(const CountedRelation& a, const CountedRelation& b) {
  AttributeSet key = Intersect(a.attrs(), b.attrs());
  if (key.empty()) return a.NumRows() * b.NumRows();
  std::vector<int> a_cols;
  std::vector<int> b_cols;
  for (AttrId attr : key) {
    a_cols.push_back(a.ColumnOf(attr));
    b_cols.push_back(b.ColumnOf(attr));
  }
  // Count key multiplicities on the smaller side, probe with the other.
  const bool build_a = a.NumRows() < b.NumRows();
  const CountedRelation& build = build_a ? a : b;
  const CountedRelation& probe = build_a ? b : a;
  const std::vector<int>& build_cols = build_a ? a_cols : b_cols;
  const std::vector<int>& probe_cols = build_a ? b_cols : a_cols;
  // Hash -> row count. 64-bit hashes; collisions only make the *estimate*
  // slightly off, never correctness, so no key verification here.
  std::unordered_map<uint64_t, size_t> freq;
  freq.reserve(build.NumRows());
  for (size_t i = 0; i < build.NumRows(); ++i) {
    ++freq[HashKey(build.Row(i), build_cols)];
  }
  size_t total = 0;
  for (size_t j = 0; j < probe.NumRows(); ++j) {
    auto it = freq.find(HashKey(probe.Row(j), probe_cols));
    if (it != freq.end()) total += it->second;
  }
  return total;
}

}  // namespace lsens
