#include "exec/row_sort.h"

#include <algorithm>
#include <numeric>

#include "exec/exec_context.h"

namespace lsens {

namespace {

// Order-preserving map from int64 to uint64 (flips the sign bit).
inline uint64_t OrderedBits(Value v) {
  return static_cast<uint64_t>(v) ^ (uint64_t{1} << 63);
}

// Stable LSD radix sort of `keys` by .key, one counting pass per byte that
// actually varies across the input (real-world key domains are narrow, so
// this is typically 2-4 passes instead of 16). `tmp` is the ping-pong
// buffer; both vectors may end up swapped, which is fine — they are arena
// slots of the same context.
void RadixSortKeys(std::vector<SortKeyRef>& keys, std::vector<SortKeyRef>& tmp,
                   unsigned __int128 varying) {
  tmp.resize(keys.size());
  for (int b = 0; b < 16; ++b) {
    const int shift = 8 * b;
    if (((varying >> shift) & 0xff) == 0) continue;
    size_t count[256] = {};
    for (const SortKeyRef& k : keys) {
      ++count[static_cast<size_t>((k.key >> shift) & 0xff)];
    }
    size_t pos[256];
    size_t run = 0;
    for (int i = 0; i < 256; ++i) {
      pos[i] = run;
      run += count[i];
    }
    for (const SortKeyRef& k : keys) {
      tmp[pos[static_cast<size_t>((k.key >> shift) & 0xff)]++] = k;
    }
    keys.swap(tmp);
  }
}

// Same stable LSD radix, specialized to the fixed-width 64-bit single-key
// element: half the element size of SortKeyRef, identical ordering (the
// wide path zero-fills its low 64 bits for one-column sorts, so both walk
// the same varying bytes and break ties by idx the same way).
void RadixSortKeys64(std::vector<SortKey64>& keys, std::vector<SortKey64>& tmp,
                     uint64_t varying) {
  tmp.resize(keys.size());
  for (int b = 0; b < 8; ++b) {
    const int shift = 8 * b;
    if (((varying >> shift) & 0xff) == 0) continue;
    size_t count[256] = {};
    for (const SortKey64& k : keys) {
      ++count[static_cast<size_t>((k.key >> shift) & 0xff)];
    }
    size_t pos[256];
    size_t run = 0;
    for (int i = 0; i < 256; ++i) {
      pos[i] = run;
      run += count[i];
    }
    for (const SortKey64& k : keys) {
      tmp[pos[static_cast<size_t>((k.key >> shift) & 0xff)]++] = k;
    }
    keys.swap(tmp);
  }
}

// Single-key-column sort: fills `perm` ordered by column c0, ties by row
// index. Produces exactly the permutation the 128-bit path would (stable
// sort of the same key sequence), just through narrower elements.
void SortRowsBySingle(const CountedRelation& r, int c0,
                      std::vector<uint32_t>& perm, ExecContext& ctx) {
  const size_t n = r.NumRows();
  std::vector<SortKey64>& keys = ctx.sort_keys64();
  keys.resize(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i].key = OrderedBits(r.Row(i)[static_cast<size_t>(c0)]);
    keys[i].idx = static_cast<uint32_t>(i);
  }
  uint64_t varying = 0;
  for (const SortKey64& k : keys) varying |= k.key ^ keys[0].key;
  if (n >= 256) {
    RadixSortKeys64(keys, ctx.sort_keys64_tmp(), varying);
  } else {
    std::sort(keys.begin(), keys.end(),
              [](const SortKey64& x, const SortKey64& y) {
                if (x.key != y.key) return x.key < y.key;
                return x.idx < y.idx;
              });
  }
  for (size_t i = 0; i < n; ++i) perm[i] = keys[i].idx;
}

}  // namespace

bool RowsSortedBy(const CountedRelation& r, std::span<const int> cols) {
  for (size_t i = 1; i < r.NumRows(); ++i) {
    if (CompareRowsAt(r.Row(i - 1), r.Row(i), cols) > 0) return false;
  }
  return true;
}

bool SortRowsBy(const CountedRelation& r, std::span<const int> cols,
                std::vector<uint32_t>& perm, ExecContext& ctx) {
  const size_t n = r.NumRows();
  perm.resize(n);
  std::iota(perm.begin(), perm.end(), 0);
  if (cols.empty() || RowsSortedBy(r, cols)) return true;

  // One key column: the fixed-width 64-bit specialization.
  if (cols.size() == 1) {
    SortRowsBySingle(r, cols[0], perm, ctx);
    return false;
  }

  // The first two key columns ride inline in a 128-bit key (sign-flipped
  // so unsigned comparison preserves int64 order); row data is only
  // touched again when a wider key ties on both.
  std::vector<SortKeyRef>& keys = ctx.sort_keys();
  keys.resize(n);
  const int c0 = cols[0];
  const int c1 = cols.size() > 1 ? cols[1] : c0;
  for (size_t i = 0; i < n; ++i) {
    std::span<const Value> row = r.Row(i);
    const uint64_t hi = OrderedBits(row[static_cast<size_t>(c0)]);
    const uint64_t lo = cols.size() > 1
                            ? OrderedBits(row[static_cast<size_t>(c1)])
                            : uint64_t{0};
    keys[i].key = (static_cast<unsigned __int128>(hi) << 64) | lo;
    keys[i].idx = static_cast<uint32_t>(i);
  }

  // Which key bytes vary decides between radix (narrow domains: a few
  // linear passes) and introsort (wide domains or tiny inputs).
  unsigned __int128 varying = 0;
  for (const SortKeyRef& k : keys) varying |= k.key ^ keys[0].key;
  int varying_bytes = 0;
  for (int b = 0; b < 16; ++b) {
    if ((varying >> (8 * b)) & 0xff) ++varying_bytes;
  }
  const bool use_radix = n >= 256 && varying_bytes <= 10;
  std::span<const int> rest =
      cols.size() > 2 ? cols.subspan(2) : std::span<const int>{};

  if (use_radix) {
    RadixSortKeys(keys, ctx.sort_keys_tmp(), varying);
    if (!rest.empty()) {
      // Stable radix ordered ties by row index; re-sort each equal-key run
      // by the remaining columns.
      size_t begin = 0;
      while (begin < n) {
        size_t end = begin + 1;
        while (end < n && keys[end].key == keys[begin].key) ++end;
        if (end - begin > 1) {
          std::sort(keys.begin() + static_cast<ptrdiff_t>(begin),
                    keys.begin() + static_cast<ptrdiff_t>(end),
                    [&](const SortKeyRef& x, const SortKeyRef& y) {
                      const int cmp =
                          CompareRowsAt(r.Row(x.idx), r.Row(y.idx), rest);
                      if (cmp != 0) return cmp < 0;
                      return x.idx < y.idx;
                    });
        }
        begin = end;
      }
    }
  } else if (rest.empty()) {
    std::sort(keys.begin(), keys.end(),
              [](const SortKeyRef& x, const SortKeyRef& y) {
                if (x.key != y.key) return x.key < y.key;
                return x.idx < y.idx;
              });
  } else {
    std::sort(keys.begin(), keys.end(),
              [&](const SortKeyRef& x, const SortKeyRef& y) {
                if (x.key != y.key) return x.key < y.key;
                const int cmp = CompareRowsAt(r.Row(x.idx), r.Row(y.idx), rest);
                if (cmp != 0) return cmp < 0;
                return x.idx < y.idx;
              });
  }
  for (size_t i = 0; i < n; ++i) perm[i] = keys[i].idx;
  return false;
}

}  // namespace lsens
