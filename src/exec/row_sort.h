#ifndef LSENS_EXEC_ROW_SORT_H_
#define LSENS_EXEC_ROW_SORT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "exec/counted_relation.h"

namespace lsens {

class ExecContext;

// Shared sort/merge machinery for the row-at-a-time operators: Normalize,
// GroupBySum, the sort-merge join, and the cost-based algorithm picker all
// order rows by a column subset through these helpers instead of each
// carrying its own comparison loop.

// Sort element: the row's first two key values (sign-flipped so unsigned
// comparison preserves int64 order) packed into one 128-bit key, plus the
// row index. Keeping the leading values contiguous lets comparisons for
// keys of up to two columns resolve on `key` alone (ties broken by `idx`
// for stability); wider keys gather the row data only on a two-column
// tie.
struct SortKeyRef {
  unsigned __int128 key;
  uint32_t idx;
};

// Fixed-width element of the single-key-column specialization: the one key
// value sign-flipped into a uint64, plus the row index. Half the footprint
// of SortKeyRef, so the radix passes of the overwhelmingly common
// one-column sort (join keys, group-by drivers) move half the bytes.
struct SortKey64 {
  uint64_t key;
  uint32_t idx;
};

// Lexicographic comparison of two rows restricted to `cols` (column
// positions into each row; both rows use the same routing).
inline int CompareRowsAt(std::span<const Value> a, std::span<const Value> b,
                         std::span<const int> cols) {
  for (int c : cols) {
    const Value va = a[static_cast<size_t>(c)];
    const Value vb = b[static_cast<size_t>(c)];
    if (va < vb) return -1;
    if (va > vb) return 1;
  }
  return 0;
}

// True if the rows of `r` are already sorted by `cols` (non-decreasing).
// O(n * |cols|); the picker uses this to cost a zero-sort merge join, the
// sorters to skip their std::sort.
bool RowsSortedBy(const CountedRelation& r, std::span<const int> cols);

// Fills `perm` with a permutation of [0, r.NumRows()) ordering rows by
// `cols`, ties broken by row index (stable). Leaves `perm` as the identity
// without sorting when the input is already ordered; returns true in that
// case. Scratch (the SortKeyRef array) comes from `ctx`.
bool SortRowsBy(const CountedRelation& r, std::span<const int> cols,
                std::vector<uint32_t>& perm, ExecContext& ctx);

// Invokes `emit(begin, end)` for every maximal run perm[begin..end) of rows
// with equal values on `cols`, in sorted order.
template <typename Fn>
void ForEachSortedGroup(const CountedRelation& r, std::span<const int> cols,
                        std::span<const uint32_t> perm, Fn&& emit) {
  size_t begin = 0;
  while (begin < perm.size()) {
    size_t end = begin + 1;
    while (end < perm.size() &&
           CompareRowsAt(r.Row(perm[begin]), r.Row(perm[end]), cols) == 0) {
      ++end;
    }
    emit(begin, end);
    begin = end;
  }
}

}  // namespace lsens

#endif  // LSENS_EXEC_ROW_SORT_H_
