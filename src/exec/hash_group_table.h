#ifndef LSENS_EXEC_HASH_GROUP_TABLE_H_
#define LSENS_EXEC_HASH_GROUP_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "exec/counted_relation.h"

namespace lsens {

// Mixes the values of `cols` of one row into a 64-bit key hash.
uint64_t HashRowKey(std::span<const Value> row, std::span<const int> cols);

// Key hashes for every row of `rel` at once: gathers each key column into
// `gather` (one strided pass per column) and folds it over the whole batch
// with HashValuesBatchFold, so the inner loop runs over two contiguous
// arrays. hashes[i] == HashRowKey(rel.Row(i), cols) — the batch and scalar
// forms are interchangeable, which is what lets a build side hash its keys
// in bulk while a single-row probe hashes on the fly.
void HashRowKeysBatch(const CountedRelation& rel, std::span<const int> cols,
                      std::vector<Value>& gather,
                      std::vector<uint64_t>& hashes);

// Flat open-addressing group table over the key columns of a
// CountedRelation: the hash-join build side, semijoin filter, and join-size
// estimator all sit on top of it.
//
// Storage is two contiguous arrays — a power-of-two bucket array (the
// shared flat-probe scheme from exec/flat_row_index.h: linear probing on
// 64-bit mixed key hashes at load factor <= 0.5, verified against the
// group's representative row so collisions can never produce wrong
// matches) and a
// row-index array holding each group's rows as one contiguous run — so a
// build does no per-node allocation and probes touch at most two cache
// lines for the common single-group hit. Both arrays keep their capacity
// across Build() calls, which is why ExecContext owns one as an arena.
//
// The table aliases `rel` (no row data is copied); it is valid only while
// the relation outlives it and is wholly replaced by the next Build().
class FlatGroupTable {
 public:
  FlatGroupTable() = default;

  // Indexes `rel` by the given key columns. Key hashes are computed in one
  // column-batch pass (HashRowKeysBatch) before the bucket insertion loop.
  void Build(const CountedRelation& rel, std::span<const int> key_cols);

  // The run of build-side row indices whose key equals `row`'s values on
  // `probe_cols` (column routing of the probing relation; must have the
  // same arity as the build key). Empty span when no group matches.
  std::span<const uint32_t> Probe(std::span<const Value> row,
                                  std::span<const int> probe_cols) const;

  // Probe with a precomputed key hash (HashRowKey(row, probe_cols), or the
  // batch equivalent) — join kernels hash a probe side once and reuse the
  // hashes across the estimate and emit passes.
  std::span<const uint32_t> Probe(std::span<const Value> row,
                                  std::span<const int> probe_cols,
                                  uint64_t hash) const;

  size_t num_groups() const { return num_groups_; }
  size_t num_rows() const { return rows_.size(); }

 private:
  struct Slot {
    uint64_t hash = 0;
    uint32_t rep = 0;     // representative row, for key verification
    uint32_t size = 0;    // 0 = empty slot
    uint32_t begin = 0;   // offset of the group's run in rows_
    uint32_t cursor = 0;  // scatter cursor during Build()
  };

  std::vector<Slot> slots_;      // bucket array, power-of-two sized
  std::vector<uint32_t> rows_;   // group-run row-index array
  std::vector<uint32_t> row_slot_;  // build scratch: row -> slot index
  std::vector<uint64_t> hashes_;    // build scratch: per-row key hashes
  std::vector<Value> gather_;       // build scratch: one key column
  const CountedRelation* rel_ = nullptr;
  std::vector<int> key_cols_;
  uint64_t mask_ = 0;
  size_t num_groups_ = 0;
};

}  // namespace lsens

#endif  // LSENS_EXEC_HASH_GROUP_TABLE_H_
