#include "exec/fold_join.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "exec/exec_context.h"

namespace lsens {

CountedRelation FoldJoin(std::vector<const CountedRelation*> pieces,
                         const JoinOptions& options) {
  if (pieces.empty()) return CountedRelation::Unit();
  ExecContext& ctx = ResolveExecContext(options.ctx);
  uint64_t rows_in = 0;
  for (const CountedRelation* piece : pieces) rows_in += piece->NumRows();
  OpTimer op(ctx, "fold_join", rows_in);

  std::vector<const CountedRelation*> remaining = pieces;
  // Start from the smallest non-defaulted piece; if everything is
  // defaulted (degenerate), undo the first piece's truncation semantics by
  // treating its explicit rows as exact (sound upper-bound direction is
  // preserved because defaults only ever raise counts).
  size_t start = SIZE_MAX;
  for (size_t i = 0; i < remaining.size(); ++i) {
    if (remaining[i]->has_default()) continue;
    if (start == SIZE_MAX ||
        remaining[i]->NumRows() < remaining[start]->NumRows()) {
      start = i;
    }
  }
  LSENS_CHECK_MSG(start != SIZE_MAX,
                  "FoldJoin needs at least one non-defaulted piece");
  CountedRelation acc = *remaining[start];
  remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(start));

  while (!remaining.empty()) {
    // Pick the piece minimizing the joined row count; among pieces that
    // share no attribute with the accumulator (cross products) only pick
    // one if no sharing piece exists. Defaulted pieces are eligible only
    // when covered by the accumulator's attributes.
    size_t best = SIZE_MAX;
    size_t best_rows = std::numeric_limits<size_t>::max();
    bool best_shares = false;
    for (size_t i = 0; i < remaining.size(); ++i) {
      const CountedRelation* piece = remaining[i];
      if (piece->has_default() && !IsSubset(piece->attrs(), acc.attrs())) {
        continue;
      }
      bool shares = Intersects(piece->attrs(), acc.attrs());
      size_t rows = piece->has_default()
                        ? acc.NumRows()  // covering join keeps acc's rows
                        : EstimateJoinRows(acc, *piece, options.ctx,
                                           options.threads);
      if (best == SIZE_MAX || (shares && !best_shares) ||
          (shares == best_shares && rows < best_rows)) {
        best = i;
        best_rows = rows;
        best_shares = shares;
      }
    }
    if (best == SIZE_MAX) {
      // Only deferred defaulted pieces remain and none is covered. Undoing
      // their truncation is not possible (rows were dropped); instead join
      // them as exact relations over their explicit rows plus keep the
      // default as a multiplier floor is unsound. This situation is
      // prevented by TSens (it disables top-k truncation for relations
      // consumed in attribute-introducing positions), so reaching it is a
      // programming error.
      LSENS_CHECK_MSG(false,
                      "defaulted piece never covered by the accumulator");
    }
    acc = NaturalJoin(acc, *remaining[best], options);
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best));
  }
  op.set_rows_out(acc.NumRows());
  return acc;
}

}  // namespace lsens
