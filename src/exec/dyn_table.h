#ifndef LSENS_EXEC_DYN_TABLE_H_
#define LSENS_EXEC_DYN_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/count.h"
#include "common/macros.h"
#include "exec/counted_relation.h"
#include "exec/flat_row_index.h"
#include "storage/attribute_set.h"

namespace lsens {

// An incrementally maintainable group table: the mutable counterpart of a
// normalized CountedRelation, built for the incremental sensitivity
// subsystem (sensitivity/incremental.h). Where CountedRelation is a sorted
// immutable snapshot rebuilt by each operator, a DynTable supports point
// upserts and erasures between snapshots:
//
//   - rows live in flat row-major storage with a free list (row ids are
//     stable until the row is erased);
//   - a primary hash index on the full key row answers point lookups and
//     upserts in O(1);
//   - secondary indexes on column subsets answer the two questions delta
//     repair asks: "which groups are affected by this changed key?" and
//     "which rows re-aggregate into this group?".
//
// Counts must stay exact for repair to be sound (x + y - y != x once
// saturated), so any saturated count poisons the table; owners check
// saturated() before repairing and fall back to full recomputation
// (RepairInPlace in sensitivity/incremental.cc does exactly that).
//
// Indexes are flat open-addressing arrays with tombstones (FlatRowIndex —
// the same probing scheme as FlatGroupTable, see exec/flat_row_index.h):
// no per-node allocation, probes walk a contiguous bucket array, and one
// probe sequence resolves lookup, insert position, and erase, so Set and
// Adjust hash their key exactly once. Secondary indexes keep one entry
// per distinct projected key and chain that key's rows through intrusive
// doubly-linked row lists, so a group lookup reads exactly the group and
// erasing a non-head row never probes at all. Load pre-reserves every
// index for the snapshot size; rehashes compact tombstones.
//
// Thread-safety: const lookups (Get / FindRow / LookupIndex / row
// accessors) may run concurrently with each other — sharded repair reads
// driver and input tables from several workers — and write nothing, not
// even stats. Mutations require exclusive access; stats() counts the
// mutating paths only.
class DynTable {
 public:
  static constexpr uint32_t kNoRow = UINT32_MAX;

  // Work counters for the mutating hot path, exposed so the single-probe
  // contract is pinned by tests and cannot silently regress: a Set or
  // Adjust of an existing key costs exactly one key hash and one primary
  // probe sequence (the multimap layout this replaced hashed and probed
  // twice), and a row insert/erase adds at most one hash per secondary
  // index (none for erasing a non-head chain row).
  struct Stats {
    uint64_t key_hashes = 0;  // HashKey/HashCols evaluations
    uint64_t locates = 0;     // primary-index probe sequences started
    uint64_t rehashes = 0;    // index rebuilds (growth or compaction)
  };

  explicit DynTable(AttributeSet attrs);

  const AttributeSet& attrs() const { return attrs_; }
  size_t arity() const { return attrs_.size(); }
  size_t num_rows() const { return live_rows_; }
  bool saturated() const { return saturated_; }

  // Replaces the contents with the rows of a normalized CountedRelation
  // (same attrs; no default). Registered secondary indexes are rebuilt;
  // row storage and every index are pre-reserved for the snapshot size so
  // the load itself never rehashes.
  void Load(const CountedRelation& rel);

  // Load without requiring equal attribute ids — only equal arity (and no
  // default). The cross-query plan cache keys shared tables by canonical
  // subtree signature: the attribute *ids* differ per query, but equal
  // signatures guarantee the same column order, so rows transfer
  // positionally. Clears any saturation poison exactly like Load.
  void LoadRows(const CountedRelation& rel);

  // Drops every row, count, and index bucket array and returns their
  // memory, keeping only the table identity (attrs and registered
  // secondary-index column lists, so parent recipes holding index ids
  // survive). The byte-budget spill policy in SensitivityCache releases
  // least-recently-used shared nodes with this; a later Load rebuilds
  // everything from a fresh snapshot.
  void Release();

  // Registers a secondary index on the given column positions (need not be
  // sorted; lookups present keys in the same order). Re-registering an
  // identical column list returns the existing id.
  int AddIndex(std::vector<int> cols);

  // Point lookup by full key row; Zero when absent.
  Count Get(std::span<const Value> key) const;
  uint32_t FindRow(std::span<const Value> key) const;

  // Sets `key`'s count to `c`: inserts when absent, erases when `c` is
  // zero. Returns the previous count.
  Count Set(std::span<const Value> key, Count c);

  // Adds (positive) or removes (negative) `c` copies: the signed
  // adjustment sources apply per change-log entry. A zero `c` is a no-op.
  // Returns false — leaving the table unchanged but flagged saturated —
  // when the adjustment is not exactly representable: the count would
  // saturate, or more copies are removed than present (a stale log).
  bool Adjust(std::span<const Value> key, Count c, bool add);

  // Appends the live row ids whose `index_id` columns equal `key`.
  void LookupIndex(int index_id, std::span<const Value> key,
                   std::vector<uint32_t>* out) const;

  std::span<const Value> RowValues(uint32_t row) const {
    return {data_.data() + static_cast<size_t>(row) * arity(), arity()};
  }
  Count RowCount(uint32_t row) const { return counts_[row]; }
  bool RowLive(uint32_t row) const { return alive_[row] != 0; }

  // Calls fn(row_id) for every live row.
  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    for (uint32_t r = 0; r < counts_.size(); ++r) {
      if (alive_[r]) fn(r);
    }
  }

  // Heap footprint of the table: row storage, free list, and every index's
  // bucket array. The byte-budget eviction policy in SensitivityCache sums
  // this over an entry's repair state.
  size_t MemoryBytes() const;

  Stats stats() const {
    Stats s = stats_;
    s.rehashes = primary_.rehashes();
    for (const Index& index : secondary_) {
      s.rehashes += index.heads.rehashes();
    }
    return s;
  }

 private:
  struct Index {
    std::vector<int> cols;
    // Projected-key hash -> head row of the key's chain (one entry per
    // distinct key; collisions resolved by verifying the head row's
    // projected values). Duplicate-hash slots would merge into one probe
    // cluster — group members live in the links below instead.
    FlatRowIndex heads;
    // Intrusive doubly-linked chain through the key's rows; kNoRow ends.
    // prev == kNoRow marks the head. Sized like counts_.
    std::vector<uint32_t> next;
    std::vector<uint32_t> prev;
  };

  uint64_t HashCols(std::span<const Value> row,
                    std::span<const int> cols) const;
  uint64_t HashKey(std::span<const Value> key) const;
  bool KeyEquals(uint32_t row, std::span<const Value> key) const;
  // Places `key` into the row slots and every index. `cur` is the primary
  // cursor of the Locate miss that established absence.
  uint32_t InsertRow(FlatRowIndex::Cursor cur, uint64_t hash,
                     std::span<const Value> key, Count c);
  // Removes `row` (the hit `cur` refers to) from every index and frees it.
  void EraseRow(FlatRowIndex::Cursor cur);
  // Links `row` into / out of a secondary index's key chain.
  void IndexInsert(Index& index, uint32_t row);
  void IndexErase(Index& index, uint32_t row);

  AttributeSet attrs_;
  std::vector<Value> data_;    // flat row-major, arity() stride
  std::vector<Count> counts_;
  std::vector<uint8_t> alive_;
  std::vector<uint32_t> free_;
  size_t live_rows_ = 0;
  bool saturated_ = false;
  FlatRowIndex primary_;
  std::vector<Index> secondary_;
  Stats stats_;
};

}  // namespace lsens

#endif  // LSENS_EXEC_DYN_TABLE_H_
