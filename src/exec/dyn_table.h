#ifndef LSENS_EXEC_DYN_TABLE_H_
#define LSENS_EXEC_DYN_TABLE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/count.h"
#include "common/macros.h"
#include "exec/counted_relation.h"
#include "storage/attribute_set.h"

namespace lsens {

// An incrementally maintainable group table: the mutable counterpart of a
// normalized CountedRelation, built for the incremental sensitivity
// subsystem (sensitivity/incremental.h). Where CountedRelation is a sorted
// immutable snapshot rebuilt by each operator, a DynTable supports point
// upserts and erasures between snapshots:
//
//   - rows live in flat row-major storage with a free list (row ids are
//     stable until the row is erased);
//   - a primary hash index on the full key row answers point lookups and
//     upserts in O(1);
//   - secondary indexes on column subsets answer the two questions delta
//     repair asks: "which groups are affected by this changed key?" and
//     "which rows re-aggregate into this group?".
//
// Counts must stay exact for repair to be sound (x + y - y != x once
// saturated), so any saturated count poisons the table; owners check
// saturated() before repairing and fall back to full recomputation
// (RepairInPlace in sensitivity/incremental.cc does exactly that).
//
// Indexes are unordered_multimaps over 64-bit key hashes with row-value
// verification — simple and deletion-friendly, but pointer-chasing; a
// flat open-addressing layout with tombstones is a known follow-up (see
// ROADMAP open items).
class DynTable {
 public:
  static constexpr uint32_t kNoRow = UINT32_MAX;

  explicit DynTable(AttributeSet attrs);

  const AttributeSet& attrs() const { return attrs_; }
  size_t arity() const { return attrs_.size(); }
  size_t num_rows() const { return live_rows_; }
  bool saturated() const { return saturated_; }

  // Replaces the contents with the rows of a normalized CountedRelation
  // (same attrs; no default). Registered secondary indexes are rebuilt.
  void Load(const CountedRelation& rel);

  // Registers a secondary index on the given column positions (need not be
  // sorted; lookups present keys in the same order). Re-registering an
  // identical column list returns the existing id.
  int AddIndex(std::vector<int> cols);

  // Point lookup by full key row; Zero when absent.
  Count Get(std::span<const Value> key) const;
  uint32_t FindRow(std::span<const Value> key) const;

  // Sets `key`'s count to `c`: inserts when absent, erases when `c` is
  // zero. Returns the previous count.
  Count Set(std::span<const Value> key, Count c);

  // Adds (positive) or removes (negative) `c` copies: the signed
  // adjustment sources apply per change-log entry. A zero `c` is a no-op.
  // Returns false — leaving the table unchanged but flagged saturated —
  // when the adjustment is not exactly representable: the count would
  // saturate, or more copies are removed than present (a stale log).
  bool Adjust(std::span<const Value> key, Count c, bool add);

  // Appends the live row ids whose `index_id` columns equal `key`.
  void LookupIndex(int index_id, std::span<const Value> key,
                   std::vector<uint32_t>* out) const;

  std::span<const Value> RowValues(uint32_t row) const {
    return {data_.data() + static_cast<size_t>(row) * arity(), arity()};
  }
  Count RowCount(uint32_t row) const { return counts_[row]; }
  bool RowLive(uint32_t row) const { return alive_[row] != 0; }

  // Calls fn(row_id) for every live row.
  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    for (uint32_t r = 0; r < counts_.size(); ++r) {
      if (alive_[r]) fn(r);
    }
  }

 private:
  struct Index {
    std::vector<int> cols;
    // Hash of the projected key -> row id; collisions resolved by
    // verifying the actual row values on lookup.
    std::unordered_multimap<uint64_t, uint32_t> map;
  };

  uint64_t HashCols(std::span<const Value> row,
                    std::span<const int> cols) const;
  uint64_t HashKey(std::span<const Value> key) const;
  bool KeyEquals(uint32_t row, std::span<const Value> key) const;
  uint32_t InsertRow(std::span<const Value> key, Count c);
  void EraseRow(uint32_t row);
  void IndexInsert(Index& index, uint32_t row);
  void IndexErase(Index& index, uint32_t row);

  AttributeSet attrs_;
  std::vector<Value> data_;    // flat row-major, arity() stride
  std::vector<Count> counts_;
  std::vector<uint8_t> alive_;
  std::vector<uint32_t> free_;
  size_t live_rows_ = 0;
  bool saturated_ = false;
  std::unordered_multimap<uint64_t, uint32_t> primary_;
  std::vector<Index> secondary_;
};

}  // namespace lsens

#endif  // LSENS_EXEC_DYN_TABLE_H_
