#ifndef LSENS_EXEC_JOIN_H_
#define LSENS_EXEC_JOIN_H_

#include "exec/counted_relation.h"

namespace lsens {

// Natural-join algorithm selection. kAuto = hash join (sort-merge is kept
// for cross-checking and because the paper describes its algorithms with
// sort-merge joins; both produce identical normalized outputs).
enum class JoinAlgorithm { kAuto, kHash, kSortMerge };

struct JoinOptions {
  JoinAlgorithm algorithm = JoinAlgorithm::kAuto;
};

// The paper's r⋈ operator: natural join on the shared attributes with
// multiplicity (cnt) propagation by product. Output attributes are the
// sorted union; an empty intersection yields a cross product.
//
// Defaulted (top-k truncated) inputs: at most one side may carry a
// default_count, and that side's attributes must be covered by the other
// side's (so unmatched rows of the covering side pick up the default
// multiplier and no unbounded row set needs materializing). Violations
// CHECK-fail; callers arrange join orders accordingly.
CountedRelation NaturalJoin(const CountedRelation& a, const CountedRelation& b,
                            const JoinOptions& options = {});

// Exact number of result rows NaturalJoin(a, b) would produce, computed in
// O(|a| + |b|) with a hash of key cardinalities. Used by FoldJoin's greedy
// join-order heuristic.
size_t EstimateJoinRows(const CountedRelation& a, const CountedRelation& b);

}  // namespace lsens

#endif  // LSENS_EXEC_JOIN_H_
