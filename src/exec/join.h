#ifndef LSENS_EXEC_JOIN_H_
#define LSENS_EXEC_JOIN_H_

#include "exec/counted_relation.h"

namespace lsens {

class ExecContext;

// Natural-join algorithm selection. kAuto runs the cost-based picker
// (ChooseJoinAlgorithm): it weighs hash build/probe against sort-merge,
// crediting sides that are already ordered on the join key (a sorted merge
// needs no sort at all) and consulting the exact output size from the
// estimator. kHash / kSortMerge force one kernel; both produce identical
// normalized outputs (the paper describes its algorithms with sort-merge
// joins, so that kernel is also the cross-check oracle).
enum class JoinAlgorithm { kAuto, kHash, kSortMerge };

struct JoinOptions {
  JoinAlgorithm algorithm = JoinAlgorithm::kAuto;
  // Execution context supplying scratch arenas and collecting operator
  // stats. Null = the thread-local default context.
  ExecContext* ctx = nullptr;
  // Maximum parallelism for the partitioned probe of large hash joins
  // (and for the parallel regions of the sensitivity engine, which reads
  // this knob through TSensOptions::join). 0 or 1 = fully serial, today's
  // behavior. Results are bit-identical at every setting; see the
  // "Threading model" section of the README.
  int threads = 0;
};

// `base` with the context swapped for a pooled worker's and parallelism
// disabled — the options every operator invoked *inside* a parallel region
// must run with (regions never nest; see common/thread_pool.h).
inline JoinOptions WorkerJoinOptions(const JoinOptions& base,
                                     ExecContext& worker_ctx) {
  JoinOptions o = base;
  o.ctx = &worker_ctx;
  o.threads = 0;
  return o;
}

// The paper's r⋈ operator: natural join on the shared attributes with
// multiplicity (cnt) propagation by product. Output attributes are the
// sorted union; an empty intersection yields a cross product.
//
// Defaulted (top-k truncated) inputs: at most one side may carry a
// default_count, and that side's attributes must be covered by the other
// side's (so unmatched rows of the covering side pick up the default
// multiplier and no unbounded row set needs materializing). Violations
// CHECK-fail; callers arrange join orders accordingly.
CountedRelation NaturalJoin(const CountedRelation& a, const CountedRelation& b,
                            const JoinOptions& options = {});

// The algorithm kAuto would run for NaturalJoin(a, b): a cost model over
// the input sizes, key-order of each side (RowsSortedBy), and the exact
// join cardinality from EstimateJoinRows. Exposed for tests and explain
// output. Joins that never reach the hash/sort-merge decision — defaulted
// sides and empty join keys — report kHash (their dedicated paths ignore
// the picker).
JoinAlgorithm ChooseJoinAlgorithm(const CountedRelation& a,
                                  const CountedRelation& b,
                                  ExecContext* ctx = nullptr);

// Exact number of result rows NaturalJoin(a, b) would produce, computed in
// O(|a| + |b|) with a flat hash-group table on the smaller side (key
// verification included, so the count is exact even under hash
// collisions). Used by FoldJoin's greedy join-order heuristic and the
// cost-based picker. `threads` > 1 chunk-sums large probe sides on the
// global pool (the count is unchanged).
size_t EstimateJoinRows(const CountedRelation& a, const CountedRelation& b,
                        ExecContext* ctx = nullptr, int threads = 0);

}  // namespace lsens

#endif  // LSENS_EXEC_JOIN_H_
