#include "exec/exec_context.h"

#include <algorithm>

namespace lsens {

void ExecContext::Record(std::string_view op, uint64_t rows_in,
                         uint64_t rows_out, uint64_t build_rows,
                         double wall_seconds) {
  if (!collect_stats) return;
  auto it = std::find_if(stats_.begin(), stats_.end(),
                         [&](const OperatorStats& s) { return s.name == op; });
  if (it == stats_.end()) {
    stats_.emplace_back();
    it = stats_.end() - 1;
    it->name = std::string(op);
  }
  ++it->calls;
  it->rows_in += rows_in;
  it->rows_out += rows_out;
  it->build_rows += build_rows;
  it->wall_seconds += wall_seconds;
}

const OperatorStats* ExecContext::FindStats(std::string_view op) const {
  auto it = std::find_if(stats_.begin(), stats_.end(),
                         [&](const OperatorStats& s) { return s.name == op; });
  return it == stats_.end() ? nullptr : &*it;
}

ExecContext& DefaultExecContext() {
  thread_local ExecContext ctx;
  return ctx;
}

}  // namespace lsens
