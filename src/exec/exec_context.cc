#include "exec/exec_context.h"

#include <algorithm>
#include <string>

#include "common/macros.h"
#include "common/thread_pool.h"

namespace lsens {

ExecContext::~ExecContext() = default;

void ExecContext::Record(std::string_view op, uint64_t rows_in,
                         uint64_t rows_out, uint64_t build_rows,
                         double wall_seconds) {
  if (!collect_stats) return;
  auto it = std::find_if(stats_.begin(), stats_.end(),
                         [&](const OperatorStats& s) { return s.name == op; });
  if (it == stats_.end()) {
    stats_.emplace_back();
    it = stats_.end() - 1;
    it->name = std::string(op);
  }
  ++it->calls;
  it->rows_in += rows_in;
  it->rows_out += rows_out;
  it->build_rows += build_rows;
  it->wall_seconds += wall_seconds;
}

void ExecContext::MergeStats(const OperatorStats& other) {
  if (!collect_stats) return;
  auto it = std::find_if(
      stats_.begin(), stats_.end(),
      [&](const OperatorStats& s) { return s.name == other.name; });
  if (it == stats_.end()) {
    stats_.push_back(OperatorStats{});
    it = stats_.end() - 1;
    it->name = other.name;
  }
  it->calls += other.calls;
  it->rows_in += other.rows_in;
  it->rows_out += other.rows_out;
  it->build_rows += other.build_rows;
  it->wall_seconds += other.wall_seconds;
}

const OperatorStats* ExecContext::FindStats(std::string_view op) const {
  auto it = std::find_if(stats_.begin(), stats_.end(),
                         [&](const OperatorStats& s) { return s.name == op; });
  return it == stats_.end() ? nullptr : &*it;
}

ExecContextPool& ExecContext::worker_contexts() {
  if (workers_ == nullptr) workers_ = std::make_unique<ExecContextPool>();
  return *workers_;
}

void ExecContextPool::Ensure(size_t n, bool collect_stats) {
  while (contexts_.size() < n) {
    auto ctx = std::make_unique<ExecContext>();
    ctx->is_pool_worker_ = true;
    contexts_.push_back(std::move(ctx));
  }
  for (auto& ctx : contexts_) ctx->collect_stats = collect_stats;
}

void ExecContextPool::MergeStatsInto(ExecContext& into) {
  std::vector<std::string> names;
  for (const auto& ctx : contexts_) {
    for (const OperatorStats& s : ctx->stats()) names.push_back(s.name);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  for (const std::string& name : names) {
    for (const auto& ctx : contexts_) {
      if (const OperatorStats* s = ctx->FindStats(name)) into.MergeStats(*s);
    }
  }
  for (auto& ctx : contexts_) ctx->ResetStats();
}

ExecContext& DefaultExecContext() {
#ifndef NDEBUG
  // A pooled worker reaching the fallback means some operator in a parallel
  // region was called without its worker context — its stats would vanish
  // into a context nobody merges. Thread the context through instead.
  LSENS_CHECK_MSG(!ThreadPool::OnWorkerThread(),
                  "thread-local ExecContext fallback hit on a pool worker; "
                  "pass the worker context from ParallelApply");
#endif
  thread_local ExecContext ctx;
  return ctx;
}

bool ShouldRunParallel(int threads, size_t n) {
  return threads > 1 && n > 1 && !ThreadPool::OnWorkerThread();
}

void ParallelApply(ExecContext& primary, int threads, size_t n,
                   const std::function<void(size_t, ExecContext&)>& fn) {
  if (n == 0) return;
  if (!ShouldRunParallel(threads, n)) {
    for (size_t t = 0; t < n; ++t) fn(t, primary);
    return;
  }
  ThreadPool& pool = GlobalThreadPool();
  ExecContextPool& workers = primary.worker_contexts();
  workers.Ensure(pool.num_workers(), primary.collect_stats);
  // min(threads, n) contiguous blocks: the thread knob bounds concurrency
  // even when the global pool is wider, and block boundaries depend only
  // on (n, threads) — never on scheduling.
  const size_t blocks = std::min(static_cast<size_t>(threads), n);
  for (size_t b = 0; b < blocks; ++b) {
    pool.Submit([&, b](size_t worker) {
      ExecContext& ctx = workers.context(worker);
      const size_t begin = b * n / blocks;
      const size_t end = (b + 1) * n / blocks;
      for (size_t t = begin; t < end; ++t) fn(t, ctx);
    });
  }
  try {
    pool.Wait();
  } catch (...) {
    // Still fold the partial stats back so they cannot leak into a later
    // region's merge, then let the task's exception propagate.
    workers.MergeStatsInto(primary);
    throw;
  }
  workers.MergeStatsInto(primary);
}

}  // namespace lsens
