#ifndef LSENS_WORKLOAD_SOCIAL_H_
#define LSENS_WORKLOAD_SOCIAL_H_

#include <cstdint>

#include "storage/database.h"

namespace lsens {

// Synthetic substitute for the SNAP Facebook ego-network of user 348
// (225 nodes, 6384 directed edges, 567 social circles). The paper's
// construction: sort circles by size descending, deal circle j's edge set
// E_j into table R_{(rank mod 4)+1}, and build a triangle table
// RT(x,y,z) :- R4(x,y), R4(y,z), R4(z,x). All edges are bidirected.
//
// What matters for the experiments is hub-degree skew (drives the large
// path-query sensitivities) and triangle density; the generator reproduces
// both with overlapping heavy-tailed circles. See DESIGN.md §3.
struct SocialOptions {
  int num_nodes = 225;
  int num_circles = 567;
  // Target number of directed edges across all tables (before the circle
  // partition); the generator stops adding circle edges near this budget.
  int target_directed_edges = 6384;
  // Circle sizes are 2 + Zipf(max_circle_size - 1, circle_skew).
  int max_circle_size = 24;
  double circle_skew = 0.9;
  // Circle members are drawn with Zipf(num_nodes, node_popularity_skew)
  // popularity: hubs belong to many circles, so circles overlap (and the
  // same edge lands in several of R1..R4 — required for the cross-table
  // triangle/star queries to be non-empty, as in the real ego-network).
  double node_popularity_skew = 0.75;
  // Probability that a member pair of a circle is connected.
  double edge_probability = 0.55;
  uint64_t seed = 348;
};

// Produces tables R1..R4 (columns {x, y}) and RT (columns {x, y, z}).
Database MakeSocialDatabase(const SocialOptions& options);

}  // namespace lsens

#endif  // LSENS_WORKLOAD_SOCIAL_H_
