#include "workload/tpch.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace lsens {

namespace {
size_t Scaled(double base, double scale) {
  return static_cast<size_t>(std::max(1.0, std::round(base * scale)));
}
}  // namespace

TpchCardinalities TpchSizes(double scale) {
  TpchCardinalities c;
  c.region = 5;
  c.nation = 25;
  c.supplier = Scaled(10'000, scale);
  c.customer = Scaled(150'000, scale);
  c.orders = Scaled(1'500'000, scale);
  c.part = Scaled(200'000, scale);
  c.partsupp = Scaled(800'000, scale);
  c.lineitem = Scaled(6'000'000, scale);
  return c;
}

Database MakeTpchDatabase(const TpchOptions& options) {
  TpchCardinalities n = TpchSizes(options.scale);
  Rng rng(options.seed);
  Database db;

  Relation* region = db.AddRelation("Region", {"RK"});
  region->Reserve(n.region);
  for (size_t rk = 0; rk < n.region; ++rk) {
    region->AppendRow({static_cast<Value>(rk)});
  }

  Relation* nation = db.AddRelation("Nation", {"RK", "NK"});
  nation->Reserve(n.nation);
  for (size_t nk = 0; nk < n.nation; ++nk) {
    nation->AppendRow(
        {static_cast<Value>(nk % n.region), static_cast<Value>(nk)});
  }

  Relation* supplier = db.AddRelation("Supplier", {"NK", "SK"});
  supplier->Reserve(n.supplier);
  for (size_t sk = 0; sk < n.supplier; ++sk) {
    supplier->AppendRow({static_cast<Value>(rng.NextBounded(n.nation)),
                         static_cast<Value>(sk)});
  }

  Relation* customer = db.AddRelation("Customer", {"NK", "CK"});
  customer->Reserve(n.customer);
  for (size_t ck = 0; ck < n.customer; ++ck) {
    customer->AppendRow({static_cast<Value>(rng.NextBounded(n.nation)),
                         static_cast<Value>(ck)});
  }

  // Orders: mildly skewed toward low customer keys so some customers carry
  // many more orders than the mean (drives interesting sensitivities).
  Relation* orders = db.AddRelation("Orders", {"CK", "OK"});
  orders->Reserve(n.orders);
  for (size_t ok = 0; ok < n.orders; ++ok) {
    uint64_t ck = rng.NextZipf(n.customer, options.customer_skew) - 1;
    orders->AppendRow({static_cast<Value>(ck), static_cast<Value>(ok)});
  }

  Relation* part = db.AddRelation("Part", {"PK"});
  part->Reserve(n.part);
  for (size_t pk = 0; pk < n.part; ++pk) {
    part->AppendRow({static_cast<Value>(pk)});
  }

  // Partsupp: each part has ~partsupp/part *distinct* suppliers (4 at
  // standard ratios). Like dbgen, the assignment is deterministic and
  // spreads parts evenly across suppliers — every supplier ends up with
  // (almost exactly) partsupp/supplier parts, which keeps the per-supplier
  // lineitem distribution tightly concentrated (matters for the §6
  // truncation behaviour on q2).
  Relation* partsupp = db.AddRelation("Partsupp", {"SK", "PK"});
  partsupp->Reserve(n.partsupp);
  size_t per_part =
      std::min(n.supplier, std::max<size_t>(1, n.partsupp / n.part));
  size_t stride = std::max<size_t>(1, n.supplier / per_part);
  for (size_t pk = 0; pk < n.part; ++pk) {
    for (size_t i = 0; i < per_part; ++i) {
      size_t sk = (pk + i * stride) % n.supplier;
      partsupp->AppendRow({static_cast<Value>(sk), static_cast<Value>(pk)});
    }
  }

  // Lineitem: 1..7 items per order, each referencing a Partsupp pair.
  Relation* lineitem = db.AddRelation("Lineitem", {"OK", "SK", "PK"});
  lineitem->Reserve(n.lineitem + 7);
  size_t emitted = 0;
  for (size_t ok = 0; ok < n.orders && emitted < n.lineitem; ++ok) {
    uint64_t items = 1 + rng.NextBounded(7);
    for (uint64_t i = 0; i < items && emitted < n.lineitem; ++i) {
      size_t ps = rng.NextBounded(partsupp->NumRows());
      lineitem->AppendRow({static_cast<Value>(ok), partsupp->At(ps, 0),
                           partsupp->At(ps, 1)});
      ++emitted;
    }
  }

  return db;
}

}  // namespace lsens
