#ifndef LSENS_WORKLOAD_QUERIES_H_
#define LSENS_WORKLOAD_QUERIES_H_

#include <optional>
#include <string>
#include <vector>

#include "query/conjunctive_query.h"
#include "query/ghd.h"
#include "storage/database.h"

namespace lsens {

// One evaluation query from the paper's Section 7 (Figure 5), bundled with
// everything the experiments need: the decomposition for cyclic queries,
// the atoms whose multiplicity tables are skipped (superkey relations, as
// the paper does for Lineitem in q3), the primary private relation for the
// DP experiments, and the paper's assumed tuple-sensitivity upper bound ℓ.
struct WorkloadQuery {
  std::string name;
  ConjunctiveQuery query;
  std::optional<Ghd> ghd;       // engaged for cyclic queries
  std::vector<int> skip_atoms;  // §7.2 superkey skips
  int private_atom = -1;        // PR for §7.3
  uint64_t ell = 0;             // §7.3 assumed max tuple sensitivity

  const Ghd* ghd_ptr() const { return ghd ? &*ghd : nullptr; }
};

// TPC-H queries (Figure 5a). The database must come from MakeTpchDatabase.
//   q1: path  R(RK), N(RK,NK), C(NK,CK), O(CK,OK), L(OK,·,·)
//   q2: acyclic  PS(SK,PK), S(·,SK), P(PK), L(·,SK,PK)
//   q3: cyclic universal join with customer/supplier nation equality;
//       GHD bags {R,N,L} {O,C} {S,P} {PS}
WorkloadQuery MakeTpchQ1(Database& db);
WorkloadQuery MakeTpchQ2(Database& db);
WorkloadQuery MakeTpchQ3(Database& db);

// Facebook ego-network queries (Figure 5b) over MakeSocialDatabase output.
//   q△ (triangle): R1(A,B), R2(B,C), R3(C,A); GHD {R1,R2} {R3}
//   qw (path):     R1(A,B), R2(B,C), R3(C,D), R4(D,E)
//   q○ (4-cycle):  R1(A,B), R2(B,C), R3(C,D), R4(D,A); GHD {R1,R2} {R3,R4}
//   q⋆ (star):     RT(A,B,C), R1(A,B), R2(B,C), R3(C,A)  (acyclic)
WorkloadQuery MakeFacebookTriangle(Database& db);
WorkloadQuery MakeFacebookPath(Database& db);
WorkloadQuery MakeFacebookCycle(Database& db);
WorkloadQuery MakeFacebookStar(Database& db);

// All seven in the paper's Table 2 order: q1, q2, q3, q△, qw, q○, q⋆.
// `tpch` and `social` must outlive the returned queries.
std::vector<WorkloadQuery> MakeAllWorkloadQueries(Database& tpch,
                                                  Database& social);

}  // namespace lsens

#endif  // LSENS_WORKLOAD_QUERIES_H_
