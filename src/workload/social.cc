#include "workload/social.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"

namespace lsens {

Database MakeSocialDatabase(const SocialOptions& options) {
  LSENS_CHECK(options.num_nodes >= 3);
  Rng rng(options.seed);

  // 1. Sample circles: heavy-tailed member counts over random node sets.
  struct Circle {
    std::vector<int> members;
    std::set<std::pair<int, int>> edges;  // undirected, first < second
  };
  // Node popularity is Zipf-distributed: ego-network circles share hub
  // members heavily (everyone is a friend of the ego), which is what makes
  // the same edge appear in several circles — and therefore in several of
  // the R1..R4 tables. Without that overlap the cross-table queries
  // (triangle, star) would be empty, unlike the paper's.
  std::vector<Circle> circles(static_cast<size_t>(options.num_circles));
  for (auto& circle : circles) {
    int size = 2 + static_cast<int>(rng.NextZipf(
                       static_cast<uint64_t>(options.max_circle_size - 1),
                       options.circle_skew));
    std::set<int> members;
    while (static_cast<int>(members.size()) < size) {
      members.insert(static_cast<int>(
          rng.NextZipf(static_cast<uint64_t>(options.num_nodes),
                       options.node_popularity_skew) -
          1));
    }
    circle.members.assign(members.begin(), members.end());
  }

  // 2. Add intra-circle edges until the directed-edge budget is reached.
  //    (Distinct edges are counted once per table they land in; circles are
  //    processed round-robin so the budget cuts uniformly.)
  std::set<std::pair<int, int>> global_edges;
  size_t directed_budget = static_cast<size_t>(options.target_directed_edges);
  for (auto& circle : circles) {
    if (2 * global_edges.size() >= directed_budget) break;
    for (size_t i = 0; i < circle.members.size(); ++i) {
      for (size_t j = i + 1; j < circle.members.size(); ++j) {
        if (rng.NextDouble() >= options.edge_probability) continue;
        auto edge = std::minmax(circle.members[i], circle.members[j]);
        circle.edges.insert({edge.first, edge.second});
        global_edges.insert({edge.first, edge.second});
      }
    }
  }

  // 3. Rank circles by edge count descending; deal into R1..R4.
  std::vector<size_t> rank(circles.size());
  for (size_t i = 0; i < rank.size(); ++i) rank[i] = i;
  std::stable_sort(rank.begin(), rank.end(), [&](size_t a, size_t b) {
    return circles[a].edges.size() > circles[b].edges.size();
  });

  Database db;
  Relation* tables[4];
  for (int t = 0; t < 4; ++t) {
    tables[t] = db.AddRelation("R" + std::to_string(t + 1), {"x", "y"});
  }
  std::set<std::pair<int, int>> dedup[4];  // directed edges per table
  for (size_t pos = 0; pos < rank.size(); ++pos) {
    const Circle& circle = circles[rank[pos]];
    int t = static_cast<int>(pos % 4);
    for (const auto& [u, v] : circle.edges) {
      // Bidirected; dedupe within a table (the same edge can reach a table
      // through two circles).
      if (dedup[t].insert({u, v}).second) tables[t]->AppendRow({u, v});
      if (dedup[t].insert({v, u}).second) tables[t]->AppendRow({v, u});
    }
  }

  // 4. Triangle table from R4's directed edges.
  Relation* rt = db.AddRelation("RT", {"x", "y", "z"});
  const auto& e4 = dedup[3];
  // Adjacency list for the triangle enumeration.
  std::vector<std::vector<int>> adj(static_cast<size_t>(options.num_nodes));
  for (const auto& [u, v] : e4) adj[static_cast<size_t>(u)].push_back(v);
  for (const auto& [x, y] : e4) {
    for (int z : adj[static_cast<size_t>(y)]) {
      if (e4.count({z, x}) > 0) rt->AppendRow({x, y, z});
    }
  }

  return db;
}

}  // namespace lsens
