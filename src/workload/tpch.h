#ifndef LSENS_WORKLOAD_TPCH_H_
#define LSENS_WORKLOAD_TPCH_H_

#include <cstdint>

#include "storage/database.h"

namespace lsens {

// Synthetic TPC-H substitute (the paper uses dbgen [39]; we generate data
// with the standard TPC-H cardinality ratios and foreign-key structure so
// the join-key frequency distributions — which drive sensitivities — match
// in expectation).
//
// Schema (paper Section 7.1):
//   Region(RK)            5
//   Nation(RK, NK)        25
//   Supplier(NK, SK)      10,000 · sf
//   Customer(NK, CK)      150,000 · sf
//   Orders(CK, OK)        1,500,000 · sf   (~10 orders per customer)
//   Part(PK)              200,000 · sf
//   Partsupp(SK, PK)      800,000 · sf     (4 suppliers per part)
//   Lineitem(OK, SK, PK)  ~6,000,000 · sf  (1..7 lineitems per order,
//                                           (SK, PK) drawn from Partsupp)
struct TpchOptions {
  double scale = 0.01;
  uint64_t seed = 20200419;  // deterministic; change to resample
  // Orders per customer are skewed (some customers order much more) —
  // zipf exponent 0 = uniform. 0.3 puts the busiest customer's tuple
  // sensitivity in q1 around 10-15x the mean, like the paper's setup where
  // the learned truncation threshold (119) sits just above ℓ = 100.
  double customer_skew = 0.3;
};

Database MakeTpchDatabase(const TpchOptions& options);

// Scaled cardinalities (all >= 1) for reporting.
struct TpchCardinalities {
  size_t region, nation, supplier, customer, orders, part, partsupp, lineitem;
};
TpchCardinalities TpchSizes(double scale);

}  // namespace lsens

#endif  // LSENS_WORKLOAD_TPCH_H_
