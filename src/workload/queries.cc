#include "workload/queries.h"

#include <utility>

#include "common/macros.h"

namespace lsens {

WorkloadQuery MakeTpchQ1(Database& db) {
  WorkloadQuery w;
  w.name = "q1";
  w.query.AddAtom(db, "Region", {"RK"});
  w.query.AddAtom(db, "Nation", {"RK", "NK"});
  w.query.AddAtom(db, "Customer", {"NK", "CK"});
  w.query.AddAtom(db, "Orders", {"CK", "OK"});
  // SK/PK are exclusive to Lineitem in q1 (projected out with counts).
  w.query.AddAtom(db, "Lineitem", {"OK", "SK", "PK"});
  w.private_atom = 2;  // Customer
  w.ell = 100;
  return w;
}

WorkloadQuery MakeTpchQ2(Database& db) {
  WorkloadQuery w;
  w.name = "q2";
  w.query.AddAtom(db, "Partsupp", {"SK", "PK"});
  w.query.AddAtom(db, "Supplier", {"NK", "SK"});
  w.query.AddAtom(db, "Part", {"PK"});
  w.query.AddAtom(db, "Lineitem", {"OK", "SK", "PK"});
  w.private_atom = 1;  // Supplier
  // Our generator gives every supplier ~600 lineitems at any scale (the
  // standard L/S ratio); ℓ must sit above that or everything truncates.
  w.ell = 1024;
  return w;
}

WorkloadQuery MakeTpchQ3(Database& db) {
  WorkloadQuery w;
  w.name = "q3";
  int r = w.query.AddAtom(db, "Region", {"RK"});
  int n = w.query.AddAtom(db, "Nation", {"RK", "NK"});
  int s = w.query.AddAtom(db, "Supplier", {"NK", "SK"});
  int ps = w.query.AddAtom(db, "Partsupp", {"SK", "PK"});
  int p = w.query.AddAtom(db, "Part", {"PK"});
  int c = w.query.AddAtom(db, "Customer", {"NK", "CK"});
  int o = w.query.AddAtom(db, "Orders", {"CK", "OK"});
  int l = w.query.AddAtom(db, "Lineitem", {"OK", "SK", "PK"});
  // Figure 5a's generalized hypertree: {R,N,L} {O,C} {S,P} {PS}.
  auto ghd = BuildGhd(w.query, {{r, n, l}, {o, c}, {s, p}, {ps}});
  LSENS_CHECK_MSG(ghd.ok(), "q3 decomposition must validate");
  w.ghd = std::move(ghd).value();
  // §7.2: "we skip computing the multiplicity table of Lineitem in q3 since
  // the tuple sensitivity is at most 1 due to FK-PK joins".
  w.skip_atoms = {l};
  w.private_atom = c;  // Customer
  w.ell = 10;
  return w;
}

WorkloadQuery MakeFacebookTriangle(Database& db) {
  WorkloadQuery w;
  w.name = "q_tri";
  int r1 = w.query.AddAtom(db, "R1", {"A", "B"});
  int r2 = w.query.AddAtom(db, "R2", {"B", "C"});
  int r3 = w.query.AddAtom(db, "R3", {"C", "A"});
  auto ghd = BuildGhd(w.query, {{r1, r2}, {r3}});
  LSENS_CHECK_MSG(ghd.ok(), "triangle decomposition must validate");
  w.ghd = std::move(ghd).value();
  w.private_atom = r2;
  // Calibrated to ~2x the max tuple sensitivity of R2 in our synthetic
  // graph (the paper's 70 plays the same role for the SNAP instance).
  w.ell = 40;
  return w;
}

WorkloadQuery MakeFacebookPath(Database& db) {
  WorkloadQuery w;
  w.name = "q_w";
  w.query.AddAtom(db, "R1", {"A", "B"});
  w.query.AddAtom(db, "R2", {"B", "C"});
  w.query.AddAtom(db, "R3", {"C", "D"});
  w.query.AddAtom(db, "R4", {"D", "E"});
  w.private_atom = 1;  // R2
  // Our hub edges reach ~56k participating paths; ℓ must sit above that
  // (the paper's 25000 served the same purpose for the SNAP graph).
  w.ell = 60000;
  return w;
}

WorkloadQuery MakeFacebookCycle(Database& db) {
  WorkloadQuery w;
  w.name = "q_o";
  int r1 = w.query.AddAtom(db, "R1", {"A", "B"});
  int r2 = w.query.AddAtom(db, "R2", {"B", "C"});
  int r3 = w.query.AddAtom(db, "R3", {"C", "D"});
  int r4 = w.query.AddAtom(db, "R4", {"D", "A"});
  auto ghd = BuildGhd(w.query, {{r1, r2}, {r3, r4}});
  LSENS_CHECK_MSG(ghd.ok(), "4-cycle decomposition must validate");
  w.ghd = std::move(ghd).value();
  w.private_atom = r2;
  // Just above the ~385 max tuple sensitivity in our synthetic graph.
  w.ell = 512;
  return w;
}

WorkloadQuery MakeFacebookStar(Database& db) {
  WorkloadQuery w;
  w.name = "q_star";
  w.query.AddAtom(db, "RT", {"A", "B", "C"});
  w.query.AddAtom(db, "R1", {"A", "B"});
  w.query.AddAtom(db, "R2", {"B", "C"});
  w.query.AddAtom(db, "R3", {"C", "A"});
  w.private_atom = 2;  // R2
  w.ell = 15;
  return w;
}

std::vector<WorkloadQuery> MakeAllWorkloadQueries(Database& tpch,
                                                  Database& social) {
  std::vector<WorkloadQuery> all;
  all.push_back(MakeTpchQ1(tpch));
  all.push_back(MakeTpchQ2(tpch));
  all.push_back(MakeTpchQ3(tpch));
  all.push_back(MakeFacebookTriangle(social));
  all.push_back(MakeFacebookPath(social));
  all.push_back(MakeFacebookCycle(social));
  all.push_back(MakeFacebookStar(social));
  return all;
}

}  // namespace lsens
