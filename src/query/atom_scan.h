#ifndef LSENS_QUERY_ATOM_SCAN_H_
#define LSENS_QUERY_ATOM_SCAN_H_

#include "exec/counted_relation.h"
#include "query/conjunctive_query.h"
#include "storage/attribute_set.h"
#include "storage/relation.h"

namespace lsens {

// Ingests one atom of a query into a CountedRelation: binds columns to
// variables, applies the atom's predicates, projects onto `keep` (must be a
// subset of the atom's variables), and normalizes (duplicates grouped,
// counts summed). Normalize scratch comes from `ctx` (the thread-local
// default when null — pass the worker context when called from a parallel
// region).
//
// This is the query layer's bridge from stored relations to the exec
// layer's counted representation. It lives here (not on CountedRelation)
// so exec never depends on query-layer types like Atom — the include DAG
// is common ← storage ← exec ← query ← sensitivity ← {server, dp,
// workload}, enforced by tools/lsens_lint.
CountedRelation ScanAtom(const Relation& rel, const Atom& atom,
                         const AttributeSet& keep, ExecContext* ctx = nullptr);

}  // namespace lsens

#endif  // LSENS_QUERY_ATOM_SCAN_H_
