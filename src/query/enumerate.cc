#include "query/enumerate.h"

#include <utility>
#include <vector>

#include "exec/hash_group_table.h"
#include "exec/join.h"
#include "query/atom_scan.h"
#include "query/join_tree.h"

namespace lsens {

CountedRelation Semijoin(const CountedRelation& a, const CountedRelation& b,
                         ExecContext* ctx_in) {
  AttributeSet key = Intersect(a.attrs(), b.attrs());
  if (key.empty()) {
    if (b.NumRows() > 0) return a;
    return CountedRelation(a.attrs());
  }
  ExecContext& ctx = ResolveExecContext(ctx_in);
  OpTimer op(ctx, "semijoin", a.NumRows() + b.NumRows());
  op.set_build_rows(b.NumRows());
  std::vector<int> a_cols;
  std::vector<int> b_cols;
  for (AttrId attr : key) {
    a_cols.push_back(a.ColumnOf(attr));
    b_cols.push_back(b.ColumnOf(attr));
  }
  // Membership probes against the flat group table (runs are key-verified,
  // so collisions can never drop or keep wrong rows).
  FlatGroupTable& table = ctx.group_table();
  table.Build(b, b_cols);
  CountedRelation out(a.attrs());
  out.Reserve(a.NumRows());
  for (size_t i = 0; i < a.NumRows(); ++i) {
    std::span<const Value> row = a.Row(i);
    if (!table.Probe(row, a_cols).empty()) out.AppendRow(row, a.CountAt(i));
  }
  out.Normalize(&ctx);
  op.set_rows_out(out.NumRows());
  return out;
}

StatusOr<CountedRelation> EnumerateJoin(const ConjunctiveQuery& q,
                                        const Ghd& ghd, const Database& db,
                                        const JoinOptions& options,
                                        size_t max_rows) {
  LSENS_RETURN_IF_ERROR(q.Validate(db));

  // Materialize each bag over all of its variables (exclusive attributes
  // included — this is full-output enumeration).
  const size_t num_bags = ghd.bags.size();
  std::vector<CountedRelation> bag_rel;
  bag_rel.reserve(num_bags);
  for (const GhdBag& bag : ghd.bags) {
    std::vector<CountedRelation> atoms;
    for (int a : bag.atom_indices) {
      auto rel = db.Get(q.atom(a).relation);
      if (!rel.ok()) return rel.status();
      atoms.push_back(
          ScanAtom(**rel, q.atom(a), q.atom(a).VarSet()));
    }
    std::vector<const CountedRelation*> pieces;
    for (const auto& r : atoms) pieces.push_back(&r);
    bag_rel.push_back(FoldJoin(std::move(pieces), options));
    if (bag_rel.back().NumRows() > max_rows) {
      return Status::Unsupported("bag materialization exceeds max_rows");
    }
  }

  CountedRelation output = CountedRelation::Unit();
  for (const JoinTree& tree : ghd.forest.trees) {
    // Bottom-up semijoin reduction.
    for (int bag : tree.PostOrder()) {
      for (int child : tree.Children(bag)) {
        bag_rel[static_cast<size_t>(bag)] = Semijoin(
            bag_rel[static_cast<size_t>(bag)],
            bag_rel[static_cast<size_t>(child)], options.ctx);
      }
    }
    // Top-down semijoin reduction.
    for (int bag : tree.PreOrder()) {
      int parent = tree.Parent(bag);
      if (parent == -1) continue;
      bag_rel[static_cast<size_t>(bag)] =
          Semijoin(bag_rel[static_cast<size_t>(bag)],
                   bag_rel[static_cast<size_t>(parent)], options.ctx);
    }
    // Join reduced bags, children into parents; every intermediate is
    // bounded by the final output of this component.
    for (int bag : tree.PostOrder()) {
      for (int child : tree.Children(bag)) {
        bag_rel[static_cast<size_t>(bag)] =
            NaturalJoin(bag_rel[static_cast<size_t>(bag)],
                        bag_rel[static_cast<size_t>(child)], options);
        if (bag_rel[static_cast<size_t>(bag)].NumRows() > max_rows) {
          return Status::Unsupported("join output exceeds max_rows");
        }
      }
    }
    output = NaturalJoin(output, bag_rel[static_cast<size_t>(tree.root())],
                         options);
    if (output.NumRows() > max_rows) {
      return Status::Unsupported("join output exceeds max_rows");
    }
  }
  return output;
}

StatusOr<CountedRelation> EnumerateQuery(const ConjunctiveQuery& q,
                                         const Database& db,
                                         const JoinOptions& options,
                                         size_t max_rows) {
  auto forest = BuildJoinForestGYO(q);
  if (forest.ok()) {
    return EnumerateJoin(q, MakeTrivialGhd(q, *forest), db, options,
                         max_rows);
  }
  auto searched = SearchGhd(q, q.num_atoms());
  if (!searched.ok()) return searched.status();
  return EnumerateJoin(q, *searched, db, options, max_rows);
}

}  // namespace lsens
