#include "query/atom_scan.h"

#include <span>
#include <vector>

#include "common/macros.h"
#include "exec/exec_context.h"

namespace lsens {

CountedRelation ScanAtom(const Relation& rel, const Atom& atom,
                         const AttributeSet& keep, ExecContext* ctx) {
  LSENS_CHECK(atom.vars.size() == rel.arity());
  LSENS_CHECK_MSG(IsSubset(keep, atom.VarSet()),
                  "projection must keep a subset of the atom's variables");
  // Column positions: keep[j] lives at rel column keep_cols[j]; predicates
  // evaluate against pred_cols[p]. Resolving them here keeps the per-row
  // loop free of invariant checks.
  std::vector<size_t> keep_cols(keep.size());
  for (size_t j = 0; j < keep.size(); ++j) {
    size_t col = 0;
    while (atom.vars[col] != keep[j]) ++col;
    keep_cols[j] = col;
  }
  std::vector<size_t> pred_cols(atom.predicates.size());
  for (size_t p = 0; p < atom.predicates.size(); ++p) {
    size_t col = 0;
    while (atom.vars[col] != atom.predicates[p].var) ++col;
    pred_cols[p] = col;
  }

  CountedRelation out(keep);
  out.Reserve(rel.NumRows());
  std::vector<Value> projected(keep.size());
  for (size_t i = 0; i < rel.NumRows(); ++i) {
    std::span<const Value> row = rel.Row(i);
    bool pass = true;
    for (size_t p = 0; p < atom.predicates.size() && pass; ++p) {
      pass = atom.predicates[p].Eval(row[pred_cols[p]]);
    }
    if (!pass) continue;
    for (size_t j = 0; j < keep.size(); ++j) projected[j] = row[keep_cols[j]];
    out.AppendRow(projected, Count::One());
  }
  out.Normalize(ctx);
  return out;
}

}  // namespace lsens
