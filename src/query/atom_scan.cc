#include "query/atom_scan.h"

#include <span>
#include <vector>

#include "common/macros.h"
#include "exec/exec_context.h"

namespace lsens {

CountedRelation ScanAtom(const Relation& rel, const Atom& atom,
                         const AttributeSet& keep, ExecContext* ctx_in) {
  LSENS_CHECK(atom.vars.size() == rel.arity());
  LSENS_CHECK_MSG(IsSubset(keep, atom.VarSet()),
                  "projection must keep a subset of the atom's variables");
  // Column positions: keep[j] lives at rel column keep_cols[j]; predicates
  // evaluate against pred_cols[p]. Resolving them here keeps the per-column
  // loops free of invariant checks.
  std::vector<size_t> keep_cols(keep.size());
  for (size_t j = 0; j < keep.size(); ++j) {
    size_t col = 0;
    while (atom.vars[col] != keep[j]) ++col;
    keep_cols[j] = col;
  }
  std::vector<size_t> pred_cols(atom.predicates.size());
  for (size_t p = 0; p < atom.predicates.size(); ++p) {
    size_t col = 0;
    while (atom.vars[col] != atom.predicates[p].var) ++col;
    pred_cols[p] = col;
  }

  ExecContext& ctx = ResolveExecContext(ctx_in);
  const size_t n = rel.NumRows();

  // Selection runs column-at-a-time: the first predicate scans its column
  // and collects passing row indices, each further predicate compacts the
  // survivor list against its own column. No row tuple is materialized.
  std::vector<uint32_t>& sel = ctx.sel_buf();
  const bool all_rows = atom.predicates.empty();
  size_t n_sel = n;
  if (!all_rows) {
    sel.clear();
    sel.reserve(n);
    {
      std::span<const Value> col = rel.Column(pred_cols[0]);
      const Predicate& pred = atom.predicates[0];
      for (size_t i = 0; i < n; ++i) {
        if (pred.Eval(col[i])) sel.push_back(static_cast<uint32_t>(i));
      }
    }
    for (size_t p = 1; p < atom.predicates.size(); ++p) {
      std::span<const Value> col = rel.Column(pred_cols[p]);
      const Predicate& pred = atom.predicates[p];
      size_t write = 0;
      for (uint32_t idx : sel) {
        if (pred.Eval(col[idx])) sel[write++] = idx;
      }
      sel.resize(write);
    }
    n_sel = sel.size();
  }

  // Projection fills the output column by column: one contiguous (or
  // selection-gathered) read of each kept source column, scattered into
  // the row-major CountedRelation at stride k.
  CountedRelation out(keep);
  const size_t k = keep.size();
  std::span<Value> dst = out.AppendRowsRaw(n_sel, Count::One());
  for (size_t j = 0; j < k; ++j) {
    std::span<const Value> col = rel.Column(keep_cols[j]);
    Value* d = dst.data() + j;
    if (all_rows) {
      for (size_t i = 0; i < n_sel; ++i) d[i * k] = col[i];
    } else {
      for (size_t i = 0; i < n_sel; ++i) d[i * k] = col[sel[i]];
    }
  }
  out.Normalize(&ctx);
  return out;
}

}  // namespace lsens
