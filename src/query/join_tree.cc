#include "query/join_tree.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/macros.h"

namespace lsens {

JoinTree::JoinTree(std::vector<int> members, std::vector<int> parent_of_atom)
    : members_(std::move(members)), parent_(std::move(parent_of_atom)) {
  LSENS_CHECK(!members_.empty());
  children_.resize(parent_.size());
  for (int atom : members_) {
    int p = parent_[static_cast<size_t>(atom)];
    if (p == -1) {
      LSENS_CHECK_MSG(root_ == -1, "join tree has two roots");
      root_ = atom;
    } else {
      LSENS_CHECK(p >= 0 && p < static_cast<int>(parent_.size()));
      children_[static_cast<size_t>(p)].push_back(atom);
    }
  }
  LSENS_CHECK_MSG(root_ != -1, "join tree has no root");
  for (auto& c : children_) std::sort(c.begin(), c.end());
}

int JoinTree::Parent(int atom) const {
  LSENS_CHECK(ContainsAtom(atom));
  return parent_[static_cast<size_t>(atom)];
}

const std::vector<int>& JoinTree::Children(int atom) const {
  LSENS_CHECK(ContainsAtom(atom));
  return children_[static_cast<size_t>(atom)];
}

std::vector<int> JoinTree::Neighbors(int atom) const {
  int p = Parent(atom);
  if (p == -1) return {};
  std::vector<int> out;
  for (int c : Children(p)) {
    if (c != atom) out.push_back(c);
  }
  return out;
}

bool JoinTree::ContainsAtom(int atom) const {
  if (atom < 0 || atom >= static_cast<int>(parent_.size())) return false;
  return parent_[static_cast<size_t>(atom)] != -2;
}

std::vector<int> JoinTree::PostOrder() const {
  std::vector<int> order;
  order.reserve(members_.size());
  // Iterative DFS emitting children before parents.
  std::vector<std::pair<int, size_t>> stack;
  stack.emplace_back(root_, 0);
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    const auto& kids = Children(node);
    if (next_child < kids.size()) {
      int child = kids[next_child++];
      stack.emplace_back(child, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  return order;
}

std::vector<int> JoinTree::PreOrder() const {
  std::vector<int> order = PostOrder();
  std::reverse(order.begin(), order.end());
  return order;
}

int JoinTree::MaxDegree() const {
  int max_degree = 0;
  for (int atom : members_) {
    int d = static_cast<int>(Children(atom).size());
    if (Parent(atom) != -1) ++d;
    max_degree = std::max(max_degree, d);
  }
  return max_degree;
}

Status JoinTree::ValidateAgainst(const ConjunctiveQuery& q) const {
  for (AttrId var : q.AllVars()) {
    // Collect member atoms containing the variable.
    std::vector<int> holders;
    for (int atom : members_) {
      if (Contains(q.atom(atom).VarSet(), var)) holders.push_back(atom);
    }
    if (holders.size() <= 1) continue;
    // Connectivity check: walk up from each holder; the induced subgraph is
    // connected iff every holder's nearest holder-ancestor chain stays
    // within holders. Equivalent check: count holders whose parent-path to
    // the "topmost holder" passes only through holders.
    // Simpler: BFS over tree edges restricted to holders.
    std::vector<int> queue{holders[0]};
    std::vector<char> seen(parent_.size(), 0);
    seen[static_cast<size_t>(holders[0])] = 1;
    size_t reached = 1;
    while (!queue.empty()) {
      int node = queue.back();
      queue.pop_back();
      std::vector<int> adjacent = Children(node);
      if (Parent(node) != -1) adjacent.push_back(Parent(node));
      for (int next : adjacent) {
        if (seen[static_cast<size_t>(next)]) continue;
        if (!std::binary_search(holders.begin(), holders.end(), next)) {
          continue;
        }
        seen[static_cast<size_t>(next)] = 1;
        ++reached;
        queue.push_back(next);
      }
    }
    if (reached != holders.size()) {
      return Status::Internal(
          "running-intersection property violated for a variable");
    }
  }
  return Status::OK();
}

int JoinForest::TreeOf(int atom) const {
  for (size_t i = 0; i < trees.size(); ++i) {
    if (trees[i].ContainsAtom(atom)) return static_cast<int>(i);
  }
  return -1;
}

namespace {

// Generic GYO over arbitrary hyperedges (reused by the GHD builder).
// edges[i] may be empty-attr; `parent` output uses -1 for roots.
bool RunGYO(const std::vector<AttributeSet>& edges,
            std::vector<int>* parent_out,
            std::vector<std::vector<int>>* components_out) {
  const int m = static_cast<int>(edges.size());
  std::vector<char> alive(static_cast<size_t>(m), 1);
  std::vector<int> parent(static_cast<size_t>(m), -1);
  int remaining = m;

  auto shared_vertices = [&](int i) {
    AttributeSet shared;
    for (AttrId v : edges[static_cast<size_t>(i)]) {
      for (int j = 0; j < m; ++j) {
        if (j == i || !alive[static_cast<size_t>(j)]) continue;
        if (Contains(edges[static_cast<size_t>(j)], v)) {
          shared.push_back(v);
          break;
        }
      }
    }
    return shared;
  };

  while (remaining > 1) {
    bool removed = false;
    for (int i = 0; i < m && !removed; ++i) {
      if (!alive[static_cast<size_t>(i)]) continue;
      AttributeSet shared = shared_vertices(i);
      if (shared.empty()) {
        // Isolated component head: close it out as a root.
        alive[static_cast<size_t>(i)] = 0;
        --remaining;
        removed = true;
        break;
      }
      for (int j = 0; j < m; ++j) {
        if (j == i || !alive[static_cast<size_t>(j)]) continue;
        if (IsSubset(shared, edges[static_cast<size_t>(j)])) {
          parent[static_cast<size_t>(i)] = j;
          alive[static_cast<size_t>(i)] = 0;
          --remaining;
          removed = true;
          break;
        }
      }
    }
    if (!removed) return false;  // no ear: cyclic
  }

  // Partition into components by following parent links.
  std::vector<int> root_of(static_cast<size_t>(m), -1);
  for (int i = 0; i < m; ++i) {
    int r = i;
    while (parent[static_cast<size_t>(r)] != -1) {
      r = parent[static_cast<size_t>(r)];
    }
    root_of[static_cast<size_t>(i)] = r;
  }
  std::map<int, std::vector<int>> by_root;
  for (int i = 0; i < m; ++i) {
    by_root[root_of[static_cast<size_t>(i)]].push_back(i);
  }

  components_out->clear();
  for (auto& [root, members] : by_root) {
    components_out->push_back(std::move(members));
  }
  *parent_out = std::move(parent);
  return true;
}

}  // namespace

StatusOr<JoinForest> BuildJoinForestGYO(const ConjunctiveQuery& q) {
  std::vector<AttributeSet> edges;
  edges.reserve(static_cast<size_t>(q.num_atoms()));
  for (const auto& a : q.atoms()) edges.push_back(a.VarSet());

  std::vector<int> parent;
  std::vector<std::vector<int>> components;
  if (!RunGYO(edges, &parent, &components)) {
    return Status::Unsupported(
        "query hypergraph is cyclic (GYO found no ear); supply a generalized "
        "hypertree decomposition instead");
  }

  JoinForest forest;
  for (auto& members : components) {
    // Build a parent vector sparse over all atoms: -2 means "not in tree".
    std::vector<int> tree_parent(static_cast<size_t>(q.num_atoms()), -2);
    for (int atom : members) {
      tree_parent[static_cast<size_t>(atom)] =
          parent[static_cast<size_t>(atom)];
    }
    forest.trees.emplace_back(std::move(members), std::move(tree_parent));
  }
  for (const auto& tree : forest.trees) {
    LSENS_RETURN_IF_ERROR(tree.ValidateAgainst(q));
  }
  return forest;
}

bool IsAcyclic(const ConjunctiveQuery& q) {
  return BuildJoinForestGYO(q).ok();
}

JoinTreeAnalysis AnalyzeJoinTree(const ConjunctiveQuery& q,
                                 const JoinForest& forest) {
  JoinTreeAnalysis out;
  out.doubly_acyclic = true;
  for (const auto& tree : forest.trees) {
    out.max_degree = std::max(out.max_degree, tree.MaxDegree());
    for (int atom : tree.members()) {
      // Hyperedges of the multiplicity-table join at this node (§5.3):
      // vars shared with the parent plus vars shared with each child.
      std::vector<AttributeSet> edges;
      const AttributeSet vars = q.atom(atom).VarSet();
      if (tree.Parent(atom) != -1) {
        AttributeSet e = Intersect(vars, q.atom(tree.Parent(atom)).VarSet());
        if (!e.empty()) edges.push_back(std::move(e));
      }
      for (int child : tree.Children(atom)) {
        AttributeSet e = Intersect(vars, q.atom(child).VarSet());
        if (!e.empty()) edges.push_back(std::move(e));
      }
      if (edges.size() <= 1) continue;
      std::vector<int> parent;
      std::vector<std::vector<int>> components;
      // Build a throwaway CQ-less GYO run on these edges.
      if (!RunGYO(edges, &parent, &components)) {
        out.doubly_acyclic = false;
      }
    }
  }
  out.path_query = !PathOrder(q).empty();
  return out;
}

std::vector<int> PathOrder(const ConjunctiveQuery& q) {
  const int m = q.num_atoms();
  if (m == 0) return {};
  if (m == 1) return {0};

  // Every shared variable must occur in exactly two atoms, and each atom's
  // shared vars must have size <= 2 (its chain links).
  std::map<AttrId, std::vector<int>> holders;
  for (int i = 0; i < m; ++i) {
    for (AttrId v : q.SharedVarsOf(i)) holders[v].push_back(i);
  }
  for (const auto& [v, hs] : holders) {
    if (hs.size() != 2) return {};
  }
  // Adjacency via single shared variables.
  std::vector<std::vector<int>> adj(static_cast<size_t>(m));
  for (const auto& [v, hs] : holders) {
    adj[static_cast<size_t>(hs[0])].push_back(hs[1]);
    adj[static_cast<size_t>(hs[1])].push_back(hs[0]);
  }
  // Multiple shared vars between the same atom pair would appear as repeated
  // adjacency entries -> not a (single-attribute-link) path query.
  int endpoints = 0;
  int start = -1;
  for (int i = 0; i < m; ++i) {
    auto& a = adj[static_cast<size_t>(i)];
    std::sort(a.begin(), a.end());
    if (std::adjacent_find(a.begin(), a.end()) != a.end()) return {};
    if (a.size() > 2) return {};
    if (a.size() <= 1) {
      ++endpoints;
      if (start == -1) start = i;
    }
  }
  if (endpoints != 2 || start == -1) return {};

  // Walk the chain.
  std::vector<int> order{start};
  std::vector<char> used(static_cast<size_t>(m), 0);
  used[static_cast<size_t>(start)] = 1;
  int current = start;
  while (static_cast<int>(order.size()) < m) {
    int next = -1;
    for (int cand : adj[static_cast<size_t>(current)]) {
      if (!used[static_cast<size_t>(cand)]) {
        next = cand;
        break;
      }
    }
    if (next == -1) return {};  // disconnected
    order.push_back(next);
    used[static_cast<size_t>(next)] = 1;
    current = next;
  }
  return order;
}

}  // namespace lsens
