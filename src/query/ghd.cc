#include "query/ghd.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace lsens {

int Ghd::Width() const {
  int w = 0;
  for (const auto& bag : bags) {
    w = std::max(w, static_cast<int>(bag.atom_indices.size()));
  }
  return w;
}

namespace {

// Wraps the bag hyperedges in a synthetic single-atom-per-bag query so we
// can reuse BuildJoinForestGYO. The synthetic query shares no database, so
// we build the forest manually through a bag-level CQ facade.
StatusOr<JoinForest> BuildBagForest(const std::vector<GhdBag>& bags) {
  ConjunctiveQuery bag_query;
  for (size_t i = 0; i < bags.size(); ++i) {
    Atom a;
    a.relation = "bag" + std::to_string(i);
    a.vars.assign(bags[i].vars.begin(), bags[i].vars.end());
    bag_query.AddAtom(std::move(a));
  }
  return BuildJoinForestGYO(bag_query);
}

}  // namespace

StatusOr<Ghd> BuildGhd(const ConjunctiveQuery& q,
                       std::vector<std::vector<int>> bag_specs) {
  const int m = q.num_atoms();
  std::vector<char> assigned(static_cast<size_t>(m), 0);
  Ghd ghd;
  for (auto& spec : bag_specs) {
    if (spec.empty()) return Status::InvalidArgument("empty GHD bag");
    GhdBag bag;
    for (int atom : spec) {
      if (atom < 0 || atom >= m) {
        return Status::InvalidArgument("GHD bag references unknown atom");
      }
      if (assigned[static_cast<size_t>(atom)]) {
        return Status::InvalidArgument(
            "atom assigned to two GHD bags; the §5.4 join-plan form requires "
            "a partition");
      }
      assigned[static_cast<size_t>(atom)] = 1;
      bag.vars = Union(bag.vars, q.atom(atom).VarSet());
      bag.atom_indices.push_back(atom);
    }
    ghd.bags.push_back(std::move(bag));
  }
  for (int i = 0; i < m; ++i) {
    if (!assigned[static_cast<size_t>(i)]) {
      return Status::InvalidArgument("atom " + std::to_string(i) +
                                     " not assigned to any GHD bag");
    }
  }
  auto forest = BuildBagForest(ghd.bags);
  if (!forest.ok()) {
    return Status::Unsupported(
        "bag hypergraph is cyclic; not a valid decomposition");
  }
  ghd.forest = std::move(forest).value();
  return ghd;
}

StatusOr<Ghd> SearchGhd(const ConjunctiveQuery& q, int max_width,
                        int max_atoms) {
  const int m = q.num_atoms();
  if (m > max_atoms) {
    return Status::Unsupported(
        "GHD search is exhaustive over set partitions; query has too many "
        "atoms (" +
        std::to_string(m) + " > " + std::to_string(max_atoms) + ")");
  }
  // Enumerate set partitions via restricted growth strings: rgs[0] = 0 and
  // rgs[i] <= max(rgs[0..i-1]) + 1. Track the best (minimum-width) valid
  // decomposition.
  std::vector<int> rgs(static_cast<size_t>(m), 0);
  bool have_best = false;
  Ghd best;

  auto try_partition = [&]() {
    int num_blocks = *std::max_element(rgs.begin(), rgs.end()) + 1;
    std::vector<std::vector<int>> blocks(static_cast<size_t>(num_blocks));
    for (int i = 0; i < m; ++i) {
      blocks[static_cast<size_t>(rgs[static_cast<size_t>(i)])].push_back(i);
    }
    int width = 0;
    for (const auto& b : blocks) {
      width = std::max(width, static_cast<int>(b.size()));
    }
    if (width > max_width) return;
    if (have_best && width >= best.Width()) return;
    auto ghd = BuildGhd(q, blocks);
    if (!ghd.ok()) return;
    best = std::move(ghd).value();
    have_best = true;
  };

  // Iterative RGS enumeration.
  for (;;) {
    try_partition();
    if (have_best && best.Width() == 1) break;  // can't do better
    // Advance to the next restricted growth string.
    int i = m - 1;
    for (; i > 0; --i) {
      int prefix_max = 0;
      for (int j = 0; j < i; ++j) {
        prefix_max = std::max(prefix_max, rgs[static_cast<size_t>(j)]);
      }
      if (rgs[static_cast<size_t>(i)] <= prefix_max) {
        ++rgs[static_cast<size_t>(i)];
        std::fill(rgs.begin() + i + 1, rgs.end(), 0);
        break;
      }
      // else carry: reset handled by fill above when an increment happens
    }
    if (i == 0) break;  // exhausted
  }

  if (!have_best) {
    return Status::NotFound("no GHD of width <= " + std::to_string(max_width) +
                            " in the atom-partition form");
  }
  return best;
}

Ghd MakeTrivialGhd(const ConjunctiveQuery& q, const JoinForest& forest) {
  Ghd ghd;
  for (int i = 0; i < q.num_atoms(); ++i) {
    GhdBag bag;
    bag.atom_indices = {i};
    bag.vars = q.atom(i).VarSet();
    ghd.bags.push_back(std::move(bag));
  }
  ghd.forest = forest;  // bag index == atom index
  return ghd;
}

int BagOf(const Ghd& ghd, int atom) {
  for (size_t i = 0; i < ghd.bags.size(); ++i) {
    for (int a : ghd.bags[i].atom_indices) {
      if (a == atom) return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace lsens
