#ifndef LSENS_QUERY_EXPLAIN_H_
#define LSENS_QUERY_EXPLAIN_H_

#include <string>

#include "query/conjunctive_query.h"
#include "query/ghd.h"
#include "query/join_tree.h"
#include "storage/catalog.h"

namespace lsens {

class ExecContext;

// Human-readable report of how a query will be processed: its datalog form,
// acyclicity, the join forest or GHD (ASCII tree with link attributes), the
// Theorem 5.1 complexity parameters (max degree, doubly-acyclic, path), and
// which algorithm the TSens facade would pick. Intended for logs, examples,
// and debugging decompositions.
std::string ExplainQuery(const ConjunctiveQuery& q,
                         const AttributeCatalog& attrs,
                         const Ghd* ghd = nullptr);

// Just the ASCII tree for a decomposition.
std::string RenderGhdTree(const ConjunctiveQuery& q,
                          const AttributeCatalog& attrs, const Ghd& ghd);

// The execution profile collected in `ctx` (exec/exec_context.h), one
// aligned row per operator (calls, rows in/out, hash-build rows, wall
// milliseconds). Run a query or TSens pass with TSensOptions::join.ctx /
// JoinOptions::ctx pointing at a context, then print this. Wall times of
// nested operators overlap (a join's time includes its output Normalize).
// Parallel runs (JoinOptions::threads > 1) report here too: worker-context
// stats are merged back into the primary context after every parallel
// region, so calls/rows columns are identical to a serial run's at any
// thread count (wall times overlap across workers, like nested operators).
// This is the one place the query layer reads exec state — reporting only,
// kept header-light via the forward declaration above.
std::string RenderExecStats(const ExecContext& ctx);

}  // namespace lsens

#endif  // LSENS_QUERY_EXPLAIN_H_
