#ifndef LSENS_QUERY_PARSER_H_
#define LSENS_QUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "query/conjunctive_query.h"
#include "storage/database.h"

namespace lsens {

// Parses the datalog-ish rule syntax the paper writes queries in:
//
//   Q(A,B,C) :- R1(A,B), R2(B,C) [, A = 3, B != 7, C < 10, ...]
//
// Grammar (whitespace-insensitive):
//   rule      := head? ":-" body
//   head      := ident "(" varlist ")"          (informational only: full
//                                                CQs have every variable in
//                                                the head, so it is checked
//                                                but not stored)
//   body      := atom_or_pred ("," atom_or_pred)*
//   atom      := ident "(" varlist ")"
//   predicate := ident op integer ;  op in { =, !=, <, <=, >, >= }
//   varlist   := ident ("," ident)*
//
// Variable names are interned in db.attrs(); relation names must already
// exist in `db` (arity-checked). Predicates attach to the first atom that
// binds the variable. Returns InvalidArgument with a position-annotated
// message on malformed input.
StatusOr<ConjunctiveQuery> ParseQuery(std::string_view text, Database& db);

}  // namespace lsens

#endif  // LSENS_QUERY_PARSER_H_
