#include "query/eval.h"

#include <utility>
#include <vector>

#include "query/atom_scan.h"

namespace lsens {

namespace {

// Shared-variable projections S_a of every atom (the paper's counted base
// relations: exclusive attributes are projected out with multiplicities).
StatusOr<std::vector<CountedRelation>> BuildAtomInputs(
    const ConjunctiveQuery& q, const Database& db) {
  std::vector<CountedRelation> inputs;
  inputs.reserve(static_cast<size_t>(q.num_atoms()));
  for (int i = 0; i < q.num_atoms(); ++i) {
    auto rel = db.Get(q.atom(i).relation);
    if (!rel.ok()) return rel.status();
    inputs.push_back(
        ScanAtom(**rel, q.atom(i), q.SharedVarsOf(i)));
  }
  return inputs;
}

}  // namespace

StatusOr<Count> CountGhd(const ConjunctiveQuery& q, const Ghd& ghd,
                         const Database& db, const JoinOptions& options) {
  LSENS_RETURN_IF_ERROR(q.Validate(db));
  auto inputs_or = BuildAtomInputs(q, db);
  if (!inputs_or.ok()) return inputs_or.status();
  const std::vector<CountedRelation>& s = *inputs_or;

  Count total = Count::One();
  std::vector<CountedRelation> botjoin(
      ghd.bags.size(), CountedRelation(AttributeSet{}));
  for (const JoinTree& tree : ghd.forest.trees) {
    Count tree_count = Count::Zero();
    for (int bag : tree.PostOrder()) {
      const GhdBag& spec = ghd.bags[static_cast<size_t>(bag)];
      std::vector<const CountedRelation*> pieces;
      for (int atom : spec.atom_indices) {
        pieces.push_back(&s[static_cast<size_t>(atom)]);
      }
      for (int child : tree.Children(bag)) {
        pieces.push_back(&botjoin[static_cast<size_t>(child)]);
      }
      CountedRelation folded = FoldJoin(std::move(pieces), options);
      int parent = tree.Parent(bag);
      if (parent == -1) {
        tree_count = folded.TotalCount();
      } else {
        AttributeSet link = Intersect(
            spec.vars, ghd.bags[static_cast<size_t>(parent)].vars);
        botjoin[static_cast<size_t>(bag)] =
            GroupBySum(folded, link, options.ctx);
      }
    }
    total *= tree_count;
    if (total.IsZero()) return total;  // empty component zeroes the product
  }
  return total;
}

StatusOr<Count> CountJoinForest(const ConjunctiveQuery& q,
                                const JoinForest& forest, const Database& db,
                                const JoinOptions& options) {
  return CountGhd(q, MakeTrivialGhd(q, forest), db, options);
}

StatusOr<Count> CountQuery(const ConjunctiveQuery& q, const Database& db,
                           const JoinOptions& options, const Ghd* ghd) {
  LSENS_RETURN_IF_ERROR(q.Validate(db));
  if (ghd != nullptr) return CountGhd(q, *ghd, db, options);
  auto forest = BuildJoinForestGYO(q);
  if (forest.ok()) return CountJoinForest(q, *forest, db, options);
  auto searched = SearchGhd(q, q.num_atoms());
  if (!searched.ok()) return searched.status();
  return CountGhd(q, *searched, db, options);
}

StatusOr<CountedRelation> BruteForceJoin(const ConjunctiveQuery& q,
                                         const Database& db,
                                         const JoinOptions& options) {
  LSENS_RETURN_IF_ERROR(q.Validate(db));
  std::vector<CountedRelation> full;
  full.reserve(static_cast<size_t>(q.num_atoms()));
  for (int i = 0; i < q.num_atoms(); ++i) {
    auto rel = db.Get(q.atom(i).relation);
    if (!rel.ok()) return rel.status();
    full.push_back(
        ScanAtom(**rel, q.atom(i), q.atom(i).VarSet()));
  }
  std::vector<const CountedRelation*> pieces;
  pieces.reserve(full.size());
  for (const auto& r : full) pieces.push_back(&r);
  return FoldJoin(std::move(pieces), options);
}

StatusOr<Count> BruteForceCount(const ConjunctiveQuery& q, const Database& db,
                                const JoinOptions& options) {
  auto joined = BruteForceJoin(q, db, options);
  if (!joined.ok()) return joined.status();
  return joined->TotalCount();
}

}  // namespace lsens
