#ifndef LSENS_QUERY_CONJUNCTIVE_QUERY_H_
#define LSENS_QUERY_CONJUNCTIVE_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/attribute_set.h"
#include "storage/database.h"
#include "storage/value.h"

namespace lsens {

// A per-tuple selection predicate `var op constant` attached to an atom
// (§5.4 "Selections": conditions that can be applied to each tuple
// individually).
struct Predicate {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };

  AttrId var = kInvalidAttr;
  Op op = Op::kEq;
  Value rhs = 0;

  bool Eval(Value lhs) const;

  // Some value from the full (integer) domain satisfying this predicate.
  // Used when extrapolating exclusive attributes of a most-sensitive tuple.
  Value SatisfyingValue() const;
};

// One atom R(x1,...,xk) of a conjunctive query: binds every column of the
// physical relation `relation` to a logical variable, positionally.
struct Atom {
  std::string relation;
  std::vector<AttrId> vars;          // size == relation arity, no repeats
  std::vector<Predicate> predicates;  // each predicate.var must be in vars

  // Sorted set of this atom's variables.
  AttributeSet VarSet() const;
};

// --- Canonical subtree signatures (cross-query plan cache) ----------------
// Order-normalized, attribute-id-free descriptions of the repair-DAG
// subtrees the incremental sensitivity subsystem maintains (S_a source
// projections and the ⊥/⊤ fold tables). Two queries that bind the same
// relations through structurally identical subtrees — same relation-local
// keep columns, same (sorted) predicates, same child subtrees glued through
// the same column pattern — produce byte-identical signatures, so
// SensitivityCache can key one shared DynTable per canonical subtree and
// let a single delta repair every dependent query. Signatures embed child
// signatures verbatim (length-prefixed), making equality exact by
// induction: equal signatures imply identical table contents *and* column
// order, with no hash-collision caveat. CanonicalFingerprint condenses a
// signature with the shared Mix64 fold for stats and display only.

// Signature of S_a = γ_keep(σ_pred(R_a)): the relation name, the relation
// column backing each keep attribute (in keep order — sharing requires the
// same column order, so table layouts line up without permutations), and
// the predicates as sorted (column, op, rhs) triples. `keep` must be a
// subset of the atom's variables.
std::string CanonicalSourceSignature(const Atom& atom,
                                     const AttributeSet& keep);

// One child subtree reference inside a composite signature: the child's
// full signature plus the column pattern gluing it to the parent (group
// nodes: the driver columns carrying its key; join nodes: the output scope
// column backing each child column).
struct CanonicalChild {
  std::string sig;
  std::vector<int> cols;
};

// Signature of a group node out = γ_group(driver ⋈ inputs...): the driver's
// signature, the driver columns forming the output key (in output order),
// and the inputs as a sorted multiset.
std::string CanonicalGroupSignature(const std::string& driver_sig,
                                    const std::vector<int>& group_cols,
                                    std::vector<CanonicalChild> inputs);

// Signature of a join node out = r⋈(pieces...): the pieces (signature plus
// scope-column pattern) as a sorted multiset.
std::string CanonicalJoinSignature(std::vector<CanonicalChild> pieces);

// 64-bit digest of a signature, folded byte-by-byte with the shared
// HashValueFold/Mix64 scheme from storage/value.h. Display/stats only —
// node identity always compares full signatures.
uint64_t CanonicalFingerprint(const std::string& sig);

// A full conjunctive query without projection, Q(vars) :- R1(..),...,Rm(..),
// evaluated as a counting query under bag semantics (Section 2 of the
// paper). Selection predicates may be attached per atom (§5.4).
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;

  // Convenience builder. `vars` are attribute names interned in db.attrs().
  // Returns the atom index.
  int AddAtom(Database& db, const std::string& relation,
              const std::vector<std::string>& var_names);
  int AddAtom(Atom atom);

  void AddPredicate(int atom_index, Predicate pred);

  const std::vector<Atom>& atoms() const { return atoms_; }
  const Atom& atom(int i) const { return atoms_[static_cast<size_t>(i)]; }
  int num_atoms() const { return static_cast<int>(atoms_.size()); }

  // All variables of the query (sorted).
  AttributeSet AllVars() const;

  // Variables appearing in >= 2 atoms (sorted).
  AttributeSet SharedVars() const;

  // Shared variables of one atom: vars(i) ∩ SharedVars().
  AttributeSet SharedVarsOf(int atom_index) const;

  // Variables exclusive to atom i (appear in no other atom).
  AttributeSet ExclusiveVarsOf(int atom_index) const;

  // Structural checks usable by any evaluator: relations exist, arities
  // match, vars unique within an atom, predicates reference atom vars.
  Status Validate(const Database& db) const;

  // Additional restrictions of the TSens algorithms (§5): no self-joins,
  // i.e. no physical relation appears in two atoms.
  Status ValidateForSensitivity(const Database& db) const;

  // Datalog-ish rendering for logs and error messages.
  std::string ToString(const AttributeCatalog& attrs) const;

 private:
  std::vector<Atom> atoms_;
};

}  // namespace lsens

#endif  // LSENS_QUERY_CONJUNCTIVE_QUERY_H_
