#ifndef LSENS_QUERY_GHD_H_
#define LSENS_QUERY_GHD_H_

#include <vector>

#include "common/status.h"
#include "query/conjunctive_query.h"
#include "query/join_tree.h"
#include "storage/attribute_set.h"

namespace lsens {

// A generalized hypertree decomposition in the restricted form §5.4 uses:
// every atom is assigned to exactly one bag, a bag's attribute set is the
// union of its atoms' variables, and the bags form a join forest (GYO-
// acyclic when each bag is viewed as one hyperedge). Evaluating/analyzing a
// cyclic query then reduces to the acyclic machinery over bag relations.
struct GhdBag {
  std::vector<int> atom_indices;  // >= 1 atoms, disjoint across bags
  AttributeSet vars;              // union of the atoms' variables
};

struct Ghd {
  std::vector<GhdBag> bags;
  JoinForest forest;  // trees over bag indices

  // Max atoms per bag (the parameter p of §5.4's O(m^p d n^{pd} log n)).
  int Width() const;
};

// Builds a GHD from explicit bags (vectors of atom indices). Fails if the
// bags do not partition the atoms or the bag hypergraph is cyclic.
StatusOr<Ghd> BuildGhd(const ConjunctiveQuery& q,
                       std::vector<std::vector<int>> bags);

// Exhaustive search for a minimum-width GHD of this restricted form, by
// enumerating set partitions of the atoms (restricted-growth strings) with
// block size <= max_width and testing bag-hypergraph acyclicity. Exponential
// in the number of atoms — intended for the small queries of the paper
// (<= ~10 atoms); returns Unsupported beyond `max_atoms`.
StatusOr<Ghd> SearchGhd(const ConjunctiveQuery& q, int max_width,
                        int max_atoms = 12);

// Wraps an acyclic query's join forest as a width-1 GHD (one atom per bag,
// bag index == atom index), so acyclic and cyclic queries share one
// execution/sensitivity engine.
Ghd MakeTrivialGhd(const ConjunctiveQuery& q, const JoinForest& forest);

// Bag index containing `atom`, or -1.
int BagOf(const Ghd& ghd, int atom);

}  // namespace lsens

#endif  // LSENS_QUERY_GHD_H_
