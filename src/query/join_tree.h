#ifndef LSENS_QUERY_JOIN_TREE_H_
#define LSENS_QUERY_JOIN_TREE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/conjunctive_query.h"
#include "storage/attribute_set.h"

namespace lsens {

// A join tree over the atoms of one connected component of an acyclic
// query's hypergraph (Section 2.2). Node identity == atom index in the
// query; the tree stores parent/children links and traversal orders.
class JoinTree {
 public:
  // Builds a tree from parent pointers: parent[i] == -1 marks the root.
  // `members` lists the atom indices in this tree.
  JoinTree(std::vector<int> members, std::vector<int> parent_of_atom);

  int root() const { return root_; }
  const std::vector<int>& members() const { return members_; }
  size_t size() const { return members_.size(); }

  // -1 for the root.
  int Parent(int atom) const;
  const std::vector<int>& Children(int atom) const;
  // Siblings: children of the parent, excluding `atom` (empty for root).
  std::vector<int> Neighbors(int atom) const;
  bool ContainsAtom(int atom) const;

  // Atom indices, children before parents / parents before children.
  std::vector<int> PostOrder() const;
  std::vector<int> PreOrder() const;

  // Max degree as defined in Theorem 5.1: children count + 1 for the parent
  // edge on non-root nodes, children count for the root.
  int MaxDegree() const;

  // Checks the running-intersection property against the query: for every
  // variable, the atoms containing it induce a connected subtree.
  Status ValidateAgainst(const ConjunctiveQuery& q) const;

 private:
  std::vector<int> members_;
  int root_ = -1;
  // Indexed by atom id (sparse; atoms outside the tree hold -2).
  std::vector<int> parent_;
  std::vector<std::vector<int>> children_;
};

// A join forest: one JoinTree per connected component of the hypergraph.
struct JoinForest {
  std::vector<JoinTree> trees;

  // Index of the tree containing `atom`, or -1.
  int TreeOf(int atom) const;
};

// GYO (Graham–Yu–Ozsoyoglu) ear decomposition. Returns the join forest if
// the query is acyclic; Status::Unsupported with an explanation otherwise.
// Deterministic: always removes the lowest-index ear with the lowest-index
// witness, so tests can rely on exact shapes.
StatusOr<JoinForest> BuildJoinForestGYO(const ConjunctiveQuery& q);

// True iff the query hypergraph is GYO-acyclic.
bool IsAcyclic(const ConjunctiveQuery& q);

// Structural analysis used to pick algorithms and to report the complexity
// parameters of Theorem 5.1 / §5.3.
struct JoinTreeAnalysis {
  int max_degree = 0;
  // §5.3: for every node, the join of { vars∩parent } ∪ { vars∩child_j }
  // is itself acyclic.
  bool doubly_acyclic = false;
  // §4: shared-variable structure forms a chain with single-attribute links.
  bool path_query = false;
};
JoinTreeAnalysis AnalyzeJoinTree(const ConjunctiveQuery& q,
                                 const JoinForest& forest);

// Detects the path-query ordering (Section 4): returns atom indices
// R_1..R_m such that consecutive atoms share exactly one variable, shared
// variables of each atom are exactly its link variables, and every shared
// variable occurs in exactly two atoms. Returns empty if not a path query.
// Requires a connected query (single tree).
std::vector<int> PathOrder(const ConjunctiveQuery& q);

}  // namespace lsens

#endif  // LSENS_QUERY_JOIN_TREE_H_
