#include "query/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace lsens {

namespace {

// Minimal recursive-descent scanner over the rule text.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool Consume(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  // [A-Za-z_][A-Za-z0-9_]*
  StatusOr<std::string> Ident() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start ||
        std::isdigit(static_cast<unsigned char>(text_[start]))) {
      return Error("expected identifier");
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  StatusOr<Value> Integer() {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    size_t digits = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == digits) return Error("expected integer");
    return static_cast<Value>(
        std::stoll(std::string(text_.substr(start, pos_ - start))));
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at position " +
                                   std::to_string(pos_));
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

StatusOr<std::vector<std::string>> ParseVarList(Scanner& scan) {
  if (!scan.Consume("(")) return scan.Error("expected '('");
  std::vector<std::string> vars;
  for (;;) {
    auto ident = scan.Ident();
    if (!ident.ok()) return ident.status();
    vars.push_back(*ident);
    if (scan.Consume(")")) break;
    if (!scan.Consume(",")) return scan.Error("expected ',' or ')'");
  }
  return vars;
}

}  // namespace

StatusOr<ConjunctiveQuery> ParseQuery(std::string_view text, Database& db) {
  Scanner scan(text);
  ConjunctiveQuery query;

  // Optional head before ":-".
  std::vector<std::string> head_vars;
  {
    size_t turnstile = text.find(":-");
    if (turnstile == std::string_view::npos) {
      return Status::InvalidArgument("rule needs ':-'");
    }
    std::string_view head = text.substr(0, turnstile);
    bool head_is_blank = true;
    for (char c : head) {
      head_is_blank =
          head_is_blank && std::isspace(static_cast<unsigned char>(c));
    }
    if (!head_is_blank) {
      Scanner head_scan(head);
      auto name = head_scan.Ident();
      if (!name.ok()) return name.status();
      auto vars = ParseVarList(head_scan);
      if (!vars.ok()) return vars.status();
      head_vars = *vars;
      if (!head_scan.AtEnd()) {
        return head_scan.Error("unexpected trailing text in head");
      }
    }
    scan = Scanner(text.substr(turnstile + 2));
  }

  struct PendingPredicate {
    std::string var;
    Predicate::Op op;
    Value rhs;
  };
  std::vector<PendingPredicate> predicates;

  for (;;) {
    auto ident = scan.Ident();
    if (!ident.ok()) return ident.status();
    if (scan.Peek() == '(') {
      auto vars = ParseVarList(scan);
      if (!vars.ok()) return vars.status();
      Atom atom;
      atom.relation = *ident;
      for (const auto& v : *vars) atom.vars.push_back(db.attrs().Intern(v));
      query.AddAtom(std::move(atom));
    } else {
      // Comparison predicate: ident op integer.
      Predicate::Op op;
      if (scan.Consume("!=")) {
        op = Predicate::Op::kNe;
      } else if (scan.Consume("<=")) {
        op = Predicate::Op::kLe;
      } else if (scan.Consume(">=")) {
        op = Predicate::Op::kGe;
      } else if (scan.Consume("<")) {
        op = Predicate::Op::kLt;
      } else if (scan.Consume(">")) {
        op = Predicate::Op::kGt;
      } else if (scan.Consume("=")) {
        op = Predicate::Op::kEq;
      } else {
        return scan.Error("expected '(' or a comparison operator");
      }
      auto rhs = scan.Integer();
      if (!rhs.ok()) return rhs.status();
      predicates.push_back({*ident, op, *rhs});
    }
    if (scan.AtEnd()) break;
    if (!scan.Consume(",")) return scan.Error("expected ',' between atoms");
  }

  if (query.num_atoms() == 0) {
    return Status::InvalidArgument("rule body has no atoms");
  }

  // Attach predicates to the first atom binding the variable.
  for (const auto& pending : predicates) {
    AttrId var = db.attrs().Lookup(pending.var);
    int target = -1;
    for (int i = 0; i < query.num_atoms() && target == -1; ++i) {
      if (Contains(query.atom(i).VarSet(), var)) target = i;
    }
    if (var == kInvalidAttr || target == -1) {
      return Status::InvalidArgument("predicate variable '" + pending.var +
                                     "' is not bound by any atom");
    }
    Predicate p;
    p.var = var;
    p.op = pending.op;
    p.rhs = pending.rhs;
    query.AddPredicate(target, p);
  }

  // Full CQs carry every variable in the head; verify if one was given.
  if (!head_vars.empty()) {
    AttributeSet declared;
    for (const auto& v : head_vars) {
      AttrId id = db.attrs().Lookup(v);
      if (id == kInvalidAttr) {
        return Status::InvalidArgument("head variable '" + v +
                                       "' does not appear in the body");
      }
      declared.push_back(id);
    }
    declared = MakeAttributeSet(std::move(declared));
    if (declared != query.AllVars()) {
      return Status::Unsupported(
          "head must list exactly the body variables (full CQs have no "
          "projection)");
    }
  }
  return query;
}

}  // namespace lsens
