#include "query/explain.h"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "exec/exec_context.h"

namespace lsens {

namespace {

std::string AttrsToString(const AttributeSet& set,
                          const AttributeCatalog& attrs) {
  std::string out = "{";
  for (size_t i = 0; i < set.size(); ++i) {
    if (i > 0) out += ",";
    out += attrs.Name(set[i]);
  }
  out += "}";
  return out;
}

std::string BagLabel(const ConjunctiveQuery& q, const AttributeCatalog& attrs,
                     const GhdBag& bag) {
  std::string label;
  for (size_t i = 0; i < bag.atom_indices.size(); ++i) {
    if (i > 0) label += "+";
    label += q.atom(bag.atom_indices[i]).relation;
  }
  label += " " + AttrsToString(bag.vars, attrs);
  return label;
}

}  // namespace

std::string RenderGhdTree(const ConjunctiveQuery& q,
                          const AttributeCatalog& attrs, const Ghd& ghd) {
  std::string out;
  for (size_t t = 0; t < ghd.forest.trees.size(); ++t) {
    const JoinTree& tree = ghd.forest.trees[t];
    if (ghd.forest.trees.size() > 1) {
      out += "component " + std::to_string(t) + ":\n";
    }
    std::function<void(int, int)> render = [&](int bag, int depth) {
      for (int i = 0; i < depth; ++i) out += "  ";
      const GhdBag& spec = ghd.bags[static_cast<size_t>(bag)];
      out += BagLabel(q, attrs, spec);
      int parent = tree.Parent(bag);
      if (parent != -1) {
        AttributeSet link = Intersect(
            spec.vars, ghd.bags[static_cast<size_t>(parent)].vars);
        out += "  (link " + AttrsToString(link, attrs) + ")";
      }
      out += "\n";
      for (int child : tree.Children(bag)) render(child, depth + 1);
    };
    render(tree.root(), 0);
  }
  return out;
}

std::string ExplainQuery(const ConjunctiveQuery& q,
                         const AttributeCatalog& attrs, const Ghd* ghd) {
  std::string out = "query: " + q.ToString(attrs) + "\n";

  auto forest = BuildJoinForestGYO(q);
  if (forest.ok()) {
    out += "structure: acyclic (GYO)\n";
    Ghd trivial = MakeTrivialGhd(q, *forest);
    JoinTreeAnalysis analysis = AnalyzeJoinTree(q, *forest);
    out += "join tree (max degree " + std::to_string(analysis.max_degree);
    if (analysis.path_query) out += ", path query";
    if (analysis.doubly_acyclic) out += ", doubly acyclic";
    out += "):\n";
    out += RenderGhdTree(q, attrs, trivial);
    if (analysis.path_query) {
      out += "algorithm: TSensPath (Algorithm 1, O(n log n))\n";
    } else {
      out += "algorithm: TSensOverGhd (Algorithm 2 over the GYO tree)\n";
    }
    return out;
  }

  out += "structure: cyclic\n";
  Ghd searched;
  const Ghd* use = ghd;
  if (use == nullptr) {
    auto found = SearchGhd(q, q.num_atoms());
    if (!found.ok()) {
      out += "no atom-partition GHD found: " + found.status().ToString() +
             "\n";
      return out;
    }
    searched = std::move(found).value();
    use = &searched;
    out += "decomposition: searched (width " +
           std::to_string(searched.Width()) + ")\n";
  } else {
    out += "decomposition: user-supplied (width " +
           std::to_string(use->Width()) + ")\n";
  }
  out += RenderGhdTree(q, attrs, *use);
  out += "algorithm: TSensOverGhd (§5.4 GHD extension)\n";
  return out;
}

std::string RenderExecStats(const ExecContext& ctx) {
  if (ctx.stats().empty()) return "operator stats: (none collected)\n";
  // Stable presentation: heaviest operators first.
  std::vector<const OperatorStats*> rows;
  rows.reserve(ctx.stats().size());
  for (const OperatorStats& s : ctx.stats()) rows.push_back(&s);
  std::sort(rows.begin(), rows.end(),
            [](const OperatorStats* a, const OperatorStats* b) {
              if (a->wall_seconds != b->wall_seconds) {
                return a->wall_seconds > b->wall_seconds;
              }
              return a->name < b->name;
            });
  char line[160];
  std::snprintf(line, sizeof(line), "%-26s %10s %12s %12s %12s %12s\n",
                "operator", "calls", "rows_in", "rows_out", "build_rows",
                "wall_ms");
  std::string out = line;
  for (const OperatorStats* s : rows) {
    std::snprintf(line, sizeof(line),
                  "%-26s %10llu %12llu %12llu %12llu %12.3f\n",
                  s->name.c_str(), static_cast<unsigned long long>(s->calls),
                  static_cast<unsigned long long>(s->rows_in),
                  static_cast<unsigned long long>(s->rows_out),
                  static_cast<unsigned long long>(s->build_rows),
                  s->wall_seconds * 1e3);
    out += line;
  }
  return out;
}

}  // namespace lsens
