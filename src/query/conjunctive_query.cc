#include "query/conjunctive_query.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <tuple>
#include <utility>

namespace lsens {

bool Predicate::Eval(Value lhs) const {
  switch (op) {
    case Op::kEq:
      return lhs == rhs;
    case Op::kNe:
      return lhs != rhs;
    case Op::kLt:
      return lhs < rhs;
    case Op::kLe:
      return lhs <= rhs;
    case Op::kGt:
      return lhs > rhs;
    case Op::kGe:
      return lhs >= rhs;
  }
  return false;
}

Value Predicate::SatisfyingValue() const {
  switch (op) {
    case Op::kEq:
      return rhs;
    case Op::kNe:
      return rhs == 0 ? 1 : rhs - 1;
    case Op::kLt:
      return rhs == std::numeric_limits<Value>::min() ? rhs : rhs - 1;
    case Op::kLe:
      return rhs;
    case Op::kGt:
      return rhs == std::numeric_limits<Value>::max() ? rhs : rhs + 1;
    case Op::kGe:
      return rhs;
  }
  return rhs;
}

AttributeSet Atom::VarSet() const { return MakeAttributeSet(vars); }

int ConjunctiveQuery::AddAtom(Database& db, const std::string& relation,
                              const std::vector<std::string>& var_names) {
  Atom a;
  a.relation = relation;
  a.vars.reserve(var_names.size());
  for (const auto& name : var_names) a.vars.push_back(db.attrs().Intern(name));
  return AddAtom(std::move(a));
}

int ConjunctiveQuery::AddAtom(Atom atom) {
  atoms_.push_back(std::move(atom));
  return static_cast<int>(atoms_.size()) - 1;
}

void ConjunctiveQuery::AddPredicate(int atom_index, Predicate pred) {
  atoms_[static_cast<size_t>(atom_index)].predicates.push_back(pred);
}

AttributeSet ConjunctiveQuery::AllVars() const {
  std::vector<AttrId> all;
  for (const auto& a : atoms_) {
    all.insert(all.end(), a.vars.begin(), a.vars.end());
  }
  return MakeAttributeSet(std::move(all));
}

AttributeSet ConjunctiveQuery::SharedVars() const {
  std::map<AttrId, int> occurrences;
  for (const auto& a : atoms_) {
    for (AttrId v : a.VarSet()) ++occurrences[v];
  }
  AttributeSet shared;
  for (const auto& [v, n] : occurrences) {
    if (n >= 2) shared.push_back(v);
  }
  return shared;  // map iteration is sorted
}

AttributeSet ConjunctiveQuery::SharedVarsOf(int atom_index) const {
  return Intersect(atoms_[static_cast<size_t>(atom_index)].VarSet(),
                   SharedVars());
}

AttributeSet ConjunctiveQuery::ExclusiveVarsOf(int atom_index) const {
  return Difference(atoms_[static_cast<size_t>(atom_index)].VarSet(),
                    SharedVars());
}

Status ConjunctiveQuery::Validate(const Database& db) const {
  if (atoms_.empty()) return Status::InvalidArgument("query has no atoms");
  for (size_t i = 0; i < atoms_.size(); ++i) {
    const Atom& a = atoms_[i];
    const Relation* rel = db.Find(a.relation);
    if (rel == nullptr) {
      return Status::NotFound("atom " + std::to_string(i) + ": relation '" +
                              a.relation + "' not in database");
    }
    if (a.vars.size() != rel->arity()) {
      return Status::InvalidArgument(
          "atom " + std::to_string(i) + ": binds " +
          std::to_string(a.vars.size()) + " vars but relation '" +
          a.relation + "' has arity " + std::to_string(rel->arity()));
    }
    AttributeSet distinct = a.VarSet();
    if (distinct.size() != a.vars.size()) {
      return Status::Unsupported("atom " + std::to_string(i) +
                                 ": repeated variable within one atom");
    }
    for (const Predicate& p : a.predicates) {
      if (!Contains(distinct, p.var)) {
        return Status::InvalidArgument(
            "atom " + std::to_string(i) +
            ": predicate references a variable not bound by the atom");
      }
    }
  }
  return Status::OK();
}

namespace {

void AppendChild(std::string* out, const CanonicalChild& child) {
  *out += std::to_string(child.sig.size());
  *out += ':';
  *out += child.sig;
  *out += '<';
  for (int c : child.cols) {
    *out += std::to_string(c);
    *out += ',';
  }
  *out += '>';
}

void SortChildren(std::vector<CanonicalChild>* children) {
  std::sort(children->begin(), children->end(),
            [](const CanonicalChild& a, const CanonicalChild& b) {
              if (a.sig != b.sig) return a.sig < b.sig;
              return a.cols < b.cols;
            });
}

}  // namespace

std::string CanonicalSourceSignature(const Atom& atom,
                                     const AttributeSet& keep) {
  std::string out = "src[";
  out += atom.relation;
  out += "](";
  for (AttrId a : keep) {
    size_t col = 0;
    while (atom.vars[col] != a) ++col;
    out += std::to_string(col);
    out += ',';
  }
  out += ")s{";
  std::vector<std::tuple<size_t, int, Value>> preds;
  preds.reserve(atom.predicates.size());
  for (const Predicate& p : atom.predicates) {
    size_t col = 0;
    while (atom.vars[col] != p.var) ++col;
    preds.emplace_back(col, static_cast<int>(p.op), p.rhs);
  }
  std::sort(preds.begin(), preds.end());
  for (const auto& [col, op, rhs] : preds) {
    out += std::to_string(col);
    out += ' ';
    out += std::to_string(op);
    out += ' ';
    out += std::to_string(rhs);
    out += ';';
  }
  out += '}';
  return out;
}

std::string CanonicalGroupSignature(const std::string& driver_sig,
                                    const std::vector<int>& group_cols,
                                    std::vector<CanonicalChild> inputs) {
  SortChildren(&inputs);
  std::string out = "grp[";
  out += std::to_string(driver_sig.size());
  out += ':';
  out += driver_sig;
  out += "](";
  for (int c : group_cols) {
    out += std::to_string(c);
    out += ',';
  }
  out += "){";
  for (const CanonicalChild& input : inputs) AppendChild(&out, input);
  out += '}';
  return out;
}

std::string CanonicalJoinSignature(std::vector<CanonicalChild> pieces) {
  SortChildren(&pieces);
  std::string out = "join{";
  for (const CanonicalChild& piece : pieces) AppendChild(&out, piece);
  out += '}';
  return out;
}

uint64_t CanonicalFingerprint(const std::string& sig) {
  uint64_t h = kValueHashSeed;
  for (char c : sig) {
    h = HashValueFold(h, static_cast<Value>(static_cast<unsigned char>(c)));
  }
  return h;
}

Status ConjunctiveQuery::ValidateForSensitivity(const Database& db) const {
  LSENS_RETURN_IF_ERROR(Validate(db));
  std::set<std::string> seen;
  for (const auto& a : atoms_) {
    if (!seen.insert(a.relation).second) {
      return Status::Unsupported(
          "self-joins are not supported by TSens (relation '" + a.relation +
          "' appears twice); materialize a copy under a different name");
    }
  }
  return Status::OK();
}

std::string ConjunctiveQuery::ToString(const AttributeCatalog& attrs) const {
  std::string out = "Q :- ";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += ", ";
    out += atoms_[i].relation;
    out += "(";
    for (size_t j = 0; j < atoms_[i].vars.size(); ++j) {
      if (j > 0) out += ",";
      out += attrs.Name(atoms_[i].vars[j]);
    }
    out += ")";
  }
  return out;
}

}  // namespace lsens
