#include "query/conjunctive_query.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <utility>

namespace lsens {

bool Predicate::Eval(Value lhs) const {
  switch (op) {
    case Op::kEq:
      return lhs == rhs;
    case Op::kNe:
      return lhs != rhs;
    case Op::kLt:
      return lhs < rhs;
    case Op::kLe:
      return lhs <= rhs;
    case Op::kGt:
      return lhs > rhs;
    case Op::kGe:
      return lhs >= rhs;
  }
  return false;
}

Value Predicate::SatisfyingValue() const {
  switch (op) {
    case Op::kEq:
      return rhs;
    case Op::kNe:
      return rhs == 0 ? 1 : rhs - 1;
    case Op::kLt:
      return rhs == std::numeric_limits<Value>::min() ? rhs : rhs - 1;
    case Op::kLe:
      return rhs;
    case Op::kGt:
      return rhs == std::numeric_limits<Value>::max() ? rhs : rhs + 1;
    case Op::kGe:
      return rhs;
  }
  return rhs;
}

AttributeSet Atom::VarSet() const { return MakeAttributeSet(vars); }

int ConjunctiveQuery::AddAtom(Database& db, const std::string& relation,
                              const std::vector<std::string>& var_names) {
  Atom a;
  a.relation = relation;
  a.vars.reserve(var_names.size());
  for (const auto& name : var_names) a.vars.push_back(db.attrs().Intern(name));
  return AddAtom(std::move(a));
}

int ConjunctiveQuery::AddAtom(Atom atom) {
  atoms_.push_back(std::move(atom));
  return static_cast<int>(atoms_.size()) - 1;
}

void ConjunctiveQuery::AddPredicate(int atom_index, Predicate pred) {
  atoms_[static_cast<size_t>(atom_index)].predicates.push_back(pred);
}

AttributeSet ConjunctiveQuery::AllVars() const {
  std::vector<AttrId> all;
  for (const auto& a : atoms_) {
    all.insert(all.end(), a.vars.begin(), a.vars.end());
  }
  return MakeAttributeSet(std::move(all));
}

AttributeSet ConjunctiveQuery::SharedVars() const {
  std::map<AttrId, int> occurrences;
  for (const auto& a : atoms_) {
    for (AttrId v : a.VarSet()) ++occurrences[v];
  }
  AttributeSet shared;
  for (const auto& [v, n] : occurrences) {
    if (n >= 2) shared.push_back(v);
  }
  return shared;  // map iteration is sorted
}

AttributeSet ConjunctiveQuery::SharedVarsOf(int atom_index) const {
  return Intersect(atoms_[static_cast<size_t>(atom_index)].VarSet(),
                   SharedVars());
}

AttributeSet ConjunctiveQuery::ExclusiveVarsOf(int atom_index) const {
  return Difference(atoms_[static_cast<size_t>(atom_index)].VarSet(),
                    SharedVars());
}

Status ConjunctiveQuery::Validate(const Database& db) const {
  if (atoms_.empty()) return Status::InvalidArgument("query has no atoms");
  for (size_t i = 0; i < atoms_.size(); ++i) {
    const Atom& a = atoms_[i];
    const Relation* rel = db.Find(a.relation);
    if (rel == nullptr) {
      return Status::NotFound("atom " + std::to_string(i) + ": relation '" +
                              a.relation + "' not in database");
    }
    if (a.vars.size() != rel->arity()) {
      return Status::InvalidArgument(
          "atom " + std::to_string(i) + ": binds " +
          std::to_string(a.vars.size()) + " vars but relation '" +
          a.relation + "' has arity " + std::to_string(rel->arity()));
    }
    AttributeSet distinct = a.VarSet();
    if (distinct.size() != a.vars.size()) {
      return Status::Unsupported("atom " + std::to_string(i) +
                                 ": repeated variable within one atom");
    }
    for (const Predicate& p : a.predicates) {
      if (!Contains(distinct, p.var)) {
        return Status::InvalidArgument(
            "atom " + std::to_string(i) +
            ": predicate references a variable not bound by the atom");
      }
    }
  }
  return Status::OK();
}

Status ConjunctiveQuery::ValidateForSensitivity(const Database& db) const {
  LSENS_RETURN_IF_ERROR(Validate(db));
  std::set<std::string> seen;
  for (const auto& a : atoms_) {
    if (!seen.insert(a.relation).second) {
      return Status::Unsupported(
          "self-joins are not supported by TSens (relation '" + a.relation +
          "' appears twice); materialize a copy under a different name");
    }
  }
  return Status::OK();
}

std::string ConjunctiveQuery::ToString(const AttributeCatalog& attrs) const {
  std::string out = "Q :- ";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += ", ";
    out += atoms_[i].relation;
    out += "(";
    for (size_t j = 0; j < atoms_[i].vars.size(); ++j) {
      if (j > 0) out += ",";
      out += attrs.Name(atoms_[i].vars[j]);
    }
    out += ")";
  }
  return out;
}

}  // namespace lsens
