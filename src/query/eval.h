#ifndef LSENS_QUERY_EVAL_H_
#define LSENS_QUERY_EVAL_H_

#include "common/count.h"
#include "common/status.h"
#include "exec/fold_join.h"
#include "query/ghd.h"
#include "query/join_tree.h"
#include "storage/database.h"

namespace lsens {

// |Q(D)| under bag semantics for an acyclic query, evaluated Yannakakis-
// style on the join forest: one bottom-up botjoin pass per tree (counts
// aggregate through the tree, near-linear in the input, never in the
// output), multiplied across connected components.
StatusOr<Count> CountJoinForest(const ConjunctiveQuery& q,
                                const JoinForest& forest, const Database& db,
                                const JoinOptions& options = {});

// |Q(D)| for a (possibly cyclic) query via a generalized hypertree
// decomposition: bags are folded together with their children's botjoins
// (greedy join order — bag-internal cross products are deferred until
// selective pieces have pruned the accumulator).
StatusOr<Count> CountGhd(const ConjunctiveQuery& q, const Ghd& ghd,
                         const Database& db, const JoinOptions& options = {});

// Facade: validates, decomposes (GYO, falling back to GHD search for cyclic
// queries), and counts.
StatusOr<Count> CountQuery(const ConjunctiveQuery& q, const Database& db,
                           const JoinOptions& options = {},
                           const Ghd* ghd = nullptr);

// Test oracle: materializes the full join output over all variables by
// folding atoms pairwise. Exponential in general — small inputs only.
StatusOr<CountedRelation> BruteForceJoin(const ConjunctiveQuery& q,
                                         const Database& db,
                                         const JoinOptions& options = {});
StatusOr<Count> BruteForceCount(const ConjunctiveQuery& q, const Database& db,
                                const JoinOptions& options = {});

}  // namespace lsens

#endif  // LSENS_QUERY_EVAL_H_
