#ifndef LSENS_QUERY_ENUMERATE_H_
#define LSENS_QUERY_ENUMERATE_H_

#include "common/status.h"
#include "exec/exec_context.h"
#include "exec/fold_join.h"
#include "query/ghd.h"
#include "storage/database.h"

namespace lsens {

// Full join-output materialization (over *all* query variables, bag
// multiplicities preserved) in the spirit of Yannakakis [46]: relations are
// first semijoin-reduced bottom-up and top-down along the join tree so that
// every surviving tuple participates in some output, then joined leaves-to-
// root — intermediate results never exceed the final output size.
//
// Cyclic queries go through the GHD: bags are materialized (FoldJoin) and
// the bag tree is reduced/joined the same way.
//
// `max_rows` guards runaway outputs (Status::Unsupported when exceeded;
// the output of a join can be exponential in the query size).
StatusOr<CountedRelation> EnumerateJoin(const ConjunctiveQuery& q,
                                        const Ghd& ghd, const Database& db,
                                        const JoinOptions& options = {},
                                        size_t max_rows = 50'000'000);

// Facade: GYO for acyclic queries, GHD search otherwise.
StatusOr<CountedRelation> EnumerateQuery(const ConjunctiveQuery& q,
                                         const Database& db,
                                         const JoinOptions& options = {},
                                         size_t max_rows = 50'000'000);

// Semijoin a ⋉ b: rows of `a` whose shared-attribute projection has a match
// in `b`, counts untouched. An empty intersection keeps `a` iff `b` is
// non-empty. The membership filter runs over the flat hash-group table
// owned by `ctx` (thread-local default when null).
CountedRelation Semijoin(const CountedRelation& a, const CountedRelation& b,
                         ExecContext* ctx = nullptr);

}  // namespace lsens

#endif  // LSENS_QUERY_ENUMERATE_H_
