#ifndef LSENS_COMMON_COUNT_H_
#define LSENS_COMMON_COUNT_H_

#include <cstdint>
#include <iosfwd>
#include <string>

namespace lsens {

// Saturating unsigned 128-bit counter.
//
// Tuple sensitivities are products of multiplicities across up to m
// relations; the paper's own Elastic numbers exceed 1e14 at TPC-H scale 0.1
// and adversarial inputs overflow 64 bits easily. All arithmetic saturates
// at Max() instead of wrapping, so comparisons stay meaningful (a saturated
// bound is still a valid upper bound).
class Count {
 public:
  constexpr Count() : v_(0) {}
  constexpr explicit Count(uint64_t v) : v_(v) {}

  static constexpr Count Max() {
    Count c;
    c.v_ = ~static_cast<unsigned __int128>(0);
    return c;
  }
  static constexpr Count Zero() { return Count(); }
  static constexpr Count One() { return Count(1); }

  bool IsZero() const { return v_ == 0; }
  bool IsSaturated() const { return v_ == Max().v_; }

  // Saturating addition / multiplication.
  Count operator+(Count o) const {
    Count r;
    r.v_ = v_ + o.v_;
    if (r.v_ < v_) return Max();  // wrapped
    return r;
  }
  Count operator*(Count o) const {
    if (v_ == 0 || o.v_ == 0) return Zero();
    Count r;
    r.v_ = v_ * o.v_;
    if (r.v_ / v_ != o.v_) return Max();  // wrapped
    return r;
  }
  Count& operator+=(Count o) { return *this = *this + o; }
  Count& operator*=(Count o) { return *this = *this * o; }

  // Saturating subtraction (floors at zero). Used for |Q(D)| - removals.
  Count SaturatingSub(Count o) const {
    Count r;
    r.v_ = (v_ > o.v_) ? v_ - o.v_ : 0;
    return r;
  }

  friend bool operator==(Count a, Count b) { return a.v_ == b.v_; }
  friend bool operator!=(Count a, Count b) { return a.v_ != b.v_; }
  friend bool operator<(Count a, Count b) { return a.v_ < b.v_; }
  friend bool operator<=(Count a, Count b) { return a.v_ <= b.v_; }
  friend bool operator>(Count a, Count b) { return a.v_ > b.v_; }
  friend bool operator>=(Count a, Count b) { return a.v_ >= b.v_; }

  // Lossy conversions for DP noise math and reporting.
  double ToDouble() const;
  // Exact iff the value fits; otherwise returns uint64 max.
  uint64_t ToUint64Saturated() const;
  // Decimal string (exact, arbitrary length), "SAT" suffix when saturated.
  std::string ToString() const;

 private:
  unsigned __int128 v_;
};

std::ostream& operator<<(std::ostream& os, Count c);

// gtest integration.
void PrintTo(Count c, std::ostream* os);

}  // namespace lsens

#endif  // LSENS_COMMON_COUNT_H_
