#include "common/rng.h"

#include <cmath>

#include "common/macros.h"

namespace lsens {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(s);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  LSENS_CHECK(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  LSENS_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpen() {
  for (;;) {
    double d = NextDouble();
    if (d > 0.0) return d;
  }
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  LSENS_CHECK(n >= 1);
  if (n == 1) return 1;
  if (s <= 0.0) return 1 + NextBounded(n);
  // Rejection sampling from the bounding curve (Devroye). Works for any
  // s > 0, s != 1 handled via the generalized harmonic inverse.
  const double b = std::pow(2.0, s - 1.0);
  for (;;) {
    double u = NextDoubleOpen();
    double v = NextDoubleOpen();
    double x;
    if (s == 1.0) {
      x = std::pow(static_cast<double>(n) + 1.0, u);
    } else {
      double t = std::pow(static_cast<double>(n) + 1.0, 1.0 - s);
      x = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
    }
    uint64_t k = static_cast<uint64_t>(x);
    if (k < 1) k = 1;
    if (k > n) k = n;
    double ratio = std::pow(static_cast<double>(k) / x, s);
    if (v * b <= ratio) return k;
  }
}

Rng Rng::Split() { return Rng(NextUint64() ^ 0xa5a5a5a5a5a5a5a5ULL); }

}  // namespace lsens
