#include "common/status.h"

namespace lsens {

std::string Status::ToString() const {
  const char* name = "Unknown";
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      name = "InvalidArgument";
      break;
    case Code::kNotFound:
      name = "NotFound";
      break;
    case Code::kUnsupported:
      name = "Unsupported";
      break;
    case Code::kInternal:
      name = "Internal";
      break;
  }
  std::string result = name;
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace lsens
