#ifndef LSENS_COMMON_THREAD_POOL_H_
#define LSENS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace lsens {

// Fixed-size thread pool with a single shared FIFO queue — no work
// stealing, no dynamic resizing. Built for the coarse-grained fan-out the
// sensitivity engine needs (a handful of chunk tasks per parallel region,
// each worth many microseconds), not for fine-grained task graphs.
//
// Usage contract:
//   - Submit() enqueues a task; the pool passes the executing worker's
//     index (in [0, num_workers())) so callers can hand each worker
//     thread-private state (see ExecContextPool in exec/exec_context.h).
//   - Tasks are accounted per submitting thread: Wait() blocks until every
//     task *the calling thread* submitted has finished, then rethrows the
//     first exception one of those tasks raised (later exceptions are
//     dropped; remaining tasks still run). Concurrent top-level callers
//     sharing one pool are therefore fully independent — neither waits on
//     nor receives errors from the other's tasks. After Wait() the pool
//     is reusable for the next batch.
//   - Nested submission is rejected: Submit() and Wait() LSENS_CHECK-fail
//     when called from a pool worker thread. Parallel regions therefore
//     never nest — inner code running on a worker must stay serial
//     (ThreadPool::OnWorkerThread() is how exec-layer gates detect this).
//   - The destructor drains the queue, then joins all workers.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  // Enqueues `task`; it runs as task(worker_index) on some worker. The
  // task is charged to the calling thread's batch.
  void Submit(std::function<void(size_t)> task);

  // Blocks until every task the calling thread submitted has completed;
  // rethrows the first exception among them (the pool stays usable
  // afterwards). A no-op for a thread with no outstanding submissions.
  void Wait();

  // True iff the calling thread is a worker of *any* ThreadPool. Used to
  // refuse nested submission and to force nested parallel regions serial.
  static bool OnWorkerThread();

 private:
  // One per submitting thread, alive from its first Submit() to the end
  // of the Wait() that drains it. std::map node stability lets queued
  // tasks hold plain pointers.
  struct Batch {
    size_t pending = 0;
    std::exception_ptr first_error;
  };
  struct Task {
    std::function<void(size_t)> fn;
    Batch* batch;
  };

  void WorkerLoop(size_t index);

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue non-empty or stop
  std::condition_variable done_cv_;   // Wait(): own batch drained
  std::deque<Task> queue_;
  std::map<std::thread::id, Batch> batches_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// The process-wide pool the execution layer fans out on, created lazily on
// first use and sized max(hardware_concurrency, 8) — the floor keeps
// `threads = 8` differential runs genuinely concurrent on small CI
// machines (idle workers cost only a blocked thread). Override with the
// LSENS_POOL_WORKERS environment variable (read once, at creation).
ThreadPool& GlobalThreadPool();

}  // namespace lsens

#endif  // LSENS_COMMON_THREAD_POOL_H_
