#include "common/count.h"

#include <algorithm>
#include <limits>
#include <ostream>

namespace lsens {

double Count::ToDouble() const {
  // __int128 -> double is exact up to 2^53 and correctly rounded beyond.
  return static_cast<double>(v_);
}

uint64_t Count::ToUint64Saturated() const {
  if (v_ > static_cast<unsigned __int128>(
               std::numeric_limits<uint64_t>::max())) {
    return std::numeric_limits<uint64_t>::max();
  }
  return static_cast<uint64_t>(v_);
}

std::string Count::ToString() const {
  if (IsSaturated()) return "SAT";
  if (v_ == 0) return "0";
  std::string digits;
  unsigned __int128 v = v_;
  while (v > 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(v % 10)));
    v /= 10;
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::ostream& operator<<(std::ostream& os, Count c) {
  return os << c.ToString();
}

void PrintTo(Count c, std::ostream* os) { *os << c.ToString(); }

}  // namespace lsens
