#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/macros.h"

namespace lsens {

namespace {

// Per-thread marker: set for the lifetime of a worker's loop so
// OnWorkerThread() can identify pool threads across every pool instance.
thread_local bool tl_on_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_workers) {
  LSENS_CHECK_MSG(num_workers > 0, "ThreadPool needs at least one worker");
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void(size_t)> task) {
  LSENS_CHECK_MSG(!OnWorkerThread(),
                  "nested ThreadPool submission from a worker thread");
  {
    std::unique_lock<std::mutex> lock(mu_);
    Batch& batch = batches_[std::this_thread::get_id()];
    ++batch.pending;
    queue_.push_back(Task{std::move(task), &batch});
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  LSENS_CHECK_MSG(!OnWorkerThread(),
                  "ThreadPool::Wait from a worker thread would deadlock");
  std::unique_lock<std::mutex> lock(mu_);
  auto it = batches_.find(std::this_thread::get_id());
  if (it == batches_.end()) return;  // nothing outstanding for this thread
  Batch& batch = it->second;
  done_cv_.wait(lock, [&] { return batch.pending == 0; });
  std::exception_ptr err = std::exchange(batch.first_error, nullptr);
  batches_.erase(it);
  if (err != nullptr) std::rethrow_exception(err);
}

void ThreadPool::WorkerLoop(size_t index) {
  tl_on_pool_worker = true;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task.fn(index);
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (task.batch->first_error == nullptr) {
        task.batch->first_error = std::current_exception();
      }
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--task.batch->pending == 0) done_cv_.notify_all();
    }
  }
}

bool ThreadPool::OnWorkerThread() { return tl_on_pool_worker; }

ThreadPool& GlobalThreadPool() {
  static ThreadPool pool([] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once under the
    // function-local static's init guard, before any pool worker exists;
    // nothing in the process writes the environment.
    if (const char* raw = std::getenv("LSENS_POOL_WORKERS")) {
      long n = std::atol(raw);
      if (n > 0) return static_cast<size_t>(n);
    }
    return std::max<size_t>(std::thread::hardware_concurrency(), 8);
  }());
  return pool;
}

}  // namespace lsens
