#ifndef LSENS_COMMON_RNG_H_
#define LSENS_COMMON_RNG_H_

#include <cstdint>

namespace lsens {

// Deterministic xoshiro256++ PRNG seeded via splitmix64.
//
// Everything random in this library (workload generation, DP noise, test
// fuzzing) flows through explicitly seeded Rng instances so experiments are
// reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextUint64();

  // Uniform in [0, bound), bias-free via rejection.
  uint64_t NextBounded(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Open-interval uniform in (0, 1): never returns 0, safe for log().
  double NextDoubleOpen();

  // Zipf-distributed integer in [1, n] with exponent s (>0); s=0 degenerates
  // to uniform. Inverse-CDF over a precomputed-free rejection scheme is
  // overkill here — workload sizes are small, so we use linear search over
  // the CDF only when n is tiny and Chlebus' approximation otherwise.
  uint64_t NextZipf(uint64_t n, double s);

  // Fork a statistically independent stream (for parallel generators).
  Rng Split();

 private:
  uint64_t s_[4];
};

// splitmix64 step, exposed for hashing helpers.
uint64_t SplitMix64(uint64_t& state);

// 64-bit finalizer used for hash combining.
uint64_t Mix64(uint64_t x);

}  // namespace lsens

#endif  // LSENS_COMMON_RNG_H_
