#ifndef LSENS_COMMON_STATUS_H_
#define LSENS_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace lsens {

// RocksDB-style status object: the library never throws; recoverable
// failures (malformed queries, cyclic inputs to acyclic-only algorithms,
// missing relations) are reported through Status / StatusOr.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kUnsupported,
    kInternal,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable form, e.g. "InvalidArgument: relation R not found".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

// Minimal StatusOr: either a Status (non-OK) or a value.
template <typename T>
class StatusOr {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors absl::StatusOr.
  StatusOr(Status status) : rep_(std::move(status)) {
    LSENS_CHECK_MSG(!std::get<Status>(rep_).ok(),
                    "StatusOr constructed from OK status without a value");
  }
  // NOLINTNEXTLINE(google-explicit-constructor)
  StatusOr(T value) : rep_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    LSENS_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  T& value() & {
    LSENS_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  T&& value() && {
    LSENS_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace lsens

#endif  // LSENS_COMMON_STATUS_H_
