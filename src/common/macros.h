#ifndef LSENS_COMMON_MACROS_H_
#define LSENS_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Fatal assertion for programming errors (not data errors — those go
// through Status). Always enabled, including in release builds: sensitivity
// results feed privacy budgets, so silent invariant violations are worse
// than an abort.
#define LSENS_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "LSENS_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define LSENS_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "LSENS_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

// Propagates a non-OK Status from an expression returning Status.
#define LSENS_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::lsens::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                      \
  } while (0)

#endif  // LSENS_COMMON_MACROS_H_
