#ifndef LSENS_COMMON_TIMER_H_
#define LSENS_COMMON_TIMER_H_

#include <chrono>

namespace lsens {

// Simple monotonic wall-clock timer for the experiment harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lsens

#endif  // LSENS_COMMON_TIMER_H_
