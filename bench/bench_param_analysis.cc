// §7.3 parameter analysis: how the assumed tuple-sensitivity upper bound ℓ
// affects TSensDP on the star query q⋆. The paper sweeps
// ℓ ∈ {1, 10, 30, 50, 100, 1000} and reports the learned threshold, median
// relative bias and median relative error over 20 runs; the sweet spot is
// near the true local sensitivity (too-small ℓ truncates, too-large ℓ
// drowns the Q̂ release in noise — 98% error at ℓ = 1000 in the paper).
//
// Environment: LSENS_DP_RUNS=20 LSENS_EPSILON=1.0

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "dp/tsens_dp.h"
#include "sensitivity/tsens.h"
#include "workload/queries.h"
#include "workload/social.h"

int main() {
  using namespace lsens;
  using bench::Median;
  bench::Banner("§7.3 parameter analysis — ℓ sweep for TSensDP on q⋆",
                "columns: learned τ, relative bias, relative error (medians)");
  const long runs = bench::EnvInt("LSENS_DP_RUNS", 20);
  const double epsilon = bench::EnvScales("LSENS_EPSILON", {1.0})[0];

  Database db = MakeSocialDatabase(SocialOptions{});
  WorkloadQuery w = MakeFacebookStar(db);

  TSensComputeOptions sopts;
  auto exact = ComputeLocalSensitivity(w.query, db, sopts);
  std::printf("true local sensitivity of q_star: %s\n\n",
              exact.ok() ? exact->local_sensitivity.ToString().c_str() : "?");

  std::printf("%-8s %-10s %-12s %-12s\n", "ell", "tau(med)", "bias(med)",
              "error(med)");
  for (uint64_t ell : {1ull, 10ull, 30ull, 50ull, 100ull, 1000ull}) {
    std::vector<double> taus, biases, errors;
    for (long r = 0; r < runs; ++r) {
      TSensDpOptions opts;
      opts.epsilon = epsilon;
      opts.ell = ell;
      opts.seed = static_cast<uint64_t>(r) + 1;
      auto run = RunTSensDp(w.query, db, w.private_atom, opts);
      if (!run.ok()) {
        std::printf("ell=%llu ERROR: %s\n",
                    static_cast<unsigned long long>(ell),
                    run.status().ToString().c_str());
        return 1;
      }
      taus.push_back(static_cast<double>(run->learned_threshold));
      biases.push_back(run->true_answer > 0
                           ? run->bias() / run->true_answer
                           : 0.0);
      errors.push_back(run->true_answer > 0
                           ? run->error() / run->true_answer
                           : 0.0);
    }
    std::printf("%-8llu %-10.0f %-11.2f%% %-11.2f%%\n",
                static_cast<unsigned long long>(ell), Median(taus),
                100 * Median(biases), 100 * Median(errors));
  }
  return 0;
}
