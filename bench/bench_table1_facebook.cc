// Table 1: local sensitivity and runtime of the four Facebook ego-network
// queries (triangle q△, path qw, 4-cycle q○, star q⋆) for TSens and
// Elastic, plus the query (count) evaluation time.
//
// Paper reference points: LS — q△ 87 vs 7,524; qw 178,923 vs 511,632;
// q○ 2,014 vs 511,632; q⋆ 34 vs 2,723,688. TSens runtime is comparable to
// query evaluation (0.2–0.6s), 25–60x slower than Elastic.

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "query/eval.h"
#include "sensitivity/elastic.h"
#include "sensitivity/tsens.h"
#include "workload/queries.h"
#include "workload/social.h"

int main() {
  using namespace lsens;
  bench::Banner("Table 1 — Facebook ego-network queries",
                "columns: LS (TSens, Elastic), time (TSens, Elastic, eval)");
  Database db = MakeSocialDatabase(SocialOptions{});
  size_t edges = 0;
  for (int t = 1; t <= 4; ++t) {
    edges += db.Find("R" + std::to_string(t))->NumRows();
  }
  std::printf("graph: %zu directed edges across R1..R4, |RT|=%zu triangles\n\n",
              edges, db.Find("RT")->NumRows());

  std::printf("%-7s %-14s %-14s %-12s %-12s %-12s\n", "query", "LS(TSens)",
              "LS(Elastic)", "t_TSens", "t_Elastic", "t_eval");
  for (auto make : {MakeFacebookTriangle, MakeFacebookPath, MakeFacebookCycle,
                    MakeFacebookStar}) {
    WorkloadQuery w = make(db);
    TSensComputeOptions opts;
    opts.ghd = w.ghd_ptr();

    WallTimer t1;
    auto tsens = ComputeLocalSensitivity(w.query, db, opts);
    double tsens_s = t1.ElapsedSeconds();
    WallTimer t2;
    auto elastic = ElasticSensitivity(w.query, db, w.ghd_ptr(),
                                    ElasticMode::kFlexFaithful);
    double elastic_s = t2.ElapsedSeconds();
    WallTimer t3;
    auto count = CountQuery(w.query, db, {}, w.ghd_ptr());
    double eval_s = t3.ElapsedSeconds();
    if (!tsens.ok() || !elastic.ok() || !count.ok()) {
      std::printf("%-7s ERROR\n", w.name.c_str());
      continue;
    }
    std::printf("%-7s %-14s %-14s %-12.4f %-12.6f %-12.4f  |Q|=%s\n",
                w.name.c_str(), tsens->local_sensitivity.ToString().c_str(),
                elastic->local_sensitivity_bound.ToString().c_str(), tsens_s,
                elastic_s, eval_s, count->ToString().c_str());
  }
  return 0;
}
