// Design-choice ablation: our Elastic reimplementation can take the min of
// the two symmetric frequency derivations at every join node (kTightened),
// which is sound and often far below the original one-sided Flex rule
// (kFlexFaithful). This bench quantifies the gap on all seven evaluation
// queries, next to the exact TSens local sensitivity — i.e. how much of
// the paper's "TSens is orders of magnitude tighter than Elastic" headroom
// survives a stronger static analysis. (Answer: a lot — static bounds
// cannot see which frequencies co-occur on one join path.)

#include <cstdio>

#include "bench_util.h"
#include "sensitivity/elastic.h"
#include "sensitivity/tsens.h"
#include "workload/queries.h"
#include "workload/social.h"
#include "workload/tpch.h"

int main() {
  using namespace lsens;
  bench::Banner("Ablation — Elastic variants vs exact TSens",
                "kFlexFaithful (paper baseline) vs kTightened (ours)");
  const double scale = bench::EnvScales("LSENS_DP_SCALE", {0.01})[0];
  TpchOptions topts;
  topts.scale = scale;
  Database tpch = MakeTpchDatabase(topts);
  Database social = MakeSocialDatabase(SocialOptions{});

  std::printf("%-7s %-16s %-16s %-14s %-12s %-12s\n", "query",
              "Elastic(Flex)", "Elastic(tight)", "TSens(exact)",
              "Flex/exact", "tight/exact");
  for (auto& w : MakeAllWorkloadQueries(tpch, social)) {
    Database& db = (w.name.size() == 2) ? tpch : social;
    auto faithful = ElasticSensitivity(w.query, db, w.ghd_ptr(),
                                       ElasticMode::kFlexFaithful);
    auto tightened = ElasticSensitivity(w.query, db, w.ghd_ptr(),
                                        ElasticMode::kTightened);
    TSensComputeOptions opts;
    opts.ghd = w.ghd_ptr();
    opts.skip_atoms = w.skip_atoms;
    auto exact = ComputeLocalSensitivity(w.query, db, opts);
    if (!faithful.ok() || !tightened.ok() || !exact.ok()) {
      std::printf("%-7s ERROR\n", w.name.c_str());
      continue;
    }
    double ls = exact->local_sensitivity.ToDouble();
    std::printf("%-7s %-16s %-16s %-14s %-12.1f %-12.1f\n", w.name.c_str(),
                faithful->local_sensitivity_bound.ToString().c_str(),
                tightened->local_sensitivity_bound.ToString().c_str(),
                exact->local_sensitivity.ToString().c_str(),
                ls > 0 ? faithful->local_sensitivity_bound.ToDouble() / ls
                       : 0.0,
                ls > 0 ? tightened->local_sensitivity_bound.ToDouble() / ls
                       : 0.0);
  }
  return 0;
}
