// Columnar-storage microbenchmarks: the flat per-column layout against an
// in-bench row-major baseline, on the four hot shapes the columnar rewrite
// targets — predicate scan + projection, key hashing, hash-join probe, and
// change-log delta projection — plus the storage-footprint comparison of a
// dictionary-encoded string column against per-row std::string storage.
// Every family computes a checksum on both paths and the run aborts on any
// divergence, so the speedup table can never quietly compare different
// answers. Writes the BENCH_columnar.json trajectory file.
//
// Exits non-zero (failing the CTest smoke) when
//   - any columnar/row-major checksum diverges,
//   - the median scan speedup falls below LSENS_COL_SCAN_MIN, or
//   - the columnar+dictionary footprint exceeds the row-major string
//     baseline (ratio > 1.0): the layout must never cost memory.
//
// Knobs:
//   LSENS_COL_ROWS       rows per benched relation      (default 200000)
//   LSENS_COL_REPS       repetitions per family         (default 5)
//   LSENS_COL_SCAN_MIN   scan speedup floor             (default 0.5; the
//                        lenient default absorbs noisy shared runners —
//                        perf CI pins a higher floor explicitly)
//   LSENS_BENCH_COL_JSON output path            (default BENCH_columnar.json)

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "exec/counted_relation.h"
#include "exec/hash_group_table.h"
#include "storage/database.h"
#include "storage/dictionary.h"
#include "storage/relation.h"
#include "storage/value.h"

namespace lsens {
namespace {

using bench::EnvInt;
using bench::EnvScales;
using bench::Median;

// The pre-columnar layout, reconstructed in-bench: one flat row-major
// vector with arity() stride. Each family's baseline walks rows of this.
struct RowMajorTable {
  size_t arity = 0;
  std::vector<Value> data;

  size_t NumRows() const { return data.size() / arity; }
  std::span<const Value> Row(size_t i) const {
    return {data.data() + i * arity, arity};
  }
};

struct FamilyResult {
  std::string name;
  size_t rows = 0;
  double columnar_ns = 0;  // median wall per repetition
  double rowmajor_ns = 0;
  double speedup = 0;  // rowmajor / columnar
};

// --- Scan: ~50% predicate on column 0, project columns {0, 2} -------------

uint64_t ColumnarScan(const Relation& rel, Value threshold,
                      std::vector<uint32_t>& sel,
                      std::vector<std::vector<Value>>& out) {
  std::span<const Value> pred = rel.Column(0);
  sel.clear();
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] >= threshold) sel.push_back(static_cast<uint32_t>(i));
  }
  uint64_t checksum = kValueHashSeed;
  size_t out_col = 0;
  for (size_t c : {size_t{0}, size_t{2}}) {
    std::span<const Value> col = rel.Column(c);
    std::vector<Value>& dst = out[out_col++];
    dst.resize(sel.size());
    for (size_t i = 0; i < sel.size(); ++i) dst[i] = col[sel[i]];
    for (Value v : dst) checksum = HashValueFold(checksum, v);
  }
  return checksum;
}

uint64_t RowMajorScan(const RowMajorTable& table, Value threshold,
                      std::vector<Value>& out) {
  out.clear();
  for (size_t i = 0; i < table.NumRows(); ++i) {
    std::span<const Value> row = table.Row(i);
    if (row[0] >= threshold) {
      out.push_back(row[0]);
      out.push_back(row[2]);
    }
  }
  // Row-major emits (c0, c2) interleaved; fold per column so the checksum
  // is layout-independent and must equal the columnar one.
  uint64_t checksum = kValueHashSeed;
  for (size_t c = 0; c < 2; ++c) {
    for (size_t i = c; i < out.size(); i += 2) {
      checksum = HashValueFold(checksum, out[i]);
    }
  }
  return checksum;
}

// --- Hash: key columns {0, 1}, XOR of per-row key hashes ------------------

uint64_t ColumnarHash(const Relation& rel, std::vector<uint64_t>& hashes) {
  hashes.resize(rel.NumRows());
  HashValuesBatchSeed(hashes);
  HashValuesBatchFold(rel.Column(0), hashes);
  HashValuesBatchFold(rel.Column(1), hashes);
  uint64_t checksum = 0;
  for (uint64_t h : hashes) checksum ^= h;
  return checksum;
}

uint64_t RowMajorHash(const RowMajorTable& table) {
  uint64_t checksum = 0;
  for (size_t i = 0; i < table.NumRows(); ++i) {
    std::span<const Value> row = table.Row(i);
    uint64_t h = kValueHashSeed;
    h = HashValueFold(h, row[0]);
    h = HashValueFold(h, row[1]);
    checksum ^= h;
  }
  return checksum;
}

// --- Join probe: batched probe-side hashes vs per-row hashing -------------

uint64_t BatchedProbe(const FlatGroupTable& table, const CountedRelation& a,
                      std::span<const int> probe_cols,
                      std::vector<Value>& gather,
                      std::vector<uint64_t>& hashes) {
  HashRowKeysBatch(a, probe_cols, gather, hashes);
  uint64_t matched = 0;
  for (size_t i = 0; i < a.NumRows(); ++i) {
    matched += table.Probe(a.Row(i), probe_cols, hashes[i]).size();
  }
  return matched;
}

uint64_t PerRowProbe(const FlatGroupTable& table, const CountedRelation& a,
                     std::span<const int> probe_cols) {
  uint64_t matched = 0;
  for (size_t i = 0; i < a.NumRows(); ++i) {
    matched += table.Probe(a.Row(i), probe_cols).size();
  }
  return matched;
}

// --- Repair: projected sharded change collection vs project-after --------

uint64_t FoldProjected(
    const std::vector<std::vector<ProjectedRowChange>>& shards) {
  uint64_t checksum = kValueHashSeed;
  for (const auto& shard : shards) {
    for (const ProjectedRowChange& pc : shard) {
      checksum = HashValueFold(checksum, pc.insert ? 1 : 0);
      for (Value v : pc.key) checksum = HashValueFold(checksum, v);
    }
  }
  return checksum;
}

uint64_t ColumnarRepairCollect(const Relation& rel, uint64_t since,
                               std::span<const size_t> key_cols,
                               size_t num_shards) {
  std::vector<std::vector<ProjectedRowChange>> shards(num_shards);
  auto filter = [](const RowChange& ch) { return ch.row[1] >= 0; };
  size_t num_changes = 0;
  if (!rel.CollectProjectedChangesShardedSince(since, key_cols, num_shards,
                                               filter, &shards,
                                               &num_changes)) {
    return 0;
  }
  return FoldProjected(shards);
}

uint64_t RowMajorRepairCollect(const Relation& rel, uint64_t since,
                               std::span<const size_t> key_cols,
                               size_t num_shards) {
  // The pre-columnar shape: collect whole-row changes per shard, then
  // filter and slice the key columns out of each row.
  std::vector<std::vector<RowChange>> raw(num_shards);
  if (!rel.CollectChangesShardedSince(since, key_cols, num_shards, &raw)) {
    return 0;
  }
  std::vector<std::vector<ProjectedRowChange>> shards(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    for (const RowChange& ch : raw[s]) {
      if (ch.row[1] < 0) continue;
      ProjectedRowChange pc;
      pc.insert = ch.insert;
      for (size_t col : key_cols) pc.key.push_back(ch.row[col]);
      shards[s].push_back(std::move(pc));
    }
  }
  return FoldProjected(shards);
}

// --- Footprint: dictionary-encoded column vs per-row std::string ----------

struct RowWithString {
  std::string label;
  Value a = 0;
  Value b = 0;
};

size_t RowMajorStringBytes(const std::vector<RowWithString>& rows) {
  size_t bytes = rows.capacity() * sizeof(RowWithString);
  for (const RowWithString& r : rows) {
    // Heap block behind a non-SSO string (libstdc++ SSO capacity is 15).
    if (r.label.capacity() > 15) bytes += r.label.capacity() + 1;
  }
  return bytes;
}

}  // namespace
}  // namespace lsens

int main() {
  using namespace lsens;

  bench::Banner("BENCH columnar storage",
                "flat key columns vs row-major through scan, hash, join "
                "probe, and delta repair; dictionary footprint gate");

  const long rows = EnvInt("LSENS_COL_ROWS", 200000);
  const long reps = EnvInt("LSENS_COL_REPS", 5);
  const double scan_min = EnvScales("LSENS_COL_SCAN_MIN", {0.5})[0];
  const size_t n = static_cast<size_t>(rows);

  Rng rng(42);
  Relation rel("R", {"A", "B", "C"});
  RowMajorTable table;
  table.arity = 3;
  rel.Reserve(n);
  table.data.reserve(n * 3);
  for (size_t i = 0; i < n; ++i) {
    const Value a = rng.NextInRange(-1000000, 1000000);
    const Value b = rng.NextInRange(-1000000, 1000000);
    const Value c = rng.NextInRange(0, 1000);
    rel.AppendRow({a, b, c});
    table.data.insert(table.data.end(), {a, b, c});
  }

  int failures = 0;
  std::vector<FamilyResult> results;
  auto run_family = [&](const std::string& name, auto columnar,
                        auto rowmajor) {
    std::vector<double> col_ns;
    std::vector<double> row_ns;
    uint64_t col_sum = 0;
    uint64_t row_sum = 0;
    for (long r = 0; r < reps; ++r) {
      WallTimer t;
      col_sum = columnar();
      col_ns.push_back(t.ElapsedSeconds() * 1e9);
      t.Reset();
      row_sum = rowmajor();
      row_ns.push_back(t.ElapsedSeconds() * 1e9);
      if (col_sum != row_sum) {
        std::fprintf(stderr,
                     "FAIL %s: checksum divergence columnar=%" PRIu64
                     " rowmajor=%" PRIu64 "\n",
                     name.c_str(), col_sum, row_sum);
        ++failures;
        break;
      }
    }
    FamilyResult fr;
    fr.name = name;
    fr.rows = n;
    fr.columnar_ns = Median(col_ns);
    fr.rowmajor_ns = Median(row_ns);
    fr.speedup = fr.columnar_ns > 0 ? fr.rowmajor_ns / fr.columnar_ns : 0;
    results.push_back(fr);
    std::printf("%-12s rows=%zu columnar=%.0fns rowmajor=%.0fns "
                "speedup=%.2fx checksum=%" PRIu64 "\n",
                name.c_str(), n, fr.columnar_ns, fr.rowmajor_ns, fr.speedup,
                col_sum);
    return fr.speedup;
  };

  // Scan.
  std::vector<uint32_t> sel;
  std::vector<std::vector<Value>> scan_out(2);
  std::vector<Value> scan_flat;
  const double scan_speedup = run_family(
      "scan", [&] { return ColumnarScan(rel, 0, sel, scan_out); },
      [&] { return RowMajorScan(table, 0, scan_flat); });

  // Hash.
  std::vector<uint64_t> hashes;
  run_family("hash", [&] { return ColumnarHash(rel, hashes); },
             [&] { return RowMajorHash(table); });

  // Join probe: build side = distinct keys in a narrow domain so probe
  // runs hit; probe side = the bench relation's first two columns.
  CountedRelation probe_rel({1, 2});
  probe_rel.Reserve(n);
  {
    std::span<Value> dst = probe_rel.AppendRowsRaw(n, Count::One());
    std::span<const Value> c0 = rel.Column(0);
    std::span<const Value> c2 = rel.Column(2);
    for (size_t i = 0; i < n; ++i) {
      dst[i * 2] = c0[i] % 997;
      dst[i * 2 + 1] = c2[i];
    }
  }
  CountedRelation build_rel({1, 2});
  for (Value k = -996; k < 997; ++k) {
    build_rel.AppendRow({k, k * 2}, Count::One());
  }
  FlatGroupTable group_table;
  const std::vector<int> build_cols = {0};
  const std::vector<int> probe_cols = {0};
  group_table.Build(build_rel, build_cols);
  std::vector<Value> gather;
  run_family(
      "join-probe",
      [&] {
        return BatchedProbe(group_table, probe_rel, probe_cols, gather,
                            hashes);
      },
      [&] { return PerRowProbe(group_table, probe_rel, probe_cols); });

  // Repair: a change-logged relation under a mutation stream, then the
  // delta projection both ways.
  Relation logged("L", {"A", "B", "C"});
  const size_t updates = std::min<size_t>(n, 50000);
  logged.EnableChangeLog(2 * updates + 16);
  const uint64_t since = logged.version();
  for (size_t i = 0; i < updates; ++i) {
    if (logged.NumRows() > 0 && rng.NextBounded(4) == 0) {
      logged.SwapRemoveRow(rng.NextBounded(logged.NumRows()));
    } else {
      logged.AppendRow({rng.NextInRange(-50, 50), rng.NextInRange(-50, 50),
                        rng.NextInRange(0, 100)});
    }
  }
  const std::vector<size_t> key_cols = {0, 2};
  run_family("repair",
             [&] { return ColumnarRepairCollect(logged, since, key_cols, 8); },
             [&] { return RowMajorRepairCollect(logged, since, key_cols, 8); });

  // Footprint: one dictionary-encoded label column plus two int columns,
  // against per-row std::string storage of the same data.
  Database db;
  Relation* dict_rel = db.AddRelation("S", {"label", "a", "b"});
  std::vector<RowWithString> string_rows;
  {
    std::vector<std::vector<Value>> columns(3);
    const size_t distinct = std::max<size_t>(1, n / 16);
    for (size_t i = 0; i < n; ++i) {
      RowWithString r;
      r.label = "label-value-" + std::to_string(i % distinct);
      r.a = static_cast<Value>(i);
      r.b = static_cast<Value>(i % 7);
      columns[0].push_back(db.dict().Intern(r.label));
      columns[1].push_back(r.a);
      columns[2].push_back(r.b);
      string_rows.push_back(std::move(r));
    }
    dict_rel->AppendColumns(columns);
    dict_rel->set_column_dictionary(0, true);
  }
  const size_t columnar_bytes = db.MemoryBytes();
  const size_t rowmajor_bytes = RowMajorStringBytes(string_rows);
  const double ratio =
      rowmajor_bytes > 0
          ? static_cast<double>(columnar_bytes) / rowmajor_bytes
          : 0.0;
  std::printf("footprint    rows=%zu columnar+dict=%zuB rowmajor-string=%zuB "
              "ratio=%.3f\n",
              n, columnar_bytes, rowmajor_bytes, ratio);
  if (ratio > 1.0) {
    std::fprintf(stderr,
                 "FAIL footprint: columnar+dictionary (%zuB) exceeds the "
                 "row-major string baseline (%zuB)\n",
                 columnar_bytes, rowmajor_bytes);
    ++failures;
  }

  if (scan_speedup < scan_min) {
    std::fprintf(stderr,
                 "FAIL scan speedup %.2fx below LSENS_COL_SCAN_MIN=%.2f\n",
                 scan_speedup, scan_min);
    ++failures;
  }

  // BENCH_columnar.json: the per-family speedup table plus the footprint
  // entry, for cross-PR trajectory diffs.
  const char* path = std::getenv("LSENS_BENCH_COL_JSON");
  if (path == nullptr) path = "BENCH_columnar.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }
  std::fprintf(f, "[\n");
  for (const FamilyResult& fr : results) {
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"rows\": %zu, \"columnar_ns\": %.1f, "
                 "\"rowmajor_ns\": %.1f, \"speedup\": %.3f},\n",
                 fr.name.c_str(), fr.rows, fr.columnar_ns, fr.rowmajor_ns,
                 fr.speedup);
  }
  std::fprintf(f,
               "  {\"name\": \"footprint\", \"rows\": %zu, "
               "\"columnar_bytes\": %zu, \"rowmajor_bytes\": %zu, "
               "\"ratio\": %.4f}\n",
               n, columnar_bytes, rowmajor_bytes, ratio);
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu entries)\n", path, results.size() + 1);

  if (failures > 0) {
    std::fprintf(stderr, "%d gate failure(s)\n", failures);
    return 1;
  }
  return 0;
}
