// Table 2: differentially private query answering — TSensDP vs the
// PrivSQL-style baseline on all seven queries (TPC-H q1-q3 at scale 0.01
// plus the four Facebook ego-network queries). For each mechanism we report
// the medians over LSENS_DP_RUNS runs (default 20) of relative error,
// relative bias, and global sensitivity, plus the mean wall time, exactly
// the columns of the paper's Table 2.
//
// Paper reference shape: TSensDP stays under ~8% error everywhere except
// the star query (~19%); PrivSQL collapses on q2 (over-truncation), q3,
// q○ and q⋆ (static sensitivity bounds orders of magnitude too large),
// while staying competitive on q1 and qw.
//
// Environment: LSENS_DP_RUNS=20 LSENS_DP_SCALE=0.01 LSENS_EPSILON=1.0

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "dp/privsql.h"
#include "dp/tsens_dp.h"
#include "workload/queries.h"
#include "workload/social.h"
#include "workload/tpch.h"

namespace {

using namespace lsens;
using bench::Median;

PrivSqlPolicy PolicyFor(const WorkloadQuery& w, const Database& db) {
  PrivSqlPolicy policy;
  policy.private_atom = w.private_atom;
  AttrId ck = db.attrs().Lookup("CK");
  AttrId ok = db.attrs().Lookup("OK");
  AttrId sk = db.attrs().Lookup("SK");
  AttrId pk = db.attrs().Lookup("PK");
  if (w.name == "q1") {
    policy.rules.push_back({/*Orders*/ 3, {ck}, 512});
    policy.rules.push_back({/*Lineitem*/ 4, {ok}, 16});
  } else if (w.name == "q2") {
    policy.rules.push_back({/*Partsupp*/ 0, {sk}, 256});
    policy.rules.push_back({/*Lineitem*/ 3, MakeAttributeSet({sk, pk}), 64});
  } else if (w.name == "q3") {
    policy.rules.push_back({/*Orders*/ 6, {ck}, 512});
    policy.rules.push_back({/*Lineitem*/ 7, {ok}, 16});
  }
  // Facebook queries: single private table, no FK cascade -> no truncation
  // (the paper: "no table truncation and thus 0 bias in PrivSQL").
  return policy;
}

struct Row {
  double err, bias, gs, seconds;
};

Row Summarize(const std::vector<DpRunResult>& runs) {
  std::vector<double> err, bias, gs;
  double seconds = 0.0;
  for (const auto& r : runs) {
    err.push_back(r.true_answer > 0 ? r.error() / r.true_answer : 0.0);
    bias.push_back(r.true_answer > 0 ? r.bias() / r.true_answer : 0.0);
    gs.push_back(r.global_sensitivity);
    seconds += r.seconds;
  }
  return {Median(err), Median(bias), Median(gs),
          runs.empty() ? 0.0 : seconds / static_cast<double>(runs.size())};
}

}  // namespace

int main() {
  bench::Banner("Table 2 — DP query answering: TSensDP vs PrivSQL",
                "medians over repeated runs; error/bias relative to |Q(D)|");
  const long runs = bench::EnvInt("LSENS_DP_RUNS", 20);
  const double scale = bench::EnvScales("LSENS_DP_SCALE", {0.01})[0];
  const double epsilon = bench::EnvScales("LSENS_EPSILON", {1.0})[0];

  TpchOptions topts;
  topts.scale = scale;
  Database tpch = MakeTpchDatabase(topts);
  Database social = MakeSocialDatabase(SocialOptions{});

  std::printf(
      "%-7s %-10s %-11s | %-8s %-8s %-12s %-8s | %-8s %-8s %-12s %-8s\n",
      "query", "|Q(D)|", "ell", "TS.err", "TS.bias", "TS.GS", "TS.time",
      "PS.err", "PS.bias", "PS.GS", "PS.time");
  for (auto& w : MakeAllWorkloadQueries(tpch, social)) {
    Database& db = (w.name.size() == 2) ? tpch : social;  // "q1".."q3" tpch
    std::vector<DpRunResult> tsens_runs;
    std::vector<DpRunResult> priv_runs;
    double true_answer = 0.0;
    for (long r = 0; r < runs; ++r) {
      TSensDpOptions dopts;
      dopts.epsilon = epsilon;
      dopts.ell = w.ell;
      dopts.seed = static_cast<uint64_t>(r) + 1;
      dopts.ghd = w.ghd_ptr();
      dopts.skip_atoms = w.skip_atoms;
      auto t = RunTSensDp(w.query, db, w.private_atom, dopts);
      if (!t.ok()) {
        std::printf("%-7s TSensDP ERROR: %s\n", w.name.c_str(),
                    t.status().ToString().c_str());
        break;
      }
      true_answer = t->true_answer;
      tsens_runs.push_back(*t);

      PrivSqlOptions popts;
      popts.epsilon = epsilon;
      popts.seed = static_cast<uint64_t>(r) + 1;
      popts.ghd = w.ghd_ptr();
      auto p = RunPrivSql(w.query, db, PolicyFor(w, db), popts);
      if (!p.ok()) {
        std::printf("%-7s PrivSQL ERROR: %s\n", w.name.c_str(),
                    p.status().ToString().c_str());
        break;
      }
      priv_runs.push_back(*p);
    }
    if (tsens_runs.empty() || priv_runs.empty()) continue;
    Row ts = Summarize(tsens_runs);
    Row ps = Summarize(priv_runs);
    std::printf(
        "%-7s %-10.0f %-11llu | %-8.2f%% %-7.2f%% %-12.0f %-8.3f | "
        "%-8.2f%% %-7.2f%% %-12.0f %-8.3f\n",
        w.name.c_str(), true_answer,
        static_cast<unsigned long long>(w.ell), 100 * ts.err, 100 * ts.bias,
        ts.gs, ts.seconds, 100 * ps.err, 100 * ps.bias, ps.gs, ps.seconds);
  }
  return 0;
}
