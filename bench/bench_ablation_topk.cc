// §5.4 ablation: the top-k frequency approximation in the topjoins and
// botjoins. The paper proposes keeping only the k most frequent values
// (everything else bounded by the k-th frequency) to trade sensitivity
// tightness for runtime. This bench sweeps k on the two path queries (q1
// on TPC-H and qw on the ego-network), reporting the bound inflation and
// the runtime change.
//
// Environment: LSENS_TOPK_SCALE=0.01

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "sensitivity/tsens.h"
#include "workload/queries.h"
#include "workload/social.h"
#include "workload/tpch.h"

namespace {

using namespace lsens;

void Sweep(const WorkloadQuery& w, const Database& db) {
  TSensComputeOptions exact_opts;
  exact_opts.ghd = w.ghd_ptr();
  exact_opts.skip_atoms = w.skip_atoms;
  WallTimer t0;
  auto exact = ComputeLocalSensitivity(w.query, db, exact_opts);
  double exact_s = t0.ElapsedSeconds();
  if (!exact.ok()) {
    std::printf("%s exact ERROR %s\n", w.name.c_str(),
                exact.status().ToString().c_str());
    return;
  }
  std::printf("%-6s exact: LS=%-12s time=%.4fs\n", w.name.c_str(),
              exact->local_sensitivity.ToString().c_str(), exact_s);
  for (size_t k : {1u, 4u, 16u, 64u, 256u}) {
    TSensComputeOptions opts = exact_opts;
    opts.top_k = k;
    WallTimer t;
    auto approx = ComputeLocalSensitivity(w.query, db, opts);
    double secs = t.ElapsedSeconds();
    if (!approx.ok()) {
      std::printf("  k=%-5zu ERROR %s\n", k,
                  approx.status().ToString().c_str());
      continue;
    }
    double inflation =
        exact->local_sensitivity.IsZero()
            ? 0.0
            : approx->local_sensitivity.ToDouble() /
                  exact->local_sensitivity.ToDouble();
    std::printf("  k=%-5zu bound=%-12s inflation=%-8.2fx time=%.4fs\n", k,
                approx->local_sensitivity.ToString().c_str(), inflation,
                secs);
  }
}

}  // namespace

int main() {
  bench::Banner("§5.4 ablation — top-k approximation of ⊤/⊥ tables",
                "upper-bound inflation and runtime vs k (exact = no cap)");
  double scale = bench::EnvScales("LSENS_TOPK_SCALE", {0.01})[0];
  TpchOptions topts;
  topts.scale = scale;
  Database tpch = MakeTpchDatabase(topts);
  Database social = MakeSocialDatabase(SocialOptions{});
  Sweep(MakeTpchQ1(tpch), tpch);
  Sweep(MakeFacebookPath(social), social);
  return 0;
}
