// Figure 7: runtime vs scale for q1, q2, q3 — TSens, Elastic, and plain
// query (count) evaluation.
//
// Paper reference points: for q1/q2 TSens tracks query evaluation closely
// (~1.8x / ~0.9x past scale 0.001); for q3 TSens costs ~4.2x evaluation
// while returning a ~60,000x tighter bound than Elastic; Elastic itself is
// near-instant at all scales (static analysis over precomputed max
// frequencies — its preprocessing is charged to the database, as in the
// paper).
//
// Environment: LSENS_SCALES=..., LSENS_Q3_MAX_SCALE=0.01, LSENS_REPS=3

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "exec/eval.h"
#include "sensitivity/elastic.h"
#include "sensitivity/tsens.h"
#include "workload/queries.h"
#include "workload/tpch.h"

namespace {

using namespace lsens;

double TimeBest(int reps, const std::function<void()>& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

void RunOne(const WorkloadQuery& w, const Database& db, double scale,
            int reps) {
  TSensComputeOptions opts;
  opts.ghd = w.ghd_ptr();
  opts.skip_atoms = w.skip_atoms;
  double tsens_s = TimeBest(reps, [&] {
    auto r = ComputeLocalSensitivity(w.query, db, opts);
    LSENS_CHECK(r.ok());
  });
  double eval_s = TimeBest(reps, [&] {
    auto c = CountQuery(w.query, db, {}, w.ghd_ptr());
    LSENS_CHECK(c.ok());
  });
  // Elastic preprocessing (max-frequency scans) happens once per database
  // in the paper's setup; measure analysis time with a warm provider.
  DataMaxFreqProvider mf(w.query, db);
  std::vector<int> order;
  if (w.ghd_ptr() != nullptr) {
    order = PlanOrderFromGhd(*w.ghd_ptr());
  } else {
    order = PlanOrderFromForest(*BuildJoinForestGYO(w.query));
  }
  (void)ElasticSensitivity(w.query, order, mf,
                           ElasticMode::kFlexFaithful);  // warm the caches
  double elastic_s = TimeBest(reps, [&] {
    auto e = ElasticSensitivity(w.query, order, mf,
                                ElasticMode::kFlexFaithful);
    LSENS_CHECK(e.ok());
  });
  std::printf(
      "%-4s scale=%-8g TSens=%-10.4fs eval=%-10.4fs Elastic=%-10.6fs "
      "TSens/eval=%.2fx\n",
      w.name.c_str(), scale, tsens_s, eval_s, elastic_s,
      eval_s > 0 ? tsens_s / eval_s : 0.0);
}

}  // namespace

int main() {
  using bench::EnvScales;
  bench::Banner("Figure 7 — runtime vs scale (TPC-H q1, q2, q3)",
                "series: TSens, query evaluation, Elastic");
  std::vector<double> scales =
      EnvScales("LSENS_SCALES", {0.0001, 0.001, 0.01});
  double q3_cap = EnvScales("LSENS_Q3_MAX_SCALE", {0.01})[0];
  int reps = static_cast<int>(bench::EnvInt("LSENS_REPS", 3));

  for (double scale : scales) {
    TpchOptions topts;
    topts.scale = scale;
    Database db = MakeTpchDatabase(topts);
    RunOne(MakeTpchQ1(db), db, scale, reps);
    RunOne(MakeTpchQ2(db), db, scale, reps);
    if (scale <= q3_cap) RunOne(MakeTpchQ3(db), db, scale, reps);
  }
  return 0;
}
