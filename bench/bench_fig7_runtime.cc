// Figure 7: runtime vs scale for q1, q2, q3 — TSens, Elastic, and plain
// query (count) evaluation — plus the threads axis of the parallel engine:
// TSens is re-timed at every LSENS_THREADS setting and the speedup over
// the serial run is reported and written to BENCH_parallel.json
// ({name, rows, threads, ns_per_op}; path override LSENS_BENCH_PARALLEL_JSON)
// so the parallel-speedup trajectory is tracked across PRs.
//
// Paper reference points: for q1/q2 TSens tracks query evaluation closely
// (~1.8x / ~0.9x past scale 0.001); for q3 TSens costs ~4.2x evaluation
// while returning a ~60,000x tighter bound than Elastic; Elastic itself is
// near-instant at all scales (static analysis over precomputed max
// frequencies — its preprocessing is charged to the database, as in the
// paper).
//
// Environment: LSENS_SCALES=..., LSENS_Q3_MAX_SCALE=0.01, LSENS_REPS=3,
// LSENS_THREADS=0,2,8

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "query/eval.h"
#include "sensitivity/elastic.h"
#include "sensitivity/tsens.h"
#include "workload/queries.h"
#include "workload/tpch.h"

namespace {

using namespace lsens;

double TimeBest(int reps, const std::function<void()>& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

void RunOne(const WorkloadQuery& w, const Database& db, double scale,
            int reps, const std::vector<double>& threads_axis,
            std::vector<bench::ParallelEntry>* trajectory) {
  double eval_s = TimeBest(reps, [&] {
    auto c = CountQuery(w.query, db, {}, w.ghd_ptr());
    LSENS_CHECK(c.ok());
  });
  // Elastic preprocessing (max-frequency scans) happens once per database
  // in the paper's setup; measure analysis time with a warm provider.
  DataMaxFreqProvider mf(w.query, db);
  std::vector<int> order;
  if (w.ghd_ptr() != nullptr) {
    order = PlanOrderFromGhd(*w.ghd_ptr());
  } else {
    order = PlanOrderFromForest(*BuildJoinForestGYO(w.query));
  }
  (void)ElasticSensitivity(w.query, order, mf,
                           ElasticMode::kFlexFaithful);  // warm the caches
  double elastic_s = TimeBest(reps, [&] {
    auto e = ElasticSensitivity(w.query, order, mf,
                                ElasticMode::kFlexFaithful);
    LSENS_CHECK(e.ok());
  });

  // TSens along the threads axis; the threads = 0 entry (wherever it sits
  // in LSENS_THREADS) is the serial baseline every other setting's speedup
  // is reported against — without one, speedups print as n/a.
  double serial_s = -1.0;
  for (double threads_d : threads_axis) {
    if (static_cast<int>(threads_d) != 0) continue;
    TSensComputeOptions opts;
    opts.ghd = w.ghd_ptr();
    opts.skip_atoms = w.skip_atoms;
    serial_s = TimeBest(reps, [&] {
      auto r = ComputeLocalSensitivity(w.query, db, opts);
      LSENS_CHECK(r.ok());
    });
    break;
  }
  for (double threads_d : threads_axis) {
    const int threads = static_cast<int>(threads_d);
    TSensComputeOptions opts;
    opts.ghd = w.ghd_ptr();
    opts.skip_atoms = w.skip_atoms;
    opts.join.threads = threads;
    double tsens_s =
        (threads == 0 && serial_s >= 0) ? serial_s : TimeBest(reps, [&] {
          auto r = ComputeLocalSensitivity(w.query, db, opts);
          LSENS_CHECK(r.ok());
        });
    trajectory->push_back(bench::ParallelEntry{
        w.name + "/scale=" + std::to_string(scale),
        static_cast<double>(db.TotalRows()), threads, tsens_s * 1e9});
    std::printf(
        "%-4s scale=%-8g threads=%-2d TSens=%-10.4fs eval=%-10.4fs "
        "Elastic=%-10.6fs TSens/eval=%-5.2fx ",
        w.name.c_str(), scale, threads, tsens_s, eval_s, elastic_s,
        eval_s > 0 ? tsens_s / eval_s : 0.0);
    if (serial_s > 0 && tsens_s > 0) {
      std::printf("speedup=%.2fx\n", serial_s / tsens_s);
    } else {
      std::printf("speedup=n/a\n");
    }
  }
}

}  // namespace

int main() {
  using bench::EnvScales;
  bench::Banner("Figure 7 — runtime vs scale (TPC-H q1, q2, q3)",
                "series: TSens (per threads setting), query evaluation, "
                "Elastic");
  std::vector<double> scales =
      EnvScales("LSENS_SCALES", {0.0001, 0.001, 0.01});
  double q3_cap = EnvScales("LSENS_Q3_MAX_SCALE", {0.01})[0];
  int reps = static_cast<int>(bench::EnvInt("LSENS_REPS", 3));
  std::vector<double> threads_axis = EnvScales("LSENS_THREADS", {0, 2, 8});
  // Spin the pool up before any timed region so worker creation is never
  // charged to the first parallel measurement.
  GlobalThreadPool();

  std::vector<bench::ParallelEntry> trajectory;
  for (double scale : scales) {
    TpchOptions topts;
    topts.scale = scale;
    Database db = MakeTpchDatabase(topts);
    RunOne(MakeTpchQ1(db), db, scale, reps, threads_axis, &trajectory);
    RunOne(MakeTpchQ2(db), db, scale, reps, threads_axis, &trajectory);
    if (scale <= q3_cap) {
      RunOne(MakeTpchQ3(db), db, scale, reps, threads_axis, &trajectory);
    }
  }
  if (!bench::WriteParallelJson("BENCH_parallel.json", trajectory)) return 1;

  // Headline number for the acceptance gate: best speedup on the largest
  // workload (most rows) between the serial entry and each threads > 0
  // entry of the same workload.
  double max_rows = 0;
  for (const auto& e : trajectory) max_rows = std::max(max_rows, e.rows);
  for (const auto& base : trajectory) {
    if (base.rows != max_rows || base.threads != 0) continue;
    for (const auto& e : trajectory) {
      if (e.rows != max_rows || e.name != base.name || e.threads == 0) {
        continue;
      }
      std::printf("largest workload %s: %.2fx speedup at %ld threads\n",
                  e.name.c_str(), base.ns_per_op / e.ns_per_op, e.threads);
    }
  }
  return 0;
}
