// Cross-query plan cache bench: replays a randomized update stream over a
// K-query overlapping workload (chain queries sharing a relation prefix)
// twice — once through a single shared SensitivityCache, once through K
// independent caches on an identically rebuilt database replaying the
// same stream — and reports how much repair work canonical-subtree
// sharing removed. Writes the BENCH_plan_cache.json trajectory file
// ({"k", "shared_nodes", "node_repairs", "per_entry_repairs_baseline",
// "ns_per_delta", "baseline_ns_per_delta"}).
//
// Exits non-zero (failing the CTest smoke) when sharing did not engage:
// fewer than LSENS_PLAN_SHARE_MIN shared-node attaches, or the shared
// cache's node repairs not strictly below the independent caches' total —
// the sublinear-in-K contract the plan cache exists to provide. Results
// are cross-checked against the independent caches along the way.
//
// Knobs:
//   LSENS_PLAN_K          overlapping chain queries      (default 6, >= 2)
//   LSENS_PLAN_ROWS       rows per relation              (default 20000)
//   LSENS_PLAN_DOMAIN     join-key domain                (default 500)
//   LSENS_PLAN_UPDATES    update-stream length           (default 60)
//   LSENS_PLAN_THREADS    repair thread count            (default 0)
//   LSENS_PLAN_SHARE_MIN  required shared-node attaches  (default 1)
//   LSENS_BENCH_PLAN_CACHE_JSON  output path (default
//                                BENCH_plan_cache.json)

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "sensitivity/incremental.h"
#include "sensitivity/tsens.h"

namespace lsens {
namespace {

// Chain query k joins relations R0..R(k+1) on consecutive shared
// variables; every query shares R0's projection and the top fold chain
// with all longer queries, so the store deduplicates the prefix.
std::vector<ConjunctiveQuery> MakeChainQueries(Database& db, long k) {
  std::vector<ConjunctiveQuery> queries;
  for (long q = 0; q < k; ++q) {
    ConjunctiveQuery query;
    for (long a = 0; a < q + 2; ++a) {
      query.AddAtom(db, "R" + std::to_string(a),
                    {"x" + std::to_string(a), "x" + std::to_string(a + 1)});
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

Database MakeChainDb(Rng& rng, long k, long rows, long domain) {
  Database db;
  for (long a = 0; a < k + 1; ++a) {
    Relation* rel = db.AddRelation("R" + std::to_string(a), {"c0", "c1"});
    rel->Reserve(static_cast<size_t>(rows));
    for (long r = 0; r < rows; ++r) {
      rel->AppendRow(
          {static_cast<Value>(rng.NextBounded(static_cast<uint64_t>(domain))),
           static_cast<Value>(
               rng.NextBounded(static_cast<uint64_t>(domain)))});
    }
  }
  return db;
}

// One single-row mutation against a random relation; driven by its own
// Rng so the shared and baseline replays see the identical stream.
void MutateOne(Rng& rng, Database& db, long num_relations, long domain) {
  Relation* rel = db.Find(
      "R" + std::to_string(rng.NextBounded(
                static_cast<uint64_t>(num_relations))));
  const size_t n = rel->NumRows();
  if (n > 1 && rng.NextBounded(2) == 0) {
    rel->SwapRemoveRow(rng.NextBounded(n));
  } else {
    rel->AppendRow(
        {static_cast<Value>(rng.NextBounded(static_cast<uint64_t>(domain))),
         static_cast<Value>(rng.NextBounded(static_cast<uint64_t>(domain)))});
  }
}

int Run() {
  const long k = std::max(2L, bench::EnvInt("LSENS_PLAN_K", 6));
  const long rows = bench::EnvInt("LSENS_PLAN_ROWS", 20000);
  const long domain = bench::EnvInt("LSENS_PLAN_DOMAIN", 500);
  const long updates = bench::EnvInt("LSENS_PLAN_UPDATES", 60);
  const long threads = bench::EnvInt("LSENS_PLAN_THREADS", 0);
  const long share_min = bench::EnvInt("LSENS_PLAN_SHARE_MIN", 1);

  bench::Banner("Cross-query plan cache",
                "shared store vs per-query caches on an overlapping "
                "chain workload");

  const uint64_t seed = 20200614;
  Rng build_rng(seed);
  Database shared_db = MakeChainDb(build_rng, k, rows, domain);
  Database baseline_db = shared_db.Clone();
  std::vector<ConjunctiveQuery> queries = MakeChainQueries(shared_db, k);

  SensitivityCacheConfig config;
  config.max_delta_fraction = 1.0;
  SensitivityCache shared(config);
  std::vector<std::unique_ptr<SensitivityCache>> independent;
  for (long q = 0; q < k; ++q) {
    independent.push_back(std::make_unique<SensitivityCache>(config));
  }
  TSensComputeOptions options;
  options.join.threads = static_cast<int>(threads);

  // Prime both sides (misses + state capture), then replay the identical
  // stream through each, timing the K-query refresh after every delta.
  for (long q = 0; q < k; ++q) {
    LSENS_CHECK(shared.Compute(queries[q], shared_db, options).ok());
    LSENS_CHECK(
        independent[q]->Compute(queries[q], baseline_db, options).ok());
  }
  std::vector<double> shared_ns;
  std::vector<double> baseline_ns;
  Rng shared_stream(seed * 31 + 1);
  Rng baseline_stream(seed * 31 + 1);
  for (long u = 0; u < updates; ++u) {
    MutateOne(shared_stream, shared_db, k + 1, domain);
    MutateOne(baseline_stream, baseline_db, k + 1, domain);
    WallTimer shared_timer;
    std::vector<uint64_t> shared_ls(static_cast<size_t>(k));
    for (long q = 0; q < k; ++q) {
      auto r = shared.Compute(queries[q], shared_db, options);
      LSENS_CHECK(r.ok());
      shared_ls[static_cast<size_t>(q)] =
          r->local_sensitivity.ToUint64Saturated();
    }
    shared_ns.push_back(shared_timer.ElapsedSeconds() * 1e9);
    WallTimer baseline_timer;
    for (long q = 0; q < k; ++q) {
      auto r = independent[q]->Compute(queries[q], baseline_db, options);
      LSENS_CHECK(r.ok());
      // Same stream, same data: the shared cache must agree exactly.
      LSENS_CHECK(r->local_sensitivity.ToUint64Saturated() ==
                  shared_ls[static_cast<size_t>(q)]);
    }
    baseline_ns.push_back(baseline_timer.ElapsedSeconds() * 1e9);
  }

  const SensitivityCacheStats& stats = shared.stats();
  uint64_t baseline_node_repairs = 0;
  for (const auto& cache : independent) {
    baseline_node_repairs += cache->stats().node_repairs;
  }
  const double ns_per_delta = bench::Median(shared_ns);
  const double baseline_ns_per_delta = bench::Median(baseline_ns);
  std::printf(
      "k=%ld rows=%ld updates=%ld threads=%ld\n"
      "shared:   %10.0f ns/delta  node_repairs %" PRIu64
      "  shared_nodes %" PRIu64 "  attaches %" PRIu64
      "  repairs %" PRIu64 "  assemblies %" PRIu64 "\n"
      "baseline: %10.0f ns/delta  node_repairs %" PRIu64
      " (K independent caches)\n",
      k, rows, updates, threads, ns_per_delta, stats.node_repairs,
      stats.shared_nodes, stats.shared_attaches, stats.repairs,
      stats.shared_assemblies, baseline_ns_per_delta, baseline_node_repairs);

  const char* path = std::getenv("LSENS_BENCH_PLAN_CACHE_JSON");
  if (path == nullptr) path = "BENCH_plan_cache.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f,
                 "{\"k\": %ld, \"shared_nodes\": %" PRIu64
                 ", \"node_repairs\": %" PRIu64
                 ", \"per_entry_repairs_baseline\": %" PRIu64
                 ", \"ns_per_delta\": %.1f, "
                 "\"baseline_ns_per_delta\": %.1f}\n",
                 k, stats.shared_nodes, stats.node_repairs,
                 baseline_node_repairs, ns_per_delta, baseline_ns_per_delta);
    std::fclose(f);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }

  // The gate: sharing must have engaged, and the shared store's total
  // repair work must undercut K per-entry passes over the same stream.
  if (stats.shared_attaches < static_cast<uint64_t>(share_min)) {
    std::fprintf(stderr,
                 "FAIL: %" PRIu64
                 " shared-node attaches < LSENS_PLAN_SHARE_MIN=%ld\n",
                 stats.shared_attaches, share_min);
    return 1;
  }
  if (stats.node_repairs >= baseline_node_repairs) {
    std::fprintf(stderr,
                 "FAIL: shared node_repairs %" PRIu64
                 " not below per-entry baseline %" PRIu64 "\n",
                 stats.node_repairs, baseline_node_repairs);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace lsens

int main() { return lsens::Run(); }
