// Operator micro-benchmarks (google-benchmark): the counted-relation
// primitives every TSens pass is built from — r⋈ under each join kernel
// (including the pre-ExecContext legacy kernels kept here as the
// comparison baseline), γ group-by-sum, and the Yannakakis-style count
// evaluation on TPC-H q1.
//
// Besides the console table, the run writes a machine-readable trajectory
// file (default BENCH_join.json, override with LSENS_BENCH_JSON):
//   [{"name": "BM_HashJoin/10000", "rows": 10000, "ns_per_op": 2.1e6}, ...]
// so successive PRs can diff per-kernel perf. Legacy-vs-current speedups
// are printed at the end of the run.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/counted_relation.h"
#include "exec/exec_context.h"
#include "exec/join.h"
#include "query/eval.h"
#include "workload/queries.h"
#include "workload/tpch.h"

namespace lsens {
namespace {

CountedRelation MakeRandomCounted(Rng& rng, size_t rows, AttributeSet attrs,
                                  uint64_t domain) {
  CountedRelation rel(std::move(attrs));
  std::vector<Value> row(rel.arity());
  for (size_t i = 0; i < rows; ++i) {
    for (auto& v : row) v = static_cast<Value>(rng.NextBounded(domain));
    rel.AppendRow(row, Count::One());
  }
  rel.Normalize();
  return rel;
}

// ---------------------------------------------------------------------------
// Legacy kernels: the seed implementation (std::unordered_multimap build,
// per-emission scratch allocation, comparison-sort normalize), preserved
// verbatim in spirit so BM_Legacy* measures what the refactor replaced.
// ---------------------------------------------------------------------------

uint64_t LegacyHashKey(std::span<const Value> row,
                       const std::vector<int>& cols) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int c : cols) {
    h = Mix64(h ^ static_cast<uint64_t>(row[static_cast<size_t>(c)]));
  }
  return h;
}

struct LegacyRows {
  size_t arity = 0;
  std::vector<Value> data;
  std::vector<Count> counts;
  std::span<const Value> Row(size_t i) const {
    return {data.data() + i * arity, arity};
  }
};

int LegacyCompareRows(std::span<const Value> a, std::span<const Value> b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  return 0;
}

// The seed's Normalize: permutation sort with indirect full-row
// comparisons, merge, then a zero-count filter pass.
void LegacyNormalize(LegacyRows& r) {
  const size_t n = r.counts.size();
  const size_t k = r.arity;
  if (n == 0) return;
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return LegacyCompareRows(r.Row(a), r.Row(b)) < 0;
  });
  std::vector<Value> new_data;
  new_data.reserve(r.data.size());
  std::vector<Count> new_counts;
  new_counts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::span<const Value> row = r.Row(perm[i]);
    if (!new_counts.empty() &&
        LegacyCompareRows({new_data.data() + (new_counts.size() - 1) * k, k},
                          row) == 0) {
      new_counts.back() += r.counts[perm[i]];
    } else {
      new_data.insert(new_data.end(), row.begin(), row.end());
      new_counts.push_back(r.counts[perm[i]]);
    }
  }
  std::vector<Value> final_data;
  final_data.reserve(new_data.size());
  std::vector<Count> final_counts;
  final_counts.reserve(new_counts.size());
  for (size_t i = 0; i < new_counts.size(); ++i) {
    if (new_counts[i].IsZero()) continue;
    final_data.insert(final_data.end(), new_data.begin() + i * k,
                      new_data.begin() + (i + 1) * k);
    final_counts.push_back(new_counts[i]);
  }
  r.data = std::move(final_data);
  r.counts = std::move(final_counts);
}

// The seed's two-column-relation natural join over `key` = the single
// shared attribute of the bench shapes ({1,2} ⋈ {2,3}).
LegacyRows LegacyHashJoin(const CountedRelation& a, const CountedRelation& b) {
  const std::vector<int> a_key{1};
  const std::vector<int> b_key{0};
  const bool build_a = a.NumRows() < b.NumRows();
  const CountedRelation& build = build_a ? a : b;
  const CountedRelation& probe = build_a ? b : a;
  const std::vector<int>& build_cols = build_a ? a_key : b_key;
  const std::vector<int>& probe_cols = build_a ? b_key : a_key;

  std::unordered_multimap<uint64_t, uint32_t> table;
  table.reserve(build.NumRows());
  for (size_t i = 0; i < build.NumRows(); ++i) {
    table.emplace(LegacyHashKey(build.Row(i), build_cols),
                  static_cast<uint32_t>(i));
  }

  LegacyRows out;
  out.arity = 3;
  std::vector<Value> scratch;
  for (size_t j = 0; j < probe.NumRows(); ++j) {
    std::span<const Value> pr = probe.Row(j);
    uint64_t h = LegacyHashKey(pr, probe_cols);
    auto [lo, hi] = table.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      std::span<const Value> br = build.Row(it->second);
      if (br[static_cast<size_t>(build_cols[0])] !=
          pr[static_cast<size_t>(probe_cols[0])]) {
        continue;
      }
      std::span<const Value> ra = build_a ? br : pr;
      std::span<const Value> rb = build_a ? pr : br;
      scratch.resize(3);
      scratch[0] = ra[0];
      scratch[1] = ra[1];
      scratch[2] = rb[1];
      out.data.insert(out.data.end(), scratch.begin(), scratch.end());
      out.counts.push_back(build.CountAt(it->second) * probe.CountAt(j));
    }
  }
  LegacyNormalize(out);
  return out;
}

LegacyRows LegacySortMergeJoin(const CountedRelation& a,
                               const CountedRelation& b) {
  auto sorted_perm = [](const CountedRelation& r, int col) {
    std::vector<uint32_t> perm(r.NumRows());
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(), [&](uint32_t x, uint32_t y) {
      return r.Row(x)[static_cast<size_t>(col)] <
             r.Row(y)[static_cast<size_t>(col)];
    });
    return perm;
  };
  std::vector<uint32_t> pa = sorted_perm(a, 1);
  std::vector<uint32_t> pb = sorted_perm(b, 0);

  LegacyRows out;
  out.arity = 3;
  std::vector<Value> scratch;
  size_t i = 0;
  size_t j = 0;
  while (i < pa.size() && j < pb.size()) {
    Value va = a.Row(pa[i])[1];
    Value vb = b.Row(pb[j])[0];
    if (va < vb) {
      ++i;
    } else if (va > vb) {
      ++j;
    } else {
      size_t i_end = i + 1;
      while (i_end < pa.size() && a.Row(pa[i_end])[1] == vb) ++i_end;
      size_t j_end = j + 1;
      while (j_end < pb.size() && b.Row(pb[j_end])[0] == va) ++j_end;
      for (size_t x = i; x < i_end; ++x) {
        for (size_t y = j; y < j_end; ++y) {
          scratch.resize(3);
          scratch[0] = a.Row(pa[x])[0];
          scratch[1] = a.Row(pa[x])[1];
          scratch[2] = b.Row(pb[y])[1];
          out.data.insert(out.data.end(), scratch.begin(), scratch.end());
          out.counts.push_back(a.CountAt(pa[x]) * b.CountAt(pb[y]));
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  LegacyNormalize(out);
  return out;
}

// ---------------------------------------------------------------------------
// Benchmarks
// ---------------------------------------------------------------------------

void BM_NaturalJoin(benchmark::State& state, JoinAlgorithm algo) {
  Rng rng(1);
  size_t rows = static_cast<size_t>(state.range(0));
  CountedRelation a = MakeRandomCounted(rng, rows, {1, 2}, rows / 4 + 1);
  CountedRelation b = MakeRandomCounted(rng, rows, {2, 3}, rows / 4 + 1);
  ExecContext ctx;
  JoinOptions opts{algo, &ctx};
  for (auto _ : state) {
    CountedRelation j = NaturalJoin(a, b, opts);
    benchmark::DoNotOptimize(j.NumRows());
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * rows));
}

// The threads axis of the partitioned-probe hash join: range(0) = rows,
// range(1) = JoinOptions::threads (0 = the serial kernel). Entries land in
// BENCH_parallel.json via the "threads" counter.
void BM_HashJoinThreads(benchmark::State& state) {
  Rng rng(1);
  size_t rows = static_cast<size_t>(state.range(0));
  int threads = static_cast<int>(state.range(1));
  CountedRelation a = MakeRandomCounted(rng, rows, {1, 2}, rows / 4 + 1);
  CountedRelation b = MakeRandomCounted(rng, rows, {2, 3}, rows / 4 + 1);
  ExecContext ctx;
  JoinOptions opts{JoinAlgorithm::kHash, &ctx, threads};
  for (auto _ : state) {
    CountedRelation j = NaturalJoin(a, b, opts);
    benchmark::DoNotOptimize(j.NumRows());
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["threads"] = static_cast<double>(threads);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * rows));
}
BENCHMARK(BM_HashJoinThreads)
    ->ArgsProduct({{10000, 100000}, {0, 2, 4, 8}});

void BM_HashJoin(benchmark::State& state) {
  BM_NaturalJoin(state, JoinAlgorithm::kHash);
}
void BM_SortMergeJoin(benchmark::State& state) {
  BM_NaturalJoin(state, JoinAlgorithm::kSortMerge);
}
void BM_AutoJoin(benchmark::State& state) {
  BM_NaturalJoin(state, JoinAlgorithm::kAuto);
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_SortMergeJoin)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_AutoJoin)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LegacyJoin(benchmark::State& state, bool hash) {
  Rng rng(1);
  size_t rows = static_cast<size_t>(state.range(0));
  CountedRelation a = MakeRandomCounted(rng, rows, {1, 2}, rows / 4 + 1);
  CountedRelation b = MakeRandomCounted(rng, rows, {2, 3}, rows / 4 + 1);
  for (auto _ : state) {
    LegacyRows j = hash ? LegacyHashJoin(a, b) : LegacySortMergeJoin(a, b);
    benchmark::DoNotOptimize(j.counts.size());
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * rows));
}

void BM_LegacyHashJoin(benchmark::State& state) { BM_LegacyJoin(state, true); }
void BM_LegacySortMergeJoin(benchmark::State& state) {
  BM_LegacyJoin(state, false);
}
BENCHMARK(BM_LegacyHashJoin)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_LegacySortMergeJoin)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_GroupBySum(benchmark::State& state) {
  Rng rng(2);
  size_t rows = static_cast<size_t>(state.range(0));
  CountedRelation r = MakeRandomCounted(rng, rows, {1, 2}, rows / 8 + 1);
  ExecContext ctx;
  for (auto _ : state) {
    CountedRelation g = GroupBySum(r, {1}, &ctx);
    benchmark::DoNotOptimize(g.NumRows());
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_GroupBySum)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TopKTruncation(benchmark::State& state) {
  Rng rng(3);
  size_t rows = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    CountedRelation r = MakeRandomCounted(rng, rows, {1}, rows * 2);
    state.ResumeTiming();
    r.TruncateTopK(64);
    benchmark::DoNotOptimize(r.NumRows());
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_TopKTruncation)->Arg(10000)->Arg(100000);

void BM_CountQ1(benchmark::State& state) {
  TpchOptions topts;
  topts.scale = static_cast<double>(state.range(0)) * 1e-4;
  Database db = MakeTpchDatabase(topts);
  WorkloadQuery q1 = MakeTpchQ1(db);
  for (auto _ : state) {
    auto c = CountQuery(q1.query, db);
    benchmark::DoNotOptimize(c.ok());
  }
  state.counters["rows"] = static_cast<double>(db.TotalRows());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(db.TotalRows()));
}
BENCHMARK(BM_CountQ1)->Arg(1)->Arg(10)->Arg(100);

// ---------------------------------------------------------------------------
// Compact JSON trajectory reporter
// ---------------------------------------------------------------------------

struct BenchEntry {
  std::string name;
  double rows = 0;
  double ns_per_op = 0;
  long threads = 0;
  bool has_threads = false;  // ran on the threads axis (BM_*Threads)
};

// A console reporter that additionally records every run for the JSON
// trajectory file (google-benchmark only accepts a standalone file
// reporter together with --benchmark_out, so recording rides on the
// display reporter instead).
class CompactJsonReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      BenchEntry e;
      e.name = run.benchmark_name();
      auto it = run.counters.find("rows");
      if (it != run.counters.end()) e.rows = it->second.value;
      auto th = run.counters.find("threads");
      if (th != run.counters.end()) {
        e.threads = static_cast<long>(th->second.value);
        e.has_threads = true;
      }
      e.ns_per_op = run.GetAdjustedRealTime();  // ns: the default time unit
      entries_.push_back(std::move(e));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<BenchEntry>& entries() const { return entries_; }

  bool WriteFile(const char* path) const {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return false;
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f,
                   "  {\"name\": \"%s\", \"rows\": %.0f, "
                   "\"ns_per_op\": %.1f}%s\n",
                   entries_[i].name.c_str(), entries_[i].rows,
                   entries_[i].ns_per_op, i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

 private:
  std::vector<BenchEntry> entries_;
};

// Prints "BM_HashJoinThreads/100000/8: 2.7x vs serial" lines for every
// threads-axis run paired with its threads = 0 baseline.
void PrintParallelSpeedups(const std::vector<BenchEntry>& entries) {
  bool header = false;
  for (const BenchEntry& e : entries) {
    if (!e.has_threads || e.threads == 0 || e.ns_per_op <= 0) continue;
    for (const BenchEntry& base : entries) {
      if (!base.has_threads || base.threads != 0 || base.rows != e.rows ||
          base.name.substr(0, base.name.rfind('/')) !=
              e.name.substr(0, e.name.rfind('/'))) {
        continue;
      }
      if (!header) {
        std::printf("\nspeedup vs serial (threads = 0):\n");
        header = true;
      }
      std::printf("  %-32s %6.2fx\n", e.name.c_str(),
                  base.ns_per_op / e.ns_per_op);
    }
  }
}

// Prints "BM_HashJoin/10000: 3.5x vs legacy" lines for every kernel pair
// present in this run.
void PrintSpeedups(const std::vector<BenchEntry>& entries) {
  std::map<std::string, double> by_name;
  for (const BenchEntry& e : entries) by_name[e.name] = e.ns_per_op;
  const std::pair<const char*, const char*> pairs[] = {
      {"BM_HashJoin", "BM_LegacyHashJoin"},
      {"BM_SortMergeJoin", "BM_LegacySortMergeJoin"},
  };
  bool header = false;
  for (const auto& [current, legacy] : pairs) {
    for (const auto& [name, ns] : by_name) {
      if (name.rfind(std::string(current) + "/", 0) != 0) continue;
      std::string suffix = name.substr(std::string(current).size());
      auto it = by_name.find(std::string(legacy) + suffix);
      if (it == by_name.end() || ns <= 0) continue;
      if (!header) {
        std::printf("\nspeedup vs legacy kernels:\n");
        header = true;
      }
      std::printf("  %-28s %6.2fx\n", name.c_str(), it->second / ns);
    }
  }
}

}  // namespace
}  // namespace lsens

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  lsens::CompactJsonReporter json;
  benchmark::RunSpecifiedBenchmarks(&json);
  const char* path = std::getenv("LSENS_BENCH_JSON");
  if (path == nullptr) path = "BENCH_join.json";
  if (!json.WriteFile(path)) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }
  std::printf("wrote %s (%zu entries)\n", path, json.entries().size());
  // The threads-axis runs additionally feed the cross-bench parallel
  // trajectory file (shared schema with bench_fig7_runtime).
  std::vector<lsens::bench::ParallelEntry> parallel;
  for (const auto& e : json.entries()) {
    if (!e.has_threads) continue;
    parallel.push_back(
        lsens::bench::ParallelEntry{e.name, e.rows, e.threads, e.ns_per_op});
  }
  if (!parallel.empty() &&
      !lsens::bench::WriteParallelJson("BENCH_parallel_join.json", parallel)) {
    return 1;
  }
  lsens::PrintSpeedups(json.entries());
  lsens::PrintParallelSpeedups(json.entries());
  benchmark::Shutdown();
  return 0;
}
