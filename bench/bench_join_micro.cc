// Operator micro-benchmarks (google-benchmark): the counted-relation
// primitives every TSens pass is built from — r⋈ under both join
// algorithms, γ group-by-sum, and the Yannakakis-style count evaluation on
// TPC-H q1.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "exec/counted_relation.h"
#include "exec/eval.h"
#include "exec/join.h"
#include "workload/queries.h"
#include "workload/tpch.h"

namespace lsens {
namespace {

CountedRelation MakeRandomCounted(Rng& rng, size_t rows, AttributeSet attrs,
                                  uint64_t domain) {
  CountedRelation rel(std::move(attrs));
  std::vector<Value> row(rel.arity());
  for (size_t i = 0; i < rows; ++i) {
    for (auto& v : row) v = static_cast<Value>(rng.NextBounded(domain));
    rel.AppendRow(row, Count::One());
  }
  rel.Normalize();
  return rel;
}

void BM_NaturalJoin(benchmark::State& state, JoinAlgorithm algo) {
  Rng rng(1);
  size_t rows = static_cast<size_t>(state.range(0));
  CountedRelation a = MakeRandomCounted(rng, rows, {1, 2}, rows / 4 + 1);
  CountedRelation b = MakeRandomCounted(rng, rows, {2, 3}, rows / 4 + 1);
  JoinOptions opts{algo};
  for (auto _ : state) {
    CountedRelation j = NaturalJoin(a, b, opts);
    benchmark::DoNotOptimize(j.NumRows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * rows));
}

void BM_HashJoin(benchmark::State& state) {
  BM_NaturalJoin(state, JoinAlgorithm::kHash);
}
void BM_SortMergeJoin(benchmark::State& state) {
  BM_NaturalJoin(state, JoinAlgorithm::kSortMerge);
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_SortMergeJoin)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_GroupBySum(benchmark::State& state) {
  Rng rng(2);
  size_t rows = static_cast<size_t>(state.range(0));
  CountedRelation r = MakeRandomCounted(rng, rows, {1, 2}, rows / 8 + 1);
  for (auto _ : state) {
    CountedRelation g = GroupBySum(r, {1});
    benchmark::DoNotOptimize(g.NumRows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_GroupBySum)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TopKTruncation(benchmark::State& state) {
  Rng rng(3);
  size_t rows = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    CountedRelation r = MakeRandomCounted(rng, rows, {1}, rows * 2);
    state.ResumeTiming();
    r.TruncateTopK(64);
    benchmark::DoNotOptimize(r.NumRows());
  }
}
BENCHMARK(BM_TopKTruncation)->Arg(10000)->Arg(100000);

void BM_CountQ1(benchmark::State& state) {
  TpchOptions topts;
  topts.scale = static_cast<double>(state.range(0)) * 1e-4;
  Database db = MakeTpchDatabase(topts);
  WorkloadQuery q1 = MakeTpchQ1(db);
  for (auto _ : state) {
    auto c = CountQuery(q1.query, db);
    benchmark::DoNotOptimize(c.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(db.TotalRows()));
}
BENCHMARK(BM_CountQ1)->Arg(1)->Arg(10)->Arg(100);

}  // namespace
}  // namespace lsens
