// Figure 6a: local sensitivity reported by TSens vs the Elastic upper bound
// for TPC-H queries q1, q2, q3 across database scales.
//
// Paper reference points: TSens is ~7x (q1) and ~6x (q2) below Elastic past
// scale 0.001, and up to 2,200,000x below for the cyclic q3 (at scale 0.1).
// q3 is capped at LSENS_Q3_MAX_SCALE (default 0.01) — the multiplicity
// tables of the cyclic query grow superlinearly, the same wall the paper
// hit ("we didn't run q3 for scale larger than 0.1 due to the memory
// limit").
//
// Environment: LSENS_SCALES=0.0001,0.001,0.01[,0.1] LSENS_Q3_MAX_SCALE=0.01

#include <cstdio>

#include "bench_util.h"
#include "sensitivity/elastic.h"
#include "sensitivity/tsens.h"
#include "workload/queries.h"
#include "workload/tpch.h"

namespace {

using namespace lsens;
using bench::Banner;
using bench::EnvScales;

void RunOne(const WorkloadQuery& w, const Database& db, double scale) {
  TSensComputeOptions opts;
  opts.ghd = w.ghd_ptr();
  opts.skip_atoms = w.skip_atoms;
  auto tsens = ComputeLocalSensitivity(w.query, db, opts);
  auto elastic = ElasticSensitivity(w.query, db, w.ghd_ptr(),
                                    ElasticMode::kFlexFaithful);
  if (!tsens.ok() || !elastic.ok()) {
    std::printf("%-4s scale=%-8g ERROR %s %s\n", w.name.c_str(), scale,
                tsens.status().ToString().c_str(),
                elastic.status().ToString().c_str());
    return;
  }
  double ratio = tsens->local_sensitivity.IsZero()
                     ? 0.0
                     : elastic->local_sensitivity_bound.ToDouble() /
                           tsens->local_sensitivity.ToDouble();
  std::printf("%-4s scale=%-8g TSens=%-14s Elastic=%-18s Elastic/TSens=%.1fx\n",
              w.name.c_str(), scale,
              tsens->local_sensitivity.ToString().c_str(),
              elastic->local_sensitivity_bound.ToString().c_str(), ratio);
}

}  // namespace

int main() {
  Banner("Figure 6a — local sensitivity vs scale (TPC-H q1, q2, q3)",
         "series: TSens exact LS and the Elastic static upper bound");
  std::vector<double> scales =
      EnvScales("LSENS_SCALES", {0.0001, 0.001, 0.01});
  double q3_cap = EnvScales("LSENS_Q3_MAX_SCALE", {0.01})[0];

  for (double scale : scales) {
    TpchOptions topts;
    topts.scale = scale;
    Database db = MakeTpchDatabase(topts);
    RunOne(MakeTpchQ1(db), db, scale);
    RunOne(MakeTpchQ2(db), db, scale);
    if (scale <= q3_cap) {
      RunOne(MakeTpchQ3(db), db, scale);
    } else {
      std::printf("q3   scale=%-8g (skipped: exceeds LSENS_Q3_MAX_SCALE, "
                  "cyclic multiplicity tables grow superlinearly)\n",
                  scale);
    }
  }
  return 0;
}
