// Concurrent serving bench: a free-running SensitivityServer turns epochs
// over a chain-join database while N reader sessions answer registered
// (warm) queries from pinned snapshots. Reports reader throughput
// (queries/sec), the writer's repair-batch coalescing, and — the
// correctness gate — the number of snapshot-consistency violations found
// by sampled from-scratch recomputes against the pinned snapshots. Writes
// the BENCH_serving.json trajectory file ({"readers", "turns", "queries",
// "queries_per_sec", "epochs_published", "mean_turn_deltas",
// "max_turn_deltas", "warm_hits", "cold_hits", "cold_computes",
// "oracle_checks", "snapshot_violations"}).
//
// Exits non-zero (failing the CTest smoke) when any sampled read differs
// from the from-scratch recompute at its pinned epoch: served answers must
// be bit-identical to the snapshot oracle, always.
//
// Knobs:
//   LSENS_SERVE_READERS       reader sessions               (default 8)
//   LSENS_SERVE_TURNS         published writer turns        (default 200)
//   LSENS_SERVE_QUERIES       queries per reader            (default 200)
//   LSENS_SERVE_ROWS          rows per relation             (default 20000)
//   LSENS_SERVE_DOMAIN        join-key domain               (default 500)
//   LSENS_SERVE_ORACLE_EVERY  oracle-recompute sampling     (default 16)
//   LSENS_SERVE_BATCH         admission cap per turn        (default 8)
//   LSENS_BENCH_SERVING_JSON  output path (default BENCH_serving.json)

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "exec/exec_context.h"
#include "query/explain.h"
#include "sensitivity/tsens.h"
#include "server/sensitivity_server.h"

namespace lsens {
namespace {

constexpr long kChainLen = 3;  // relations R0..R2, queries over prefixes

Database MakeChainDb(Rng& rng, long rows, long domain) {
  Database db;
  for (long a = 0; a < kChainLen; ++a) {
    Relation* rel = db.AddRelation("R" + std::to_string(a), {"c0", "c1"});
    rel->Reserve(static_cast<size_t>(rows));
    for (long r = 0; r < rows; ++r) {
      rel->AppendRow(
          {static_cast<Value>(rng.NextBounded(static_cast<uint64_t>(domain))),
           static_cast<Value>(
               rng.NextBounded(static_cast<uint64_t>(domain)))});
    }
  }
  return db;
}

// Chain queries over prefixes R0..Ra, the overlapping registered workload
// the shared cache warms with one repair pass per turn.
std::vector<ConjunctiveQuery> MakeChainQueries(Database& db) {
  std::vector<ConjunctiveQuery> queries;
  for (long len = 2; len <= kChainLen; ++len) {
    ConjunctiveQuery q;
    for (long a = 0; a < len; ++a) {
      q.AddAtom(db, "R" + std::to_string(a),
                {"x" + std::to_string(a), "x" + std::to_string(a + 1)});
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

// Insert-only batches keep every delta applicable regardless of how far
// the feeder's view lags the master, so the turn count is delta-driven.
DatabaseDelta MakeInsertDelta(Rng& rng, long domain) {
  RelationDelta rd;
  rd.relation = "R" + std::to_string(rng.NextBounded(kChainLen));
  const size_t n = 1 + rng.NextBounded(2);
  for (size_t i = 0; i < n; ++i) {
    rd.inserts.push_back(
        {static_cast<Value>(rng.NextBounded(static_cast<uint64_t>(domain))),
         static_cast<Value>(rng.NextBounded(static_cast<uint64_t>(domain)))});
  }
  DatabaseDelta delta;
  delta.push_back(std::move(rd));
  return delta;
}

int Run() {
  const long readers = std::max(1L, bench::EnvInt("LSENS_SERVE_READERS", 8));
  const long turns_target = bench::EnvInt("LSENS_SERVE_TURNS", 200);
  const long queries_per_reader =
      bench::EnvInt("LSENS_SERVE_QUERIES", 200);
  const long rows = bench::EnvInt("LSENS_SERVE_ROWS", 20000);
  const long domain = bench::EnvInt("LSENS_SERVE_DOMAIN", 500);
  const long oracle_every =
      std::max(1L, bench::EnvInt("LSENS_SERVE_ORACLE_EVERY", 16));
  const long batch = std::max(1L, bench::EnvInt("LSENS_SERVE_BATCH", 8));

  bench::Banner("Concurrent sensitivity serving",
                "reader sessions on pinned epoch snapshots vs a "
                "free-running delta writer");

  Rng build_rng(20200614);
  Database db = MakeChainDb(build_rng, rows, domain);
  std::vector<ConjunctiveQuery> queries = MakeChainQueries(db);

  ServingConfig config;
  config.max_turn_deltas = static_cast<size_t>(batch);
  config.cache.max_delta_fraction = 1.0;
  SensitivityServer server(std::move(db), config);
  for (const ConjunctiveQuery& q : queries) server.RegisterQuery(q);

  struct ReaderReport {
    uint64_t queries = 0;
    uint64_t oracle_checks = 0;
    uint64_t violations = 0;
  };
  std::vector<ReaderReport> reports(static_cast<size_t>(readers));
  std::vector<std::unique_ptr<ServerSession>> sessions;
  for (long i = 0; i < readers; ++i) {
    sessions.push_back(server.OpenSession("reader-" + std::to_string(i)));
  }

  ThreadPool& pool = GlobalThreadPool();
  WallTimer reader_phase;
  for (long i = 0; i < readers; ++i) {
    pool.Submit([&, i](size_t) {
      ServerSession& session = *sessions[static_cast<size_t>(i)];
      ReaderReport& report = reports[static_cast<size_t>(i)];
      // Oracle recomputes run on a pool worker: pass an explicit context
      // rather than tripping the thread-local fallback guard.
      ExecContext oracle_ctx;
      TSensComputeOptions oracle_options;
      oracle_options.join.ctx = &oracle_ctx;
      for (long q = 0; q < queries_per_reader; ++q) {
        const ConjunctiveQuery& query =
            queries[static_cast<size_t>(q) % queries.size()];
        EpochPin pin = session.Pin();
        auto got = session.QueryAt(pin, query);
        ++report.queries;
        const bool check = q % oracle_every == 0;
        if (!check) continue;
        ++report.oracle_checks;
        auto fresh =
            ComputeLocalSensitivity(query, pin.db(), oracle_options);
        if (!got.ok() || !fresh.ok() ||
            got->local_sensitivity != fresh->local_sensitivity ||
            got->argmax_atom != fresh->argmax_atom) {
          ++report.violations;
        }
      }
    });
  }

  // Feed the writer until it has published the target number of turns;
  // brief sleeps let the (single-core-friendly) writer and readers run.
  Rng feed_rng(99);
  uint64_t submitted = 0;
  const uint64_t submit_cap =
      static_cast<uint64_t>(turns_target) * static_cast<uint64_t>(batch) * 4 +
      1000;
  while (server.stats().turns < static_cast<uint64_t>(turns_target) &&
         submitted < submit_cap) {
    if (!server.SubmitDelta(MakeInsertDelta(feed_rng, domain)).ok()) break;
    ++submitted;
    if (submitted % static_cast<uint64_t>(batch) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  pool.Wait();
  const double reader_seconds = reader_phase.ElapsedSeconds();
  server.Shutdown();

  const ServingStats stats = server.stats();
  uint64_t total_queries = 0;
  uint64_t oracle_checks = 0;
  uint64_t violations = 0;
  for (const ReaderReport& r : reports) {
    total_queries += r.queries;
    oracle_checks += r.oracle_checks;
    violations += r.violations;
  }
  const double qps =
      reader_seconds > 0 ? static_cast<double>(total_queries) / reader_seconds
                         : 0.0;
  const double mean_turn_deltas =
      stats.turns > 0 ? static_cast<double>(stats.deltas_applied) /
                            static_cast<double>(stats.turns)
                      : 0.0;
  std::printf(
      "readers=%ld turns=%" PRIu64 " submitted=%" PRIu64 "\n"
      "queries %" PRIu64 " in %.3f s  ->  %10.0f queries/sec\n"
      "epochs published %" PRIu64 "  repair batches: mean %.2f max %" PRIu64
      "\n"
      "warm_hits %" PRIu64 "  cold_hits %" PRIu64 "  cold_computes %" PRIu64
      "\n"
      "oracle checks %" PRIu64 "  snapshot violations %" PRIu64 "\n",
      readers, stats.turns, submitted, total_queries, reader_seconds, qps,
      stats.epochs_published, mean_turn_deltas, stats.max_turn_deltas,
      stats.warm_hits, stats.cold_hits, stats.cold_computes, oracle_checks,
      violations);
  std::printf("reader-0 session profile:\n%s",
              RenderExecStats(sessions[0]->ctx()).c_str());

  const char* path = std::getenv("LSENS_BENCH_SERVING_JSON");
  if (path == nullptr) path = "BENCH_serving.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f,
                 "{\"readers\": %ld, \"turns\": %" PRIu64
                 ", \"queries\": %" PRIu64
                 ", \"queries_per_sec\": %.1f, \"epochs_published\": %" PRIu64
                 ", \"mean_turn_deltas\": %.2f, \"max_turn_deltas\": %" PRIu64
                 ", \"warm_hits\": %" PRIu64 ", \"cold_hits\": %" PRIu64
                 ", \"cold_computes\": %" PRIu64
                 ", \"oracle_checks\": %" PRIu64
                 ", \"snapshot_violations\": %" PRIu64 "}\n",
                 readers, stats.turns, total_queries, qps,
                 stats.epochs_published, mean_turn_deltas,
                 stats.max_turn_deltas, stats.warm_hits, stats.cold_hits,
                 stats.cold_computes, oracle_checks, violations);
    std::fclose(f);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }

  // The gate: a served answer that differs from the from-scratch compute
  // at its pinned snapshot is a consistency bug, not a perf regression.
  if (violations > 0) {
    std::fprintf(stderr,
                 "FAIL: %" PRIu64 " snapshot violations across %" PRIu64
                 " oracle checks\n",
                 violations, oracle_checks);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace lsens

int main() { return lsens::Run(); }
