// §7.2 comparison: the naive Theorem-3.1 baseline ("repeat query evaluation
// over databases formed by removing an active-domain tuple or inserting a
// representative-domain tuple, one at a time") versus TSens. The paper
// estimates the naive approach at x10k+ the TSens runtime on the Facebook
// queries; this bench measures it directly on small TPC-H instances where
// the naive approach is still feasible.
//
// Environment: LSENS_SCALES=0.0001,0.0002

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "sensitivity/naive.h"
#include "sensitivity/tsens.h"
#include "workload/queries.h"
#include "workload/tpch.h"

int main() {
  using namespace lsens;
  bench::Banner("§7.2 ablation — naive re-evaluation vs TSens (q1)",
                "naive = one evaluation per candidate deletion/insertion");
  std::vector<double> scales =
      bench::EnvScales("LSENS_SCALES", {0.0001, 0.0002});

  for (double scale : scales) {
    TpchOptions topts;
    topts.scale = scale;
    Database db = MakeTpchDatabase(topts);
    WorkloadQuery q1 = MakeTpchQ1(db);

    WallTimer t1;
    auto tsens = ComputeLocalSensitivity(q1.query, db);
    double tsens_s = t1.ElapsedSeconds();
    if (!tsens.ok()) {
      std::printf("scale=%g TSens ERROR %s\n", scale,
                  tsens.status().ToString().c_str());
      continue;
    }

    NaiveOptions nopts;
    nopts.max_insert_candidates = 200000;
    WallTimer t2;
    auto naive = NaiveLocalSensitivity(q1.query, db, nopts);
    double naive_s = t2.ElapsedSeconds();
    if (!naive.ok()) {
      std::printf(
          "scale=%-8g TSens=%.4fs LS=%s; naive infeasible (%s)\n", scale,
          tsens_s, tsens->local_sensitivity.ToString().c_str(),
          naive.status().ToString().c_str());
      continue;
    }
    std::printf(
        "scale=%-8g rows=%-7zu TSens=%-9.4fs naive=%-9.3fs (%.0fx, %zu "
        "candidate evaluations) LS agree=%s\n",
        scale, db.TotalRows(), tsens_s, naive_s,
        tsens_s > 0 ? naive_s / tsens_s : 0.0, naive->candidates_evaluated,
        naive->local_sensitivity == tsens->local_sensitivity ? "yes" : "NO");
  }
  return 0;
}
