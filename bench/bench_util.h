#ifndef LSENS_BENCH_BENCH_UTIL_H_
#define LSENS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace lsens::bench {

// Comma-separated double list from the environment, with a default.
inline std::vector<double> EnvScales(const char* name,
                                     std::vector<double> fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  std::vector<double> out;
  std::string s(raw);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::stod(s.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out.empty() ? fallback : out;
}

inline long EnvInt(const char* name, long fallback) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? fallback : std::atol(raw);
}

inline double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t n = v.size();
  return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

// One row of the cross-PR parallel-speedup trajectory. Both
// bench_fig7_runtime and bench_join_micro emit these so successive PRs can
// diff ns_per_op along the threads axis.
struct ParallelEntry {
  std::string name;
  double rows = 0;
  long threads = 0;
  double ns_per_op = 0;
};

// Writes `entries` as the BENCH_parallel.json trajectory file
// ([{"name", "rows", "threads", "ns_per_op"}, ...]). `path` resolution:
// the LSENS_BENCH_PARALLEL_JSON environment variable wins, then
// `default_path`.
inline bool WriteParallelJson(const char* default_path,
                              const std::vector<ParallelEntry>& entries) {
  const char* path = std::getenv("LSENS_BENCH_PARALLEL_JSON");
  if (path == nullptr) path = default_path;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return false;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"rows\": %.0f, \"threads\": %ld, "
                 "\"ns_per_op\": %.1f}%s\n",
                 entries[i].name.c_str(), entries[i].rows, entries[i].threads,
                 entries[i].ns_per_op, i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu entries)\n", path, entries.size());
  return true;
}

// Prints a header banner mapping the binary to its paper artifact.
inline void Banner(const char* artifact, const char* description) {
  constexpr char kRule[] =
      "==============================================================\n";
  std::printf("%s", kRule);
  std::printf("%s\n%s\n", artifact, description);
  std::printf("%s", kRule);
}

}  // namespace lsens::bench

#endif  // LSENS_BENCH_BENCH_UTIL_H_
