#ifndef LSENS_BENCH_BENCH_UTIL_H_
#define LSENS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace lsens::bench {

// Comma-separated double list from the environment, with a default.
inline std::vector<double> EnvScales(const char* name,
                                     std::vector<double> fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  std::vector<double> out;
  std::string s(raw);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::stod(s.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out.empty() ? fallback : out;
}

inline long EnvInt(const char* name, long fallback) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? fallback : std::atol(raw);
}

inline double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t n = v.size();
  return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

// Prints a header banner mapping the binary to its paper artifact.
inline void Banner(const char* artifact, const char* description) {
  constexpr char kRule[] =
      "==============================================================\n";
  std::printf("%s", kRule);
  std::printf("%s\n%s\n", artifact, description);
  std::printf("%s", kRule);
}

}  // namespace lsens::bench

#endif  // LSENS_BENCH_BENCH_UTIL_H_
