// Figure 6b: the most sensitive tuple and its tuple sensitivity for every
// relation of q3 at TPC-H scale 0.01, next to the per-relation Elastic
// bound (Elastic cannot produce a witness tuple; the paper reports its
// bound "by setting this relation as the only sensitive table").
//
// Paper reference points (scale 0.01): Region 647 / 120,350,000 elastic;
// Nation 179; Supplier 46; Customer 18; Part 7; Orders 5; Partsupp 4;
// Lineitem skipped (superkey => sensitivity at most 1).
//
// Environment: LSENS_FIG6B_SCALE=0.01

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "sensitivity/elastic.h"
#include "sensitivity/tsens.h"
#include "workload/queries.h"
#include "workload/tpch.h"

int main() {
  using namespace lsens;
  bench::Banner(
      "Figure 6b — most sensitive tuple per relation of q3 (TPC-H)",
      "TSens witness tuple + exact sensitivity vs per-relation Elastic");
  double scale = bench::EnvScales("LSENS_FIG6B_SCALE", {0.01})[0];
  TpchOptions topts;
  topts.scale = scale;
  Database db = MakeTpchDatabase(topts);
  WorkloadQuery q3 = MakeTpchQ3(db);

  TSensComputeOptions opts;
  opts.ghd = q3.ghd_ptr();
  opts.skip_atoms = q3.skip_atoms;
  auto tsens = ComputeLocalSensitivity(q3.query, db, opts);
  auto elastic = ElasticSensitivity(q3.query, db, q3.ghd_ptr(),
                                    ElasticMode::kFlexFaithful);
  if (!tsens.ok() || !elastic.ok()) {
    std::printf("ERROR: %s %s\n", tsens.status().ToString().c_str(),
                elastic.status().ToString().c_str());
    return 1;
  }

  std::printf("%-10s %-44s %-14s %s\n", "Relation", "Most sensitive tuple",
              "TupleSens", "ElasticSens");
  for (const AtomSensitivity& atom : tsens->atoms) {
    std::string witness;
    if (atom.skipped) {
      witness = "(skipped: superkey in head, sensitivity <= 1)";
    } else {
      witness = atom.relation + "(";
      for (size_t i = 0; i < atom.table_attrs.size(); ++i) {
        if (i > 0) witness += ", ";
        witness += db.attrs().Name(atom.table_attrs[i]) + "=";
        witness += (i < atom.argmax.size())
                       ? std::to_string(atom.argmax[i])
                       : std::string("?");
      }
      for (AttrId free : atom.free_vars) {
        witness += ", " + db.attrs().Name(free) + "=*";
      }
      witness += ")";
    }
    std::printf("%-10s %-44s %-14s %s\n", atom.relation.c_str(),
                witness.c_str(),
                atom.skipped ? "<=1" : atom.max_sensitivity.ToString().c_str(),
                elastic->per_atom_bound[static_cast<size_t>(atom.atom_index)]
                    .ToString()
                    .c_str());
  }
  std::printf("\nLS(q3) = %s, most sensitive: %s\n",
              tsens->local_sensitivity.ToString().c_str(),
              tsens->DescribeMostSensitive(db.attrs()).c_str());
  return 0;
}
