// Incremental sensitivity maintenance under update streams: replays
// randomized single-row insert/delete streams over the acyclic-tree, path,
// and TPC-H q1 workloads, comparing a SensitivityCache repair against a
// from-scratch ComputeLocalSensitivity after every update. Reports
// wall-clock per repaired update, full-recompute wall clock, and the
// rows-processed ratio (summed over every ExecContext operator), and
// writes the BENCH_incremental.json trajectory file.
//
// Knobs:
//   LSENS_INC_ROWS         rows per synthetic relation   (default 100000)
//   LSENS_INC_DOMAIN       synthetic join-key domain     (default 1000)
//   LSENS_INC_UPDATES      stream length                 (default 200)
//   LSENS_INC_CHECK_EVERY  full-recompute cadence        (default 25)
//   LSENS_INC_TPCH_SCALE   TPC-H scale factor            (default 0.02)
//   LSENS_BENCH_INC_JSON   output path                   (default
//                          BENCH_incremental.json)

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "exec/exec_context.h"
#include "sensitivity/incremental.h"
#include "sensitivity/tsens.h"
#include "workload/queries.h"
#include "workload/tpch.h"

namespace lsens {
namespace {

struct StreamResult {
  std::string name;
  size_t rows = 0;
  long updates = 0;
  double repair_ns = 0;       // median wall per repaired update
  double full_ns = 0;         // median wall per from-scratch compute
  double repair_rows = 0;     // median rows processed per repaired update
  double full_rows = 0;       // rows processed by one full compute
  uint64_t repairs = 0;
  uint64_t fallbacks = 0;
};

uint64_t TotalRows(const ExecContext& ctx) {
  uint64_t total = 0;
  for (const OperatorStats& s : ctx.stats()) total += s.rows_in + s.rows_out;
  return total;
}

// One random single-row mutation: duplicate a random existing row (keeps
// the join-key distribution realistic) or delete a random row.
void MutateOne(Rng& rng, const ConjunctiveQuery& q, Database& db) {
  const Atom& atom = q.atom(
      static_cast<int>(rng.NextBounded(static_cast<uint64_t>(q.num_atoms()))));
  Relation* rel = db.Find(atom.relation);
  const size_t n = rel->NumRows();
  if (n > 1 && rng.NextBounded(2) == 0) {
    rel->SwapRemoveRow(rng.NextBounded(n));
  } else if (n > 0) {
    std::span<const Value> picked = rel->Row(rng.NextBounded(n));
    std::vector<Value> row(picked.begin(), picked.end());
    rel->AppendRow(row);
  }
}

StreamResult ReplayStream(const std::string& name, const ConjunctiveQuery& q,
                          Database& db, const TSensComputeOptions& options,
                          long updates, long check_every, Rng& rng) {
  StreamResult out;
  out.name = name;
  for (const Atom& atom : q.atoms()) {
    out.rows += db.Find(atom.relation)->NumRows();
  }
  out.updates = updates;

  SensitivityCache cache;
  TSensComputeOptions cached_options = options;

  // Baseline: one from-scratch compute with stats, for the row count.
  {
    ExecContext ctx;
    TSensComputeOptions full = options;
    full.join.ctx = &ctx;
    auto r = ComputeLocalSensitivity(q, db, full);
    LSENS_CHECK(r.ok());
    out.full_rows = static_cast<double>(TotalRows(ctx));
  }

  // Prime the cache (miss + state capture), then replay.
  LSENS_CHECK(cache.Compute(q, db, cached_options).ok());
  std::vector<double> repair_ns;
  std::vector<double> repair_rows;
  std::vector<double> full_ns;
  for (long u = 0; u < updates; ++u) {
    MutateOne(rng, q, db);
    ExecContext ctx;
    cached_options.join.ctx = &ctx;
    WallTimer timer;
    auto repaired = cache.Compute(q, db, cached_options);
    double elapsed = timer.ElapsedSeconds();
    LSENS_CHECK(repaired.ok());
    repair_ns.push_back(elapsed * 1e9);
    repair_rows.push_back(static_cast<double>(TotalRows(ctx)));
    if (u % check_every == 0) {
      WallTimer full_timer;
      auto fresh = ComputeLocalSensitivity(q, db, options);
      full_ns.push_back(full_timer.ElapsedSeconds() * 1e9);
      LSENS_CHECK(fresh.ok());
      // The incremental answer must be bit-identical to from-scratch.
      LSENS_CHECK(repaired->local_sensitivity == fresh->local_sensitivity);
      LSENS_CHECK(repaired->argmax_atom == fresh->argmax_atom);
      for (size_t a = 0; a < fresh->atoms.size(); ++a) {
        LSENS_CHECK(repaired->atoms[a].max_sensitivity ==
                    fresh->atoms[a].max_sensitivity);
        LSENS_CHECK(repaired->atoms[a].argmax == fresh->atoms[a].argmax);
      }
    }
  }
  out.repair_ns = bench::Median(repair_ns);
  out.repair_rows = bench::Median(repair_rows);
  out.full_ns = bench::Median(full_ns);
  out.repairs = cache.stats().repairs;
  out.fallbacks = cache.stats().fallback_stale +
                  cache.stats().fallback_large_delta +
                  cache.stats().fallback_unsupported;
  return out;
}

Database MakeSyntheticDb(Rng& rng, const std::vector<std::string>& names,
                         const std::vector<std::vector<std::string>>& cols,
                         long rows, long domain) {
  Database db;
  for (size_t i = 0; i < names.size(); ++i) {
    Relation* rel = db.AddRelation(names[i], cols[i]);
    rel->Reserve(static_cast<size_t>(rows));
    std::vector<Value> row(cols[i].size());
    for (long r = 0; r < rows; ++r) {
      for (Value& v : row) {
        v = static_cast<Value>(
            rng.NextBounded(static_cast<uint64_t>(domain)));
      }
      rel->AppendRow(row);
    }
  }
  return db;
}

void PrintResult(const StreamResult& r) {
  std::printf(
      "%-12s %9zu rows  repair %10.0f ns/update  full %12.0f ns  "
      "speedup %8.1fx  rows %7.0f vs %9.0f (%.3f%%)  repairs %" PRIu64
      "  fallbacks %" PRIu64 "\n",
      r.name.c_str(), r.rows, r.repair_ns, r.full_ns,
      r.repair_ns > 0 ? r.full_ns / r.repair_ns : 0.0, r.repair_rows,
      r.full_rows,
      r.full_rows > 0 ? 100.0 * r.repair_rows / r.full_rows : 0.0, r.repairs,
      r.fallbacks);
}

bool WriteJson(const std::vector<StreamResult>& results) {
  const char* path = std::getenv("LSENS_BENCH_INC_JSON");
  if (path == nullptr) path = "BENCH_incremental.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return false;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const StreamResult& r = results[i];
    std::fprintf(
        f,
        "  {\"name\": \"%s\", \"rows\": %zu, \"updates\": %ld, "
        "\"repair_ns_per_update\": %.1f, \"full_ns\": %.1f, "
        "\"speedup\": %.2f, \"repair_rows_per_update\": %.1f, "
        "\"full_rows\": %.1f, \"row_ratio\": %.6f, \"repairs\": %" PRIu64
        ", \"fallbacks\": %" PRIu64 "}%s\n",
        r.name.c_str(), r.rows, r.updates, r.repair_ns, r.full_ns,
        r.repair_ns > 0 ? r.full_ns / r.repair_ns : 0.0, r.repair_rows,
        r.full_rows, r.full_rows > 0 ? r.repair_rows / r.full_rows : 0.0,
        r.repairs, r.fallbacks, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu entries)\n", path, results.size());
  return true;
}

int Run() {
  const long rows = bench::EnvInt("LSENS_INC_ROWS", 100000);
  const long domain = bench::EnvInt("LSENS_INC_DOMAIN", 1000);
  const long updates = bench::EnvInt("LSENS_INC_UPDATES", 200);
  const long check_every =
      std::max<long>(1, bench::EnvInt("LSENS_INC_CHECK_EVERY", 25));
  const double tpch_scale = bench::EnvScales("LSENS_INC_TPCH_SCALE",
                                             {0.02})[0];

  bench::Banner("BENCH incremental",
                "sensitivity maintenance under randomized insert/delete"
                " streams: cache repair vs from-scratch recompute");
  std::vector<StreamResult> results;
  Rng rng(20200712);

  {
    // 4-atom path query (Algorithm 1 / path repair mode).
    Database db = MakeSyntheticDb(
        rng, {"P1", "P2", "P3", "P4"},
        {{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "e"}}, rows, domain);
    ConjunctiveQuery q;
    q.AddAtom(db, "P1", {"A", "B"});
    q.AddAtom(db, "P2", {"B", "C"});
    q.AddAtom(db, "P3", {"C", "D"});
    q.AddAtom(db, "P4", {"D", "E"});
    results.push_back(
        ReplayStream("path4", q, db, {}, updates, check_every, rng));
    PrintResult(results.back());
  }
  {
    // Caterpillar join tree with distinct links per node: tree repair mode
    // (the TSensOverGhd ⊥/⊤ tables, not the path chains).
    Database db = MakeSyntheticDb(
        rng, {"T1", "T2", "T3", "T4"},
        {{"a", "b"}, {"b", "c", "f"}, {"c", "d"}, {"f", "g"}}, rows, domain);
    ConjunctiveQuery q;
    q.AddAtom(db, "T1", {"A", "B"});
    q.AddAtom(db, "T2", {"B", "C", "F"});
    q.AddAtom(db, "T3", {"C", "D"});
    q.AddAtom(db, "T4", {"F", "G"});
    results.push_back(
        ReplayStream("acyclic", q, db, {}, updates, check_every, rng));
    PrintResult(results.back());
  }
  {
    // TPC-H q1 (the paper's path workload) at the configured scale.
    TpchOptions topt;
    topt.scale = tpch_scale;
    Database db = MakeTpchDatabase(topt);
    WorkloadQuery wq = MakeTpchQ1(db);
    TSensComputeOptions options;
    options.skip_atoms = wq.skip_atoms;
    results.push_back(ReplayStream("tpch-q1", wq.query, db, options, updates,
                                   check_every, rng));
    PrintResult(results.back());
  }

  return WriteJson(results) ? 0 : 1;
}

}  // namespace
}  // namespace lsens

int main() { return lsens::Run(); }
