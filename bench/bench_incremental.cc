// Incremental sensitivity maintenance under update streams: replays
// randomized single-row insert/delete streams over the path, acyclic-tree,
// TPC-H q1, cyclic-triangle (searched GHD), and disconnected-forest
// workloads — once per LSENS_THREADS entry, on identically rebuilt
// databases, so serial and sharded repair are compared on the same stream
// — checking a SensitivityCache repair against a from-scratch
// ComputeLocalSensitivity along the way. Also runs the repair-index
// microbench: the flat open-addressing DynTable against the
// unordered_multimap-indexed layout it replaced, on the same op stream.
// Reports wall-clock per repaired update, full-recompute wall clock, and
// the rows-processed ratio (summed over every ExecContext operator), and
// writes the BENCH_incremental.json trajectory file.
//
// Exits non-zero (failing the CTest smoke) when a repairable stream's
// rows-touched ratio exceeds LSENS_INC_MAX_ROW_RATIO — the pinned
// asymptotic-work threshold — when any stream hits an unsupported-shape
// fallback (every bench shape is repairable), or when the flat/multimap
// checksums diverge.
//
// Knobs:
//   LSENS_INC_ROWS          rows per synthetic relation   (default 100000)
//   LSENS_INC_TRI_ROWS      rows per triangle relation    (default
//                           LSENS_INC_ROWS / 20; the bag join is quadratic)
//   LSENS_INC_DOMAIN        synthetic join-key domain     (default 1000)
//   LSENS_INC_UPDATES       stream length                 (default 200)
//   LSENS_INC_CHECK_EVERY   full-recompute cadence        (default 25)
//   LSENS_INC_TPCH_SCALE    TPC-H scale factor            (default 0.02)
//   LSENS_THREADS           repair thread counts          (default 0,2)
//   LSENS_INC_MAX_ROW_RATIO rows-touched ratio ceiling    (default 0.05)
//   LSENS_INC_INDEX_ROWS    microbench table rows         (default 100000)
//   LSENS_INC_INDEX_OPS     microbench op-stream length   (default 300000)
//   LSENS_INC_INDEX_DOMAIN  microbench per-column domain  (default 400)
//   LSENS_BENCH_INC_JSON    output path                   (default
//                           BENCH_incremental.json)

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "exec/dyn_table.h"
#include "exec/exec_context.h"
#include "sensitivity/incremental.h"
#include "sensitivity/tsens.h"
#include "workload/queries.h"
#include "workload/tpch.h"

namespace lsens {
namespace {

struct StreamResult {
  std::string name;
  size_t rows = 0;
  long updates = 0;
  long threads = 0;
  double repair_ns = 0;       // median wall per repaired update
  double full_ns = 0;         // median wall per from-scratch compute
  double repair_rows = 0;     // median rows processed per repaired update
  double full_rows = 0;       // rows processed by one full compute
  uint64_t repairs = 0;
  uint64_t fallbacks = 0;
  uint64_t fallback_unsupported = 0;  // must stay 0: every shape repairs
  uint64_t final_ls = 0;      // last repaired LS (thread-count invariant)
};

uint64_t TotalRows(const ExecContext& ctx) {
  uint64_t total = 0;
  for (const OperatorStats& s : ctx.stats()) total += s.rows_in + s.rows_out;
  return total;
}

// One random single-row mutation: duplicate a random existing row (keeps
// the join-key distribution realistic) or delete a random row.
void MutateOne(Rng& rng, const ConjunctiveQuery& q, Database& db) {
  const Atom& atom = q.atom(
      static_cast<int>(rng.NextBounded(static_cast<uint64_t>(q.num_atoms()))));
  Relation* rel = db.Find(atom.relation);
  const size_t n = rel->NumRows();
  if (n > 1 && rng.NextBounded(2) == 0) {
    rel->SwapRemoveRow(rng.NextBounded(n));
  } else if (n > 0) {
    std::vector<Value> row = rel->Row(rng.NextBounded(n));
    rel->AppendRow(row);
  }
}

StreamResult ReplayStream(const std::string& name, const ConjunctiveQuery& q,
                          Database& db, const TSensComputeOptions& options,
                          long updates, long check_every, long threads,
                          Rng rng) {
  StreamResult out;
  out.name = name;
  for (const Atom& atom : q.atoms()) {
    out.rows += db.Find(atom.relation)->NumRows();
  }
  out.updates = updates;
  out.threads = threads;

  SensitivityCache cache;
  TSensComputeOptions cached_options = options;
  cached_options.join.threads = static_cast<int>(threads);

  // Baseline: one from-scratch compute with stats, for the row count.
  {
    ExecContext ctx;
    TSensComputeOptions full = options;
    full.join.ctx = &ctx;
    auto r = ComputeLocalSensitivity(q, db, full);
    LSENS_CHECK(r.ok());
    out.full_rows = static_cast<double>(TotalRows(ctx));
  }

  // Prime the cache (miss + state capture), then replay.
  LSENS_CHECK(cache.Compute(q, db, cached_options).ok());
  std::vector<double> repair_ns;
  std::vector<double> repair_rows;
  std::vector<double> full_ns;
  for (long u = 0; u < updates; ++u) {
    MutateOne(rng, q, db);
    ExecContext ctx;
    cached_options.join.ctx = &ctx;
    WallTimer timer;
    auto repaired = cache.Compute(q, db, cached_options);
    double elapsed = timer.ElapsedSeconds();
    LSENS_CHECK(repaired.ok());
    out.final_ls = repaired->local_sensitivity.ToUint64Saturated();
    repair_ns.push_back(elapsed * 1e9);
    repair_rows.push_back(static_cast<double>(TotalRows(ctx)));
    if (u % check_every == 0) {
      WallTimer full_timer;
      auto fresh = ComputeLocalSensitivity(q, db, options);
      full_ns.push_back(full_timer.ElapsedSeconds() * 1e9);
      LSENS_CHECK(fresh.ok());
      // The incremental answer must be bit-identical to from-scratch.
      LSENS_CHECK(repaired->local_sensitivity == fresh->local_sensitivity);
      LSENS_CHECK(repaired->argmax_atom == fresh->argmax_atom);
      for (size_t a = 0; a < fresh->atoms.size(); ++a) {
        LSENS_CHECK(repaired->atoms[a].max_sensitivity ==
                    fresh->atoms[a].max_sensitivity);
        LSENS_CHECK(repaired->atoms[a].argmax == fresh->atoms[a].argmax);
      }
    }
  }
  out.repair_ns = bench::Median(repair_ns);
  out.repair_rows = bench::Median(repair_rows);
  out.full_ns = bench::Median(full_ns);
  out.repairs = cache.stats().repairs;
  out.fallbacks = cache.stats().fallback_stale +
                  cache.stats().fallback_large_delta +
                  cache.stats().fallback_unsupported +
                  cache.stats().fallback_spilled;
  out.fallback_unsupported = cache.stats().fallback_unsupported;
  return out;
}

Database MakeSyntheticDb(Rng& rng, const std::vector<std::string>& names,
                         const std::vector<std::vector<std::string>>& cols,
                         long rows, long domain) {
  Database db;
  for (size_t i = 0; i < names.size(); ++i) {
    Relation* rel = db.AddRelation(names[i], cols[i]);
    rel->Reserve(static_cast<size_t>(rows));
    std::vector<Value> row(cols[i].size());
    for (long r = 0; r < rows; ++r) {
      for (Value& v : row) {
        v = static_cast<Value>(
            rng.NextBounded(static_cast<uint64_t>(domain)));
      }
      rel->AppendRow(row);
    }
  }
  return db;
}

void PrintResult(const StreamResult& r) {
  std::printf(
      "%-12s t=%ld %9zu rows  repair %10.0f ns/update  full %12.0f ns  "
      "speedup %8.1fx  rows %7.0f vs %9.0f (%.3f%%)  repairs %" PRIu64
      "  fallbacks %" PRIu64 "\n",
      r.name.c_str(), r.threads, r.rows, r.repair_ns, r.full_ns,
      r.repair_ns > 0 ? r.full_ns / r.repair_ns : 0.0, r.repair_rows,
      r.full_rows,
      r.full_rows > 0 ? 100.0 * r.repair_rows / r.full_rows : 0.0, r.repairs,
      r.fallbacks);
}

// --- repair-index microbench ---------------------------------------------

// The PR-4 DynTable layout, kept verbatim as the microbench baseline (the
// way bench_join_micro keeps the legacy multimap join kernels): primary
// and secondary indexes are unordered_multimaps over key hashes, and Set /
// Adjust hash twice (find, then insert/erase).
class LegacyMultimapTable {
 public:
  static constexpr uint32_t kNoRow = UINT32_MAX;

  explicit LegacyMultimapTable(size_t arity) : arity_(arity) {}

  void Load(const CountedRelation& rel) {
    for (size_t i = 0; i < rel.NumRows(); ++i) {
      InsertRow(rel.Row(i), rel.CountAt(i));
    }
  }

  int AddIndex(std::vector<int> cols) {
    secondary_.push_back(Index{std::move(cols), {}});
    Index& index = secondary_.back();
    for (uint32_t r = 0; r < counts_.size(); ++r) {
      if (alive_[r]) IndexInsert(index, r);
    }
    return static_cast<int>(secondary_.size() - 1);
  }

  Count Get(std::span<const Value> key) const {
    uint32_t row = FindRow(key);
    return row == kNoRow ? Count::Zero() : counts_[row];
  }

  Count Set(std::span<const Value> key, Count c) {
    uint32_t row = FindRow(key);
    if (row == kNoRow) {
      if (!c.IsZero()) InsertRow(key, c);
      return Count::Zero();
    }
    Count old = counts_[row];
    if (c.IsZero()) {
      EraseRow(row);
    } else {
      counts_[row] = c;
    }
    return old;
  }

  bool Adjust(std::span<const Value> key, Count c, bool add) {
    if (c.IsZero()) return true;
    uint32_t row = FindRow(key);
    Count old = row == kNoRow ? Count::Zero() : counts_[row];
    if (add) {
      Count updated = old + c;
      if (updated.IsSaturated()) return false;
      if (row == kNoRow) {
        InsertRow(key, updated);
      } else {
        counts_[row] = updated;
      }
      return true;
    }
    if (old < c) return false;
    Count updated = old.SaturatingSub(c);
    if (updated.IsZero()) {
      EraseRow(row);
    } else {
      counts_[row] = updated;
    }
    return true;
  }

  void LookupIndex(int index_id, std::span<const Value> key,
                   std::vector<uint32_t>* out) const {
    const Index& index = secondary_[static_cast<size_t>(index_id)];
    auto [begin, end] = index.map.equal_range(Hash(key));
    for (auto it = begin; it != end; ++it) {
      uint32_t row = it->second;
      std::span<const Value> stored = RowValues(row);
      bool match = true;
      for (size_t i = 0; i < index.cols.size() && match; ++i) {
        match = stored[static_cast<size_t>(index.cols[i])] == key[i];
      }
      if (match) out->push_back(row);
    }
  }

 private:
  struct Index {
    std::vector<int> cols;
    std::unordered_multimap<uint64_t, uint32_t> map;
  };

  static uint64_t Hash(std::span<const Value> key) {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (Value v : key) h = Mix64(h ^ static_cast<uint64_t>(v));
    return h;
  }

  std::span<const Value> RowValues(uint32_t row) const {
    return {data_.data() + static_cast<size_t>(row) * arity_, arity_};
  }

  uint32_t FindRow(std::span<const Value> key) const {
    auto [begin, end] = primary_.equal_range(Hash(key));
    for (auto it = begin; it != end; ++it) {
      std::span<const Value> stored = RowValues(it->second);
      bool match = true;
      for (size_t i = 0; i < key.size() && match; ++i) {
        match = stored[i] == key[i];
      }
      if (match) return it->second;
    }
    return kNoRow;
  }

  void InsertRow(std::span<const Value> key, Count c) {
    uint32_t row;
    if (!free_.empty()) {
      row = free_.back();
      free_.pop_back();
      std::copy(key.begin(), key.end(),
                data_.begin() + static_cast<size_t>(row) * arity_);
      counts_[row] = c;
      alive_[row] = 1;
    } else {
      row = static_cast<uint32_t>(counts_.size());
      data_.insert(data_.end(), key.begin(), key.end());
      counts_.push_back(c);
      alive_.push_back(1);
    }
    primary_.emplace(Hash(key), row);
    for (Index& index : secondary_) IndexInsert(index, row);
  }

  void EraseRow(uint32_t row) {
    for (Index& index : secondary_) {
      std::span<const Value> stored = RowValues(row);
      std::vector<Value> projected;
      for (int c : index.cols) {
        projected.push_back(stored[static_cast<size_t>(c)]);
      }
      auto [begin, end] = index.map.equal_range(
          Hash({projected.data(), projected.size()}));
      for (auto it = begin; it != end; ++it) {
        if (it->second == row) {
          index.map.erase(it);
          break;
        }
      }
    }
    std::span<const Value> key = RowValues(row);
    auto [begin, end] = primary_.equal_range(Hash(key));
    for (auto it = begin; it != end; ++it) {
      if (it->second == row) {
        primary_.erase(it);
        break;
      }
    }
    alive_[row] = 0;
    counts_[row] = Count::Zero();
    free_.push_back(row);
  }

  void IndexInsert(Index& index, uint32_t row) {
    std::span<const Value> stored = RowValues(row);
    std::vector<Value> projected;
    for (int c : index.cols) {
      projected.push_back(stored[static_cast<size_t>(c)]);
    }
    index.map.emplace(Hash({projected.data(), projected.size()}), row);
  }

  size_t arity_;
  std::vector<Value> data_;
  std::vector<Count> counts_;
  std::vector<uint8_t> alive_;
  std::vector<uint32_t> free_;
  std::unordered_multimap<uint64_t, uint32_t> primary_;
  std::vector<Index> secondary_;
};

struct IndexMicroResult {
  long rows = 0;
  long ops = 0;
  double flat_ns = 0;
  double multimap_ns = 0;
};

// The repair op mix: point adjustments and upserts (the source delta
// apply), point reads of input tables, and secondary-index group scans
// (the affected-group re-aggregation). Both layouts see the identical
// deterministic stream; the checksum pins identical behavior.
template <typename Table>
double TimeIndexOps(Table& table, int lookup_index, long ops, uint64_t seed,
                    long domain, uint64_t* checksum) {
  Rng rng(seed);
  std::vector<uint32_t> rows;
  std::vector<Value> key(2);
  WallTimer timer;
  for (long i = 0; i < ops; ++i) {
    key[0] = static_cast<Value>(rng.NextBounded(domain));
    key[1] = static_cast<Value>(rng.NextBounded(domain));
    switch (rng.NextBounded(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {
        bool add = rng.NextBounded(2) == 0;
        *checksum += table.Adjust(key, Count::One(), add) ? 1 : 0;
        break;
      }
      case 4:
      case 5: {
        *checksum += table.Get(key).ToUint64Saturated();
        break;
      }
      case 6: {
        table.Set(key, Count(rng.NextBounded(3)));
        break;
      }
      default: {
        rows.clear();
        table.LookupIndex(lookup_index, {key.data(), 1}, &rows);
        *checksum += rows.size();
        break;
      }
    }
  }
  return timer.ElapsedSeconds() * 1e9 / static_cast<double>(ops);
}

IndexMicroResult RunIndexMicro(long rows, long ops, long domain, long reps) {
  CountedRelation seed_rel({1, 2});
  Rng fill(7151);
  for (long i = 0; i < rows; ++i) {
    seed_rel.AppendRow({static_cast<Value>(fill.NextBounded(domain)),
                        static_cast<Value>(fill.NextBounded(domain))},
                       Count(1 + fill.NextBounded(3)));
  }
  seed_rel.Normalize();

  IndexMicroResult out;
  out.rows = rows;
  out.ops = ops;
  std::vector<double> flat_ns;
  std::vector<double> multimap_ns;
  uint64_t flat_sum = 0;
  uint64_t multimap_sum = 0;
  for (long rep = 0; rep < reps; ++rep) {
    const uint64_t seed = 90210 + static_cast<uint64_t>(rep);
    {
      DynTable table(AttributeSet{1, 2});
      table.Load(seed_rel);
      int idx = table.AddIndex({0});
      flat_ns.push_back(
          TimeIndexOps(table, idx, ops, seed, domain, &flat_sum));
    }
    {
      LegacyMultimapTable table(2);
      table.Load(seed_rel);
      int idx = table.AddIndex({0});
      multimap_ns.push_back(
          TimeIndexOps(table, idx, ops, seed, domain, &multimap_sum));
    }
  }
  // Identical op stream, identical semantics: any divergence is a bug in
  // the flat layout.
  LSENS_CHECK(flat_sum == multimap_sum);
  out.flat_ns = bench::Median(flat_ns);
  out.multimap_ns = bench::Median(multimap_ns);
  return out;
}

bool WriteJson(const std::vector<StreamResult>& results,
               const IndexMicroResult& micro) {
  const char* path = std::getenv("LSENS_BENCH_INC_JSON");
  if (path == nullptr) path = "BENCH_incremental.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return false;
  }
  std::fprintf(f, "[\n");
  for (const StreamResult& r : results) {
    std::fprintf(
        f,
        "  {\"name\": \"%s\", \"rows\": %zu, \"updates\": %ld, "
        "\"threads\": %ld, "
        "\"repair_ns_per_update\": %.1f, \"full_ns\": %.1f, "
        "\"speedup\": %.2f, \"repair_rows_per_update\": %.1f, "
        "\"full_rows\": %.1f, \"row_ratio\": %.6f, \"repairs\": %" PRIu64
        ", \"fallbacks\": %" PRIu64 ", \"fallback_unsupported\": %" PRIu64
        "},\n",
        r.name.c_str(), r.rows, r.updates, r.threads, r.repair_ns, r.full_ns,
        r.repair_ns > 0 ? r.full_ns / r.repair_ns : 0.0, r.repair_rows,
        r.full_rows, r.full_rows > 0 ? r.repair_rows / r.full_rows : 0.0,
        r.repairs, r.fallbacks, r.fallback_unsupported);
  }
  std::fprintf(f,
               "  {\"name\": \"repair_index_micro\", \"rows\": %ld, "
               "\"ops\": %ld, \"flat_ns_per_op\": %.2f, "
               "\"multimap_ns_per_op\": %.2f, \"speedup\": %.2f}\n",
               micro.rows, micro.ops, micro.flat_ns, micro.multimap_ns,
               micro.flat_ns > 0 ? micro.multimap_ns / micro.flat_ns : 0.0);
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu entries)\n", path, results.size() + 1);
  return true;
}

int Run() {
  const long rows = bench::EnvInt("LSENS_INC_ROWS", 100000);
  const long tri_rows =
      bench::EnvInt("LSENS_INC_TRI_ROWS", std::max<long>(1000, rows / 20));
  const long domain = bench::EnvInt("LSENS_INC_DOMAIN", 1000);
  const long updates = bench::EnvInt("LSENS_INC_UPDATES", 200);
  const long check_every =
      std::max<long>(1, bench::EnvInt("LSENS_INC_CHECK_EVERY", 25));
  const double tpch_scale = bench::EnvScales("LSENS_INC_TPCH_SCALE",
                                             {0.02})[0];
  const double max_row_ratio =
      bench::EnvScales("LSENS_INC_MAX_ROW_RATIO", {0.05})[0];
  std::vector<long> threads_axis;
  for (double t : bench::EnvScales("LSENS_THREADS", {0, 2})) {
    threads_axis.push_back(static_cast<long>(t));
  }
  const long index_rows = bench::EnvInt("LSENS_INC_INDEX_ROWS", 100000);
  const long index_ops = bench::EnvInt("LSENS_INC_INDEX_OPS", 300000);
  const long index_domain = bench::EnvInt("LSENS_INC_INDEX_DOMAIN", 400);
  const long reps = std::max<long>(1, bench::EnvInt("LSENS_REPS", 3));

  bench::Banner("BENCH incremental",
                "sensitivity maintenance under randomized insert/delete"
                " streams: cache repair (serial + sharded) vs from-scratch"
                " recompute, plus the flat-vs-multimap repair-index"
                " microbench");
  std::vector<StreamResult> results;

  for (long t : threads_axis) {
    // 4-atom path query (Algorithm 1 / path repair mode).
    Rng rng(20200712);
    Database db = MakeSyntheticDb(
        rng, {"P1", "P2", "P3", "P4"},
        {{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "e"}}, rows, domain);
    ConjunctiveQuery q;
    q.AddAtom(db, "P1", {"A", "B"});
    q.AddAtom(db, "P2", {"B", "C"});
    q.AddAtom(db, "P3", {"C", "D"});
    q.AddAtom(db, "P4", {"D", "E"});
    results.push_back(ReplayStream("path4", q, db, {}, updates, check_every,
                                   t, Rng(417001)));
    PrintResult(results.back());
  }
  for (long t : threads_axis) {
    // Caterpillar join tree with distinct links per node: tree repair mode
    // (the TSensOverGhd ⊥/⊤ tables, not the path chains).
    Rng rng(20200713);
    Database db = MakeSyntheticDb(
        rng, {"T1", "T2", "T3", "T4"},
        {{"a", "b"}, {"b", "c", "f"}, {"c", "d"}, {"f", "g"}}, rows, domain);
    ConjunctiveQuery q;
    q.AddAtom(db, "T1", {"A", "B"});
    q.AddAtom(db, "T2", {"B", "C", "F"});
    q.AddAtom(db, "T3", {"C", "D"});
    q.AddAtom(db, "T4", {"F", "G"});
    results.push_back(ReplayStream("acyclic", q, db, {}, updates,
                                   check_every, t, Rng(417002)));
    PrintResult(results.back());
  }
  for (long t : threads_axis) {
    // TPC-H q1 (the paper's path workload) at the configured scale.
    TpchOptions topt;
    topt.scale = tpch_scale;
    Database db = MakeTpchDatabase(topt);
    WorkloadQuery wq = MakeTpchQ1(db);
    TSensComputeOptions options;
    options.skip_atoms = wq.skip_atoms;
    results.push_back(ReplayStream("tpch-q1", wq.query, db, options, updates,
                                   check_every, t, Rng(417003)));
    PrintResult(results.back());
  }
  for (long t : threads_axis) {
    // Triangle (cyclic): repaired through the searched GHD's bag tables.
    // One bag joins two atoms, so a full compute materializes a quadratic
    // bag join — smaller relations keep the baseline affordable.
    Rng rng(20200714);
    Database db = MakeSyntheticDb(
        rng, {"C1", "C2", "C3"}, {{"a", "b"}, {"b", "c"}, {"c", "a"}},
        tri_rows, domain);
    ConjunctiveQuery q;
    q.AddAtom(db, "C1", {"A", "B"});
    q.AddAtom(db, "C2", {"B", "C"});
    q.AddAtom(db, "C3", {"C", "A"});
    results.push_back(ReplayStream("triangle", q, db, {}, updates,
                                   check_every, t, Rng(417004)));
    PrintResult(results.back());
  }
  for (long t : threads_axis) {
    // Disconnected forest (two 2-atom trees): repairs in one tree
    // re-multiply the other tree's scale factor from its maintained total.
    Rng rng(20200715);
    Database db = MakeSyntheticDb(
        rng, {"F1", "F2", "F3", "F4"},
        {{"a", "b"}, {"b", "c"}, {"x", "y"}, {"y", "z"}}, rows, domain);
    ConjunctiveQuery q;
    q.AddAtom(db, "F1", {"A", "B"});
    q.AddAtom(db, "F2", {"B", "C"});
    q.AddAtom(db, "F3", {"X", "Y"});
    q.AddAtom(db, "F4", {"Y", "Z"});
    results.push_back(ReplayStream("disconnected", q, db, {}, updates,
                                   check_every, t, Rng(417005)));
    PrintResult(results.back());
  }

  // Cross-thread-count invariant: identical streams must end on identical
  // sensitivities regardless of repair sharding.
  for (const StreamResult& r : results) {
    for (const StreamResult& o : results) {
      if (r.name == o.name) LSENS_CHECK(r.final_ls == o.final_ls);
    }
  }

  IndexMicroResult micro =
      RunIndexMicro(index_rows, index_ops, index_domain, reps);
  std::printf(
      "repair-index micro: %ld rows, %ld ops  flat %7.1f ns/op  "
      "multimap %7.1f ns/op  speedup %.2fx\n",
      micro.rows, micro.ops, micro.flat_ns, micro.multimap_ns,
      micro.flat_ns > 0 ? micro.multimap_ns / micro.flat_ns : 0.0);

  bool ok = WriteJson(results, micro);

  // The pinned asymptotic-work gate: a repairable stream whose repairs
  // touch more than max_row_ratio of the full-recompute rows is a
  // regression in the delta-repair machinery.
  for (const StreamResult& r : results) {
    if (r.repairs == 0 || r.full_rows <= 0) continue;
    const double ratio = r.repair_rows / r.full_rows;
    if (ratio > max_row_ratio) {
      std::fprintf(stderr,
                   "FAIL: %s (threads %ld) repair touches %.4f%% of full"
                   " rows, over the pinned %.4f%% ceiling\n",
                   r.name.c_str(), r.threads, 100.0 * ratio,
                   100.0 * max_row_ratio);
      ok = false;
    }
  }

  // Every bench shape — path, tree, TPC-H, cyclic, disconnected — has a
  // delta rule; an unsupported-shape fallback on any stream is a
  // regression in plan construction.
  for (const StreamResult& r : results) {
    if (r.fallback_unsupported != 0) {
      std::fprintf(stderr,
                   "FAIL: %s (threads %ld) hit %" PRIu64
                   " unsupported-shape fallbacks; every bench shape must"
                   " repair\n",
                   r.name.c_str(), r.threads, r.fallback_unsupported);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace lsens

int main() { return lsens::Run(); }
