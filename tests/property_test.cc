// Property-based tests: TSens must agree exactly with the naive
// re-evaluation oracle (Theorem 3.1) on randomized queries and instances,
// and the execution engine must agree with brute-force join counting.

#include <gtest/gtest.h>

#include "query/eval.h"
#include "query/ghd.h"
#include "query/join_tree.h"
#include "sensitivity/naive.h"
#include "sensitivity/tsens.h"
#include "sensitivity/tsens_engine.h"
#include "sensitivity/tsens_path.h"
#include "test_util.h"

namespace lsens {
namespace {

using testing::MakeRandomAcyclicInstance;
using testing::MakeRandomTriangleInstance;
using testing::RandomQuerySpec;

class AcyclicPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AcyclicPropertyTest, CountMatchesBruteForce) {
  Rng rng(GetParam());
  RandomQuerySpec spec;
  for (int trial = 0; trial < 25; ++trial) {
    auto ex = MakeRandomAcyclicInstance(rng, spec);
    auto fast = CountQuery(ex.query, ex.db);
    auto brute = BruteForceCount(ex.query, ex.db);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(brute.ok());
    EXPECT_EQ(*fast, *brute) << ex.query.ToString(ex.db.attrs());
  }
}

TEST_P(AcyclicPropertyTest, TSensMatchesNaiveOracle) {
  Rng rng(GetParam() ^ 0x5eedULL);
  RandomQuerySpec spec;
  for (int trial = 0; trial < 20; ++trial) {
    auto ex = MakeRandomAcyclicInstance(rng, spec);
    auto tsens = ComputeLocalSensitivity(ex.query, ex.db);
    ASSERT_TRUE(tsens.ok()) << tsens.status().ToString();
    auto naive = NaiveLocalSensitivity(ex.query, ex.db, {});
    ASSERT_TRUE(naive.ok()) << naive.status().ToString();
    ASSERT_EQ(tsens->local_sensitivity, naive->local_sensitivity)
        << "trial " << trial << ": " << ex.query.ToString(ex.db.attrs());

    // The reported most sensitive tuple must actually achieve LS.
    if (!tsens->local_sensitivity.IsZero()) {
      auto tuple = MaterializeMostSensitiveTuple(*tsens, ex.query);
      if (tuple.ok()) {
        auto delta = NaiveTupleSensitivity(ex.query, ex.db, tuple->first,
                                           tuple->second);
        ASSERT_TRUE(delta.ok());
        EXPECT_EQ(*delta, tsens->local_sensitivity)
            << ex.query.ToString(ex.db.attrs());
      }
    }
  }
}

TEST_P(AcyclicPropertyTest, PerTupleSensitivitiesMatchOracle) {
  Rng rng(GetParam() ^ 0x7a91ULL);
  RandomQuerySpec spec;
  spec.max_atoms = 4;
  spec.max_rows = 5;
  for (int trial = 0; trial < 8; ++trial) {
    auto ex = MakeRandomAcyclicInstance(rng, spec);
    TSensComputeOptions opts;
    opts.keep_tables = true;
    auto tsens = ComputeLocalSensitivity(ex.query, ex.db, opts);
    ASSERT_TRUE(tsens.ok());
    for (int atom = 0; atom < ex.query.num_atoms(); ++atom) {
      auto sens = TupleSensitivities(*tsens, ex.query, ex.db, atom);
      ASSERT_TRUE(sens.ok());
      // Snapshot rows first: NaiveTupleSensitivity restores contents but
      // may permute row order.
      const Relation* rel = ex.db.Find(ex.query.atom(atom).relation);
      std::vector<std::vector<Value>> rows;
      for (size_t r = 0; r < rel->NumRows(); ++r) {
        rows.push_back(rel->Row(r));
      }
      for (size_t row = 0; row < rows.size(); ++row) {
        auto naive = NaiveTupleSensitivity(ex.query, ex.db, atom, rows[row]);
        ASSERT_TRUE(naive.ok());
        EXPECT_EQ((*sens)[row], *naive)
            << ex.query.ToString(ex.db.attrs()) << " atom " << atom
            << " row " << row;
      }
    }
  }
}

TEST_P(AcyclicPropertyTest, TopKIsAlwaysAnUpperBound) {
  Rng rng(GetParam() ^ 0x70b0ULL);
  RandomQuerySpec spec;
  for (int trial = 0; trial < 15; ++trial) {
    auto ex = MakeRandomAcyclicInstance(rng, spec);
    auto exact = ComputeLocalSensitivity(ex.query, ex.db);
    ASSERT_TRUE(exact.ok());
    for (size_t k : {1, 2, 3}) {
      TSensComputeOptions opts;
      opts.top_k = k;
      auto approx = ComputeLocalSensitivity(ex.query, ex.db, opts);
      ASSERT_TRUE(approx.ok());
      EXPECT_GE(approx->local_sensitivity, exact->local_sensitivity)
          << "k=" << k << " " << ex.query.ToString(ex.db.attrs());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcyclicPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class PathPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PathPropertyTest, PathAlgorithmMatchesEngineAndOracle) {
  Rng rng(GetParam() * 7919);
  for (int trial = 0; trial < 12; ++trial) {
    // Random path query R0(x0,x1), R1(x1,x2), ..., with random data.
    int m = static_cast<int>(rng.NextInRange(2, 7));
    testing::PaperExample ex;
    for (int i = 0; i < m; ++i) {
      std::vector<std::string> vars{"x" + std::to_string(i),
                                    "x" + std::to_string(i + 1)};
      auto* rel = ex.db.AddRelation("R" + std::to_string(i), vars);
      int rows = static_cast<int>(rng.NextInRange(0, 7));
      for (int r = 0; r < rows; ++r) {
        rel->AppendRow({static_cast<Value>(rng.NextBounded(3)),
                        static_cast<Value>(rng.NextBounded(3))});
      }
      ex.query.AddAtom(ex.db, "R" + std::to_string(i), vars);
    }

    std::vector<int> order = PathOrder(ex.query);
    ASSERT_EQ(order.size(), static_cast<size_t>(m));
    auto path = TSensPath(ex.query, order, ex.db);
    ASSERT_TRUE(path.ok()) << path.status().ToString();

    auto forest = BuildJoinForestGYO(ex.query);
    ASSERT_TRUE(forest.ok());
    auto engine =
        TSensOverGhd(ex.query, MakeTrivialGhd(ex.query, *forest), ex.db);
    ASSERT_TRUE(engine.ok());
    EXPECT_EQ(path->local_sensitivity, engine->local_sensitivity);
    for (int i = 0; i < m; ++i) {
      EXPECT_EQ(path->atoms[i].max_sensitivity,
                engine->atoms[i].max_sensitivity)
          << "atom " << i;
    }

    auto naive = NaiveLocalSensitivity(ex.query, ex.db, {});
    ASSERT_TRUE(naive.ok());
    EXPECT_EQ(path->local_sensitivity, naive->local_sensitivity);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

class TrianglePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrianglePropertyTest, GhdTSensMatchesNaive) {
  Rng rng(GetParam() * 104729);
  for (int trial = 0; trial < 10; ++trial) {
    auto ex = MakeRandomTriangleInstance(rng, /*max_rows=*/8,
                                         /*domain_size=*/3);
    auto ghd = BuildGhd(ex.query, {{0, 1}, {2}});
    ASSERT_TRUE(ghd.ok());
    TSensComputeOptions opts;
    opts.ghd = &*ghd;
    auto tsens = ComputeLocalSensitivity(ex.query, ex.db, opts);
    ASSERT_TRUE(tsens.ok()) << tsens.status().ToString();

    NaiveOptions nopts;
    nopts.ghd = &*ghd;
    auto naive = NaiveLocalSensitivity(ex.query, ex.db, nopts);
    ASSERT_TRUE(naive.ok());
    EXPECT_EQ(tsens->local_sensitivity, naive->local_sensitivity)
        << "trial " << trial;

    // GHD evaluation count vs brute force.
    auto fast = CountGhd(ex.query, *ghd, ex.db);
    auto brute = BruteForceCount(ex.query, ex.db);
    ASSERT_TRUE(fast.ok());
    EXPECT_EQ(*fast, *brute);
  }
}

TEST_P(TrianglePropertyTest, AlternativeGhdBagsAgree) {
  Rng rng(GetParam() * 31337 + 5);
  for (int trial = 0; trial < 6; ++trial) {
    auto ex = MakeRandomTriangleInstance(rng, 6, 3);
    Count ls[3];
    int which = 0;
    for (auto bags : {std::vector<std::vector<int>>{{0, 1}, {2}},
                      std::vector<std::vector<int>>{{1, 2}, {0}},
                      std::vector<std::vector<int>>{{0, 2}, {1}}}) {
      auto ghd = BuildGhd(ex.query, bags);
      ASSERT_TRUE(ghd.ok());
      TSensComputeOptions opts;
      opts.ghd = &*ghd;
      auto tsens = ComputeLocalSensitivity(ex.query, ex.db, opts);
      ASSERT_TRUE(tsens.ok());
      ls[which++] = tsens->local_sensitivity;
    }
    EXPECT_EQ(ls[0], ls[1]);
    EXPECT_EQ(ls[1], ls[2]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrianglePropertyTest,
                         ::testing::Values(1, 2, 3, 4));

class HardAcyclicPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HardAcyclicPropertyTest, StarWithCyclicMultiplicityJoinMatchesOracle) {
  // §5.2's worst case for Algorithm 2: Q :- R0(A,B,C), R1(A,B), R2(B,C),
  // R3(C,A) is acyclic, but R0's multiplicity table is the triangle join
  // of the three botjoins (size up to n^{3/2} by the AGM bound). Randomized
  // instances must still match the re-evaluation oracle exactly.
  Rng rng(GetParam() * 7001);
  for (int trial = 0; trial < 8; ++trial) {
    testing::PaperExample ex;
    auto* r0 = ex.db.AddRelation("R0", {"A", "B", "C"});
    auto* r1 = ex.db.AddRelation("R1", {"A", "B"});
    auto* r2 = ex.db.AddRelation("R2", {"B", "C"});
    auto* r3 = ex.db.AddRelation("R3", {"C", "A"});
    auto fill = [&](Relation* rel, uint64_t max_rows) {
      uint64_t rows = rng.NextBounded(max_rows + 1);
      std::vector<Value> row(rel->arity());
      for (uint64_t i = 0; i < rows; ++i) {
        for (auto& v : row) v = static_cast<Value>(rng.NextBounded(3));
        rel->AppendRow(row);
      }
    };
    fill(r0, 6);
    fill(r1, 6);
    fill(r2, 6);
    fill(r3, 6);
    ex.query.AddAtom(ex.db, "R0", {"A", "B", "C"});
    ex.query.AddAtom(ex.db, "R1", {"A", "B"});
    ex.query.AddAtom(ex.db, "R2", {"B", "C"});
    ex.query.AddAtom(ex.db, "R3", {"C", "A"});

    ASSERT_TRUE(IsAcyclic(ex.query));
    auto tsens = ComputeLocalSensitivity(ex.query, ex.db);
    ASSERT_TRUE(tsens.ok()) << tsens.status().ToString();
    auto naive = NaiveLocalSensitivity(ex.query, ex.db, {});
    ASSERT_TRUE(naive.ok());
    EXPECT_EQ(tsens->local_sensitivity, naive->local_sensitivity)
        << "trial " << trial;

    // Per-tuple sensitivities through the cyclic multiplicity join.
    TSensComputeOptions topts;
    topts.keep_tables = true;
    auto with_tables = ComputeLocalSensitivity(ex.query, ex.db, topts);
    ASSERT_TRUE(with_tables.ok());
    auto sens = TupleSensitivities(*with_tables, ex.query, ex.db, 0);
    ASSERT_TRUE(sens.ok());
    std::vector<std::vector<Value>> rows;
    for (size_t r = 0; r < r0->NumRows(); ++r) {
      rows.push_back(r0->Row(r));
    }
    for (size_t r = 0; r < rows.size(); ++r) {
      auto oracle = NaiveTupleSensitivity(ex.query, ex.db, 0, rows[r]);
      ASSERT_TRUE(oracle.ok());
      EXPECT_EQ((*sens)[r], *oracle) << "row " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HardAcyclicPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(JoinAlgorithmPropertyTest, SortMergeAndHashAgreeOnQueries) {
  Rng rng(777);
  RandomQuerySpec spec;
  for (int trial = 0; trial < 15; ++trial) {
    auto ex = MakeRandomAcyclicInstance(rng, spec);
    TSensComputeOptions hash_opts;
    hash_opts.join.algorithm = JoinAlgorithm::kHash;
    TSensComputeOptions merge_opts;
    merge_opts.join.algorithm = JoinAlgorithm::kSortMerge;
    auto a = ComputeLocalSensitivity(ex.query, ex.db, hash_opts);
    auto b = ComputeLocalSensitivity(ex.query, ex.db, merge_opts);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->local_sensitivity, b->local_sensitivity);
  }
}

}  // namespace
}  // namespace lsens
