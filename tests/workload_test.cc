#include <gtest/gtest.h>

#include <map>
#include <set>

#include "query/eval.h"
#include "query/join_tree.h"
#include "sensitivity/tsens.h"
#include "workload/queries.h"
#include "workload/social.h"
#include "workload/tpch.h"

namespace lsens {
namespace {

TpchOptions SmallTpch() {
  TpchOptions o;
  o.scale = 0.0005;
  return o;
}

TEST(TpchTest, SizesFollowStandardRatios) {
  TpchCardinalities c = TpchSizes(1.0);
  EXPECT_EQ(c.region, 5u);
  EXPECT_EQ(c.nation, 25u);
  EXPECT_EQ(c.supplier, 10'000u);
  EXPECT_EQ(c.customer, 150'000u);
  EXPECT_EQ(c.orders, 1'500'000u);
  EXPECT_EQ(c.part, 200'000u);
  EXPECT_EQ(c.partsupp, 800'000u);
  EXPECT_EQ(c.lineitem, 6'000'000u);
  // Everything stays >= 1 at tiny scales.
  TpchCardinalities tiny = TpchSizes(1e-6);
  EXPECT_GE(tiny.supplier, 1u);
  EXPECT_GE(tiny.lineitem, 1u);
}

TEST(TpchTest, GeneratedSizesMatch) {
  Database db = MakeTpchDatabase(SmallTpch());
  TpchCardinalities c = TpchSizes(SmallTpch().scale);
  EXPECT_EQ(db.Find("Region")->NumRows(), c.region);
  EXPECT_EQ(db.Find("Nation")->NumRows(), c.nation);
  EXPECT_EQ(db.Find("Supplier")->NumRows(), c.supplier);
  EXPECT_EQ(db.Find("Customer")->NumRows(), c.customer);
  EXPECT_EQ(db.Find("Orders")->NumRows(), c.orders);
  EXPECT_EQ(db.Find("Part")->NumRows(), c.part);
  EXPECT_EQ(db.Find("Partsupp")->NumRows(), c.partsupp);
  EXPECT_LE(db.Find("Lineitem")->NumRows(), c.lineitem);
  EXPECT_GE(db.Find("Lineitem")->NumRows(), c.lineitem * 9 / 10);
}

TEST(TpchTest, ForeignKeysAreComplete) {
  Database db = MakeTpchDatabase(SmallTpch());
  auto collect = [&](const char* rel, size_t col) {
    std::set<Value> vals;
    const Relation* r = db.Find(rel);
    for (size_t i = 0; i < r->NumRows(); ++i) vals.insert(r->At(i, col));
    return vals;
  };
  std::set<Value> regions = collect("Region", 0);
  std::set<Value> nations = collect("Nation", 1);
  std::set<Value> customers = collect("Customer", 1);
  std::set<Value> orders = collect("Orders", 1);
  std::set<Value> suppliers = collect("Supplier", 1);
  std::set<Value> parts = collect("Part", 0);

  const Relation* nation = db.Find("Nation");
  for (size_t i = 0; i < nation->NumRows(); ++i) {
    EXPECT_TRUE(regions.count(nation->At(i, 0)));
  }
  const Relation* customer = db.Find("Customer");
  for (size_t i = 0; i < customer->NumRows(); ++i) {
    EXPECT_TRUE(nations.count(customer->At(i, 0)));
  }
  const Relation* ord = db.Find("Orders");
  for (size_t i = 0; i < ord->NumRows(); ++i) {
    EXPECT_TRUE(customers.count(ord->At(i, 0)));
  }
  std::set<std::pair<Value, Value>> partsupp_pairs;
  const Relation* ps = db.Find("Partsupp");
  for (size_t i = 0; i < ps->NumRows(); ++i) {
    EXPECT_TRUE(suppliers.count(ps->At(i, 0)));
    EXPECT_TRUE(parts.count(ps->At(i, 1)));
    partsupp_pairs.insert({ps->At(i, 0), ps->At(i, 1)});
  }
  const Relation* li = db.Find("Lineitem");
  for (size_t i = 0; i < li->NumRows(); ++i) {
    EXPECT_TRUE(orders.count(li->At(i, 0)));
    EXPECT_TRUE(partsupp_pairs.count({li->At(i, 1), li->At(i, 2)}));
  }
}

TEST(TpchTest, DeterministicAcrossCalls) {
  Database a = MakeTpchDatabase(SmallTpch());
  Database b = MakeTpchDatabase(SmallTpch());
  for (const auto& name : a.relation_names()) {
    EXPECT_TRUE(a.Find(name)->IdenticalTo(*b.Find(name))) << name;
  }
}

TEST(TpchQueriesTest, Q1IsAPathQueryAndCountsLineitems) {
  Database db = MakeTpchDatabase(SmallTpch());
  WorkloadQuery q1 = MakeTpchQ1(db);
  ASSERT_TRUE(q1.query.Validate(db).ok());
  EXPECT_FALSE(PathOrder(q1.query).empty());
  // Complete FK chains: every lineitem contributes exactly one output.
  auto count = CountQuery(q1.query, db);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->ToUint64Saturated(), db.Find("Lineitem")->NumRows());
}

TEST(TpchQueriesTest, Q2IsAcyclicAndCountsLineitems) {
  Database db = MakeTpchDatabase(SmallTpch());
  WorkloadQuery q2 = MakeTpchQ2(db);
  ASSERT_TRUE(q2.query.Validate(db).ok());
  EXPECT_TRUE(IsAcyclic(q2.query));
  EXPECT_TRUE(PathOrder(q2.query).empty());
  // Each lineitem joins exactly one Partsupp pair, part, and supplier.
  auto count = CountQuery(q2.query, db);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->ToUint64Saturated(), db.Find("Lineitem")->NumRows());
}

TEST(TpchQueriesTest, Q3IsCyclicAndMatchesDirectComputation) {
  Database db = MakeTpchDatabase(SmallTpch());
  WorkloadQuery q3 = MakeTpchQ3(db);
  ASSERT_TRUE(q3.query.Validate(db).ok());
  EXPECT_FALSE(IsAcyclic(q3.query));
  ASSERT_TRUE(q3.ghd.has_value());
  EXPECT_EQ(q3.ghd->Width(), 3);

  // Direct computation: count lineitems whose order's customer nation
  // equals the supplier's nation (times the 4 FK-complete leaf joins = 1).
  std::map<Value, Value> cust_nation;   // CK -> NK
  std::map<Value, Value> order_cust;    // OK -> CK
  std::map<Value, Value> supp_nation;   // SK -> NK
  const Relation* c = db.Find("Customer");
  for (size_t i = 0; i < c->NumRows(); ++i) {
    cust_nation[c->At(i, 1)] = c->At(i, 0);
  }
  const Relation* o = db.Find("Orders");
  for (size_t i = 0; i < o->NumRows(); ++i) {
    order_cust[o->At(i, 1)] = o->At(i, 0);
  }
  const Relation* s = db.Find("Supplier");
  for (size_t i = 0; i < s->NumRows(); ++i) {
    supp_nation[s->At(i, 1)] = s->At(i, 0);
  }
  uint64_t expected = 0;
  const Relation* li = db.Find("Lineitem");
  for (size_t i = 0; i < li->NumRows(); ++i) {
    Value nk_cust = cust_nation[order_cust[li->At(i, 0)]];
    Value nk_supp = supp_nation[li->At(i, 1)];
    expected += (nk_cust == nk_supp);
  }

  auto count = CountGhd(q3.query, *q3.ghd, db);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->ToUint64Saturated(), expected);
}

TEST(SocialTest, GeneratedShapeMatchesTarget) {
  SocialOptions opts;
  Database db = MakeSocialDatabase(opts);
  size_t total_edges = 0;
  for (int t = 1; t <= 4; ++t) {
    const Relation* r = db.Find("R" + std::to_string(t));
    ASSERT_NE(r, nullptr);
    total_edges += r->NumRows();
    // Bidirected: (x,y) present iff (y,x) present.
    std::set<std::pair<Value, Value>> edges;
    for (size_t i = 0; i < r->NumRows(); ++i) {
      EXPECT_GE(r->At(i, 0), 0);
      EXPECT_LT(r->At(i, 0), opts.num_nodes);
      edges.insert({r->At(i, 0), r->At(i, 1)});
    }
    for (const auto& [x, y] : edges) {
      EXPECT_TRUE(edges.count({y, x})) << "missing reverse edge in R" << t;
    }
  }
  // Within 40% of the paper's 6384 directed edges.
  EXPECT_GT(total_edges, 3800u);
  EXPECT_LT(total_edges, 9000u);
  EXPECT_GT(db.Find("RT")->NumRows(), 0u);
}

TEST(SocialTest, TriangleTableConsistentWithR4) {
  Database db = MakeSocialDatabase(SocialOptions{});
  const Relation* r4 = db.Find("R4");
  std::set<std::pair<Value, Value>> edges;
  for (size_t i = 0; i < r4->NumRows(); ++i) {
    edges.insert({r4->At(i, 0), r4->At(i, 1)});
  }
  const Relation* rt = db.Find("RT");
  for (size_t i = 0; i < rt->NumRows(); ++i) {
    Value x = rt->At(i, 0), y = rt->At(i, 1), z = rt->At(i, 2);
    EXPECT_TRUE(edges.count({x, y}));
    EXPECT_TRUE(edges.count({y, z}));
    EXPECT_TRUE(edges.count({z, x}));
  }
}

TEST(SocialTest, Deterministic) {
  Database a = MakeSocialDatabase(SocialOptions{});
  Database b = MakeSocialDatabase(SocialOptions{});
  for (const auto& name : a.relation_names()) {
    EXPECT_TRUE(a.Find(name)->IdenticalTo(*b.Find(name))) << name;
  }
}

TEST(FacebookQueriesTest, AllValidateAndMatchBruteForceOnSmallGraph) {
  SocialOptions opts;
  opts.num_nodes = 30;
  opts.num_circles = 40;
  opts.target_directed_edges = 300;
  Database db = MakeSocialDatabase(opts);

  for (auto make : {MakeFacebookTriangle, MakeFacebookPath, MakeFacebookCycle,
                    MakeFacebookStar}) {
    WorkloadQuery w = make(db);
    ASSERT_TRUE(w.query.Validate(db).ok()) << w.name;
    auto fast = CountQuery(w.query, db, {}, w.ghd_ptr());
    auto brute = BruteForceCount(w.query, db);
    ASSERT_TRUE(fast.ok()) << w.name << ": " << fast.status().ToString();
    ASSERT_TRUE(brute.ok()) << w.name;
    EXPECT_EQ(*fast, *brute) << w.name;
  }
}

TEST(FacebookQueriesTest, StructuralShapes) {
  Database db = MakeSocialDatabase(SocialOptions{});
  EXPECT_FALSE(IsAcyclic(MakeFacebookTriangle(db).query));
  EXPECT_FALSE(PathOrder(MakeFacebookPath(db).query).empty());
  EXPECT_FALSE(IsAcyclic(MakeFacebookCycle(db).query));
  EXPECT_TRUE(IsAcyclic(MakeFacebookStar(db).query));
}

TEST(TpchQueriesTest, StructuralAnalysis) {
  Database db = MakeTpchDatabase(SmallTpch());
  WorkloadQuery q1 = MakeTpchQ1(db);
  auto f1 = BuildJoinForestGYO(q1.query);
  ASSERT_TRUE(f1.ok());
  auto a1 = AnalyzeJoinTree(q1.query, *f1);
  EXPECT_TRUE(a1.path_query);
  EXPECT_TRUE(a1.doubly_acyclic);

  WorkloadQuery q2 = MakeTpchQ2(db);
  auto f2 = BuildJoinForestGYO(q2.query);
  ASSERT_TRUE(f2.ok());
  auto a2 = AnalyzeJoinTree(q2.query, *f2);
  EXPECT_FALSE(a2.path_query);  // SK and PK each occur in 3 atoms
}

TEST(TpchQueriesTest, ScalingIsMonotone) {
  TpchOptions small;
  small.scale = 0.0002;
  TpchOptions larger;
  larger.scale = 0.0008;
  Database a = MakeTpchDatabase(small);
  Database b = MakeTpchDatabase(larger);
  for (const auto& name : a.relation_names()) {
    EXPECT_LE(a.Find(name)->NumRows(), b.Find(name)->NumRows()) << name;
  }
}

TEST(SocialTest, OptionsControlGraphSize) {
  SocialOptions small;
  small.num_nodes = 30;
  small.num_circles = 20;
  small.target_directed_edges = 100;
  Database db = MakeSocialDatabase(small);
  size_t edges = 0;
  for (int t = 1; t <= 4; ++t) {
    edges += db.Find("R" + std::to_string(t))->NumRows();
  }
  EXPECT_LT(edges, 400u);
  for (int t = 1; t <= 4; ++t) {
    const Relation* r = db.Find("R" + std::to_string(t));
    for (size_t i = 0; i < r->NumRows(); ++i) {
      EXPECT_LT(r->At(i, 0), small.num_nodes);
      EXPECT_LT(r->At(i, 1), small.num_nodes);
    }
  }
}

TEST(WorkloadQueriesTest, AllSevenBuild) {
  Database tpch = MakeTpchDatabase(SmallTpch());
  Database social = MakeSocialDatabase(SocialOptions{});
  auto all = MakeAllWorkloadQueries(tpch, social);
  ASSERT_EQ(all.size(), 7u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(all[i].query.Validate(tpch).ok()) << all[i].name;
    EXPECT_GE(all[i].private_atom, 0);
    EXPECT_GT(all[i].ell, 0u);
  }
  for (size_t i = 3; i < 7; ++i) {
    EXPECT_TRUE(all[i].query.Validate(social).ok()) << all[i].name;
  }
}

TEST(WorkloadSensitivityTest, TSensRunsOnAllSevenQueries) {
  TpchOptions topts;
  topts.scale = 0.001;
  Database tpch = MakeTpchDatabase(topts);
  SocialOptions sopts;
  sopts.num_nodes = 60;
  sopts.num_circles = 80;
  sopts.target_directed_edges = 800;
  Database social = MakeSocialDatabase(sopts);
  for (auto& w : MakeAllWorkloadQueries(tpch, social)) {
    TSensComputeOptions opts;
    opts.ghd = w.ghd_ptr();
    opts.skip_atoms = w.skip_atoms;
    auto result = ComputeLocalSensitivity(w.query, w.name[0] == 'q' &&
                                                      w.name[1] != '_'
                                                  ? tpch
                                                  : social,
                                          opts);
    ASSERT_TRUE(result.ok()) << w.name << ": " << result.status().ToString();
    EXPECT_FALSE(result->local_sensitivity.IsZero()) << w.name;
  }
}

}  // namespace
}  // namespace lsens
