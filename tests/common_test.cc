#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/count.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/status.h"

namespace lsens {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad query");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad query");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad query");
}

TEST(StatusTest, AllCodesRender) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NotFound: x");
  EXPECT_EQ(Status::Unsupported("y").ToString(), "Unsupported: y");
  EXPECT_EQ(Status::Internal("z").ToString(), "Internal: z");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsStatus) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), Status::Code::kNotFound);
}

TEST(CountTest, BasicArithmetic) {
  Count a(3);
  Count b(4);
  EXPECT_EQ((a + b), Count(7));
  EXPECT_EQ((a * b), Count(12));
  EXPECT_EQ(Count::Zero() * b, Count::Zero());
  EXPECT_EQ(Count::One() * b, b);
}

TEST(CountTest, Comparisons) {
  EXPECT_LT(Count(3), Count(4));
  EXPECT_LE(Count(4), Count(4));
  EXPECT_GT(Count(5), Count(4));
  EXPECT_NE(Count(5), Count(4));
  EXPECT_EQ(Count(5), Count(5));
}

TEST(CountTest, SaturatingMultiplication) {
  Count big(std::numeric_limits<uint64_t>::max());
  Count c = big * big;  // ~2^128, wraps 128 bits -> must saturate
  EXPECT_FALSE(c.IsSaturated());  // 2^128 - 2^65 + 1 fits in 128 bits
  Count d = c * big;
  EXPECT_TRUE(d.IsSaturated());
  EXPECT_EQ(d, Count::Max());
  // Saturation is sticky.
  EXPECT_TRUE((d * Count(2)).IsSaturated());
  EXPECT_TRUE((d + Count::One()).IsSaturated());
}

TEST(CountTest, SaturatingAddition) {
  Count max = Count::Max();
  EXPECT_TRUE((max + Count::One()).IsSaturated());
}

TEST(CountTest, SaturatingSub) {
  EXPECT_EQ(Count(10).SaturatingSub(Count(4)), Count(6));
  EXPECT_EQ(Count(4).SaturatingSub(Count(10)), Count::Zero());
  EXPECT_EQ(Count(4).SaturatingSub(Count(4)), Count::Zero());
}

TEST(CountTest, ToStringExactDecimal) {
  EXPECT_EQ(Count(0).ToString(), "0");
  EXPECT_EQ(Count(1234567890123456789ULL).ToString(), "1234567890123456789");
  // 2^64 = 18446744073709551616 exceeds uint64 but prints exactly.
  Count two64 = Count(1ULL << 32) * Count(1ULL << 32);
  EXPECT_EQ(two64.ToString(), "18446744073709551616");
  EXPECT_EQ(Count::Max().ToString(), "SAT");
}

TEST(CountTest, Conversions) {
  EXPECT_DOUBLE_EQ(Count(1000).ToDouble(), 1000.0);
  EXPECT_EQ(Count(7).ToUint64Saturated(), 7u);
  Count two64 = Count(1ULL << 32) * Count(1ULL << 32);
  EXPECT_EQ(two64.ToUint64Saturated(),
            std::numeric_limits<uint64_t>::max());
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(13), 13u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.NextDoubleOpen(), 0.0);
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(11);
  int buckets[10] = {0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.NextBounded(10)];
  for (int b : buckets) {
    EXPECT_NEAR(b, n / 10, n / 100);  // 10% tolerance
  }
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(13);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    uint64_t v = rng.NextZipf(100, 1.1);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 100u);
    low += (v <= 10);
  }
  // With s=1.1 the first decile carries well over half the mass.
  EXPECT_GT(low, n / 2);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(17);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) low += (rng.NextZipf(100, 0.0) <= 10);
  EXPECT_NEAR(low, n / 10, n / 40);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(21);
  Rng b = a.Split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(equal, 3);
}

// LSENS_CHECK contract pins. The macro promises (a) the condition is
// evaluated exactly once — so hoisting a check out of a loop is always a
// pure reordering, never a behavior change — and (b) it stays armed in
// every build mode, release included (results feed privacy budgets; see
// common/macros.h). These run in all four CI presets, so a configuration
// that compiled the check out or double-evaluated the condition fails
// here rather than silently weakening the invariants lsens-lint and the
// hoisted call sites rely on.
TEST(CheckMacroTest, ConditionEvaluatedExactlyOnce) {
  int evals = 0;
  LSENS_CHECK(++evals > 0);
  EXPECT_EQ(evals, 1);
  evals = 0;
  LSENS_CHECK_MSG(++evals > 0, "single evaluation");
  EXPECT_EQ(evals, 1);
}

TEST(CheckMacroTest, PassingCheckHasNoSideEffects) {
  // A true condition must be the whole story: no stringification side
  // channel, no stream evaluation, nothing observable.
  bool flag = true;
  LSENS_CHECK(flag);
  LSENS_CHECK_MSG(flag, "still just a branch");
  EXPECT_TRUE(flag);
}

TEST(CheckMacroDeathTest, ArmedInEveryBuildMode) {
  // NDEBUG must not compile the check out — assert() semantics are
  // explicitly NOT what this macro provides.
  EXPECT_DEATH(LSENS_CHECK(1 + 1 == 3), "LSENS_CHECK failed");
  EXPECT_DEATH(LSENS_CHECK_MSG(false, "reason text"), "reason text");
}

}  // namespace
}  // namespace lsens
