#include <gtest/gtest.h>

#include <vector>

#include "query/ghd.h"
#include "query/join_tree.h"
#include "sensitivity/elastic.h"
#include "sensitivity/naive.h"
#include "sensitivity/tsens.h"
#include "test_util.h"

namespace lsens {
namespace {

using testing::MakeFigure1Example;
using testing::MakeFigure3Example;
using testing::MakeRandomAcyclicInstance;

TEST(MaxFreqProviderTest, ComputesFrequencies) {
  auto ex = MakeFigure1Example();
  DataMaxFreqProvider mf(ex.query, ex.db);
  AttrId a = ex.db.attrs().Lookup("A");
  AttrId b = ex.db.attrs().Lookup("B");
  // R1 has 3 rows; a1 appears twice.
  EXPECT_EQ(mf.MaxFreq(0, {}), Count(3));
  EXPECT_EQ(mf.MaxFreq(0, {a}), Count(2));
  EXPECT_EQ(mf.MaxFreq(0, {a, b}), Count(1));
  // R3: a2 appears twice.
  EXPECT_EQ(mf.MaxFreq(2, {a}), Count(2));
}

TEST(MaxFreqProviderTest, IgnoresPredicates) {
  auto ex = MakeFigure1Example();
  Predicate p;
  p.var = ex.db.attrs().Lookup("A");
  p.op = Predicate::Op::kEq;
  p.rhs = -12345;  // matches nothing
  ex.query.AddPredicate(0, p);
  DataMaxFreqProvider mf(ex.query, ex.db);
  EXPECT_EQ(mf.MaxFreq(0, {}), Count(3));  // static analysis: still 3
}

TEST(ClampedMaxFreqProviderTest, CapsKeysetsContainingTheKey) {
  auto ex = MakeFigure1Example();
  DataMaxFreqProvider inner(ex.query, ex.db);
  AttrId a = ex.db.attrs().Lookup("A");
  AttrId e = ex.db.attrs().Lookup("E");
  // Cap atom 2 (R3) on key {A} at 1.
  ClampedMaxFreqProvider clamped(inner, {{2, {{a}, Count(1)}}});
  EXPECT_EQ(clamped.MaxFreq(2, {a}), Count(1));     // was 2
  EXPECT_EQ(clamped.MaxFreq(2, {a, e}), Count(1));  // superset: capped
  EXPECT_EQ(clamped.MaxFreq(2, {e}), Count(2));     // key not covered: raw
  EXPECT_EQ(clamped.MaxFreq(2, {}), Count(3));      // row count untouched
  EXPECT_EQ(clamped.MaxFreq(0, {a}), Count(2));     // other atoms untouched
}

TEST(ElasticTest, UpperBoundsTSensOnPaperExamples) {
  for (auto make : {MakeFigure1Example, MakeFigure3Example}) {
    auto ex = make();
    auto elastic = ElasticSensitivity(ex.query, ex.db);
    ASSERT_TRUE(elastic.ok());
    auto tsens = ComputeLocalSensitivity(ex.query, ex.db);
    ASSERT_TRUE(tsens.ok());
    EXPECT_GE(elastic->local_sensitivity_bound, tsens->local_sensitivity);
  }
}

TEST(ElasticTest, Figure3ExactValues) {
  auto ex = MakeFigure3Example();
  auto elastic = ElasticSensitivity(ex.query, ex.db);
  ASSERT_TRUE(elastic.ok());
  // Per-relation stability bounds are products of downstream max
  // frequencies; each must dominate TSens' exact per-relation maxima.
  auto tsens = ComputeLocalSensitivity(ex.query, ex.db);
  for (int i = 0; i < 4; ++i) {
    EXPECT_GE(elastic->per_atom_bound[static_cast<size_t>(i)],
              tsens->atoms[static_cast<size_t>(i)].max_sensitivity)
        << "atom " << i;
  }
}

TEST(ElasticTest, CrossProductUsesTableSizes) {
  Database db;
  auto* r = db.AddRelation("R", {"A"});
  auto* t = db.AddRelation("T", {"X"});
  r->AppendRow({1});
  r->AppendRow({2});
  t->AppendRow({7});
  t->AppendRow({8});
  t->AppendRow({9});
  ConjunctiveQuery q;
  q.AddAtom(db, "R", {"A"});
  q.AddAtom(db, "T", {"X"});
  auto elastic = ElasticSensitivity(q, db);
  ASSERT_TRUE(elastic.ok());
  // Adding a tuple to R multiplies with all |T| = 3 rows and vice versa.
  EXPECT_EQ(elastic->per_atom_bound[0], Count(3));
  EXPECT_EQ(elastic->per_atom_bound[1], Count(2));
  EXPECT_EQ(elastic->local_sensitivity_bound, Count(3));
}

TEST(ElasticTest, RejectsBadJoinOrder) {
  auto ex = MakeFigure1Example();
  DataMaxFreqProvider mf(ex.query, ex.db);
  EXPECT_FALSE(ElasticSensitivity(ex.query, {0, 1}, mf).ok());
}

TEST(ElasticTest, TightenedNeverExceedsFaithful) {
  Rng rng(515);
  testing::RandomQuerySpec spec;
  spec.predicate_probability = 0.0;
  for (int trial = 0; trial < 25; ++trial) {
    auto ex = MakeRandomAcyclicInstance(rng, spec);
    auto faithful = ElasticSensitivity(ex.query, ex.db, nullptr,
                                       ElasticMode::kFlexFaithful);
    auto tightened = ElasticSensitivity(ex.query, ex.db, nullptr,
                                        ElasticMode::kTightened);
    ASSERT_TRUE(faithful.ok());
    ASSERT_TRUE(tightened.ok());
    for (int a = 0; a < ex.query.num_atoms(); ++a) {
      EXPECT_LE(tightened->per_atom_bound[static_cast<size_t>(a)],
                faithful->per_atom_bound[static_cast<size_t>(a)])
          << ex.query.ToString(ex.db.attrs()) << " atom " << a;
    }
  }
}

TEST(ElasticTest, FaithfulModeAlsoUpperBoundsExactLS) {
  Rng rng(616);
  testing::RandomQuerySpec spec;
  spec.max_atoms = 4;
  spec.max_rows = 5;
  spec.predicate_probability = 0.0;
  for (int trial = 0; trial < 25; ++trial) {
    auto ex = MakeRandomAcyclicInstance(rng, spec);
    auto faithful = ElasticSensitivity(ex.query, ex.db, nullptr,
                                       ElasticMode::kFlexFaithful);
    ASSERT_TRUE(faithful.ok());
    auto naive = NaiveLocalSensitivity(ex.query, ex.db, {});
    ASSERT_TRUE(naive.ok());
    EXPECT_GE(faithful->local_sensitivity_bound, naive->local_sensitivity)
        << ex.query.ToString(ex.db.attrs());
  }
}

TEST(ElasticDistanceTest, BoundsGrowWithDistance) {
  auto ex = MakeFigure3Example();
  DataMaxFreqProvider mf(ex.query, ex.db);
  auto forest = BuildJoinForestGYO(ex.query);
  std::vector<int> order = PlanOrderFromForest(*forest);
  Count prev = Count::Zero();
  for (uint64_t k : {0, 1, 2, 5, 10}) {
    auto at_k = ElasticSensitivityAtDistance(ex.query, order, mf, k);
    ASSERT_TRUE(at_k.ok());
    EXPECT_GE(at_k->local_sensitivity_bound, prev) << "k=" << k;
    prev = at_k->local_sensitivity_bound;
  }
}

TEST(ElasticDistanceTest, DistanceZeroMatchesPlain) {
  auto ex = MakeFigure1Example();
  DataMaxFreqProvider mf(ex.query, ex.db);
  auto forest = BuildJoinForestGYO(ex.query);
  std::vector<int> order = PlanOrderFromForest(*forest);
  auto plain = ElasticSensitivity(ex.query, order, mf);
  auto at_zero = ElasticSensitivityAtDistance(ex.query, order, mf, 0);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(at_zero.ok());
  EXPECT_EQ(plain->local_sensitivity_bound,
            at_zero->local_sensitivity_bound);
}

TEST(SmoothElasticTest, DominatesDistanceZeroAndShrinksWithBeta) {
  auto ex = MakeFigure3Example();
  DataMaxFreqProvider mf(ex.query, ex.db);
  auto forest = BuildJoinForestGYO(ex.query);
  std::vector<int> order = PlanOrderFromForest(*forest);
  auto base = ElasticSensitivity(ex.query, order, mf);
  ASSERT_TRUE(base.ok());
  double prev = 1e300;
  for (double beta : {0.05, 0.2, 1.0, 5.0}) {
    auto smooth =
        SmoothElasticSensitivity(ex.query, order, mf, beta, /*atom=*/1);
    ASSERT_TRUE(smooth.ok()) << smooth.status().ToString();
    // k = 0 term alone is S^(0), so the smooth max dominates it.
    EXPECT_GE(smooth->smooth_bound,
              base->per_atom_bound[1].ToDouble() - 1e-9);
    // Larger beta discounts far distances harder: bound non-increasing.
    EXPECT_LE(smooth->smooth_bound, prev + 1e-9);
    prev = smooth->smooth_bound;
  }
  // With strong damping the max is attained at distance 0.
  auto strong =
      SmoothElasticSensitivity(ex.query, order, mf, 50.0, /*atom=*/1);
  ASSERT_TRUE(strong.ok());
  EXPECT_EQ(strong->argmax_distance, 0u);
}

TEST(SmoothElasticTest, ValidatesArguments) {
  auto ex = MakeFigure3Example();
  DataMaxFreqProvider mf(ex.query, ex.db);
  auto forest = BuildJoinForestGYO(ex.query);
  std::vector<int> order = PlanOrderFromForest(*forest);
  EXPECT_FALSE(
      SmoothElasticSensitivity(ex.query, order, mf, -1.0, 0).ok());
  EXPECT_FALSE(
      SmoothElasticSensitivity(ex.query, order, mf, 0.5, 99).ok());
}

TEST(ElasticTest, RandomInstancesUpperBoundExactLS) {
  Rng rng(2024);
  testing::RandomQuerySpec spec;
  spec.max_atoms = 4;
  spec.max_rows = 5;
  spec.predicate_probability = 0.0;  // elastic ignores predicates
  for (int trial = 0; trial < 40; ++trial) {
    auto ex = MakeRandomAcyclicInstance(rng, spec);
    auto elastic = ElasticSensitivity(ex.query, ex.db);
    ASSERT_TRUE(elastic.ok()) << elastic.status().ToString();
    auto naive = NaiveLocalSensitivity(ex.query, ex.db, {});
    ASSERT_TRUE(naive.ok()) << naive.status().ToString();
    EXPECT_GE(elastic->local_sensitivity_bound, naive->local_sensitivity)
        << "trial " << trial << ": "
        << ex.query.ToString(ex.db.attrs());
  }
}

}  // namespace
}  // namespace lsens
