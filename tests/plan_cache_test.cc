// Cross-query plan cache: one SensitivityCache serving K overlapping
// queries must (a) stay bit-identical to K independent caches and to
// from-scratch computes after every prefix of a randomized insert/delete
// stream, at thread counts {0, 2, 8}, and (b) actually share: overlapping
// chain prefixes attach to the same canonical store nodes, one delta pass
// repairs each shared node exactly once no matter how many entries depend
// on it, and structurally different projections never share.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "sensitivity/incremental.h"
#include "sensitivity/tsens.h"
#include "storage/database.h"
#include "test_util.h"

namespace lsens {
namespace {

void ExpectResultsIdentical(const SensitivityResult& a,
                            const SensitivityResult& b,
                            const std::string& context) {
  EXPECT_EQ(a.local_sensitivity, b.local_sensitivity) << context;
  EXPECT_EQ(a.argmax_atom, b.argmax_atom) << context;
  ASSERT_EQ(a.atoms.size(), b.atoms.size()) << context;
  for (size_t i = 0; i < a.atoms.size(); ++i) {
    const AtomSensitivity& x = a.atoms[i];
    const AtomSensitivity& y = b.atoms[i];
    EXPECT_EQ(x.max_sensitivity, y.max_sensitivity)
        << context << " atom " << i;
    EXPECT_EQ(x.argmax, y.argmax) << context << " atom " << i;
    EXPECT_EQ(x.approximate, y.approximate) << context << " atom " << i;
  }
}

// The overlapping workload: chain queries over a shared relation prefix
//   Q_0: A(x0,x1), B(x1,x2)
//   Q_1: A(x0,x1), B(x1,x2), C(x2,x3)
//   Q_2: A(x0,x1), B(x1,x2), C(x2,x3), D(x3,x4)
//   Q_3: A(x0,x1), B(x1,x2), C(x2,x3), D(x3,x4), E(x4,x5)
// plus a structurally disjoint control P: F(y0,y1), G(y1,y2).
// Every Q_k shares A's source and the top fold chain with its longer
// siblings; interior sources (B in Q_1..Q_3, C in Q_2..Q_3, ...) share
// too because their keep sets agree.
struct Workload {
  Database db;
  std::vector<ConjunctiveQuery> queries;  // Q_0..Q_3, then P
  std::vector<std::string> relations;     // A..E, F, G

  size_t num_chain_queries() const { return queries.size() - 1; }
};

Workload MakeOverlappingWorkload(Rng& rng, int domain) {
  Workload w;
  w.relations = {"A", "B", "C", "D", "E", "F", "G"};
  for (const std::string& name : w.relations) {
    Relation* rel = w.db.AddRelation(name, {"c0", "c1"});
    const size_t rows = 4 + rng.NextBounded(4);
    for (size_t i = 0; i < rows; ++i) {
      rel->AppendRow({static_cast<Value>(rng.NextBounded(domain)),
                      static_cast<Value>(rng.NextBounded(domain))});
    }
  }
  const std::vector<std::string> chain = {"A", "B", "C", "D", "E"};
  for (size_t len = 2; len <= chain.size(); ++len) {
    ConjunctiveQuery q;
    for (size_t i = 0; i < len; ++i) {
      q.AddAtom(w.db, chain[i],
                {"x" + std::to_string(i), "x" + std::to_string(i + 1)});
    }
    w.queries.push_back(std::move(q));
  }
  ConjunctiveQuery control;
  control.AddAtom(w.db, "F", {"y0", "y1"});
  control.AddAtom(w.db, "G", {"y1", "y2"});
  w.queries.push_back(std::move(control));
  return w;
}

// One randomized batch of 1-3 inserts/deletes against a random relation,
// via the shared seeded-stream generator in test_util.
void MutateRandomRelation(Rng& rng, Workload& w, int domain) {
  testing::ApplyRandomMutation(rng, w.db, w.relations, domain);
}

TSensComputeOptions ThreadedOptions(int threads) {
  TSensComputeOptions options;
  options.join.threads = threads;
  return options;
}

class PlanCacheStreamTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

// The core contract: a single cache over the overlapping workload is
// bit-identical, after every prefix of a randomized update stream, to K
// independent caches (one per query) and to from-scratch computes.
TEST_P(PlanCacheStreamTest, SharedCacheMatchesIndependentCachesAndScratch) {
  const auto [seed, threads] = GetParam();
  Rng rng(seed * 131 + 7);
  Workload w = MakeOverlappingWorkload(rng, 3);
  SensitivityCacheConfig config;
  config.max_delta_fraction = 1.0;  // exercise repair as hard as possible
  SensitivityCache shared(config);
  std::vector<std::unique_ptr<SensitivityCache>> independent;
  for (size_t k = 0; k < w.queries.size(); ++k) {
    independent.push_back(std::make_unique<SensitivityCache>(config));
  }
  TSensComputeOptions options = ThreadedOptions(threads);
  for (int step = 0; step < 12; ++step) {
    for (size_t k = 0; k < w.queries.size(); ++k) {
      const std::string context =
          "step " + std::to_string(step) + " query " + std::to_string(k);
      auto from_shared = shared.Compute(w.queries[k], w.db, options);
      ASSERT_TRUE(from_shared.ok()) << context << ": "
                                    << from_shared.status().ToString();
      auto from_independent =
          independent[k]->Compute(w.queries[k], w.db, options);
      ASSERT_TRUE(from_independent.ok()) << context;
      ExpectResultsIdentical(*from_shared, *from_independent, context);
      auto fresh = ComputeLocalSensitivity(w.queries[k], w.db, options);
      ASSERT_TRUE(fresh.ok()) << context;
      ExpectResultsIdentical(*from_shared, *fresh, context);
    }
    MutateRandomRelation(rng, w, 3);
  }
  // The chain prefixes overlapped, so the shared cache must actually have
  // shared: fewer store nodes than the independent caches hold combined,
  // and reuse on entry construction.
  EXPECT_GT(shared.stats().shared_attaches, 0u);
  uint64_t independent_nodes = 0;
  for (const auto& cache : independent) {
    independent_nodes += cache->stats().shared_nodes;
  }
  EXPECT_LT(shared.stats().shared_nodes, independent_nodes);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PlanCacheStreamTest,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3),
                       ::testing::Values(0, 2, 8)));

// One delta against the shared prefix is repaired by exactly one entry's
// pass; every other dependent entry reassembles from already-current
// nodes instead of redoing the repair.
TEST(PlanCacheTest, OneDeltaRepairsSharedNodesOnce) {
  Rng rng(42);
  Workload w = MakeOverlappingWorkload(rng, 3);
  SensitivityCacheConfig config;
  config.max_delta_fraction = 1.0;
  SensitivityCache cache(config);
  const size_t k = w.num_chain_queries();
  for (size_t i = 0; i < k; ++i) {
    ASSERT_TRUE(cache.Compute(w.queries[i], w.db).ok());
  }
  ASSERT_EQ(cache.stats().misses, k);
  EXPECT_GT(cache.stats().shared_attaches, 0u);

  // Touch only the shared prefix relation A, then refresh every query.
  w.db.Find("A")->AppendRow({1, 1});
  const uint64_t nodes_before = cache.stats().node_repairs;
  for (size_t i = 0; i < k; ++i) {
    auto r = cache.Compute(w.queries[i], w.db);
    ASSERT_TRUE(r.ok());
    auto fresh = ComputeLocalSensitivity(w.queries[i], w.db);
    ASSERT_TRUE(fresh.ok());
    ExpectResultsIdentical(*r, *fresh, "query " + std::to_string(i));
  }
  // Exactly one delta pass ran (first refresh); the other k-1 entries were
  // pure assemblies. Each affected shared node was patched once: A's
  // source is one node for all k entries, so the pass patched strictly
  // fewer nodes than k per-entry repairs would have (A alone would have
  // been patched k times).
  EXPECT_EQ(cache.stats().repairs, 1u);
  EXPECT_EQ(cache.stats().shared_assemblies, k - 1);
  const uint64_t patched = cache.stats().node_repairs - nodes_before;
  EXPECT_GT(patched, 0u);
  EXPECT_LT(patched, k * 2);  // k entries x (source + >= 1 fold) unshared
}

// Queries that project a relation differently derive different canonical
// signatures and must not share its node — sharing is by structure, not
// by relation name.
TEST(PlanCacheTest, DifferentProjectionsDoNotShare) {
  Database db;
  Relation* a = db.AddRelation("A", {"c0", "c1"});
  Relation* b = db.AddRelation("B", {"c0", "c1"});
  Relation* c = db.AddRelation("C", {"c0", "c1"});
  for (Value v = 0; v < 3; ++v) {
    a->AppendRow({v, v % 2});
    b->AppendRow({v % 2, v});
    c->AppendRow({v, v});
  }
  // q1 joins on A's column 1; q2 joins on A's column 0. A's source table
  // differs (keep col 1 vs keep col 0), so nothing can be reused.
  ConjunctiveQuery q1;
  q1.AddAtom(db, "A", {"x0", "x1"});
  q1.AddAtom(db, "B", {"x1", "x2"});
  ConjunctiveQuery q2;
  q2.AddAtom(db, "A", {"z1", "z0"});
  q2.AddAtom(db, "C", {"z1", "z2"});
  SensitivityCache cache;
  ASSERT_TRUE(cache.Compute(q1, db).ok());
  const uint64_t attaches_after_q1 = cache.stats().shared_attaches;
  const uint64_t nodes_after_q1 = cache.stats().shared_nodes;
  ASSERT_TRUE(cache.Compute(q2, db).ok());
  EXPECT_EQ(cache.stats().shared_attaches, attaches_after_q1);
  EXPECT_GT(cache.stats().shared_nodes, nodes_after_q1);
  // Both entries still repair independently and correctly.
  a->AppendRow({7, 7});
  for (const ConjunctiveQuery* q : {&q1, &q2}) {
    auto r = cache.Compute(*q, db);
    ASSERT_TRUE(r.ok());
    auto fresh = ComputeLocalSensitivity(*q, db);
    ASSERT_TRUE(fresh.ok());
    ExpectResultsIdentical(*r, *fresh, "projection control");
  }
}

// A byte budget far below the workload's footprint spills shared nodes
// under every entry at once; all results stay correct through the spill /
// reload cycle.
TEST(PlanCacheTest, SpillCascadeStaysCorrectAcrossSharedEntries) {
  Rng rng(7);
  Workload w = MakeOverlappingWorkload(rng, 3);
  SensitivityCacheConfig config;
  config.max_delta_fraction = 1.0;
  config.max_state_bytes = 1;  // nothing repairable fits
  SensitivityCache cache(config);
  const size_t k = w.num_chain_queries();
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < k; ++i) {
      auto r = cache.Compute(w.queries[i], w.db);
      ASSERT_TRUE(r.ok());
      auto fresh = ComputeLocalSensitivity(w.queries[i], w.db);
      ASSERT_TRUE(fresh.ok());
      ExpectResultsIdentical(
          *r, *fresh,
          "round " + std::to_string(round) + " query " + std::to_string(i));
    }
    EXPECT_EQ(cache.stats().state_bytes, 0u);
    // Mutate chain relations only, so at least the longest chain entry
    // goes stale every round and must take the spilled-state fallback.
    testing::ApplyRandomMutation(rng, w.db, {"A", "B", "C", "D", "E"}, 3);
  }
  EXPECT_GT(cache.stats().spills, 0u);
  EXPECT_GT(cache.stats().fallback_spilled, 0u);
}

}  // namespace
}  // namespace lsens
