// End-to-end integration tests: the actual §7 evaluation queries on scaled-
// down instances, cross-checked against the naive oracle and brute-force
// evaluation wherever those are feasible.

#include <gtest/gtest.h>

#include "dp/tsens_dp.h"
#include "query/eval.h"
#include "sensitivity/elastic.h"
#include "sensitivity/naive.h"
#include "sensitivity/tsens.h"
#include "sensitivity/tsens_engine.h"
#include "workload/queries.h"
#include "workload/social.h"
#include "workload/tpch.h"

namespace lsens {
namespace {

Database TinyTpch() {
  TpchOptions opts;
  opts.scale = 0.0002;
  return MakeTpchDatabase(opts);
}

Database TinySocial() {
  SocialOptions opts;
  opts.num_nodes = 25;
  opts.num_circles = 30;
  opts.target_directed_edges = 160;
  return MakeSocialDatabase(opts);
}

TEST(IntegrationTest, Q1AgainstOracle) {
  Database db = TinyTpch();
  WorkloadQuery w = MakeTpchQ1(db);
  auto tsens = ComputeLocalSensitivity(w.query, db);
  ASSERT_TRUE(tsens.ok());
  NaiveOptions nopts;
  nopts.max_insert_candidates = 500000;
  auto naive = NaiveLocalSensitivity(w.query, db, nopts);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  EXPECT_EQ(tsens->local_sensitivity, naive->local_sensitivity);
}

TEST(IntegrationTest, Q2AgainstOracle) {
  Database db = TinyTpch();
  WorkloadQuery w = MakeTpchQ2(db);
  auto tsens = ComputeLocalSensitivity(w.query, db);
  ASSERT_TRUE(tsens.ok());
  NaiveOptions nopts;
  nopts.max_insert_candidates = 500000;
  auto naive = NaiveLocalSensitivity(w.query, db, nopts);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  EXPECT_EQ(tsens->local_sensitivity, naive->local_sensitivity);
}

TEST(IntegrationTest, FacebookQueriesAgainstOracle) {
  Database db = TinySocial();
  for (auto make :
       {MakeFacebookTriangle, MakeFacebookCycle, MakeFacebookStar}) {
    WorkloadQuery w = make(db);
    TSensComputeOptions opts;
    opts.ghd = w.ghd_ptr();
    auto tsens = ComputeLocalSensitivity(w.query, db, opts);
    ASSERT_TRUE(tsens.ok()) << w.name;
    NaiveOptions nopts;
    nopts.ghd = w.ghd_ptr();
    nopts.max_insert_candidates = 500000;
    auto naive = NaiveLocalSensitivity(w.query, db, nopts);
    ASSERT_TRUE(naive.ok()) << w.name << ": " << naive.status().ToString();
    EXPECT_EQ(tsens->local_sensitivity, naive->local_sensitivity) << w.name;
  }
}

TEST(IntegrationTest, FacebookPathAgainstOracle) {
  Database db = TinySocial();
  WorkloadQuery w = MakeFacebookPath(db);
  auto tsens = ComputeLocalSensitivity(w.query, db);
  ASSERT_TRUE(tsens.ok());
  NaiveOptions nopts;
  nopts.max_insert_candidates = 500000;
  auto naive = NaiveLocalSensitivity(w.query, db, nopts);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  EXPECT_EQ(tsens->local_sensitivity, naive->local_sensitivity);
}

TEST(IntegrationTest, Q3SkipListStillSound) {
  // Skipping Lineitem's multiplicity table must not change the LS: its
  // tuple sensitivity is at most 1 because its variables are a superkey of
  // the output. Verify by computing with and without the skip.
  TpchOptions topts;
  topts.scale = 0.001;
  Database db = MakeTpchDatabase(topts);
  WorkloadQuery w = MakeTpchQ3(db);
  TSensComputeOptions with_skip;
  with_skip.ghd = w.ghd_ptr();
  with_skip.skip_atoms = w.skip_atoms;
  TSensComputeOptions without_skip;
  without_skip.ghd = w.ghd_ptr();
  auto a = ComputeLocalSensitivity(w.query, db, with_skip);
  auto b = ComputeLocalSensitivity(w.query, db, without_skip);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->local_sensitivity, b->local_sensitivity);
  // And the Lineitem table really is <= 1 everywhere.
  int lineitem_atom = w.skip_atoms[0];
  EXPECT_LE(b->atoms[static_cast<size_t>(lineitem_atom)].max_sensitivity,
            Count(1));
}

TEST(IntegrationTest, MostSensitiveWitnessesVerifyOnAllQueries) {
  TpchOptions topts;
  topts.scale = 0.0005;
  Database tpch = MakeTpchDatabase(topts);
  Database social = TinySocial();
  for (auto& w : MakeAllWorkloadQueries(tpch, social)) {
    Database& db = (w.name.size() == 2) ? tpch : social;
    TSensComputeOptions opts;
    opts.ghd = w.ghd_ptr();
    opts.skip_atoms = w.skip_atoms;
    auto tsens = ComputeLocalSensitivity(w.query, db, opts);
    ASSERT_TRUE(tsens.ok()) << w.name;
    if (tsens->local_sensitivity.IsZero()) continue;
    auto witness = MaterializeMostSensitiveTuple(*tsens, w.query);
    ASSERT_TRUE(witness.ok()) << w.name;
    NaiveOptions nopts;
    nopts.ghd = w.ghd_ptr();
    auto delta = NaiveTupleSensitivity(w.query, db, witness->first,
                                       witness->second, nopts);
    ASSERT_TRUE(delta.ok()) << w.name;
    EXPECT_EQ(*delta, tsens->local_sensitivity) << w.name;
  }
}

TEST(IntegrationTest, ElasticDominatesTSensOnAllQueries) {
  TpchOptions topts;
  topts.scale = 0.001;
  Database tpch = MakeTpchDatabase(topts);
  Database social = TinySocial();
  for (auto& w : MakeAllWorkloadQueries(tpch, social)) {
    Database& db = (w.name.size() == 2) ? tpch : social;
    TSensComputeOptions opts;
    opts.ghd = w.ghd_ptr();
    opts.skip_atoms = w.skip_atoms;
    auto tsens = ComputeLocalSensitivity(w.query, db, opts);
    ASSERT_TRUE(tsens.ok()) << w.name;
    for (ElasticMode mode :
         {ElasticMode::kTightened, ElasticMode::kFlexFaithful}) {
      auto elastic = ElasticSensitivity(w.query, db, w.ghd_ptr(), mode);
      ASSERT_TRUE(elastic.ok()) << w.name;
      EXPECT_GE(elastic->local_sensitivity_bound, tsens->local_sensitivity)
          << w.name;
    }
  }
}

TEST(IntegrationTest, TSensDpRunsOnAllQueries) {
  TpchOptions topts;
  topts.scale = 0.002;
  Database tpch = MakeTpchDatabase(topts);
  Database social = TinySocial();
  for (auto& w : MakeAllWorkloadQueries(tpch, social)) {
    Database& db = (w.name.size() == 2) ? tpch : social;
    // ℓ is meant to upper-bound the tuple sensitivity (§6.2); derive it
    // from the instance as a user with domain knowledge would.
    TSensComputeOptions sopts;
    sopts.ghd = w.ghd_ptr();
    sopts.skip_atoms = w.skip_atoms;
    sopts.keep_tables = true;
    auto tsens = ComputeLocalSensitivity(w.query, db, sopts);
    ASSERT_TRUE(tsens.ok()) << w.name;
    auto sens = TupleSensitivities(*tsens, w.query, db, w.private_atom);
    ASSERT_TRUE(sens.ok()) << w.name;
    Count max_delta = Count::Zero();
    for (Count c : *sens) max_delta = std::max(max_delta, c);
    if (max_delta.IsZero()) continue;  // nothing joins; nothing to test

    TSensDpOptions opts;
    opts.epsilon = 100.0;  // near-noiseless smoke check
    opts.ell = 2 * max_delta.ToUint64Saturated();
    opts.seed = 3;
    opts.ghd = w.ghd_ptr();
    opts.skip_atoms = w.skip_atoms;
    auto run = RunTSensDp(w.query, db, w.private_atom, opts);
    ASSERT_TRUE(run.ok()) << w.name << ": " << run.status().ToString();
    if (run->true_answer > 0) {
      EXPECT_LT(run->error() / run->true_answer, 0.2) << w.name;
    }
  }
}

}  // namespace
}  // namespace lsens
