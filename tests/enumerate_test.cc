#include <gtest/gtest.h>

#include "query/enumerate.h"
#include "query/eval.h"
#include "query/ghd.h"
#include "query/join_tree.h"
#include "test_util.h"

namespace lsens {
namespace {

using testing::MakeFigure1Example;
using testing::MakeRandomAcyclicInstance;
using testing::MakeRandomTriangleInstance;

void ExpectSameRelation(const CountedRelation& a, const CountedRelation& b) {
  ASSERT_EQ(a.attrs(), b.attrs());
  ASSERT_EQ(a.NumRows(), b.NumRows());
  for (size_t i = 0; i < a.NumRows(); ++i) {
    ASSERT_EQ(CompareRows(a.Row(i), b.Row(i)), 0) << "row " << i;
    ASSERT_EQ(a.CountAt(i), b.CountAt(i)) << "row " << i;
  }
}

TEST(SemijoinTest, FiltersByMatchingKeys) {
  CountedRelation a({1, 2});
  a.AppendRow({0, 5}, Count(2));
  a.AppendRow({1, 6}, Count(3));
  a.Normalize();
  CountedRelation b({2});
  b.AppendRow({5}, Count(99));  // multiplicity irrelevant for semijoin
  b.Normalize();
  CountedRelation r = Semijoin(a, b);
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.Row(0)[1], 5);
  EXPECT_EQ(r.CountAt(0), Count(2));  // counts preserved
}

TEST(SemijoinTest, DisjointAttrsDependOnEmptiness) {
  CountedRelation a({1});
  a.AppendRow({7}, Count(1));
  a.Normalize();
  CountedRelation non_empty({2});
  non_empty.AppendRow({0}, Count(1));
  non_empty.Normalize();
  EXPECT_EQ(Semijoin(a, non_empty).NumRows(), 1u);
  CountedRelation empty({2});
  EXPECT_EQ(Semijoin(a, empty).NumRows(), 0u);
}

TEST(EnumerateTest, Figure1FullOutput) {
  auto ex = MakeFigure1Example();
  auto out = EnumerateQuery(ex.query, ex.db);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->NumRows(), 1u);
  EXPECT_EQ(out->arity(), 6u);
  EXPECT_EQ(out->TotalCount(), Count::One());
}

TEST(EnumerateTest, MatchesBruteForceOnRandomAcyclic) {
  Rng rng(4242);
  testing::RandomQuerySpec spec;
  for (int trial = 0; trial < 40; ++trial) {
    auto ex = MakeRandomAcyclicInstance(rng, spec);
    auto fast = EnumerateQuery(ex.query, ex.db);
    auto brute = BruteForceJoin(ex.query, ex.db);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    ASSERT_TRUE(brute.ok());
    ExpectSameRelation(*fast, *brute);
  }
}

TEST(EnumerateTest, MatchesBruteForceOnTriangles) {
  Rng rng(777);
  for (int trial = 0; trial < 15; ++trial) {
    auto ex = MakeRandomTriangleInstance(rng, 8, 3);
    auto ghd = BuildGhd(ex.query, {{0, 1}, {2}});
    ASSERT_TRUE(ghd.ok());
    auto fast = EnumerateJoin(ex.query, *ghd, ex.db);
    auto brute = BruteForceJoin(ex.query, ex.db);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(brute.ok());
    ExpectSameRelation(*fast, *brute);
  }
}

TEST(EnumerateTest, CountAgreesWithCountQuery) {
  Rng rng(9);
  testing::RandomQuerySpec spec;
  for (int trial = 0; trial < 20; ++trial) {
    auto ex = MakeRandomAcyclicInstance(rng, spec);
    auto enumerated = EnumerateQuery(ex.query, ex.db);
    auto counted = CountQuery(ex.query, ex.db);
    ASSERT_TRUE(enumerated.ok());
    ASSERT_TRUE(counted.ok());
    EXPECT_EQ(enumerated->TotalCount(), *counted);
  }
}

TEST(EnumerateTest, RespectsRowLimit) {
  // Cross-product heavy instance: output larger than the cap.
  Database db;
  auto* r = db.AddRelation("R", {"A"});
  auto* t = db.AddRelation("T", {"X"});
  for (Value i = 0; i < 100; ++i) r->AppendRow({i});
  for (Value i = 0; i < 100; ++i) t->AppendRow({i});
  ConjunctiveQuery q;
  q.AddAtom(db, "R", {"A"});
  q.AddAtom(db, "T", {"X"});
  auto limited = EnumerateQuery(q, db, {}, /*max_rows=*/1000);
  EXPECT_EQ(limited.status().code(), Status::Code::kUnsupported);
  auto allowed = EnumerateQuery(q, db, {}, /*max_rows=*/20000);
  ASSERT_TRUE(allowed.ok());
  EXPECT_EQ(allowed->NumRows(), 10000u);
}

TEST(EnumerateTest, SemijoinReductionPreventsBlowup) {
  // A chain where the unreduced join of the first two relations would be
  // quadratic but the final output is empty: enumeration must stay cheap
  // and return empty (this is the point of the Yannakakis reduction).
  Database db;
  auto* r1 = db.AddRelation("R1", {"A", "B"});
  auto* r2 = db.AddRelation("R2", {"B", "C"});
  auto* r3 = db.AddRelation("R3", {"C", "D"});
  for (Value i = 0; i < 200; ++i) {
    r1->AppendRow({i, 0});
    r2->AppendRow({0, i});
    r3->AppendRow({i + 1000, i});  // C values never match R2's
  }
  ConjunctiveQuery q;
  q.AddAtom(db, "R1", {"A", "B"});
  q.AddAtom(db, "R2", {"B", "C"});
  q.AddAtom(db, "R3", {"C", "D"});
  // 200x200 = 40000 pairs before reduction; cap far below that.
  auto out = EnumerateQuery(q, db, {}, /*max_rows=*/5000);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->NumRows(), 0u);
}

}  // namespace
}  // namespace lsens
