// The incremental sensitivity subsystem: relation versioning + change
// logs, the DynTable maintenance structure, SensitivityCache behavior
// (hit/repair/fallback counters), and the streaming differential suite —
// after every prefix of a randomized insert/delete stream the cached
// result must be bit-identical to a from-scratch ComputeLocalSensitivity
// (and agree with the naive oracle on tiny instances), at thread counts
// {0, 2, 8} and across every repairable shape: paths, trees,
// attribute-sharing multiplicity pieces, disconnected forests, and cyclic
// queries through searched or explicit GHDs.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "exec/dyn_table.h"
#include "exec/exec_context.h"
#include "query/ghd.h"
#include "sensitivity/incremental.h"
#include "sensitivity/naive.h"
#include "sensitivity/tsens.h"
#include "storage/csv.h"
#include "test_util.h"

namespace lsens {
namespace {

using testing::MakeFigure1Example;
using testing::MakeFigure3Example;
using testing::MakeRandomAcyclicInstance;
using testing::MakeRandomTriangleInstance;
using testing::PaperExample;
using testing::RandomQuerySpec;

// --- bit-identity helper ------------------------------------------------

void ExpectResultsIdentical(const SensitivityResult& a,
                            const SensitivityResult& b,
                            const std::string& context) {
  EXPECT_EQ(a.local_sensitivity, b.local_sensitivity) << context;
  EXPECT_EQ(a.argmax_atom, b.argmax_atom) << context;
  ASSERT_EQ(a.atoms.size(), b.atoms.size()) << context;
  for (size_t i = 0; i < a.atoms.size(); ++i) {
    const AtomSensitivity& x = a.atoms[i];
    const AtomSensitivity& y = b.atoms[i];
    EXPECT_EQ(x.atom_index, y.atom_index) << context;
    EXPECT_EQ(x.relation, y.relation) << context;
    EXPECT_EQ(x.table_attrs, y.table_attrs) << context;
    EXPECT_EQ(x.free_vars, y.free_vars) << context;
    EXPECT_EQ(x.max_sensitivity, y.max_sensitivity) << context << " atom "
                                                    << i;
    EXPECT_EQ(x.argmax, y.argmax) << context << " atom " << i;
    EXPECT_EQ(x.skipped, y.skipped) << context;
    EXPECT_EQ(x.approximate, y.approximate) << context;
    ASSERT_EQ(x.table.has_value(), y.table.has_value()) << context;
    if (x.table.has_value()) {
      ASSERT_EQ(x.table->NumRows(), y.table->NumRows()) << context;
      for (size_t r = 0; r < x.table->NumRows(); ++r) {
        EXPECT_EQ(CompareRows(x.table->Row(r), y.table->Row(r)), 0)
            << context;
        EXPECT_EQ(x.table->CountAt(r), y.table->CountAt(r)) << context;
      }
    }
  }
}

// --- storage: versions, change log, ApplyDelta --------------------------

TEST(RelationVersionTest, MutationsBumpMonotonically) {
  Relation rel("R", {"a", "b"});
  EXPECT_EQ(rel.version(), 0u);
  rel.AppendRow({1, 2});
  EXPECT_EQ(rel.version(), 1u);
  rel.AppendRow({3, 4});
  rel.SwapRemoveRow(0);
  EXPECT_EQ(rel.version(), 3u);
  rel.Set(0, 1, 7);
  EXPECT_GE(rel.version(), 4u);
  uint64_t before = rel.version();
  rel.Clear();
  EXPECT_GT(rel.version(), before);
}

TEST(RelationVersionTest, ChangeLogRoundTrips) {
  Relation rel("R", {"a", "b"});
  rel.AppendRow({1, 1});
  std::vector<RowChange> changes;
  // Not enabled yet: cannot answer.
  EXPECT_FALSE(rel.CollectChangesSince(0, &changes));
  rel.EnableChangeLog(16);
  uint64_t v0 = rel.version();
  rel.AppendRow({2, 2});
  rel.SwapRemoveRow(0);  // removes (1, 1)
  ASSERT_TRUE(rel.CollectChangesSince(v0, &changes));
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_TRUE(changes[0].insert);
  EXPECT_EQ(changes[0].row, (std::vector<Value>{2, 2}));
  EXPECT_FALSE(changes[1].insert);
  EXPECT_EQ(changes[1].row, (std::vector<Value>{1, 1}));
  EXPECT_EQ(rel.NumChangesSince(v0), 2u);
  // A version inside the window answers with the suffix.
  changes.clear();
  ASSERT_TRUE(rel.CollectChangesSince(v0 + 1, &changes));
  EXPECT_EQ(changes.size(), 1u);
}

TEST(RelationVersionTest, LogWindowAndClearInvalidate) {
  Relation rel("R", {"a"});
  rel.EnableChangeLog(2);
  uint64_t v0 = rel.version();
  rel.AppendRow({1});
  rel.AppendRow({2});
  rel.AppendRow({3});  // evicts the first entry
  std::vector<RowChange> changes;
  EXPECT_FALSE(rel.CollectChangesSince(v0, &changes));
  EXPECT_EQ(rel.NumChangesSince(v0), SIZE_MAX);
  ASSERT_TRUE(rel.CollectChangesSince(v0 + 1, &changes));
  EXPECT_EQ(changes.size(), 2u);
  // A future version cannot be answered either.
  EXPECT_FALSE(rel.CollectChangesSince(rel.version() + 1, &changes));
  rel.Clear();
  EXPECT_FALSE(rel.change_log_enabled());
  EXPECT_FALSE(rel.CollectChangesSince(rel.version(), &changes));
}

TEST(RelationVersionTest, ShardedCollectionPartitionsByKeyHash) {
  Relation rel("R", {"a", "b"});
  rel.EnableChangeLog(64);
  uint64_t v0 = rel.version();
  for (int i = 0; i < 20; ++i) {
    rel.AppendRow({i % 5, i});
  }
  rel.SwapRemoveRow(0);  // removes (0, 0): same shard as its insert

  const size_t kShards = 3;
  std::vector<size_t> key_cols = {0};
  std::vector<std::vector<RowChange>> shards(kShards);
  ASSERT_TRUE(
      rel.CollectChangesShardedSince(v0, key_cols, kShards, &shards));

  // Every change lands in exactly one shard; equal keys share a shard and
  // keep their log order there.
  std::vector<RowChange> flat;
  ASSERT_TRUE(rel.CollectChangesSince(v0, &flat));
  size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  EXPECT_EQ(total, flat.size());
  std::map<Value, size_t> shard_of_key;
  for (size_t s = 0; s < kShards; ++s) {
    for (const RowChange& ch : shards[s]) {
      auto it = shard_of_key.emplace(ch.row[0], s).first;
      EXPECT_EQ(it->second, s) << "key " << ch.row[0] << " split";
    }
  }
  // Per-key order inside a shard matches log order: the erase of (0, 0)
  // appears after its insert.
  size_t erase_shard = shard_of_key.at(0);
  bool saw_insert = false;
  bool ordered = false;
  for (const RowChange& ch : shards[erase_shard]) {
    if (ch.row == std::vector<Value>{0, 0}) {
      if (ch.insert) {
        saw_insert = true;
      } else {
        ordered = saw_insert;
      }
    }
  }
  EXPECT_TRUE(ordered);

  // Same answerability contract as the flat collection.
  std::vector<std::vector<RowChange>> unanswerable(kShards);
  EXPECT_FALSE(rel.CollectChangesShardedSince(rel.version() + 1, key_cols,
                                              kShards, &unanswerable));
  for (const auto& shard : unanswerable) EXPECT_TRUE(shard.empty());
}

TEST(RelationVersionTest, SetLogsEraseTheInsert) {
  Relation rel("R", {"a", "b"});
  rel.AppendRow({1, 2});
  rel.EnableChangeLog(8);
  uint64_t v0 = rel.version();
  rel.Set(0, 1, 9);
  std::vector<RowChange> changes;
  ASSERT_TRUE(rel.CollectChangesSince(v0, &changes));
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_FALSE(changes[0].insert);
  EXPECT_EQ(changes[0].row, (std::vector<Value>{1, 2}));
  EXPECT_TRUE(changes[1].insert);
  EXPECT_EQ(changes[1].row, (std::vector<Value>{1, 9}));
}

TEST(RelationVersionTest, ApplyDeltaValidatesBeforeMutating) {
  Relation rel("R", {"a"});
  rel.AppendRow({1});
  rel.AppendRow({2});
  uint64_t v0 = rel.version();
  // Out-of-range and duplicate delete indices, arity-mismatched inserts.
  EXPECT_FALSE(rel.ApplyDelta({}, {5}).ok());
  EXPECT_FALSE(rel.ApplyDelta({}, {0, 0}).ok());
  std::vector<std::vector<Value>> bad = {{1, 2}};
  EXPECT_FALSE(rel.ApplyDelta(bad, {}).ok());
  EXPECT_EQ(rel.version(), v0);
  EXPECT_EQ(rel.NumRows(), 2u);

  std::vector<std::vector<Value>> inserts = {{7}, {8}};
  ASSERT_TRUE(rel.ApplyDelta(inserts, {0, 1}).ok());
  EXPECT_EQ(rel.NumRows(), 2u);
  EXPECT_EQ(rel.At(0, 0), 7);
  EXPECT_EQ(rel.At(1, 0), 8);
  EXPECT_EQ(rel.version(), v0 + 4);
}

TEST(DatabaseDeltaTest, RoutesToRelations) {
  Database db;
  Relation* r = db.AddRelation("R", {"a"});
  r->AppendRow({1});
  DatabaseDelta delta;
  delta.push_back(RelationDelta{"R", {{5}}, {0}});
  ASSERT_TRUE(db.ApplyDelta(delta).ok());
  EXPECT_EQ(db.Find("R")->At(0, 0), 5);
  ASSERT_TRUE(db.VersionOf("R").ok());
  EXPECT_EQ(*db.VersionOf("R"), 3u);
  delta[0].relation = "missing";
  EXPECT_EQ(db.ApplyDelta(delta).code(), Status::Code::kNotFound);
  EXPECT_EQ(db.VersionOf("missing").status().code(),
            Status::Code::kNotFound);
}

TEST(DatabaseDeltaTest, PoisonedBatchLeavesEveryRelationUntouched) {
  Database db;
  Relation* a = db.AddRelation("A", {"x"});
  Relation* b = db.AddRelation("B", {"x"});
  a->AppendRow({1});
  b->AppendRow({2});
  a->EnableChangeLog(8);
  uint64_t va = a->version();
  uint64_t vb = b->version();

  // A valid delta for A rides in the same batch as an invalid one for B:
  // the whole batch rejects before anything mutates — A keeps its rows,
  // version, and an empty changelog window.
  DatabaseDelta delta;
  delta.push_back(RelationDelta{"A", {{7}}, {0}});
  delta.push_back(RelationDelta{"B", {}, {5}});  // out-of-range delete
  EXPECT_FALSE(db.ApplyDelta(delta).ok());
  EXPECT_EQ(a->version(), va);
  EXPECT_EQ(b->version(), vb);
  EXPECT_EQ(a->NumRows(), 1u);
  EXPECT_EQ(a->At(0, 0), 1);
  EXPECT_EQ(a->NumChangesSince(va), 0u);

  // Repeated-name batches validate against the row count earlier entries
  // leave behind: this delete index only exists after the first entry's
  // inserts land.
  delta.clear();
  delta.push_back(RelationDelta{"A", {{8}, {9}}, {}});  // 1 row -> 3 rows
  delta.push_back(RelationDelta{"A", {}, {2}});
  ASSERT_TRUE(db.ApplyDelta(delta).ok());
  EXPECT_EQ(a->NumRows(), 2u);

  // ...and a later entry that overruns the simulated count rejects the
  // whole batch even though each entry is fine against the current size.
  uint64_t va2 = a->version();
  delta.clear();
  delta.push_back(RelationDelta{"A", {}, {0, 1}});  // 2 rows -> 0 rows
  delta.push_back(RelationDelta{"A", {}, {0}});     // nothing left to delete
  EXPECT_FALSE(db.ApplyDelta(delta).ok());
  EXPECT_EQ(a->version(), va2);
  EXPECT_EQ(a->NumRows(), 2u);
}

// --- DynTable -----------------------------------------------------------

TEST(DynTableTest, LoadGetSetAdjust) {
  CountedRelation rel({1, 2});
  rel.AppendRow({1, 10}, Count(3));
  rel.AppendRow({2, 20}, Count(5));
  rel.Normalize();
  DynTable table(AttributeSet{1, 2});
  table.Load(rel);
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.Get(std::vector<Value>{1, 10}), Count(3));
  EXPECT_EQ(table.Get(std::vector<Value>{9, 9}), Count::Zero());

  // Adjust up, down, and down-to-erase.
  EXPECT_TRUE(table.Adjust(std::vector<Value>{1, 10}, Count(2), true));
  EXPECT_EQ(table.Get(std::vector<Value>{1, 10}), Count(5));
  EXPECT_TRUE(table.Adjust(std::vector<Value>{1, 10}, Count(5), false));
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.Get(std::vector<Value>{1, 10}), Count::Zero());
  // Removing more than present poisons.
  EXPECT_FALSE(table.Adjust(std::vector<Value>{2, 20}, Count(6), false));
  EXPECT_TRUE(table.saturated());
}

TEST(DynTableTest, SecondaryIndexesFollowMutations) {
  DynTable table(AttributeSet{1, 2});
  int by_first = table.AddIndex({0});
  table.Set(std::vector<Value>{1, 10}, Count(1));
  table.Set(std::vector<Value>{1, 11}, Count(2));
  table.Set(std::vector<Value>{2, 10}, Count(3));
  std::vector<uint32_t> rows;
  table.LookupIndex(by_first, std::vector<Value>{1}, &rows);
  EXPECT_EQ(rows.size(), 2u);
  table.Set(std::vector<Value>{1, 10}, Count::Zero());  // erase
  rows.clear();
  table.LookupIndex(by_first, std::vector<Value>{1}, &rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(table.RowValues(rows[0])[1], 11);
  // Indexes registered late see existing rows.
  int by_second = table.AddIndex({1});
  rows.clear();
  table.LookupIndex(by_second, std::vector<Value>{10}, &rows);
  EXPECT_EQ(rows.size(), 1u);
  // Slot reuse after erasure keeps indexes coherent.
  table.Set(std::vector<Value>{3, 30}, Count(4));
  rows.clear();
  table.LookupIndex(by_first, std::vector<Value>{3}, &rows);
  EXPECT_EQ(rows.size(), 1u);
}

// --- SensitivityCache behavior ------------------------------------------

TSensComputeOptions ThreadedOptions(int threads) {
  TSensComputeOptions options;
  options.join.threads = threads;
  return options;
}

TEST(SensitivityCacheTest, HitRepairAndLargeDeltaCounters) {
  PaperExample ex = MakeFigure3Example();
  SensitivityCacheConfig config;
  config.max_delta_fraction = 0.26;  // 8 rows: repair up to 2 changes
  SensitivityCache cache(config);
  auto r1 = cache.Compute(ex.query, ex.db);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  auto r2 = cache.Compute(ex.query, ex.db);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  ExpectResultsIdentical(*r1, *r2, "hit");

  // One-row delta: repaired, and identical to a fresh compute.
  ex.db.Find("R2")->AppendRow({1, 1});
  auto r3 = cache.Compute(ex.query, ex.db);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(cache.stats().repairs, 1u);
  auto fresh = ComputeLocalSensitivity(ex.query, ex.db);
  ASSERT_TRUE(fresh.ok());
  ExpectResultsIdentical(*r3, *fresh, "repair");

  // A delta larger than the fraction falls back to a full recompute.
  for (int i = 0; i < 6; ++i) ex.db.Find("R1")->AppendRow({i, i});
  auto r4 = cache.Compute(ex.query, ex.db);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(cache.stats().fallback_large_delta, 1u);
  fresh = ComputeLocalSensitivity(ex.query, ex.db);
  ASSERT_TRUE(fresh.ok());
  ExpectResultsIdentical(*r4, *fresh, "large-delta fallback");
}

TEST(SensitivityCacheTest, StaleLogFallsBack) {
  PaperExample ex = MakeFigure3Example();
  SensitivityCacheConfig config;
  config.changelog_capacity = 2;
  config.max_delta_fraction = 1000.0;  // never reject on size
  SensitivityCache cache(config);
  ASSERT_TRUE(cache.Compute(ex.query, ex.db).ok());
  // Three changes to one relation overflow its 2-entry window.
  Relation* r2 = ex.db.Find("R2");
  r2->AppendRow({1, 1});
  r2->AppendRow({1, 2});
  r2->AppendRow({2, 2});
  auto r = cache.Compute(ex.query, ex.db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(cache.stats().fallback_stale, 1u);
  auto fresh = ComputeLocalSensitivity(ex.query, ex.db);
  ASSERT_TRUE(fresh.ok());
  ExpectResultsIdentical(*r, *fresh, "stale fallback");
  // The rebuild re-armed the (new) window: a small delta now repairs.
  r2->AppendRow({3, 3});
  ASSERT_TRUE(cache.Compute(ex.query, ex.db).ok());
  EXPECT_EQ(cache.stats().repairs, 1u);
}

TEST(SensitivityCacheTest, CyclicQueriesRepairViaGhd) {
  // Cyclic queries repair through their (searched) GHD's bag tables —
  // a data change patches, it no longer recomputes.
  Rng rng(7);
  PaperExample tri = MakeRandomTriangleInstance(rng, 6, 3);
  std::string reason;
  EXPECT_TRUE(SensitivityCache::RepairSupported(tri.query, {}, &reason));
  EXPECT_TRUE(reason.empty()) << reason;
  SensitivityCacheConfig config;
  config.max_delta_fraction = 1.0;
  SensitivityCache cache(config);
  auto r1 = cache.Compute(tri.query, tri.db);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  ASSERT_TRUE(cache.Compute(tri.query, tri.db).ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  tri.db.Find(tri.query.atom(0).relation)->AppendRow({1, 1});
  auto r2 = cache.Compute(tri.query, tri.db);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(cache.stats().repairs, 1u);
  EXPECT_EQ(cache.stats().fallback_unsupported, 0u);
  auto fresh = ComputeLocalSensitivity(tri.query, tri.db);
  ASSERT_TRUE(fresh.ok());
  ExpectResultsIdentical(*r2, *fresh, "cyclic repair");
}

TEST(SensitivityCacheTest, TopKStaysMemoizedWithReason) {
  // Repair maintains exact tables; the top-k approximation deliberately
  // does not repair and stays version-memoized.
  PaperExample ex = MakeFigure3Example();
  TSensComputeOptions topk;
  topk.top_k = 1;
  std::string reason;
  EXPECT_FALSE(SensitivityCache::RepairSupported(ex.query, topk, &reason));
  EXPECT_NE(reason.find("top-k"), std::string::npos) << reason;
  SensitivityCache cache;
  ASSERT_TRUE(cache.Compute(ex.query, ex.db, topk).ok());
  ASSERT_TRUE(cache.Compute(ex.query, ex.db, topk).ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  ex.db.Find("R2")->AppendRow({1, 1});
  auto r = cache.Compute(ex.query, ex.db, topk);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(cache.stats().fallback_unsupported, 1u);
  EXPECT_EQ(cache.stats().repairs, 0u);
  auto fresh = ComputeLocalSensitivity(ex.query, ex.db, topk);
  ASSERT_TRUE(fresh.ok());
  ExpectResultsIdentical(*r, *fresh, "top-k memoized");
}

TEST(SensitivityCacheTest, KeepTablesStaysMemoizedWithReason) {
  // keep_tables results carry full multiplicity tables that repair does
  // not patch; they stay version-memoized (and recomputed on change).
  PaperExample fig1 = MakeFigure1Example();
  TSensComputeOptions keep;
  keep.keep_tables = true;
  std::string reason;
  EXPECT_FALSE(SensitivityCache::RepairSupported(fig1.query, keep, &reason));
  EXPECT_NE(reason.find("keep_tables"), std::string::npos) << reason;
  SensitivityCache cache;
  auto kt = cache.Compute(fig1.query, fig1.db, keep);
  ASSERT_TRUE(kt.ok());
  Relation* rel = fig1.db.Find(fig1.query.atom(0).relation);
  std::vector<Value> row(rel->arity(), 1);
  rel->AppendRow(row);
  auto kt2 = cache.Compute(fig1.query, fig1.db, keep);
  ASSERT_TRUE(kt2.ok());
  EXPECT_EQ(cache.stats().fallback_unsupported, 1u);
  EXPECT_EQ(cache.stats().repairs, 0u);
  auto kt_fresh = ComputeLocalSensitivity(fig1.query, fig1.db, keep);
  ASSERT_TRUE(kt_fresh.ok());
  ExpectResultsIdentical(*kt2, *kt_fresh, "keep_tables memoized");
}

TEST(SensitivityCacheTest, DeleteHeavyStreamRepairsDownToEmpty) {
  // The delta gate measures against the pre-delta size (current rows +
  // pending changes), so single-row deletes keep repairing even as the
  // relations shrink to empty — no fraction over 1 against a shrunken
  // size, no division by an emptied relation.
  PaperExample ex = MakeFigure3Example();
  SensitivityCacheConfig config;
  config.max_delta_fraction = 0.2;  // the one-change floor carries each step
  SensitivityCache cache(config);
  ASSERT_TRUE(cache.Compute(ex.query, ex.db).ok());
  for (const char* name : {"R1", "R2", "R3", "R4"}) {
    Relation* rel = ex.db.Find(name);
    while (rel->NumRows() > 0) {
      rel->SwapRemoveRow(rel->NumRows() - 1);
      auto cached = cache.Compute(ex.query, ex.db);
      ASSERT_TRUE(cached.ok()) << cached.status().ToString();
      auto fresh = ComputeLocalSensitivity(ex.query, ex.db);
      ASSERT_TRUE(fresh.ok());
      ExpectResultsIdentical(*cached, *fresh, std::string("shrink ") + name);
    }
  }
  EXPECT_EQ(ex.db.TotalRows(), 0u);
  // Every one of the 8 deletes repaired in place; the gate never rejected.
  EXPECT_EQ(cache.stats().repairs, 8u);
  EXPECT_EQ(cache.stats().fallback_large_delta, 0u);
  // Growth out of the emptied database repairs too.
  ex.db.Find("R2")->AppendRow({1, 1});
  auto cached = cache.Compute(ex.query, ex.db);
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cache.stats().repairs, 9u);
  auto fresh = ComputeLocalSensitivity(ex.query, ex.db);
  ASSERT_TRUE(fresh.ok());
  ExpectResultsIdentical(*cached, *fresh, "regrow");
}

TEST(SensitivityCacheTest, DistinctOptionsGetDistinctEntries) {
  PaperExample ex = MakeFigure3Example();
  TSensComputeOptions path_on;
  TSensComputeOptions path_off;
  path_off.prefer_path_algorithm = false;
  EXPECT_NE(SensitivityCache::Fingerprint(ex.query, path_on),
            SensitivityCache::Fingerprint(ex.query, path_off));
  SensitivityCache cache;
  ASSERT_TRUE(cache.Compute(ex.query, ex.db, path_on).ok());
  ASSERT_TRUE(cache.Compute(ex.query, ex.db, path_off).ok());
  EXPECT_EQ(cache.stats().misses, 2u);
  // The entries are distinct but their source nodes are shared: the first
  // Compute's delta pass repairs every pending node, so the second entry
  // only reassembles from already-current nodes.
  ex.db.Find("R3")->AppendRow({1, 1});
  auto a = cache.Compute(ex.query, ex.db, path_on);
  auto b = cache.Compute(ex.query, ex.db, path_off);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(cache.stats().repairs, 1u);
  EXPECT_EQ(cache.stats().shared_assemblies, 1u);
  EXPECT_GT(cache.stats().shared_attaches, 0u);
  auto fresh_on = ComputeLocalSensitivity(ex.query, ex.db, path_on);
  auto fresh_off = ComputeLocalSensitivity(ex.query, ex.db, path_off);
  ASSERT_TRUE(fresh_on.ok());
  ASSERT_TRUE(fresh_off.ok());
  ExpectResultsIdentical(*a, *fresh_on, "path engine entry");
  ExpectResultsIdentical(*b, *fresh_off, "tree engine entry");
}

TEST(SensitivityCacheTest, SingleAtomQueryIsConstant) {
  Database db;
  Relation* rel = db.AddRelation("R", {"a", "b"});
  rel->AppendRow({1, 2});
  ConjunctiveQuery q;
  q.AddAtom(db, "R", {"A", "B"});
  SensitivityCache cache;
  auto r1 = cache.Compute(q, db);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->local_sensitivity, Count(1));
  rel->AppendRow({3, 4});
  auto r2 = cache.Compute(q, db);
  ASSERT_TRUE(r2.ok());
  // Data-independent: served as a hit without consulting any change log.
  EXPECT_EQ(cache.stats().hits, 1u);
  ExpectResultsIdentical(*r1, *r2, "constant");
}

TEST(SensitivityCacheTest, SkipAtomsFlowThroughRepair) {
  PaperExample ex = MakeFigure3Example();
  TSensComputeOptions options;
  options.skip_atoms = {1};
  SensitivityCache cache;
  ASSERT_TRUE(cache.Compute(ex.query, ex.db, options).ok());
  ex.db.Find("R1")->AppendRow({2, 1});
  auto r = cache.Compute(ex.query, ex.db, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(cache.stats().repairs, 1u);
  auto fresh = ComputeLocalSensitivity(ex.query, ex.db, options);
  ASSERT_TRUE(fresh.ok());
  ExpectResultsIdentical(*r, *fresh, "skip_atoms");
  EXPECT_TRUE(r->atoms[1].skipped);
}

TEST(SensitivityCacheTest, LruEvictionBoundsEntries) {
  PaperExample ex = MakeFigure3Example();
  SensitivityCacheConfig config;
  config.max_entries = 1;
  SensitivityCache cache(config);
  TSensComputeOptions a;
  TSensComputeOptions b;
  b.prefer_path_algorithm = false;  // distinct fingerprint
  ASSERT_TRUE(cache.Compute(ex.query, ex.db, a).ok());
  ASSERT_TRUE(cache.Compute(ex.query, ex.db, b).ok());  // evicts `a`
  ASSERT_TRUE(cache.Compute(ex.query, ex.db, a).ok());  // recomputed
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
  ASSERT_TRUE(cache.Compute(ex.query, ex.db, a).ok());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(SensitivityCacheTest, ByteBudgetSpillsStateButKeepsResult) {
  PaperExample ex = MakeFigure3Example();
  SensitivityCacheConfig config;
  config.max_state_bytes = 1;  // nothing repairable fits
  SensitivityCache cache(config);
  ExecContext ctx;
  TSensComputeOptions options;
  options.join.ctx = &ctx;

  auto r1 = cache.Compute(ex.query, ex.db, options);
  ASSERT_TRUE(r1.ok());
  // Every captured node's table was spilled straight away (the spill is
  // node-granular, so the count is one per shared node); the result
  // survives and released nodes account zero bytes.
  EXPECT_GT(cache.stats().spills, 0u);
  EXPECT_EQ(cache.stats().state_bytes, 0u);
  ASSERT_NE(ctx.FindStats("cache.spill"), nullptr);
  EXPECT_GT(ctx.FindStats("cache.spill")->rows_in, 0u);
  const uint64_t first_spills = cache.stats().spills;

  // Unchanged data: still a pure hit.
  ASSERT_TRUE(cache.Compute(ex.query, ex.db, options).ok());
  EXPECT_EQ(cache.stats().hits, 1u);

  // Changed data: the spilled entry recomputes (counted separately from
  // unsupported shapes), stays correct, and is spilled again.
  ex.db.Find("R2")->AppendRow({1, 1});
  auto r2 = cache.Compute(ex.query, ex.db, options);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(cache.stats().fallback_spilled, 1u);
  EXPECT_EQ(cache.stats().fallback_unsupported, 0u);
  EXPECT_GT(cache.stats().spills, first_spills);
  EXPECT_EQ(cache.stats().state_bytes, 0u);
  auto fresh = ComputeLocalSensitivity(ex.query, ex.db, options);
  ASSERT_TRUE(fresh.ok());
  ExpectResultsIdentical(*r2, *fresh, "spilled recompute");
}

// Builds a second Figure-3-shaped chain over fresh relation names inside
// the same database. The distinct relations give every node a distinct
// canonical signature, so the two queries share nothing and the byte
// budget must pick node victims across entries by recency.
ConjunctiveQuery AddDisjointChain(PaperExample& ex) {
  Dictionary& d = ex.db.dict();
  auto* s1 = ex.db.AddRelation("S1", {"A", "B"});
  auto* s2 = ex.db.AddRelation("S2", {"B", "C"});
  auto* s3 = ex.db.AddRelation("S3", {"C", "D"});
  auto* s4 = ex.db.AddRelation("S4", {"D", "E"});
  auto v = [&](const char* s) { return d.Intern(s); };
  s1->AppendRow({v("a1"), v("b1")});
  s1->AppendRow({v("a2"), v("b1")});
  s2->AppendRow({v("b1"), v("c1")});
  s2->AppendRow({v("b2"), v("c2")});
  s3->AppendRow({v("c1"), v("d1")});
  s3->AppendRow({v("c1"), v("d2")});
  s4->AppendRow({v("d1"), v("e1")});
  s4->AppendRow({v("d2"), v("e1")});
  ConjunctiveQuery q;
  q.AddAtom(ex.db, "S1", {"A", "B"});
  q.AddAtom(ex.db, "S2", {"B", "C"});
  q.AddAtom(ex.db, "S3", {"C", "D"});
  q.AddAtom(ex.db, "S4", {"D", "E"});
  return q;
}

TEST(SensitivityCacheTest, ByteBudgetSpillsLruNodesFirst) {
  PaperExample ex = MakeFigure3Example();
  ConjunctiveQuery q2 = AddDisjointChain(ex);
  // Measure one entry's state footprint with an unbounded cache.
  size_t one_entry_bytes = 0;
  {
    SensitivityCache probe;
    ASSERT_TRUE(probe.Compute(ex.query, ex.db).ok());
    one_entry_bytes = probe.stats().state_bytes;
    ASSERT_GT(one_entry_bytes, 0u);
  }

  // Budget for one entry but not two: the older entry's nodes spill, the
  // hot one keeps repairing.
  SensitivityCacheConfig config;
  config.max_state_bytes = one_entry_bytes + one_entry_bytes / 2;
  SensitivityCache cache(config);
  ASSERT_TRUE(cache.Compute(ex.query, ex.db).ok());
  ASSERT_TRUE(cache.Compute(q2, ex.db).ok());
  EXPECT_GT(cache.stats().spills, 0u);
  EXPECT_LE(cache.stats().state_bytes, config.max_state_bytes);

  // The surviving (recently used) entry still repairs in place.
  ex.db.Find("S1")->AppendRow({0, 1});
  ASSERT_TRUE(cache.Compute(q2, ex.db).ok());
  EXPECT_EQ(cache.stats().repairs, 1u);
  // The spilled one recomputes.
  ex.db.Find("R1")->AppendRow({0, 1});
  ASSERT_TRUE(cache.Compute(ex.query, ex.db).ok());
  EXPECT_EQ(cache.stats().fallback_spilled, 1u);
}

TEST(SensitivityCacheTest, RecordsExecContextOps) {
  PaperExample ex = MakeFigure3Example();
  ExecContext ctx;
  TSensComputeOptions options;
  options.join.ctx = &ctx;
  SensitivityCache cache;
  ASSERT_TRUE(cache.Compute(ex.query, ex.db, options).ok());
  ASSERT_TRUE(cache.Compute(ex.query, ex.db, options).ok());
  ex.db.Find("R2")->AppendRow({1, 1});
  ASSERT_TRUE(cache.Compute(ex.query, ex.db, options).ok());
  ASSERT_NE(ctx.FindStats("cache.miss"), nullptr);
  ASSERT_NE(ctx.FindStats("cache.hit"), nullptr);
  ASSERT_NE(ctx.FindStats("cache.repair"), nullptr);
  EXPECT_EQ(ctx.FindStats("cache.repair")->calls, 1u);
  EXPECT_GT(ctx.FindStats("cache.repair")->rows_in, 0u);
}

// Peek is the epoch-aware read-only probe the serving layer uses: it hits
// only while the cached entry's relation versions match the database
// exactly, and never mutates cache state (no repair, no LRU touch, no
// stats).
TEST(SensitivityCacheTest, PeekHitsOnlyAtMatchingVersions) {
  PaperExample ex = MakeFigure3Example();
  SensitivityCache cache;
  EXPECT_FALSE(cache.Peek(ex.query, ex.db, {}));  // never computed

  auto computed = cache.Compute(ex.query, ex.db);
  ASSERT_TRUE(computed.ok());
  SensitivityResult peeked;
  ASSERT_TRUE(cache.Peek(ex.query, ex.db, {}, &peeked));
  ExpectResultsIdentical(*computed, peeked, "peek after compute");
  EXPECT_TRUE(cache.Peek(ex.query, ex.db, {}));  // out is optional

  // Execution knobs are excluded from the fingerprint: a different thread
  // count still hits.
  TSensComputeOptions threaded;
  threaded.join.threads = 8;
  EXPECT_TRUE(cache.Peek(ex.query, ex.db, threaded));

  // Any version drift makes the entry stale for Peek — it does not repair.
  const uint64_t hits_before = cache.stats().hits;
  ex.db.Find("R3")->AppendRow({1, 1});
  EXPECT_FALSE(cache.Peek(ex.query, ex.db, {}));
  EXPECT_EQ(cache.stats().hits, hits_before);  // Peek never touched stats
  EXPECT_EQ(cache.stats().repairs, 0u);

  // Compute repairs the entry; Peek hits again at the new versions.
  auto repaired = cache.Compute(ex.query, ex.db);
  ASSERT_TRUE(repaired.ok());
  ASSERT_TRUE(cache.Peek(ex.query, ex.db, {}, &peeked));
  ExpectResultsIdentical(*repaired, peeked, "peek after repair");
}

// --- streaming differential suite ---------------------------------------

// Applies one randomized batch (1-3 inserts/deletes) to a random relation
// of the query, mixing the direct mutators and the batched ApplyDelta API.
// The generator itself is the shared seeded-stream helper in test_util, so
// this suite, plan_cache_test, and serving_test replay the same workload
// family.
void RandomMutation(Rng& rng, const ConjunctiveQuery& q, Database& db,
                    int domain) {
  testing::ApplyRandomMutation(rng, db, testing::QueryRelationNames(q),
                               domain);
}

class IncrementalStreamTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

// The core contract: after every prefix of a randomized update stream, the
// cached/incremental result is bit-identical to a from-scratch compute,
// and its LS agrees with the naive oracle.
TEST_P(IncrementalStreamTest, PathQueryPrefixesMatchScratchAndNaive) {
  const auto [seed, threads] = GetParam();
  Rng rng(seed * 97 + 11);
  PaperExample ex = MakeFigure3Example();
  SensitivityCacheConfig config;
  config.max_delta_fraction = 1.0;  // exercise repair as hard as possible
  SensitivityCache cache(config);
  TSensComputeOptions options = ThreadedOptions(threads);
  for (int step = 0; step < 18; ++step) {
    auto cached = cache.Compute(ex.query, ex.db, options);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    auto fresh = ComputeLocalSensitivity(ex.query, ex.db, options);
    ASSERT_TRUE(fresh.ok());
    ExpectResultsIdentical(*cached, *fresh,
                           "path step " + std::to_string(step));
    Database clone = ex.db.Clone();
    auto naive = NaiveLocalSensitivity(ex.query, clone);
    ASSERT_TRUE(naive.ok());
    EXPECT_EQ(cached->local_sensitivity, naive->local_sensitivity)
        << "path step " << step;
    RandomMutation(rng, ex.query, ex.db, 3);
  }
  EXPECT_GT(cache.stats().repairs, 0u);
}

TEST_P(IncrementalStreamTest, PathQueryWithPredicatesMatchesScratch) {
  const auto [seed, threads] = GetParam();
  Rng rng(seed * 41 + 17);
  PaperExample ex = MakeFigure3Example();
  // Predicates on link variables flow into the ⊤/⊥ tracker filters; the
  // one on atom 2 must also drop non-matching delta rows at the source.
  ex.query.AddPredicate(
      1, Predicate{ex.query.atom(1).vars[0], Predicate::Op::kLe, 1});
  ex.query.AddPredicate(
      2, Predicate{ex.query.atom(2).vars[1], Predicate::Op::kNe, 0});
  SensitivityCacheConfig config;
  config.max_delta_fraction = 1.0;
  SensitivityCache cache(config);
  TSensComputeOptions options = ThreadedOptions(threads);
  for (int step = 0; step < 14; ++step) {
    auto cached = cache.Compute(ex.query, ex.db, options);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    auto fresh = ComputeLocalSensitivity(ex.query, ex.db, options);
    ASSERT_TRUE(fresh.ok());
    ExpectResultsIdentical(*cached, *fresh,
                           "pred step " + std::to_string(step));
    if (step % 5 == 4) {
      // Point overwrites repair through the erase+insert log pair.
      Relation* rel = ex.db.Find(ex.query.atom(1).relation);
      if (rel->NumRows() > 0) {
        rel->Set(rng.NextBounded(rel->NumRows()), 0,
                 static_cast<Value>(rng.NextBounded(3)));
      }
    } else {
      RandomMutation(rng, ex.query, ex.db, 3);
    }
  }
  EXPECT_GT(cache.stats().repairs, 0u);
}

TEST_P(IncrementalStreamTest, ScrambledAtomOrderPathMatchesScratch) {
  // Atoms declared against the chain direction: PathOrder's chain and the
  // atom indexing disagree, exercising the order-sensitive reduction.
  const auto [seed, threads] = GetParam();
  Rng rng(seed * 59 + 7);
  Database db;
  for (const char* name : {"W", "X", "Y", "Z"}) {
    Relation* rel = db.AddRelation(name, {"u", "v"});
    for (int i = 0; i < 5; ++i) {
      rel->AppendRow({static_cast<Value>(rng.NextBounded(3)),
                      static_cast<Value>(rng.NextBounded(3))});
    }
  }
  ConjunctiveQuery q;
  q.AddAtom(db, "Z", {"D", "E"});
  q.AddAtom(db, "X", {"B", "C"});
  q.AddAtom(db, "W", {"A", "B"});
  q.AddAtom(db, "Y", {"C", "D"});
  SensitivityCacheConfig config;
  config.max_delta_fraction = 1.0;
  SensitivityCache cache(config);
  TSensComputeOptions options = ThreadedOptions(threads);
  for (int step = 0; step < 14; ++step) {
    auto cached = cache.Compute(q, db, options);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    auto fresh = ComputeLocalSensitivity(q, db, options);
    ASSERT_TRUE(fresh.ok());
    ExpectResultsIdentical(*cached, *fresh,
                           "scrambled step " + std::to_string(step));
    RandomMutation(rng, q, db, 3);
  }
  EXPECT_GT(cache.stats().repairs, 0u);
}

TEST_P(IncrementalStreamTest, RandomAcyclicPrefixesMatchScratchAndNaive) {
  const auto [seed, threads] = GetParam();
  Rng rng(seed * 131 + 5);
  RandomQuerySpec spec;
  spec.max_rows = 6;
  TSensComputeOptions options = ThreadedOptions(threads);
  for (int trial = 0; trial < 4; ++trial) {
    PaperExample ex = MakeRandomAcyclicInstance(rng, spec);
    SensitivityCacheConfig config;
    config.max_delta_fraction = 1.0;
    SensitivityCache cache(config);
    for (int step = 0; step < 8; ++step) {
      auto cached = cache.Compute(ex.query, ex.db, options);
      ASSERT_TRUE(cached.ok()) << cached.status().ToString();
      auto fresh = ComputeLocalSensitivity(ex.query, ex.db, options);
      ASSERT_TRUE(fresh.ok());
      ExpectResultsIdentical(
          *cached, *fresh,
          "trial " + std::to_string(trial) + " step " + std::to_string(step));
      Database clone = ex.db.Clone();
      auto naive = NaiveLocalSensitivity(ex.query, clone);
      ASSERT_TRUE(naive.ok());
      EXPECT_EQ(cached->local_sensitivity, naive->local_sensitivity)
          << "trial " << trial << " step " << step;
      RandomMutation(rng, ex.query, ex.db, spec.domain_size + 1);
    }
  }
}

TEST_P(IncrementalStreamTest, TreeEngineEntriesMatchScratch) {
  // prefer_path_algorithm = false forces the tree engine onto path-shaped
  // queries too, covering the ⊥/⊤-per-bag repair on multi-level trees.
  const auto [seed, threads] = GetParam();
  Rng rng(seed * 151 + 29);
  TSensComputeOptions options = ThreadedOptions(threads);
  options.prefer_path_algorithm = false;
  PaperExample ex = MakeFigure3Example();
  SensitivityCacheConfig config;
  config.max_delta_fraction = 1.0;
  SensitivityCache cache(config);
  for (int step = 0; step < 14; ++step) {
    auto cached = cache.Compute(ex.query, ex.db, options);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    auto fresh = ComputeLocalSensitivity(ex.query, ex.db, options);
    ASSERT_TRUE(fresh.ok());
    ExpectResultsIdentical(*cached, *fresh,
                           "tree step " + std::to_string(step));
    RandomMutation(rng, ex.query, ex.db, 3);
  }
  EXPECT_GT(cache.stats().repairs, 0u);
}

TEST_P(IncrementalStreamTest, CyclicPrefixesRepairAndMatchScratchAndNaive) {
  // The triangle goes through the searched GHD: one bag holds two atoms
  // (bag-level join repair), and the per-atom multiplicity components join
  // attribute-sharing pieces. Every prefix must repair, not fall back.
  const auto [seed, threads] = GetParam();
  Rng rng(seed * 173 + 3);
  PaperExample ex = MakeRandomTriangleInstance(rng, 6, 3);
  SensitivityCacheConfig config;
  config.max_delta_fraction = 1.0;
  SensitivityCache cache(config);
  TSensComputeOptions options = ThreadedOptions(threads);
  for (int step = 0; step < 10; ++step) {
    auto cached = cache.Compute(ex.query, ex.db, options);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    auto fresh = ComputeLocalSensitivity(ex.query, ex.db, options);
    ASSERT_TRUE(fresh.ok());
    ExpectResultsIdentical(*cached, *fresh,
                           "cyclic step " + std::to_string(step));
    Database clone = ex.db.Clone();
    auto naive = NaiveLocalSensitivity(ex.query, clone);
    ASSERT_TRUE(naive.ok());
    EXPECT_EQ(cached->local_sensitivity, naive->local_sensitivity)
        << "cyclic step " << step;
    RandomMutation(rng, ex.query, ex.db, 3);
  }
  EXPECT_GT(cache.stats().repairs, 0u);
  EXPECT_EQ(cache.stats().fallback_unsupported, 0u);
}

TEST_P(IncrementalStreamTest, ExplicitGhdPrefixesRepairAndMatchScratch) {
  // An explicitly supplied decomposition repairs through the same bag
  // machinery as a searched one — and fingerprints as a distinct entry.
  const auto [seed, threads] = GetParam();
  Rng rng(seed * 239 + 21);
  PaperExample ex = MakeRandomTriangleInstance(rng, 6, 3);
  auto ghd = BuildGhd(ex.query, {{0, 1}, {2}});
  ASSERT_TRUE(ghd.ok()) << ghd.status().ToString();
  TSensComputeOptions options = ThreadedOptions(threads);
  options.ghd = &*ghd;
  EXPECT_NE(SensitivityCache::Fingerprint(ex.query, options),
            SensitivityCache::Fingerprint(ex.query, ThreadedOptions(threads)));
  EXPECT_TRUE(SensitivityCache::RepairSupported(ex.query, options));
  SensitivityCacheConfig config;
  config.max_delta_fraction = 1.0;
  SensitivityCache cache(config);
  for (int step = 0; step < 10; ++step) {
    auto cached = cache.Compute(ex.query, ex.db, options);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    auto fresh = ComputeLocalSensitivity(ex.query, ex.db, options);
    ASSERT_TRUE(fresh.ok());
    ExpectResultsIdentical(*cached, *fresh,
                           "explicit ghd step " + std::to_string(step));
    RandomMutation(rng, ex.query, ex.db, 3);
  }
  EXPECT_GT(cache.stats().repairs, 0u);
  EXPECT_EQ(cache.stats().fallback_unsupported, 0u);
}

TEST_P(IncrementalStreamTest, MultiPiecePrefixesRepairAndMatchScratch) {
  // M2 and M3 both bind {B, C}: the T_a pieces for atom M1 share
  // attributes and must be join-repaired, not cross-multiplied.
  const auto [seed, threads] = GetParam();
  Rng rng(seed * 211 + 13);
  Database db;
  for (const char* name : {"M1", "M2", "M3"}) {
    Relation* rel = db.AddRelation(name, {"u", "v"});
    for (int i = 0; i < 5; ++i) {
      rel->AppendRow({static_cast<Value>(rng.NextBounded(3)),
                      static_cast<Value>(rng.NextBounded(3))});
    }
  }
  ConjunctiveQuery q;
  q.AddAtom(db, "M1", {"A", "B"});
  q.AddAtom(db, "M2", {"B", "C"});
  q.AddAtom(db, "M3", {"B", "C"});
  SensitivityCacheConfig config;
  config.max_delta_fraction = 1.0;
  SensitivityCache cache(config);
  TSensComputeOptions options = ThreadedOptions(threads);
  for (int step = 0; step < 12; ++step) {
    auto cached = cache.Compute(q, db, options);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    auto fresh = ComputeLocalSensitivity(q, db, options);
    ASSERT_TRUE(fresh.ok());
    ExpectResultsIdentical(*cached, *fresh,
                           "multi-piece step " + std::to_string(step));
    Database clone = db.Clone();
    auto naive = NaiveLocalSensitivity(q, clone);
    ASSERT_TRUE(naive.ok());
    EXPECT_EQ(cached->local_sensitivity, naive->local_sensitivity)
        << "multi-piece step " << step;
    RandomMutation(rng, q, db, 3);
  }
  EXPECT_GT(cache.stats().repairs, 0u);
  EXPECT_EQ(cache.stats().fallback_unsupported, 0u);
}

TEST_P(IncrementalStreamTest, DisconnectedForestPrefixesRepairAndMatch) {
  // Two join trees plus a lone atom: a repair in one tree re-multiplies
  // the other trees' scale factors from the maintained per-tree totals.
  const auto [seed, threads] = GetParam();
  Rng rng(seed * 223 + 19);
  Database db;
  for (const char* name : {"D1", "D2", "D3", "D4", "D5"}) {
    Relation* rel = db.AddRelation(name, {"u", "v"});
    for (int i = 0; i < 4; ++i) {
      rel->AppendRow({static_cast<Value>(rng.NextBounded(3)),
                      static_cast<Value>(rng.NextBounded(3))});
    }
  }
  ConjunctiveQuery q;
  q.AddAtom(db, "D1", {"A", "B"});
  q.AddAtom(db, "D2", {"B", "C"});
  q.AddAtom(db, "D3", {"X", "Y"});
  q.AddAtom(db, "D4", {"Y", "Z"});
  q.AddAtom(db, "D5", {"U", "V"});
  SensitivityCacheConfig config;
  config.max_delta_fraction = 1.0;
  SensitivityCache cache(config);
  TSensComputeOptions options = ThreadedOptions(threads);
  for (int step = 0; step < 12; ++step) {
    auto cached = cache.Compute(q, db, options);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    auto fresh = ComputeLocalSensitivity(q, db, options);
    ASSERT_TRUE(fresh.ok());
    ExpectResultsIdentical(*cached, *fresh,
                           "disconnected step " + std::to_string(step));
    RandomMutation(rng, q, db, 3);
  }
  EXPECT_GT(cache.stats().repairs, 0u);
  EXPECT_EQ(cache.stats().fallback_unsupported, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, IncrementalStreamTest,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3),
                       ::testing::Values(0, 2, 8)));

// Small deltas stay on the serial loops (the kShardMinWork gate); this
// suite pushes batches of hundreds of changes over wide key domains so
// both sharded repair stages — change-log partitioning and parallel group
// re-aggregation — actually run, and must match serial and from-scratch.
TEST(ShardedRepairTest, LargeBatchDeltasCrossTheShardingGate) {
  for (int threads : {2, 8}) {
    Rng rng(8675309 + static_cast<uint64_t>(threads));
    Database db;
    const int kDomain = 50;
    for (const char* name : {"S1", "S2", "S3"}) {
      Relation* rel = db.AddRelation(name, {"u", "v"});
      for (int i = 0; i < 1000; ++i) {
        rel->AppendRow({static_cast<Value>(rng.NextBounded(kDomain)),
                        static_cast<Value>(rng.NextBounded(kDomain))});
      }
    }
    ConjunctiveQuery q;
    q.AddAtom(db, "S1", {"A", "B"});
    q.AddAtom(db, "S2", {"B", "C"});
    q.AddAtom(db, "S3", {"C", "D"});
    Database serial_db = db.Clone();

    SensitivityCacheConfig config;
    config.max_delta_fraction = 1.0;
    SensitivityCache sharded_cache(config);
    SensitivityCache serial_cache(config);
    TSensComputeOptions sharded_options = ThreadedOptions(threads);
    TSensComputeOptions serial_options;
    for (int step = 0; step < 4; ++step) {
      auto a = sharded_cache.Compute(q, db, sharded_options);
      auto b = serial_cache.Compute(q, serial_db, serial_options);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ExpectResultsIdentical(
          *a, *b, "batch threads " + std::to_string(threads) + " step " +
                      std::to_string(step));
      auto fresh = ComputeLocalSensitivity(q, db, sharded_options);
      ASSERT_TRUE(fresh.ok());
      ExpectResultsIdentical(*a, *fresh, "batch vs scratch step " +
                                             std::to_string(step));
      // One batch of ~200 inserts and ~100 deletes on a rotating
      // relation: far over the gate, touching most join-key groups.
      Relation* rel = db.Find(q.atom(step % 3).relation);
      std::vector<std::vector<Value>> inserts;
      for (int i = 0; i < 200; ++i) {
        inserts.push_back({static_cast<Value>(rng.NextBounded(kDomain)),
                           static_cast<Value>(rng.NextBounded(kDomain))});
      }
      std::vector<size_t> deletes;
      for (size_t idx = 0; idx < 100 && idx < rel->NumRows(); ++idx) {
        deletes.push_back(idx * 7 % rel->NumRows());
      }
      std::sort(deletes.begin(), deletes.end());
      deletes.erase(std::unique(deletes.begin(), deletes.end()),
                    deletes.end());
      ASSERT_TRUE(rel->ApplyDelta(inserts, deletes).ok());
      ASSERT_TRUE(serial_db.Find(q.atom(step % 3).relation)
                      ->ApplyDelta(inserts, deletes)
                      .ok());
    }
    EXPECT_GT(sharded_cache.stats().repairs, 0u);
    EXPECT_EQ(sharded_cache.stats().repairs, serial_cache.stats().repairs);
    EXPECT_EQ(sharded_cache.stats().delta_rows,
              serial_cache.stats().delta_rows);
    EXPECT_EQ(sharded_cache.stats().repair_rows,
              serial_cache.stats().repair_rows);
  }
}

// A byte budget too small for any state degrades the cache to a memoizer:
// every step recomputes, every answer stays correct.
TEST(SensitivityCacheTest, ByteBudgetedStreamStaysCorrect) {
  Rng rng(2718);
  PaperExample ex = MakeFigure3Example();
  SensitivityCacheConfig config;
  config.max_state_bytes = 1;
  config.max_delta_fraction = 1.0;
  SensitivityCache cache(config);
  for (int step = 0; step < 10; ++step) {
    auto cached = cache.Compute(ex.query, ex.db);
    ASSERT_TRUE(cached.ok());
    auto fresh = ComputeLocalSensitivity(ex.query, ex.db);
    ASSERT_TRUE(fresh.ok());
    ExpectResultsIdentical(*cached, *fresh,
                           "budget step " + std::to_string(step));
    RandomMutation(rng, ex.query, ex.db, 3);
  }
  EXPECT_GT(cache.stats().spills, 0u);
  EXPECT_EQ(cache.stats().repairs, 0u);  // nothing survives to repair
}

// Sharded repair must be bit-identical to serial repair — results AND
// work counters — so two caches replaying the same stream at different
// thread counts may never disagree on anything observable.
TEST(ShardedRepairTest, MatchesSerialRepairIncludingCounters) {
  for (int threads : {2, 8}) {
    Rng rng(314159);
    PaperExample serial_ex = MakeFigure3Example();
    PaperExample sharded_ex = MakeFigure3Example();
    SensitivityCacheConfig config;
    config.max_delta_fraction = 1.0;
    SensitivityCache serial_cache(config);
    SensitivityCache sharded_cache(config);
    TSensComputeOptions serial_options;   // threads = 0
    TSensComputeOptions sharded_options = ThreadedOptions(threads);
    for (int step = 0; step < 16; ++step) {
      auto a = serial_cache.Compute(serial_ex.query, serial_ex.db,
                                    serial_options);
      auto b = sharded_cache.Compute(sharded_ex.query, sharded_ex.db,
                                     sharded_options);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ExpectResultsIdentical(
          *a, *b, "threads " + std::to_string(threads) + " step " +
                      std::to_string(step));
      // The same mutation stream hits both databases.
      Rng mutation_rng(rng.NextBounded(1u << 30));
      Rng mutation_rng_copy = mutation_rng;
      RandomMutation(mutation_rng, serial_ex.query, serial_ex.db, 3);
      RandomMutation(mutation_rng_copy, sharded_ex.query, sharded_ex.db, 3);
    }
    EXPECT_GT(serial_cache.stats().repairs, 0u);
    EXPECT_EQ(serial_cache.stats().repairs, sharded_cache.stats().repairs);
    EXPECT_EQ(serial_cache.stats().delta_rows,
              sharded_cache.stats().delta_rows);
    EXPECT_EQ(serial_cache.stats().repair_rows,
              sharded_cache.stats().repair_rows);
    EXPECT_EQ(serial_cache.stats().fallback_stale,
              sharded_cache.stats().fallback_stale);
  }
}

// --- asymptotic work bound ----------------------------------------------

// The acceptance bar: on a larger instance, a repaired single-row update
// processes well under 5% of the rows a full recompute touches (summed
// over every operator the ExecContext saw).
TEST(IncrementalWorkTest, SingleRowRepairDoesAsymptoticallyLessWork) {
  Rng rng(42);
  Database db;
  const int kRows = 20000;
  const int kDomain = 500;
  const char* names[] = {"P1", "P2", "P3", "P4"};
  for (const char* name : names) {
    Relation* rel = db.AddRelation(name, {"x", "y"});
    rel->Reserve(kRows);
    for (int i = 0; i < kRows; ++i) {
      rel->AppendRow({static_cast<Value>(rng.NextBounded(kDomain)),
                      static_cast<Value>(rng.NextBounded(kDomain))});
    }
  }
  ConjunctiveQuery q;
  q.AddAtom(db, "P1", {"A", "B"});
  q.AddAtom(db, "P2", {"B", "C"});
  q.AddAtom(db, "P3", {"C", "D"});
  q.AddAtom(db, "P4", {"D", "E"});

  auto total_rows = [](const ExecContext& ctx) {
    uint64_t total = 0;
    for (const OperatorStats& s : ctx.stats()) {
      total += s.rows_in + s.rows_out;
    }
    return total;
  };

  ExecContext full_ctx;
  TSensComputeOptions full_options;
  full_options.join.ctx = &full_ctx;
  ASSERT_TRUE(ComputeLocalSensitivity(q, db, full_options).ok());
  const uint64_t full_work = total_rows(full_ctx);
  ASSERT_GT(full_work, 0u);

  SensitivityCache cache;
  ASSERT_TRUE(cache.Compute(q, db).ok());
  db.Find("P2")->AppendRow({static_cast<Value>(rng.NextBounded(kDomain)),
                            static_cast<Value>(rng.NextBounded(kDomain))});
  ExecContext repair_ctx;
  TSensComputeOptions repair_options;
  repair_options.join.ctx = &repair_ctx;
  auto repaired = cache.Compute(q, db, repair_options);
  ASSERT_TRUE(repaired.ok());
  ASSERT_EQ(cache.stats().repairs, 1u);
  const uint64_t repair_work = total_rows(repair_ctx);
  EXPECT_LT(static_cast<double>(repair_work),
            0.05 * static_cast<double>(full_work))
      << "repair " << repair_work << " rows vs full " << full_work;
  auto fresh = ComputeLocalSensitivity(q, db);
  ASSERT_TRUE(fresh.ok());
  ExpectResultsIdentical(*repaired, *fresh, "large instance repair");
}

}  // namespace
}  // namespace lsens
