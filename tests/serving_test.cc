// Concurrent serving: every answer a SensitivityServer session returns
// must be bit-identical to a from-scratch compute against the pinned epoch
// snapshot — under a scripted deterministic interleaving (replayable
// bit-for-bit), under free-running reader threads racing a writer through
// hundreds of epoch turns, and across pins held over many turns. Plus the
// epoch-reclamation ledger, shutdown/abuse semantics, and the serving-side
// PrivSQL budget.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "dp/privsql.h"
#include "exec/exec_context.h"
#include "query/explain.h"
#include "sensitivity/tsens.h"
#include "server/sensitivity_server.h"
#include "storage/database.h"
#include "test_util.h"

namespace lsens {
namespace {

using testing::MakeRandomDelta;
using testing::MakeStreamInstance;
using testing::QueryRelationNames;
using testing::StreamShape;

// Returns "" when the results agree bit-for-bit, else a short description.
// A plain function (not EXPECT_*) so reader threads can use it too.
std::string DiffResults(const SensitivityResult& a,
                        const SensitivityResult& b) {
  if (a.local_sensitivity != b.local_sensitivity) {
    return "local_sensitivity " + a.local_sensitivity.ToString() + " vs " +
           b.local_sensitivity.ToString();
  }
  if (a.argmax_atom != b.argmax_atom) return "argmax_atom differs";
  if (a.atoms.size() != b.atoms.size()) return "atom count differs";
  for (size_t i = 0; i < a.atoms.size(); ++i) {
    const AtomSensitivity& x = a.atoms[i];
    const AtomSensitivity& y = b.atoms[i];
    if (x.max_sensitivity != y.max_sensitivity ||
        x.argmax != y.argmax || x.approximate != y.approximate) {
      return "atom " + std::to_string(i) + " differs";
    }
  }
  return "";
}

void ExpectResultsIdentical(const SensitivityResult& a,
                            const SensitivityResult& b,
                            const std::string& context) {
  EXPECT_EQ(DiffResults(a, b), "") << context;
}

DatabaseDelta InsertDelta(const std::string& relation,
                          std::vector<Value> row) {
  RelationDelta rd;
  rd.relation = relation;
  rd.inserts.push_back(std::move(row));
  DatabaseDelta delta;
  delta.push_back(std::move(rd));
  return delta;
}

// --- Scripted deterministic interleaving ------------------------------------

// One scripted run's observable outcome: every answered result in script
// order plus the final server ledger. Two runs of the same script must
// produce equal ScriptRuns, field for field.
struct ScriptRun {
  std::vector<SensitivityResult> results;
  ServingStats stats;
  uint64_t final_epoch = 0;
};

void ExpectStatsEqual(const ServingStats& a, const ServingStats& b,
                      const std::string& context) {
  EXPECT_EQ(a.epochs_published, b.epochs_published) << context;
  EXPECT_EQ(a.turns, b.turns) << context;
  EXPECT_EQ(a.empty_turns, b.empty_turns) << context;
  EXPECT_EQ(a.deltas_applied, b.deltas_applied) << context;
  EXPECT_EQ(a.deltas_rejected, b.deltas_rejected) << context;
  EXPECT_EQ(a.max_turn_deltas, b.max_turn_deltas) << context;
  EXPECT_EQ(a.queries_served, b.queries_served) << context;
  EXPECT_EQ(a.warm_hits, b.warm_hits) << context;
  EXPECT_EQ(a.cold_hits, b.cold_hits) << context;
  EXPECT_EQ(a.cold_computes, b.cold_computes) << context;
  EXPECT_EQ(a.sessions_opened, b.sessions_opened) << context;
  EXPECT_EQ(a.epochs_reclaimed, b.epochs_reclaimed) << context;
  EXPECT_EQ(a.epochs_live, b.epochs_live) << context;
  EXPECT_EQ(a.epoch_bytes, b.epoch_bytes) << context;
}

// Replays one seeded script of interleaved pins, queries, held-pin
// re-queries, delta submissions, turns, and pin releases against a
// manual-turn server. Every answer is checked against a from-scratch
// compute on the pinned snapshot; answers at pins held across turns must
// still match the result recorded when the pin was taken.
void RunScript(uint64_t seed, int num_readers, StreamShape shape,
               ScriptRun* out) {
  Rng rng(seed * 977 + static_cast<uint64_t>(shape) * 131 +
          static_cast<uint64_t>(num_readers));
  auto ex = MakeStreamInstance(rng, shape);
  const std::vector<std::string> relations = QueryRelationNames(ex.query);

  ServingConfig config;
  config.manual_turns = true;
  config.max_turn_deltas = 2;
  config.cache.max_delta_fraction = 1.0;  // repair every turn if possible
  SensitivityServer server(std::move(ex.db), config);
  server.RegisterQuery(ex.query);

  std::vector<std::unique_ptr<ServerSession>> sessions;
  for (int i = 0; i < num_readers; ++i) {
    sessions.push_back(server.OpenSession("s" + std::to_string(i)));
  }
  auto random_session = [&]() -> ServerSession& {
    return *sessions[rng.NextBounded(sessions.size())];
  };

  struct Held {
    EpochPin pin;
    SensitivityResult expected;
  };
  std::vector<Held> held;

  for (int step = 0; step < 60; ++step) {
    const std::string context = "seed " + std::to_string(seed) + " shape " +
                                std::to_string(static_cast<int>(shape)) +
                                " step " + std::to_string(step);
    switch (rng.NextBounded(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // pin, query, oracle-check, release
        ServerSession& s = random_session();
        EpochPin pin = s.Pin();
        auto got = s.QueryAt(pin, ex.query);
        ASSERT_TRUE(got.ok()) << context << ": " << got.status().ToString();
        auto fresh = ComputeLocalSensitivity(ex.query, pin.db());
        ASSERT_TRUE(fresh.ok()) << context;
        ExpectResultsIdentical(*got, *fresh, context);
        out->results.push_back(*std::move(got));
        break;
      }
      case 4: {  // take a pin and hold it across future turns
        EpochPin pin = random_session().Pin();
        auto fresh = ComputeLocalSensitivity(ex.query, pin.db());
        ASSERT_TRUE(fresh.ok()) << context;
        held.push_back({std::move(pin), *std::move(fresh)});
        break;
      }
      case 5: {  // re-query a held pin: must match its recorded result
        if (held.empty()) break;
        Held& h = held[rng.NextBounded(held.size())];
        auto got = random_session().QueryAt(h.pin, ex.query);
        ASSERT_TRUE(got.ok()) << context;
        ExpectResultsIdentical(*got, h.expected, context + " (held pin)");
        out->results.push_back(*std::move(got));
        break;
      }
      case 6:
      case 7: {  // submit a delta sized against the current snapshot
        EpochPin view = sessions[0]->Pin();
        ASSERT_TRUE(
            server
                .SubmitDelta(MakeRandomDelta(rng, view.db(), relations,
                                             /*domain=*/3))
                .ok())
            << context;
        break;
      }
      case 8:
        server.TurnEpoch();
        break;
      case 9: {  // release a random held pin
        if (held.empty()) break;
        const size_t i = rng.NextBounded(held.size());
        held[i] = std::move(held.back());
        held.pop_back();
        break;
      }
    }
  }

  // Held pins must have survived every turn since they were taken.
  for (Held& h : held) {
    auto got = sessions[0]->QueryAt(h.pin, ex.query);
    ASSERT_TRUE(got.ok());
    ExpectResultsIdentical(*got, h.expected, "final held-pin check");
    out->results.push_back(*std::move(got));
  }
  held.clear();

  out->stats = server.stats();
  out->final_epoch = server.current_epoch();
  server.Shutdown();
}

class ServingScriptedTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(ServingScriptedTest, ScriptedStreamMatchesSnapshotOracle) {
  const auto [seed, readers] = GetParam();
  for (StreamShape shape :
       {StreamShape::kPath, StreamShape::kTree, StreamShape::kTriangle}) {
    ScriptRun run;
    RunScript(seed, readers, shape, &run);
    if (HasFatalFailure()) return;
    // The ledger adds up: every query was answered by exactly one path.
    EXPECT_EQ(run.stats.queries_served,
              run.stats.warm_hits + run.stats.cold_hits +
                  run.stats.cold_computes);
    EXPECT_EQ(run.stats.epochs_published, run.stats.turns + 1);
    EXPECT_EQ(run.stats.sessions_opened, static_cast<uint64_t>(readers));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ServingScriptedTest,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3),
                       ::testing::Values(1, 4, 8)));

// The same script replays bit-identically: results, stats ledger, and
// final epoch id all match across two independent servers.
TEST(ServingDeterminismTest, SameScriptReplaysBitIdentically) {
  for (StreamShape shape :
       {StreamShape::kPath, StreamShape::kTree, StreamShape::kTriangle}) {
    ScriptRun first, second;
    RunScript(7, 4, shape, &first);
    ASSERT_FALSE(HasFatalFailure());
    RunScript(7, 4, shape, &second);
    ASSERT_FALSE(HasFatalFailure());
    const std::string context =
        "shape " + std::to_string(static_cast<int>(shape));
    ASSERT_EQ(first.results.size(), second.results.size()) << context;
    for (size_t i = 0; i < first.results.size(); ++i) {
      ExpectResultsIdentical(first.results[i], second.results[i],
                             context + " result " + std::to_string(i));
    }
    ExpectStatsEqual(first.stats, second.stats, context);
    EXPECT_EQ(first.final_epoch, second.final_epoch) << context;
  }
}

// --- Free-running stress ----------------------------------------------------

// Eight reader sessions on pool workers race a free-running writer through
// 200+ epoch turns (admission cap 1, so every applied delta is its own
// turn). Every single read — warm, cold, and at a pin held from epoch 1 to
// the end — is checked bit-identical to a from-scratch compute on the
// pinned snapshot. Failures are collected per reader (gtest assertions are
// not thread-safe) and asserted on the main thread.
TEST(ServingFreeRunningTest, StressEveryReadBitIdenticalAcross200Turns) {
  auto ex = testing::MakeFigure3Example();
  ConjunctiveQuery cold_query;  // unregistered: exercises the cold path
  cold_query.AddAtom(ex.db, "R1", {"A", "B"});
  cold_query.AddAtom(ex.db, "R2", {"B", "C"});
  const std::vector<std::string> relations = {"R1", "R2", "R3", "R4"};

  ServingConfig config;
  config.max_turn_deltas = 1;
  config.cache.max_delta_fraction = 1.0;
  SensitivityServer server(std::move(ex.db), config);
  server.RegisterQuery(ex.query);

  constexpr int kReaders = 8;
  constexpr uint64_t kTargetTurns = 200;
  struct ReaderReport {
    uint64_t queries = 0;
    uint64_t violations = 0;
    std::string first_violation;
  };
  std::vector<ReaderReport> reports(kReaders);
  std::vector<std::unique_ptr<ServerSession>> sessions;
  for (int i = 0; i < kReaders; ++i) {
    sessions.push_back(server.OpenSession("reader-" + std::to_string(i)));
  }
  std::atomic<bool> stop{false};

  ThreadPool& pool = GlobalThreadPool();
  ASSERT_GE(pool.num_workers(), static_cast<size_t>(kReaders));
  for (int i = 0; i < kReaders; ++i) {
    pool.Submit([&, i](size_t) {
      ServerSession& session = *sessions[i];
      ReaderReport& report = reports[i];
      auto note = [&](const std::string& what) {
        ++report.violations;
        if (report.first_violation.empty()) report.first_violation = what;
      };
      // The oracle recomputes run on a pool worker, so they must carry
      // their own context — the thread-local fallback is off-limits here.
      ExecContext oracle_ctx;
      TSensComputeOptions oracle_options;
      oracle_options.join.ctx = &oracle_ctx;
      // Held from before the first turn until after the last: the epoch-1
      // snapshot must stay alive and bit-stable throughout (asan would
      // catch a reclaimed-under-pin read).
      EpochPin long_pin = session.Pin();
      auto long_expected =
          ComputeLocalSensitivity(ex.query, long_pin.db(), oracle_options);
      if (!long_expected.ok()) note("long-pin oracle failed");
      do {  // at least one verified iteration even if stop lands early
        EpochPin pin = session.Pin();
        for (const ConjunctiveQuery* q : {&ex.query, &cold_query}) {
          ++report.queries;
          auto got = session.QueryAt(pin, *q);
          auto fresh = ComputeLocalSensitivity(*q, pin.db(), oracle_options);
          if (!got.ok() || !fresh.ok()) {
            note("query/oracle error at epoch " +
                 std::to_string(pin.epoch()));
            continue;
          }
          const std::string diff = DiffResults(*got, *fresh);
          if (!diff.empty()) {
            note("epoch " + std::to_string(pin.epoch()) + ": " + diff);
          }
        }
        if (long_expected.ok()) {
          auto again = session.QueryAt(long_pin, ex.query);
          if (!again.ok() || !DiffResults(*again, *long_expected).empty()) {
            note("held pin drifted");
          }
        }
      } while (!stop.load(std::memory_order_acquire));
    });
  }

  // Feed single-delta turns until 200 have published; deltas are sized
  // against a freshly pinned snapshot, so a few may race a queued resize
  // and get rejected — those surface as empty turns, not corruption.
  // No fatal assertions between here and pool.Wait(): an early return
  // would unwind locals the reader tasks still reference.
  Rng rng(2024);
  auto feeder = server.OpenSession("feeder");
  uint64_t submitted = 0;
  bool submit_ok = true;
  while (submit_ok && server.stats().turns < kTargetTurns &&
         submitted < 1000) {
    EpochPin view = feeder->Pin();
    submit_ok = server
                    .SubmitDelta(MakeRandomDelta(rng, view.db(), relations,
                                                 /*domain=*/3))
                    .ok();
    if (submit_ok) ++submitted;
    if (submitted % 8 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // Drain: with cap 1 every submitted delta is consumed by exactly one
  // turn (publishing or empty).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  bool drained = false;
  while (!drained && std::chrono::steady_clock::now() < deadline) {
    const ServingStats s = server.stats();
    drained = s.turns + s.empty_turns >= submitted;
    if (!drained) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  pool.Wait();
  server.Shutdown();
  EXPECT_TRUE(submit_ok);
  ASSERT_TRUE(drained) << "writer failed to drain " << submitted
                       << " deltas in time";

  const ServingStats stats = server.stats();
  EXPECT_GE(stats.turns, kTargetTurns);
  EXPECT_EQ(stats.turns + stats.empty_turns, submitted);
  EXPECT_EQ(stats.deltas_applied + stats.deltas_rejected, submitted);
  uint64_t total_queries = 0;
  for (int i = 0; i < kReaders; ++i) {
    EXPECT_GT(reports[i].queries, 0u) << "reader " << i << " never ran";
    EXPECT_EQ(reports[i].violations, 0u)
        << "reader " << i << " first violation: "
        << reports[i].first_violation;
    total_queries += reports[i].queries;
  }
  EXPECT_GE(stats.queries_served, total_queries);
  EXPECT_EQ(stats.queries_served,
            stats.warm_hits + stats.cold_hits + stats.cold_computes);
}

// --- Epoch reclamation ------------------------------------------------------

TEST(ServingReclamationTest, PinKeepsEpochAliveAcrossTurns) {
  auto ex = testing::MakeFigure3Example();
  ConjunctiveQuery query = ex.query;
  ServingConfig config;
  config.manual_turns = true;
  SensitivityServer server(std::move(ex.db), config);
  auto session = server.OpenSession("pinner");

  EpochPin pin = session->Pin();
  ASSERT_EQ(pin.epoch(), 1u);
  auto expected = ComputeLocalSensitivity(query, pin.db());
  ASSERT_TRUE(expected.ok());
  const uint64_t pinned_bytes = pin.db().MemoryBytes();
  const std::vector<std::pair<std::string, uint64_t>> pinned_versions =
      pin.versions();

  constexpr int kTurns = 5;
  for (int k = 0; k < kTurns; ++k) {
    ASSERT_TRUE(
        server.SubmitDelta(InsertDelta("R1", {Value(100 + k), Value(7)}))
            .ok());
    ASSERT_TRUE(server.TurnEpoch());
  }

  // Ledger: the pinned epoch 1 and the current epoch are alive; the four
  // interior epochs were retired and freed as their successors published.
  ServingStats stats = server.stats();
  EXPECT_EQ(stats.epochs_published, 1u + kTurns);
  EXPECT_EQ(stats.epochs_live, 2u);
  EXPECT_EQ(stats.epochs_reclaimed, static_cast<uint64_t>(kTurns - 1));
  uint64_t current_bytes = 0;
  {
    EpochPin current = session->Pin();
    EXPECT_EQ(current.epoch(), 1u + kTurns);
    current_bytes = current.db().MemoryBytes();
    EXPECT_EQ(stats.epoch_bytes, pinned_bytes + current_bytes);
  }

  // The pinned snapshot is bit-stable: same versions, same answer.
  EXPECT_EQ(pin.versions(), pinned_versions);
  auto still = session->QueryAt(pin, query);
  ASSERT_TRUE(still.ok());
  ExpectResultsIdentical(*still, *expected, "pinned across turns");

  // Releasing the last pin frees the retired epoch immediately.
  pin.Release();
  EXPECT_FALSE(pin.valid());
  stats = server.stats();
  EXPECT_EQ(stats.epochs_reclaimed, static_cast<uint64_t>(kTurns));
  EXPECT_EQ(stats.epochs_live, 1u);
  EXPECT_EQ(stats.epoch_bytes, current_bytes);
  server.Shutdown();
}

TEST(ServingReclamationTest, ZeroReaderPublishReclaimsImmediately) {
  auto ex = testing::MakeFigure3Example();
  ServingConfig config;
  config.manual_turns = true;
  SensitivityServer server(std::move(ex.db), config);
  for (int k = 0; k < 3; ++k) {
    ASSERT_TRUE(
        server.SubmitDelta(InsertDelta("R2", {Value(50 + k), Value(3)}))
            .ok());
    ASSERT_TRUE(server.TurnEpoch());
    const ServingStats stats = server.stats();
    EXPECT_EQ(stats.epochs_live, 1u) << "turn " << k;
    EXPECT_EQ(stats.epochs_reclaimed, static_cast<uint64_t>(k + 1));
    EXPECT_EQ(server.current_epoch(), static_cast<uint64_t>(k + 2));
  }
  server.Shutdown();
}

TEST(ServingReclamationTest, PostPublishInternRendersInNextEpoch) {
  // A delta producer interns a string value after epoch 1 is published.
  // The already-published snapshot must not mis-decode the new code — its
  // dictionary's ContainsValue range check answers false — while the next
  // published epoch carries the code and renders it.
  auto ex = testing::MakeFigure3Example();
  ServingConfig config;
  config.manual_turns = true;
  SensitivityServer server(std::move(ex.db), config);
  auto session = server.OpenSession("s");

  EpochPin old_pin = session->Pin();
  const Value code = server.InternValue("post-publish-city");
  EXPECT_GE(code, Dictionary::kBase);
  // The pinned snapshot predates the intern: deep-copied dictionary, so the
  // new code is out of its range — no mis-decode, no crash.
  EXPECT_FALSE(old_pin.db().dict().ContainsValue(code));

  // Interning the same string again returns the same code (append-only,
  // stable), so producers may cache codes across turns.
  EXPECT_EQ(server.InternValue("post-publish-city"), code);

  ASSERT_TRUE(server.SubmitDelta(InsertDelta("R2", {code, Value(3)})).ok());
  ASSERT_TRUE(server.TurnEpoch());
  {
    EpochPin pin = session->Pin();
    EXPECT_TRUE(pin.db().dict().ContainsValue(code));
    EXPECT_EQ(pin.db().dict().String(code), "post-publish-city");
    const Relation* r2 = pin.db().Find("R2");
    bool found = false;
    for (size_t i = 0; i < r2->NumRows() && !found; ++i) {
      found = r2->At(i, 0) == code;
    }
    EXPECT_TRUE(found);
  }
  // The old pin still answers false after the publish: its dictionary is a
  // copy, not a shared reference.
  EXPECT_FALSE(old_pin.db().dict().ContainsValue(code));
  old_pin.Release();
  server.Shutdown();
}

// --- Shutdown and abuse -----------------------------------------------------

TEST(ServingAbuseTest, PoisonedBatchLeavesPublishedEpochUntouched) {
  auto ex = testing::MakeFigure3Example();
  ConjunctiveQuery query = ex.query;
  ServingConfig config;
  config.manual_turns = true;
  SensitivityServer server(std::move(ex.db), config);
  auto session = server.OpenSession("s");
  const size_t r1_rows = [&] {
    EpochPin pin = session->Pin();
    return pin.db().Find("R1")->NumRows();
  }();

  // A delete far out of range poisons the whole batch.
  RelationDelta bad;
  bad.relation = "R1";
  bad.delete_rows = {999};
  DatabaseDelta poison;
  poison.push_back(bad);
  ASSERT_TRUE(server.SubmitDelta(poison).ok());
  EXPECT_FALSE(server.TurnEpoch());  // nothing applied: no publish
  EXPECT_EQ(server.current_epoch(), 1u);

  // All-or-nothing within one batch: a good insert riding with the
  // poisoned delete is rolled back with it.
  RelationDelta good;
  good.relation = "R1";
  good.inserts.push_back({Value(1), Value(1)});
  DatabaseDelta mixed;
  mixed.push_back(good);
  mixed.push_back(bad);
  ASSERT_TRUE(server.SubmitDelta(mixed).ok());
  EXPECT_FALSE(server.TurnEpoch());
  EXPECT_EQ(server.current_epoch(), 1u);
  {
    EpochPin pin = session->Pin();
    EXPECT_EQ(pin.epoch(), 1u);
    EXPECT_EQ(pin.db().Find("R1")->NumRows(), r1_rows);
  }

  // Independent batches are admitted independently: a good batch queued
  // next to a poisoned one still publishes, the poisoned one is counted
  // rejected, and the new epoch answers correctly.
  DatabaseDelta lone_good;
  lone_good.push_back(good);
  ASSERT_TRUE(server.SubmitDelta(lone_good).ok());
  ASSERT_TRUE(server.SubmitDelta(poison).ok());
  EXPECT_TRUE(server.TurnEpoch());
  EXPECT_EQ(server.current_epoch(), 2u);
  {
    EpochPin pin = session->Pin();
    EXPECT_EQ(pin.db().Find("R1")->NumRows(), r1_rows + 1);
    auto got = session->QueryAt(pin, query);
    ASSERT_TRUE(got.ok());
    auto fresh = ComputeLocalSensitivity(query, pin.db());
    ASSERT_TRUE(fresh.ok());
    ExpectResultsIdentical(*got, *fresh, "after mixed turn");
  }
  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.empty_turns, 2u);
  EXPECT_EQ(stats.deltas_applied, 1u);
  EXPECT_EQ(stats.deltas_rejected, 3u);
  server.Shutdown();
}

TEST(ServingAbuseTest, ShutdownDrainsQueueAndCoalesces) {
  auto ex = testing::MakeFigure3Example();
  ServingConfig config;
  config.manual_turns = true;
  SensitivityServer server(std::move(ex.db), config);
  for (int k = 0; k < 3; ++k) {
    ASSERT_TRUE(
        server.SubmitDelta(InsertDelta("R3", {Value(k), Value(k)})).ok());
  }
  server.Shutdown();
  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.deltas_applied, 3u);
  EXPECT_EQ(stats.turns, 1u);            // one coalesced turn drained all
  EXPECT_EQ(stats.max_turn_deltas, 3u);  // the admission batch was size 3
  const Status late = server.SubmitDelta(InsertDelta("R3", {9, 9}));
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.code(), Status::Code::kUnsupported);
}

TEST(ServingAbuseTest, DoubleShutdownIsSafe) {
  auto ex = testing::MakeFigure3Example();
  SensitivityServer server(std::move(ex.db));  // free-running writer
  ASSERT_TRUE(server.SubmitDelta(InsertDelta("R4", {1, 2})).ok());
  server.Shutdown();
  server.Shutdown();  // idempotent; the destructor adds a third call
  EXPECT_EQ(server.stats().deltas_applied, 1u);
}

TEST(ServingDeathTest, QueryAfterShutdownDies) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  auto ex = testing::MakeFigure3Example();
  ConjunctiveQuery query = ex.query;
  ServingConfig config;
  config.manual_turns = true;
  SensitivityServer server(std::move(ex.db), config);
  auto session = server.OpenSession("s");
  server.Shutdown();
  EXPECT_DEATH(session->Query(query), "shut-down");
  EXPECT_DEATH(session->Pin(), "shut-down");
}

// --- Warm/cold serving paths and per-session stats --------------------------

TEST(ServingStatsTest, WarmAndColdPathsRecordPerSessionStats) {
  auto ex = testing::MakeFigure3Example();
  ConjunctiveQuery warm_query = ex.query;
  ConjunctiveQuery cold_query;
  cold_query.AddAtom(ex.db, "R1", {"A", "B"});
  cold_query.AddAtom(ex.db, "R2", {"B", "C"});
  ServingConfig config;
  config.manual_turns = true;
  SensitivityServer server(std::move(ex.db), config);
  server.RegisterQuery(warm_query);
  server.RegisterQuery(warm_query);  // duplicate registration is a no-op

  // Registration warms from the next turn on.
  ASSERT_TRUE(server.SubmitDelta(InsertDelta("R1", {5, 5})).ok());
  ASSERT_TRUE(server.TurnEpoch());

  auto s1 = server.OpenSession("s1");
  auto s2 = server.OpenSession("s2");
  auto warm = s1->Query(warm_query);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(server.stats().warm_hits, 1u);
  {
    EpochPin pin = s1->Pin();
    auto fresh = ComputeLocalSensitivity(warm_query, pin.db());
    ASSERT_TRUE(fresh.ok());
    ExpectResultsIdentical(*warm, *fresh, "warm hit");
  }

  ASSERT_TRUE(s1->Query(cold_query).ok());  // computes, memoizes
  ASSERT_TRUE(s1->Query(cold_query).ok());  // cold memo hit
  ASSERT_TRUE(s2->Query(cold_query).ok());  // another session shares it
  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.cold_computes, 1u);
  EXPECT_EQ(stats.cold_hits, 2u);
  EXPECT_EQ(stats.queries_served, 4u);
  EXPECT_EQ(stats.queries_served,
            stats.warm_hits + stats.cold_hits + stats.cold_computes);

  // Per-session profile: the serve.* pseudo-ops land in the session ctx
  // and render next to the compute kernels.
  EXPECT_NE(s1->ctx().FindStats("serve.query"), nullptr);
  EXPECT_NE(s1->ctx().FindStats("serve.warm_hit"), nullptr);
  EXPECT_NE(s1->ctx().FindStats("serve.cold_compute"), nullptr);
  EXPECT_NE(s1->ctx().FindStats("serve.cold_hit"), nullptr);
  EXPECT_EQ(s2->ctx().FindStats("serve.warm_hit"), nullptr);
  const std::string rendered = RenderExecStats(s1->ctx());
  EXPECT_NE(rendered.find("serve.query"), std::string::npos);
  EXPECT_NE(rendered.find("serve.warm_hit"), std::string::npos);
  // The writer's warm pass profiled into the writer ctx.
  EXPECT_FALSE(RenderExecStats(server.writer_ctx()).empty());
  server.Shutdown();
}

// --- Serving-side PrivSQL budget --------------------------------------------

TEST(PrivSqlBudgetTest, ChargesRefusesAndRefunds) {
  PrivSqlBudget budget(1.0);
  EXPECT_EQ(budget.total(), 1.0);
  EXPECT_TRUE(budget.TryCharge(0.4));
  EXPECT_TRUE(budget.TryCharge(0.4));
  EXPECT_FALSE(budget.TryCharge(0.4));  // 1.2 > 1.0: untouched
  EXPECT_NEAR(budget.remaining(), 0.2, 1e-9);
  EXPECT_FALSE(budget.TryCharge(0.0));   // non-positive never chargeable
  EXPECT_FALSE(budget.TryCharge(-1.0));
  budget.Refund(0.4);
  EXPECT_NEAR(budget.remaining(), 0.6, 1e-9);
  EXPECT_TRUE(budget.TryCharge(0.6));
  EXPECT_NEAR(budget.remaining(), 0.0, 1e-9);
  budget.Refund(100.0);  // clamped: spent() never goes negative
  EXPECT_EQ(budget.spent(), 0.0);
  EXPECT_NEAR(budget.remaining(), 1.0, 1e-9);
}

TEST(PrivSqlBudgetTest, ConcurrentChargesNeverOverspend) {
  PrivSqlBudget budget(1.0);
  std::atomic<int> successes{0};
  ThreadPool& pool = GlobalThreadPool();
  for (int t = 0; t < 8; ++t) {
    pool.Submit([&](size_t) {
      for (int i = 0; i < 50; ++i) {
        if (budget.TryCharge(0.25)) successes.fetch_add(1);
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(successes.load(), 4);  // exactly 4 * 0.25 fit in 1.0
  EXPECT_LE(budget.spent(), 1.0 + 1e-9);
}

TEST(PrivSqlBudgetTest, ServePrivSqlTracksTheBudget) {
  auto ex = testing::MakeFigure3Example();
  PrivSqlPolicy policy;
  policy.private_atom = 0;
  PrivSqlOptions options;
  options.epsilon = 0.6;
  options.seed = 3;
  PrivSqlBudget budget(1.0);

  auto first = ServePrivSql(ex.query, ex.db, policy, options, budget);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_NEAR(budget.remaining(), 0.4, 1e-9);

  // A second 0.6 release does not fit: refused before touching the data.
  auto second = ServePrivSql(ex.query, ex.db, policy, options, budget);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), Status::Code::kUnsupported);
  EXPECT_NEAR(budget.remaining(), 0.4, 1e-9);

  // A run that fails after charging refunds: it released nothing.
  PrivSqlPolicy broken;
  broken.private_atom = 99;
  PrivSqlOptions small = options;
  small.epsilon = 0.3;
  auto failed = ServePrivSql(ex.query, ex.db, broken, small, budget);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NEAR(budget.remaining(), 0.4, 1e-9);
}

}  // namespace
}  // namespace lsens
