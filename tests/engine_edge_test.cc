// Edge cases and failure injection for the execution and sensitivity
// engines: degenerate shapes (empty relations, unit relations, saturating
// counts), contract violations (death tests), and option interactions.

#include <gtest/gtest.h>

#include "query/enumerate.h"
#include "query/eval.h"
#include "query/ghd.h"
#include "query/join_tree.h"
#include "sensitivity/naive.h"
#include "sensitivity/tsens.h"
#include "sensitivity/tsens_engine.h"
#include "sensitivity/tsens_path.h"
#include "test_util.h"

namespace lsens {
namespace {

using testing::MakeFigure3Example;
using testing::MakeRandomAcyclicInstance;

TEST(EngineEdgeTest, PredicateEmptiesARelation) {
  auto ex = MakeFigure3Example();
  // No R3 row has C = <fresh value>; the predicate empties R3.
  Predicate p;
  p.var = ex.db.attrs().Lookup("C");
  p.op = Predicate::Op::kEq;
  p.rhs = 999999;
  ex.query.AddPredicate(2, p);
  auto result = ComputeLocalSensitivity(ex.query, ex.db);
  ASSERT_TRUE(result.ok());
  // Inserting a satisfying R3 tuple could still connect paths: (c,d) with
  // c = 999999 never joins R2 (no such C value), so everything is zero.
  EXPECT_EQ(result->local_sensitivity, Count::Zero());
}

TEST(EngineEdgeTest, PredicateOnSharedValueKeepsInsertionAlive) {
  auto ex = MakeFigure3Example();
  // R3 restricted to C = c1 (which exists): inserting more (c1, d) tuples
  // still joins; LS must stay positive.
  Predicate p;
  p.var = ex.db.attrs().Lookup("C");
  p.op = Predicate::Op::kEq;
  p.rhs = ex.db.dict().Lookup("c1");
  ex.query.AddPredicate(2, p);
  auto result = ComputeLocalSensitivity(ex.query, ex.db);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->local_sensitivity, Count::Zero());
  // Matches the oracle.
  auto naive = NaiveLocalSensitivity(ex.query, ex.db, {});
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(result->local_sensitivity, naive->local_sensitivity);
}

TEST(EngineEdgeTest, AllRelationsEmpty) {
  Database db;
  db.AddRelation("R", {"A", "B"});
  db.AddRelation("S", {"B", "C"});
  ConjunctiveQuery q;
  q.AddAtom(db, "R", {"A", "B"});
  q.AddAtom(db, "S", {"B", "C"});
  auto result = ComputeLocalSensitivity(q, db);
  ASSERT_TRUE(result.ok());
  // Adding one tuple anywhere cannot produce output (the other relation is
  // empty), so LS = 0 and there is no witness.
  EXPECT_EQ(result->local_sensitivity, Count::Zero());
  EXPECT_EQ(result->MostSensitive(), nullptr);
  EXPECT_FALSE(MaterializeMostSensitiveTuple(*result, q).ok());
}

TEST(EngineEdgeTest, LargeCrossProductCountsStayExact) {
  // Five disconnected unary relations, each one distinct tuple duplicated
  // 4096 times: LS = 4096^4 (inserting a fresh tuple into one component
  // multiplies the other four components' totals) — 2^48, well past what a
  // 32-bit counter would hold, exercising the wide-count path end to end.
  Database db;
  ConjunctiveQuery q;
  for (int i = 0; i < 5; ++i) {
    std::string name = "R" + std::to_string(i);
    std::string var = "x" + std::to_string(i);
    auto* rel = db.AddRelation(name, {var});
    for (int r = 0; r < 4096; ++r) rel->AppendRow({7});
    q.AddAtom(db, name, {var});
  }
  auto count = CountQuery(q, db);
  ASSERT_TRUE(count.ok());
  Count expected_total = Count::One();
  for (int i = 0; i < 5; ++i) expected_total *= Count(4096);
  EXPECT_EQ(*count, expected_total);

  auto result = ComputeLocalSensitivity(q, db);
  ASSERT_TRUE(result.ok());
  Count expected_ls = Count::One();
  for (int i = 0; i < 4; ++i) expected_ls *= Count(4096);
  EXPECT_EQ(result->local_sensitivity, expected_ls);
}

TEST(EngineEdgeTest, KeepTablesOnMultiAtomBags) {
  // Per-tuple sensitivities through a GHD whose bag holds two atoms must
  // match the oracle (the multiplicity table folds the co-atom in).
  Database db;
  auto* e0 = db.AddRelation("E0", {"A", "B"});
  auto* e1 = db.AddRelation("E1", {"B", "C"});
  auto* e2 = db.AddRelation("E2", {"C", "A"});
  e0->AppendRow({1, 2});
  e0->AppendRow({1, 3});
  e1->AppendRow({2, 5});
  e1->AppendRow({3, 5});
  e2->AppendRow({5, 1});
  e2->AppendRow({5, 1});  // duplicate
  ConjunctiveQuery q;
  q.AddAtom(db, "E0", {"A", "B"});
  q.AddAtom(db, "E1", {"B", "C"});
  q.AddAtom(db, "E2", {"C", "A"});
  auto ghd = BuildGhd(q, {{0, 1}, {2}});
  ASSERT_TRUE(ghd.ok());
  TSensOptions opts;
  opts.keep_tables = true;
  auto result = TSensOverGhd(q, *ghd, db, opts);
  ASSERT_TRUE(result.ok());
  for (int atom = 0; atom < 3; ++atom) {
    auto sens = TupleSensitivities(*result, q, db, atom);
    ASSERT_TRUE(sens.ok());
    const Relation* rel = db.Find(q.atom(atom).relation);
    std::vector<std::vector<Value>> rows;
    for (size_t r = 0; r < rel->NumRows(); ++r) {
      rows.push_back(rel->Row(r));
    }
    NaiveOptions nopts;
    nopts.ghd = &*ghd;
    for (size_t r = 0; r < rows.size(); ++r) {
      auto naive = NaiveTupleSensitivity(q, db, atom, rows[r], nopts);
      ASSERT_TRUE(naive.ok());
      EXPECT_EQ((*sens)[r], *naive) << "atom " << atom << " row " << r;
    }
  }
}

TEST(EngineEdgeTest, DisconnectedKeepTablesScalesTables) {
  Database db;
  auto* r = db.AddRelation("R", {"A"});
  auto* t = db.AddRelation("T", {"X"});
  r->AppendRow({1});
  r->AppendRow({1});
  t->AppendRow({5});
  t->AppendRow({6});
  t->AppendRow({7});
  ConjunctiveQuery q;
  q.AddAtom(db, "R", {"A"});
  q.AddAtom(db, "T", {"X"});
  TSensComputeOptions opts;
  opts.keep_tables = true;
  auto result = ComputeLocalSensitivity(q, db, opts);
  ASSERT_TRUE(result.ok());
  // Every R tuple participates in |T| = 3 outputs; every T tuple in 2.
  auto r_sens = TupleSensitivities(*result, q, db, 0);
  ASSERT_TRUE(r_sens.ok());
  EXPECT_EQ((*r_sens)[0], Count(3));
  auto t_sens = TupleSensitivities(*result, q, db, 1);
  ASSERT_TRUE(t_sens.ok());
  EXPECT_EQ((*t_sens)[0], Count(2));
}

TEST(EngineEdgeTest, SkipAtomsNeverRaisesLs) {
  Rng rng(31007);
  testing::RandomQuerySpec spec;
  for (int trial = 0; trial < 10; ++trial) {
    auto ex = MakeRandomAcyclicInstance(rng, spec);
    auto full = ComputeLocalSensitivity(ex.query, ex.db);
    ASSERT_TRUE(full.ok());
    for (int skip = 0; skip < ex.query.num_atoms(); ++skip) {
      TSensComputeOptions opts;
      opts.skip_atoms = {skip};
      auto partial = ComputeLocalSensitivity(ex.query, ex.db, opts);
      ASSERT_TRUE(partial.ok());
      EXPECT_LE(partial->local_sensitivity, full->local_sensitivity);
      EXPECT_TRUE(partial->atoms[static_cast<size_t>(skip)].skipped);
      // And it equals the max over non-skipped atoms of the full run.
      Count expected = Count::Zero();
      for (int a = 0; a < ex.query.num_atoms(); ++a) {
        if (a == skip) continue;
        expected = std::max(expected,
                            full->atoms[static_cast<size_t>(a)]
                                .max_sensitivity);
      }
      EXPECT_EQ(partial->local_sensitivity, expected);
    }
  }
}

TEST(EngineEdgeTest, PathAlgorithmRejectsBadInputs) {
  auto ex = MakeFigure3Example();
  std::vector<int> order = PathOrder(ex.query);
  TSensOptions keep;
  keep.keep_tables = true;
  EXPECT_EQ(TSensPath(ex.query, order, ex.db, keep).status().code(),
            Status::Code::kUnsupported);
  EXPECT_FALSE(TSensPath(ex.query, {0, 1}, ex.db).ok());       // short order
  EXPECT_FALSE(TSensPath(ex.query, {0, 2, 1, 3}, ex.db).ok()); // not a chain
}

TEST(EngineEdgeTest, SearchGhdRefusesHugeQueries) {
  Database db;
  ConjunctiveQuery q;
  for (int i = 0; i < 14; ++i) {
    std::string name = "R" + std::to_string(i);
    db.AddRelation(name, {"a" + std::to_string(i),
                          "a" + std::to_string(i + 1)});
    q.AddAtom(db, name,
              {"a" + std::to_string(i), "a" + std::to_string(i + 1)});
  }
  EXPECT_EQ(SearchGhd(q, 2, /*max_atoms=*/12).status().code(),
            Status::Code::kUnsupported);
}

TEST(EngineEdgeTest, TupleSensitivitiesValidatesInputs) {
  auto ex = MakeFigure3Example();
  TSensComputeOptions no_tables;
  no_tables.prefer_path_algorithm = false;
  auto result = ComputeLocalSensitivity(ex.query, ex.db, no_tables);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(TupleSensitivities(*result, ex.query, ex.db, 0).ok());
  EXPECT_FALSE(TupleSensitivities(*result, ex.query, ex.db, -1).ok());
  EXPECT_FALSE(TupleSensitivities(*result, ex.query, ex.db, 99).ok());
}

TEST(EngineEdgeDeathTest, DoubleDefaultedJoinIsRejected) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  CountedRelation a({1});
  a.AppendRow({0}, Count::One());
  a.Normalize();
  a.set_default_count(Count(2));
  CountedRelation b({1});
  b.AppendRow({0}, Count::One());
  b.Normalize();
  b.set_default_count(Count(3));
  EXPECT_DEATH(NaturalJoin(a, b), "at most one defaulted side");
}

TEST(EngineEdgeDeathTest, UncoveredDefaultedJoinIsRejected) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  CountedRelation a({1});
  a.AppendRow({0}, Count::One());
  a.Normalize();
  CountedRelation b({1, 2});  // attrs not covered by a's
  b.AppendRow({0, 7}, Count::One());
  b.Normalize();
  b.set_default_count(Count(3));
  EXPECT_DEATH(NaturalJoin(a, b), "covered");
}

TEST(EngineEdgeDeathTest, GroupByOnDefaultedRelationIsRejected) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  CountedRelation r({1, 2});
  r.AppendRow({0, 1}, Count::One());
  r.Normalize();
  r.set_default_count(Count(5));
  EXPECT_DEATH(GroupBySum(r, {1}), "defaulted");
}

}  // namespace
}  // namespace lsens
