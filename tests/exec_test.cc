#include <gtest/gtest.h>

#include <algorithm>

#include "exec/counted_relation.h"
#include "exec/fold_join.h"
#include "exec/join.h"
#include "query/atom_scan.h"
#include "query/eval.h"
#include "test_util.h"

namespace lsens {
namespace {

using testing::MakeFigure1Example;
using testing::MakeFigure3Example;

CountedRelation MakeCounted(AttributeSet attrs,
                            std::vector<std::pair<std::vector<Value>, uint64_t>>
                                rows) {
  CountedRelation r(std::move(attrs));
  for (auto& [row, cnt] : rows) r.AppendRow(row, Count(cnt));
  r.Normalize();
  return r;
}

TEST(CountedRelationTest, NormalizeMergesDuplicates) {
  CountedRelation r({1, 2});
  r.AppendRow({5, 6}, Count(2));
  r.AppendRow({1, 2}, Count(1));
  r.AppendRow({5, 6}, Count(3));
  r.Normalize();
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.Row(0)[0], 1);
  EXPECT_EQ(r.CountAt(1), Count(5));
  EXPECT_EQ(r.TotalCount(), Count(6));
  EXPECT_EQ(r.MaxCount(), Count(5));
  EXPECT_EQ(r.ArgMaxRow(), 1u);
}

TEST(CountedRelationTest, LookupFindsRowsAndDefault) {
  CountedRelation r = MakeCounted({1}, {{{7}, 3}, {{9}, 5}});
  Value v7[] = {7};
  Value v8[] = {8};
  EXPECT_EQ(r.Lookup(v7), Count(3));
  EXPECT_EQ(r.Lookup(v8), Count::Zero());
  r.set_default_count(Count(2));
  EXPECT_EQ(r.Lookup(v8), Count(2));
}

TEST(CountedRelationTest, UnitBehaves) {
  CountedRelation unit = CountedRelation::Unit();
  EXPECT_EQ(unit.arity(), 0u);
  EXPECT_EQ(unit.NumRows(), 1u);
  EXPECT_EQ(unit.TotalCount(), Count::One());
}

TEST(ScanAtomTest, ProjectsAndCounts) {
  auto ex = MakeFigure1Example();
  const Relation& r1 = *ex.db.Find("R1");
  AttrId a = ex.db.attrs().Lookup("A");
  // Project R1(A,B,C) onto {A}: a1 x2, a2 x1.
  CountedRelation s =
      ScanAtom(r1, ex.query.atom(0), {a});
  ASSERT_EQ(s.NumRows(), 2u);
  EXPECT_EQ(s.TotalCount(), Count(3));
  EXPECT_EQ(s.MaxCount(), Count(2));
}

TEST(ScanAtomTest, AppliesPredicates) {
  auto ex = MakeFigure1Example();
  ConjunctiveQuery q;
  int atom = q.AddAtom(ex.db, "R1", {"A", "B", "C"});
  Predicate p;
  p.var = ex.db.attrs().Lookup("A");
  p.op = Predicate::Op::kEq;
  p.rhs = ex.db.dict().Lookup("a1");
  q.AddPredicate(atom, p);
  AttrId a = ex.db.attrs().Lookup("A");
  CountedRelation s =
      ScanAtom(*ex.db.Find("R1"), q.atom(0), {a});
  ASSERT_EQ(s.NumRows(), 1u);
  EXPECT_EQ(s.CountAt(0), Count(2));  // two a1 rows
}

TEST(CountedRelationTest, GroupBySum) {
  CountedRelation r = MakeCounted(
      {1, 2}, {{{0, 0}, 1}, {{0, 1}, 2}, {{1, 0}, 4}});
  CountedRelation g = GroupBySum(r, {1});
  ASSERT_EQ(g.NumRows(), 2u);
  Value v0[] = {0};
  Value v1[] = {1};
  EXPECT_EQ(g.Lookup(v0), Count(3));
  EXPECT_EQ(g.Lookup(v1), Count(4));
  // Group by nothing = total.
  CountedRelation total = GroupBySum(r, {});
  ASSERT_EQ(total.NumRows(), 1u);
  EXPECT_EQ(total.CountAt(0), Count(7));
}

TEST(CountedRelationTest, TruncateTopK) {
  CountedRelation r = MakeCounted(
      {1}, {{{1}, 10}, {{2}, 7}, {{3}, 5}, {{4}, 2}});
  r.TruncateTopK(2);
  EXPECT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.default_count(), Count(7));
  Value v1[] = {1};
  Value v3[] = {3};
  EXPECT_EQ(r.Lookup(v1), Count(10));
  EXPECT_EQ(r.Lookup(v3), Count(7));  // raised to the k-th largest
}

TEST(CountedRelationTest, TruncateTopKNoOpWhenSmall) {
  CountedRelation r = MakeCounted({1}, {{{1}, 10}, {{2}, 7}});
  r.TruncateTopK(5);
  EXPECT_EQ(r.NumRows(), 2u);
  EXPECT_FALSE(r.has_default());
}

TEST(CountedRelationTest, FilterAndScale) {
  CountedRelation r = MakeCounted({1}, {{{1}, 2}, {{2}, 3}, {{3}, 4}});
  r.Filter([](std::span<const Value> row) { return row[0] != 2; });
  EXPECT_EQ(r.NumRows(), 2u);
  r.ScaleCounts(Count(10));
  EXPECT_EQ(r.TotalCount(), Count(60));
  r.ScaleCounts(Count::Zero());
  EXPECT_EQ(r.NumRows(), 0u);
}

class JoinAlgoTest : public ::testing::TestWithParam<JoinAlgorithm> {};

TEST_P(JoinAlgoTest, SharedKeyJoinMultipliesCounts) {
  JoinOptions opts{GetParam()};
  CountedRelation a = MakeCounted({1, 2}, {{{0, 5}, 2}, {{1, 6}, 3}});
  CountedRelation b = MakeCounted({2, 3}, {{{5, 8}, 5}, {{5, 9}, 1}});
  CountedRelation j = NaturalJoin(a, b, opts);
  // key = attr 2; only value 5 matches.
  ASSERT_EQ(j.NumRows(), 2u);
  EXPECT_EQ(j.attrs(), (AttributeSet{1, 2, 3}));
  Value r1[] = {0, 5, 8};
  Value r2[] = {0, 5, 9};
  EXPECT_EQ(j.Lookup(r1), Count(10));
  EXPECT_EQ(j.Lookup(r2), Count(2));
}

TEST_P(JoinAlgoTest, CrossProductWhenNoSharedAttr) {
  JoinOptions opts{GetParam()};
  CountedRelation a = MakeCounted({1}, {{{0}, 2}, {{1}, 3}});
  CountedRelation b = MakeCounted({2}, {{{7}, 5}});
  CountedRelation j = NaturalJoin(a, b, opts);
  ASSERT_EQ(j.NumRows(), 2u);
  EXPECT_EQ(j.TotalCount(), Count(25));
}

TEST_P(JoinAlgoTest, JoinWithUnitIsIdentity) {
  JoinOptions opts{GetParam()};
  CountedRelation a = MakeCounted({1}, {{{0}, 2}, {{1}, 3}});
  CountedRelation j = NaturalJoin(a, CountedRelation::Unit(), opts);
  EXPECT_EQ(j.NumRows(), 2u);
  EXPECT_EQ(j.TotalCount(), Count(5));
}

TEST_P(JoinAlgoTest, EmptyInputYieldsEmpty) {
  JoinOptions opts{GetParam()};
  CountedRelation a = MakeCounted({1}, {});
  CountedRelation b = MakeCounted({1, 2}, {{{0, 1}, 1}});
  EXPECT_EQ(NaturalJoin(a, b, opts).NumRows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, JoinAlgoTest,
                         ::testing::Values(JoinAlgorithm::kHash,
                                           JoinAlgorithm::kSortMerge));

TEST(JoinTest, HashAndSortMergeAgreeOnRandomInputs) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    CountedRelation a({1, 2});
    CountedRelation b({2, 3});
    int na = static_cast<int>(rng.NextBounded(20));
    int nb = static_cast<int>(rng.NextBounded(20));
    for (int i = 0; i < na; ++i) {
      a.AppendRow({static_cast<Value>(rng.NextBounded(4)),
                   static_cast<Value>(rng.NextBounded(4))},
                  Count(1 + rng.NextBounded(3)));
    }
    for (int i = 0; i < nb; ++i) {
      b.AppendRow({static_cast<Value>(rng.NextBounded(4)),
                   static_cast<Value>(rng.NextBounded(4))},
                  Count(1 + rng.NextBounded(3)));
    }
    a.Normalize();
    b.Normalize();
    CountedRelation h = NaturalJoin(a, b, {JoinAlgorithm::kHash});
    CountedRelation s = NaturalJoin(a, b, {JoinAlgorithm::kSortMerge});
    ASSERT_EQ(h.NumRows(), s.NumRows());
    for (size_t i = 0; i < h.NumRows(); ++i) {
      EXPECT_EQ(CompareRows(h.Row(i), s.Row(i)), 0);
      EXPECT_EQ(h.CountAt(i), s.CountAt(i));
    }
  }
}

TEST(JoinTest, DefaultedSideActsAsTotalFunction) {
  CountedRelation a = MakeCounted({1, 2}, {{{0, 5}, 2}, {{1, 6}, 3}});
  CountedRelation b = MakeCounted({2}, {{{5}, 4}});
  b.set_default_count(Count(10));
  CountedRelation j = NaturalJoin(a, b);
  ASSERT_EQ(j.NumRows(), 2u);
  Value r1[] = {0, 5};
  Value r2[] = {1, 6};
  EXPECT_EQ(j.Lookup(r1), Count(8));    // matched: 2*4
  EXPECT_EQ(j.Lookup(r2), Count(30));   // default: 3*10
  EXPECT_FALSE(j.has_default());
}

TEST(JoinTest, EstimateJoinRowsIsExact) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    CountedRelation a({1, 2});
    CountedRelation b({2, 3});
    for (uint64_t i = 0; i < rng.NextBounded(15); ++i) {
      a.AppendRow({static_cast<Value>(rng.NextBounded(3)),
                   static_cast<Value>(rng.NextBounded(3))},
                  Count::One());
    }
    for (uint64_t i = 0; i < rng.NextBounded(15); ++i) {
      b.AppendRow({static_cast<Value>(rng.NextBounded(3)),
                   static_cast<Value>(rng.NextBounded(3))},
                  Count::One());
    }
    a.Normalize();
    b.Normalize();
    // NaturalJoin normalizes (merging duplicate output rows), so compare
    // against the pre-merge pair count.
    size_t expected = 0;
    for (size_t i = 0; i < a.NumRows(); ++i) {
      for (size_t j = 0; j < b.NumRows(); ++j) {
        expected += (a.Row(i)[1] == b.Row(j)[0]);
      }
    }
    EXPECT_EQ(EstimateJoinRows(a, b), expected);
  }
}

TEST(JoinTest, DefaultedLeftSideAlsoWorks) {
  // Symmetric case: `a` carries the default, `b` covers its attributes.
  CountedRelation a = MakeCounted({2}, {{{5}, 4}});
  a.set_default_count(Count(10));
  CountedRelation b = MakeCounted({1, 2}, {{{0, 5}, 2}, {{1, 6}, 3}});
  CountedRelation j = NaturalJoin(a, b);
  ASSERT_EQ(j.NumRows(), 2u);
  Value r1[] = {0, 5};
  Value r2[] = {1, 6};
  EXPECT_EQ(j.Lookup(r1), Count(8));
  EXPECT_EQ(j.Lookup(r2), Count(30));
}

TEST(CountedRelationTest, ArgMaxRowUnknownWhenDefaultWins) {
  CountedRelation r = MakeCounted({1}, {{{1}, 3}, {{2}, 5}});
  EXPECT_EQ(r.ArgMaxRow(), 1u);
  r.set_default_count(Count(9));
  EXPECT_EQ(r.MaxCount(), Count(9));
  EXPECT_EQ(r.ArgMaxRow(), SIZE_MAX);  // attained by an unlisted row
}

TEST(CountedRelationTest, EmptyRelationBehaviors) {
  CountedRelation r({1, 2});
  EXPECT_EQ(r.NumRows(), 0u);
  EXPECT_EQ(r.TotalCount(), Count::Zero());
  EXPECT_EQ(r.MaxCount(), Count::Zero());
  EXPECT_EQ(r.ArgMaxRow(), SIZE_MAX);
  Value probe[] = {1, 2};
  r.Normalize();
  EXPECT_EQ(r.Lookup(probe), Count::Zero());
}

TEST(FoldJoinTest, PrefersSharedAttributesOverCrossProducts) {
  // Pieces: A(x), B(y), C(x,y). Starting from the smallest, the greedy
  // fold must join the attribute-sharing piece before any cross product —
  // observable through the exact result (which is order-independent) and,
  // more importantly, through not tripping the defaulted-piece guard when
  // C is defaulted and only covered after A ⋈ B ... here simply verify the
  // result is correct with all orders of sizes.
  CountedRelation a = MakeCounted({1}, {{{0}, 2}, {{1}, 5}});
  CountedRelation b = MakeCounted({2}, {{{7}, 3}});
  CountedRelation c = MakeCounted({1, 2}, {{{0, 7}, 1}, {{1, 7}, 10}});
  CountedRelation r = FoldJoin({&a, &b, &c});
  ASSERT_EQ(r.NumRows(), 2u);
  Value r1[] = {0, 7};
  Value r2[] = {1, 7};
  EXPECT_EQ(r.Lookup(r1), Count(6));    // 2*3*1
  EXPECT_EQ(r.Lookup(r2), Count(150));  // 5*3*10
}

TEST(FoldJoinTest, EmptyPiecesYieldUnit) {
  CountedRelation r = FoldJoin({});
  EXPECT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.arity(), 0u);
}

TEST(FoldJoinTest, ChainFold) {
  CountedRelation a = MakeCounted({1}, {{{0}, 2}});
  CountedRelation b = MakeCounted({1, 2}, {{{0, 5}, 3}});
  CountedRelation c = MakeCounted({2}, {{{5}, 7}});
  CountedRelation r = FoldJoin({&a, &b, &c});
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.CountAt(0), Count(42));
}

TEST(EvalTest, Figure1CountIsOne) {
  auto ex = MakeFigure1Example();
  auto count = CountQuery(ex.query, ex.db);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, Count::One());
  auto brute = BruteForceCount(ex.query, ex.db);
  ASSERT_TRUE(brute.ok());
  EXPECT_EQ(*brute, Count::One());
}

TEST(EvalTest, Figure3CountIsFour) {
  auto ex = MakeFigure3Example();
  auto count = CountQuery(ex.query, ex.db);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, Count(4));
}

TEST(EvalTest, BruteForceJoinMaterializesOutput) {
  auto ex = MakeFigure1Example();
  auto join = BruteForceJoin(ex.query, ex.db);
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join->NumRows(), 1u);
  EXPECT_EQ(join->arity(), 6u);
}

TEST(EvalTest, DisconnectedComponentsMultiply) {
  Database db;
  auto* r = db.AddRelation("R", {"A"});
  auto* t = db.AddRelation("T", {"X"});
  r->AppendRow({1});
  r->AppendRow({2});
  t->AppendRow({7});
  t->AppendRow({8});
  t->AppendRow({9});
  ConjunctiveQuery q;
  q.AddAtom(db, "R", {"A"});
  q.AddAtom(db, "T", {"X"});
  auto count = CountQuery(q, db);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, Count(6));
}

TEST(EvalTest, EmptyRelationZeroesCount) {
  auto ex = MakeFigure1Example();
  ex.db.Find("R3")->Clear();
  auto count = CountQuery(ex.query, ex.db);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, Count::Zero());
}

TEST(EvalTest, CyclicTriangleViaGhd) {
  Database db;
  auto* e0 = db.AddRelation("E0", {"A", "B"});
  auto* e1 = db.AddRelation("E1", {"B", "C"});
  auto* e2 = db.AddRelation("E2", {"C", "A"});
  // Two triangles sharing an edge: (1,2,3) and (1,2,4).
  e0->AppendRow({1, 2});
  e1->AppendRow({2, 3});
  e1->AppendRow({2, 4});
  e2->AppendRow({3, 1});
  e2->AppendRow({4, 1});
  ConjunctiveQuery q;
  q.AddAtom(db, "E0", {"A", "B"});
  q.AddAtom(db, "E1", {"B", "C"});
  q.AddAtom(db, "E2", {"C", "A"});
  auto count = CountQuery(q, db);  // falls back to SearchGhd
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, Count(2));
  auto brute = BruteForceCount(q, db);
  EXPECT_EQ(*count, *brute);
}

TEST(EvalTest, BagSemanticsCountDuplicates) {
  Database db;
  auto* r = db.AddRelation("R", {"A"});
  auto* s = db.AddRelation("S", {"A"});
  r->AppendRow({1});
  r->AppendRow({1});  // duplicate
  s->AppendRow({1});
  s->AppendRow({1});
  s->AppendRow({1});
  ConjunctiveQuery q;
  q.AddAtom(db, "R", {"A"});
  q.AddAtom(db, "S", {"A"});
  auto count = CountQuery(q, db);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, Count(6));
}

}  // namespace
}  // namespace lsens
